test/test_flags.ml: Alcotest Bytes E9_bits E9_emu E9_x86 Elf_file Int64 List String

test/test_x86.ml: Alcotest Bytes Char E9_bits E9_x86 List Printf String

test/test_workload.ml: Alcotest Bytes E9_core E9_emu E9_workload E9_x86 Elf_file Frontend Int64 List Option String

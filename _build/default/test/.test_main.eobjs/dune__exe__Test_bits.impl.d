test/test_bits.ml: Alcotest Array Atomic Bytes E9_bits Fun List QCheck QCheck_alcotest

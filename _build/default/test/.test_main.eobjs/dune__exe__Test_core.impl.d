test/test_core.ml: Alcotest Array Bytes Char E9_bits E9_core E9_emu E9_vm E9_workload E9_x86 Elf_file Frontend Hashtbl Int64 List Loadmap Option QCheck QCheck_alcotest

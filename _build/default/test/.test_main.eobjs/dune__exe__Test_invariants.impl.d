test/test_invariants.ml: Alcotest Bytes E9_bits E9_core E9_emu E9_lowfat E9_workload E9_x86 Elf_file Frontend List Loadmap Option

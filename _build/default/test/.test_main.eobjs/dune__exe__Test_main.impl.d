test/test_main.ml: Alcotest Test_asm Test_bits Test_core Test_elf Test_emu Test_flags Test_invariants Test_lowfat Test_reloc Test_spec Test_workload Test_x86

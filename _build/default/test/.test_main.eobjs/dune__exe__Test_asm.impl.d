test/test_asm.ml: Alcotest Array Bytes E9_bits E9_core E9_emu E9_x86 Elf_file List Loadmap QCheck QCheck_alcotest String Tablemeta

test/test_emu.ml: Alcotest Array Bytes Char E9_emu E9_vm E9_x86 Elf_file Int64 List Loadmap Printf String

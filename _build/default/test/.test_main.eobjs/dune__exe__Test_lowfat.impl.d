test/test_lowfat.ml: Alcotest Bytes E9_core E9_emu E9_lowfat E9_vm E9_workload E9_x86 Elf_file Frontend List Option Printf QCheck QCheck_alcotest

test/test_elf.ml: Alcotest Bytes E9_bits Elf_file Filename Fun List Loadmap Sys

test/test_reloc.ml: Alcotest E9_bits E9_core E9_emu E9_reloc E9_workload Elf_file Frontend Int64 List Option Printf

test/test_spec.ml: Alcotest E9_core E9_emu E9_lowfat E9_spec E9_workload E9_x86 Format Frontend List Printf String

(* Tests for the x86_64 encoder/decoder: fixed encodings checked against
   hand-assembled bytes (cross-checked with GNU as conventions), decoder
   totality, and encode/decode round-trip properties. *)

module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Encode = E9_x86.Encode
module Decode = E9_x86.Decode
module Classify = E9_x86.Classify
module Rng = E9_bits.Rng

let hex s =
  String.concat " "
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.of_seq (String.to_seq s)))

let check_enc name expected insn =
  Alcotest.(check string) name expected (hex (Encode.encode insn))

(* ------------------------------------------------------------------ *)
(* Fixed encodings                                                     *)
(* ------------------------------------------------------------------ *)

let test_encode_mov_reg_reg () =
  check_enc "mov %rax,%rbx" "48 89 c3"
    (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RAX));
  check_enc "mov %eax,%ebx" "89 c3"
    (Insn.Mov (Insn.L, Insn.Reg Reg.RBX, Insn.Reg Reg.RAX));
  check_enc "mov %r8,%r15" "4d 89 c7"
    (Insn.Mov (Insn.Q, Insn.Reg Reg.R15, Insn.Reg Reg.R8))

let test_encode_mov_mem () =
  (* mov %rax,(%rbx) — the paper's §2.1.3 example instruction: 48 89 03 *)
  check_enc "mov %rax,(%rbx)" "48 89 03"
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RBX ()), Insn.Reg Reg.RAX));
  check_enc "mov (%rcx),%rdx" "48 8b 11"
    (Insn.Mov (Insn.Q, Insn.Reg Reg.RDX, Insn.Mem (Insn.mem ~base:Reg.RCX ())));
  check_enc "mov %rax,8(%rbp)" "48 89 45 08"
    (Insn.Mov
       (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RBP ~disp:8 ()), Insn.Reg Reg.RAX));
  (* RSP base forces SIB *)
  check_enc "mov %rax,(%rsp)" "48 89 04 24"
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RSP ()), Insn.Reg Reg.RAX));
  (* R13 base (rm=101) forces disp8 *)
  check_enc "mov %rax,(%r13)" "49 89 45 00"
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.R13 ()), Insn.Reg Reg.RAX))

let test_encode_mov_sib () =
  check_enc "mov %rax,(%rbx,%rcx,8)" "48 89 04 cb"
    (Insn.Mov
       ( Insn.Q,
         Insn.Mem (Insn.mem ~base:Reg.RBX ~index:(Reg.RCX, Insn.S8) ()),
         Insn.Reg Reg.RAX ));
  check_enc "mov %edx,16(%rsi,%rdi,4)" "89 54 be 10"
    (Insn.Mov
       ( Insn.L,
         Insn.Mem (Insn.mem ~base:Reg.RSI ~index:(Reg.RDI, Insn.S4) ~disp:16 ()),
         Insn.Reg Reg.RDX ))

let test_encode_rip_relative () =
  check_enc "mov %rax,0x100(%rip)" "48 89 05 00 01 00 00"
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.rip_mem 0x100), Insn.Reg Reg.RAX));
  check_enc "lea -4(%rip),%rdi" "48 8d 3d fc ff ff ff"
    (Insn.Lea (Reg.RDI, Insn.rip_mem (-4)))

let test_encode_alu () =
  (* add $32,%rax — the paper's §2.1.3 example: 48 83 c0 20 (short form) *)
  check_enc "add $32,%rax" "48 83 c0 20"
    (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 32));
  check_enc "add $1000,%rax" "48 81 c0 e8 03 00 00"
    (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 1000));
  check_enc "xor %rax,%rcx" "48 31 c1"
    (Insn.Alu (Insn.Xor, Insn.Q, Insn.Reg Reg.RCX, Insn.Reg Reg.RAX));
  (* cmpl $77,-4(%rbx) — the paper's Ins4: 83 7b fc 4d *)
  check_enc "cmpl $77,-4(%rbx)" "83 7b fc 4d"
    (Insn.Alu
       (Insn.Cmp, Insn.L, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:(-4) ()),
        Insn.Imm 77));
  (* testb $0x2,0x18(%rbx) — Example 3.1's victim: f6 43 18 02 *)
  check_enc "testb $0x2,0x18(%rbx)" "f6 43 18 02"
    (Insn.Alu
       (Insn.Test, Insn.B, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:0x18 ()),
        Insn.Imm 2))

let test_encode_stack () =
  check_enc "push %rax" "50" (Insn.Push Reg.RAX);
  check_enc "push %r12" "41 54" (Insn.Push Reg.R12);
  check_enc "pop %rbp" "5d" (Insn.Pop Reg.RBP);
  check_enc "pop %r9" "41 59" (Insn.Pop Reg.R9)

let test_encode_control_flow () =
  check_enc "jmpq .+0" "e9 00 00 00 00" (Insn.Jmp 0);
  check_enc "jmpq .-256" "e9 00 ff ff ff" (Insn.Jmp (-256));
  check_enc "jmp short" "eb 07" (Insn.Jmp_short 7);
  check_enc "je rel32" "0f 84 10 00 00 00" (Insn.Jcc (Insn.E, 0x10));
  check_enc "je short" "74 27" (Insn.Jcc_short (Insn.E, 0x27));
  check_enc "callq" "e8 00 00 00 00" (Insn.Call 0);
  check_enc "ret" "c3" Insn.Ret;
  check_enc "jmp *%rax" "ff e0" (Insn.Jmp_ind (Insn.Reg Reg.RAX));
  check_enc "call *%rbx" "ff d3" (Insn.Call_ind (Insn.Reg Reg.RBX));
  check_enc "jmp *8(%rdi,%rsi,8)" "ff 64 f7 08"
    (Insn.Jmp_ind (Insn.Mem (Insn.mem ~base:Reg.RDI ~index:(Reg.RSI, Insn.S8) ~disp:8 ())))

let test_encode_misc () =
  check_enc "int3" "cc" Insn.Int3;
  check_enc "int $0x42" "cd 42" (Insn.Int 0x42);
  check_enc "syscall" "0f 05" Insn.Syscall;
  check_enc "ud2" "0f 0b" Insn.Ud2;
  check_enc "movabs" "48 b8 ef cd ab 89 67 45 23 01"
    (Insn.Movabs (Reg.RAX, 0x0123456789abcdefL));
  check_enc "imul %rbx,%rax" "48 0f af c3" (Insn.Imul (Reg.RAX, Insn.Reg Reg.RBX));
  check_enc "shl $3,%rax" "48 c1 e0 03"
    (Insn.Shift (Insn.Shl, Insn.Q, Insn.Reg Reg.RAX, 3))

let test_encode_nops () =
  for n = 1 to 9 do
    Alcotest.(check int)
      (Printf.sprintf "nop%d length" n)
      n
      (String.length (Encode.encode (Insn.Nop n)))
  done

let test_encode_byte_regs () =
  (* SIL needs a bare REX, AL does not. *)
  check_enc "movb %al,(%rbx)" "88 03"
    (Insn.Mov (Insn.B, Insn.Mem (Insn.mem ~base:Reg.RBX ()), Insn.Reg Reg.RAX));
  check_enc "movb %sil,(%rbx)" "40 88 33"
    (Insn.Mov (Insn.B, Insn.Mem (Insn.mem ~base:Reg.RBX ()), Insn.Reg Reg.RSI))

let test_padded_jump_encoding () =
  let s = Encode.encode_with_prefixes [ 0x48; 0x26 ] (Insn.Jmp 0x1234) in
  Alcotest.(check string) "padded jmp" "48 26 e9 34 12 00 00" (hex s)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let test_decode_paper_sequence () =
  (* The Figure 1 (Orig.) sequence:
     48 89 03 | 48 83 c0 20 | 48 31 c1 | 83 7b fc 4d *)
  let bytes =
    Bytes.of_string
      "\x48\x89\x03\x48\x83\xc0\x20\x48\x31\xc1\x83\x7b\xfc\x4d"
  in
  let insns = Decode.linear bytes ~pos:0 ~len:(Bytes.length bytes) in
  let lens = List.map (fun (_, d) -> d.Decode.len) insns in
  Alcotest.(check (list int)) "lengths" [ 3; 4; 3; 4 ] lens;
  match List.map (fun (_, d) -> d.Decode.insn) insns with
  | [ Insn.Mov (Insn.Q, Insn.Mem _, Insn.Reg Reg.RAX);
      Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 32);
      Insn.Alu (Insn.Xor, Insn.Q, Insn.Reg Reg.RCX, Insn.Reg Reg.RAX);
      Insn.Alu (Insn.Cmp, Insn.L, Insn.Mem _, Insn.Imm 77) ] ->
      ()
  | other ->
      Alcotest.failf "unexpected decode: %s"
        (String.concat "; " (List.map Insn.to_string other))

let test_decode_prefixed_jump () =
  (* A T1-padded punned jump must decode as a jump with correct length. *)
  let bytes = Bytes.of_string "\x48\x26\xe9\x34\x12\x00\x00" in
  let d = Decode.decode bytes 0 in
  Alcotest.(check int) "len" 7 d.Decode.len;
  Alcotest.(check (list int)) "prefixes" [ 0x48; 0x26 ] d.Decode.prefixes;
  match d.Decode.insn with
  | Insn.Jmp 0x1234 -> ()
  | i -> Alcotest.failf "expected jmp, got %s" (Insn.to_string i)

let test_decode_unknown_total () =
  (* Arbitrary garbage decodes without raising, advancing at least 1 byte. *)
  let bytes = Bytes.of_string "\xd9\xf6\x0e\x07\x9b" in
  let rec go p n =
    if p >= Bytes.length bytes then n
    else
      let d = Decode.decode bytes p in
      Alcotest.(check bool) "progress" true (d.Decode.len >= 1);
      go (p + d.Decode.len) (n + 1)
  in
  ignore (go 0 0)

let test_decode_truncated () =
  (* A jump opcode with missing displacement bytes decodes as Unknown. *)
  let bytes = Bytes.of_string "\xe9\x01\x02" in
  let d = Decode.decode bytes 0 in
  (match d.Decode.insn with
  | Insn.Unknown 0xe9 -> ()
  | i -> Alcotest.failf "expected unknown, got %s" (Insn.to_string i));
  Alcotest.(check int) "len 1" 1 d.Decode.len

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let test_classify_jumps () =
  let check b i = Alcotest.(check bool) (Insn.to_string i) b (Classify.is_jump i) in
  check true (Insn.Jmp 0);
  check true (Insn.Jcc (Insn.NE, 4));
  check true (Insn.Jmp_ind (Insn.Reg Reg.RAX));
  check false (Insn.Call 0);
  check false Insn.Ret;
  check false (Insn.Nop 1)

let test_classify_heap_writes () =
  let check b i =
    Alcotest.(check bool) (Insn.to_string i) b (Classify.is_heap_write i)
  in
  check true
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RBX ()), Insn.Reg Reg.RAX));
  check true
    (Insn.Alu
       (Insn.Add, Insn.L, Insn.Mem (Insn.mem ~base:Reg.RDI ~disp:8 ()),
        Insn.Imm 1));
  (* stack and globals excluded, reads excluded, cmp/test excluded *)
  check false
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RSP ()), Insn.Reg Reg.RAX));
  check false (Insn.Mov (Insn.Q, Insn.Mem (Insn.rip_mem 0), Insn.Reg Reg.RAX));
  check false
    (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Mem (Insn.mem ~base:Reg.RBX ())));
  check false
    (Insn.Alu
       (Insn.Cmp, Insn.L, Insn.Mem (Insn.mem ~base:Reg.RBX ()), Insn.Imm 0))

(* ------------------------------------------------------------------ *)
(* Round-trip property                                                 *)
(* ------------------------------------------------------------------ *)

(* Generator of random instructions from the encodable subset. *)
let random_insn rng =
  let reg () = Rng.pick rng Reg.all in
  let nonsp_reg () =
    let rec go () =
      let r = reg () in
      if Reg.equal r Reg.RSP then go () else r
    in
    go ()
  in
  let size () = Rng.pick rng [| Insn.B; Insn.L; Insn.Q |] in
  let scale () = Rng.pick rng [| Insn.S1; Insn.S2; Insn.S4; Insn.S8 |] in
  let mem () =
    if Rng.chance rng 0.1 then Insn.rip_mem (Rng.range rng (-100000) 100000)
    else
      let base = if Rng.chance rng 0.9 then Some (reg ()) else None in
      let index =
        if Rng.chance rng 0.3 || base = None then Some (nonsp_reg (), scale ())
        else None
      in
      { Insn.base; index; disp = Rng.range rng (-100000) 100000; rip_rel = false }
  in
  let operand_rm () = if Rng.bool rng then Insn.Reg (reg ()) else Insn.Mem (mem ()) in
  let imm sz =
    match sz with
    | Insn.B -> Rng.range rng (-128) 127
    | Insn.L | Insn.Q -> Rng.range rng (-0x8000_0000) 0x7fff_ffff
  in
  let alu () =
    Rng.pick rng
      [| Insn.Add; Insn.Or; Insn.And; Insn.Sub; Insn.Xor; Insn.Cmp; Insn.Test |]
  in
  let cc () = Insn.cc_of_index (Rng.int rng 16) in
  match Rng.int rng 27 with
  | 0 ->
      let sz = size () in
      Insn.Mov (sz, operand_rm (), Insn.Reg (reg ()))
  | 1 ->
      let sz = size () in
      Insn.Mov (sz, Insn.Reg (reg ()), Insn.Mem (mem ()))
  | 2 ->
      let sz = size () in
      Insn.Mov (sz, operand_rm (), Insn.Imm (imm sz))
  | 3 -> Insn.Movabs (reg (), Rng.next rng)
  | 4 -> Insn.Lea (reg (), mem ())
  | 5 ->
      let sz = size () in
      Insn.Alu (alu (), sz, operand_rm (), Insn.Reg (reg ()))
  | 6 ->
      let op = alu () in
      let sz = size () in
      if op = Insn.Test then Insn.Alu (op, sz, Insn.Reg (reg ()), Insn.Reg (reg ()))
      else Insn.Alu (op, sz, Insn.Reg (reg ()), Insn.Mem (mem ()))
  | 7 ->
      let sz = size () in
      Insn.Alu (alu (), sz, operand_rm (), Insn.Imm (imm sz))
  | 8 -> Insn.Imul (reg (), operand_rm ())
  | 9 -> Insn.Shift (Rng.pick rng [| Insn.Shl; Insn.Shr; Insn.Sar |], size (),
                     operand_rm (), Rng.int rng 64)
  | 10 -> Insn.Push (reg ())
  | 11 -> Insn.Pop (reg ())
  | 12 -> Insn.Call (Rng.range rng (-0x8000_0000) 0x7fff_ffff)
  | 13 -> Insn.Call_ind (operand_rm ())
  | 14 -> Insn.Ret
  | 15 -> Insn.Jmp (Rng.range rng (-0x8000_0000) 0x7fff_ffff)
  | 16 -> Insn.Jmp_ind (operand_rm ())
  | 17 -> Insn.Jcc (cc (), Rng.range rng (-0x8000_0000) 0x7fff_ffff)
  | 18 -> Insn.Nop (1 + Rng.int rng 9)
  | 19 -> if Rng.bool rng then Insn.Jmp_short (Rng.range rng (-128) 127)
          else Insn.Jcc_short (cc (), Rng.range rng (-128) 127)
  | 20 -> Insn.Movzx (reg (), operand_rm ())
  | 21 -> Insn.Movsx (reg (), operand_rm ())
  | 22 -> Insn.Setcc (cc (), operand_rm ())
  | 23 -> Insn.Cmov (cc (), reg (), operand_rm ())
  | 24 ->
      let sz = size () in
      if Rng.bool rng then Insn.Neg (sz, operand_rm ())
      else Insn.Not (sz, operand_rm ())
  | 25 ->
      let sz = size () in
      if Rng.bool rng then Insn.Inc (sz, operand_rm ())
      else Insn.Dec (sz, operand_rm ())
  | _ ->
      let sz = size () in
      let op = if Rng.bool rng then Insn.Adc else Insn.Sbb in
      Insn.Alu (op, sz, operand_rm (), Insn.Reg (reg ()))

let test_roundtrip_property () =
  let rng = Rng.create 0xE9L in
  for i = 1 to 20_000 do
    let insn = random_insn rng in
    let code = Encode.encode insn in
    let d = Decode.decode_string code 0 in
    if not (Insn.equal d.Decode.insn insn) then
      Alcotest.failf "roundtrip %d failed: %s -> [%s] -> %s" i
        (Insn.to_string insn) (hex code)
        (Insn.to_string d.Decode.insn);
    if d.Decode.len <> String.length code then
      Alcotest.failf "length mismatch for %s: encoded %d, decoded %d"
        (Insn.to_string insn) (String.length code) d.Decode.len
  done

let test_decoder_never_raises_on_garbage () =
  let rng = Rng.create 123L in
  for _ = 1 to 2_000 do
    let len = 1 + Rng.int rng 32 in
    let bytes = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    let rec go p =
      if p < len then begin
        let d = Decode.decode bytes p in
        assert (d.Decode.len >= 1);
        go (p + d.Decode.len)
      end
    in
    go 0
  done

let suites =
  [ ( "x86.encode",
      [ Alcotest.test_case "mov reg,reg" `Quick test_encode_mov_reg_reg;
        Alcotest.test_case "mov mem" `Quick test_encode_mov_mem;
        Alcotest.test_case "mov SIB" `Quick test_encode_mov_sib;
        Alcotest.test_case "rip-relative" `Quick test_encode_rip_relative;
        Alcotest.test_case "alu" `Quick test_encode_alu;
        Alcotest.test_case "stack" `Quick test_encode_stack;
        Alcotest.test_case "control flow" `Quick test_encode_control_flow;
        Alcotest.test_case "misc" `Quick test_encode_misc;
        Alcotest.test_case "nops 1..9" `Quick test_encode_nops;
        Alcotest.test_case "byte regs need REX" `Quick test_encode_byte_regs;
        Alcotest.test_case "padded jump" `Quick test_padded_jump_encoding ] );
    ( "x86.decode",
      [ Alcotest.test_case "paper Figure 1 sequence" `Quick
          test_decode_paper_sequence;
        Alcotest.test_case "prefixed jump" `Quick test_decode_prefixed_jump;
        Alcotest.test_case "garbage is total" `Quick test_decode_unknown_total;
        Alcotest.test_case "truncated" `Quick test_decode_truncated ] );
    ( "x86.classify",
      [ Alcotest.test_case "jumps (A1)" `Quick test_classify_jumps;
        Alcotest.test_case "heap writes (A2)" `Quick test_classify_heap_writes ] );
    ( "x86.roundtrip",
      [ Alcotest.test_case "encode/decode 20k random insns" `Quick
          test_roundtrip_property;
        Alcotest.test_case "decoder total on garbage" `Quick
          test_decoder_never_raises_on_garbage ] ) ]

let test_decode_prefix_orders () =
  (* Hardware ignores a REX that does not immediately precede the opcode;
     the T1 padding relies on the decoder accepting arbitrary prefix
     mixes. *)
  let cases =
    [ ("\x26\x48\xe9\x01\x00\x00\x00", 7);       (* seg then REX *)
      ("\x48\x26\xe9\x01\x00\x00\x00", 7);       (* REX then seg *)
      ("\x48\x48\x48\xe9\x01\x00\x00\x00", 8);   (* stacked REX *)
      ("\x66\xe9\x01\x00\x00\x00", 6) ]          (* operand override *)
  in
  List.iter
    (fun (bytes, len) ->
      let d = Decode.decode_string bytes 0 in
      Alcotest.(check int) "length" len d.Decode.len;
      match d.Decode.insn with
      | Insn.Jmp 1 -> ()
      | i -> Alcotest.failf "expected jmp+1, got %s" (Insn.to_string i))
    cases

let test_decode_rex_dropped_by_legacy_prefix () =
  (* A REX before a legacy prefix must not take effect: 48 26 89 c3 is
     (es) mov %eax,%ebx — 32-bit, not 64-bit. *)
  let d = Decode.decode_string "\x48\x26\x89\xc3" 0 in
  match d.Decode.insn with
  | Insn.Mov (Insn.L, Insn.Reg Reg.RBX, Insn.Reg Reg.RAX) -> ()
  | i -> Alcotest.failf "REX leaked through: %s" (Insn.to_string i)

let suites =
  suites
  @ [ ( "x86.prefixes",
        [ Alcotest.test_case "padded-jump prefix orders" `Quick
            test_decode_prefix_orders;
          Alcotest.test_case "REX dropped by legacy prefix" `Quick
            test_decode_rex_dropped_by_legacy_prefix ] ) ]

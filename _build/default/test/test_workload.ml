(* Tests for the synthetic workload generator and the evaluation suite. *)

module Codegen = E9_workload.Codegen
module Suite = E9_workload.Suite
module Dromaeo = E9_workload.Dromaeo
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Insn = E9_x86.Insn
module Classify = E9_x86.Classify

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small ?(seed = 1L) ?(pie = false) () =
  { Codegen.default_profile with
    Codegen.seed; pie; functions = 30; iterations = 50 }

let test_deterministic_generation () =
  let a = Elf_file.to_bytes (Codegen.generate (small ())) in
  let b = Elf_file.to_bytes (Codegen.generate (small ())) in
  check_bool "same seed, same binary" true (Bytes.equal a b);
  let c = Elf_file.to_bytes (Codegen.generate (small ~seed:2L ())) in
  check_bool "different seed, different binary" false (Bytes.equal a c)

let test_programs_terminate_deterministically () =
  for s = 1 to 10 do
    let elf = Codegen.generate (small ~seed:(Int64.of_int s) ()) in
    let r1 = Machine.run elf and r2 = Machine.run elf in
    (match r1.Cpu.outcome with
    | Cpu.Exited _ -> ()
    | _ -> Alcotest.failf "seed %d did not exit cleanly" s);
    check_bool "reruns identical" true (Machine.equivalent r1 r2);
    check_int "checksum written" 8 (String.length r1.Cpu.output)
  done

let test_iterations_scale_runtime () =
  let run iters =
    let prof = { (small ()) with Codegen.iterations = iters } in
    (Machine.run (Codegen.generate prof)).Cpu.insns
  in
  let i100 = run 100 and i400 = run 400 in
  check_bool "4x iterations ~ 4x instructions" true
    (i400 > 3 * i100 && i400 < 5 * i100)

let test_pie_load_address () =
  let nonpie = Codegen.generate (small ()) in
  let pie = Codegen.generate (small ~pie:true ()) in
  check_int "non-PIE base" Codegen.base_nonpie nonpie.Elf_file.entry;
  check_int "PIE base" Codegen.base_pie pie.Elf_file.entry;
  check_bool "PIE e_type" true (pie.Elf_file.etype = Elf_file.Dyn)

let test_contains_indirect_control_flow () =
  (* The generator must produce the control flow that defeats static
     recovery: indirect jumps and calls. *)
  let elf = Codegen.generate { (small ()) with Codegen.functions = 60 } in
  let _, sites = Frontend.disassemble elf in
  let count p = List.length (List.filter p sites) in
  check_bool "indirect jumps present" true
    (count (fun s -> match s.Frontend.insn with Insn.Jmp_ind _ -> true | _ -> false) > 0);
  check_bool "indirect calls present" true
    (count (fun s -> match s.Frontend.insn with Insn.Call_ind _ -> true | _ -> false) > 0);
  check_bool "short jumps present" true
    (count (fun s ->
         match s.Frontend.insn with
         | Insn.Jcc_short _ | Insn.Jmp_short _ -> true
         | _ -> false)
     > 0);
  check_bool "heap writes present" true
    (count (fun s -> Classify.is_heap_write s.Frontend.insn) > 0)

let test_linear_disassembly_is_exact () =
  (* Our generated text contains no embedded data, so linear disassembly
     must decode every byte into a known instruction. *)
  let elf = Codegen.generate (small ()) in
  let _, sites = Frontend.disassemble elf in
  List.iter
    (fun (s : Frontend.site) ->
      match s.Frontend.insn with
      | Insn.Unknown b ->
          Alcotest.failf "undecodable byte %02x at 0x%x" b s.Frontend.addr
      | _ -> ())
    sites

let test_short_jump_bias_effect () =
  let frac bias =
    let prof = { (small ()) with Codegen.short_jump_bias = bias } in
    let _, sites = Frontend.disassemble (Codegen.generate prof) in
    let jumps = List.filter Frontend.select_jumps sites in
    let short =
      List.filter (fun (s : Frontend.site) -> s.Frontend.len = 2) jumps
    in
    float_of_int (List.length short) /. float_of_int (List.length jumps)
  in
  check_bool "bias raises short fraction" true (frac 0.8 > frac 0.1 +. 0.2)

let test_bss_segment () =
  let elf = Codegen.generate { (small ()) with Codegen.bss_mb = 100 } in
  let bss =
    List.find_opt
      (fun (s : Elf_file.segment) ->
        s.Elf_file.ptype = Elf_file.Load && s.Elf_file.memsz > 50_000_000)
      elf.Elf_file.segments
  in
  check_bool ".bss present" true (bss <> None);
  (match bss with
  | Some s -> check_int "no file payload" 0 s.Elf_file.filesz
  | None -> ());
  (* Huge .bss must not break execution (lazy zero pages). *)
  match (Machine.run elf).Cpu.outcome with
  | Cpu.Exited _ -> ()
  | _ -> Alcotest.fail "bss program did not run"

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let test_suite_complete () =
  check_int "41 Table 1 rows" 41 (List.length Suite.rows);
  check_int "28 SPEC rows" 28 (List.length Suite.spec_rows);
  check_bool "has chrome" true (Suite.find "chrome" <> None);
  check_bool "has libxul.so" true (Suite.find "libxul.so" <> None);
  check_bool "no bogus" true (Suite.find "nonesuch" = None)

let test_suite_flags_match_paper () =
  let pie name =
    (Option.get (Suite.find name)).Suite.profile.Codegen.pie
  in
  let shared name =
    (Option.get (Suite.find name)).Suite.profile.Codegen.shared_object
  in
  check_bool "vim is PIE" true (pie "vim");
  check_bool "chrome is PIE" true (pie "chrome");
  check_bool "gcc is not PIE" false (pie "gcc");
  check_bool "libc.so is shared" true (shared "libc.so");
  check_bool "gamess has huge bss" true
    ((Option.get (Suite.find "gamess")).Suite.profile.Codegen.bss_mb > 1000)

let test_suite_rows_runnable () =
  (* Spot-check a few representative rows end to end (full sweep is the
     benchmark harness's job). *)
  List.iter
    (fun name ->
      let row = Option.get (Suite.find name) in
      let prof = { row.Suite.profile with Codegen.iterations = 30 } in
      let elf = Codegen.generate prof in
      match (Machine.run elf).Cpu.outcome with
      | Cpu.Exited _ -> ()
      | _ -> Alcotest.failf "row %s did not run" name)
    [ "mcf"; "vim"; "libc.so"; "gamess" ]

let test_dromaeo_suites () =
  check_int "14 Dromaeo suites" 14 (List.length Dromaeo.suites);
  let s = List.hd Dromaeo.suites in
  let elf = Codegen.generate { (Dromaeo.program s) with Codegen.iterations = 20 } in
  match (Machine.run elf).Cpu.outcome with
  | Cpu.Exited _ -> ()
  | _ -> Alcotest.fail "dromaeo workload did not run"

let suites =
  [ ( "workload.codegen",
      [ Alcotest.test_case "deterministic" `Quick test_deterministic_generation;
        Alcotest.test_case "terminates deterministically" `Quick
          test_programs_terminate_deterministically;
        Alcotest.test_case "iterations scale runtime" `Quick
          test_iterations_scale_runtime;
        Alcotest.test_case "PIE load address" `Quick test_pie_load_address;
        Alcotest.test_case "indirect control flow" `Quick
          test_contains_indirect_control_flow;
        Alcotest.test_case "linear disassembly exact" `Quick
          test_linear_disassembly_is_exact;
        Alcotest.test_case "short-jump bias" `Quick test_short_jump_bias_effect;
        Alcotest.test_case ".bss segment" `Quick test_bss_segment ] );
    ( "workload.suite",
      [ Alcotest.test_case "complete" `Quick test_suite_complete;
        Alcotest.test_case "flags match paper" `Quick
          test_suite_flags_match_paper;
        Alcotest.test_case "rows runnable" `Quick test_suite_rows_runnable;
        Alcotest.test_case "dromaeo" `Quick test_dromaeo_suites ] ) ]

(* ------------------------------------------------------------------ *)
(* §6.2: data mixed into the text section (the Chrome challenge)       *)
(* ------------------------------------------------------------------ *)

let chrome_challenge_profile =
  { Codegen.default_profile with
    Codegen.seed = 33L; functions = 40; iterations = 60; data_in_text_kb = 2 }

let test_data_in_text_runs () =
  let elf = Codegen.generate chrome_challenge_profile in
  match (Machine.run elf).Cpu.outcome with
  | Cpu.Exited _ -> ()
  | _ -> Alcotest.fail "data-in-text program did not run"

let test_naive_patching_corrupts_data_in_text () =
  (* Linear disassembly from the start treats pool bytes as instructions;
     patching those "jumps" overwrites live data. The paper: the mixed
     .text "proved to be a challenge for our prototype linear disassembler
     frontend". *)
  let elf = Codegen.generate chrome_challenge_profile in
  let orig = Machine.run elf in
  let r =
    E9_core.Rewriter.run elf ~select:Frontend.select_jumps
      ~template:(fun _ -> E9_core.Trampoline.Empty)
  in
  Alcotest.(check bool) "naive patching corrupts the program" false
    (Machine.equivalent orig (Machine.run r.E9_core.Rewriter.output))

let test_chromemain_workaround () =
  (* "We only disassemble after the ChromeMain symbol." *)
  let elf = Codegen.generate chrome_challenge_profile in
  let orig = Machine.run elf in
  let marker =
    Option.get (Elf_file.find_section elf Codegen.chromemain_marker)
  in
  let r =
    E9_core.Rewriter.run ~disasm_from:marker.Elf_file.addr elf
      ~select:Frontend.select_jumps
      ~template:(fun _ -> E9_core.Trampoline.Empty)
  in
  Alcotest.(check bool) "workaround preserves behaviour" true
    (Machine.equivalent orig (Machine.run r.E9_core.Rewriter.output));
  Alcotest.(check bool) "and still patches plenty" true
    (E9_core.Stats.total r.E9_core.Rewriter.stats > 100)

let suites =
  suites
  @ [ ( "workload.chrome-challenge",
        [ Alcotest.test_case "data-in-text runs" `Quick test_data_in_text_runs;
          Alcotest.test_case "naive patching corrupts" `Quick
            test_naive_patching_corrupts_data_in_text;
          Alcotest.test_case "ChromeMain workaround" `Quick
            test_chromemain_workaround ] ) ]

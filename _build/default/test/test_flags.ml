(* Differential testing of the emulator's RFLAGS semantics.

   For random operands, operations and widths, a guest program executes the
   operation and materializes all condition codes with setcc into a buffer
   that it prints. The expected values come from an independent reference
   model written directly from the x86 flag definitions (not shared with
   lib/emu). Catching a flag bug here matters doubly: conditional branches
   decide control flow, and displaced jcc instructions in trampolines
   re-execute under the same flag machinery. *)

module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rng = E9_bits.Rng

let base = 0x400000

type op = Add | Sub | Cmp | And | Or | Xor | Test | Adc | Sbb | Inc | Dec

(* ------------------------------------------------------------------ *)
(* Reference model (independent of lib/emu)                            *)
(* ------------------------------------------------------------------ *)

type flags = { zf : bool; sf : bool; cf : bool; o_f : bool; pf : bool }

let bits_of = function Insn.B -> 8 | Insn.L -> 32 | Insn.Q -> 62
(* Q is modelled at the emulator's 62-bit value domain: the test generates
   operands below 2^40, where 62- and 64-bit semantics agree. *)

let reference ?(cf_in = false) op sz a b =
  let w = bits_of sz in
  let mask = if w >= 62 then -1 else (1 lsl w) - 1 in
  let msb = if w >= 62 then min_int else 1 lsl (w - 1) in
  let am = a land mask and bm = b land mask in
  let logic r =
    { zf = r land mask = 0;
      sf = r land msb <> 0;
      cf = false;
      o_f = false;
      pf =
        (let rec pop n v = if v = 0 then n else pop (n + 1) (v land (v - 1)) in
         pop 0 (r land 0xff) mod 2 = 0) }
  in
  ignore (am, bm);
  match op with
  | And | Test -> logic (am land bm)
  | Or -> logic (am lor bm)
  | Xor -> logic (am lxor bm)
  | Add ->
      let r = (a + b) land mask in
      let unsigned_sum = (am land max_int) + (bm land max_int) in
      let cf =
        if w >= 62 then
          (* carry out of the modelled width: detect via comparison *)
          (let ult x y = if (x < 0) = (y < 0) then x < y else y < 0 in
           ult (a + b) a)
        else unsigned_sum > mask
      in
      let sa = a land msb <> 0 and sb = b land msb <> 0 in
      let sr = r land msb <> 0 in
      { (logic r) with cf; o_f = sa = sb && sr <> sa }
  | Sub | Cmp ->
      let r = (a - b) land mask in
      let cf =
        if w >= 62 then
          let ult x y = if (x < 0) = (y < 0) then x < y else y < 0 in
          ult a b
        else am < bm
      in
      let sa = a land msb <> 0 and sb = b land msb <> 0 in
      let sr = r land msb <> 0 in
      { (logic r) with cf; o_f = sa <> sb && sr <> sa }
  | Adc ->
      let c = if cf_in then 1 else 0 in
      let r = (a + b + c) land mask in
      let cf =
        if w >= 62 then
          let ult x y = if (x < 0) = (y < 0) then x < y else y < 0 in
          let s1 = a + b in
          ult s1 a || (c = 1 && s1 = -1)
        else am + bm + c > mask
      in
      let sa = a land msb <> 0 and sb = b land msb <> 0 in
      let sr = r land msb <> 0 in
      { (logic r) with cf; o_f = sa = sb && sr <> sa }
  | Sbb ->
      let c = if cf_in then 1 else 0 in
      let r = (a - b - c) land mask in
      let cf =
        if w >= 62 then
          let ult x y = if (x < 0) = (y < 0) then x < y else y < 0 in
          ult a b || (c = 1 && a - b = 0)
        else am < bm + c
      in
      let sa = a land msb <> 0 and sb = b land msb <> 0 in
      let sr = r land msb <> 0 in
      { (logic r) with cf; o_f = sa <> sb && sr <> sa }
  | Inc ->
      (* add 1 with CF preserved from input *)
      let r = (a + 1) land mask in
      let sa = a land msb <> 0 and sr = r land msb <> 0 in
      { (logic r) with cf = cf_in; o_f = (not sa) && sr }
  | Dec ->
      let r = (a - 1) land mask in
      let sa = a land msb <> 0 and sr = r land msb <> 0 in
      { (logic r) with cf = cf_in; o_f = sa && not sr }

let cc_holds f = function
  | Insn.O -> f.o_f
  | Insn.NO -> not f.o_f
  | Insn.B_ -> f.cf
  | Insn.AE -> not f.cf
  | Insn.E -> f.zf
  | Insn.NE -> not f.zf
  | Insn.BE -> f.cf || f.zf
  | Insn.A -> not (f.cf || f.zf)
  | Insn.S_ -> f.sf
  | Insn.NS -> not f.sf
  | Insn.P -> f.pf
  | Insn.NP -> not f.pf
  | Insn.L_ -> f.sf <> f.o_f
  | Insn.GE -> f.sf = f.o_f
  | Insn.LE -> f.zf || f.sf <> f.o_f
  | Insn.G -> (not f.zf) && f.sf = f.o_f

(* ------------------------------------------------------------------ *)
(* Guest program                                                       *)
(* ------------------------------------------------------------------ *)

let all_cc = List.init 16 Insn.cc_of_index

(* Execute [op sz rax, rbx] then write one byte per condition code. For
   carry-consuming/preserving ops the incoming CF is staged with a cmp. *)
let flags_program ?(cf_in = false) op sz a b =
  let asm = Asm.create ~base in
  let ins i = Asm.ins asm i in
  let buf = Machine.stack_top - 4096 in
  ins (Insn.Movabs (Reg.RAX, Int64.of_int a));
  ins (Insn.Movabs (Reg.RBX, Int64.of_int b));
  (* CF := cf_in via an unsigned-borrow compare on rcx=0 *)
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 0));
  ins (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.RCX,
                 Insn.Imm (if cf_in then 1 else 0)));
  let alu o = Insn.Alu (o, sz, Insn.Reg Reg.RAX, Insn.Reg Reg.RBX) in
  ins
    (match op with
    | Add -> alu Insn.Add
    | Sub -> alu Insn.Sub
    | Cmp -> alu Insn.Cmp
    | And -> alu Insn.And
    | Or -> alu Insn.Or
    | Xor -> alu Insn.Xor
    | Test -> alu Insn.Test
    | Adc -> alu Insn.Adc
    | Sbb -> alu Insn.Sbb
    | Inc -> Insn.Inc (sz, Insn.Reg Reg.RAX)
    | Dec -> Insn.Dec (sz, Insn.Reg Reg.RAX));
  ins (Insn.Movabs (Reg.RDI, Int64.of_int buf));
  List.iteri
    (fun i cc ->
      (* setcc must not disturb the flags between stores *)
      ins (Insn.Setcc (cc, Insn.Mem (Insn.mem ~base:Reg.RDI ~disp:i ()))))
    all_cc;
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 1));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 1));
  ins (Insn.Movabs (Reg.RSI, Int64.of_int buf));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDX, Insn.Imm 16));
  ins Insn.Syscall;
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 0));
  ins Insn.Syscall;
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:base in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rx;
         vaddr = base;
         offset = 0;
         filesz = 0;
         memsz = Bytes.length code;
         align = 4096 }
       ~content:code);
  elf

let check_case ?(cf_in = false) op sz a b =
  let r = Machine.run (flags_program ~cf_in op sz a b) in
  (match r.Cpu.outcome with
  | Cpu.Exited 0 -> ()
  | _ -> Alcotest.fail "flags program failed");
  let expected = reference ~cf_in op sz a b in
  List.iteri
    (fun i cc ->
      let got = r.Cpu.output.[i] = '\001' in
      let want = cc_holds expected cc in
      if got <> want then
        Alcotest.failf "cc %d mismatch: op=%d sz=%s a=%d b=%d (got %b want %b)"
          i
          (match op with Add -> 0 | Sub -> 1 | Cmp -> 2 | And -> 3 | Or -> 4
           | Xor -> 5 | Test -> 6 | Adc -> 7 | Sbb -> 8 | Inc -> 9 | Dec -> 10)
          (match sz with Insn.B -> "B" | Insn.L -> "L" | Insn.Q -> "Q")
          a b got want)
    all_cc

let interesting = [ 0; 1; -1; 127; 128; -128; 255; 0x7fffffff; -0x80000000 ]

let test_flags_edge_cases () =
  List.iter
    (fun op ->
      List.iter
        (fun sz ->
          List.iter
            (fun a -> List.iter (fun b -> check_case op sz a b) interesting)
            interesting)
        [ Insn.B; Insn.L; Insn.Q ])
    [ Add; Sub; Cmp; And; Or; Xor; Test ]

let test_flags_carry_ops () =
  (* adc/sbb consume CF; inc/dec preserve it. Sweep both carry states over
     the edge values. *)
  List.iter
    (fun op ->
      List.iter
        (fun cf_in ->
          List.iter
            (fun sz ->
              List.iter
                (fun a ->
                  List.iter (fun b -> check_case ~cf_in op sz a b) interesting)
                interesting)
            [ Insn.B; Insn.L; Insn.Q ])
        [ false; true ])
    [ Adc; Sbb; Inc; Dec ]

let test_flags_random () =
  let rng = Rng.create 0xF1A65L in
  for _ = 1 to 300 do
    let op =
      match Rng.int rng 7 with
      | 0 -> Add | 1 -> Sub | 2 -> Cmp | 3 -> And | 4 -> Or | 5 -> Xor
      | _ -> Test
    in
    let sz = match Rng.int rng 3 with 0 -> Insn.B | 1 -> Insn.L | _ -> Insn.Q in
    (* keep |values| < 2^40 so 62-bit and 64-bit Q semantics agree *)
    let v () = Rng.range rng (-0x80_0000_0000) 0x80_0000_0000 in
    check_case op sz (v ()) (v ())
  done

let suites =
  [ ( "emu.flags",
      [ Alcotest.test_case "edge cases (7 ops x 3 widths x 81 pairs)" `Quick
          test_flags_edge_cases;
        Alcotest.test_case "carry ops (adc/sbb/inc/dec, both CF states)"
          `Quick test_flags_carry_ops;
        Alcotest.test_case "random differential (300 cases)" `Quick
          test_flags_random ] ) ]

(** Trampoline templates and code generation.

    Every successful tactic diverts control flow to a trampoline that
    (optionally) runs an instrumentation payload, executes the displaced
    instruction, and jumps back to the instruction after the patch
    location. PC-relative displaced instructions (branches, RIP-relative
    operands) are re-encoded against their new location; instructions that
    leave unconditionally ([jmp], [ret]) need no return jump.

    Emission is address-dependent (the displacements) but length-stable:
    [emit] at any address yields the same number of bytes, so the rewriter
    can size a trampoline before allocating its home. *)

type template =
  | Empty
      (** displaced instruction + return — the paper's "empty
          instrumentation" used for the Table 1 / Figure 4 overheads *)
  | Counter
      (** a {!E9_emu.Hostcall.count} host call first — basic-block /
          jump counting instrumentation *)
  | Lowfat_check
      (** re-materialize the written-to pointer with [lea], pass it to the
          {!E9_emu.Hostcall.check} redzone check, restore state, then run
          the displaced instruction (paper §6.3). Only valid for
          heap-write instructions. *)
  | Call_fn of int
      (** call an instrumentation {e function inside the patched binary}
          (appended by the user as an extra executable segment — the
          E9Tool mechanism), bracketing it with RFLAGS and caller-saved
          register save/restore *)
  | Custom_pre of (E9_x86.Asm.t -> unit)
      (** arbitrary payload before the displaced instruction *)
  | Replace of (E9_x86.Asm.t -> ret:int -> unit)
      (** binary patching: the payload replaces the displaced instruction
          entirely and must end with its own control transfer; [ret] is
          the address just after the patched instruction *)

(** [emit template ~at ~insn ~insn_addr ~insn_len] generates trampoline
    code to live at address [at], for the instruction [insn] originally at
    [insn_addr] (size [insn_len]). *)
val emit :
  template -> at:int -> insn:E9_x86.Insn.t -> insn_addr:int -> insn_len:int ->
  bytes

(** [size template ~insn ~insn_addr ~insn_len] is the length [emit] will
    produce (computed by a dry run near the original location). *)
val size : template -> insn:E9_x86.Insn.t -> insn_addr:int -> insn_len:int -> int

(** [emit_evictee ~at ~insn ~insn_addr ~insn_len] is the evictee trampoline
    used by instruction eviction (T2/T3): the displaced victim plus the
    return jump — an [Empty] template. *)
val emit_evictee :
  at:int -> insn:E9_x86.Insn.t -> insn_addr:int -> insn_len:int -> bytes

module Buf = E9_bits.Buf
module Iset = E9_bits.Iset

type result = {
  blob : bytes;
  mappings : Loadmap.mapping list;
  physical_blocks : int;
  virtual_blocks : int;
}

let page_size = 4096

(* A physical block being filled: relative-offset occupancy plus content. *)
type phys = { occ : Iset.t; bytes : Bytes.t; index : int }

let group ~granularity ~enabled trampolines =
  if granularity < 1 then invalid_arg "Pagegroup.group";
  let bsize = granularity * page_size in
  (* Split trampolines into per-virtual-block fragments ("trampolines that
     span block boundaries are treated as two mini-trampolines"). *)
  let frags = Hashtbl.create 256 in
  (* block base -> (rel offset, bytes) list *)
  List.iter
    (fun (addr, code) ->
      let len = Bytes.length code in
      let pos = ref 0 in
      while !pos < len do
        let a = addr + !pos in
        let block = a / bsize * bsize in
        let rel = a - block in
        let chunk = min (bsize - rel) (len - !pos) in
        let frag = (rel, Bytes.sub code !pos chunk) in
        Hashtbl.replace frags block
          (frag :: (Option.value ~default:[] (Hashtbl.find_opt frags block)));
        pos := !pos + chunk
      done)
    trampolines;
  let blocks =
    Hashtbl.fold (fun base fr acc -> (base, fr) :: acc) frags []
    |> List.sort compare
  in
  let physicals = ref [] (* newest first *) in
  let n_phys = ref 0 in
  let place fr =
    (* First-fit over existing physical blocks (oldest first). *)
    let fits p =
      List.for_all
        (fun (rel, b) -> Iset.is_free p.occ ~lo:rel ~hi:(rel + Bytes.length b))
        fr
    in
    let target =
      if enabled then List.find_opt fits (List.rev !physicals) else None
    in
    let p =
      match target with
      | Some p -> p
      | None ->
          let p =
            { occ = Iset.create (); bytes = Bytes.make bsize '\000';
              index = !n_phys }
          in
          incr n_phys;
          physicals := p :: !physicals;
          p
    in
    List.iter
      (fun (rel, b) ->
        Iset.add p.occ ~lo:rel ~hi:(rel + Bytes.length b);
        Bytes.blit b 0 p.bytes rel (Bytes.length b))
      fr;
    p.index
  in
  let placements = List.map (fun (base, fr) -> (base, place fr)) blocks in
  let blob = Buf.create (!n_phys * bsize) in
  ignore (Buf.add_zeros blob (!n_phys * bsize));
  List.iter
    (fun p -> Buf.blit_in blob ~pos:(p.index * bsize) p.bytes)
    !physicals;
  let mappings =
    List.map
      (fun (vbase, pidx) ->
        { Loadmap.vaddr = vbase;
          file_off = pidx * bsize;
          len = bsize;
          prot = Elf_file.prot_rx })
      placements
  in
  (* Merge mappings that are contiguous in both spaces (fewer mmap calls). *)
  let mappings =
    List.fold_left
      (fun acc (m : Loadmap.mapping) ->
        match acc with
        | prev :: rest
          when prev.Loadmap.vaddr + prev.Loadmap.len = m.vaddr
               && prev.Loadmap.file_off + prev.Loadmap.len = m.file_off ->
            { prev with Loadmap.len = prev.Loadmap.len + m.len } :: rest
        | _ -> m :: acc)
      [] mappings
    |> List.rev
  in
  { blob = Buf.contents blob;
    mappings;
    physical_blocks = !n_phys;
    virtual_blocks = List.length blocks }

lib/core/pun.mli:

lib/core/lock.ml: Bytes

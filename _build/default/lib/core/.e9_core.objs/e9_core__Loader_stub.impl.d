lib/core/loader_stub.ml: E9_bits E9_emu E9_x86 Int64 Loadmap

lib/core/lock.mli:

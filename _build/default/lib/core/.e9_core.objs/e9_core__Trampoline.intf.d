lib/core/trampoline.mli: E9_x86

lib/core/layout.mli: Elf_file

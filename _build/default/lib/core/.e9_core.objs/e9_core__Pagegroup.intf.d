lib/core/pagegroup.mli: Loadmap

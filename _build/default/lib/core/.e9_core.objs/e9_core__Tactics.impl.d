lib/core/tactics.ml: Array E9_bits E9_x86 Frontend Hashtbl Layout List Loadmap Lock Logs Option Pun Stats Trampoline

lib/core/loader_stub.mli: Loadmap

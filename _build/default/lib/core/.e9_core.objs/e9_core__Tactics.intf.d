lib/core/tactics.mli: E9_bits Frontend Layout Loadmap Lock Stats Trampoline

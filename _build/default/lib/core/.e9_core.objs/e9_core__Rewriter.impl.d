lib/core/rewriter.ml: Array Bytes E9_bits Elf_file Frontend Layout List Loader_stub Loadmap Logs Pagegroup Printf Stats Tactics

lib/core/rewriter.mli: Elf_file Frontend Stats Tactics Trampoline

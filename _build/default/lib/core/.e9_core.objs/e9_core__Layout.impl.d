lib/core/layout.ml: E9_bits Elf_file List

lib/core/trampoline.ml: Bytes E9_emu E9_x86 List

lib/core/pun.ml: Array List

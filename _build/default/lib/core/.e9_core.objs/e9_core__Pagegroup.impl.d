lib/core/pagegroup.ml: Bytes E9_bits Elf_file Hashtbl List Loadmap Option

(** The arithmetic of instruction punning (paper §2.1.3, §3).

    A punned [jmpq rel32] overlaps its successors: the low-order bytes of
    the little-endian [rel32] field lie inside the patched instruction (the
    rewriter chooses them freely) while the high-order bytes coincide with
    — and are "punned" onto — the bytes that follow. Because the free bytes
    are always the low-order ones, the set of expressible jump targets is a
    single contiguous interval, which is what makes trampoline allocation a
    range query. *)

(** [target_window ~jmp_end ~free_bytes ~fixed_high] is the inclusive
    interval [(lo, hi)] of absolute target addresses reachable by a punned
    jump whose displacement field ends at [jmp_end], with [free_bytes]
    low-order bytes free (0–4) and the remaining high-order bytes equal to
    [fixed_high] (the little-endian integer they form).

    The [rel32] is interpreted as a signed 32-bit value: a [fixed_high]
    whose top bit is set yields a window of negative displacements — the
    case the paper calls "invalid for non-PIE binaries" because it
    underflows the address space. The window itself is returned unclamped;
    validity is the allocator's concern. *)
val target_window : jmp_end:int -> free_bytes:int -> fixed_high:int -> int * int

(** [rel32_for ~jmp_end ~target] is the displacement reaching [target].
    Raises [Invalid_argument] if it does not fit in a signed 32 bits. *)
val rel32_for : jmp_end:int -> target:int -> int

(** [rel32_bytes rel] is the 4-byte little-endian encoding of [rel]. *)
val rel32_bytes : int -> int array

(** [fixed_high_of_bytes bytes] assembles the little-endian integer formed
    by the given high-order displacement bytes (lowest index = least
    significant of the fixed part). *)
val fixed_high_of_bytes : int list -> int

(** Physical page grouping (paper §4).

    Punned trampolines are pinned to constrained virtual addresses and so
    fragment the virtual address space. This pass recovers the {e physical}
    cost: the space is cut into blocks of [granularity] pages, and blocks
    whose trampoline extents do not overlap (relative to their block base)
    are merged into a single physical block that the loader maps at every
    corresponding virtual address (one-to-many, file-backed).

    A greedy first-fit partitioner is used, as in E9Patch ("a simple greedy
    algorithm gives reasonable results"). With grouping disabled, each
    virtual block gets its own physical block — the naïve one-to-one
    mapping the paper compares against. *)

type result = {
  blob : bytes;  (** concatenated physical blocks, appended to the file *)
  mappings : Loadmap.mapping list;
      (** loader directives; [file_off] is relative to the start of [blob]
          (the rewriter rebases them when it knows the final offset) *)
  physical_blocks : int;
  virtual_blocks : int;
}

(** [group ~granularity ~enabled trampolines] — [granularity] is the block
    size in pages (the paper's [M], ≥ 1); [enabled = false] selects the
    naïve one-to-one mapping. Trampolines must not overlap. *)
val group :
  granularity:int -> enabled:bool -> (int * bytes) list -> result

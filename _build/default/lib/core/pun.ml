let sext32 v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let target_window ~jmp_end ~free_bytes ~fixed_high =
  if free_bytes < 0 || free_bytes > 4 then invalid_arg "Pun.target_window";
  if free_bytes = 4 then (jmp_end - 0x8000_0000, jmp_end + 0x7fff_ffff)
  else begin
    let span = 1 lsl (8 * free_bytes) in
    let raw_lo = fixed_high lsl (8 * free_bytes) in
    (* The sign of the whole window is decided by the fixed top byte. *)
    let rel_lo = sext32 raw_lo in
    (jmp_end + rel_lo, jmp_end + rel_lo + span - 1)
  end

let rel32_for ~jmp_end ~target =
  let rel = target - jmp_end in
  if rel < -0x8000_0000 || rel > 0x7fff_ffff then
    invalid_arg "Pun.rel32_for: target out of rel32 range";
  rel

let rel32_bytes rel =
  let u = rel land 0xffff_ffff in
  Array.init 4 (fun i -> (u lsr (8 * i)) land 0xff)

let fixed_high_of_bytes bytes =
  List.fold_right (fun b acc -> (acc lsl 8) lor (b land 0xff)) bytes 0

type paper_app = {
  loc : int;
  base : float;
  succ : float;
  time : float option;
  size : float;
}

type category = Spec | System | Browser

type row = {
  profile : Codegen.profile;
  category : category;
  size_mb : float;
  paper_a1 : paper_app;
  paper_a2 : paper_app;
}

(* Calibration curves, measured on the generator (see bench `calibration`):
   A1 Base% falls roughly linearly in the short-jump bias, A2 Base% in the
   small-write bias. The inverses pick generator parameters from the
   paper's published Base%. *)
let short_bias_for_a1_base base = min 0.95 (max 0.02 ((96.0 -. base) /. 91.0))
let small_write_for_a2_base base = min 1.0 (max 0.0 ((96.0 -. base) /. 69.0))

(* Scaled text size: [functions] grows with the real binary (one function
   is roughly 700 bytes of text here), clamped so the whole suite runs in
   benchmark time. *)
let functions_for size_mb =
  max 30 (min 2500 (int_of_float (size_mb *. 150.0)))

let clamp_iterations = 400

let mk ~name ~seed ~category ~size_mb ?(pie = false) ?(shared = false)
    ?(bss_mb = 0) ?(data_in_text_kb = 0) ~a1 ~a2 () =
  let profile =
    { Codegen.default_profile with
      Codegen.name;
      seed = Int64.of_int seed;
      pie;
      shared_object = shared;
      bss_mb;
      data_in_text_kb;
      functions = functions_for size_mb;
      short_jump_bias = short_bias_for_a1_base a1.base;
      small_write_bias = small_write_for_a2_base a2.base;
      (* Denser branching than the generator default: SPEC-like dynamic
         profiles take a branch every ~4-5 instructions. *)
      block_insns = 3;
      iterations = clamp_iterations }
  in
  { profile; category; size_mb; paper_a1 = a1; paper_a2 = a2 }

let app ~loc ~base ~succ ?time ~size () = { loc; base; succ; time; size }

let rows =
  [ mk ~name:"perlbench" ~seed:101 ~category:Spec ~size_mb:1.25
      ~a1:(app ~loc:36821 ~base:86.88 ~succ:100.0 ~time:459.59 ~size:174.28 ())
      ~a2:(app ~loc:7522 ~base:71.16 ~succ:100.0 ~time:244.90 ~size:116.66 ())
      ();
    mk ~name:"bzip2" ~seed:102 ~category:Spec ~size_mb:0.07
      ~a1:(app ~loc:1484 ~base:79.85 ~succ:100.0 ~time:280.85 ~size:199.45 ())
      ~a2:(app ~loc:1044 ~base:68.39 ~succ:100.0 ~time:279.67 ~size:170.95 ())
      ();
    mk ~name:"gcc" ~seed:103 ~category:Spec ~size_mb:3.77
      ~a1:(app ~loc:97901 ~base:85.66 ~succ:100.0 ~time:364.41 ~size:164.50 ())
      ~a2:(app ~loc:14328 ~base:70.60 ~succ:100.0 ~time:148.73 ~size:109.90 ())
      ();
    mk ~name:"bwaves" ~seed:104 ~category:Spec ~size_mb:0.08
      ~a1:(app ~loc:314 ~base:71.34 ~succ:100.0 ~time:107.08 ~size:137.01 ())
      ~a2:(app ~loc:1168 ~base:92.55 ~succ:100.0 ~time:139.02 ~size:142.43 ())
      ();
    mk ~name:"gamess" ~seed:105 ~category:Spec ~size_mb:12.22 ~bss_mb:1600
      ~a1:(app ~loc:125620 ~base:59.91 ~succ:99.73 ~time:226.16 ~size:131.14 ())
      ~a2:(app ~loc:279592 ~base:87.58 ~succ:99.94 ~time:321.89 ~size:136.93 ())
      ();
    mk ~name:"mcf" ~seed:106 ~category:Spec ~size_mb:0.02
      ~a1:(app ~loc:295 ~base:68.47 ~succ:100.0 ~time:194.92 ~size:203.75 ())
      ~a2:(app ~loc:220 ~base:75.91 ~succ:100.0 ~time:141.02 ~size:221.51 ())
      ();
    mk ~name:"milc" ~seed:107 ~category:Spec ~size_mb:0.14
      ~a1:(app ~loc:1940 ~base:80.62 ~succ:100.0 ~time:115.03 ~size:157.13 ())
      ~a2:(app ~loc:699 ~base:84.84 ~succ:100.0 ~time:117.54 ~size:119.14 ())
      ();
    mk ~name:"zeusmp" ~seed:108 ~category:Spec ~size_mb:0.52 ~bss_mb:1200
      ~a1:(app ~loc:3191 ~base:53.74 ~succ:98.68 ~time:145.34 ~size:125.28 ())
      ~a2:(app ~loc:6106 ~base:82.61 ~succ:99.82 ~time:131.50 ~size:128.74 ())
      ();
    mk ~name:"gromacs" ~seed:109 ~category:Spec ~size_mb:1.20
      ~a1:(app ~loc:12058 ~base:80.19 ~succ:100.0 ~time:116.16 ~size:133.01 ())
      ~a2:(app ~loc:16940 ~base:93.87 ~succ:100.0 ~time:148.07 ~size:123.71 ())
      ();
    mk ~name:"cactusADM" ~seed:110 ~category:Spec ~size_mb:0.91
      ~a1:(app ~loc:12847 ~base:78.94 ~succ:100.0 ~time:101.43 ~size:140.70 ())
      ~a2:(app ~loc:5420 ~base:86.85 ~succ:100.0 ~time:119.48 ~size:113.45 ())
      ();
    mk ~name:"leslie3d" ~seed:111 ~category:Spec ~size_mb:0.18
      ~a1:(app ~loc:2584 ~base:44.43 ~succ:100.0 ~time:151.89 ~size:174.56 ())
      ~a2:(app ~loc:2761 ~base:91.34 ~succ:100.0 ~time:172.08 ~size:138.47 ())
      ();
    mk ~name:"namd" ~seed:112 ~category:Spec ~size_mb:0.33
      ~a1:(app ~loc:4879 ~base:73.42 ~succ:100.0 ~time:146.78 ~size:154.81 ())
      ~a2:(app ~loc:2498 ~base:71.46 ~succ:100.0 ~time:138.01 ~size:120.42 ())
      ();
    mk ~name:"gobmk" ~seed:113 ~category:Spec ~size_mb:4.03
      ~a1:(app ~loc:17912 ~base:75.88 ~succ:100.0 ~time:368.97 ~size:113.80 ())
      ~a2:(app ~loc:2777 ~base:79.33 ~succ:100.0 ~time:179.24 ~size:102.30 ())
      ();
    mk ~name:"dealII" ~seed:114 ~category:Spec ~size_mb:4.20
      ~a1:(app ~loc:61317 ~base:71.31 ~succ:100.0 ~time:386.08 ~size:144.34 ())
      ~a2:(app ~loc:25590 ~base:80.47 ~succ:99.99 ~time:168.86 ~size:112.27 ())
      ();
    mk ~name:"soplex" ~seed:115 ~category:Spec ~size_mb:0.49
      ~a1:(app ~loc:10125 ~base:79.72 ~succ:100.0 ~time:244.23 ~size:162.93 ())
      ~a2:(app ~loc:4188 ~base:83.05 ~succ:100.0 ~time:162.98 ~size:121.64 ())
      ();
    mk ~name:"povray" ~seed:116 ~category:Spec ~size_mb:1.19
      ~a1:(app ~loc:20520 ~base:86.92 ~succ:100.0 ~time:408.33 ~size:146.34 ())
      ~a2:(app ~loc:9377 ~base:84.50 ~succ:100.0 ~time:186.36 ~size:116.37 ())
      ();
    mk ~name:"calculix" ~seed:117 ~category:Spec ~size_mb:2.17
      ~a1:(app ~loc:30343 ~base:70.48 ~succ:100.0 ~time:132.78 ~size:141.24 ())
      ~a2:(app ~loc:32197 ~base:85.62 ~succ:100.0 ~time:126.13 ~size:128.26 ())
      ();
    mk ~name:"hmmer" ~seed:118 ~category:Spec ~size_mb:0.33
      ~a1:(app ~loc:6748 ~base:77.71 ~succ:100.0 ~time:182.94 ~size:174.52 ())
      ~a2:(app ~loc:3061 ~base:75.11 ~succ:100.0 ~time:468.53 ~size:129.85 ())
      ();
    mk ~name:"sjeng" ~seed:119 ~category:Spec ~size_mb:0.16
      ~a1:(app ~loc:3473 ~base:83.01 ~succ:100.0 ~time:444.13 ~size:177.02 ())
      ~a2:(app ~loc:683 ~base:84.77 ~succ:100.0 ~time:134.78 ~size:123.32 ())
      ();
    mk ~name:"GemsFDTD" ~seed:120 ~category:Spec ~size_mb:0.58
      ~a1:(app ~loc:9120 ~base:41.62 ~succ:100.0 ~time:104.78 ~size:166.74 ())
      ~a2:(app ~loc:10345 ~base:93.23 ~succ:100.0 ~time:111.64 ~size:132.30 ())
      ();
    mk ~name:"libquantum" ~seed:121 ~category:Spec ~size_mb:0.05
      ~a1:(app ~loc:732 ~base:75.55 ~succ:100.0 ~time:325.81 ~size:190.57 ())
      ~a2:(app ~loc:186 ~base:76.34 ~succ:100.0 ~time:269.68 ~size:139.82 ())
      ();
    mk ~name:"h264ref" ~seed:122 ~category:Spec ~size_mb:0.58
      ~a1:(app ~loc:9920 ~base:80.30 ~succ:100.0 ~time:206.61 ~size:151.60 ())
      ~a2:(app ~loc:4981 ~base:81.87 ~succ:100.0 ~time:178.89 ~size:122.04 ())
      ();
    mk ~name:"tonto" ~seed:123 ~category:Spec ~size_mb:6.21
      ~a1:(app ~loc:48247 ~base:52.65 ~succ:100.0 ~time:196.21 ~size:125.54 ())
      ~a2:(app ~loc:164788 ~base:90.05 ~succ:100.0 ~time:192.72 ~size:141.53 ())
      ();
    mk ~name:"lbm" ~seed:124 ~category:Spec ~size_mb:0.02
      ~a1:(app ~loc:106 ~base:67.92 ~succ:100.0 ~time:103.80 ~size:193.33 ())
      ~a2:(app ~loc:111 ~base:93.69 ~succ:100.0 ~time:110.13 ~size:148.74 ())
      ();
    mk ~name:"omnetpp" ~seed:125 ~category:Spec ~size_mb:0.79
      ~a1:(app ~loc:9568 ~base:78.08 ~succ:100.0 ~time:203.90 ~size:135.45 ())
      ~a2:(app ~loc:5020 ~base:74.12 ~succ:100.0 ~time:144.81 ~size:117.53 ())
      ();
    mk ~name:"astar" ~seed:126 ~category:Spec ~size_mb:0.05
      ~a1:(app ~loc:769 ~base:78.54 ~succ:100.0 ~time:287.64 ~size:180.98 ())
      ~a2:(app ~loc:491 ~base:72.91 ~succ:100.0 ~time:137.64 ~size:152.03 ())
      ();
    mk ~name:"sphinx3" ~seed:127 ~category:Spec ~size_mb:0.21
      ~a1:(app ~loc:3500 ~base:79.20 ~succ:100.0 ~time:196.27 ~size:170.99 ())
      ~a2:(app ~loc:1159 ~base:73.94 ~succ:100.0 ~time:129.17 ~size:123.55 ())
      ();
    mk ~name:"xalancbmk" ~seed:128 ~category:Spec ~size_mb:5.99
      ~a1:(app ~loc:81285 ~base:75.66 ~succ:100.0 ~time:474.07 ~size:137.04 ())
      ~a2:(app ~loc:32761 ~base:79.51 ~succ:100.0 ~time:130.16 ~size:111.38 ())
      ();
    mk ~name:"inkscape" ~seed:201 ~category:System ~size_mb:15.44 ~pie:true
      ~a1:(app ~loc:195731 ~base:97.83 ~succ:100.0 ~size:130.40 ())
      ~a2:(app ~loc:105431 ~base:99.96 ~succ:100.0 ~size:109.58 ())
      ();
    mk ~name:"gimp" ~seed:202 ~category:System ~size_mb:5.75
      ~a1:(app ~loc:71321 ~base:71.75 ~succ:100.0 ~size:135.74 ())
      ~a2:(app ~loc:15730 ~base:84.83 ~succ:100.0 ~size:106.00 ())
      ();
    mk ~name:"vim" ~seed:203 ~category:System ~size_mb:2.44 ~pie:true
      ~a1:(app ~loc:72221 ~base:99.18 ~succ:100.0 ~size:173.31 ())
      ~a2:(app ~loc:13279 ~base:99.92 ~succ:100.0 ~size:110.77 ())
      ();
    mk ~name:"git" ~seed:204 ~category:System ~size_mb:1.87
      ~a1:(app ~loc:44441 ~base:80.06 ~succ:100.0 ~size:169.16 ())
      ~a2:(app ~loc:9072 ~base:68.06 ~succ:100.0 ~size:113.60 ())
      ();
    mk ~name:"pdflatex" ~seed:205 ~category:System ~size_mb:0.91
      ~a1:(app ~loc:22105 ~base:82.05 ~succ:100.0 ~size:168.72 ())
      ~a2:(app ~loc:6060 ~base:70.61 ~succ:100.0 ~size:118.70 ())
      ();
    mk ~name:"xterm" ~seed:206 ~category:System ~size_mb:0.54
      ~a1:(app ~loc:11593 ~base:79.12 ~succ:100.0 ~size:166.23 ())
      ~a2:(app ~loc:2681 ~base:89.11 ~succ:100.0 ~size:113.16 ())
      ();
    mk ~name:"evince" ~seed:207 ~category:System ~size_mb:0.42 ~pie:true
      ~a1:(app ~loc:3636 ~base:99.59 ~succ:100.0 ~size:131.63 ())
      ~a2:(app ~loc:716 ~base:99.86 ~succ:100.0 ~size:107.86 ())
      ();
    mk ~name:"make" ~seed:208 ~category:System ~size_mb:0.21
      ~a1:(app ~loc:4807 ~base:79.34 ~succ:100.0 ~size:182.78 ())
      ~a2:(app ~loc:1383 ~base:74.98 ~succ:100.0 ~size:125.48 ())
      ();
    mk ~name:"libc.so" ~seed:209 ~category:System ~size_mb:1.87 ~shared:true
      ~a1:(app ~loc:52393 ~base:81.19 ~succ:100.0 ~size:247.67 ())
      ~a2:(app ~loc:24686 ~base:74.32 ~succ:100.0 ~size:203.87 ())
      ();
    mk ~name:"libc++.so" ~seed:210 ~category:System ~size_mb:1.57 ~shared:true
      ~a1:(app ~loc:20593 ~base:75.14 ~succ:100.0 ~size:184.99 ())
      ~a2:(app ~loc:15442 ~base:67.56 ~succ:100.0 ~size:168.80 ())
      ();
    (* Chrome's .text mixes data and code (§6.2): the suite reproduces it
       with an embedded constant pool; the bench disassembles after the
       ChromeMain marker, as the paper did. *)
    mk ~name:"chrome" ~seed:301 ~category:Browser ~size_mb:152.51 ~pie:true
      ~data_in_text_kb:24
      ~a1:(app ~loc:3800565 ~base:93.20 ~succ:100.0 ~size:226.31 ())
      ~a2:(app ~loc:2624800 ~base:99.38 ~succ:100.0 ~size:197.68 ())
      ();
    mk ~name:"firefox" ~seed:302 ~category:Browser ~size_mb:0.52 ~pie:true
      ~a1:(app ~loc:13971 ~base:98.02 ~succ:100.0 ~size:269.22 ())
      ~a2:(app ~loc:7355 ~base:99.90 ~succ:100.0 ~size:208.06 ())
      ();
    mk ~name:"libxul.so" ~seed:303 ~category:Browser ~size_mb:115.03
      ~shared:true
      ~a1:(app ~loc:1463369 ~base:68.55 ~succ:99.99 ~size:194.55 ())
      ~a2:(app ~loc:666109 ~base:75.72 ~succ:100.0 ~size:174.22 ()) () ]

let paper_total_a1 =
  { loc = 613619; base = 72.79; succ = 99.94; time = Some 210.81; size = 157.43 }

let paper_total_a2 =
  { loc = 636013; base = 81.63; succ = 99.99; time = Some 164.71; size = 130.90 }

let find name =
  List.find_opt (fun r -> String.equal r.profile.Codegen.name name) rows

let spec_rows = List.filter (fun r -> r.category = Spec) rows

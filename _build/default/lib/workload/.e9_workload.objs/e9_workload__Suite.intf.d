lib/workload/suite.mli: Codegen

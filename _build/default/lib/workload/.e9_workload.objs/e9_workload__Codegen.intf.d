lib/workload/codegen.mli: Elf_file

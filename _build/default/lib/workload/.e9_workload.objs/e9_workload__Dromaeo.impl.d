lib/workload/dromaeo.ml: Codegen Int64

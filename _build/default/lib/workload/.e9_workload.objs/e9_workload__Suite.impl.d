lib/workload/suite.ml: Codegen Int64 List String

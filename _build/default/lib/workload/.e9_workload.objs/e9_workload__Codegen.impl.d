lib/workload/codegen.ml: Array Bytes Char E9_bits E9_emu E9_x86 Elf_file Int64 List Printf String Tablemeta

lib/workload/dromaeo.mli: Codegen

(** The evaluation suite: one synthetic stand-in per Table 1 row.

    Each row records the paper's published statistics (for the
    paper-vs-measured comparison in EXPERIMENTS.md) and a generator profile
    whose {e structural} parameters are derived from them:

    - the load address and e_type come from the row's PIE/DSO nature;
    - [short_jump_bias] / [small_write_bias] are set from the row's
      published Base% through the calibration curves measured in
      [bench/main.ml] (the instruction-length mix is the input the tactics
      respond to; the resulting coverage then {e emerges} from the real
      algorithm rather than being scripted);
    - gamess/zeusmp get multi-GiB [.bss] reservations (limitation L1);
    - sizes are scaled down ~50–500× (documented in DESIGN.md §2).

    Every profile is seeded; the whole suite is deterministic. *)

type paper_app = {
  loc : int;  (** the paper's #Loc *)
  base : float;  (** the paper's Base% *)
  succ : float;  (** the paper's Succ% *)
  time : float option;  (** the paper's Time% (None for system binaries) *)
  size : float;  (** the paper's Size% *)
}

type category = Spec | System | Browser

type row = {
  profile : Codegen.profile;
  category : category;
  size_mb : float;  (** the real binary's size *)
  paper_a1 : paper_app;
  paper_a2 : paper_app;
}

(** All Table 1 rows in paper order. *)
val rows : row list

(** Paper totals (the #Total/Avg% row) for the two applications. *)
val paper_total_a1 : paper_app

val paper_total_a2 : paper_app

(** [find name] looks a row up by benchmark name. *)
val find : string -> row option

(** [spec_rows] — the 28 SPEC2006 rows (the ones with Time%). *)
val spec_rows : row list

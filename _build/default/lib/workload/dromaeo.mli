(** Stand-ins for the Dromaeo DOM browser benchmarks (Figure 4).

    The paper runs fourteen Dromaeo DOM suites on A2-instrumented Chrome
    and Firefox. The quantity each bar measures is the relative runtime of
    the instrumented browser on that suite, which is driven by the suite's
    {e dynamic heap-write density} (attribute and node mutations are
    pointer-write heavy; query/traversal suites less so). Each suite is
    modelled as a browser-profile program with a characteristic write
    density.

    The Firefox variant patches only part of the text — the paper's
    observation that Firefox "spends more time in JIT'ed code or in
    non-instrumented shared objects", and an exercise of E9Patch's safe
    mixing of patched and non-patched code (§5.1). *)

type suite = { name : string; write_bias : float; seed : int }

(** The fourteen Dromaeo DOM suites, in Figure 4 order. *)
val suites : suite list

(** [program suite] generates the browser-like workload for one suite. *)
val program : suite -> Codegen.profile

(** Fraction of the text instrumented for the Firefox variant. *)
val firefox_instrumented_fraction : float

(** The paper's overall outcomes: ~213% relative runtime for Chrome and
    ~146% for Firefox (geometric means over the suites). *)
val paper_chrome_mean : float

val paper_firefox_mean : float

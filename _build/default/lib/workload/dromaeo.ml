type suite = { name : string; write_bias : float; seed : int }

(* Mutation-heavy suites (Attrib/Modify/Events) get high write densities;
   query and traversal suites are read-dominated. *)
let suites =
  [ { name = "Attrib"; write_bias = 0.22; seed = 401 };
    { name = "Attrib.Proto"; write_bias = 0.26; seed = 402 };
    { name = "Attrib.jQuery"; write_bias = 0.30; seed = 403 };
    { name = "Modify"; write_bias = 0.24; seed = 404 };
    { name = "Modify.Proto"; write_bias = 0.28; seed = 405 };
    { name = "Modify.jQuery"; write_bias = 0.32; seed = 406 };
    { name = "Query"; write_bias = 0.08; seed = 407 };
    { name = "Style.Proto"; write_bias = 0.18; seed = 408 };
    { name = "Style.jQuery"; write_bias = 0.21; seed = 409 };
    { name = "Events.Proto"; write_bias = 0.25; seed = 410 };
    { name = "Events.jQuery"; write_bias = 0.29; seed = 411 };
    { name = "Traverse"; write_bias = 0.06; seed = 412 };
    { name = "Traverse.Proto"; write_bias = 0.10; seed = 413 };
    { name = "Traverse.jQuery"; write_bias = 0.13; seed = 414 } ]

let program s =
  { Codegen.default_profile with
    Codegen.name = "dromaeo-" ^ s.name;
    seed = Int64.of_int s.seed;
    pie = true;
    functions = 300;
    heap_write_bias = s.write_bias;
    small_write_bias = 0.05;
    iterations = 300 }

let firefox_instrumented_fraction = 0.25
let paper_chrome_mean = 213.0
let paper_firefox_mean = 146.0

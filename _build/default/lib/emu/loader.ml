module Buf = E9_bits.Buf
module Space = E9_vm.Space

type loaded = { entry : int; traps : (int, int) Hashtbl.t; mapping_count : int }

let load space (elf : Elf_file.t) =
  let file_len = Buf.length elf.data in
  let file = Buf.raw elf.data in
  let map_slice ~vaddr ~prot off len =
    if off < 0 || len < 0 || off + len > file_len then
      failwith
        (Printf.sprintf "Loader: mapping %d+%d outside file of %d bytes" off
           len file_len);
    Space.map_sub space ~vaddr ~prot file ~src_off:off ~len
  in
  List.iter
    (fun (seg : Elf_file.segment) ->
      match seg.ptype with
      | Load ->
          map_slice ~vaddr:seg.vaddr ~prot:seg.prot seg.offset seg.filesz;
          if seg.memsz > seg.filesz then
            Space.map_zero space
              ~vaddr:(seg.vaddr + seg.filesz)
              ~len:(seg.memsz - seg.filesz)
              ~prot:seg.prot
      | Note | Other _ -> ())
    elf.segments;
  let mapping_count = ref 0 in
  (match Elf_file.find_section elf Elf_file.mmap_section_name with
  | Some sec ->
      let mappings = Loadmap.decode_mappings (Elf_file.section_bytes elf sec) in
      List.iter
        (fun (m : Loadmap.mapping) ->
          incr mapping_count;
          map_slice ~vaddr:m.vaddr ~prot:m.prot m.file_off m.len)
        mappings
  | None -> ());
  let traps = Hashtbl.create 16 in
  (match Elf_file.find_section elf Elf_file.trap_section_name with
  | Some sec ->
      List.iter
        (fun (t : Loadmap.trap) ->
          Hashtbl.replace traps t.patch_addr t.trampoline_addr)
        (Loadmap.decode_traps (Elf_file.section_bytes elf sec))
  | None -> ());
  { entry = elf.entry; traps; mapping_count = !mapping_count }

lib/emu/hostcall.ml:

lib/emu/hostcall.mli:

lib/emu/machine.mli: Cpu E9_vm Elf_file Hashtbl

lib/emu/machine.ml: Cpu E9_vm Elf_file Hashtbl List Loader String

lib/emu/loader.ml: E9_bits E9_vm Elf_file Hashtbl List Loadmap Printf

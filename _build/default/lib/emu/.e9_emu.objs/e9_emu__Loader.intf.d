lib/emu/loader.mli: E9_vm Elf_file Hashtbl

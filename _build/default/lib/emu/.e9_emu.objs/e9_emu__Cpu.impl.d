lib/emu/cpu.ml: Array Buffer Bytes Char E9_vm E9_x86 Elf_file Hashtbl Hostcall Int64 Lazy List Option Printf String

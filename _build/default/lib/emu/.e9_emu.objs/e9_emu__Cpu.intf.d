lib/emu/cpu.mli: E9_vm Hashtbl Lazy

(** Program loading: maps an ELF image into a {!E9_vm.Space.t} the way the
    kernel plus E9Patch's integrated loader would.

    Loading happens in two phases, mirroring §5.1 of the paper:
    + each [PT_LOAD] segment's file content is mapped at its [p_vaddr]
      (with a zero-filled [.bss] tail when [memsz > filesz]);
    + the rewriter's mapping table ([.e9patch.mmap] section), if present,
      is applied on top — these are the trampoline mappings, and with
      physical page grouping several virtual pages may be backed by the
      same file range (one-to-many).

    The B0 trap table ([.e9patch.trap]) is returned for the CPU's SIGTRAP
    handler model. *)

type loaded = {
  entry : int;
  traps : (int, int) Hashtbl.t;  (** patch address → trampoline address *)
  mapping_count : int;  (** number of loader mmap calls performed *)
}

(** [load space elf] maps [elf] and returns its entry point and trap table.
    Raises [Failure] if a mapping refers to bytes outside the file image. *)
val load : E9_vm.Space.t -> Elf_file.t -> loaded

exception Fault of int * string

let page_size = 4096
let page_bits = 12

type page = { bytes : Bytes.t; mutable prot : Elf_file.prot }

type t = {
  pages : (int, page) Hashtbl.t;
  (* Zero-filled regions are materialized lazily: a multi-GiB .bss must not
     allocate host memory until touched. Newest first (later maps win). *)
  mutable zero_regions : (int * int * Elf_file.prot) list;
  (* One-entry cache of the last page touched: the hot path for both data
     access and instruction fetch. *)
  mutable last_pn : int;
  mutable last_page : page option;
}

let create () =
  { pages = Hashtbl.create 1024;
    zero_regions = [];
    last_pn = -1;
    last_page = None }

let fault addr msg = raise (Fault (addr, msg))

let materialize_zero t pn =
  (* A page is backed by a zero region when any of its bytes fall inside
     one; the region's protection applies. *)
  let lo = pn lsl page_bits and hi = (pn + 1) lsl page_bits in
  match
    List.find_opt (fun (rlo, rhi, _) -> rlo < hi && rhi > lo) t.zero_regions
  with
  | Some (_, _, prot) ->
      let p = { bytes = Bytes.make page_size '\000'; prot } in
      Hashtbl.replace t.pages pn p;
      Some p
  | None -> None

let page_of t pn =
  if t.last_pn = pn then t.last_page
  else begin
    let p =
      match Hashtbl.find_opt t.pages pn with
      | Some _ as p -> p
      | None -> materialize_zero t pn
    in
    t.last_pn <- pn;
    t.last_page <- p;
    p
  end

let ensure_page t pn prot =
  match page_of t pn with
  | Some p ->
      p.prot <- prot;
      p
  | None ->
      let p = { bytes = Bytes.make page_size '\000'; prot } in
      Hashtbl.replace t.pages pn p;
      t.last_pn <- pn;
      t.last_page <- Some p;
      p

let map_sub t ~vaddr ~prot content ~src_off ~len =
  if src_off < 0 || len < 0 || src_off + len > Bytes.length content then
    invalid_arg "Space.map_sub";
  let pos = ref 0 in
  while !pos < len do
    let addr = vaddr + !pos in
    let pn = addr lsr page_bits in
    let off = addr land (page_size - 1) in
    let chunk = min (page_size - off) (len - !pos) in
    let p = ensure_page t pn prot in
    Bytes.blit content (src_off + !pos) p.bytes off chunk;
    pos := !pos + chunk
  done

let map_bytes t ~vaddr ~prot content =
  map_sub t ~vaddr ~prot content ~src_off:0 ~len:(Bytes.length content)

let map_zero t ~vaddr ~len ~prot =
  if len > 0 then begin
    (* Pages already materialized are zeroed eagerly (the covered part);
       untouched pages wait in [zero_regions]. *)
    let first = vaddr lsr page_bits and last = (vaddr + len - 1) lsr page_bits in
    if last - first < 16 then
      for pn = first to last do
        let p = ensure_page t pn prot in
        let lo = max vaddr (pn lsl page_bits) in
        let hi = min (vaddr + len) ((pn + 1) lsl page_bits) in
        Bytes.fill p.bytes (lo land (page_size - 1)) (hi - lo) '\000'
      done
    else begin
      for pn = first to last do
        match Hashtbl.find_opt t.pages pn with
        | Some p ->
            p.prot <- prot;
            let lo = max vaddr (pn lsl page_bits) in
            let hi = min (vaddr + len) ((pn + 1) lsl page_bits) in
            Bytes.fill p.bytes (lo land (page_size - 1)) (hi - lo) '\000'
        | None -> ()
      done;
      t.zero_regions <- (vaddr, vaddr + len, prot) :: t.zero_regions;
      t.last_pn <- -1;
      t.last_page <- None
    end
  end

let is_mapped t addr = page_of t (addr lsr page_bits) <> None
let pages_mapped t = Hashtbl.length t.pages

let get_page_for t addr ~write ~exec =
  match page_of t (addr lsr page_bits) with
  | None -> fault addr "unmapped"
  | Some p ->
      if write && not p.prot.w then fault addr "write to read-only page";
      if exec && not p.prot.x then fault addr "fetch from non-executable page";
      if (not write) && (not exec) && not p.prot.r then
        fault addr "read from unreadable page";
      p

let read_u8 t addr =
  let p = get_page_for t addr ~write:false ~exec:false in
  Char.code (Bytes.unsafe_get p.bytes (addr land (page_size - 1)))

let write_u8 t addr v =
  let p = get_page_for t addr ~write:true ~exec:false in
  Bytes.unsafe_set p.bytes (addr land (page_size - 1)) (Char.chr (v land 0xff))

(* Fast path: access that stays within one page. *)
let read_multi t addr n =
  let off = addr land (page_size - 1) in
  if off + n <= page_size then begin
    let p = get_page_for t addr ~write:false ~exec:false in
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.unsafe_get p.bytes (off + i))
    done;
    !v
  end
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl 8) lor read_u8 t (addr + i)
    done;
    !v
  end

let write_multi t addr n v =
  let off = addr land (page_size - 1) in
  if off + n <= page_size then begin
    let p = get_page_for t addr ~write:true ~exec:false in
    for i = 0 to n - 1 do
      Bytes.unsafe_set p.bytes (off + i) (Char.unsafe_chr ((v lsr (8 * i)) land 0xff))
    done
  end
  else
    for i = 0 to n - 1 do
      write_u8 t (addr + i) ((v lsr (8 * i)) land 0xff)
    done

let read_u32 t addr = read_multi t addr 4
let read_u64 t addr = read_multi t addr 8
let write_u32 t addr v = write_multi t addr 4 v
let write_u64 t addr v = write_multi t addr 8 v

let read_bytes t addr len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set out i (Char.chr (read_u8 t (addr + i)))
  done;
  out

let write_bytes t addr b =
  for i = 0 to Bytes.length b - 1 do
    write_u8 t (addr + i) (Char.code (Bytes.get b i))
  done

let fetch_window t addr =
  let pn = addr lsr page_bits in
  (match page_of t pn with
  | None -> fault addr "fetch from unmapped page"
  | Some p -> if not p.prot.x then fault addr "fetch from non-executable page");
  let out = Buffer.create 16 in
  (try
     for i = 0 to 15 do
       let a = addr + i in
       match page_of t (a lsr page_bits) with
       | Some p when p.prot.x ->
           Buffer.add_char out (Bytes.get p.bytes (a land (page_size - 1)))
       | Some _ | None -> raise Exit
     done
   with Exit -> ());
  Buffer.to_bytes out

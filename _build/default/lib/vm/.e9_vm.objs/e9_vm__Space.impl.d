lib/vm/space.ml: Buffer Bytes Char Elf_file Hashtbl List

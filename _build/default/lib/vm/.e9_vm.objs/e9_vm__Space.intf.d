lib/vm/space.mli: Elf_file

module Buf = E9_bits.Buf

type kind = Abs64 | Off32 of int
type table = { addr : int; kind : kind; entries : int }

let section_name = ".e9repro.cfg"

let encode tables =
  let b = Buf.create (List.length tables * 32) in
  List.iter
    (fun t ->
      ignore (Buf.add_u64 b (Int64.of_int t.addr));
      (match t.kind with
      | Abs64 ->
          ignore (Buf.add_u64 b 0L);
          ignore (Buf.add_u64 b 0L)
      | Off32 base ->
          ignore (Buf.add_u64 b 1L);
          ignore (Buf.add_u64 b (Int64.of_int base)));
      ignore (Buf.add_u64 b (Int64.of_int t.entries)))
    tables;
  Buf.contents b

let decode bytes =
  let b = Buf.of_bytes bytes in
  let n = Buf.length b / 32 in
  List.init n (fun i ->
      let at k = Int64.to_int (Buf.get_u64 b ((i * 32) + k)) in
      { addr = at 0;
        kind = (if at 8 = 0 then Abs64 else Off32 (at 16));
        entries = at 24 })

lib/elf/tablemeta.mli:

lib/elf/tablemeta.ml: E9_bits Int64 List

lib/elf/loadmap.ml: E9_bits Elf_file Int64 List

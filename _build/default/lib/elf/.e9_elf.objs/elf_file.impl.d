lib/elf/elf_file.ml: Buffer Bytes E9_bits Format Fun Int64 List Printf String

lib/elf/loadmap.mli: Elf_file

lib/elf/elf_file.mli: E9_bits Format

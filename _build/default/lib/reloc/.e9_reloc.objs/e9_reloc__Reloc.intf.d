lib/reloc/reloc.mli: Elf_file Frontend

lib/reloc/reloc.ml: E9_bits E9_x86 Elf_file Frontend Hashtbl Int64 List Printf Tablemeta

lib/spec/patchspec.ml: E9_core E9_x86 Format Frontend List Printf String

lib/spec/patchspec.mli: E9_core Format Frontend

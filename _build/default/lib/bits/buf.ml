type t = { mutable data : bytes; mutable len : int }

let create n = { data = Bytes.make (max n 16) '\000'; len = 0 }
let length b = b.len

let ensure b n =
  if n > Bytes.length b.data then begin
    let cap = ref (Bytes.length b.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Bytes.make !cap '\000' in
    Bytes.blit b.data 0 data 0 b.len;
    b.data <- data
  end

let of_bytes s =
  let b = create (Bytes.length s) in
  ensure b (Bytes.length s);
  Bytes.blit s 0 b.data 0 (Bytes.length s);
  b.len <- Bytes.length s;
  b

let of_string s = of_bytes (Bytes.of_string s)
let contents b = Bytes.sub b.data 0 b.len

let check b pos len =
  if pos < 0 || len < 0 || pos + len > b.len then
    invalid_arg
      (Printf.sprintf "Buf: range %d+%d out of bounds (len %d)" pos len b.len)

let sub b ~pos ~len =
  check b pos len;
  Bytes.sub b.data pos len

let raw b = b.data

let blit_in b ~pos s =
  check b pos (Bytes.length s);
  Bytes.blit s 0 b.data pos (Bytes.length s)

let get_u8 b i =
  check b i 1;
  Char.code (Bytes.unsafe_get b.data i)

let set_u8 b i v =
  check b i 1;
  Bytes.unsafe_set b.data i (Char.chr (v land 0xff))

let get_u16 b i =
  check b i 2;
  Char.code (Bytes.get b.data i) lor (Char.code (Bytes.get b.data (i + 1)) lsl 8)

let get_u32 b i =
  check b i 4;
  get_u16 b i lor (get_u16 b (i + 2) lsl 16)

let get_i32 b i =
  let v = get_u32 b i in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let get_u64 b i =
  check b i 8;
  Int64.logor
    (Int64.of_int (get_u32 b i))
    (Int64.shift_left (Int64.of_int (get_u32 b (i + 4))) 32)

let set_u16 b i v =
  set_u8 b i v;
  set_u8 b (i + 1) (v lsr 8)

let set_u32 b i v =
  set_u16 b i v;
  set_u16 b (i + 2) (v lsr 16)

let set_u64 b i v =
  set_u32 b i (Int64.to_int (Int64.logand v 0xffff_ffffL));
  set_u32 b (i + 4) (Int64.to_int (Int64.shift_right_logical v 32))

let add_u8 b v =
  let pos = b.len in
  ensure b (pos + 1);
  b.len <- pos + 1;
  set_u8 b pos v;
  pos

let add_u16 b v =
  let pos = b.len in
  ensure b (pos + 2);
  b.len <- pos + 2;
  set_u16 b pos v;
  pos

let add_u32 b v =
  let pos = b.len in
  ensure b (pos + 4);
  b.len <- pos + 4;
  set_u32 b pos v;
  pos

let add_u64 b v =
  let pos = b.len in
  ensure b (pos + 8);
  b.len <- pos + 8;
  set_u64 b pos v;
  pos

let add_bytes b s =
  let pos = b.len in
  ensure b (pos + Bytes.length s);
  b.len <- pos + Bytes.length s;
  blit_in b ~pos s;
  pos

let add_string b s = add_bytes b (Bytes.of_string s)

let add_zeros b n =
  let pos = b.len in
  ensure b (pos + n);
  Bytes.fill b.data pos n '\000';
  b.len <- pos + n;
  pos

let pad_to b n = if b.len < n then ignore (add_zeros b (n - b.len))

let pp_hex ppf b =
  for i = 0 to b.len - 1 do
    if i > 0 && i mod 16 = 0 then Format.pp_print_newline ppf ();
    Format.fprintf ppf "%02x " (get_u8 b i)
  done

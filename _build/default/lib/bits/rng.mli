(** Deterministic pseudo-random numbers (splitmix64).

    Every randomized component in this project — the synthetic binary
    generator, property tests, workload profiles — draws from this generator
    so that whole-pipeline runs are reproducible from a single seed. *)

type t

(** [create seed] is a fresh generator. Equal seeds give equal streams. *)
val create : int64 -> t

(** [split t] derives an independent generator (for sub-components). *)
val split : t -> t

(** [next t] is the next raw 64-bit value. *)
val next : t -> int64

(** [int t n] is uniform in [0, n). Requires [n > 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [chance t p] is true with probability [p] (clamped to [0,1]). *)
val chance : t -> float -> bool

(** [float t] is uniform in [0,1). *)
val float : t -> float

(** [pick t arr] is a uniformly chosen element. Requires a nonempty array. *)
val pick : t -> 'a array -> 'a

(** [weighted t choices] picks according to nonnegative weights; at least one
    weight must be positive. *)
val weighted : t -> (float * 'a) list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

lib/bits/buf.ml: Bytes Char Format Int64 Printf

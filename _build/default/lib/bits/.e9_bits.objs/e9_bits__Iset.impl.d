lib/bits/iset.ml: Int List Map

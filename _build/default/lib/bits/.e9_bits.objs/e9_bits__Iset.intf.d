lib/bits/iset.mli:

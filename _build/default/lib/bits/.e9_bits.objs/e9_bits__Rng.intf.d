lib/bits/rng.mli:

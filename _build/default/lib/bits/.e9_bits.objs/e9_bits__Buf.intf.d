lib/bits/buf.mli: Format

lib/bits/pool.ml: Array Atomic Domain List Printexc String Sys

lib/bits/pool.mli:

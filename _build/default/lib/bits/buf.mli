(** Growable byte buffers with little-endian accessors.

    All machine-code and ELF emission in this project goes through [Buf].
    Offsets and sizes are plain OCaml [int]s (addresses in this project fit
    comfortably in 62 bits). Reads and writes beyond the current length
    raise [Invalid_argument]. *)

type t

(** [create n] is an empty buffer with initial capacity [n]. *)
val create : int -> t

(** [length b] is the number of valid bytes in [b]. *)
val length : t -> int

(** [of_bytes s] copies [s] into a fresh buffer. *)
val of_bytes : bytes -> t

(** [of_string s] copies [s] into a fresh buffer. *)
val of_string : string -> t

(** [contents b] is a copy of the valid bytes of [b]. *)
val contents : t -> bytes

(** [sub b ~pos ~len] copies the given range. *)
val sub : t -> pos:int -> len:int -> bytes

(** [raw b] is the underlying storage, valid in [0, length b). Read-only
    use by zero-copy consumers (the loader); do not mutate. *)
val raw : t -> bytes

(** [blit_in b ~pos s] overwrites bytes of [b] at [pos] with [s]. *)
val blit_in : t -> pos:int -> bytes -> unit

(** [get_u8 b i] reads the unsigned byte at [i]. *)
val get_u8 : t -> int -> int

(** [set_u8 b i v] writes the low 8 bits of [v] at [i]. *)
val set_u8 : t -> int -> int -> unit

(** Little-endian fixed-width reads. [get_i32] sign-extends. *)
val get_u16 : t -> int -> int

val get_u32 : t -> int -> int
val get_i32 : t -> int -> int
val get_u64 : t -> int -> int64

(** Little-endian fixed-width writes (truncating). *)
val set_u16 : t -> int -> int -> unit

val set_u32 : t -> int -> int -> unit
val set_u64 : t -> int -> int64 -> unit

(** Appends; each returns the offset at which the value was placed. *)
val add_u8 : t -> int -> int

val add_u16 : t -> int -> int
val add_u32 : t -> int -> int
val add_u64 : t -> int64 -> int
val add_bytes : t -> bytes -> int
val add_string : t -> string -> int

(** [add_zeros b n] appends [n] zero bytes. *)
val add_zeros : t -> int -> int

(** [pad_to b n] appends zero bytes until [length b >= n]. *)
val pad_to : t -> int -> unit

(** [pp_hex ppf b] dumps [b] as rows of hex bytes (for debugging). *)
val pp_hex : Format.formatter -> t -> unit

type t = { mutable state : int64 }

let create seed = { state = seed }

let next t =
  let golden = 0x9e3779b97f4a7c15L in
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let chance t p = float t < p
let pick t arr = arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. max w 0.0) 0.0 choices in
  if total <= 0.0 then invalid_arg "Rng.weighted: no positive weight";
  let x = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: internal"
    | [ (_, v) ] -> v
    | (w, v) :: rest ->
        let acc = acc +. max w 0.0 in
        if x < acc then v else go acc rest
  in
  go 0.0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

module Buf = E9_bits.Buf

type label = { name : string; mutable addr : int option }

type fixup = {
  at : int;  (** buffer offset of the displacement field *)
  next : int;  (** absolute address the displacement is relative to *)
  target : label;
  width : int;  (** displacement width in bytes: 1 or 4 *)
}

type t = {
  buf : Buf.t;
  base_addr : int;
  mutable fixups : fixup list;
}

let create ~base = { buf = Buf.create 256; base_addr = base; fixups = [] }
let base t = t.base_addr
let fresh_label _ name = { name; addr = None }
let here t = t.base_addr + Buf.length t.buf

let place t l =
  match l.addr with
  | Some _ -> failwith (Printf.sprintf "Asm: label %s placed twice" l.name)
  | None -> l.addr <- Some (here t)

let ins t i = ignore (Buf.add_string t.buf (Encode.encode i))
let ins_raw t code = ignore (Buf.add_string t.buf code)

(* Append an instruction whose last [width] bytes are a displacement to
   [target]; record the fixup. *)
let branch ?(width = 4) t code target =
  let off = Buf.add_string t.buf code in
  let len = String.length code in
  t.fixups <-
    { at = off + len - width; next = t.base_addr + off + len; target; width }
    :: t.fixups

let jmp t l = branch t (Encode.encode (Insn.Jmp 0)) l
let jcc t c l = branch t (Encode.encode (Insn.Jcc (c, 0))) l
let call t l = branch t (Encode.encode (Insn.Call 0)) l
let lea_label t r l = branch t (Encode.encode (Insn.Lea (r, Insn.rip_mem 0))) l
let jmp_short t l = branch ~width:1 t (Encode.encode (Insn.Jmp_short 0)) l

let jcc_short t c l =
  branch ~width:1 t (Encode.encode (Insn.Jcc_short (c, 0))) l

let label_addr _t l =
  match l.addr with
  | Some a -> a
  | None -> failwith (Printf.sprintf "Asm: label %s not placed" l.name)

let assemble t =
  List.iter
    (fun f ->
      let target = label_addr t f.target in
      let rel = target - f.next in
      match f.width with
      | 1 ->
          if rel < -128 || rel > 127 then
            failwith
              (Printf.sprintf "Asm: short branch to %s out of rel8 range"
                 f.target.name);
          Buf.set_u8 t.buf f.at (rel land 0xff)
      | _ ->
          if rel < -0x8000_0000 || rel > 0x7fff_ffff then
            failwith
              (Printf.sprintf "Asm: branch to %s out of rel32 range"
                 f.target.name);
          Buf.set_u32 t.buf f.at rel)
    t.fixups;
  Buf.contents t.buf

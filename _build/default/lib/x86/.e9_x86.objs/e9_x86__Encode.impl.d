lib/x86/encode.ml: Buffer Char Insn Int64 List Reg String

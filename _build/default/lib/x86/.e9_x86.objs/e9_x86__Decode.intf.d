lib/x86/decode.mli: Bytes Insn

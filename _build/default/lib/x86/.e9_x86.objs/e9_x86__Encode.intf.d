lib/x86/encode.mli: Insn

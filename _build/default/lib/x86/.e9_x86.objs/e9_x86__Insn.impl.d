lib/x86/insn.ml: Array Format Reg

lib/x86/classify.ml: Insn Reg

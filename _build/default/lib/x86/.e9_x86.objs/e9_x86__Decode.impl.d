lib/x86/decode.ml: Bytes Char Insn Int64 List Reg String

lib/x86/reg.ml: Array Format Int

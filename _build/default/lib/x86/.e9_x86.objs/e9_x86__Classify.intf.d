lib/x86/classify.mli: Insn

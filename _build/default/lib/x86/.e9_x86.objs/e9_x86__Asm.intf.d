lib/x86/asm.mli: Insn Reg

lib/x86/asm.ml: E9_bits Encode Insn List Printf String

(** x86_64 machine-code emission for the {!Insn} subset.

    The encoder picks canonical encodings (short-form [0x83] ALU immediates
    when they fit, REX only when required) so that the synthetic binaries
    have a realistic instruction-length distribution — the quantity the
    punning tactics' success rates depend on. *)

(** [encode insn] is the machine code of [insn]. Raises [Invalid_argument]
    on operand combinations outside the subset (e.g. mem-to-mem moves). *)
val encode : Insn.t -> string

(** [encode_with_prefixes prefixes insn] prepends raw prefix bytes — used by
    the rewriter to build padded (T1) jumps. The prefixes are not checked
    beyond being single bytes. *)
val encode_with_prefixes : int list -> Insn.t -> string

(** [length insn] is [String.length (encode insn)]. *)
val length : Insn.t -> int

(** Prefix bytes that never change the semantics of a near jump: segment
    overrides, the operand-size override, and the REX bytes. These are the
    bytes tactic T1 may pad with. *)
val jump_padding_prefixes : int array

(** [encode_jmp_rel32 rel] is the canonical 5-byte [e9] jump. *)
val encode_jmp_rel32 : int -> string

(** The [e9] opcode byte. *)
val jmp_opcode : int

(** The [eb] short-jump opcode byte. *)
val jmp_short_opcode : int

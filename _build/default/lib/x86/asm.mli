(** A tiny two-pass assembler: append instructions, reference forward or
    backward labels in branches, then {!assemble} to resolve fixups.

    Used by the synthetic-workload code generator and by trampoline
    templates. Addresses are absolute: the buffer starts at [base]. *)

type t
type label

(** [create ~base] starts an empty program whose first byte will live at
    virtual address [base]. *)
val create : base:int -> t

(** [fresh_label t name] declares a label (not yet placed). *)
val fresh_label : t -> string -> label

(** [place t l] binds [l] to the current position. A label may be placed
    only once. *)
val place : t -> label -> unit

(** [here t] is the current virtual address. *)
val here : t -> int

(** [ins t i] appends one instruction. *)
val ins : t -> Insn.t -> unit

(** [ins_raw t code] appends pre-encoded bytes. *)
val ins_raw : t -> string -> unit

(** Label-targeted control flow (rel32 fixups). *)
val jmp : t -> label -> unit

val jcc : t -> Insn.cc -> label -> unit
val call : t -> label -> unit

(** Short (rel8) forms; {!assemble} fails if the target is out of range. *)
val jmp_short : t -> label -> unit

val jcc_short : t -> Insn.cc -> label -> unit

(** [lea_label t r l] loads a label's absolute address RIP-relatively. *)
val lea_label : t -> Reg.t -> label -> unit

(** [assemble t] resolves all fixups and returns the code.
    Raises [Failure] on an unplaced label. *)
val assemble : t -> bytes

(** [label_addr t l] is the label's absolute address.
    Raises [Failure] if unplaced. *)
val label_addr : t -> label -> int

(** [base t] is the address passed at creation. *)
val base : t -> int

(** x86_64 machine-code decoding for the {!Insn} subset.

    The decoder is total: any byte sequence decodes, with bytes outside the
    subset yielding a one-byte {!Insn.Unknown} — matching the behaviour of a
    linear-disassembly frontend that simply skips what it cannot parse.
    Prefix bytes (legacy and REX, in any order) are consumed and reported so
    that padded (T1) jumps round-trip. *)

type decoded = {
  insn : Insn.t;
  len : int;  (** total length including prefixes *)
  prefixes : int list;  (** consumed prefix bytes, in order *)
}

(** [decode bytes pos] decodes the instruction starting at [pos].
    Raises [Invalid_argument] when [pos] is outside [bytes]; a truncated
    instruction at the end of [bytes] decodes as [Unknown]. *)
val decode : Bytes.t -> int -> decoded

(** [decode_string s pos] is [decode] on a string. *)
val decode_string : string -> int -> decoded

(** [linear bytes ~pos ~len] decodes [bytes[pos, pos+len)] linearly,
    returning [(offset, decoded)] pairs. This is the paper's "basic wrapper
    frontend that applies linear disassembly". *)
val linear : Bytes.t -> pos:int -> len:int -> (int * decoded) list

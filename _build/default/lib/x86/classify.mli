(** Instruction classification predicates used by the patch-location
    selectors (paper applications A1 and A2) and by the rewriter itself. *)

(** [is_jump i] — unconditional or conditional jump ([jmp]/[jcc], direct or
    indirect), the paper's application A1 selector. Calls and returns are
    not jumps for this purpose. *)
val is_jump : Insn.t -> bool

(** [is_heap_write i] — the instruction may write through a heap pointer:
    it has a memory destination whose base is neither [%rsp] nor
    RIP-relative (the paper's application A2 selector, §6.3). *)
val is_heap_write : Insn.t -> bool

(** [is_control_flow i] — any instruction that transfers control (jumps,
    calls, returns, traps). Such instructions end a basic block. *)
val is_control_flow : Insn.t -> bool

(** [is_pc_relative i] — the instruction's behaviour depends on its own
    address (relative branches or RIP-relative operands); moving it into a
    trampoline requires re-encoding. *)
val is_pc_relative : Insn.t -> bool

(** [mem_written i] — the memory operand written by [i], if any. *)
val mem_written : Insn.t -> Insn.mem option

(** [branch_rel i] — the relative displacement of a direct branch. *)
val branch_rel : Insn.t -> int option

lib/lowfat/lowfat.ml: Array E9_emu E9_vm Elf_file Option Printf

lib/lowfat/lowfat.mli: E9_emu E9_vm

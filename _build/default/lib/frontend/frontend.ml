module Buf = E9_bits.Buf
module Decode = E9_x86.Decode
module Classify = E9_x86.Classify

type site = { addr : int; len : int; insn : E9_x86.Insn.t }
type text = { base : int; offset : int; size : int }

let find_text (elf : Elf_file.t) =
  match Elf_file.find_section elf ".text" with
  | Some s -> Some { base = s.addr; offset = s.offset; size = s.size }
  | None ->
      List.find_opt
        (fun (s : Elf_file.segment) -> s.ptype = Elf_file.Load && s.prot.x)
        elf.segments
      |> Option.map (fun (s : Elf_file.segment) ->
             { base = s.vaddr; offset = s.offset; size = s.filesz })

let disassemble ?from elf =
  match find_text elf with
  | None -> failwith "Frontend: no text section or executable segment"
  | Some text ->
      (* [from] is the "ChromeMain workaround" (paper §6.2): when the text
         section mixes data and code, start the linear sweep at a known
         code address and leave the prefix untouched. *)
      let start =
        match from with
        | None -> 0
        | Some addr ->
            if addr < text.base || addr >= text.base + text.size then
              failwith "Frontend: disassembly start outside the text"
            else addr - text.base
      in
      let bytes = Buf.sub elf.Elf_file.data ~pos:text.offset ~len:text.size in
      let sites =
        Decode.linear bytes ~pos:start ~len:(text.size - start)
        |> List.map (fun (off, d) ->
               { addr = text.base + off;
                 len = d.Decode.len;
                 insn = d.Decode.insn })
      in
      (text, sites)

let select_jumps site = Classify.is_jump site.insn
let select_heap_writes site = Classify.is_heap_write site.insn

let disassemble_recursive elf =
  match find_text elf with
  | None -> failwith "Frontend: no text section or executable segment"
  | Some text ->
      let bytes = Buf.sub elf.Elf_file.data ~pos:text.offset ~len:text.size in
      let seen = Hashtbl.create 4096 in
      let work = Queue.create () in
      let push addr =
        if
          addr >= text.base
          && addr < text.base + text.size
          && not (Hashtbl.mem seen addr)
        then begin
          Hashtbl.replace seen addr ();
          Queue.push addr work
        end
      in
      push elf.Elf_file.entry;
      let sites = ref [] in
      while not (Queue.is_empty work) do
        let addr = Queue.pop work in
        let d = Decode.decode bytes (addr - text.base) in
        let site = { addr; len = d.Decode.len; insn = d.Decode.insn } in
        sites := site :: !sites;
        let next = addr + d.Decode.len in
        (match Classify.branch_rel d.Decode.insn with
        | Some rel -> push (next + rel)
        | None -> ());
        (* Fall through unless control flow never returns here. An indirect
           jump or return ends the path; an indirect call falls through. *)
        match d.Decode.insn with
        | E9_x86.Insn.Jmp _ | E9_x86.Insn.Jmp_short _ | E9_x86.Insn.Jmp_ind _
        | E9_x86.Insn.Ret | E9_x86.Insn.Ud2 | E9_x86.Insn.Unknown _ ->
            ()
        | _ -> push next
      done;
      let sites =
        List.sort (fun a b -> compare a.addr b.addr) !sites
      in
      (text, sites)

examples/quickstart.mli:

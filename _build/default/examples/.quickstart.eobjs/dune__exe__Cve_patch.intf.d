examples/cve_patch.mli:

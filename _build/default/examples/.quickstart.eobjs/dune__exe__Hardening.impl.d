examples/hardening.ml: Bytes E9_core E9_emu E9_lowfat E9_workload E9_x86 Elf_file Format Frontend

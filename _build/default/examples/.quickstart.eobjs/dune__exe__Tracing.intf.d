examples/tracing.mli:

examples/comparison.mli:

examples/quickstart.ml: E9_core E9_emu E9_workload Elf_file Format Frontend List

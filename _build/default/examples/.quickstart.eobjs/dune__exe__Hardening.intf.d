examples/hardening.mli:

examples/comparison.ml: E9_core E9_emu E9_reloc E9_workload Format Frontend

examples/tracing.ml: E9_core E9_emu E9_workload Format Frontend List

examples/cve_patch.ml: Bytes Char E9_bits E9_core E9_emu E9_x86 Elf_file Format Frontend List Option Printf String

(* Binary heap-write hardening with low-fat pointers (paper §6.3).

   Instruments every heap-write instruction of a binary with a redzone
   check `p - base(p) >= 16`, with bounds recomputed from the pointer's
   own bit pattern (no metadata). Run against a clean workload (no false
   positives, measurable overhead) and an injected buffer overflow
   (caught at the moment of the wild write).

     dune exec examples/hardening.exe *)

module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Codegen = E9_workload.Codegen
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rewriter = E9_core.Rewriter
module Stats = E9_core.Stats
module Trampoline = E9_core.Trampoline
module Lowfat = E9_lowfat.Lowfat
module Hostcall = E9_emu.Hostcall

let printf = Format.printf

let harden elf =
  Rewriter.run elf ~select:Frontend.select_heap_writes
    ~template:(fun _ -> Trampoline.Lowfat_check)

let run elf = Machine.run ~make_allocator:Lowfat.make_allocator elf

(* Part 1: a realistic clean workload. *)
let clean_workload () =
  printf "--- clean workload ---@.";
  let prof =
    { Codegen.default_profile with
      Codegen.name = "hardening-clean"; seed = 7L; functions = 50;
      iterations = 200 }
  in
  let elf = Codegen.generate prof in
  let orig = run elf in
  let r = harden elf in
  printf "instrumented %d heap writes: %a@."
    (Stats.total r.Rewriter.stats) Stats.pp r.Rewriter.stats;
  let hardened = run r.Rewriter.output in
  printf "equivalent: %b, violations: %d, overhead: %.0f%% of original@."
    (Machine.equivalent orig hardened)
    hardened.Cpu.violations
    (100.0 *. float_of_int hardened.Cpu.cycles /. float_of_int orig.Cpu.cycles)

(* Part 2: an off-by-N heap buffer overflow (write past a 64-byte object
   into the neighbouring slot's redzone). *)
let vulnerable () =
  let base = 0x400000 in
  let asm = Asm.create ~base in
  let loop = Asm.fresh_label asm "loop" in
  let ins i = Asm.ins asm i in
  (* p = malloc(64); for i = 0..14: p[i*8] = i   -- i = 14 is out of bounds
     (usable bytes = 112 in the 128-byte slot; index 14 writes at 112). *)
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 64));
  ins (Insn.Int Hostcall.malloc);
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RAX));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 0));
  Asm.place asm loop;
  ins (Insn.Mov
         (Insn.Q,
          Insn.Mem (Insn.mem ~base:Reg.RBX ~index:(Reg.RCX, Insn.S8) ()),
          Insn.Reg Reg.RCX));
  ins (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 1));
  ins (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 15));
  Asm.jcc asm Insn.NE loop;
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 0));
  ins Insn.Syscall;
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:base in
  let off =
    Elf_file.add_segment elf
      { Elf_file.ptype = Elf_file.Load; prot = Elf_file.prot_rx; vaddr = base;
        offset = 0; filesz = 0; memsz = Bytes.length code; align = 4096 }
      ~content:code
  in
  elf.Elf_file.sections <-
    [ { Elf_file.name = ".text"; sh_type = 1; sh_flags = 6; addr = base;
        offset = off; size = Bytes.length code } ];
  elf

let overflow_demo () =
  printf "@.--- injected buffer overflow ---@.";
  let elf = vulnerable () in
  (match (run elf).Cpu.outcome with
  | Cpu.Exited 0 ->
      printf "unhardened: exits 0 — the overflow corrupts silently@."
  | _ -> printf "unhardened: unexpected outcome@.");
  let r = harden elf in
  let hardened = run r.Rewriter.output in
  match hardened.Cpu.outcome with
  | Cpu.Violation p ->
      printf "hardened:   REDZONE VIOLATION at pointer 0x%x@." p;
      printf "            slot base 0x%x, p - base = %d < %d (the redzone)@."
        (Lowfat.base p) (p - Lowfat.base p) Lowfat.redzone
  | _ -> printf "hardened: overflow was not caught?!@."

let () =
  clean_workload ();
  overflow_demo ()

(* Why "without control flow recovery"? — the paper's §1 argument, live.

   Three rewriters instrument the same binary's jumps with counters:

   - a classic relocating rewriter with perfect control-flow information
     (fast: instrumentation is inlined);
   - the same rewriter with a realistic pointer-scan heuristic (it cannot
     see PIC-style jump tables — and the program dies);
   - E9Patch, which never asks.

     dune exec examples/comparison.exe *)

module Codegen = E9_workload.Codegen
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rewriter = E9_core.Rewriter
module Trampoline = E9_core.Trampoline
module Reloc = E9_reloc.Reloc

let printf = Format.printf

let () =
  let prof =
    { Codegen.default_profile with
      Codegen.name = "comparison"; seed = 1234L; functions = 60;
      iterations = 200; pic_table_bias = 0.5 }
  in
  let elf = Codegen.generate prof in
  let orig = Machine.run elf in
  (match orig.Cpu.outcome with
  | Cpu.Exited n -> printf "original: exit %d, %d cycles@." n orig.Cpu.cycles
  | _ -> failwith "original did not run");

  let report name (r : Cpu.result) =
    if Machine.equivalent orig r then
      printf "  %-28s CORRECT, %.0f%% of original runtime@." name
        (100.0 *. float_of_int r.Cpu.cycles /. float_of_int orig.Cpu.cycles)
    else
      match r.Cpu.outcome with
      | Cpu.Fault (a, m) -> printf "  %-28s CRASHED at 0x%x (%s)@." name a m
      | Cpu.Exited n -> printf "  %-28s WRONG OUTPUT (exit %d)@." name n
      | _ -> printf "  %-28s FAILED@." name
  in

  printf "@.1. Relocating rewriter, perfect control-flow information:@.";
  let gt = Reloc.run ~cfg:Reloc.Ground_truth elf ~select:Frontend.select_jumps in
  printf "  (rewrote %d/%d jump tables, moved %d bytes of code)@."
    gt.Reloc.tables_rewritten gt.Reloc.tables_total gt.Reloc.moved_bytes;
  report "inline instrumentation" (Machine.run gt.Reloc.output);

  printf "@.2. Same rewriter, heuristic recovery (pointer scan):@.";
  let hz = Reloc.run ~cfg:Reloc.Heuristic elf ~select:Frontend.select_jumps in
  printf "  (found only %d/%d tables — PIC tables hold offsets, not pointers)@."
    hz.Reloc.tables_rewritten hz.Reloc.tables_total;
  report "heuristic relocation" (Machine.run hz.Reloc.output);

  printf "@.3. E9Patch — no control flow information at all:@.";
  let e9 =
    Rewriter.run elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Counter)
  in
  printf "  (%a)@." E9_core.Stats.pp e9.Rewriter.stats;
  report "trampoline instrumentation" (Machine.run e9.Rewriter.output);

  printf
    "@.The tradeoff in one line: trampolines cost more cycles than inlining,@.";
  printf
    "but they never depend on an analysis that can silently miss a table.@."

(* Binary patching (paper Example 3.1): fixing a CVE-2019-18408-style bug
   at the binary level, without source code, forcing the T3 neighbour
   eviction tactic as in the paper.

   The original libarchive bug: on an error path, `ppmd7.free(&rar->context)`
   runs but `rar->start_new_table = 1` is missing, so a later read uses the
   freed context (use-after-free). The developer patch adds the flag store.
   E9Patch applies the same fix by patching the first instruction after the
   call to free with a trampoline that also performs the store.

     dune exec examples/cve_patch.exe *)

module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rewriter = E9_core.Rewriter
module Tactics = E9_core.Tactics
module Stats = E9_core.Stats
module Trampoline = E9_core.Trampoline
module Hostcall = E9_emu.Hostcall

let printf = Format.printf
let base = 0x400000

(* Offsets within the rar context object. *)
let off_flag = 0x18 (* start_new_table *)
let off_freed = 0x20 (* set by free(): models the allocator poisoning *)

(* The vulnerable program. %rbx holds the context pointer throughout. *)
let build () =
  let asm = Asm.create ~base in
  let loop = Asm.fresh_label asm "loop" in
  let no_error = Asm.fresh_label asm "no_error" in
  let cont = Asm.fresh_label asm "cont" in
  let free_ctx = Asm.fresh_label asm "free_ctx" in
  let safe = Asm.fresh_label asm "safe" in
  let ins i = Asm.ins asm i in
  (* rbx = malloc(64); rbx->flag = 0 *)
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 64));
  ins (Insn.Int Hostcall.malloc);
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RAX));
  ins (Insn.Mov (Insn.B, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:off_flag ()), Insn.Imm 0));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.R13, Insn.Imm 5));
  Asm.place asm loop;
  (* read_data "fails" on iteration 2 *)
  ins (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.R13, Insn.Imm 2));
  Asm.jcc asm Insn.NE no_error;
  (* --- the buggy error path --- *)
  Asm.call asm free_ctx;
  let patch_site = Asm.here asm in
  ins (Insn.Mov (Insn.L, Insn.Reg Reg.RBP, Insn.Reg Reg.RBX));
  (* ^ 89 dd, the 2-byte `mov %ebx,%ebp` of Figure 2(b); the developer
     patch would add `rar->start_new_table = 1` right here. *)
  Asm.jmp asm cont;
  Asm.place asm no_error;
  (* normal processing: touch the table *)
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:8 ())));
  ins (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 1));
  ins (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:8 ()), Insn.Reg Reg.RCX));
  Asm.place asm cont;
  ins (Insn.Alu (Insn.Sub, Insn.Q, Insn.Reg Reg.R13, Insn.Imm 1));
  Asm.jcc asm Insn.NE loop;
  (* After the loop, the table is read again. If the context was freed and
     start_new_table was not set, this is the use-after-free. *)
  ins (Insn.Mov (Insn.B, Insn.Reg Reg.RAX,
                 Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:off_freed ())));
  ins (Insn.Alu (Insn.Test, Insn.B, Insn.Reg Reg.RAX, Insn.Reg Reg.RAX));
  Asm.jcc asm Insn.E safe;
  ins (Insn.Mov (Insn.B, Insn.Reg Reg.RCX,
                 Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:off_flag ())));
  ins (Insn.Alu (Insn.Test, Insn.B, Insn.Reg Reg.RCX, Insn.Reg Reg.RCX));
  Asm.jcc asm Insn.NE safe;
  (* freed and no rebuild requested: the bug fires *)
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 1));
  ins Insn.Syscall;
  Asm.place asm safe;
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 0));
  ins Insn.Syscall;
  (* ppmd7.free: poison the context (models the freed allocation) *)
  Asm.place asm free_ctx;
  ins (Insn.Mov (Insn.B, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:off_freed ()), Insn.Imm 1));
  ins Insn.Ret;
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:base in
  let off =
    Elf_file.add_segment elf
      { Elf_file.ptype = Elf_file.Load; prot = Elf_file.prot_rx; vaddr = base;
        offset = 0; filesz = 0; memsz = Bytes.length code; align = 4096 }
      ~content:code
  in
  elf.Elf_file.sections <-
    [ { Elf_file.name = ".text"; sh_type = 1; sh_flags = 6; addr = base;
        offset = off; size = Bytes.length code } ];
  (elf, patch_site)

let hexdump elf ~from ~len =
  let text = Option.get (Frontend.find_text elf) in
  let bytes =
    E9_bits.Buf.sub elf.Elf_file.data
      ~pos:(text.Frontend.offset + from - text.Frontend.base)
      ~len
  in
  String.concat " "
    (List.init len (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get bytes i))))

let run_and_report name elf =
  let r = Machine.run elf in
  (match r.Cpu.outcome with
  | Cpu.Exited 0 -> printf "%s: exit 0 — behaves correctly@." name
  | Cpu.Exited 1 -> printf "%s: exit 1 — USE-AFTER-FREE path taken@." name
  | Cpu.Exited n -> printf "%s: unexpected exit %d@." name n
  | _ -> printf "%s: crashed@." name);
  r

let () =
  let elf, patch_site = build () in
  printf "patch site: 0x%x (the instruction after the call to free)@."
    patch_site;
  printf "original bytes around it: %s@." (hexdump elf ~from:patch_site ~len:8);
  let before = run_and_report "unpatched" elf in
  ignore before;

  (* The binary-level developer patch: run the displaced instruction's
     semantics plus `movb $1, off_flag(%rbx)`. As in Example 3.1, the
     simpler tactics are unavailable (here: forced off to demonstrate T3's
     double-jump construction; in the paper B1/B2/T1/T2 genuinely fail at
     this site). *)
  let template =
    Trampoline.Custom_pre
      (fun asm ->
        Asm.ins asm
          (Insn.Mov
             (Insn.B, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:off_flag ()),
              Insn.Imm 1)))
  in
  let options =
    { Rewriter.default_options with
      Rewriter.tactics =
        { Tactics.default_options with
          Tactics.enable_base = false;
          enable_t1 = false;
          enable_t2 = false } }
  in
  let result =
    Rewriter.run ~options elf
      ~select:(fun s -> s.Frontend.addr = patch_site)
      ~template:(fun _ -> template)
  in
  (match result.Rewriter.patched_sites with
  | [ (addr, tactic) ] ->
      printf "@.patched 0x%x via tactic %s@." addr (Stats.tactic_name tactic);
      printf "patched bytes at site:  %s   (eb = short jump J_short)@."
        (hexdump result.Rewriter.output ~from:patch_site ~len:8)
  | _ -> failwith "expected exactly one patched site");
  ignore (run_and_report "patched  " result.Rewriter.output);
  printf
    "@.Only two instruction locations were modified; every possible jump@.";
  printf "target still behaves as before (control-flow agnostic patching).@."

(* Quickstart: rewrite a binary without control flow recovery.

   This walks the whole pipeline on a small synthetic binary:
   generate -> run -> rewrite (all jumps, counting instrumentation) ->
   run the patched binary -> verify observational equivalence.

     dune exec examples/quickstart.exe *)

module Codegen = E9_workload.Codegen
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rewriter = E9_core.Rewriter
module Stats = E9_core.Stats
module Trampoline = E9_core.Trampoline

let printf = Format.printf

let () =
  (* 1. A deterministic synthetic binary: ~25 KB of code with loops,
     calls, jump tables and indirect calls the rewriter knows nothing
     about. In real use this would be [Elf_file.read_file "a.out"]. *)
  let prof =
    { Codegen.default_profile with
      Codegen.name = "quickstart"; seed = 2024L; functions = 50;
      iterations = 200 }
  in
  let elf = Codegen.generate prof in
  let text, sites = Frontend.disassemble elf in
  printf "input: %d bytes of text, %d instructions, entry 0x%x@."
    text.Frontend.size (List.length sites) elf.Elf_file.entry;

  (* 2. Run the original. Observable behaviour = output + exit code. *)
  let orig = Machine.run elf in
  (match orig.Cpu.outcome with
  | Cpu.Exited n ->
      printf "original: exit %d after %d instructions (%d cycles)@." n
        orig.Cpu.insns orig.Cpu.cycles
  | _ -> failwith "original did not run");

  (* 3. Rewrite: divert every jmp/jcc to a counting trampoline. No control
     flow recovery happens anywhere in this call — the rewriter sees only
     instruction locations and sizes. *)
  let result =
    Rewriter.run elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Counter)
  in
  printf "rewritten: %a@." Stats.pp result.Rewriter.stats;
  printf "  file size %d -> %d bytes (%.1f%%), %d trampoline bytes, %d mmaps@."
    result.Rewriter.input_size result.Rewriter.output_size
    (Rewriter.size_pct result) result.Rewriter.trampoline_bytes
    result.Rewriter.mappings;

  (* 4. Run the patched binary and compare. *)
  let patched = Machine.run result.Rewriter.output in
  printf "patched: exit %s after %d instructions (%d cycles, %.0f%% of original)@."
    (match patched.Cpu.outcome with
    | Cpu.Exited n -> string_of_int n
    | _ -> "?")
    patched.Cpu.insns patched.Cpu.cycles
    (100.0 *. float_of_int patched.Cpu.cycles /. float_of_int orig.Cpu.cycles);
  printf "observationally equivalent: %b@." (Machine.equivalent orig patched);

  (* 5. The instrumentation's yield: dynamic jump execution counts. *)
  let total = List.fold_left (fun a (_, n) -> a + n) 0 patched.Cpu.counters in
  printf "@.instrumentation counted %d jump executions over %d distinct sites@."
    total
    (List.length patched.Cpu.counters);
  let top =
    List.sort (fun (_, a) (_, b) -> compare b a) patched.Cpu.counters
  in
  List.iteri
    (fun i (site, hits) ->
      if i < 5 then printf "  #%d  trampoline at 0x%-12x %8d hits@." (i + 1) site hits)
    top

(* Execution tracing / hot-path profiling via static rewriting.

   The paper's A1 application ("a rough analogue for basic-block counting")
   as a usable profiler: patch every jump with a counting trampoline, run
   the program once, and rank the hottest branch sites — all without
   control flow recovery, symbols, or source.

     dune exec examples/tracing.exe *)

module Codegen = E9_workload.Codegen
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rewriter = E9_core.Rewriter
module Stats = E9_core.Stats
module Trampoline = E9_core.Trampoline

let printf = Format.printf

let () =
  let prof =
    { Codegen.default_profile with
      Codegen.name = "tracing"; seed = 99L; functions = 40; iterations = 500 }
  in
  let elf = Codegen.generate prof in
  let orig = Machine.run elf in

  (* Counting trampolines on every jmp/jcc. The counter site recorded by
     the runtime is the trampoline's host-call address; map it back to the
     patch location through the rewriter's site list. *)
  let result =
    Rewriter.run elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Counter)
  in
  printf "instrumented %d jumps (%a)@."
    (Stats.total result.Rewriter.stats)
    Stats.pp result.Rewriter.stats;

  let traced = Machine.run result.Rewriter.output in
  assert (Machine.equivalent orig traced);
  let executions = List.fold_left (fun a (_, n) -> a + n) 0 traced.Cpu.counters in
  printf "run complete: %d dynamic jump executions, overhead %.0f%%@."
    executions
    (100.0 *. float_of_int traced.Cpu.cycles /. float_of_int orig.Cpu.cycles
    -. 100.0);

  printf "@.hottest branch trampolines:@.";
  let ranked =
    List.sort (fun (_, a) (_, b) -> compare b a) traced.Cpu.counters
  in
  List.iteri
    (fun i (site, hits) ->
      if i < 10 then
        printf "  %2d. 0x%-14x %8d hits  (%.1f%% of all jumps)@." (i + 1) site
          hits
          (100.0 *. float_of_int hits /. float_of_int executions))
    ranked;

  (* Coverage view: how many instrumented jumps never ran? *)
  let hot = List.length traced.Cpu.counters in
  let total = Stats.total result.Rewriter.stats in
  printf "@.branch coverage: %d of %d instrumented jumps executed (%.1f%%)@."
    hot total
    (100.0 *. float_of_int hot /. float_of_int total)

(* The evaluation harness: regenerates every table and figure of the paper
   on the synthetic suite (see DESIGN.md §4 for the experiment index).

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- table1    -- one experiment
     ... robustness | figure4 | figure5 | grouping | ablation | pie | b0
     ... scalability | parallel | faults | calibration | robust | bechamel

   Flags (EXPERIMENTS.md "Reproducing"):
     --serial       run every task on one domain (the speedup baseline)
     --domains N    fan tasks across exactly N domains
     --jobs N       domains per rewrite (intra-binary sharding; default 1)
     --smoke        reduced sizes/trial counts, for CI timeouts
     --json PATH    dump every experiment's rows as JSON to PATH

   Independent (app × tactic-config) rewrite+emulate tasks are fanned
   across domains with E9_bits.Pool; results are collected per task and
   printed in input order, so the output is byte-identical to a serial run
   (only wall-clock changes — DESIGN.md §7). A machine-readable
   BENCH_throughput.json (wall time, emulated insns/sec, superblock-cache
   hit rate, domain count) is written after every run so successive PRs
   have a perf trajectory to regress against.

   Absolute numbers differ from the paper (the substrate is an emulator
   with a documented cost model, and binaries are scaled down); the shapes
   — who wins, by what factor, where the cliffs are — are the reproduced
   quantities. EXPERIMENTS.md records the comparison. *)

module Pool = E9_bits.Pool
module Codegen = E9_workload.Codegen
module Suite = E9_workload.Suite
module Dromaeo = E9_workload.Dromaeo
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rewriter = E9_core.Rewriter
module Tactics = E9_core.Tactics
module Stats = E9_core.Stats
module Trampoline = E9_core.Trampoline
module Lowfat = E9_lowfat.Lowfat
module Reloc = E9_reloc.Reloc

let printf = Format.printf

let heading title =
  printf "@.=== %s ===@.@." title

(* ------------------------------------------------------------------ *)
(* Harness options                                                     *)
(* ------------------------------------------------------------------ *)

let serial = ref false
let smoke = ref false
let domains_opt : int option ref = ref None
let jobs_opt : int option ref = ref None
let json_path : string option ref = ref None

let domains () =
  if !serial then 1
  else match !domains_opt with Some d -> max 1 d | None -> Pool.default_domains ()

(* Fan independent tasks across domains; results come back in input order,
   so the caller's sequential printing is deterministic. *)
let par_map f xs = Pool.map ~domains:(domains ()) f xs

(* Smoke mode trims task lists so CI can run under a tight timeout. *)
let cut n xs = if !smoke then List.filteri (fun i _ -> i < n) xs else xs

(* ------------------------------------------------------------------ *)
(* JSON (shared with the trace exporter: lib/obs, no external deps)    *)
(* ------------------------------------------------------------------ *)

module Json = E9_obs.Json
module Obs = E9_obs.Obs

(* Per-experiment row store for --json. Rows are recorded from the serial
   print phase (never from parallel tasks), in print order. *)
let json_rows : (string * Json.t list ref) list ref = ref []

let record_row exp fields =
  let row = Json.Obj fields in
  match List.assoc_opt exp !json_rows with
  | Some r -> r := row :: !r
  | None -> json_rows := !json_rows @ [ (exp, ref [ row ]) ]

let rows_json () =
  Json.Obj
    (List.map (fun (exp, r) -> (exp, Json.List (List.rev !r))) !json_rows)

(* ------------------------------------------------------------------ *)
(* Shared measurement machinery                                        *)
(* ------------------------------------------------------------------ *)

(* Emulation accounting, aggregated across domains: every guest run in the
   bench goes through [run_emu] so the throughput summary and
   BENCH_throughput.json see all of them. *)
let emu_insns = Atomic.make 0
let emu_wall_us = Atomic.make 0
let emu_block_hits = Atomic.make 0
let emu_block_misses = Atomic.make 0
let emu_block_invalidations = Atomic.make 0

(* Rewrite-path telemetry, aggregated across domains: every measured
   rewrite goes through [traced_run] with a per-call aggregator sink
   (constant memory), merged into one global rollup under a lock. The
   per-tactic histogram and phase-span totals land in
   BENCH_throughput.json. The bechamel micro-benchmarks stay detached so
   they keep measuring the bare (sink-less) hot path. *)
let obs_agg = Obs.Agg.create ()
let obs_lock = Mutex.create ()

let traced_run ?options ?disasm_from ?frontend elf ~select ~template =
  let obs = Obs.aggregator () in
  let r =
    Rewriter.run ?options ~obs ?jobs:!jobs_opt ?disasm_from ?frontend elf
      ~select ~template
  in
  Mutex.protect obs_lock (fun () ->
      Obs.Agg.merge_into ~dst:obs_agg (Obs.agg obs));
  r

(* Static-verification accounting: every measured rewrite is checked by
   the E9_check verifier, and a single rejection fails the whole bench
   run. The Reloc-based robustness benches deliberately produce broken
   binaries and are exempt. *)
let verify_checked = Atomic.make 0
let verify_failed = Atomic.make 0

let run_emu ?config ?make_allocator ?libs elf =
  let t0 = Unix.gettimeofday () in
  let r = Machine.run ?config ?make_allocator ?libs elf in
  let dt_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  ignore (Atomic.fetch_and_add emu_insns r.Cpu.insns);
  ignore (Atomic.fetch_and_add emu_wall_us dt_us);
  ignore (Atomic.fetch_and_add emu_block_hits r.Cpu.block_hits);
  ignore (Atomic.fetch_and_add emu_block_misses r.Cpu.block_misses);
  ignore
    (Atomic.fetch_and_add emu_block_invalidations r.Cpu.block_invalidations);
  r

type app_result = {
  loc : int;
  base : float;
  t1 : float;
  t2 : float;
  t3 : float;
  succ : float;
  time : float;  (** patched cycles / original cycles, percent *)
  size : float;  (** output file size / input file size, percent *)
}

let json_of_app (a : app_result) =
  Json.Obj
    [ ("loc", Json.Int a.loc);
      ("base_pct", Json.Float a.base);
      ("t1_pct", Json.Float a.t1);
      ("t2_pct", Json.Float a.t2);
      ("t3_pct", Json.Float a.t3);
      ("succ_pct", Json.Float a.succ);
      ("time_pct", Json.Float a.time);
      ("size_pct", Json.Float a.size) ]

let expect_exit name (r : Cpu.result) =
  match r.Cpu.outcome with
  | Cpu.Exited _ -> ()
  | Cpu.Fault (a, m) -> failwith (Printf.sprintf "%s faulted at 0x%x: %s" name a m)
  | Cpu.Violation p -> failwith (Printf.sprintf "%s: violation at 0x%x" name p)
  | Cpu.Out_of_fuel -> failwith (name ^ ": out of fuel")

let options_for (row : Suite.row) =
  { Rewriter.default_options with
    Rewriter.reserve_below_base = row.Suite.profile.Codegen.shared_object }

(* The ChromeMain workaround (§6.2): when the generator marked the first
   real instruction, start disassembly there. *)
let disasm_from_of elf =
  Option.map
    (fun (s : Elf_file.section) -> s.Elf_file.addr)
    (Elf_file.find_section elf Codegen.chromemain_marker)

let verify_rewrite name elf (r : Rewriter.result) =
  Atomic.incr verify_checked;
  match
    E9_check.Static.verify ?disasm_from:(disasm_from_of elf) ~original:elf
      r.Rewriter.output
  with
  | Ok _ -> ()
  | Error e ->
      Atomic.incr verify_failed;
      Format.eprintf "[verify] %s rejected: %a@." name E9_check.Static.pp_error
        e

(* Rewrite with [select]/[template] and measure one Table 1 line. *)
let measure_app ?(options = Rewriter.default_options) ?make_allocator
    ~select ~template elf (orig : Cpu.result) =
  let r = traced_run ~options ?disasm_from:(disasm_from_of elf) elf ~select ~template in
  verify_rewrite "measure_app" elf r;
  let patched = run_emu ?make_allocator r.Rewriter.output in
  expect_exit "patched" patched;
  let s = r.Rewriter.stats in
  { loc = Stats.total s;
    base = Stats.base_pct s;
    t1 = Stats.t1_pct s;
    t2 = Stats.t2_pct s;
    t3 = Stats.t3_pct s;
    succ = Stats.succ_pct s;
    time = 100.0 *. float_of_int patched.Cpu.cycles /. float_of_int orig.Cpu.cycles;
    size = Rewriter.size_pct r }

let geomean = function
  | [] -> 0.0
  | xs ->
      exp (List.fold_left (fun a x -> a +. log x) 0.0 xs
           /. float_of_int (List.length xs))

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let pp_app ppf (a : app_result) =
  Format.fprintf ppf "%7d %6.2f %5.2f %5.2f %5.2f %6.2f %7.2f %7.2f" a.loc
    a.base a.t1 a.t2 a.t3 a.succ a.time a.size

let bench_table1 () =
  heading "Table 1: patching statistics (A1 = jumps, A2 = heap writes)";
  printf
    "%-12s | %7s %6s %5s %5s %5s %6s %7s %7s | %7s %6s %5s %5s %5s %6s %7s %7s@."
    "binary" "#Loc" "Base%" "T1%" "T2%" "T3%" "Succ%" "Time%" "Size%" "#Loc"
    "Base%" "T1%" "T2%" "T3%" "Succ%" "Time%" "Size%";
  let measured =
    par_map
      (fun (row : Suite.row) ->
        let elf = Codegen.generate row.Suite.profile in
        let orig = run_emu elf in
        expect_exit row.Suite.profile.Codegen.name orig;
        let options = options_for row in
        let a1 =
          measure_app ~options ~select:Frontend.select_jumps
            ~template:(fun _ -> Trampoline.Empty)
            elf orig
        in
        let a2 =
          measure_app ~options ~select:Frontend.select_heap_writes
            ~template:(fun _ -> Trampoline.Empty)
            elf orig
        in
        (row, a1, a2))
      (cut 4 Suite.rows)
  in
  let acc_a1 = ref [] and acc_a2 = ref [] in
  List.iter
    (fun ((row : Suite.row), a1, a2) ->
      let name = row.Suite.profile.Codegen.name in
      acc_a1 := a1 :: !acc_a1;
      acc_a2 := a2 :: !acc_a2;
      record_row "table1"
        [ ("binary", Json.Str name);
          ("a1", json_of_app a1);
          ("a2", json_of_app a2) ];
      printf "%-12s | %a | %a@." name pp_app a1 pp_app a2)
    measured;
  let avg sel rs = mean (List.map sel rs) in
  let total sel rs = List.fold_left (fun a r -> a + sel r) 0 rs in
  let summary name rs (paper : Suite.paper_app) paper_breakdown =
    printf "%-12s | %7d %6.2f %5.2f %5.2f %5.2f %6.2f %7.2f %7.2f@." name
      (total (fun r -> r.loc) rs)
      (avg (fun r -> r.base) rs)
      (avg (fun r -> r.t1) rs)
      (avg (fun r -> r.t2) rs)
      (avg (fun r -> r.t3) rs)
      (avg (fun r -> r.succ) rs)
      (avg (fun r -> r.time) rs)
      (avg (fun r -> r.size) rs);
    let b, t1, t2, t3 = paper_breakdown in
    printf "%-12s | %7d %6.2f %5.2f %5.2f %5.2f %6.2f %7.2f %7.2f@."
      "  (paper)" paper.Suite.loc b t1 t2 t3 paper.Suite.succ
      (Option.value ~default:Float.nan paper.Suite.time)
      paper.Suite.size
  in
  printf "%-12s@." (String.make 12 '-');
  summary "Avg A1" !acc_a1 Suite.paper_total_a1 (72.79, 13.95, 3.73, 9.48);
  summary "Avg A2" !acc_a2 Suite.paper_total_a2 (81.63, 15.68, 0.60, 2.09)

(* Per-row paper-vs-measured comparison for the coverage columns — the
   quantities the synthetic calibration is supposed to transfer. *)
let bench_compare () =
  heading "Per-row comparison: measured vs paper (Base% and Succ%)";
  printf "%-12s | %21s | %21s | %21s | %21s@." "" "A1 Base% (mea/pap)"
    "A1 Succ% (mea/pap)" "A2 Base% (mea/pap)" "A2 Succ% (mea/pap)";
  let measured =
    par_map
      (fun (row : Suite.row) ->
        let elf = Codegen.generate row.Suite.profile in
        let options = options_for row in
        let stats select =
          let r =
            traced_run ~options ?disasm_from:(disasm_from_of elf) elf ~select
              ~template:(fun _ -> Trampoline.Empty)
          in
          r.Rewriter.stats
        in
        (row, stats Frontend.select_jumps, stats Frontend.select_heap_writes))
      (cut 4 Suite.rows)
  in
  let d_base_a1 = ref [] and d_base_a2 = ref [] in
  List.iter
    (fun ((row : Suite.row), a1, a2) ->
      let p1 = row.Suite.paper_a1 and p2 = row.Suite.paper_a2 in
      d_base_a1 := abs_float (Stats.base_pct a1 -. p1.Suite.base) :: !d_base_a1;
      d_base_a2 := abs_float (Stats.base_pct a2 -. p2.Suite.base) :: !d_base_a2;
      record_row "compare"
        [ ("binary", Json.Str row.Suite.profile.Codegen.name);
          ("a1_base_pct", Json.Float (Stats.base_pct a1));
          ("a1_base_paper", Json.Float p1.Suite.base);
          ("a2_base_pct", Json.Float (Stats.base_pct a2));
          ("a2_base_paper", Json.Float p2.Suite.base) ];
      printf "%-12s | %9.2f / %9.2f | %9.2f / %9.2f | %9.2f / %9.2f | %9.2f / %9.2f@."
        row.Suite.profile.Codegen.name (Stats.base_pct a1) p1.Suite.base
        (Stats.succ_pct a1) p1.Suite.succ (Stats.base_pct a2) p2.Suite.base
        (Stats.succ_pct a2) p2.Suite.succ)
    measured;
  printf "@.mean |Base%% delta|: A1 %.2f points, A2 %.2f points@."
    (mean !d_base_a1) (mean !d_base_a2)

(* ------------------------------------------------------------------ *)
(* Figure 4: Dromaeo DOM benchmarks on the browsers                    *)
(* ------------------------------------------------------------------ *)

let bar width pct =
  (* 100% = empty bar; 350% = full width. *)
  let n =
    max 0 (min width (int_of_float ((pct -. 100.0) /. 250.0 *. float_of_int width)))
  in
  String.make n '#'

let bench_figure4 () =
  heading "Figure 4: Dromaeo DOM overheads (A2 instrumentation)";
  printf "%-18s %10s %10s@." "suite" "Chrome%" "FireFox%";
  let measured =
    par_map
      (fun (s : Dromaeo.suite) ->
        let elf = Codegen.generate (Dromaeo.program s) in
        let orig = run_emu elf in
        expect_exit s.Dromaeo.name orig;
        let text, _ = Frontend.disassemble elf in
        let limit =
          text.Frontend.base
          + int_of_float
              (float_of_int text.Frontend.size
              *. Dromaeo.firefox_instrumented_fraction)
        in
        let run select =
          (measure_app ~select ~template:(fun _ -> Trampoline.Empty) elf orig)
            .time
        in
        (* Chrome: the whole binary is instrumented. FireFox: the bulk of
           the time is spent in code E9Patch did not patch (JIT output,
           other DSOs) — only part of the text is instrumented. *)
        let chrome = run Frontend.select_heap_writes in
        let firefox =
          run (fun st ->
              Frontend.select_heap_writes st && st.Frontend.addr < limit)
        in
        (s, chrome, firefox))
      (cut 3 Dromaeo.suites)
  in
  let chrome_res = ref [] and firefox_res = ref [] in
  List.iter
    (fun ((s : Dromaeo.suite), chrome, firefox) ->
      chrome_res := chrome :: !chrome_res;
      firefox_res := firefox :: !firefox_res;
      record_row "figure4"
        [ ("suite", Json.Str s.Dromaeo.name);
          ("chrome_pct", Json.Float chrome);
          ("firefox_pct", Json.Float firefox) ];
      printf "%-18s %9.1f%% %9.1f%%  |%-20s|%-20s@." s.Dromaeo.name chrome
        firefox (bar 20 chrome) (bar 20 firefox))
    measured;
  printf "%-18s %9.1f%% %9.1f%%   (geometric mean)@." "Geom.Mean"
    (geomean !chrome_res) (geomean !firefox_res);
  printf "%-18s %9.1f%% %9.1f%%@." "  (paper)" Dromaeo.paper_chrome_mean
    Dromaeo.paper_firefox_mean

(* ------------------------------------------------------------------ *)
(* Figure 5: empty A2 vs LowFat hardening                              *)
(* ------------------------------------------------------------------ *)

let measure_a2_lowfat (row : Suite.row) =
  let elf = Codegen.generate row.Suite.profile in
  let orig = run_emu elf in
  expect_exit row.Suite.profile.Codegen.name orig;
  let options = options_for row in
  let a2 =
    measure_app ~options ~select:Frontend.select_heap_writes
      ~template:(fun _ -> Trampoline.Empty)
      elf orig
  in
  let lf =
    measure_app ~options ~select:Frontend.select_heap_writes
      ~template:(fun _ -> Trampoline.Lowfat_check)
      ~make_allocator:Lowfat.make_allocator elf orig
  in
  (a2, lf)

let bench_figure5 () =
  heading "Figure 5: heap-write timings, empty (A2) vs LowFat instrumentation";
  printf "%-12s %10s %10s@." "binary" "A2%" "LowFat%";
  let measured =
    par_map
      (fun (row : Suite.row) -> (row, measure_a2_lowfat row))
      (cut 4 Suite.spec_rows)
  in
  let a2s = ref [] and lfs = ref [] in
  List.iter
    (fun ((row : Suite.row), (a2, lf)) ->
      a2s := a2.time :: !a2s;
      lfs := lf.time :: !lfs;
      record_row "figure5"
        [ ("binary", Json.Str row.Suite.profile.Codegen.name);
          ("a2_pct", Json.Float a2.time);
          ("lowfat_pct", Json.Float lf.time) ];
      printf "%-12s %9.1f%% %9.1f%%  |%-20s|%-20s@."
        row.Suite.profile.Codegen.name a2.time lf.time (bar 20 a2.time)
        (bar 20 lf.time))
    measured;
  printf "%-12s %9.1f%% %9.1f%%   (SPEC mean)@." "Mean" (mean !a2s) (mean !lfs);
  printf "%-12s %9.1f%% %9.1f%%@." "  (paper)" 164.71 227.27;
  (* Browser rows, as in the figure's right-hand bars. *)
  let browsers =
    par_map
      (fun name ->
        let row = Option.get (Suite.find name) in
        (name, measure_a2_lowfat row))
      [ "chrome"; "firefox" ]
  in
  List.iter
    (fun (name, (a2, lf)) ->
      record_row "figure5"
        [ ("binary", Json.Str name);
          ("a2_pct", Json.Float a2.time);
          ("lowfat_pct", Json.Float lf.time) ];
      printf "%-12s %9.1f%% %9.1f%%@." name a2.time lf.time)
    browsers

(* ------------------------------------------------------------------ *)
(* §4/§6.1: physical page grouping                                     *)
(* ------------------------------------------------------------------ *)

let bench_grouping () =
  heading "Physical page grouping (§4): file size and mapping counts";
  let rows = cut 3 [ "perlbench"; "gcc"; "povray"; "xalancbmk"; "vim"; "libc.so" ] in
  printf "%-11s %-4s | %10s %10s %10s %10s@." "binary" "app" "grouped%"
    "naive%" "#mappings" "#phys";
  let measured =
    par_map
      (fun name ->
        let row = Option.get (Suite.find name) in
        let elf = Codegen.generate row.Suite.profile in
        let per_app =
          List.map
            (fun (app, select) ->
              let size grouping =
                let options = { (options_for row) with Rewriter.grouping } in
                let r =
                  traced_run ~options elf ~select
                    ~template:(fun _ -> Trampoline.Empty)
                in
                (Rewriter.size_pct r, r.Rewriter.mappings,
                 r.Rewriter.physical_blocks)
              in
              let g, maps, phys = size true in
              let n, _, _ = size false in
              (app, g, n, maps, phys))
            [ ("A1", Frontend.select_jumps); ("A2", Frontend.select_heap_writes) ]
        in
        (name, per_app))
      rows
  in
  let g_sizes = ref [] and n_sizes = ref [] in
  List.iter
    (fun (name, per_app) ->
      List.iter
        (fun (app, g, n, maps, phys) ->
          g_sizes := g :: !g_sizes;
          n_sizes := n :: !n_sizes;
          record_row "grouping"
            [ ("binary", Json.Str name);
              ("app", Json.Str app);
              ("grouped_pct", Json.Float g);
              ("naive_pct", Json.Float n);
              ("mappings", Json.Int maps);
              ("phys", Json.Int phys) ];
          printf "%-11s %-4s | %9.1f%% %9.1f%% %10d %10d@." name app g n maps
            phys)
        per_app)
    measured;
  printf "%-16s | %9.1f%% %9.1f%%@." "Mean" (mean !g_sizes) (mean !n_sizes);
  printf "%-16s | %9s %9s  (A1: 157.4 vs 2339.8; A2: 130.9 vs 669.0)@."
    "  (paper)" "" "";
  (* Granularity sweep (the vm.max_map_count discussion). *)
  printf "@.Granularity sweep (gcc, A1): M vs #mappings vs Size%%@.";
  let row = Option.get (Suite.find "gcc") in
  let elf = Codegen.generate row.Suite.profile in
  let sweep =
    par_map
      (fun m ->
        let options = { (options_for row) with Rewriter.granularity = m } in
        let r =
          traced_run ~options elf ~select:Frontend.select_jumps
            ~template:(fun _ -> Trampoline.Empty)
        in
        (m, r.Rewriter.mappings, Rewriter.size_pct r))
      (cut 3 [ 1; 2; 4; 16; 64 ])
  in
  List.iter
    (fun (m, mappings, size) ->
      record_row "grouping-granularity"
        [ ("granularity", Json.Int m);
          ("mappings", Json.Int mappings);
          ("size_pct", Json.Float size) ];
      printf "  M=%-3d  mappings=%-6d  size=%.1f%%@." m mappings size)
    sweep

(* ------------------------------------------------------------------ *)
(* §6.1: tactic ablation ("without T3, coverage would be ~90.5%")      *)
(* ------------------------------------------------------------------ *)

let bench_ablation () =
  heading "Tactic ablation (§6.1): coverage per tactic stack (A1)";
  let stacks =
    [ ("B1+B2", fun (t : Tactics.options) ->
        { t with Tactics.enable_t1 = false; enable_t2 = false; enable_t3 = false });
      ("+T1", fun t -> { t with Tactics.enable_t2 = false; enable_t3 = false });
      ("+T2", fun t -> { t with Tactics.enable_t3 = false });
      ("+T3 (full)", fun t -> t);
      ("full+jointT2", fun t -> { t with Tactics.t2_joint = true }) ]
  in
  printf "%-14s" "binary";
  List.iter (fun (n, _) -> printf " %12s" n) stacks;
  printf "@.";
  let rows =
    cut 3 [ "perlbench"; "gcc"; "leslie3d"; "GemsFDTD"; "vim"; "libxul.so" ]
  in
  let measured =
    par_map
      (fun name ->
        let row = Option.get (Suite.find name) in
        let elf = Codegen.generate row.Suite.profile in
        let per_stack =
          List.map
            (fun (_, f) ->
              let options =
                { (options_for row) with
                  Rewriter.tactics = f Tactics.default_options }
              in
              let r =
                traced_run ~options elf ~select:Frontend.select_jumps
                  ~template:(fun _ -> Trampoline.Empty)
              in
              Stats.succ_pct r.Rewriter.stats)
            stacks
        in
        (name, per_stack))
      rows
  in
  let accs = Array.make (List.length stacks) [] in
  List.iter
    (fun (name, per_stack) ->
      printf "%-14s" name;
      record_row "ablation"
        (("binary", Json.Str name)
        :: List.map2
             (fun (stack, _) s -> (stack, Json.Float s))
             stacks per_stack);
      List.iteri
        (fun i s ->
          accs.(i) <- s :: accs.(i);
          printf " %11.2f%%" s)
        per_stack;
      printf "@.")
    measured;
  printf "%-14s" "Mean";
  Array.iter (fun xs -> printf " %11.2f%%" (mean xs)) accs;
  printf "@.(paper: Base 72.8%% -> ~90.5%% without T3 -> ~100%% with T3)@."

(* ------------------------------------------------------------------ *)
(* §5.1: PIE vs non-PIE                                                *)
(* ------------------------------------------------------------------ *)

let bench_pie () =
  heading "PIE vs non-PIE (§5.1): valid displacement space doubles";
  printf "%-10s %12s %12s@." "app" "non-PIE Base%" "PIE Base%";
  let measured =
    par_map
      (fun (app, select) ->
        let base pie =
          let prof =
            { Codegen.default_profile with
              Codegen.seed = 999L; functions = 600; iterations = 1; pie }
          in
          let r =
            traced_run (Codegen.generate prof) ~select
              ~template:(fun _ -> Trampoline.Empty)
          in
          Stats.base_pct r.Rewriter.stats
        in
        (app, base false, base true))
      [ ("A1", Frontend.select_jumps); ("A2", Frontend.select_heap_writes) ]
  in
  List.iter
    (fun (app, nonpie, pie) ->
      record_row "pie"
        [ ("app", Json.Str app);
          ("nonpie_base_pct", Json.Float nonpie);
          ("pie_base_pct", Json.Float pie) ];
      printf "%-10s %11.2f%% %11.2f%%@." app nonpie pie)
    measured;
  printf "(paper: PIE binaries have Base%% > 93%%)@."

(* ------------------------------------------------------------------ *)
(* §2.1.1: the B0 baseline                                             *)
(* ------------------------------------------------------------------ *)

let bench_b0 () =
  heading "B0 signal-handler baseline (§2.1.1): orders of magnitude slower";
  let prof =
    { Codegen.default_profile with
      Codegen.seed = 31L; functions = 60; iterations = 150 }
  in
  let elf = Codegen.generate prof in
  let orig = run_emu elf in
  expect_exit "orig" orig;
  let time options =
    let r =
      traced_run ~options elf ~select:Frontend.select_jumps
        ~template:(fun _ -> Trampoline.Empty)
    in
    let p = run_emu r.Rewriter.output in
    expect_exit "patched" p;
    (100.0 *. float_of_int p.Cpu.cycles /. float_of_int orig.Cpu.cycles,
     r.Rewriter.stats)
  in
  let jumps, _ = time Rewriter.default_options in
  let b0, stats =
    time
      { Rewriter.default_options with
        Rewriter.tactics =
          { Tactics.default_options with
            Tactics.enable_t1 = false;
            enable_t2 = false;
            enable_t3 = false;
            b0_fallback = true } }
  in
  record_row "b0"
    [ ("jump_tactics_pct", Json.Float jumps);
      ("b0_pct", Json.Float b0);
      ("b0_traps", Json.Int stats.Stats.b0) ];
  printf "jump tactics (B1/B2/T1/T2/T3): %8.0f%%@." jumps;
  printf "B0 fallback (%d int3 traps):   %8.0f%%  (%.0fx the jump tactics)@."
    stats.Stats.b0 b0 (b0 /. jumps);
  printf "(paper: signal handlers are slower \"sometimes by orders of magnitude\")@."

(* ------------------------------------------------------------------ *)
(* §1/§7: robustness vs the relocating-rewriter baseline               *)
(* ------------------------------------------------------------------ *)

let bench_robustness () =
  heading
    "Relocating-rewriter baseline (§1, §7): fast when recovery succeeds, \
     broken when it does not";
  (* Part 1: head-to-head on one binary. *)
  let prof =
    { Codegen.default_profile with
      Codegen.seed = 5L; functions = 60; iterations = 150 }
  in
  let elf = Codegen.generate prof in
  let orig = run_emu elf in
  expect_exit "orig" orig;
  let describe name (r : Cpu.result) tables =
    let eq = Machine.equivalent orig r in
    let verdict =
      if eq then "CORRECT"
      else
        match r.Cpu.outcome with
        | Cpu.Fault _ -> "CRASH"
        | _ -> "WRONG OUTPUT"
    in
    record_row "robustness"
      [ ("rewriter", Json.Str name);
        ("verdict", Json.Str verdict);
        ("time_pct",
         Json.Float
           (100.0 *. float_of_int r.Cpu.cycles /. float_of_int orig.Cpu.cycles))
      ];
    printf "  %-26s %-10s time=%3.0f%%  %s@." name verdict
      (100.0 *. float_of_int r.Cpu.cycles /. float_of_int orig.Cpu.cycles)
      tables
  in
  let rl cfg = Reloc.run ~cfg elf ~select:Frontend.select_jumps in
  let gt = rl Reloc.Ground_truth in
  describe "reloc (ground-truth CFG)"
    (run_emu gt.Reloc.output)
    (Printf.sprintf "(tables %d/%d)" gt.Reloc.tables_rewritten
       gt.Reloc.tables_total);
  let hz = rl Reloc.Heuristic in
  describe "reloc (heuristic CFG)"
    (run_emu hz.Reloc.output)
    (Printf.sprintf "(tables %d/%d: PIC tables invisible)"
       hz.Reloc.tables_rewritten hz.Reloc.tables_total);
  let e9 =
    traced_run elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Counter)
  in
  describe "e9patch (no CFG at all)"
    (run_emu e9.Rewriter.output)
    "";
  (* Part 2: the paper's probability argument. "Consider a static binary
     analysis for detecting indirect jump targets that is 99.9% accurate
     ... the effective accuracy drops to ~37% per 1000 indirect jumps."
     Degrade ground truth to per-table accuracy p and measure the fraction
     of binaries that survive relocation, against the predicted p^n. *)
  printf
    "@.Per-table CFG accuracy p vs whole-binary soundness (predicted p^n):@.";
  printf "  %8s %8s %8s %11s %9s %15s@." "p" "tables" "trials" "predicted"
    "sound" "runs surviving";
  let trials = if !smoke then 4 else 12 in
  let measured =
    par_map
      (fun (p, functions) ->
        let survived = ref 0 in
        let sound = ref 0 in
        let tables = ref 0 in
        for t = 1 to trials do
          let prof =
            { Codegen.default_profile with
              Codegen.seed = Int64.of_int (1000 + t); functions;
              iterations = 20 }
          in
          let elf = Codegen.generate prof in
          let orig = run_emu elf in
          let r =
            Reloc.run ~cfg:(Reloc.Heuristic_prob (p, Int64.of_int t)) elf
              ~select:(fun _ -> false)
          in
          tables := r.Reloc.tables_total;
          if r.Reloc.tables_rewritten = r.Reloc.tables_total then incr sound;
          if Machine.equivalent orig (run_emu r.Reloc.output) then
            incr survived
        done;
        (p, !tables, !sound, !survived))
      (cut 3 [ (1.0, 60); (0.999, 60); (0.99, 60); (0.99, 240); (0.95, 60) ])
  in
  List.iter
    (fun (p, tables, sound, survived) ->
      record_row "robustness-prob"
        [ ("p", Json.Float p);
          ("tables", Json.Int tables);
          ("trials", Json.Int trials);
          ("predicted_pct", Json.Float (100.0 *. (p ** float_of_int tables)));
          ("sound_pct",
           Json.Float (100.0 *. float_of_int sound /. float_of_int trials));
          ("survived_pct",
           Json.Float (100.0 *. float_of_int survived /. float_of_int trials))
        ];
      printf "  %8.3f %8d %8d %10.0f%% %8.0f%% %14.0f%%@." p tables trials
        (100.0 *. (p ** float_of_int tables))
        (100.0 *. float_of_int sound /. float_of_int trials)
        (100.0 *. float_of_int survived /. float_of_int trials))
    measured;
  printf "  (\"sound\" = every table recovered. A run can survive an unsound@.";
  printf "   rewrite by luck when the missed jump is not exercised — the@.";
  printf "   fragility is latent: testing passes, production crashes.@.";
  printf "   E9Patch is sound at every size by construction.)@."

(* ------------------------------------------------------------------ *)
(* Scalability: rewrite throughput vs binary size                      *)
(* ------------------------------------------------------------------ *)

let bench_scalability () =
  heading "Scalability: rewriting time vs text size (A1, all tactics)";
  printf "%10s %10s %10s %12s %10s %10s %8s@." "text KB" "#Loc" "Succ%"
    "rewrite s" "KB/s" "Minsn/s" "bhit%";
  let sizes = if !smoke then [ 250; 1000 ] else [ 250; 1000; 4000; 10000 ] in
  let measured =
    par_map
      (fun functions ->
        let prof =
          { Codegen.default_profile with
            Codegen.seed = 64L; functions; iterations = 50 }
        in
        let elf = Codegen.generate prof in
        let text, _ = Frontend.disassemble elf in
        let t0 = Unix.gettimeofday () in
        let r =
          traced_run elf ~select:Frontend.select_jumps
            ~template:(fun _ -> Trampoline.Empty)
        in
        let dt = Unix.gettimeofday () -. t0 in
        verify_rewrite (Printf.sprintf "scalability(%d fns)" functions) elf r;
        (* End-to-end: run the patched output, which both validates the
           rewrite at this size and exercises the emulator's superblock
           cache on a large text. *)
        let t1 = Unix.gettimeofday () in
        let patched = run_emu r.Rewriter.output in
        let emu_dt = Unix.gettimeofday () -. t1 in
        expect_exit "patched" patched;
        (functions, text, r, dt, patched, emu_dt))
      sizes
  in
  List.iter
    (fun (_, (text : Frontend.text), (r : Rewriter.result), dt,
          (patched : Cpu.result), emu_dt) ->
      let minsns_s =
        if emu_dt > 0.0 then float_of_int patched.Cpu.insns /. emu_dt /. 1e6
        else 0.0
      in
      let bhit =
        let total = patched.Cpu.block_hits + patched.Cpu.block_misses in
        if total = 0 then 0.0
        else 100.0 *. float_of_int patched.Cpu.block_hits /. float_of_int total
      in
      record_row "scalability"
        [ ("text_kb", Json.Int (text.Frontend.size / 1024));
          ("loc", Json.Int (Stats.total r.Rewriter.stats));
          ("succ_pct", Json.Float (Stats.succ_pct r.Rewriter.stats));
          ("rewrite_s", Json.Float dt);
          ("kb_per_s", Json.Float (float_of_int text.Frontend.size /. 1024.0 /. dt));
          ("emu_insns", Json.Int patched.Cpu.insns);
          ("emu_minsns_per_s", Json.Float minsns_s);
          ("block_hit_pct", Json.Float bhit) ];
      printf "%10d %10d %9.2f%% %12.2f %10.0f %10.1f %7.1f%%@."
        (text.Frontend.size / 1024)
        (Stats.total r.Rewriter.stats)
        (Stats.succ_pct r.Rewriter.stats)
        dt
        (float_of_int text.Frontend.size /. 1024.0 /. dt)
        minsns_s bhit)
    measured

(* ------------------------------------------------------------------ *)
(* Domain-parallel rewriting: jobs-invariance + intra-binary scaling   *)
(* ------------------------------------------------------------------ *)

(* Captured for the [parallel] object in BENCH_throughput.json. *)
let parallel_json : Json.t option ref = ref None

let bench_parallel () =
  heading
    "Domain-parallel rewriting: jobs-invariance and intra-binary scaling";
  (* Part 1: across the whole Table 1 corpus, jobs=4 must produce the
     same bytes as jobs=1 and pass the independent verifier. A small
     shard span forces real sharding even on the scaled-down suite
     binaries (their text would otherwise fit one 64 KiB shard). *)
  let shard_span = 4096 in
  printf "corpus determinism (shard_span=%d): jobs=4 vs jobs=1@." shard_span;
  let checked =
    par_map
      (fun (row : Suite.row) ->
        let elf = Codegen.generate row.Suite.profile in
        let options = { (options_for row) with Rewriter.shard_span } in
        let rewrite jobs =
          Rewriter.run ~options ~jobs ?disasm_from:(disasm_from_of elf) elf
            ~select:Frontend.select_jumps
            ~template:(fun _ -> Trampoline.Empty)
        in
        let r1 = rewrite 1 in
        let r4 = rewrite 4 in
        verify_rewrite (row.Suite.profile.Codegen.name ^ "(jobs=4)") elf r4;
        let identical =
          Bytes.equal
            (Elf_file.to_bytes r1.Rewriter.output)
            (Elf_file.to_bytes r4.Rewriter.output)
        in
        (row.Suite.profile.Codegen.name, r4.Rewriter.shards, identical))
      (cut 4 Suite.rows)
  in
  let corpus_rows =
    List.map
      (fun (name, shards, identical) ->
        record_row "parallel"
          [ ("binary", Json.Str name);
            ("shards", Json.Int shards);
            ("identical", Json.Bool identical) ];
        printf "  %-12s %4d shards  %s@." name shards
          (if identical then "identical" else "DIFFERS");
        if not identical then
          failwith (name ^ ": jobs=4 output differs from jobs=1");
        Json.Obj
          [ ("binary", Json.Str name);
            ("shards", Json.Int shards);
            ("identical", Json.Bool identical) ])
      checked
  in
  (* Part 2: one large binary, default 64 KiB shards, jobs ∈ {1,2,4}.
     The quantity under test is the tactic_search span — decode and
     serialization scale separately — but end-to-end wall time is
     recorded too. Runs are sequential (never fanned with par_map) so
     each sweep point has the machine to itself. *)
  let functions = if !smoke then 1000 else 4000 in
  let prof =
    { Codegen.default_profile with
      Codegen.seed = 64L; functions; iterations = 1 }
  in
  let elf = Codegen.generate prof in
  let text, _ = Frontend.disassemble elf in
  let measure ?options jobs =
    let obs = Obs.aggregator () in
    let t0 = Unix.gettimeofday () in
    let r =
      Rewriter.run ?options ~obs ~jobs elf ~select:Frontend.select_jumps
        ~template:(fun _ -> Trampoline.Empty)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let search = Obs.Agg.span_total (Obs.agg obs) "tactic_search" in
    (r, wall, search)
  in
  (* The un-sharded serial algorithm (one shard spans the whole text) is
     the overhead baseline: sharded jobs=1 minus this is the cost of
     arena striping and the fixup pass. *)
  let _, _, serial_search =
    measure
      ~options:
        { Rewriter.default_options with Rewriter.shard_span = text.Frontend.size }
      1
  in
  let r1, wall1, search1 = measure 1 in
  let reference = Elf_file.to_bytes r1.Rewriter.output in
  let cores = Domain.recommended_domain_count () in
  printf "@.intra-binary scaling (%d KB text, %d shards, %d cores):@."
    (text.Frontend.size / 1024) r1.Rewriter.shards cores;
  printf "  serial (1 shard) search: %.3fs@." serial_search;
  printf "  %5s %12s %12s %9s@." "jobs" "search s" "total s" "speedup";
  let sweep =
    List.map
      (fun jobs ->
        let r, wall, search =
          if jobs = 1 then (r1, wall1, search1) else measure jobs
        in
        if not (Bytes.equal (Elf_file.to_bytes r.Rewriter.output) reference)
        then failwith (Printf.sprintf "jobs=%d differs on the sweep binary" jobs);
        let speedup = if search > 0.0 then search1 /. search else 0.0 in
        record_row "parallel-sweep"
          [ ("jobs", Json.Int jobs);
            ("search_s", Json.Float search);
            ("wall_s", Json.Float wall);
            ("search_speedup", Json.Float speedup);
            ("chunks", Json.Int r.Rewriter.shards);
            ("steal_count", Json.Int r.Rewriter.steals);
            ("setup_s", Json.Float r.Rewriter.setup_s) ];
        printf "  %5d %12.3f %12.3f %8.2fx  (%d chunks, %d steals, \
                setup %.4fs)@."
          jobs search wall speedup r.Rewriter.shards r.Rewriter.steals
          r.Rewriter.setup_s;
        (jobs, wall, search, speedup, r.Rewriter.steals, r.Rewriter.setup_s,
         r.Rewriter.shards))
      [ 1; 2; 4 ]
  in
  let speedup_at_4 =
    List.fold_left
      (fun acc (jobs, _, _, s, _, _, _) -> if jobs = 4 then s else acc)
      0.0 sweep
  in
  parallel_json :=
    Some
      (Json.Obj
         [ ("shard_span", Json.Int shard_span);
           ("corpus", Json.List corpus_rows);
           ("cores", Json.Int cores);
           ("sweep_text_kb", Json.Int (text.Frontend.size / 1024));
           ("sweep_shards", Json.Int r1.Rewriter.shards);
           ("serial_search_s", Json.Float serial_search);
           ("sweep",
            Json.List
              (List.map
                 (fun (jobs, wall, search, speedup, steals, setup, chunks) ->
                   Json.Obj
                     [ ("jobs", Json.Int jobs);
                       ("search_s", Json.Float search);
                       ("wall_s", Json.Float wall);
                       ("search_speedup", Json.Float speedup);
                       ("chunks", Json.Int chunks);
                       ("steal_count", Json.Int steals);
                       ("setup_s", Json.Float setup) ])
                 sweep));
           ("search_speedup_at_4", Json.Float speedup_at_4) ])

(* ------------------------------------------------------------------ *)
(* Fault-injection campaign (DESIGN.md §11)                            *)
(* ------------------------------------------------------------------ *)

module Inject = E9_check.Inject

(* Captured for the [faults] object in BENCH_throughput.json. *)
let faults_json : Json.t option ref = ref None

let bench_faults () =
  heading "Fault injection: hardening contract under random fault schedules";
  (* Each case runs a jobs-1 leg, jobs-2/4 invariance legs, a
     total-allocator-exhaustion B0 leg and write/trace containment legs;
     any uncaught exception, verifier reject or half-written file is a
     contract violation. The campaign is deterministic in (n, seed). *)
  let n = if !smoke then 60 else 250 in
  let seed = 42 in
  let s = Inject.campaign ~n ~seed () in
  printf "  %a@." Inject.pp_summary s;
  List.iter
    (fun (case, msg) -> printf "  VIOLATION %s@.    %s@." case msg)
    s.Inject.failures;
  record_row "faults"
    [ ("cases", Json.Int s.Inject.cases);
      ("seed", Json.Int seed);
      ("full", Json.Int s.Inject.full);
      ("degraded", Json.Int s.Inject.degraded);
      ("typed", Json.Int s.Inject.typed);
      ("skipped", Json.Int s.Inject.skipped);
      ("b0_sites", Json.Int s.Inject.b0_sites);
      ("violations", Json.Int (List.length s.Inject.failures)) ];
  faults_json := Some (Inject.summary_json s);
  if s.Inject.failures <> [] then
    failwith "fault campaign found contract violations"

(* ------------------------------------------------------------------ *)
(* Calibration curves (documents how suite parameters were derived)    *)
(* ------------------------------------------------------------------ *)

let bench_calibration () =
  heading "Calibration: generator bias vs Base% (suite parameter derivation)";
  printf "A1: short_jump_bias -> Base%% (non-PIE)@.";
  let a1 =
    par_map
      (fun bias ->
        let prof =
          { Codegen.default_profile with
            Codegen.seed = 11L; functions = 400; iterations = 1;
            short_jump_bias = bias }
        in
        let r =
          traced_run (Codegen.generate prof) ~select:Frontend.select_jumps
            ~template:(fun _ -> Trampoline.Empty)
        in
        (bias, Stats.base_pct r.Rewriter.stats))
      [ 0.1; 0.3; 0.5; 0.7; 0.9 ]
  in
  List.iter
    (fun (bias, base) ->
      record_row "calibration-a1"
        [ ("short_jump_bias", Json.Float bias); ("base_pct", Json.Float base) ];
      printf "  bias=%.1f -> Base=%.2f%%@." bias base)
    a1;
  printf "A2: small_write_bias -> Base%% (non-PIE)@.";
  let a2 =
    par_map
      (fun sw ->
        let prof =
          { Codegen.default_profile with
            Codegen.seed = 11L; functions = 400; iterations = 1;
            small_write_bias = sw }
        in
        let r =
          traced_run (Codegen.generate prof)
            ~select:Frontend.select_heap_writes
            ~template:(fun _ -> Trampoline.Empty)
        in
        (sw, Stats.base_pct r.Rewriter.stats))
      [ 0.0; 0.2; 0.4; 0.6; 0.8 ]
  in
  List.iter
    (fun (sw, base) ->
      record_row "calibration-a2"
        [ ("small_write_bias", Json.Float sw); ("base_pct", Json.Float base) ];
      printf "  small=%.1f -> Base=%.2f%%@." sw base)
    a2

(* ------------------------------------------------------------------ *)
(* Iset micro-benchmark: augmented tree vs the linear-scan baseline    *)
(* ------------------------------------------------------------------ *)

(* Captured for the [iset] list in BENCH_throughput.json. *)
let iset_json : Json.t option ref = ref None

let bench_iset () =
  heading "Iset: O(log n) strided query vs the linear-scan baseline";
  let open Bechamel in
  let clock = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let estimate name f =
    let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.25) () in
    let raw = Benchmark.all cfg [ clock ] (Test.make ~name (Staged.stage f)) in
    let est = ref 0.0 in
    Hashtbl.iter
      (fun _ r ->
        match Analyze.OLS.estimates (Analyze.one ols clock r) with
        | Some (e :: _) -> est := e
        | Some [] | None -> ())
      raw;
    !est
  in
  let sizes = [ 100; 1_000; 10_000; 100_000 ] in
  printf "  %9s %14s %16s %9s@." "intervals" "tree ns/run" "linear ns/run"
    "speedup";
  let rows =
    List.map
      (fun n ->
        (* The allocator's worst query shape: every inter-blocker gap is
           one byte too small for the request, so the pre-PR linear scan
           visits all [n] intervals before finding the slot past the last
           one, while the augmented tree prunes whole subtrees on
           [max_gap] and answers in O(log n). *)
        let tree = E9_bits.Iset.create () in
        let lin = Iset_linear.create () in
        for i = 0 to n - 1 do
          let lo = 0x10000 + (i * 48) in
          E9_bits.Iset.add tree ~lo ~hi:(lo + 33);
          Iset_linear.add lin ~lo ~hi:(lo + 33)
        done;
        let hi = 0x10000 + (n * 48) + 0x10000 in
        let answer =
          E9_bits.Iset.find_free_strided tree ~size:16 ~lo:0x10000 ~hi
            ~stride:64
        in
        if
          answer
          <> Iset_linear.find_free_strided lin ~size:16 ~lo:0x10000 ~hi
               ~stride:64
        then failwith (Printf.sprintf "iset@%d: tree and linear disagree" n);
        let tree_ns =
          estimate
            (Printf.sprintf "iset-tree-%d" n)
            (fun () ->
              ignore
                (E9_bits.Iset.find_free_strided tree ~size:16 ~lo:0x10000 ~hi
                   ~stride:64))
        in
        let linear_ns =
          estimate
            (Printf.sprintf "iset-linear-%d" n)
            (fun () ->
              ignore
                (Iset_linear.find_free_strided lin ~size:16 ~lo:0x10000 ~hi
                   ~stride:64))
        in
        let speedup = if tree_ns > 0.0 then linear_ns /. tree_ns else 0.0 in
        record_row "iset"
          [ ("intervals", Json.Int n);
            ("tree_ns", Json.Float tree_ns);
            ("linear_ns", Json.Float linear_ns);
            ("speedup", Json.Float speedup) ];
        printf "  %9d %14.1f %16.1f %8.1fx@." n tree_ns linear_ns speedup;
        Json.Obj
          [ ("intervals", Json.Int n);
            ("tree_ns", Json.Float tree_ns);
            ("linear_ns", Json.Float linear_ns);
            ("speedup", Json.Float speedup) ])
      sizes
  in
  iset_json := Some (Json.List rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: rewriter throughput per experiment       *)
(* ------------------------------------------------------------------ *)

let bench_bechamel () =
  heading "Bechamel: rewriter micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let prof =
    { Codegen.default_profile with
      Codegen.seed = 5L; functions = 80; iterations = 1 }
  in
  let elf = Codegen.generate prof in
  let dromaeo_elf =
    Codegen.generate
      { (Dromaeo.program (List.hd Dromaeo.suites)) with Codegen.iterations = 1 }
  in
  let rewrite ?(options = Rewriter.default_options) elf select template () =
    (* Deliberately detached (no obs sink): bechamel measures the bare
       hot path, which keeps the <2% sink-overhead budget honest. *)
    ignore (Rewriter.run ~options elf ~select ~template:(fun _ -> template))
  in
  (* The allocator's joint-pun query shape: a strided search over a
     fragmented interval set. ~2000 blockers with gaps one byte too small
     force the scan to walk the whole window carrying the blocker from
     the previous probe (the two-lookups-per-probe regression this
     guards). *)
  let strided_set =
    let s = E9_bits.Iset.create () in
    for i = 0 to 1999 do
      E9_bits.Iset.add s ~lo:(0x10000 + (i * 48)) ~hi:(0x10000 + (i * 48) + 33)
    done;
    s
  in
  let tests =
    [ Test.make ~name:"iset-find-free-strided"
        (Staged.stage (fun () ->
             ignore
               (E9_bits.Iset.find_free_strided strided_set ~size:16 ~lo:0x10000
                  ~hi:0x40000 ~stride:64)));
      Test.make ~name:"table1-A1-rewrite"
        (Staged.stage (rewrite elf Frontend.select_jumps Trampoline.Empty));
      Test.make ~name:"table1-A2-rewrite"
        (Staged.stage
           (rewrite elf Frontend.select_heap_writes Trampoline.Empty));
      Test.make ~name:"figure4-dromaeo-rewrite"
        (Staged.stage
           (rewrite dromaeo_elf Frontend.select_heap_writes Trampoline.Empty));
      Test.make ~name:"figure5-lowfat-rewrite"
        (Staged.stage
           (rewrite elf Frontend.select_heap_writes Trampoline.Lowfat_check));
      Test.make ~name:"grouping-naive-rewrite"
        (Staged.stage
           (rewrite
              ~options:{ Rewriter.default_options with Rewriter.grouping = false }
              elf Frontend.select_jumps Trampoline.Empty)) ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) () in
      let results = Benchmark.all cfg [ clock ] test in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.OLS.estimates (Analyze.one ols clock raw) with
          | Some (est :: _) ->
              printf "  %-28s %10.2f ms/run@." name (est /. 1e6)
          | Some [] | None -> printf "  %-28s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Robustness corpus: the adversarial families                         *)
(* ------------------------------------------------------------------ *)

let robust_json : Json.t option ref = ref None

let bench_robust () =
  heading
    "Robustness corpus: adversarial families through the tactic ladder";
  let module Matrix = E9_check.Matrix in
  let module Adversary = E9_workload.Adversary in
  let scores = Matrix.run () in
  List.iter (fun s -> printf "  %a@." Matrix.pp_score s) scores;
  List.iter
    (fun (s : Matrix.score) ->
      let f = s.Matrix.family in
      record_row "robust"
        [ ("family", Json.Str f.Adversary.name);
          ("sites", Json.Int s.Matrix.sites);
          ("patched_pct", Json.Float s.Matrix.patched_pct);
          ("floor_pct", Json.Float f.Adversary.floor_pct);
          ("pass", Json.Bool (Matrix.passed s)) ])
    scores;
  robust_json := Some (Matrix.to_json scores);
  let failed = List.filter (fun s -> not (Matrix.passed s)) scores in
  printf "  %d/%d families pass@."
    (List.length scores - List.length failed)
    (List.length scores);
  if failed <> [] then begin
    Atomic.incr verify_checked;
    Atomic.incr verify_failed
  end

(* ------------------------------------------------------------------ *)
(* serve: the RPC daemon as a workload                                  *)
(* ------------------------------------------------------------------ *)

let service_json : Json.t option ref = ref None

(* Sustained request throughput through the rewriting service: D distinct
   binaries served cold (every emit a rewrite), then replayed twice warm
   (every emit a result-cache hit), client sessions fanned across
   domains. The replay hit-rate is an acceptance gate: the daemon's
   content-addressed cache must convert repeated binaries into hits. *)
let bench_serve () =
  heading "Rewriting-as-a-service: request throughput, latency, caching";
  let module Server = E9_rpc.Server in
  let module Harness = E9_rpc.Harness in
  let module Cache = E9_rpc.Cache in
  let distinct = if !smoke then 3 else 6 in
  let repeats = 3 in
  let spec = "patch jumps with counter" in
  let binaries =
    List.init distinct (fun i ->
        Elf_file.to_bytes
          (Codegen.generate
             { Codegen.default_profile with
               Codegen.name = Printf.sprintf "serve-%d" i;
               seed = Int64.of_int (300 + i);
               functions = (if !smoke then 25 else 60);
               iterations = 2 }))
  in
  let server = Server.create ~cache_capacity:64 () in
  let emit_verified (responses, _alive) =
    List.exists
      (fun line ->
        match Json.of_string line with
        | Ok j -> (
            match Json.member "result" j with
            | Some result ->
                Json.member "verified" result = Some (Json.Bool true)
            | None -> false)
        | Error _ -> false)
      responses
  in
  let run_phase sessions =
    par_map
      (fun raw -> emit_verified (Harness.run_session server (Harness.script ~spec raw)))
      sessions
  in
  let t0 = Unix.gettimeofday () in
  (* Cold: one session per distinct binary, concurrently. *)
  let cold = run_phase binaries in
  (* Warm replay: every binary again, (repeats - 1) more times — all
     sessions race, but every result is already cached. *)
  let warm = run_phase (List.concat (List.init (repeats - 1) (fun _ -> binaries))) in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter
    (fun ok ->
      Atomic.incr verify_checked;
      if not ok then Atomic.incr verify_failed)
    (cold @ warm);
  let started, closed = Server.sessions server in
  let rc = Cache.stats (Server.ctx server).E9_rpc.Session.result_cache in
  let dc = Cache.stats (Server.ctx server).E9_rpc.Session.decode_cache in
  let bypassed = Atomic.get (Server.ctx server).E9_rpc.Session.bypassed in
  let hit_rate = Cache.hit_rate rc in
  let req_per_s =
    if wall > 0.0 then float_of_int (Server.requests server) /. wall else 0.0
  in
  let p50 = Server.latency_percentile server 0.50 in
  let p99 = Server.latency_percentile server 0.99 in
  printf
    "  %d sessions (%d binaries x %d), %d requests in %.2fs — %.0f req/s; \
     p50 %.1f ms, p99 %.1f ms@."
    closed distinct repeats (Server.requests server) wall req_per_s
    (1000.0 *. p50) (1000.0 *. p99);
  printf
    "  result cache: %d/%d hits (%.0f%%); decode cache: %d/%d hits, %d \
     bypassed@."
    rc.Cache.hits (rc.Cache.hits + rc.Cache.misses) (100.0 *. hit_rate)
    dc.Cache.hits (dc.Cache.hits + dc.Cache.misses) bypassed;
  record_row "serve"
    [ ("sessions", Json.Int closed);
      ("requests", Json.Int (Server.requests server));
      ("req_per_s", Json.Float req_per_s);
      ("p50_ms", Json.Float (1000.0 *. p50));
      ("p99_ms", Json.Float (1000.0 *. p99));
      ("hit_rate", Json.Float hit_rate) ];
  (* Fold the daemon's per-phase spans (rpc_decode/rpc_rewrite/rpc_verify,
     per-method rpc_* timings) into the global rollup. *)
  Mutex.protect obs_lock (fun () ->
      Obs.Agg.merge_into ~dst:obs_agg (Server.agg server));
  service_json :=
    Some
      (Json.Obj
         [ ("sessions", Json.Int closed);
           ("requests", Json.Int (Server.requests server));
           ("errors", Json.Int (Server.errors server));
           ("req_per_s", Json.Float req_per_s);
           ("p50_ms", Json.Float (1000.0 *. p50));
           ("p99_ms", Json.Float (1000.0 *. p99));
           ("hit_rate", Json.Float hit_rate);
           ("result_cache", Cache.stats_json rc);
           ("decode_cache",
            (* Result-cache hits never consult the decode cache; the
               bypass count is what keeps its hit rate honest here. *)
            match Cache.stats_json dc with
            | Json.Obj fields ->
                Json.Obj (fields @ [ ("bypassed", Json.Int bypassed) ])
            | j -> j) ]);
  if started <> closed then begin
    printf "  FAIL: %d sessions started, %d closed@." started closed;
    Atomic.incr verify_checked;
    Atomic.incr verify_failed
  end;
  (* Acceptance gate: the replay workload must hit at least half the
     time (it is 2/3 by construction — 2 warm emits per 1 cold). *)
  if hit_rate < 0.5 then begin
    printf "  FAIL: replay hit-rate %.2f < 0.5@." hit_rate;
    Atomic.incr verify_checked;
    Atomic.incr verify_failed
  end

(* ------------------------------------------------------------------ *)
(* Incremental rewriting: the chunked plan cache, warm vs cold         *)
(* ------------------------------------------------------------------ *)

module Plan = E9_core.Plan

let incremental_json : Json.t option ref = ref None

(* An N-revision series with ~1% text churn per step: revision r+1 is
   revision r with a few whole instructions overwritten by NOPs (edits at
   decoded-site boundaries, so every revision stays a valid linear-sweep
   input). Each revision is rewritten twice under identical chunked
   options — cold against a fresh plan store, warm against the store the
   series has been populating — and the gate is that the warm pass both
   reproduces the cold bytes exactly and runs at least twice as fast,
   because unchanged chunks replay their plans instead of re-running
   decode and tactic search (O(changed bytes), DESIGN.md §14). Timed runs
   are sequential: par_map would make wall-clock meaningless. *)
let bench_incremental () =
  heading "Incremental rewriting: chunked plan cache, warm vs cold";
  let functions = if !smoke then 500 else 1500 in
  let revisions = if !smoke then 4 else 6 in
  let prof =
    { Codegen.default_profile with
      Codegen.seed = 77L; functions; iterations = 1 }
  in
  let elf0 = Codegen.generate prof in
  let base_bytes = Elf_file.to_bytes elf0 in
  let text, sites = Frontend.disassemble elf0 in
  (* Churn sites from the base decode: overwriting an instruction with
     one-byte NOPs preserves every other instruction boundary, so the
     base site table stays valid for deriving later revisions too. *)
  let editable =
    Array.of_list (List.filter (fun s -> s.Frontend.len >= 2) sites)
  in
  let churn_budget = max 16 (text.Frontend.size / 100) in
  (* Localized churn, like a real edit: one contiguous run of
     instructions per revision, ~1% of the text. Scattering the same
     budget uniformly would touch every chunk and leave nothing to
     replay. *)
  let revise rng bytes =
    let b = Bytes.copy bytes in
    let start = Random.State.int rng (Array.length editable) in
    let churned = ref 0 in
    let i = ref start in
    while !churned < churn_budget && !i < Array.length editable do
      let s = editable.(!i) in
      let off = text.Frontend.offset + (s.Frontend.addr - text.Frontend.base) in
      Bytes.fill b off s.Frontend.len '\x90';
      churned := !churned + s.Frontend.len;
      incr i
    done;
    b
  in
  let rng = Random.State.make [| 0xe9; 77 |] in
  let series =
    let rec grow acc bytes n =
      if n = 0 then List.rev acc
      else
        let next = revise rng bytes in
        grow (next :: acc) next (n - 1)
    in
    base_bytes :: grow [] base_bytes (revisions - 1)
  in
  let options =
    { Rewriter.default_options with
      Rewriter.chunking = Some Chunker.default }
  in
  let plan_of table =
    { Plan.store = Plan.table_store table;
      (* select/template are fixed for the whole experiment, so a
         constant fragment key is exact. *)
      spec_key = (fun ~lo:_ ~len:_ -> "bench:jumps/empty") }
  in
  let rewrite ~plan elf =
    let t0 = Unix.gettimeofday () in
    let r =
      Rewriter.run ~options ?jobs:!jobs_opt ~plan elf
        ~select:Frontend.select_jumps
        ~template:(fun _ -> Trampoline.Empty)
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let warm_table = Plan.create_table () in
  printf "  %3s %9s %9s %9s  %5s %5s %5s  %s@." "rev" "cold s" "warm s"
    "speedup" "hit" "miss" "conf" "bytes";
  let cold_total = ref 0.0 and warm_total = ref 0.0 in
  let hits = ref 0 and misses = ref 0 and conflicts = ref 0 in
  let all_identical = ref true in
  let rows =
    List.mapi
      (fun rev bytes ->
        let elf = Elf_file.of_bytes bytes in
        let cold, cold_s = rewrite ~plan:(plan_of (Plan.create_table ())) elf in
        let warm, warm_s = rewrite ~plan:(plan_of warm_table) elf in
        let identical =
          Bytes.equal
            (Elf_file.to_bytes cold.Rewriter.output)
            (Elf_file.to_bytes warm.Rewriter.output)
        in
        verify_rewrite (Printf.sprintf "incremental(rev %d, warm)" rev) elf
          warm;
        if not identical then all_identical := false;
        (* Revision 0 populates the warm store (all misses); the
           incremental claim is about the replays after it. *)
        if rev > 0 then begin
          cold_total := !cold_total +. cold_s;
          warm_total := !warm_total +. warm_s
        end;
        hits := !hits + warm.Rewriter.plan_hits;
        misses := !misses + warm.Rewriter.plan_misses;
        conflicts := !conflicts + warm.Rewriter.plan_conflicts;
        let speedup = if warm_s > 0.0 then cold_s /. warm_s else 0.0 in
        record_row "incremental"
          [ ("rev", Json.Int rev);
            ("cold_s", Json.Float cold_s);
            ("warm_s", Json.Float warm_s);
            ("speedup", Json.Float speedup);
            ("plan_hits", Json.Int warm.Rewriter.plan_hits);
            ("plan_misses", Json.Int warm.Rewriter.plan_misses);
            ("plan_conflicts", Json.Int warm.Rewriter.plan_conflicts);
            ("identical", Json.Bool identical) ];
        printf "  %3d %9.3f %9.3f %8.2fx  %5d %5d %5d  %s@." rev cold_s
          warm_s speedup warm.Rewriter.plan_hits warm.Rewriter.plan_misses
          warm.Rewriter.plan_conflicts
          (if identical then "identical" else "DIFFERS");
        Json.Obj
          [ ("rev", Json.Int rev);
            ("cold_s", Json.Float cold_s);
            ("warm_s", Json.Float warm_s);
            ("speedup", Json.Float speedup);
            ("plan_hits", Json.Int warm.Rewriter.plan_hits);
            ("plan_misses", Json.Int warm.Rewriter.plan_misses);
            ("plan_conflicts", Json.Int warm.Rewriter.plan_conflicts);
            ("identical", Json.Bool identical) ])
      series
  in
  let speedup =
    if !warm_total > 0.0 then !cold_total /. !warm_total else 0.0
  in
  printf
    "  warm total %.3fs vs cold %.3fs over %d incremental revisions: \
     %.2fx (plans: %d hits, %d misses, %d conflicts)@."
    !warm_total !cold_total (revisions - 1) speedup !hits !misses !conflicts;
  incremental_json :=
    Some
      (Json.Obj
         [ ("revisions", Json.Int revisions);
           ("churn_bytes", Json.Int churn_budget);
           ("text_bytes", Json.Int text.Frontend.size);
           ("jobs",
            Json.Int (match !jobs_opt with Some j -> j | None -> 1));
           ("cold_s", Json.Float !cold_total);
           ("warm_s", Json.Float !warm_total);
           ("warm_speedup", Json.Float speedup);
           ("plan_hits", Json.Int !hits);
           ("plan_misses", Json.Int !misses);
           ("plan_conflicts", Json.Int !conflicts);
           ("identical", Json.Bool !all_identical);
           ("series", Json.List rows) ]);
  if not !all_identical then begin
    printf "  FAIL: warm output differs from cold@.";
    Atomic.incr verify_checked;
    Atomic.incr verify_failed
  end;
  if speedup < 2.0 then begin
    printf "  FAIL: warm speedup %.2fx < 2x@." speedup;
    Atomic.incr verify_checked;
    Atomic.incr verify_failed
  end

(* ------------------------------------------------------------------ *)
(* Tool frontend: builtin matcher x patch pairs over the corpus        *)
(* ------------------------------------------------------------------ *)

(* Captured for the [tool] object in BENCH_throughput.json. *)
let tool_json : Json.t option ref = ref None

let bench_tool () =
  heading
    "Tool frontend: builtin matcher x patch pairs over the robustness corpus";
  let module Adversary = E9_workload.Adversary in
  let module Tool = E9_tool.Tool in
  let module Static = E9_check.Static in
  let module Trace = E9_check.Trace in
  (* One pair per builtin patch, plus the call-ABI pairs the acceptance
     bar names: a clean call with three static arguments and a naked
     call (verified behaviorally — its [call] writes the guest stack by
     design, so the trace oracle is the wrong instrument for it). *)
  let pairs =
    [ ("jumps", "print");
      ("all", "count");
      ("returns", "trap");
      ("heap-writes", "lowfat");
      ("calls", "call:clean record(addr,size,3)");
      ("mnemonic mov and op[0].type == mem", "empty");
      ("returns", "call:naked counter()") ]
  in
  let families = cut 3 Adversary.families in
  let prepare (f : Adversary.family) =
    let generated = Codegen.generate f.Adversary.profile in
    let holes = Codegen.islands generated in
    let elf =
      if f.Adversary.strip then
        Elf_file.of_bytes (Elf_file.to_bytes_stripped generated)
      else generated
    in
    let frontend =
      match holes with
      | [] -> None
      | holes -> Some (fun e -> Frontend.disassemble_excluding ~holes e)
    in
    (elf, holes, frontend)
  in
  let trace_config = { Cpu.default_config with Cpu.fuel = 50_000_000 } in
  let tasks =
    List.concat_map (fun pair -> List.map (fun f -> (pair, f)) families) pairs
  in
  let score ((m, p), (f : Adversary.family)) =
    let rules = [ Tool.rule_of ~m ~p () ] in
    let naked =
      match (List.hd rules).Tool.patch with
      | Tool.Call { mode = Trampoline.Naked; _ } -> true
      | _ -> false
    in
    let elf, holes, frontend = prepare f in
    let options =
      { Rewriter.default_options with
        Rewriter.tactics =
          { Tactics.default_options with Tactics.b0_fallback = true };
        reserve_below_base = f.Adversary.profile.Codegen.shared_object;
        shard_span = 4096;
        keep_ranges = holes }
    in
    let run j = Tool.run ~options ~jobs:j ?frontend elf rules in
    let res = run 1 in
    let res4 = run 4 in
    let r = res.Tool.rewrite in
    let rt = res.Tool.runtime in
    let jobs_identical =
      Bytes.equal
        (Elf_file.to_bytes r.Rewriter.output)
        (Elf_file.to_bytes res4.Tool.rewrite.Rewriter.output)
      && r.Rewriter.stats = res4.Tool.rewrite.Rewriter.stats
    in
    let static_err =
      match
        Static.verify ~holes ~original:rt.Tool.augmented r.Rewriter.output
      with
      | Ok _ -> None
      | Error e -> Some (Format.asprintf "%a" Static.pp_error e)
    in
    let trace_err =
      if naked then
        (* Behavioral equivalence: same outcome and output streams. *)
        let orig = Machine.run ~config:trace_config rt.Tool.augmented in
        let patched = Machine.run ~config:trace_config r.Rewriter.output in
        if Machine.equivalent orig patched then None
        else Some "naked call: outcome/output diverged"
      else
        match
          Trace.compare_runs ~config:trace_config ~holes
            ~instr_ranges:rt.Tool.instr_ranges ~original:rt.Tool.augmented
            r.Rewriter.output
        with
        | Ok _ -> None
        | Error msg -> Some msg
    in
    (m, p, f.Adversary.name, Stats.total r.Rewriter.stats, jobs_identical,
     static_err, trace_err)
  in
  let scores = par_map score tasks in
  let rows =
    List.map
      (fun (m, p, fam, sites, ji, serr, terr) ->
        let pass = ji && serr = None && terr = None in
        Atomic.incr verify_checked;
        if not pass then begin
          Atomic.incr verify_failed;
          printf "  FAIL -M %s -P %s on %s: %s@." m p fam
            (match (serr, terr) with
            | Some e, _ -> "static: " ^ e
            | None, Some e -> "trace: " ^ e
            | None, None -> "jobs 1 vs 4 bytes differ")
        end;
        record_row "tool"
          [ ("match", Json.Str m); ("patch", Json.Str p);
            ("family", Json.Str fam); ("sites", Json.Int sites);
            ("pass", Json.Bool pass) ];
        Json.Obj
          [ ("match", Json.Str m); ("patch", Json.Str p);
            ("family", Json.Str fam); ("sites", Json.Int sites);
            ("jobs_identical", Json.Bool ji);
            ("static",
             Json.Str (match serr with None -> "ok" | Some e -> e));
            ("trace",
             Json.Str
               (match terr with
               | None -> if ji then "ok" else "ok"
               | Some e -> e));
            ("pass", Json.Bool pass) ])
      scores
  in
  let passed =
    List.length
      (List.filter
         (fun (_, _, _, _, ji, s, t) -> ji && s = None && t = None)
         scores)
  in
  printf "  %d pairs x %d families: %d/%d pass@." (List.length pairs)
    (List.length families) passed (List.length scores);
  List.iter
    (fun (m, p, fam, sites, _, _, _) ->
      printf "    %-42s %-34s %-22s %6d sites@."
        (Printf.sprintf "-M %s" m) (Printf.sprintf "-P %s" p) fam sites)
    scores;
  tool_json :=
    Some
      (Json.Obj
         [ ("pairs", Json.Int (List.length pairs));
           ("families", Json.Int (List.length families));
           ("passed", Json.Int passed);
           ("total", Json.Int (List.length scores));
           ("rows", Json.List rows) ])

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all =
  [ ("table1", bench_table1);
    ("compare", bench_compare);
    ("robustness", bench_robustness);
    ("figure4", bench_figure4);
    ("figure5", bench_figure5);
    ("grouping", bench_grouping);
    ("ablation", bench_ablation);
    ("pie", bench_pie);
    ("b0", bench_b0);
    ("scalability", bench_scalability);
    ("parallel", bench_parallel);
    ("faults", bench_faults);
    ("calibration", bench_calibration);
    ("robust", bench_robust);
    ("iset", bench_iset);
    ("serve", bench_serve);
    ("incremental", bench_incremental);
    ("tool", bench_tool);
    ("bechamel", bench_bechamel) ]

let usage () =
  printf "usage: main.exe [--serial] [--domains N] [--jobs N] [--smoke] \
          [--json PATH] [experiment ...]@.";
  printf "experiments: %s@." (String.concat " " (List.map fst all));
  exit 1

let rec parse_args = function
  | [] -> []
  | "--" :: rest -> parse_args rest
  | "--serial" :: rest ->
      serial := true;
      parse_args rest
  | "--smoke" :: rest ->
      smoke := true;
      parse_args rest
  | "--json" :: path :: rest ->
      json_path := Some path;
      parse_args rest
  | "--domains" :: n :: rest -> (
      match int_of_string_opt n with
      | Some d when d >= 1 ->
          domains_opt := Some d;
          parse_args rest
      | Some _ | None ->
          printf "--domains expects a positive integer, got %s@." n;
          usage ())
  | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
          jobs_opt := Some j;
          parse_args rest
      | Some _ | None ->
          printf "--jobs expects a positive integer, got %s@." n;
          usage ())
  | flag :: _ when String.length flag > 2 && String.sub flag 0 2 = "--" ->
      printf "unknown flag %s@." flag;
      usage ()
  | name :: rest -> name :: parse_args rest

let throughput_path = "BENCH_throughput.json"

let () =
  let names = parse_args (List.tl (Array.to_list Sys.argv)) in
  let chosen =
    match names with
    | [] -> all
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name all with
            | Some f -> (name, f)
            | None ->
                printf "unknown benchmark %s; available: %s@." name
                  (String.concat " " (List.map fst all));
                exit 1)
          names
  in
  let t0 = Unix.gettimeofday () in
  let exp_times =
    List.map
      (fun (name, f) ->
        let s = Unix.gettimeofday () in
        f ();
        (name, Unix.gettimeofday () -. s))
      chosen
  in
  let wall = Unix.gettimeofday () -. t0 in
  let tp =
    { Stats.wall_s = wall;
      emu_insns = Atomic.get emu_insns;
      emu_wall_s = float_of_int (Atomic.get emu_wall_us) /. 1e6;
      block_hits = Atomic.get emu_block_hits;
      block_misses = Atomic.get emu_block_misses;
      block_invalidations = Atomic.get emu_block_invalidations;
      domains = domains () }
  in
  printf "@.[throughput: %a]@." Stats.pp_throughput tp;
  printf "@.[tactics: %a]@." Obs.Agg.pp obs_agg;
  Json.to_file throughput_path
    (Json.Obj
       [ ("schema", Json.Str "e9repro-bench-throughput/1");
         ("domains", Json.Int tp.Stats.domains);
         ("serial", Json.Bool !serial);
         ("smoke", Json.Bool !smoke);
         ("wall_s", Json.Float tp.Stats.wall_s);
         ("emu",
          Json.Obj
            [ ("insns", Json.Int tp.Stats.emu_insns);
              ("wall_s", Json.Float tp.Stats.emu_wall_s);
              ("insns_per_sec", Json.Float (Stats.insns_per_sec tp));
              ("block_hits", Json.Int tp.Stats.block_hits);
              ("block_misses", Json.Int tp.Stats.block_misses);
              ("block_hit_rate", Json.Float (Stats.block_hit_rate tp));
              ("block_invalidations", Json.Int tp.Stats.block_invalidations) ]);
         ("jobs",
          Json.Int (match !jobs_opt with Some j -> j | None -> 1));
         ("tactics", Obs.Agg.tactics_json obs_agg);
         ("timings", Obs.Agg.spans_json obs_agg);
         ("parallel",
          (match !parallel_json with
          | Some j -> j
          | None -> Json.Obj []));
         ("iset",
          (match !iset_json with Some j -> j | None -> Json.List []));
         ("faults",
          (match !faults_json with
          | Some j -> j
          | None -> Json.Obj []));
         ("robustness",
          (match !robust_json with
          | Some j -> j
          | None -> Json.Obj []));
         ("service",
          (match !service_json with
          | Some j -> j
          | None -> Json.Obj []));
         ("incremental",
          (match !incremental_json with
          | Some j -> j
          | None -> Json.Obj []));
         ("tool",
          (match !tool_json with Some j -> j | None -> Json.Obj []));
         ("verify",
          Json.Obj
            [ ("checked", Json.Int (Atomic.get verify_checked));
              ("passed",
               Json.Int
                 (Atomic.get verify_checked - Atomic.get verify_failed)) ]);
         ("experiments",
          Json.List
            (List.map
               (fun (name, dt) ->
                 Json.Obj
                   [ ("name", Json.Str name); ("wall_s", Json.Float dt) ])
               exp_times)) ]);
  (match !json_path with
  | Some path -> Json.to_file path (rows_json ())
  | None -> ());
  printf "@.[verify: %d/%d rewrites statically verified]@."
    (Atomic.get verify_checked - Atomic.get verify_failed)
    (Atomic.get verify_checked);
  printf "@.[total bench time: %.1fs]@." wall;
  if Atomic.get verify_failed > 0 then exit 1

(* The pre-PR linear-scan interval set, preserved verbatim as the
   baseline for the [iset] micro-benchmark: same contract as
   [E9_bits.Iset], with [find_free]/[find_free_last]/[find_free_strided]
   walking the interval sequence linearly (O(intervals) per query) where
   the replacement answers from an augmented balanced tree in O(log n).
   Bench-only — nothing outside bench/ may depend on it. *)

module M = Map.Make (Int)

(* Invariant: values of [map] are disjoint, non-adjacent intervals keyed by
   their start; [map.(lo) = hi] encodes occupied [lo, hi). *)
type t = { mutable map : int M.t }

let create () = { map = M.empty }
let copy t = { map = t.map }

(* The interval (if any) that starts at or before [x]. *)
let floor t x = M.find_last_opt (fun k -> k <= x) t.map

let add t ~lo ~hi =
  if hi > lo then begin
    (* Extend [lo, hi) to swallow any interval it touches, consuming only
       the intervals actually in range (adds must stay near O(log n)). *)
    let lo, hi =
      match floor t lo with
      | Some (l, h) when h >= lo ->
          t.map <- M.remove l t.map;
          (min lo l, max hi h)
      | _ -> (lo, hi)
    in
    let hi = ref (max hi lo) in
    let continue = ref true in
    while !continue do
      match M.find_first_opt (fun k -> k >= lo) t.map with
      | Some (l, h) when l <= !hi ->
          t.map <- M.remove l t.map;
          hi := max !hi h
      | Some _ | None -> continue := false
    done;
    t.map <- M.add lo !hi t.map
  end

let remove t ~lo ~hi =
  if hi > lo then begin
    (* Split any interval straddling [lo]. *)
    (match floor t lo with
    | Some (l, h) when l < lo && h > lo ->
        t.map <- M.add l lo t.map;
        t.map <- M.add lo h t.map
    | _ -> ());
    let continue = ref true in
    while !continue do
      match M.find_first_opt (fun k -> k >= lo) t.map with
      | Some (l, h) when l < hi ->
          t.map <- M.remove l t.map;
          if h > hi then t.map <- M.add hi h t.map
      | Some _ | None -> continue := false
    done
  end

let mem t x =
  match floor t x with Some (_, h) -> h > x | None -> false

let is_free t ~lo ~hi =
  if hi <= lo then true
  else
    match floor t (hi - 1) with
    | Some (_, h) when h > lo -> false
    | _ -> true

let find_free t ~size ~lo ~hi =
  if size <= 0 || hi < lo then None
  else begin
    (* Candidate starts: [lo] itself, then the end of each occupied interval
       that begins before the window is exhausted. *)
    let result = ref None in
    let cand = ref lo in
    (match floor t lo with
    | Some (_, h) when h > lo -> cand := h
    | _ -> ());
    let rec try_from s =
      if s > hi then ()
      else
        match M.find_first_opt (fun k -> k >= s) t.map with
        | Some (l, h) when l < s + size ->
            (* Occupied interval blocks [s, s+size); jump past it. *)
            try_from (max h s)
        | _ -> result := Some s
    in
    try_from !cand;
    !result
  end

let find_free_strided t ~size ~lo ~hi ~stride =
  if stride < 1 then invalid_arg "Iset.find_free_strided";
  if size <= 0 || hi < lo then None
  else begin
    (* Round [x] up to the next candidate position (≡ lo mod stride). *)
    let round_up x =
      let d = x - lo in
      lo + ((d + stride - 1) / stride * stride)
    in
    (* Walk candidates and occupied intervals in lockstep. [next] caches
       the lowest interval whose end exceeds the previous candidate, so
       each advancement costs one successor lookup instead of a [floor]
       plus a [find_first_opt] per probe. A candidate [s] is blocked iff
       the lowest interval with [h > s] starts below [s + size]. *)
    let result = ref None in
    let rec try_from s next =
      if s > hi then ()
      else
        match next with
        | Some (l, h) when h <= s ->
            (* The cache fell behind [s]; advance it one interval. *)
            try_from s (M.find_first_opt (fun k -> k > l) t.map)
        | Some (l, h) when l < s + size ->
            try_from (round_up (max h (s + 1))) (Some (l, h))
        | Some _ | None -> result := Some s
    in
    let s0 = round_up lo in
    let first =
      match floor t s0 with
      | Some (l, h) when h > s0 -> Some (l, h)
      | _ -> M.find_first_opt (fun k -> k >= s0) t.map
    in
    try_from s0 first;
    !result
  end

let find_free_last t ~size ~lo ~hi =
  if size <= 0 || hi < lo then None
  else begin
    let result = ref None in
    let rec try_from s =
      if s < lo then ()
      else
        match floor t (s + size - 1) with
        | Some (_, h) when h <= s ->
            (* Nearest interval ends at or before [s]: free. *)
            result := Some s
        | Some (l, _) ->
            (* Blocked by interval starting at [l]; slide below it. *)
            try_from (l - size)
        | None -> result := Some s
    in
    try_from hi;
    !result
  end

let iter t f = M.iter (fun lo hi -> f ~lo ~hi) t.map
let fold t init f = M.fold (fun lo hi acc -> f acc ~lo ~hi) t.map init
let occupied t = fold t 0 (fun acc ~lo ~hi -> acc + (hi - lo))
let count t = M.cardinal t.map
let intervals t = List.rev (fold t [] (fun acc ~lo ~hi -> (lo, hi) :: acc))

(* Tests for the E9_check differential oracle: a seeded regression corpus
   over the main tactic regimes, rejection of corrupted rewrites, and the
   QCheck fuzz property itself. *)

module Insn = E9_x86.Insn
module Decode = E9_x86.Decode
module Codegen = E9_workload.Codegen
module Rewriter = E9_core.Rewriter
module Tactics = E9_core.Tactics
module Trampoline = E9_core.Trampoline
module Static = E9_check.Static
module Fuzz = E9_check.Fuzz

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Seeded regression corpus                                            *)
(* ------------------------------------------------------------------ *)

(* Three fixed points covering the regimes the fuzzer samples: the default
   Table loader on jumps, the Stub loader on a PIE, and a punning-heavy A2
   workload (small writes force T2/T3) with data-in-text. *)
let corpus =
  let profile name seed f =
    f { Codegen.default_profile with Codegen.name; seed }
  in
  [ { Fuzz.profile =
        profile "corpus-table" 101L (fun p ->
            { p with Codegen.functions = 20; iterations = 30 });
      options = Rewriter.default_options;
      select_writes = false };
    { Fuzz.profile =
        profile "corpus-stub" 102L (fun p ->
            { p with Codegen.pie = true; functions = 12; iterations = 20 });
      options = { Rewriter.default_options with Rewriter.loader = Rewriter.Stub };
      select_writes = false };
    { Fuzz.profile =
        profile "corpus-punning" 103L (fun p ->
            { p with
              Codegen.functions = 16;
              small_write_bias = 1.0;
              short_jump_bias = 0.8;
              data_in_text_kb = 1;
              iterations = 20 });
      options =
        { Rewriter.default_options with
          Rewriter.tactics =
            { Tactics.default_options with Tactics.t2_joint = true };
          granularity = 2 };
      select_writes = true } ]

let test_corpus () =
  List.iter
    (fun case ->
      match Fuzz.run_case case with
      | Error msg ->
          Alcotest.failf "corpus case %s failed: %s"
            case.Fuzz.profile.Codegen.name msg
      | Ok (report, stats) ->
          check_bool "bytes changed" true (report.Static.changed_bytes > 0);
          check_bool "diversions found" true (report.Static.diversions > 0);
          check_bool "retires compared" true (stats.E9_check.Trace.boundary_retires > 0))
    corpus

(* ------------------------------------------------------------------ *)
(* Corrupted rewrites are rejected                                     *)
(* ------------------------------------------------------------------ *)

let rewrite seed =
  let elf =
    Codegen.generate { Codegen.default_profile with Codegen.seed }
  in
  let r =
    Rewriter.run elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Empty)
  in
  (elf, r)

(* Flip one bit of a patched jump's rel32 displacement: the jump no longer
   lands in a reserved trampoline region, so the verifier must reject it. *)
let test_flipped_displacement_rejected () =
  let elf, r = rewrite 201L in
  (match Static.verify ~original:elf r.Rewriter.output with
  | Error e ->
      Alcotest.failf "pristine rewrite rejected: %s"
        (Format.asprintf "%a" Static.pp_error e)
  | Ok _ -> ());
  let out = Elf_file.to_bytes r.Rewriter.output in
  let text = Option.get (Frontend.find_text r.Rewriter.output) in
  let text_bytes = Bytes.sub out text.Frontend.offset text.Frontend.size in
  let jmp_site =
    List.find_map
      (fun (addr, _) ->
        let d = Decode.decode text_bytes (addr - text.Frontend.base) in
        match d.Decode.insn with
        | Insn.Jmp _ -> Some (addr, d.Decode.len)
        | _ -> None)
      r.Rewriter.patched_sites
  in
  match jmp_site with
  | None -> Alcotest.fail "no patched jmp site to corrupt"
  | Some (addr, len) ->
      (* The rel32 displacement is the trailing 4 bytes of the jump. *)
      let off = text.Frontend.offset + (addr - text.Frontend.base) + len - 1 in
      Bytes.set out off (Char.chr (Char.code (Bytes.get out off) lxor 0x40));
      let corrupted = Elf_file.of_bytes out in
      check_bool "flipped displacement rejected" true
        (Result.is_error (Static.verify ~original:elf corrupted))

(* A stray byte change in an unpatched region must also be rejected — the
   verifier accounts for every changed byte, not just the patched sites. *)
let test_stray_byte_rejected () =
  let elf, r = rewrite 202L in
  let out = Elf_file.to_bytes r.Rewriter.output in
  let orig = Elf_file.to_bytes elf in
  let text = Option.get (Frontend.find_text elf) in
  (* Find an unchanged text byte and perturb it. *)
  let off = ref (-1) in
  (try
     for i = text.Frontend.offset to text.Frontend.offset + text.Frontend.size - 1
     do
       if Bytes.get out i = Bytes.get orig i then begin
         off := i;
         raise Exit
       end
     done
   with Exit -> ());
  check_bool "found an unchanged byte" true (!off >= 0);
  Bytes.set out !off (Char.chr (Char.code (Bytes.get out !off) lxor 0x01));
  check_bool "stray change rejected" true
    (Result.is_error (Static.verify ~original:elf (Elf_file.of_bytes out)))

(* Through a full file round trip both sides carry serialized ELF headers;
   the verifier must exempt exactly the fields serialization regenerates
   (e_shoff, the grown phdr slots, stub-mode e_entry) and nothing else.
   This is the [e9patch_cli check FILE FILE] path. *)
let test_file_roundtrip_verifies () =
  List.iter
    (fun (name, loader) ->
      let elf =
        Codegen.generate { Codegen.default_profile with Codegen.seed = 203L }
      in
      let o = Elf_file.of_bytes (Elf_file.to_bytes elf) in
      let r =
        Rewriter.run
          ~options:{ Rewriter.default_options with Rewriter.loader }
          o ~select:Frontend.select_jumps
          ~template:(fun _ -> Trampoline.Empty)
      in
      let p = Elf_file.of_bytes (Elf_file.to_bytes r.Rewriter.output) in
      match Static.verify ~original:o p with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "%s roundtrip rejected: %s" name
            (Format.asprintf "%a" Static.pp_error e))
    [ ("table", Rewriter.Table); ("stub", Rewriter.Stub) ]

(* ------------------------------------------------------------------ *)
(* Fault-injection hardening (DESIGN.md §11)                           *)
(* ------------------------------------------------------------------ *)

module Fault = E9_fault.Fault
module Inject = E9_check.Inject
module Trace = E9_check.Trace

(* A fully B0-degraded rewrite is not just statically sound: the trace
   oracle sees the same architectural retirement stream, every patched
   site crossed through the trap handler. *)
let test_b0_degraded_trace_equivalent () =
  let elf =
    Codegen.generate
      { Codegen.default_profile with
        Codegen.seed = 204L;
        functions = 24;
        iterations = 25 }
  in
  let options =
    { Rewriter.default_options with
      Rewriter.tactics =
        { Tactics.default_options with Tactics.b0_fallback = true } }
  in
  let fault = Fault.create (Fault.parse "alloc@0+") in
  let r =
    Rewriter.run ~options ~fault elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Empty)
  in
  let s = r.Rewriter.stats in
  check_bool "everything on B0" true
    (s.E9_core.Stats.b0 > 0 && s.E9_core.Stats.b0 = E9_core.Stats.total s);
  match Trace.compare_runs ~original:elf r.Rewriter.output with
  | Ok stats ->
      check_bool "trap boundaries retired" true (stats.Trace.boundary_retires > 0)
  | Error m -> Alcotest.failf "B0-degraded binary diverged: %s" m

(* A deterministic spot check of the campaign runner itself (the QCheck
   property below redraws random cases): same seed => same summary. *)
let test_inject_campaign_deterministic () =
  let a = Inject.campaign ~n:6 ~seed:7 () in
  let b = Inject.campaign ~n:6 ~seed:7 () in
  Alcotest.(check int) "cases" 6 a.Inject.cases;
  Alcotest.(check (list (pair string string))) "no violations" [] a.Inject.failures;
  check_bool "summaries identical" true
    (a.Inject.full = b.Inject.full
    && a.Inject.degraded = b.Inject.degraded
    && a.Inject.typed = b.Inject.typed
    && a.Inject.b0_sites = b.Inject.b0_sites)

(* ------------------------------------------------------------------ *)
(* The fuzz property                                                   *)
(* ------------------------------------------------------------------ *)

let prop_fuzz = Fuzz.property ~count:25 ()
let prop_jobs = Fuzz.jobs_property ~count:15 ~jobs:[ 2; 4; 7 ] ~shard_span:2048 ()

let prop_steal =
  Fuzz.steal_property ~count:8 ~jobs:[ 2; 4; 7 ] ~shard_span:2048 ()
let prop_incremental = Fuzz.incremental_property ~count:8 ~jobs:[ 1; 4 ] ()
let prop_inject = Inject.property ~count:15 ()

let suites =
  [ ( "check",
      [ Alcotest.test_case "regression corpus verifies" `Quick test_corpus;
        Alcotest.test_case "flipped displacement rejected" `Quick
          test_flipped_displacement_rejected;
        Alcotest.test_case "stray byte change rejected" `Quick
          test_stray_byte_rejected;
        Alcotest.test_case "file round trip verifies" `Quick
          test_file_roundtrip_verifies;
        Alcotest.test_case "B0-degraded rewrite is trace-equivalent" `Quick
          test_b0_degraded_trace_equivalent;
        Alcotest.test_case "inject campaign deterministic" `Quick
          test_inject_campaign_deterministic;
        QCheck_alcotest.to_alcotest prop_fuzz;
        QCheck_alcotest.to_alcotest prop_jobs;
        QCheck_alcotest.to_alcotest prop_steal;
        QCheck_alcotest.to_alcotest prop_incremental;
        QCheck_alcotest.to_alcotest prop_inject ] ) ]

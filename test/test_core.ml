(* Tests for the E9Patch core: punning arithmetic, lock state, the
   address-space layout, page grouping, trampoline generation, the tactics,
   and whole-binary rewriting correctness. *)

module Buf = E9_bits.Buf
module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Pun = E9_core.Pun
module Lock = E9_core.Lock
module Layout = E9_core.Layout
module Pagegroup = E9_core.Pagegroup
module Trampoline = E9_core.Trampoline
module Tactics = E9_core.Tactics
module Stats = E9_core.Stats
module Rewriter = E9_core.Rewriter
module Codegen = E9_workload.Codegen
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pun arithmetic                                                      *)
(* ------------------------------------------------------------------ *)

let test_pun_window_b1 () =
  (* free = 4: the full rel32 range. *)
  let lo, hi = Pun.target_window ~jmp_end:0x400100 ~free_bytes:4 ~fixed_high:0 in
  check_int "lo" (0x400100 - 0x8000_0000) lo;
  check_int "hi" (0x400100 + 0x7fff_ffff) hi

let test_pun_window_paper_example () =
  (* §2.1.3: patching mov %rax,(%rbx) before add $32,%rax. The two fixed
     bytes are 0x48 0x83, so rel32 = 0x8348XXXX — a negative displacement
     under little-endian ("the rel32 value will be interpreted as a
     negative offset since the MSB is set"). *)
  let jmp_end = 0x400005 in
  let fixed_high = Pun.fixed_high_of_bytes [ 0x48; 0x83 ] in
  check_int "fixed_high little-endian" 0x8348 fixed_high;
  let lo, hi = Pun.target_window ~jmp_end ~free_bytes:2 ~fixed_high in
  check_bool "negative window" true (hi < 0);
  check_int "window span" 0x10000 (hi - lo + 1);
  check_int "window lo" (jmp_end + 0x83480000 - 0x1_0000_0000) lo

let test_pun_window_positive () =
  (* Fixed bytes 0x48 0x03 (paper Figure 1 T1(b) flavour): positive. *)
  let fixed_high = Pun.fixed_high_of_bytes [ 0x03; 0x48 ] in
  let lo, hi = Pun.target_window ~jmp_end:0x400005 ~free_bytes:2 ~fixed_high in
  check_bool "positive window" true (lo > 0);
  check_int "span" 0x10000 (hi - lo + 1);
  check_int "lo" (0x400005 + 0x48030000) lo

let test_pun_window_one_free_byte () =
  let lo, hi =
    Pun.target_window ~jmp_end:0x400005 ~free_bytes:1
      ~fixed_high:(Pun.fixed_high_of_bytes [ 0x11; 0x22; 0x33 ])
  in
  check_int "span 256" 256 (hi - lo + 1);
  check_int "lo" (0x400005 + 0x33221100) lo

let test_pun_window_zero_free () =
  (* Fully constrained: a single exact target. *)
  let lo, hi =
    Pun.target_window ~jmp_end:0x400005 ~free_bytes:0
      ~fixed_high:(Pun.fixed_high_of_bytes [ 0x10; 0x20; 0x30; 0x40 ])
  in
  check_int "singleton" lo hi;
  check_int "exact" (0x400005 + 0x40302010) lo

let test_rel32_roundtrip () =
  List.iter
    (fun target ->
      let rel = Pun.rel32_for ~jmp_end:0x400000 ~target in
      let bytes = Pun.rel32_bytes rel in
      let reconstructed =
        Pun.fixed_high_of_bytes (Array.to_list bytes)
      in
      let signed =
        if reconstructed land 0x8000_0000 <> 0 then
          reconstructed - 0x1_0000_0000
        else reconstructed
      in
      check_int "roundtrip" rel signed)
    [ 0x400005; 0x10000; 0x400000 + 0x7fff0000; 0x400000 - 0x7fff0000 ]

let test_rel32_out_of_range () =
  Alcotest.check_raises "overflow"
    (Invalid_argument "Pun.rel32_for: target out of rel32 range") (fun () ->
      ignore (Pun.rel32_for ~jmp_end:0 ~target:0x1_0000_0000))

(* Property: every address in a window is reachable by some rel32 whose
   fixed bytes match, and no address outside is. *)
let prop_pun_window_correct =
  QCheck.Test.make ~name:"pun window = set of reachable targets" ~count:1000
    QCheck.(pair (int_bound 0xffffff) (int_bound 4))
    (fun (raw, free) ->
      let jmp_end = 0x400005 in
      let n_fixed = 4 - free in
      let fixed = List.init n_fixed (fun i -> (raw lsr (8 * i)) land 0xff) in
      let fixed_high = Pun.fixed_high_of_bytes fixed in
      let lo, hi = Pun.target_window ~jmp_end ~free_bytes:free ~fixed_high in
      (* Sample targets inside the window: their rel32 must carry the fixed
         bytes in the high positions. *)
      let ok = ref true in
      for i = 0 to 16 do
        let t = lo + ((hi - lo) * i / 16) in
        let rel = Pun.rel32_for ~jmp_end ~target:t in
        let bytes = Pun.rel32_bytes rel in
        List.iteri
          (fun j b -> if bytes.(free + j) <> b then ok := false)
          fixed
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Lock state                                                          *)
(* ------------------------------------------------------------------ *)

let test_lock_basic () =
  let l = Lock.create ~base:0x400000 ~len:100 in
  check_bool "initially unlocked" true
    (Lock.all_unlocked l ~addr:0x400000 ~len:100);
  Lock.lock_range l ~addr:0x400010 ~len:5;
  check_bool "locked" true (Lock.locked l 0x400012);
  check_bool "edge" false (Lock.locked l 0x400015);
  check_bool "range check" false (Lock.all_unlocked l ~addr:0x40000e ~len:4);
  check_int "count" 5 (Lock.locked_count l)

let test_lock_out_of_range_ignored () =
  let l = Lock.create ~base:0x400000 ~len:10 in
  Lock.lock l 0x3fffff;
  Lock.lock l 0x40000a;
  check_int "nothing locked" 0 (Lock.locked_count l);
  check_bool "outside reads unlocked" false (Lock.locked l 0x50000)

let test_lock_idempotent () =
  let l = Lock.create ~base:0 ~len:10 in
  Lock.lock l 3;
  Lock.lock l 3;
  check_int "counted once" 1 (Lock.locked_count l)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let mini_elf ?(vaddr = 0x400000) ?(memsz = 8192) () =
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:vaddr in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rx;
         vaddr;
         offset = 0;
         filesz = 0;
         memsz;
         align = 4096 }
       ~content:(Bytes.make 64 '\x90'));
  elf

let test_layout_avoids_segments () =
  let layout = Layout.create (mini_elf ()) in
  (* Allocation inside the segment (rounded to pages) must fail... *)
  check_bool "segment occupied" true
    (Layout.probe layout ~size:16 ~lo:0x400000 ~hi:0x401fff = None);
  (* ...and succeed right after it. *)
  match Layout.alloc layout ~size:16 ~lo:0x400000 ~hi:0x500000 with
  | Some a -> check_int "first free after segment" 0x402000 a
  | None -> Alcotest.fail "no allocation"

let test_layout_rejects_negative_and_null () =
  let layout = Layout.create (mini_elf ()) in
  check_bool "negative" true
    (Layout.probe layout ~size:16 ~lo:(-0x1000_0000) ~hi:(-1) = None);
  check_bool "null page" true
    (Layout.probe layout ~size:16 ~lo:0 ~hi:0xefff = None)

let test_layout_reserve_below_base () =
  let elf = mini_elf ~vaddr:0x5555_5555_4000 () in
  let shared = Layout.create ~reserve_below_base:true elf in
  let normal = Layout.create elf in
  check_bool "DSO: below base unavailable" true
    (Layout.probe shared ~size:16 ~lo:0x5555_0000_0000 ~hi:0x5555_5555_3fff
     = None);
  check_bool "PIE: below base available" true
    (Layout.probe normal ~size:16 ~lo:0x5555_0000_0000 ~hi:0x5555_5555_3fff
     <> None)

let test_layout_alloc_reserves () =
  let layout = Layout.create (mini_elf ()) in
  let a = Option.get (Layout.alloc layout ~size:100 ~lo:0x500000 ~hi:0x600000) in
  let b = Option.get (Layout.alloc layout ~size:100 ~lo:0x500000 ~hi:0x600000) in
  check_bool "disjoint" true (b >= a + 100 || a >= b + 100);
  check_int "trampoline bytes" 200 (Layout.trampoline_bytes layout)

let test_layout_alloc_at_and_release () =
  let layout = Layout.create (mini_elf ()) in
  check_bool "claim" true (Layout.alloc_at layout ~addr:0x500000 ~size:64);
  check_bool "double-claim fails" false
    (Layout.alloc_at layout ~addr:0x500020 ~size:64);
  Layout.release layout ~addr:0x500000 ~size:64;
  check_bool "after release" true
    (Layout.alloc_at layout ~addr:0x500020 ~size:64)

let test_layout_strided_probe () =
  let layout = Layout.create (mini_elf ()) in
  ignore (Layout.alloc_at layout ~addr:0x500000 ~size:0x300);
  (* Candidates at 0x500000 + k*0x100: first free candidate is 0x500300. *)
  match Layout.probe_strided layout ~size:16 ~lo:0x500000 ~hi:0x5fffff ~stride:0x100 with
  | Some a -> check_int "aligned to stride" 0x500300 a
  | None -> Alcotest.fail "no strided slot"

let test_layout_block_rounding () =
  (* With a 64-page block size, reservations round out much further. *)
  let layout = Layout.create ~block_size:(64 * 4096) (mini_elf ()) in
  check_bool "inside rounded block" true
    (Layout.probe layout ~size:16 ~lo:0x402000 ~hi:0x43ffff = None)

(* Shard arenas partition the address space into ownership stripes:
   allocations from different shards of the same parent can never
   overlap, whatever windows they use, and absorbing the arenas back
   recovers every extent in the parent. *)
let test_layout_shard_disjoint_and_absorb () =
  let parent = Layout.create (mini_elf ()) in
  let count = 3 in
  let arenas = List.init count (fun index -> Layout.shard parent ~index ~count) in
  let allocs =
    List.concat_map
      (fun arena ->
        List.init 40 (fun _ ->
            match Layout.alloc arena ~size:48 ~lo:0x500000 ~hi:0xfff_ffff with
            | Some a -> (a, 48)
            | None -> Alcotest.fail "shard arena allocation failed"))
      arenas
  in
  ignore
    (List.fold_left
       (fun prev_end (a, size) ->
         check_bool "extents pairwise disjoint" true (a >= prev_end);
         a + size)
       min_int
       (List.sort compare allocs));
  List.iter (fun arena -> Layout.absorb ~dst:parent arena) arenas;
  check_int "all trampoline bytes absorbed" (count * 40 * 48)
    (Layout.trampoline_bytes parent);
  List.iter
    (fun (a, size) ->
      check_bool "absorbed extent occupied in parent" false
        (Layout.is_free parent ~addr:a ~size))
    allocs

let test_layout_shard_invalid_index () =
  let parent = Layout.create (mini_elf ()) in
  check_bool "bad index raises" true
    (try
       ignore (Layout.shard parent ~index:3 ~count:3);
       false
     with Invalid_argument _ -> true)

(* The next-fit cursor must only move placements, never change whether a
   window allocates: a window first-fit can satisfy still succeeds, and an
   exhausted window still fails. Repeated same-class allocations should
   mostly resume from the cursor rather than rescanning. *)
let test_layout_next_fit_cursor () =
  let layout = Layout.create (mini_elf ()) in
  for _ = 1 to 50 do
    match Layout.alloc layout ~size:64 ~lo:0x500000 ~hi:0x5fffff with
    | Some _ -> ()
    | None -> Alcotest.fail "allocation failed"
  done;
  check_bool "cursor mostly hits" true (Layout.cursor_hits layout >= 40);
  (* Make the cursor stale: fill the window from the cursor up, then free
     a gap below it. The resumed scan fails (a recorded miss) and the
     fallback first-fit rescan must still find the low gap. *)
  let misses0 = Layout.cursor_misses layout in
  (match Layout.alloc layout ~size:64 ~lo:0x700000 ~hi:0x700fff with
  | Some a -> check_int "first in fresh window" 0x700000 a
  | None -> Alcotest.fail "window alloc failed");
  Layout.reserve layout ~addr:0x700040 ~size:0xfc0;
  Layout.release layout ~addr:0x700000 ~size:64;
  (match Layout.alloc layout ~size:64 ~lo:0x700000 ~hi:0x700fff with
  | Some a -> check_int "fallback rescan finds the freed gap" 0x700000 a
  | None -> Alcotest.fail "fallback rescan failed");
  check_bool "miss recorded" true (Layout.cursor_misses layout > misses0)

(* ------------------------------------------------------------------ *)
(* Page grouping                                                       *)
(* ------------------------------------------------------------------ *)

let tramp at len fill = (at, Bytes.make len fill)

let read_mapping (res : Pagegroup.result) vaddr =
  (* The byte the loader would place at [vaddr]. *)
  let m =
    List.find
      (fun (m : Loadmap.mapping) ->
        vaddr >= m.Loadmap.vaddr && vaddr < m.Loadmap.vaddr + m.Loadmap.len)
      res.Pagegroup.mappings
  in
  Bytes.get res.Pagegroup.blob (m.Loadmap.file_off + (vaddr - m.Loadmap.vaddr))

let test_group_merges_disjoint_pages () =
  (* The Figure 3 scenario: trampolines spread over three virtual pages
     with disjoint relative extents merge into one physical page. *)
  let ts =
    [ tramp 0x10100 64 'a'; (* page 0x10, offset 0x100 *)
      tramp 0x11800 64 'b'; (* page 0x11, offset 0x800 *)
      tramp 0x12c00 64 'c' (* page 0x12, offset 0xc00 *) ]
  in
  let res = Pagegroup.group ~granularity:1 ~enabled:true ts in
  check_int "virtual blocks" 3 res.Pagegroup.virtual_blocks;
  check_int "one physical page" 1 res.Pagegroup.physical_blocks;
  check_int "blob is one page" 4096 (Bytes.length res.Pagegroup.blob);
  (* Every trampoline byte must still be visible at its virtual address. *)
  Alcotest.(check char) "t1" 'a' (read_mapping res 0x10100);
  Alcotest.(check char) "t2" 'b' (read_mapping res 0x11800);
  Alcotest.(check char) "t3" 'c' (read_mapping res 0x12c00)

let test_group_conflicting_offsets () =
  (* Same relative offset in two pages cannot share a physical page. *)
  let ts = [ tramp 0x10100 64 'a'; tramp 0x11100 64 'b' ] in
  let res = Pagegroup.group ~granularity:1 ~enabled:true ts in
  check_int "two physical pages" 2 res.Pagegroup.physical_blocks;
  Alcotest.(check char) "t1" 'a' (read_mapping res 0x10100);
  Alcotest.(check char) "t2" 'b' (read_mapping res 0x11100)

let test_group_disabled_is_one_to_one () =
  let ts = [ tramp 0x10100 64 'a'; tramp 0x11800 64 'b' ] in
  let res = Pagegroup.group ~granularity:1 ~enabled:false ts in
  check_int "no merging" 2 res.Pagegroup.physical_blocks

let test_group_spanning_trampoline () =
  (* A trampoline across a page boundary becomes two mini-trampolines. *)
  let ts = [ tramp 0x10ff0 64 'x' ] in
  let res = Pagegroup.group ~granularity:1 ~enabled:true ts in
  check_int "two virtual blocks" 2 res.Pagegroup.virtual_blocks;
  Alcotest.(check char) "head" 'x' (read_mapping res 0x10ff0);
  Alcotest.(check char) "tail" 'x' (read_mapping res 0x1102f)

let test_group_granularity_reduces_mappings () =
  let ts =
    List.init 64 (fun i -> tramp (0x100000 + (i * 4096) + (i * 61 mod 4000)) 16 'z')
  in
  let fine = Pagegroup.group ~granularity:1 ~enabled:true ts in
  let coarse = Pagegroup.group ~granularity:16 ~enabled:true ts in
  check_bool "coarser -> fewer mappings" true
    (List.length coarse.Pagegroup.mappings < List.length fine.Pagegroup.mappings);
  check_bool "coarser -> more physical bytes" true
    (Bytes.length coarse.Pagegroup.blob >= Bytes.length fine.Pagegroup.blob)

let test_group_adjacent_mappings_merge () =
  (* Two conflicting pages force two physical pages laid out contiguously;
     if the virtual pages are also adjacent the mappings merge into one. *)
  let ts = [ tramp 0x10100 64 'a'; tramp 0x11100 64 'b' ] in
  let res = Pagegroup.group ~granularity:1 ~enabled:true ts in
  check_int "merged to one mmap" 1 (List.length res.Pagegroup.mappings)

(* Property: under any granularity, every trampoline byte is recoverable
   through the mapping table. *)
let prop_group_preserves_content =
  QCheck.Test.make ~name:"page grouping preserves every trampoline byte"
    ~count:200
    QCheck.(
      pair (int_range 1 8)
        (small_list (pair (int_range 0 200) (int_range 1 60))))
    (fun (granularity, specs) ->
      (* Build non-overlapping trampolines from (slot, len) specs. *)
      let ts =
        List.mapi
          (fun i (slot, len) ->
            (0x40000 + (slot * 256), Bytes.make len (Char.chr (65 + (i mod 26)))))
          (List.sort_uniq (fun (a, _) (b, _) -> compare a b) specs)
      in
      let res = Pagegroup.group ~granularity ~enabled:true ts in
      List.for_all
        (fun (at, code) ->
          let ok = ref true in
          Bytes.iteri
            (fun i c -> if read_mapping res (at + i) <> c then ok := false)
            code;
          !ok)
        ts)

(* ------------------------------------------------------------------ *)
(* Trampolines                                                         *)
(* ------------------------------------------------------------------ *)

let decode_all bytes =
  E9_x86.Decode.linear bytes ~pos:0 ~len:(Bytes.length bytes)
  |> List.map (fun (_, d) -> d.E9_x86.Decode.insn)

let test_trampoline_empty_plain () =
  (* A displaced register mov: [mov; jmp back]. *)
  let insn = Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RAX) in
  let code =
    Trampoline.emit Trampoline.Empty ~at:0x700000 ~insn ~insn_addr:0x400100
      ~insn_len:3
  in
  match decode_all code with
  | [ Insn.Mov _; Insn.Jmp rel ] ->
      check_int "returns after patch site" 0x400103
        (0x700000 + Bytes.length code + rel)
  | _ -> Alcotest.failf "unexpected trampoline shape"

let test_trampoline_displaced_jcc () =
  (* A displaced jcc must branch to the original target and fall through
     to the return jump. *)
  let insn = Insn.Jcc_short (Insn.NE, 0x10) in
  let code =
    Trampoline.emit Trampoline.Empty ~at:0x700000 ~insn ~insn_addr:0x400100
      ~insn_len:2
  in
  match decode_all code with
  | [ Insn.Jcc (Insn.NE, rel); Insn.Jmp back ] ->
      (* original target = 0x400102 + 0x10 *)
      check_int "taken target" (0x400112) (0x700000 + 6 + rel);
      check_int "fallthrough" 0x400102 (0x700000 + 6 + 5 + back)
  | _ -> Alcotest.fail "unexpected shape"

let test_trampoline_displaced_jmp_terminal () =
  (* A displaced unconditional jump needs no return jump. *)
  let insn = Insn.Jmp 0x100 in
  let code =
    Trampoline.emit Trampoline.Empty ~at:0x700000 ~insn ~insn_addr:0x400100
      ~insn_len:5
  in
  match decode_all code with
  | [ Insn.Jmp rel ] ->
      check_int "retargeted" (0x400105 + 0x100) (0x700000 + 5 + rel)
  | _ -> Alcotest.fail "unexpected shape"

let test_trampoline_displaced_ret () =
  let code =
    Trampoline.emit Trampoline.Empty ~at:0x700000 ~insn:Insn.Ret
      ~insn_addr:0x400100 ~insn_len:1
  in
  match decode_all code with
  | [ Insn.Ret ] -> ()
  | _ -> Alcotest.fail "ret should be terminal"

let test_trampoline_rip_relative_retargeted () =
  (* mov 0x100(%rip),%rax displaced: the new displacement must reach the
     same absolute address. *)
  let insn = Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Mem (Insn.rip_mem 0x100)) in
  let insn_addr = 0x400100 and insn_len = 7 in
  let orig_target = insn_addr + insn_len + 0x100 in
  let code =
    Trampoline.emit Trampoline.Empty ~at:0x700000 ~insn ~insn_addr ~insn_len
  in
  match decode_all code with
  | [ Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Mem m); Insn.Jmp _ ] ->
      check_bool "still rip-relative" true m.Insn.rip_rel;
      check_int "same absolute target" orig_target (0x700000 + 7 + m.Insn.disp)
  | _ -> Alcotest.fail "unexpected shape"

let test_trampoline_size_stable () =
  (* emit length must not depend on the trampoline's address. *)
  let insn = Insn.Jcc (Insn.E, 64) in
  let l1 =
    Bytes.length
      (Trampoline.emit Trampoline.Empty ~at:0x500000 ~insn ~insn_addr:0x400100
         ~insn_len:6)
  in
  let l2 =
    Bytes.length
      (Trampoline.emit Trampoline.Empty ~at:0x41000000 ~insn
         ~insn_addr:0x400100 ~insn_len:6)
  in
  check_int "length stable" l1 l2;
  check_int "size agrees" l1
    (Trampoline.size Trampoline.Empty ~insn ~insn_addr:0x400100 ~insn_len:6)

let test_trampoline_lowfat_shape () =
  let insn =
    Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:8 ()), Insn.Reg Reg.RCX)
  in
  let code =
    Trampoline.emit Trampoline.Lowfat_check ~at:0x700000 ~insn
      ~insn_addr:0x400100 ~insn_len:4
  in
  match decode_all code with
  | [ Insn.Push Reg.RDI; Insn.Lea (Reg.RDI, m); Insn.Int n; Insn.Pop Reg.RDI;
      Insn.Mov _; Insn.Jmp _ ] ->
      check_int "check hostcall" E9_emu.Hostcall.check n;
      check_bool "lea of the written operand" true
        (m.Insn.base = Some Reg.RBX && m.Insn.disp = 8)
  | _ -> Alcotest.fail "unexpected lowfat trampoline shape"

let test_trampoline_rejects_nonwrite_lowfat () =
  Alcotest.check_raises "reject"
    (Invalid_argument "Trampoline: Lowfat_check on a non-writing instruction")
    (fun () ->
      ignore
        (Trampoline.emit Trampoline.Lowfat_check ~at:0x700000 ~insn:Insn.Ret
           ~insn_addr:0x400100 ~insn_len:1))

(* ------------------------------------------------------------------ *)
(* Whole-binary rewriting                                              *)
(* ------------------------------------------------------------------ *)

let profile ?(seed = 42L) ?(pie = false) ?(iterations = 120) () =
  { Codegen.default_profile with Codegen.seed; pie; iterations; functions = 60 }

let rewrite ?options elf select template =
  Rewriter.run ?options elf ~select ~template:(fun _ -> template)

let run = Machine.run

let test_rewrite_a1_equivalent () =
  let elf = Codegen.generate (profile ()) in
  let orig = run elf in
  let r = rewrite elf Frontend.select_jumps Trampoline.Empty in
  let patched = run r.Rewriter.output in
  check_bool "success high" true (Stats.succ_pct r.Rewriter.stats > 99.0);
  check_bool "equivalent" true (Machine.equivalent orig patched);
  check_bool "patched is slower" true
    (patched.Cpu.cycles > orig.Cpu.cycles)

let test_rewrite_a2_equivalent () =
  let elf = Codegen.generate (profile ~seed:43L ()) in
  let orig = run elf in
  let r = rewrite elf Frontend.select_heap_writes Trampoline.Empty in
  let patched = run r.Rewriter.output in
  check_bool "equivalent" true (Machine.equivalent orig patched)

let test_rewrite_pie_higher_base () =
  (* §5.1: PIE doubles the valid displacement space; Base% must rise. *)
  let mk pie = Codegen.generate { (profile ()) with Codegen.pie } in
  let base pie =
    let r = rewrite (mk pie) Frontend.select_jumps Trampoline.Empty in
    Stats.base_pct r.Rewriter.stats
  in
  check_bool "PIE base% higher" true (base true > base false +. 10.0)

let test_rewrite_shared_object () =
  let elf =
    Codegen.generate { (profile ~seed:44L ()) with Codegen.shared_object = true }
  in
  let orig = run elf in
  let options =
    { Rewriter.default_options with Rewriter.reserve_below_base = true }
  in
  let r = rewrite ~options elf Frontend.select_jumps Trampoline.Empty in
  check_bool "equivalent" true (Machine.equivalent orig (run r.Rewriter.output));
  (* DSO mode must not use the space below the load base. *)
  check_bool "patching still succeeds" true
    (Stats.succ_pct r.Rewriter.stats > 95.0)

let test_rewrite_counter_instrumentation () =
  (* Counter trampolines must fire once per dynamic execution of each
     patched jump. Cross-check against an unpatched run's statistics. *)
  let elf = Codegen.generate (profile ~seed:45L ()) in
  let orig = run elf in
  let r = rewrite elf Frontend.select_jumps Trampoline.Counter in
  let patched = run r.Rewriter.output in
  check_bool "equivalent" true (Machine.equivalent orig patched);
  let total_hits = List.fold_left (fun a (_, n) -> a + n) 0 patched.Cpu.counters in
  check_bool "counters fired" true (total_hits > 0);
  check_bool "sites with hits <= patched sites" true
    (List.length patched.Cpu.counters
     <= List.length r.Rewriter.patched_sites)

let test_rewrite_b0_only () =
  (* Signal-handler-only patching: correct but orders of magnitude slower
     (§2.1.1). *)
  let elf = Codegen.generate (profile ~seed:46L ~iterations:30 ()) in
  let orig = run elf in
  let options =
    { Rewriter.default_options with
      Rewriter.tactics =
        { Tactics.default_options with
          Tactics.enable_t1 = false;
          enable_t2 = false;
          enable_t3 = false;
          b0_fallback = true } }
  in
  (* Force B0 by making the jump tactics fail: patch sites of length < 5
     would normally use B2 — instead select everything and check B0 shows
     up in the mix; simpler: verify a B0-heavy run stays correct. *)
  let r = rewrite ~options elf Frontend.select_jumps Trampoline.Empty in
  let patched = run r.Rewriter.output in
  check_bool "equivalent" true (Machine.equivalent orig patched);
  check_bool "B0 used" true (r.Rewriter.stats.Stats.b0 > 0);
  check_bool "traps taken" true (patched.Cpu.traps > 0);
  check_bool "B0 is much slower" true
    (patched.Cpu.cycles > 3 * orig.Cpu.cycles)

let test_rewrite_tactic_ablation_monotone () =
  (* §6.1: each tactic strictly adds coverage. *)
  let elf = Codegen.generate (profile ~seed:47L ()) in
  let succ ~t1 ~t2 ~t3 =
    let options =
      { Rewriter.default_options with
        Rewriter.tactics =
          { Tactics.default_options with
            Tactics.enable_t1 = t1;
            enable_t2 = t2;
            enable_t3 = t3 } }
    in
    let r = rewrite ~options elf Frontend.select_jumps Trampoline.Empty in
    Stats.succ_pct r.Rewriter.stats
  in
  let base = succ ~t1:false ~t2:false ~t3:false in
  let with_t1 = succ ~t1:true ~t2:false ~t3:false in
  let with_t2 = succ ~t1:true ~t2:true ~t3:false in
  let full = succ ~t1:true ~t2:true ~t3:true in
  check_bool "T1 adds" true (with_t1 > base);
  check_bool "T2 adds" true (with_t2 > with_t1);
  check_bool "T3 adds" true (full > with_t2);
  check_bool "full is complete" true (full >= 99.9)

let test_rewrite_all_tactics_exercised () =
  let elf = Codegen.generate (profile ~seed:48L ()) in
  let r = rewrite elf Frontend.select_jumps Trampoline.Empty in
  let s = r.Rewriter.stats in
  check_bool "B1" true (s.Stats.b1 > 0);
  check_bool "B2" true (s.Stats.b2 > 0);
  check_bool "T1" true (s.Stats.t1 > 0);
  check_bool "T3" true (s.Stats.t3 > 0)

let test_rewrite_grouping_shrinks_file () =
  let elf = Codegen.generate (profile ~seed:49L ()) in
  let size grouping =
    let options = { Rewriter.default_options with Rewriter.grouping } in
    let r = rewrite ~options elf Frontend.select_jumps Trampoline.Empty in
    (r.Rewriter.output_size, r.Rewriter.physical_blocks, r.Rewriter.virtual_blocks)
  in
  let grouped, pb, vb = size true in
  let naive, pb', vb' = size false in
  check_bool "grouping shrinks output" true (grouped < naive);
  check_int "same virtual blocks" vb vb';
  check_bool "fewer physical blocks" true (pb < pb');
  check_bool "naive is one-to-one" true (pb' = vb')

let test_rewrite_granularity_tradeoff () =
  let elf = Codegen.generate (profile ~seed:50L ()) in
  let stats granularity =
    let options = { Rewriter.default_options with Rewriter.granularity } in
    let r = rewrite ~options elf Frontend.select_jumps Trampoline.Empty in
    (r.Rewriter.mappings, r.Rewriter.output_size)
  in
  let m1, s1 = stats 1 in
  let m16, s16 = stats 16 in
  check_bool "coarser M -> fewer mappings" true (m16 < m1);
  check_bool "coarser M -> bigger file" true (s16 >= s1)

let test_rewrite_partial_instrumentation () =
  (* §5.1 "Mixing Patched/Non-Patched Code": patching only part of the
     text must still be correct. *)
  let elf = Codegen.generate (profile ~seed:51L ()) in
  let orig = run elf in
  let text, _ = Frontend.disassemble elf in
  let mid = text.Frontend.base + (text.Frontend.size / 2) in
  let r =
    Rewriter.run elf
      ~select:(fun s -> Frontend.select_jumps s && s.Frontend.addr < mid)
      ~template:(fun _ -> Trampoline.Empty)
  in
  check_bool "equivalent" true (Machine.equivalent orig (run r.Rewriter.output))

let test_rewrite_bss_limits_coverage () =
  (* Limitation L1: a huge .bss squeezes the trampoline address space. *)
  let mk bss_mb = Codegen.generate { (profile ~seed:52L ()) with Codegen.bss_mb } in
  let succ bss =
    let r = rewrite (mk bss) Frontend.select_jumps Trampoline.Empty in
    Stats.succ_pct r.Rewriter.stats
  in
  let unconstrained = succ 0 in
  let constrained = succ 1900 in
  check_bool "L1 lowers coverage" true (constrained < unconstrained);
  check_bool "still mostly patched" true (constrained > 90.0)

let test_rewrite_custom_patch () =
  (* Binary patching (Example 3.1 flavour): replace one instruction's
     behaviour entirely via a Replace template. *)
  let asm = Asm.create ~base:0x400000 in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 1));
  (* the instruction to patch: overwrite rbx with 2 *)
  let patch_site = Asm.here asm in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 2));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Reg Reg.RBX));
  Asm.ins asm Insn.Syscall;
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:0x400000 in
  let off =
    Elf_file.add_segment elf
      { Elf_file.ptype = Elf_file.Load;
        prot = Elf_file.prot_rx;
        vaddr = 0x400000;
        offset = 0;
        filesz = 0;
        memsz = Bytes.length code;
        align = 4096 }
      ~content:code
  in
  elf.Elf_file.sections <-
    [ { Elf_file.name = ".text"; sh_type = 1; sh_flags = 6; addr = 0x400000;
        offset = off; size = Bytes.length code } ];
  let template =
    Trampoline.Replace
      (fun asm ~ret ->
        Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 99));
        Asm.ins asm (Insn.Jmp (ret - (Asm.here asm + 5))))
  in
  let r =
    Rewriter.run elf
      ~select:(fun s -> s.Frontend.addr = patch_site)
      ~template:(fun _ -> template)
  in
  check_int "one site patched" 1 (List.length r.Rewriter.patched_sites);
  match (run r.Rewriter.output).Cpu.outcome with
  | Cpu.Exited 99 -> ()
  | o ->
      Alcotest.failf "expected exit 99, got %s"
        (match o with
        | Cpu.Exited n -> string_of_int n
        | Cpu.Fault (_, m) -> "fault: " ^ m
        | Cpu.Violation _ -> "violation"
        | Cpu.Out_of_fuel -> "fuel")

(* The headline property: for random programs and random patch sets, the
   patched binary is observationally equivalent to the original — without
   the rewriter ever seeing control flow information. *)
let prop_rewrite_equivalence =
  QCheck.Test.make ~name:"rewriting preserves behaviour (random programs)"
    ~count:12
    QCheck.(pair (int_bound 10000) bool)
    (fun (seed, pie) ->
      let prof =
        { Codegen.default_profile with
          Codegen.seed = Int64.of_int (seed + 7);
          pie;
          functions = 30;
          iterations = 60 }
      in
      let elf = Codegen.generate prof in
      let orig = run elf in
      (match orig.Cpu.outcome with
      | Cpu.Exited _ -> ()
      | _ -> QCheck.Test.fail_report "original program did not exit");
      List.for_all
        (fun select ->
          let r = Rewriter.run elf ~select ~template:(fun _ -> Trampoline.Empty) in
          Machine.equivalent orig (run r.Rewriter.output))
        [ Frontend.select_jumps;
          Frontend.select_heap_writes;
          (fun s -> Frontend.select_jumps s || Frontend.select_heap_writes s) ])

let suites =
  [ ( "core.pun",
      [ Alcotest.test_case "B1 window" `Quick test_pun_window_b1;
        Alcotest.test_case "paper §2.1.3 example" `Quick
          test_pun_window_paper_example;
        Alcotest.test_case "positive window" `Quick test_pun_window_positive;
        Alcotest.test_case "one free byte" `Quick test_pun_window_one_free_byte;
        Alcotest.test_case "zero free bytes" `Quick test_pun_window_zero_free;
        Alcotest.test_case "rel32 roundtrip" `Quick test_rel32_roundtrip;
        Alcotest.test_case "rel32 range" `Quick test_rel32_out_of_range;
        QCheck_alcotest.to_alcotest prop_pun_window_correct ] );
    ( "core.lock",
      [ Alcotest.test_case "basic" `Quick test_lock_basic;
        Alcotest.test_case "out of range" `Quick test_lock_out_of_range_ignored;
        Alcotest.test_case "idempotent" `Quick test_lock_idempotent ] );
    ( "core.layout",
      [ Alcotest.test_case "avoids segments" `Quick test_layout_avoids_segments;
        Alcotest.test_case "rejects negative/null" `Quick
          test_layout_rejects_negative_and_null;
        Alcotest.test_case "DSO reserve below base" `Quick
          test_layout_reserve_below_base;
        Alcotest.test_case "alloc reserves" `Quick test_layout_alloc_reserves;
        Alcotest.test_case "alloc_at/release" `Quick
          test_layout_alloc_at_and_release;
        Alcotest.test_case "strided probe" `Quick test_layout_strided_probe;
        Alcotest.test_case "block rounding" `Quick test_layout_block_rounding;
        Alcotest.test_case "shard arenas disjoint + absorb" `Quick
          test_layout_shard_disjoint_and_absorb;
        Alcotest.test_case "shard invalid index" `Quick
          test_layout_shard_invalid_index;
        Alcotest.test_case "next-fit cursor" `Quick test_layout_next_fit_cursor ]
    );
    ( "core.pagegroup",
      [ Alcotest.test_case "merges disjoint pages (Fig 3)" `Quick
          test_group_merges_disjoint_pages;
        Alcotest.test_case "conflicting offsets split" `Quick
          test_group_conflicting_offsets;
        Alcotest.test_case "disabled = one-to-one" `Quick
          test_group_disabled_is_one_to_one;
        Alcotest.test_case "spanning trampoline" `Quick
          test_group_spanning_trampoline;
        Alcotest.test_case "granularity tradeoff" `Quick
          test_group_granularity_reduces_mappings;
        Alcotest.test_case "adjacent mappings merge" `Quick
          test_group_adjacent_mappings_merge;
        QCheck_alcotest.to_alcotest prop_group_preserves_content ] );
    ( "core.trampoline",
      [ Alcotest.test_case "empty template" `Quick test_trampoline_empty_plain;
        Alcotest.test_case "displaced jcc" `Quick test_trampoline_displaced_jcc;
        Alcotest.test_case "displaced jmp terminal" `Quick
          test_trampoline_displaced_jmp_terminal;
        Alcotest.test_case "displaced ret" `Quick test_trampoline_displaced_ret;
        Alcotest.test_case "rip-relative retargeted" `Quick
          test_trampoline_rip_relative_retargeted;
        Alcotest.test_case "size stable" `Quick test_trampoline_size_stable;
        Alcotest.test_case "lowfat shape" `Quick test_trampoline_lowfat_shape;
        Alcotest.test_case "lowfat rejects non-write" `Quick
          test_trampoline_rejects_nonwrite_lowfat ] );
    ( "core.rewriter",
      [ Alcotest.test_case "A1 equivalent" `Quick test_rewrite_a1_equivalent;
        Alcotest.test_case "A2 equivalent" `Quick test_rewrite_a2_equivalent;
        Alcotest.test_case "PIE raises Base%" `Quick test_rewrite_pie_higher_base;
        Alcotest.test_case "shared object mode" `Quick test_rewrite_shared_object;
        Alcotest.test_case "counter instrumentation" `Quick
          test_rewrite_counter_instrumentation;
        Alcotest.test_case "B0 fallback" `Quick test_rewrite_b0_only;
        Alcotest.test_case "tactic ablation monotone" `Quick
          test_rewrite_tactic_ablation_monotone;
        Alcotest.test_case "all tactics exercised" `Quick
          test_rewrite_all_tactics_exercised;
        Alcotest.test_case "grouping shrinks file" `Quick
          test_rewrite_grouping_shrinks_file;
        Alcotest.test_case "granularity tradeoff" `Quick
          test_rewrite_granularity_tradeoff;
        Alcotest.test_case "partial instrumentation" `Quick
          test_rewrite_partial_instrumentation;
        Alcotest.test_case "L1: big .bss limits coverage" `Quick
          test_rewrite_bss_limits_coverage;
        Alcotest.test_case "custom binary patch" `Quick test_rewrite_custom_patch;
        QCheck_alcotest.to_alcotest prop_rewrite_equivalence ] ) ]

(* ------------------------------------------------------------------ *)
(* The integrated loader stub (§5.1)                                   *)
(* ------------------------------------------------------------------ *)

let test_stub_loader_equivalent () =
  (* The injected x86 loader must produce the same behaviour as the
     host-side table loader: the patched program opens its own file and
     mmaps the trampoline pages itself. *)
  let elf = Codegen.generate (profile ~seed:60L ()) in
  let orig = run elf in
  let options = { Rewriter.default_options with Rewriter.loader = Rewriter.Stub } in
  let r = rewrite ~options elf Frontend.select_jumps Trampoline.Empty in
  (* no mapping-table section: the stub does the work *)
  check_bool "no mmap section" true
    (Elf_file.find_section r.Rewriter.output Elf_file.mmap_section_name = None);
  check_bool "entry moved to the stub" true
    (r.Rewriter.output.Elf_file.entry <> elf.Elf_file.entry);
  let patched = run r.Rewriter.output in
  check_bool "equivalent" true (Machine.equivalent orig patched)

let test_stub_loader_counts_mmaps () =
  (* The stub performs one mmap syscall per mapping record; they surface
     as extra executed instructions before the real entry. *)
  let elf = Codegen.generate (profile ~seed:61L ()) in
  let table =
    rewrite elf Frontend.select_jumps Trampoline.Empty
  in
  let options = { Rewriter.default_options with Rewriter.loader = Rewriter.Stub } in
  let stub = rewrite ~options elf Frontend.select_jumps Trampoline.Empty in
  let rt = run table.Rewriter.output and rs = run stub.Rewriter.output in
  check_bool "both equivalent" true (Machine.equivalent rt rs);
  check_bool "stub executes extra startup instructions" true
    (rs.Cpu.insns > rt.Cpu.insns + (8 * table.Rewriter.mappings))

let suites =
  suites
  @ [ ( "core.loader_stub",
        [ Alcotest.test_case "stub loader equivalent" `Quick
            test_stub_loader_equivalent;
          Alcotest.test_case "stub performs the mmaps" `Quick
            test_stub_loader_counts_mmaps ] ) ]

(* ------------------------------------------------------------------ *)
(* Fault hardening (DESIGN.md §11)                                     *)
(* ------------------------------------------------------------------ *)

module Fault = E9_fault.Fault

let test_alloc_exhaustion_degrades_to_b0 () =
  (* Outcome (a): with every jump-tactic allocation refused and
     b0_fallback on, every site lands on B0 and the binary still runs
     identically (only slower, through the trap handler). *)
  let elf = Codegen.generate (profile ~seed:62L ~iterations:30 ()) in
  let orig = run elf in
  let options =
    { Rewriter.default_options with
      Rewriter.tactics =
        { Tactics.default_options with Tactics.b0_fallback = true } }
  in
  let fault = Fault.create (Fault.parse "alloc@0+") in
  let r =
    Rewriter.run ~options ~fault elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Empty)
  in
  let s = r.Rewriter.stats in
  check_int "no failed sites" 0 s.Stats.failed;
  check_bool "sites were patched" true (Stats.total s > 0);
  check_int "100% B0" (Stats.total s) s.Stats.b0;
  check_bool "alloc faults fired" true (Fault.fired fault Fault.Alloc > 0);
  (match E9_check.Static.verify ~original:elf r.Rewriter.output with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "degraded output rejected: %a" E9_check.Static.pp_error e);
  let patched = run r.Rewriter.output in
  check_bool "equivalent under full degradation" true
    (Machine.equivalent orig patched);
  check_bool "trap handler exercised" true (patched.Cpu.traps > 0);
  (* The emitted trap table round-trips through the Loadmap codec and
     covers exactly the B0 sites. *)
  let sect =
    Option.get (Elf_file.find_section r.Rewriter.output Elf_file.trap_section_name)
  in
  let raw = Elf_file.section_bytes r.Rewriter.output sect in
  let traps = Loadmap.decode_traps raw in
  check_int "one trap record per B0 site" s.Stats.b0 (List.length traps);
  Alcotest.(check bytes) "trap table round-trips" raw
    (Loadmap.encode_traps traps);
  let patched_addrs = List.map fst r.Rewriter.patched_sites in
  List.iter
    (fun (t : Loadmap.trap) ->
      check_bool "trap covers a patched site" true
        (List.mem t.Loadmap.patch_addr patched_addrs))
    traps

let test_b0_exhaustion_without_fallback_accounts () =
  (* Outcome (b): same starvation but no B0 fallback — every site is a
     per-site failure in Stats, and the (unpatched) output still passes
     static verification. *)
  let elf = Codegen.generate (profile ~seed:63L ~iterations:30 ()) in
  let fault = Fault.create (Fault.parse "alloc@0+") in
  let r =
    Rewriter.run ~fault elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Empty)
  in
  let s = r.Rewriter.stats in
  check_int "nothing succeeded" 0 (Stats.succeeded s);
  check_bool "failures accounted" true (s.Stats.failed > 0);
  match E9_check.Static.verify ~original:elf r.Rewriter.output with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "accounted output rejected: %a" E9_check.Static.pp_error e

let test_shard_fault_typed_no_partial () =
  (* Outcome (c): a shard domain dying mid-Pool.map surfaces as a typed
     Rewriter.Error, identically for every jobs value, and the input is
     untouched. *)
  let elf = Codegen.generate (profile ~seed:64L ()) in
  let snapshot = Elf_file.to_bytes elf in
  let options = { Rewriter.default_options with Rewriter.shard_span = 2048 } in
  let messages =
    List.map
      (fun jobs ->
        let fault = Fault.create (Fault.parse "shard@0") in
        match
          Rewriter.run ~options ~fault ~jobs elf
            ~select:Frontend.select_jumps ~template:(fun _ -> Trampoline.Empty)
        with
        | _ -> Alcotest.fail "expected Rewriter.Error"
        | exception Rewriter.Error m -> m)
      [ 1; 2; 4 ]
  in
  (match messages with
  | m :: rest ->
      List.iter
        (fun m' -> Alcotest.(check string) "same typed error" m m')
        rest
  | [] -> assert false);
  Alcotest.(check bytes) "input untouched" snapshot (Elf_file.to_bytes elf)

let test_stub_collision_typed_before_mutation () =
  let elf = Codegen.generate (profile ~seed:65L ()) in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_r;
         vaddr = E9_core.Loader_stub.home;
         offset = 0;
         filesz = 0;
         memsz = 4096;
         align = 4096 }
       ~content:(Bytes.make 16 '\x00'));
  let snapshot = Elf_file.to_bytes elf in
  let options =
    { Rewriter.default_options with Rewriter.loader = Rewriter.Stub }
  in
  (match
     Rewriter.run ~options elf ~select:Frontend.select_jumps
       ~template:(fun _ -> Trampoline.Empty)
   with
  | _ -> Alcotest.fail "expected Rewriter.Error"
  | exception Rewriter.Error m ->
      check_bool "message names the collision" true
        (String.length m >= 8 && String.sub m 0 8 = "Rewriter"));
  Alcotest.(check bytes) "input untouched by refusal" snapshot
    (Elf_file.to_bytes elf);
  (* Table mode is still happy with the same input. *)
  let r =
    Rewriter.run elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Empty)
  in
  check_bool "table-mode rewrite succeeds" true
    (Stats.succ_pct r.Rewriter.stats > 99.0)

let test_stub_home_reserved () =
  (* The stub's landing zone is pre-reserved in the trampoline layout:
     in the output, the only segment intersecting it is the stub itself. *)
  let elf = Codegen.generate (profile ~seed:66L ()) in
  let options =
    { Rewriter.default_options with Rewriter.loader = Rewriter.Stub }
  in
  let r =
    rewrite ~options elf Frontend.select_jumps Trampoline.Empty
  in
  let home = E9_core.Loader_stub.home
  and span = E9_core.Loader_stub.home_span in
  List.iter
    (fun (s : Elf_file.segment) ->
      if s.Elf_file.vaddr < home + span && s.Elf_file.vaddr + s.Elf_file.memsz > home
      then check_int "only the stub lives in its home span" home s.Elf_file.vaddr)
    r.Rewriter.output.Elf_file.segments;
  check_bool "stub segment exists" true
    (Elf_file.segment_at r.Rewriter.output home <> None)

let suites =
  suites
  @ [ ( "core.fault",
        [ Alcotest.test_case "alloc exhaustion degrades to 100% B0" `Quick
            test_alloc_exhaustion_degrades_to_b0;
          Alcotest.test_case "starvation without fallback is accounted" `Quick
            test_b0_exhaustion_without_fallback_accounts;
          Alcotest.test_case "shard fault is typed, jobs-invariant" `Quick
            test_shard_fault_typed_no_partial;
          Alcotest.test_case "stub collision refused before mutation" `Quick
            test_stub_collision_typed_before_mutation;
          Alcotest.test_case "stub home reserved from trampolines" `Quick
            test_stub_home_reserved ] ) ]

(* ------------------------------------------------------------------ *)
(* Pluggable frontends (§2.2): partial disassembly stays correct       *)
(* ------------------------------------------------------------------ *)

let test_recursive_frontend_partial_but_correct () =
  (* Recursive descent cannot see through indirect jumps, so it discovers
     fewer instructions than the linear sweep — yet the rewrite stays
     behaviour-preserving because E9Patch's patching is local. *)
  let elf = Codegen.generate (profile ~seed:70L ()) in
  let orig = run elf in
  let _, linear_sites = Frontend.disassemble elf in
  let _, rec_sites = Frontend.disassemble_recursive elf in
  check_bool "recursive finds a real subset" true
    (List.length rec_sites > 50
    && List.length rec_sites < List.length linear_sites);
  (* Every recursively-found site must agree with the linear ground truth
     (linear is exact on generated binaries). *)
  let by_addr = Hashtbl.create 1024 in
  List.iter
    (fun (s : Frontend.site) -> Hashtbl.replace by_addr s.Frontend.addr s.Frontend.len)
    linear_sites;
  List.iter
    (fun (s : Frontend.site) ->
      match Hashtbl.find_opt by_addr s.Frontend.addr with
      | Some len -> check_int "site agrees with linear" len s.Frontend.len
      | None -> Alcotest.failf "recursive found a bogus site 0x%x" s.Frontend.addr)
    rec_sites;
  let r =
    Rewriter.run ~frontend:Frontend.disassemble_recursive elf
      ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Empty)
  in
  check_bool "patched something" true (Stats.total r.Rewriter.stats > 0);
  check_bool "partial info, still equivalent" true
    (Machine.equivalent orig (run r.Rewriter.output))

let suites =
  suites
  @ [ ( "core.frontends",
        [ Alcotest.test_case "recursive descent: partial but correct" `Quick
            test_recursive_frontend_partial_but_correct ] ) ]

(* ------------------------------------------------------------------ *)
(* §5.1: mixing patched and non-patched binaries in one process        *)
(* ------------------------------------------------------------------ *)

let test_mixing_patched_and_unpatched_binaries () =
  (* An executable calling into a shared object through its import table.
     Because E9Patch never moves code, each binary can be rewritten
     independently — no "callback problem", no need to rewrite the whole
     dependency tree. All four patch/no-patch combinations must behave
     identically. *)
  let lib_prof =
    { Codegen.default_profile with
      Codegen.name = "libfoo"; seed = 81L; functions = 24; iterations = 1 }
  in
  let lib, fns = Codegen.generate_library lib_prof in
  let imports = Array.sub fns 0 4 in
  let exe_prof =
    { Codegen.default_profile with
      Codegen.name = "exe"; seed = 82L; functions = 24; iterations = 80 }
  in
  let exe = Codegen.generate_with_imports exe_prof ~imports in
  let orig = Machine.run ~libs:[ lib ] exe in
  (match orig.Cpu.outcome with
  | Cpu.Exited _ -> ()
  | _ -> Alcotest.fail "two-binary process did not run");
  let patch ?(options = Rewriter.default_options) elf =
    (Rewriter.run ~options elf ~select:Frontend.select_jumps
       ~template:(fun _ -> Trampoline.Counter))
      .Rewriter.output
  in
  let dso_options =
    { Rewriter.default_options with Rewriter.reserve_below_base = true }
  in
  let combos =
    [ ("patched exe, original lib", patch exe, lib);
      ("original exe, patched lib", exe, patch ~options:dso_options lib);
      ("both patched", patch exe, patch ~options:dso_options lib) ]
  in
  List.iter
    (fun (name, e, l) ->
      check_bool name true (Machine.equivalent orig (Machine.run ~libs:[ l ] e)))
    combos

let test_library_calls_actually_cross () =
  (* Sanity: instrumenting only the library still counts events, proving
     the exe really calls into it. *)
  let lib_prof =
    { Codegen.default_profile with
      Codegen.name = "libbar"; seed = 83L; functions = 24; iterations = 1 }
  in
  let lib, fns = Codegen.generate_library lib_prof in
  let exe_prof =
    { Codegen.default_profile with
      Codegen.name = "exe2"; seed = 84L; functions = 24; iterations = 60 }
  in
  let exe = Codegen.generate_with_imports exe_prof ~imports:(Array.sub fns 0 4) in
  let options =
    { Rewriter.default_options with Rewriter.reserve_below_base = true }
  in
  let r =
    Rewriter.run ~options lib ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Counter)
  in
  let run = Machine.run ~libs:[ r.Rewriter.output ] exe in
  check_bool "library trampolines fired" true (run.Cpu.counters <> [])

let suites =
  suites
  @ [ ( "core.mixing",
        [ Alcotest.test_case "patched/unpatched binaries mix" `Quick
            test_mixing_patched_and_unpatched_binaries;
          Alcotest.test_case "cross-binary calls instrumented" `Quick
            test_library_calls_actually_cross ] ) ]

(* ------------------------------------------------------------------ *)
(* Call_fn: instrumentation functions inside the patched binary        *)
(* ------------------------------------------------------------------ *)

let test_call_fn_instrumentation () =
  (* The E9Tool mechanism: compile an instrumentation function into the
     binary (extra segment), have every jump's trampoline call it. The
     function counts invocations in its own data page — fully in-guest,
     no host calls. *)
  let elf = Codegen.generate (profile ~seed:90L ()) in
  let orig = run elf in
  (* Append the counter page and the function to a copy of the input. *)
  let input = Elf_file.of_bytes (Elf_file.to_bytes elf) in
  let counter_addr = 0x30000000 in
  ignore
    (Elf_file.add_segment input
       { Elf_file.ptype = Elf_file.Load; prot = Elf_file.prot_rw;
         vaddr = counter_addr; offset = 0; filesz = 0; memsz = 4096;
         align = 4096 }
       ~content:(Bytes.make 8 '\000'));
  let fn_addr = 0x30001000 in
  let fn =
    let asm = Asm.create ~base:fn_addr in
    (* rax is caller-saved by the trampoline bracket, safe to clobber *)
    Asm.ins asm (Insn.Movabs (Reg.RAX, Int64.of_int counter_addr));
    Asm.ins asm
      (Insn.Alu (Insn.Add, Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RAX ()), Insn.Imm 1));
    Asm.ins asm Insn.Ret;
    Asm.assemble asm
  in
  ignore
    (Elf_file.add_segment input
       { Elf_file.ptype = Elf_file.Load; prot = Elf_file.prot_rx;
         vaddr = fn_addr; offset = 0; filesz = 0; memsz = Bytes.length fn;
         align = 4096 }
       ~content:fn);
  let r =
    Rewriter.run input ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Call_fn fn_addr)
  in
  check_bool "high coverage" true (Stats.succ_pct r.Rewriter.stats > 99.0);
  (* Run on a hand-built machine so the final memory is inspectable. *)
  let m = Machine.boot r.Rewriter.output in
  let res =
    Cpu.run m.Machine.space ~entry:m.Machine.entry
      ~stack_top:Machine.stack_top ~traps:m.Machine.traps
      ~allocator:
        (Cpu.bump_allocator m.Machine.space ~heap_base:Machine.heap_base)
  in
  check_bool "equivalent" true (Machine.equivalent orig res);
  let count = E9_vm.Space.read_u64 m.Machine.space counter_addr in
  check_bool "function counted every dynamic jump" true (count > 500);
  (* Sanity: roughly one count per far-jump pair introduced by patching. *)
  check_bool "count is plausible" true (count < res.Cpu.insns)

let suites =
  suites
  @ [ ( "core.call_fn",
        [ Alcotest.test_case "in-binary instrumentation function" `Quick
            test_call_fn_instrumentation ] ) ]

(* ------------------------------------------------------------------ *)
(* Corner cases                                                        *)
(* ------------------------------------------------------------------ *)

let test_rewrite_nothing_selected () =
  (* Zero patch locations: the output must be byte-identical text and
     carry no trampoline machinery. *)
  let elf = Codegen.generate (profile ~seed:91L ()) in
  let r = Rewriter.run elf ~select:(fun _ -> false) ~template:(fun _ -> Trampoline.Empty) in
  check_int "no sites" 0 (Stats.total r.Rewriter.stats);
  check_bool "no mapping section" true
    (Elf_file.find_section r.Rewriter.output Elf_file.mmap_section_name = None);
  (* Serialization regenerates the section string table (a few dozen
     bytes); no trampoline data may appear beyond that. *)
  check_bool "no trampoline growth" true
    (r.Rewriter.output_size - r.Rewriter.input_size < 128);
  check_int "no trampoline bytes" 0 r.Rewriter.trampoline_bytes;
  let orig = run elf and patched = run r.Rewriter.output in
  check_bool "equivalent" true (Machine.equivalent orig patched)

let test_patch_site_at_text_end () =
  (* A short jump as the very last instruction: its pun would need bytes
     beyond the section — every pun tactic must fail gracefully and B0
     still works. *)
  let asm = Asm.create ~base:0x400000 in
  let fin = Asm.fresh_label asm "fin" in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 5));
  Asm.place asm fin;
  Asm.ins asm Insn.Syscall;
  let tail = Asm.here asm in
  Asm.jmp_short asm fin;
  (* jmp back to the syscall: never reached after exit, but patchable *)
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:0x400000 in
  let off =
    Elf_file.add_segment elf
      { Elf_file.ptype = Elf_file.Load; prot = Elf_file.prot_rx;
        vaddr = 0x400000; offset = 0; filesz = 0; memsz = Bytes.length code;
        align = 4096 }
      ~content:code
  in
  elf.Elf_file.sections <-
    [ { Elf_file.name = ".text"; sh_type = 1; sh_flags = 6; addr = 0x400000;
        offset = off; size = Bytes.length code } ];
  let r =
    Rewriter.run elf ~select:(fun s -> s.Frontend.addr = tail)
      ~template:(fun _ -> Trampoline.Empty)
  in
  (* The 2-byte jump at the end: B2/T1 cannot read fixed bytes beyond the
     text; T2 has no successor; T3 has no later victim. *)
  check_int "pun tactics fail at text end" 0 (Stats.succeeded r.Rewriter.stats);
  let options =
    { Rewriter.default_options with
      Rewriter.tactics = { Tactics.default_options with Tactics.b0_fallback = true } }
  in
  let r2 =
    Rewriter.run ~options elf ~select:(fun s -> s.Frontend.addr = tail)
      ~template:(fun _ -> Trampoline.Empty)
  in
  check_int "B0 rescues it" 1 r2.Rewriter.stats.Stats.b0;
  check_bool "still behaves" true
    (Machine.equivalent (run elf) (run r2.Rewriter.output))

let test_push_pop_rsp_semantics () =
  (* push %rsp pushes the pre-decrement value; pop %rsp loads the popped
     value. Classic emulator pitfalls. *)
  let asm = Asm.create ~base:0x400000 in
  let ins i = Asm.ins asm i in
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RSP));
  ins (Insn.Push Reg.RSP);
  ins (Insn.Pop Reg.RAX);
  (* rax must equal the original rsp *)
  ins (Insn.Alu (Insn.Sub, Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RAX));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Reg Reg.RBX));
  ins Insn.Syscall;
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:0x400000 in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load; prot = Elf_file.prot_rx;
         vaddr = 0x400000; offset = 0; filesz = 0; memsz = Bytes.length code;
         align = 4096 }
       ~content:code);
  match (run elf).Cpu.outcome with
  | Cpu.Exited 0 -> ()
  | Cpu.Exited n -> Alcotest.failf "push/pop rsp off by %d" n
  | _ -> Alcotest.fail "crashed"

let suites =
  suites
  @ [ ( "core.corners",
        [ Alcotest.test_case "nothing selected" `Quick
            test_rewrite_nothing_selected;
          Alcotest.test_case "patch site at text end" `Quick
            test_patch_site_at_text_end;
          Alcotest.test_case "push/pop %rsp" `Quick test_push_pop_rsp_semantics
        ] ) ]

(* ------------------------------------------------------------------ *)
(* Plan table: persistence and text diffs (DESIGN.md §14)              *)
(* ------------------------------------------------------------------ *)

module Plan = E9_core.Plan

let sample_chunk =
  { Plan.c_lo = 0x40; c_len = 0x1000; c_entry = 0x42; c_exit = 0x1040;
    c_sites = [ { Frontend.addr = 0x401050; len = 5; insn = Insn.Jmp 12 } ];
    c_plans =
      [ { Plan.s_addr = 0x401050;
          s_outcome = Plan.Applied Stats.T1;
          s_tramps = [ (0x7f0000000000, Bytes.of_string "\xc3") ];
          s_traps = []; s_class = 9 } ];
    c_diff = [ (0x10, "\xe9\x00\x00\x00\x00") ];
    c_locks = [ (0x401055, 2) ]; c_dead = [ (0x401060, 3) ] }

let test_plan_table_round_trip () =
  let t = Plan.create_table () in
  let store = Plan.table_store t in
  let k = Plan.key ~hash:"deadbeef" ~addr:0x401040 ~len:0x1000 ~env:"env" in
  store.Plan.add k sample_chunk;
  store.Plan.add "other" { sample_chunk with Plan.c_lo = 0x2000 };
  check_int "two entries" 2 (Plan.table_size t);
  let path = Filename.temp_file "e9plan" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Plan.save_table t path;
      let t' = Plan.load_table path in
      check_int "reloaded size" 2 (Plan.table_size t');
      check_bool "reloaded items identical" true
        (List.sort compare (Plan.table_items t')
        = List.sort compare (Plan.table_items t));
      match (Plan.table_store t').Plan.find k with
      | Some c -> check_bool "chunk survives the round trip" true (c = sample_chunk)
      | None -> Alcotest.fail "keyed chunk missing after reload")

(* A cache may always start cold: missing, truncated, or wrong-magic
   files load as an empty table, never an error. *)
let test_plan_table_corrupt_loads_empty () =
  check_int "missing file" 0
    (Plan.table_size (Plan.load_table "/nonexistent/e9plan.bin"));
  let path = Filename.temp_file "e9plan" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a plan cache";
      close_out oc;
      check_int "wrong magic" 0 (Plan.table_size (Plan.load_table path));
      let t = Plan.create_table () in
      (Plan.table_store t).Plan.add "k" sample_chunk;
      Plan.save_table t path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full / 2));
      close_out oc;
      check_int "truncated payload" 0 (Plan.table_size (Plan.load_table path)))

let test_plan_diff_round_trip () =
  let pristine = Bytes.init 256 (fun i -> Char.chr (i land 0xff)) in
  let current = Bytes.copy pristine in
  (* Two disjoint runs, one at the very start of the range. *)
  Bytes.set current 32 '\xe9';
  Bytes.set current 33 '\x00';
  Bytes.set current 100 '\x90';
  let d = Plan.diff ~pristine ~current ~lo:32 ~len:128 in
  check_int "two runs" 2 (List.length d);
  List.iter
    (fun (o, r) -> check_bool "run offsets in range" true
        (o >= 0 && o + String.length r <= 128))
    d;
  (* Replaying the diff onto a pristine buffer reproduces [current]. *)
  let buf = Buf.of_bytes (Bytes.copy pristine) in
  Plan.apply_diff buf ~lo:32 d;
  check_bool "apply_diff reproduces the edits" true
    (Buf.contents buf = current);
  (* Edits outside [lo, lo+len) are invisible to the diff. *)
  let far = Bytes.copy pristine in
  Bytes.set far 5 '\xcc';
  check_bool "no edits in range, empty diff" true
    (Plan.diff ~pristine ~current:far ~lo:32 ~len:128 = [])

let suites =
  suites
  @ [ ( "core.plan",
        [ Alcotest.test_case "table save/load round trip" `Quick
            test_plan_table_round_trip;
          Alcotest.test_case "corrupt cache loads empty" `Quick
            test_plan_table_corrupt_loads_empty;
          Alcotest.test_case "diff/apply_diff round trip" `Quick
            test_plan_diff_round_trip
        ] ) ]

(* Tests for the VM and the x86 subset emulator: whole programs assembled
   with Asm, packed into ELF images, loaded, and executed. *)

module Space = E9_vm.Space
module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Cpu = E9_emu.Cpu
module Machine = E9_emu.Machine
module Hostcall = E9_emu.Hostcall

let base = 0x400000

(* Wrap assembled code (and optional extra segments/sections) in an ELF. *)
let elf_of_asm ?(extra = fun _ -> ()) asm =
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:base in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rx;
         vaddr = base;
         offset = 0;
         filesz = 0;
         memsz = Bytes.length code;
         align = 4096 }
       ~content:code);
  extra elf;
  elf

let exit_with asm code =
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm code));
  Asm.ins asm Insn.Syscall

(* Exit with the low byte of RBX as status. *)
let exit_rbx asm =
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Reg Reg.RBX));
  Asm.ins asm Insn.Syscall

let run_elf ?config ?make_allocator elf = Machine.run ?config ?make_allocator elf

let check_exit expect (r : Cpu.result) =
  match r.Cpu.outcome with
  | Cpu.Exited n -> Alcotest.(check int) "exit code" expect n
  | Cpu.Fault (a, m) -> Alcotest.failf "fault at 0x%x: %s" a m
  | Cpu.Violation p -> Alcotest.failf "violation at 0x%x" p
  | Cpu.Out_of_fuel -> Alcotest.fail "out of fuel"

(* ------------------------------------------------------------------ *)
(* Space                                                               *)
(* ------------------------------------------------------------------ *)

let test_space_rw () =
  let s = Space.create () in
  Space.map_zero s ~vaddr:0x1000 ~len:8192 ~prot:Elf_file.prot_rw;
  Space.write_u64 s 0x1500 0x123456789abc;
  Alcotest.(check int) "u64" 0x123456789abc (Space.read_u64 s 0x1500);
  Space.write_u32 s 0x1ffe 0xdeadbeef;
  (* crosses page boundary *)
  Alcotest.(check int) "u32 across pages" 0xdeadbeef (Space.read_u32 s 0x1ffe)

let test_space_prot () =
  let s = Space.create () in
  Space.map_bytes s ~vaddr:0x1000 ~prot:Elf_file.prot_rx
    (Bytes.of_string "\x90");
  Alcotest.(check bool) "exec readable" true (Space.read_u8 s 0x1000 = 0x90);
  (try
     Space.write_u8 s 0x1000 0;
     Alcotest.fail "write to rx page should fault"
   with Space.Fault (_, _) -> ());
  try
    ignore (Space.read_u8 s 0x9999999);
    Alcotest.fail "unmapped read should fault"
  with Space.Fault (_, _) -> ()

let test_space_overmap () =
  (* MAP_FIXED semantics: later mapping replaces earlier content. *)
  let s = Space.create () in
  Space.map_bytes s ~vaddr:0x1000 ~prot:Elf_file.prot_rw (Bytes.of_string "aa");
  Space.map_bytes s ~vaddr:0x1000 ~prot:Elf_file.prot_rw (Bytes.of_string "b");
  Alcotest.(check int) "replaced" (Char.code 'b') (Space.read_u8 s 0x1000);
  Alcotest.(check int) "tail kept" (Char.code 'a') (Space.read_u8 s 0x1001)

let test_space_one_to_many () =
  (* The same content can back several virtual ranges (page grouping). *)
  let s = Space.create () in
  let content = Bytes.of_string "shared" in
  Space.map_bytes s ~vaddr:0x10000 ~prot:Elf_file.prot_rx content;
  Space.map_bytes s ~vaddr:0x20000 ~prot:Elf_file.prot_rx content;
  Alcotest.(check int) "copy 1" (Char.code 's') (Space.read_u8 s 0x10000);
  Alcotest.(check int) "copy 2" (Char.code 's') (Space.read_u8 s 0x20000)

let test_space_fetch_window_truncates () =
  (* A window that runs off the end of executable memory is truncated, not
     a fault: the decoder sees only the fetchable bytes. *)
  let s = Space.create () in
  Space.map_bytes s ~vaddr:0x1000 ~prot:Elf_file.prot_rx
    (Bytes.make 4096 '\x90');
  Space.map_zero s ~vaddr:0x2000 ~len:4096 ~prot:Elf_file.prot_rw;
  Alcotest.(check int) "truncated at non-exec page" 8
    (Bytes.length (Space.fetch_window s 0x1ff8));
  Alcotest.(check int) "full window inside page" 16
    (Bytes.length (Space.fetch_window s 0x1800));
  (* The first byte being unfetchable is still a fault. *)
  try
    ignore (Space.fetch_window s 0x2000);
    Alcotest.fail "fetch from non-exec page should fault"
  with Space.Fault (_, _) -> ()

let test_space_map_zero_newest_wins () =
  (* Two overlapping lazy zero regions (each > 16 pages, so neither is
     materialized eagerly): the newer mapping's protection governs the
     overlap. *)
  let s = Space.create () in
  Space.map_zero s ~vaddr:0x100000 ~len:0x20000 ~prot:Elf_file.prot_r;
  Space.map_zero s ~vaddr:0x110000 ~len:0x20000 ~prot:Elf_file.prot_rw;
  Space.write_u8 s 0x118000 7;
  Alcotest.(check int) "overlap is writable (newest wins)" 7
    (Space.read_u8 s 0x118000);
  Alcotest.(check int) "older region reads zero" 0 (Space.read_u8 s 0x108000);
  try
    Space.write_u8 s 0x108000 1;
    Alcotest.fail "older read-only region accepted a write"
  with Space.Fault (_, _) -> ()

let test_space_last_page_cache_map_zero () =
  (* A read primes the one-entry page cache; map_zero over the same page
     must not leave the cached handle serving stale bytes. *)
  let s = Space.create () in
  Space.map_bytes s ~vaddr:0x3000 ~prot:Elf_file.prot_rw
    (Bytes.of_string "abcdef");
  Alcotest.(check int) "before" (Char.code 'c') (Space.read_u8 s 0x3002);
  Space.map_zero s ~vaddr:0x3000 ~len:4096 ~prot:Elf_file.prot_rw;
  Alcotest.(check int) "zeroed" 0 (Space.read_u8 s 0x3002);
  Space.map_bytes s ~vaddr:0x3000 ~prot:Elf_file.prot_rw
    (Bytes.of_string "XY");
  Alcotest.(check int) "remapped" (Char.code 'Y') (Space.read_u8 s 0x3001)

let test_space_shared_alias_privatizes () =
  (* Full-page read-only mappings of the same source alias one host page;
     remapping or zeroing one alias must not disturb the others. *)
  let s = Space.create () in
  let content = Bytes.make 4096 'A' in
  Space.map_bytes s ~vaddr:0x10000 ~prot:Elf_file.prot_rx content;
  Space.map_bytes s ~vaddr:0x20000 ~prot:Elf_file.prot_rx content;
  Space.map_bytes s ~vaddr:0x30000 ~prot:Elf_file.prot_rx content;
  Alcotest.(check int) "alias reads" (Char.code 'A') (Space.read_u8 s 0x20000);
  Space.map_bytes s ~vaddr:0x20000 ~prot:Elf_file.prot_rw content;
  Space.write_u8 s 0x20000 (Char.code 'B');
  Alcotest.(check int) "written alias" (Char.code 'B')
    (Space.read_u8 s 0x20000);
  Alcotest.(check int) "sibling untouched by write" (Char.code 'A')
    (Space.read_u8 s 0x10000);
  Space.map_zero s ~vaddr:0x10000 ~len:4096 ~prot:Elf_file.prot_rw;
  Alcotest.(check int) "zeroed alias" 0 (Space.read_u8 s 0x10000);
  Alcotest.(check int) "sibling untouched by map_zero" (Char.code 'A')
    (Space.read_u8 s 0x30000)

(* ------------------------------------------------------------------ *)
(* Basic execution                                                     *)
(* ------------------------------------------------------------------ *)

let test_exit_code () =
  let asm = Asm.create ~base in
  exit_with asm 42;
  check_exit 42 (run_elf (elf_of_asm asm))

let test_write_syscall () =
  let asm = Asm.create ~base in
  let msg = Asm.fresh_label asm "msg" in
  (* write(1, msg, 5); exit(0) *)
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 1));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 1));
  Asm.lea_label asm Reg.RSI msg;
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDX, Insn.Imm 5));
  Asm.ins asm Insn.Syscall;
  exit_with asm 0;
  Asm.place asm msg;
  Asm.ins_raw asm "hello";
  let r = run_elf (elf_of_asm asm) in
  check_exit 0 r;
  Alcotest.(check string) "output" "hello" r.Cpu.output

let test_loop_sum () =
  (* Sum 1..10 into RBX via a conditional loop; exit with 55. *)
  let asm = Asm.create ~base in
  let loop = Asm.fresh_label asm "loop" in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 0));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 1));
  Asm.place asm loop;
  Asm.ins asm (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RCX));
  Asm.ins asm (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 1));
  Asm.ins asm (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 10));
  Asm.jcc asm Insn.LE loop;
  exit_rbx asm;
  check_exit 55 (run_elf (elf_of_asm asm))

let test_call_ret () =
  let asm = Asm.create ~base in
  let f = Asm.fresh_label asm "f" in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 1));
  Asm.call asm f;
  Asm.call asm f;
  exit_rbx asm;
  Asm.place asm f;
  Asm.ins asm (Insn.Shift (Insn.Shl, Insn.Q, Insn.Reg Reg.RBX, 2));
  Asm.ins asm Insn.Ret;
  check_exit 16 (run_elf (elf_of_asm asm))

let test_push_pop () =
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 7));
  Asm.ins asm (Insn.Push Reg.RAX);
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 0));
  Asm.ins asm (Insn.Pop Reg.RBX);
  exit_rbx asm;
  check_exit 7 (run_elf (elf_of_asm asm))

let test_memory_ops () =
  (* Store through a pointer, add to memory, reload. *)
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Movabs (Reg.RDI, Int64.of_int (Machine.stack_top - 64)));
  Asm.ins asm
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RDI ()), Insn.Imm 40));
  Asm.ins asm
    (Insn.Alu
       (Insn.Add, Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RDI ()), Insn.Imm 2));
  Asm.ins asm
    (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Mem (Insn.mem ~base:Reg.RDI ())));
  exit_rbx asm;
  check_exit 42 (run_elf (elf_of_asm asm))

let test_sib_addressing () =
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Movabs (Reg.RDI, Int64.of_int (Machine.stack_top - 256)));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 3));
  (* mem[rdi + rcx*8 + 16] = 9; rbx = mem[rdi + rcx*8 + 16] *)
  Asm.ins asm
    (Insn.Mov
       ( Insn.Q,
         Insn.Mem (Insn.mem ~base:Reg.RDI ~index:(Reg.RCX, Insn.S8) ~disp:16 ()),
         Insn.Imm 9 ));
  Asm.ins asm
    (Insn.Mov
       ( Insn.Q,
         Insn.Reg Reg.RBX,
         Insn.Mem (Insn.mem ~base:Reg.RDI ~index:(Reg.RCX, Insn.S8) ~disp:16 ())
       ));
  exit_rbx asm;
  check_exit 9 (run_elf (elf_of_asm asm))

let test_indirect_jump_table () =
  (* A computed jump through a table in a data segment: the control-flow
     pattern that defeats static recovery. Select case 2 of 4. *)
  let asm = Asm.create ~base in
  let table = Asm.fresh_label asm "table" in
  let cases = Array.init 4 (fun i -> Asm.fresh_label asm (Printf.sprintf "case%d" i)) in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 2));
  Asm.lea_label asm Reg.RDX table;
  Asm.ins asm
    (Insn.Jmp_ind
       (Insn.Mem (Insn.mem ~base:Reg.RDX ~index:(Reg.RCX, Insn.S8) ())));
  Array.iteri
    (fun i l ->
      Asm.place asm l;
      Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm (10 + i)));
      exit_rbx asm)
    cases;
  (* Data: the table of absolute case addresses, embedded in the text
     segment (read access to the text segment is allowed). *)
  Asm.place asm table;
  let code_so_far = Asm.here asm in
  ignore code_so_far;
  Array.iter
    (fun (_ : Asm.label) -> Asm.ins_raw asm (String.make 8 '\000'))
    cases;
  (* Fill the table after assembly — two-phase: get addresses, patch. *)
  let code = Asm.assemble asm in
  let table_off = Asm.label_addr asm table - base in
  Array.iteri
    (fun i l ->
      let addr = Asm.label_addr asm cases.(i) in
      ignore l;
      Bytes.set_int64_le code (table_off + (8 * i)) (Int64.of_int addr))
    cases;
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:base in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = { Elf_file.r = true; w = false; x = true };
         vaddr = base;
         offset = 0;
         filesz = 0;
         memsz = Bytes.length code;
         align = 4096 }
       ~content:code);
  check_exit 12 (run_elf elf)

let test_flags_signed_unsigned () =
  (* cmp $-1, %rbx(=1): signed 1 > -1 (G), unsigned 1 < 0xff..ff (B). *)
  let asm = Asm.create ~base in
  let ok1 = Asm.fresh_label asm "ok1" in
  let ok2 = Asm.fresh_label asm "ok2" in
  let fail_ = Asm.fresh_label asm "fail" in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 1));
  Asm.ins asm (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.RBX, Insn.Imm (-1)));
  Asm.jcc asm Insn.G ok1;
  Asm.jmp asm fail_;
  Asm.place asm ok1;
  Asm.ins asm (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.RBX, Insn.Imm (-1)));
  Asm.jcc asm Insn.B_ ok2;
  Asm.jmp asm fail_;
  Asm.place asm ok2;
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 0));
  exit_rbx asm;
  Asm.place asm fail_;
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 1));
  exit_rbx asm;
  check_exit 0 (run_elf (elf_of_asm asm))

let test_32bit_zero_extend () =
  (* Writing a 32-bit register clears the upper half. *)
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Movabs (Reg.RBX, 0x1_0000_0007L));
  Asm.ins asm (Insn.Mov (Insn.L, Insn.Reg Reg.RBX, Insn.Reg Reg.RBX));
  (* rbx = 7 now; shifting right 32 must give 0 *)
  Asm.ins asm (Insn.Shift (Insn.Shr, Insn.Q, Insn.Reg Reg.RBX, 32));
  exit_rbx asm;
  check_exit 0 (run_elf (elf_of_asm asm))

let test_byte_ops () =
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Movabs (Reg.RBX, 0x1234L));
  (* bl += 0x40 -> 0x74; whole rbx must become 0x1274 -> exit 0x74 *)
  Asm.ins asm (Insn.Alu (Insn.Add, Insn.B, Insn.Reg Reg.RBX, Insn.Imm 0x40));
  exit_rbx asm;
  check_exit 0x74 (run_elf (elf_of_asm asm))

let test_setcc_cmov () =
  (* rbx = (5 < 7) ? 1 : 0 via setl; then cmove overwrites only if ZF. *)
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 0));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 5));
  Asm.ins asm (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 7));
  Asm.ins asm (Insn.Setcc (Insn.L_, Insn.Reg Reg.RBX));
  (* cmp 5,5 -> ZF; cmove rbx <- 40+rbx? use a second reg *)
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 41));
  Asm.ins asm (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 5));
  Asm.ins asm (Insn.Cmov (Insn.E, Reg.RBX, Insn.Reg Reg.RCX));
  (* cmovne must NOT fire *)
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 99));
  Asm.ins asm (Insn.Cmov (Insn.NE, Reg.RBX, Insn.Reg Reg.RCX));
  exit_rbx asm;
  check_exit 41 (run_elf (elf_of_asm asm))

let test_movzx_movsx () =
  (* store byte 0x80; movzx -> 0x80; movsx -> -128 (low byte 0x80).
     Distinguish via shift: movzx >> 7 = 1; movsx >> 7 = -1 (all ones). *)
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Movabs (Reg.RDI, Int64.of_int (Machine.stack_top - 64)));
  Asm.ins asm
    (Insn.Mov (Insn.B, Insn.Mem (Insn.mem ~base:Reg.RDI ()), Insn.Imm (-128)));
  Asm.ins asm (Insn.Movzx (Reg.RBX, Insn.Mem (Insn.mem ~base:Reg.RDI ())));
  Asm.ins asm (Insn.Shift (Insn.Shr, Insn.Q, Insn.Reg Reg.RBX, 7));
  Asm.ins asm (Insn.Movsx (Reg.RCX, Insn.Mem (Insn.mem ~base:Reg.RDI ())));
  Asm.ins asm (Insn.Shift (Insn.Sar, Insn.Q, Insn.Reg Reg.RCX, 7));
  (* rbx = 1, rcx = -1; rbx - rcx = 2 *)
  Asm.ins asm (Insn.Alu (Insn.Sub, Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RCX));
  exit_rbx asm;
  check_exit 2 (run_elf (elf_of_asm asm))

let test_neg_not () =
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 7));
  Asm.ins asm (Insn.Neg (Insn.Q, Insn.Reg Reg.RBX));
  (* -7 + 17 = 10 *)
  Asm.ins asm (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 17));
  Asm.ins asm (Insn.Not (Insn.Q, Insn.Reg Reg.RBX));
  (* ~10 = -11; neg -> 11 *)
  Asm.ins asm (Insn.Neg (Insn.Q, Insn.Reg Reg.RBX));
  exit_rbx asm;
  check_exit 11 (run_elf (elf_of_asm asm))

let test_neg_sets_flags () =
  (* neg of zero leaves ZF set (0 - 0); neg of nonzero sets CF. *)
  let asm = Asm.create ~base in
  let nz = Asm.fresh_label asm "nz" in
  let fail_ = Asm.fresh_label asm "fail" in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 0));
  Asm.ins asm (Insn.Neg (Insn.Q, Insn.Reg Reg.RBX));
  Asm.jcc asm Insn.E nz;
  Asm.jmp asm fail_;
  Asm.place asm nz;
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 5));
  Asm.ins asm (Insn.Neg (Insn.Q, Insn.Reg Reg.RBX));
  let ok = Asm.fresh_label asm "ok" in
  Asm.jcc asm Insn.B_ ok (* CF set *);
  Asm.jmp asm fail_;
  Asm.place asm ok;
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 0));
  exit_rbx asm;
  Asm.place asm fail_;
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 1));
  exit_rbx asm;
  check_exit 0 (run_elf (elf_of_asm asm))

(* ------------------------------------------------------------------ *)
(* Self-modifying code                                                 *)
(* ------------------------------------------------------------------ *)

let test_self_modifying_code () =
  (* Call f (movabs rbx, 1; ret), overwrite the immediate in place, call f
     again: the second call must see the new immediate. This is the
     stale-icache hazard — both the per-instruction decode cache and the
     superblock cache hold f's old body when the store lands. *)
  let asm = Asm.create ~base in
  let f = Asm.fresh_label asm "f" in
  let f_end = Asm.fresh_label asm "f_end" in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 0));
  Asm.call asm f;
  (* rbx = 1; save it shifted so both calls land in the exit code *)
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Reg Reg.RBX));
  Asm.ins asm (Insn.Shift (Insn.Shl, Insn.Q, Insn.Reg Reg.RCX, 4));
  (* Poke 11 into the low byte of the movabs immediate (last 8 bytes of
     the 10-byte instruction ending at f_end). *)
  Asm.lea_label asm Reg.RDI f_end;
  Asm.ins asm (Insn.Alu (Insn.Sub, Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 8));
  Asm.ins asm
    (Insn.Mov (Insn.B, Insn.Mem (Insn.mem ~base:Reg.RDI ()), Insn.Imm 11));
  Asm.call asm f;
  (* rbx = 11; combine: 1*16 + 11 = 27 *)
  Asm.ins asm (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RCX));
  exit_rbx asm;
  Asm.place asm f;
  Asm.ins asm (Insn.Movabs (Reg.RBX, 1L));
  Asm.place asm f_end;
  Asm.ins asm Insn.Ret;
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:base in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = { Elf_file.r = true; w = true; x = true };
         vaddr = base;
         offset = 0;
         filesz = 0;
         memsz = Bytes.length code;
         align = 4096 }
       ~content:code);
  let r = run_elf elf in
  check_exit 27 r;
  Alcotest.(check bool) "cache was rebuilt after the store" true
    (r.Cpu.block_misses >= 2);
  Alcotest.(check bool) "the store was counted as a flush" true
    (r.Cpu.block_invalidations >= 1)

(* ------------------------------------------------------------------ *)
(* Host calls                                                          *)
(* ------------------------------------------------------------------ *)

let test_malloc_hostcall () =
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 64));
  Asm.ins asm (Insn.Int Hostcall.malloc);
  (* Write and read back through the returned pointer. *)
  Asm.ins asm
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RAX ~disp:8 ()), Insn.Imm 33));
  Asm.ins asm
    (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Mem (Insn.mem ~base:Reg.RAX ~disp:8 ())));
  exit_rbx asm;
  check_exit 33 (run_elf (elf_of_asm asm))

let test_counter_hostcall () =
  let asm = Asm.create ~base in
  let loop = Asm.fresh_label asm "loop" in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 5));
  Asm.place asm loop;
  Asm.ins asm (Insn.Int Hostcall.count);
  Asm.ins asm (Insn.Alu (Insn.Sub, Insn.Q, Insn.Reg Reg.RCX, Insn.Imm 1));
  Asm.jcc asm Insn.NE loop;
  exit_with asm 0;
  let r = run_elf (elf_of_asm asm) in
  check_exit 0 r;
  match r.Cpu.counters with
  | [ (_, 5) ] -> ()
  | other ->
      Alcotest.failf "expected one site with 5 hits, got %d entries"
        (List.length other)

(* ------------------------------------------------------------------ *)
(* B0 trap model                                                       *)
(* ------------------------------------------------------------------ *)

let test_int3_trap_redirect () =
  (* Simulate a B0 patch by hand: int3 at a known site, trap table sends
     control to a "trampoline" that sets RBX and jumps back. *)
  let asm = Asm.create ~base in
  let site = Asm.fresh_label asm "site" in
  let after = Asm.fresh_label asm "after" in
  let tramp = Asm.fresh_label asm "tramp" in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 0));
  Asm.place asm site;
  Asm.ins asm Insn.Int3;
  Asm.place asm after;
  exit_rbx asm;
  Asm.place asm tramp;
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 99));
  Asm.jmp asm after;
  let trap_rec =
    [ { Loadmap.patch_addr = 0; trampoline_addr = 0 } ]
    (* placeholder; replaced after assembly below *)
  in
  ignore trap_rec;
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:base in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rx;
         vaddr = base;
         offset = 0;
         filesz = 0;
         memsz = Bytes.length code;
         align = 4096 }
       ~content:code);
  ignore
    (Elf_file.add_section elf ~name:Elf_file.trap_section_name ~addr:0
       ~sh_type:1 ~sh_flags:0
       ~content:
         (Loadmap.encode_traps
            [ { Loadmap.patch_addr = Asm.label_addr asm site;
                trampoline_addr = Asm.label_addr asm tramp } ]));
  let r = run_elf elf in
  check_exit 99 r;
  Alcotest.(check int) "one trap taken" 1 r.Cpu.traps;
  Alcotest.(check bool) "traps are expensive" true
    (r.Cpu.cycles > Cpu.default_config.Cpu.trap_penalty)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_far_jump_penalty () =
  (* Same work, near vs far callee: far version must cost more cycles. *)
  let build far =
    let asm = Asm.create ~base in
    let f = Asm.fresh_label asm "f" in
    Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Imm 3));
    Asm.call asm f;
    exit_rbx asm;
    if far then
      (* push the callee to another page *)
      for _ = 1 to 5000 do
        Asm.ins asm (Insn.Nop 1)
      done;
    Asm.place asm f;
    Asm.ins asm Insn.Ret;
    elf_of_asm asm
  in
  let near = run_elf (build false) and far = run_elf (build true) in
  check_exit 3 near;
  check_exit 3 far;
  Alcotest.(check bool) "far call costs more" true (far.Cpu.cycles > near.Cpu.cycles);
  Alcotest.(check int) "near has no far jumps" 0 near.Cpu.far_jumps;
  Alcotest.(check int) "far has two (call+ret)" 2 far.Cpu.far_jumps

let test_fuel_exhaustion () =
  let asm = Asm.create ~base in
  let loop = Asm.fresh_label asm "loop" in
  Asm.place asm loop;
  Asm.jmp asm loop;
  let config = { Cpu.default_config with Cpu.fuel = 1000 } in
  let r = run_elf ~config (elf_of_asm asm) in
  Alcotest.(check bool) "out of fuel" true (r.Cpu.outcome = Cpu.Out_of_fuel);
  Alcotest.(check int) "ran exactly fuel" 1000 r.Cpu.insns

let test_fault_reported () =
  let asm = Asm.create ~base in
  Asm.ins asm
    (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Mem (Insn.mem ~disp:0x10 ())));
  let r = run_elf (elf_of_asm asm) in
  match r.Cpu.outcome with
  | Cpu.Fault (0x10, _) -> ()
  | _ -> Alcotest.fail "expected fault at 0x10"

let suites =
  [ ( "vm.space",
      [ Alcotest.test_case "read/write" `Quick test_space_rw;
        Alcotest.test_case "protection" `Quick test_space_prot;
        Alcotest.test_case "overmap replaces" `Quick test_space_overmap;
        Alcotest.test_case "one-to-many" `Quick test_space_one_to_many;
        Alcotest.test_case "fetch_window truncates" `Quick
          test_space_fetch_window_truncates;
        Alcotest.test_case "map_zero newest wins" `Quick
          test_space_map_zero_newest_wins;
        Alcotest.test_case "page cache after map_zero" `Quick
          test_space_last_page_cache_map_zero;
        Alcotest.test_case "shared alias privatizes" `Quick
          test_space_shared_alias_privatizes ] );
    ( "emu.basic",
      [ Alcotest.test_case "exit code" `Quick test_exit_code;
        Alcotest.test_case "write syscall" `Quick test_write_syscall;
        Alcotest.test_case "loop sum" `Quick test_loop_sum;
        Alcotest.test_case "call/ret" `Quick test_call_ret;
        Alcotest.test_case "push/pop" `Quick test_push_pop;
        Alcotest.test_case "memory ops" `Quick test_memory_ops;
        Alcotest.test_case "SIB addressing" `Quick test_sib_addressing;
        Alcotest.test_case "indirect jump table" `Quick
          test_indirect_jump_table;
        Alcotest.test_case "signed/unsigned flags" `Quick
          test_flags_signed_unsigned;
        Alcotest.test_case "32-bit zero extend" `Quick test_32bit_zero_extend;
        Alcotest.test_case "byte ops" `Quick test_byte_ops;
        Alcotest.test_case "setcc/cmov" `Quick test_setcc_cmov;
        Alcotest.test_case "movzx/movsx" `Quick test_movzx_movsx;
        Alcotest.test_case "neg/not" `Quick test_neg_not;
        Alcotest.test_case "neg flags" `Quick test_neg_sets_flags;
        Alcotest.test_case "self-modifying code" `Quick
          test_self_modifying_code ] );
    ( "emu.hostcalls",
      [ Alcotest.test_case "malloc" `Quick test_malloc_hostcall;
        Alcotest.test_case "counter" `Quick test_counter_hostcall ] );
    ( "emu.b0",
      [ Alcotest.test_case "int3 trap redirect" `Quick test_int3_trap_redirect ]
    );
    ( "emu.cost",
      [ Alcotest.test_case "far jump penalty" `Quick test_far_jump_penalty;
        Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
        Alcotest.test_case "fault reported" `Quick test_fault_reported ] ) ]

(* Tests for the ELF64 reader/writer and the loadmap codecs. *)

module Buf = E9_bits.Buf

let mk_exec () =
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:0x400000 in
  let code = Bytes.of_string "\x90\x90\xc3" in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rx;
         vaddr = 0x400000;
         offset = 0;
         filesz = 0;
         memsz = Bytes.length code;
         align = 4096 }
       ~content:code);
  elf

let test_roundtrip_header () =
  let elf = mk_exec () in
  let parsed = Elf_file.of_bytes (Elf_file.to_bytes elf) in
  Alcotest.(check int) "entry" 0x400000 parsed.Elf_file.entry;
  Alcotest.(check bool) "etype" true (parsed.Elf_file.etype = Elf_file.Exec);
  Alcotest.(check int) "segments" 1 (List.length parsed.Elf_file.segments)

let test_roundtrip_segment_content () =
  let elf = mk_exec () in
  let parsed = Elf_file.of_bytes (Elf_file.to_bytes elf) in
  let seg = List.hd parsed.Elf_file.segments in
  Alcotest.(check int) "vaddr" 0x400000 seg.Elf_file.vaddr;
  Alcotest.(check string)
    "content" "\x90\x90\xc3"
    (Bytes.to_string
       (Buf.sub parsed.Elf_file.data ~pos:seg.Elf_file.offset
          ~len:seg.Elf_file.filesz))

let test_segment_alignment_congruence () =
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:0x401234 in
  let off =
    Elf_file.add_segment elf
      { Elf_file.ptype = Elf_file.Load;
        prot = Elf_file.prot_rx;
        vaddr = 0x401234;
        offset = 0;
        filesz = 0;
        memsz = 16;
        align = 4096 }
      ~content:(Bytes.make 16 'x')
  in
  Alcotest.(check int) "offset congruent to vaddr mod align" (0x401234 mod 4096)
    (off mod 4096)

let test_sections_roundtrip () =
  let elf = mk_exec () in
  ignore
    (Elf_file.add_section elf ~name:".text" ~addr:0x400000 ~sh_type:1
       ~sh_flags:6 ~content:(Bytes.of_string "abc"));
  ignore
    (Elf_file.add_section elf ~name:Elf_file.mmap_section_name ~addr:0
       ~sh_type:1 ~sh_flags:0 ~content:(Bytes.make 32 '\000'));
  let parsed = Elf_file.of_bytes (Elf_file.to_bytes elf) in
  Alcotest.(check int) "two sections" 2 (List.length parsed.Elf_file.sections);
  match Elf_file.find_section parsed ".text" with
  | Some s ->
      Alcotest.(check string) "content" "abc"
        (Bytes.to_string (Elf_file.section_bytes parsed s))
  | None -> Alcotest.fail "missing .text"

let test_segment_at () =
  let elf = mk_exec () in
  (match Elf_file.segment_at elf 0x400001 with
  | Some s -> Alcotest.(check int) "found" 0x400000 s.Elf_file.vaddr
  | None -> Alcotest.fail "segment_at failed");
  Alcotest.(check bool) "outside" true (Elf_file.segment_at elf 0x500000 = None)

let test_bss_memsz () =
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:0x400000 in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rw;
         vaddr = 0x600000;
         offset = 0;
         filesz = 0;
         memsz = 8192;
         align = 4096 }
       ~content:(Bytes.make 100 'd'));
  let parsed = Elf_file.of_bytes (Elf_file.to_bytes elf) in
  let seg = List.hd parsed.Elf_file.segments in
  Alcotest.(check int) "filesz" 100 seg.Elf_file.filesz;
  Alcotest.(check int) "memsz preserved" 8192 seg.Elf_file.memsz

let test_reject_garbage () =
  Alcotest.check_raises "bad magic" (Elf_file.Malformed "bad magic") (fun () ->
      ignore (Elf_file.of_bytes (Bytes.make 100 'A')))

(* ------------------------------------------------------------------ *)
(* Malformed inputs: every structural defect must surface as a typed
   [Elf_file.Malformed], never as an [Invalid_argument]/[Not_found]
   escaping the byte accessors — the fuzz harness and CLI rely on
   catching exactly that exception.                                    *)
(* ------------------------------------------------------------------ *)

(* A valid image to corrupt. Fixed ELF64 header offsets: e_phoff=32,
   e_shoff=40, e_phentsize=54, e_phnum=56, e_shentsize=58; phdr 0 starts
   at 64 with p_filesz at +32 and p_memsz at +40. *)
let corrupted f =
  let b = Elf_file.to_bytes (mk_exec ()) in
  f b;
  b

let expect_malformed label bytes =
  match Elf_file.of_bytes bytes with
  | _ -> Alcotest.failf "%s: malformed image was accepted" label
  | exception Elf_file.Malformed _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Malformed, got %s" label
        (Printexc.to_string e)

let test_malformed_truncated_header () =
  expect_malformed "10-byte file" (Bytes.make 10 '\x7f')

let test_malformed_zero_phentsize () =
  expect_malformed "e_phentsize=0"
    (corrupted (fun b -> Bytes.set_uint16_le b 54 0))

let test_malformed_alien_shentsize () =
  expect_malformed "e_shentsize=12"
    (corrupted (fun b -> Bytes.set_uint16_le b 58 12))

let test_malformed_truncated_phdrs () =
  expect_malformed "e_phoff past EOF"
    (corrupted (fun b -> Bytes.set_int64_le b 32 (Int64.of_int (Bytes.length b))))

let test_malformed_truncated_shdrs () =
  expect_malformed "e_shoff near EOF"
    (corrupted (fun b ->
         Bytes.set_int64_le b 40 (Int64.of_int (Bytes.length b - 1))))

let test_malformed_load_outside_image () =
  expect_malformed "p_filesz past EOF"
    (corrupted (fun b -> Bytes.set_int64_le b (64 + 32) 0x7fff_ffffL))

let test_malformed_memsz_lt_filesz () =
  expect_malformed "p_memsz < p_filesz"
    (corrupted (fun b -> Bytes.set_int64_le b (64 + 40) 0L))

let test_malformed_overlapping_loads () =
  (* add_segment does not validate; the reader must. *)
  let elf = mk_exec () in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rw;
         vaddr = 0x400001;
         offset = 0;
         filesz = 0;
         memsz = 64;
         align = 4096 }
       ~content:(Bytes.make 64 'o'));
  expect_malformed "overlapping PT_LOAD" (Elf_file.to_bytes elf)

let expect_malformed_fn label f =
  match f () with
  | _ -> Alcotest.failf "%s: malformed payload was accepted" label
  | exception Elf_file.Malformed _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Malformed, got %s" label
        (Printexc.to_string e)

let test_malformed_tablemeta () =
  expect_malformed_fn "ragged length" (fun () ->
      Tablemeta.decode (Bytes.make 31 '\000'));
  let bad_kind = Bytes.make 32 '\000' in
  Bytes.set_uint8 bad_kind 8 7;
  expect_malformed_fn "bad kind tag" (fun () -> Tablemeta.decode bad_kind);
  let neg_entries = Bytes.make 32 '\000' in
  Bytes.set_int64_le neg_entries 24 (-1L);
  expect_malformed_fn "negative entries" (fun () -> Tablemeta.decode neg_entries)

let test_malformed_loadmap () =
  expect_malformed_fn "ragged mapping table" (fun () ->
      Loadmap.decode_mappings (Bytes.make 33 '\000'));
  expect_malformed_fn "ragged trap table" (fun () ->
      Loadmap.decode_traps (Bytes.make 15 '\000'))

let test_loadmap_mappings () =
  let ms =
    [ { Loadmap.vaddr = 0x10000; file_off = 0x2000; len = 4096;
        prot = Elf_file.prot_rx };
      { Loadmap.vaddr = 0x20000; file_off = 0x2000; len = 4096;
        prot = Elf_file.prot_rx } ]
  in
  let decoded = Loadmap.decode_mappings (Loadmap.encode_mappings ms) in
  Alcotest.(check bool) "roundtrip" true (decoded = ms)

let test_loadmap_traps () =
  let ts =
    [ { Loadmap.patch_addr = 0x400123; trampoline_addr = 0x700000 };
      { Loadmap.patch_addr = 0x400456; trampoline_addr = 0x700040 } ]
  in
  let decoded = Loadmap.decode_traps (Loadmap.encode_traps ts) in
  Alcotest.(check bool) "roundtrip" true (decoded = ts)

let test_serialized_size () =
  (* serialized_size must track to_bytes exactly, including after edits —
     Rewriter relies on it for Size% without materializing the image. *)
  let elf = mk_exec () in
  let check_eq label =
    Alcotest.(check int) label
      (Bytes.length (Elf_file.to_bytes elf))
      (Elf_file.serialized_size elf)
  in
  check_eq "fresh";
  ignore
    (Elf_file.add_section elf ~name:".e9patch.tramp" ~addr:0 ~sh_type:1
       ~sh_flags:0 ~content:(Bytes.make 100 'x'));
  check_eq "after add_section";
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rw;
         vaddr = 0x600000;
         offset = 0;
         filesz = 0;
         memsz = 33;
         align = 4096 }
       ~content:(Bytes.make 33 'y'));
  check_eq "after add_segment"

let test_copy_independent () =
  let elf = mk_exec () in
  let snapshot = Elf_file.to_bytes elf in
  let c = Elf_file.copy elf in
  Alcotest.(check bytes) "copy serializes identically" snapshot
    (Elf_file.to_bytes c);
  (* Mutate the copy every way the rewriter does; the original must not
     move. *)
  c.Elf_file.entry <- 0x999;
  E9_bits.Buf.blit_in c.Elf_file.data ~pos:0 (Bytes.make 4 '\xff');
  ignore
    (Elf_file.add_section c ~name:".extra" ~addr:0 ~sh_type:1 ~sh_flags:0
       ~content:(Bytes.make 8 'z'));
  Alcotest.(check bytes) "original untouched" snapshot (Elf_file.to_bytes elf)

let test_file_io () =
  let elf = mk_exec () in
  let path = Filename.temp_file "e9test" ".elf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Elf_file.write_file elf path;
      let parsed = Elf_file.read_file path in
      Alcotest.(check int) "entry" 0x400000 parsed.Elf_file.entry)

let test_write_atomic_on_fault () =
  let elf = mk_exec () in
  let path = Filename.temp_file "e9test" ".elf" in
  Sys.remove path;
  (* An injected short-write is a typed Io_error and must leave neither
     the target nor the temporary behind. *)
  (match Elf_file.write_file ~fault:(fun () -> true) elf path with
  | () -> Alcotest.fail "expected Io_error"
  | exception Elf_file.Io_error _ -> ());
  Alcotest.(check bool) "no target file" false (Sys.file_exists path);
  Alcotest.(check bool) "no temp file" false (Sys.file_exists (path ^ ".tmp"));
  (* A subsequent clean write over the same path parses back. *)
  Elf_file.write_file elf path;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Alcotest.(check bool) "no temp after success" false
        (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check int) "entry" 0x400000 (Elf_file.read_file path).Elf_file.entry)

let test_write_replaces_existing () =
  (* The rename-over pattern must atomically replace an existing file,
     not append or fail. *)
  let elf = mk_exec () in
  let path = Filename.temp_file "e9test" ".elf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "stale garbage");
      Elf_file.write_file elf path;
      Alcotest.(check int) "replaced" 0x400000
        (Elf_file.read_file path).Elf_file.entry)

(* ------------------------------------------------------------------ *)
(* Stripped images                                                     *)
(* ------------------------------------------------------------------ *)

let expect_malformed name f =
  match f () with
  | (_ : Elf_file.t) -> Alcotest.failf "%s: expected Malformed" name
  | exception Elf_file.Malformed _ -> ()

(* A fully stripped serialization must still parse: no section table,
   segments intact, and — since nothing marks where the content ends —
   the whole image kept as content. *)
let test_stripped_roundtrip () =
  let elf = mk_exec () in
  ignore
    (Elf_file.add_section elf ~name:".text" ~addr:0x400000 ~sh_type:1
       ~sh_flags:6 ~content:(Bytes.of_string "abc"));
  let b = Elf_file.to_bytes_stripped elf in
  (* The stripped header really advertises no table at all. *)
  Alcotest.(check int) "e_shnum zeroed" 0 (Bytes.get_uint16_le b 60);
  Alcotest.(check int) "e_shentsize zeroed" 0 (Bytes.get_uint16_le b 58);
  Alcotest.(check int) "e_shstrndx zeroed" 0 (Bytes.get_uint16_le b 62);
  Alcotest.(check int64) "e_shoff zeroed" 0L (Bytes.get_int64_le b 40);
  let parsed = Elf_file.of_bytes b in
  Alcotest.(check int) "no sections survive" 0
    (List.length parsed.Elf_file.sections);
  Alcotest.(check int) "segments survive" 1
    (List.length parsed.Elf_file.segments);
  Alcotest.(check int) "entry survives" 0x400000 parsed.Elf_file.entry;
  let seg = List.hd parsed.Elf_file.segments in
  Alcotest.(check string)
    "segment content survives" "\x90\x90\xc3"
    (Bytes.to_string
       (Buf.sub parsed.Elf_file.data ~pos:seg.Elf_file.offset
          ~len:seg.Elf_file.filesz));
  Alcotest.(check int) "whole image kept as content" (Bytes.length b)
    (Buf.length parsed.Elf_file.data)

(* shnum = 0 with a nonzero e_shoff is ambiguous — there is no table to
   cut the content at, but the header claims one exists somewhere. The
   parser must refuse with a typed error rather than guess an extent. *)
let test_stripped_ambiguous_shoff () =
  let b = Elf_file.to_bytes_stripped (mk_exec ()) in
  Bytes.set_int64_le b 40 0x1000L;
  expect_malformed "shnum=0, shoff<>0" (fun () -> Elf_file.of_bytes b)

let test_shstrndx_out_of_range () =
  let b = Elf_file.to_bytes (mk_exec ()) in
  let shnum = Bytes.get_uint16_le b 60 in
  Bytes.set_uint16_le b 62 (shnum + 5);
  expect_malformed "shstrndx beyond table" (fun () -> Elf_file.of_bytes b)

let suites =
  [ ( "elf",
      [ Alcotest.test_case "header roundtrip" `Quick test_roundtrip_header;
        Alcotest.test_case "segment content" `Quick
          test_roundtrip_segment_content;
        Alcotest.test_case "alignment congruence" `Quick
          test_segment_alignment_congruence;
        Alcotest.test_case "sections roundtrip" `Quick test_sections_roundtrip;
        Alcotest.test_case "segment_at" `Quick test_segment_at;
        Alcotest.test_case "bss memsz" `Quick test_bss_memsz;
        Alcotest.test_case "rejects garbage" `Quick test_reject_garbage;
        Alcotest.test_case "loadmap mappings" `Quick test_loadmap_mappings;
        Alcotest.test_case "loadmap traps" `Quick test_loadmap_traps;
        Alcotest.test_case "serialized_size" `Quick test_serialized_size;
        Alcotest.test_case "copy independent" `Quick test_copy_independent;
        Alcotest.test_case "file io" `Quick test_file_io;
        Alcotest.test_case "faulted write is atomic" `Quick
          test_write_atomic_on_fault;
        Alcotest.test_case "write replaces existing" `Quick
          test_write_replaces_existing;
        Alcotest.test_case "stripped roundtrip" `Quick test_stripped_roundtrip;
        Alcotest.test_case "stripped ambiguous shoff" `Quick
          test_stripped_ambiguous_shoff;
        Alcotest.test_case "shstrndx out of range" `Quick
          test_shstrndx_out_of_range ] );
    ( "elf.malformed",
      [ Alcotest.test_case "truncated header" `Quick
          test_malformed_truncated_header;
        Alcotest.test_case "zero-sized phdr entries" `Quick
          test_malformed_zero_phentsize;
        Alcotest.test_case "alien shdr entries" `Quick
          test_malformed_alien_shentsize;
        Alcotest.test_case "truncated program headers" `Quick
          test_malformed_truncated_phdrs;
        Alcotest.test_case "truncated section headers" `Quick
          test_malformed_truncated_shdrs;
        Alcotest.test_case "PT_LOAD outside image" `Quick
          test_malformed_load_outside_image;
        Alcotest.test_case "memsz < filesz" `Quick test_malformed_memsz_lt_filesz;
        Alcotest.test_case "overlapping PT_LOAD" `Quick
          test_malformed_overlapping_loads;
        Alcotest.test_case "tablemeta defects" `Quick test_malformed_tablemeta;
        Alcotest.test_case "loadmap ragged records" `Quick
          test_malformed_loadmap ] ) ]

(* Tests for the E9Tool-style frontend (lib/tool): the -M/-P command
   languages, the injected instrumentation runtime, end-to-end rewrites
   checked by the static verifier and the trace oracle, jobs-invariance,
   and the plan-cache fragment identity. *)

module Tool = E9_tool.Tool
module Spec = E9_spec.Patchspec
module Trampoline = E9_core.Trampoline
module Rewriter = E9_core.Rewriter
module Static = E9_check.Static
module Trace = E9_check.Trace
module Codegen = E9_workload.Codegen
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Insn = E9_x86.Insn
module Reg = E9_x86.Reg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* The patch language                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_patch_builtins () =
  check_bool "print" true (Tool.parse_patch "print" = Tool.Print);
  check_bool "count" true (Tool.parse_patch "count" = Tool.Count);
  check_bool "trap" true (Tool.parse_patch "trap" = Tool.Trap);
  check_bool "empty" true (Tool.parse_patch "empty" = Tool.Empty);
  check_bool "lowfat" true (Tool.parse_patch "lowfat" = Tool.Lowfat);
  check_bool "whitespace tolerated" true
    (Tool.parse_patch "  count " = Tool.Count)

let test_parse_patch_calls () =
  (match Tool.parse_patch "call counter()" with
  | Tool.Call { mode = Trampoline.Clean; fn = "counter"; args = [] } -> ()
  | _ -> Alcotest.fail "bare call wrong");
  (match Tool.parse_patch "call:naked counter" with
  | Tool.Call { mode = Trampoline.Naked; fn = "counter"; args = [] } -> ()
  | _ -> Alcotest.fail "parens should be optional when empty");
  (match Tool.parse_patch "call:clean record(addr, size, 3)" with
  | Tool.Call
      { mode = Trampoline.Clean;
        fn = "record";
        args = [ Trampoline.Arg_addr; Trampoline.Arg_size; Trampoline.Arg_int 3 ]
      } ->
      ()
  | _ -> Alcotest.fail "static args wrong");
  (match Tool.parse_patch "call f(asm, instr, %rdi, rsi, 0x10)" with
  | Tool.Call
      { args =
          [ Trampoline.Arg_asm; Trampoline.Arg_instr;
            Trampoline.Arg_reg Reg.RDI; Trampoline.Arg_reg Reg.RSI;
            Trampoline.Arg_int 0x10 ];
        _ } ->
      ()
  | _ -> Alcotest.fail "asm/instr/register args wrong")

let test_parse_patch_errors () =
  let refused src =
    match Tool.parse_patch src with
    | exception Tool.Error _ -> ()
    | _ -> Alcotest.failf "expected Tool.Error for %S" src
  in
  refused "frobnicate";
  refused "call";
  refused "call:warm f()";
  refused "call f(bogusarg)";
  refused "call f(1,2,3,4,5,6,7)";
  refused "call f(1"

(* ------------------------------------------------------------------ *)
(* The match language                                                  *)
(* ------------------------------------------------------------------ *)

let site ?(addr = 0x400000) insn =
  { Frontend.addr; len = String.length (E9_x86.Encode.encode insn); insn }

let test_parse_match_basic () =
  check_bool "plain selector" true (Tool.parse_match "jumps" = Spec.Jumps);
  (match Tool.parse_match "jumps; size >= 5" with
  | Spec.And (Spec.Jumps, Spec.Size_cmp (`Ge, 5)) -> ()
  | _ -> Alcotest.fail "semicolon pieces must conjoin")

let test_parse_match_exclude () =
  let read_file name =
    check_str "filename passed through" "skip.csv" name;
    "# ranges the harness must not touch\n0x400000,0x400004\n16,32\n"
  in
  let sel = Tool.parse_match ~read_file "jumps; exclude skip.csv" in
  let jmp_at addr = site ~addr (Insn.Jmp 0) in
  check_bool "in first range: excluded" false (Spec.selects sel (jmp_at 0x400000));
  check_bool "range is half-open" true (Spec.selects sel (jmp_at 0x400004));
  check_bool "decimal range honoured" false (Spec.selects sel (jmp_at 16));
  check_bool "outside: still matches" true (Spec.selects sel (jmp_at 0x400100));
  check_bool "base selector still applies" false
    (Spec.selects sel (site ~addr:0x400100 Insn.Ret))

let test_parse_match_errors () =
  (match Tool.parse_match ~read_file:(fun _ -> "nonsense\n") "jumps; exclude x.csv" with
  | exception Tool.Error _ -> ()
  | _ -> Alcotest.fail "bad CSV line must be refused");
  (match Tool.parse_match "   " with
  | exception Tool.Error _ -> ()
  | _ -> Alcotest.fail "empty match must be refused");
  match Tool.parse_match "jumps and" with
  | exception Spec.Parse_error _ -> ()
  | _ -> Alcotest.fail "selector errors surface as Parse_error"

(* ------------------------------------------------------------------ *)
(* End to end: every builtin, statically verified + trace oracle       *)
(* ------------------------------------------------------------------ *)

let elf =
  lazy
    (Codegen.generate
       { Codegen.default_profile with
         Codegen.name = "tool-test"; seed = 7L; functions = 25; iterations = 40 })

let rewrite m p =
  let elf = Lazy.force elf in
  let rules = [ Tool.rule_of ~m ~p () ] in
  let r = Tool.run elf rules in
  (match Static.verify ~original:r.Tool.runtime.Tool.augmented r.Tool.rewrite.Rewriter.output with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "static verify (%s/%s): %a" m p Static.pp_error e);
  r

let trace_checked m p =
  let r = rewrite m p in
  (match
     Trace.compare_runs
       ~instr_ranges:r.Tool.runtime.Tool.instr_ranges
       ~original:r.Tool.runtime.Tool.augmented r.Tool.rewrite.Rewriter.output
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trace oracle (%s/%s): %s" m p e);
  r

let run_patched r = Machine.run r.Tool.rewrite.Rewriter.output

let test_print () =
  let r = trace_checked "jumps" "print" in
  let patched = run_patched r in
  check_bool "patched sites" true (E9_core.Stats.succeeded r.Tool.rewrite.Rewriter.stats > 0);
  check_bool "print lines captured" true (patched.Cpu.prints <> []);
  (* Each line is the documented "0xADDR: disasm" shape. *)
  List.iter
    (fun line ->
      check_bool (Printf.sprintf "print line %S shape" line) true
        (String.length line > 4 && String.sub line 0 2 = "0x"))
    patched.Cpu.prints

let test_count () =
  let r = trace_checked "all" "count" in
  let patched = run_patched r in
  check_bool "per-site counters fired" true (patched.Cpu.counters <> [])

let test_trap () =
  let r = trace_checked "returns" "trap" in
  let patched = run_patched r in
  check_bool "trap events observed" true (patched.Cpu.sigtraps > 0)

let test_lowfat () =
  let r = trace_checked "heap-writes" "lowfat" in
  let patched =
    Machine.run ~make_allocator:E9_lowfat.Lowfat.make_allocator
      r.Tool.rewrite.Rewriter.output
  in
  check_int "no redzone violations in a clean program" 0 patched.Cpu.violations

let test_call_clean_static_args () =
  (* The acceptance pair: a clean call trampoline with >= 3 static
     arguments, trace-oracle checked (the clean bracket keeps all guest
     state on the instrumentation-private stack). *)
  let r = trace_checked "calls" "call:clean record(addr, size, 3)" in
  check_bool "call sites diverted" true
    (E9_core.Stats.succeeded r.Tool.rewrite.Rewriter.stats > 0)

let test_call_naked () =
  (* A naked call pushes its return address on the guest stack, so the
     trace oracle would (correctly) flag the stores; the documented
     contract is behavioural equivalence. *)
  let r = rewrite "returns" "call:naked counter()" in
  let orig = Machine.run r.Tool.runtime.Tool.augmented in
  let patched = run_patched r in
  check_bool "behaviourally equivalent" true (Machine.equivalent orig patched)

let test_unknown_fn_refused () =
  let elf = Lazy.force elf in
  match Tool.run elf [ Tool.rule_of ~m:"jumps" ~p:"call frobnicate()" () ] with
  | exception Tool.Error _ -> ()
  | _ -> Alcotest.fail "unknown call target must be refused"

let test_first_match_wins () =
  let elf = Lazy.force elf in
  let rules =
    [ Tool.rule_of ~m:"jumps" ~p:"count" ();
      Tool.rule_of ~m:"all" ~p:"empty" () ]
  in
  let r = Tool.run elf rules in
  let patched = run_patched r in
  check_bool "jumps get the counter, not the later catch-all" true
    (patched.Cpu.counters <> [])

let test_jobs_invariance () =
  let elf = Lazy.force elf in
  let rules = [ Tool.rule_of ~m:"all" ~p:"print" () ] in
  let b jobs =
    Elf_file.to_bytes (Tool.run ~jobs elf rules).Tool.rewrite.Rewriter.output
  in
  check_bool "jobs 1 vs 4 byte-identical" true (Bytes.equal (b 1) (b 4))

(* ------------------------------------------------------------------ *)
(* Fragment identity (plan-cache soundness)                            *)
(* ------------------------------------------------------------------ *)

let first_patch rules s =
  List.find_opt (fun r -> Spec.selects r.Tool.selector s) rules
  |> Option.map (fun r -> r.Tool.patch)

let gen_rules =
  let open QCheck2.Gen in
  let m_of (cls, lo, hi) =
    Printf.sprintf "%s and addr >= 0x%x and addr < 0x%x" cls lo hi
  in
  let gen_rule =
    let* cls = oneofl [ "jumps"; "calls"; "returns"; "all" ] in
    let* lo = map (fun k -> 0x400000 + (k * 8)) (int_bound 256) in
    let* span = map (fun k -> (k + 1) * 8) (int_bound 128) in
    let* ranged = bool in
    let* p = oneofl [ "print"; "count"; "trap"; "empty" ] in
    return
      (Tool.rule_of ~m:(if ranged then m_of (cls, lo, lo + span) else cls) ~p ())
  in
  list_size QCheck2.Gen.(int_range 1 5) gen_rule

let prop_fragment_sound =
  QCheck2.Test.make ~count:200
    ~name:"fragment_for_range preserves first-match for in-range sites"
    ~print:(fun (rules, lo, span) ->
      Printf.sprintf "[%s] lo=0x%x span=%d" (Tool.fragment_key rules) lo span)
    QCheck2.Gen.(
      tup3 gen_rules
        (map (fun k -> 0x400000 + (k * 8)) (int_bound 256))
        (map (fun k -> (k + 1) * 8) (int_bound 128)))
    (fun (rules, lo, span) ->
      let hi = lo + span in
      let frag = Tool.fragment_for_range rules ~lo ~hi in
      let sites =
        List.concat_map
          (fun addr ->
            [ site ~addr (Insn.Jmp 0); site ~addr (Insn.Call 0);
              site ~addr Insn.Ret ])
          (List.init (span / 8) (fun i -> lo + (i * 8)))
      in
      List.for_all (fun s -> first_patch frag s = first_patch rules s) sites)

let test_spec_key_stability () =
  let rules =
    [ Tool.rule_of ~m:"jumps" ~p:"call:clean record(addr,size,3)" ();
      Tool.rule_of ~m:"all" ~p:"count" () ]
  in
  let k = Tool.spec_key rules ~text_base:0x400000 ~lo:0 ~len:0x1000 in
  check_str "deterministic" k
    (Tool.spec_key rules ~text_base:0x400000 ~lo:0 ~len:0x1000);
  let other = [ Tool.rule_of ~m:"jumps" ~p:"count" () ] in
  check_bool "different rules, different key" true
    (k <> Tool.spec_key other ~text_base:0x400000 ~lo:0 ~len:0x1000);
  (* The key covers patch semantics, not just selectors: same matcher,
     different call args must not collide. *)
  let v1 = [ Tool.rule_of ~m:"jumps" ~p:"call counter()" () ] in
  let v2 = [ Tool.rule_of ~m:"jumps" ~p:"call:naked counter()" () ] in
  check_bool "call mode reaches the key" true
    (Tool.fragment_key v1 <> Tool.fragment_key v2)

let suites =
  [ ( "tool.parse",
      [ Alcotest.test_case "patch builtins" `Quick test_parse_patch_builtins;
        Alcotest.test_case "call forms" `Quick test_parse_patch_calls;
        Alcotest.test_case "patch errors" `Quick test_parse_patch_errors;
        Alcotest.test_case "match basics" `Quick test_parse_match_basic;
        Alcotest.test_case "match: csv exclusions" `Quick test_parse_match_exclude;
        Alcotest.test_case "match errors" `Quick test_parse_match_errors ] );
    ( "tool.rewrite",
      [ Alcotest.test_case "print" `Quick test_print;
        Alcotest.test_case "count" `Quick test_count;
        Alcotest.test_case "trap" `Quick test_trap;
        Alcotest.test_case "lowfat" `Quick test_lowfat;
        Alcotest.test_case "clean call, 3 static args" `Quick
          test_call_clean_static_args;
        Alcotest.test_case "naked call" `Quick test_call_naked;
        Alcotest.test_case "unknown fn refused" `Quick test_unknown_fn_refused;
        Alcotest.test_case "first match wins" `Quick test_first_match_wins;
        Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance ] );
    ( "tool.fragment",
      [ QCheck_alcotest.to_alcotest prop_fragment_sound;
        Alcotest.test_case "spec key stability" `Quick test_spec_key_stability ]
    ) ]

(* Tests for the label-based assembler, the loader-stub emitter, and the
   ground-truth table metadata codec. *)

module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Decode = E9_x86.Decode
module Loader_stub = E9_core.Loader_stub
module Rng = E9_bits.Rng
module Iset = E9_bits.Iset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Asm                                                                 *)
(* ------------------------------------------------------------------ *)

let test_asm_forward_backward () =
  let asm = Asm.create ~base:0x1000 in
  let fwd = Asm.fresh_label asm "fwd" in
  let back = Asm.fresh_label asm "back" in
  Asm.place asm back;
  Asm.ins asm (Insn.Nop 1);
  Asm.jmp asm fwd;
  Asm.jmp asm back;
  Asm.place asm fwd;
  Asm.ins asm Insn.Ret;
  let code = Asm.assemble asm in
  (* nop(1) jmp(5) jmp(5) ret *)
  check_int "layout" 12 (Bytes.length code);
  let d1 = Decode.decode code 1 in
  (match d1.Decode.insn with
  | Insn.Jmp rel -> check_int "forward" (Asm.label_addr asm fwd) (0x1000 + 6 + rel)
  | _ -> Alcotest.fail "not a jmp");
  let d2 = Decode.decode code 6 in
  match d2.Decode.insn with
  | Insn.Jmp rel -> check_int "backward" 0x1000 (0x1000 + 11 + rel)
  | _ -> Alcotest.fail "not a jmp"

let test_asm_short_range_enforced () =
  let asm = Asm.create ~base:0 in
  let l = Asm.fresh_label asm "far" in
  Asm.jmp_short asm l;
  for _ = 1 to 200 do
    Asm.ins asm (Insn.Nop 1)
  done;
  Asm.place asm l;
  Alcotest.check_raises "short branch out of range"
    (Failure "Asm: short branch to far out of rel8 range") (fun () ->
      ignore (Asm.assemble asm))

let test_asm_unplaced_label () =
  let asm = Asm.create ~base:0 in
  let l = Asm.fresh_label asm "ghost" in
  Asm.jmp asm l;
  Alcotest.check_raises "unplaced" (Failure "Asm: label ghost not placed")
    (fun () -> ignore (Asm.assemble asm))

let test_asm_double_place () =
  let asm = Asm.create ~base:0 in
  let l = Asm.fresh_label asm "l" in
  Asm.place asm l;
  Alcotest.check_raises "double place" (Failure "Asm: label l placed twice")
    (fun () -> Asm.place asm l)

let test_asm_lea_label () =
  let asm = Asm.create ~base:0x2000 in
  let data = Asm.fresh_label asm "data" in
  Asm.lea_label asm Reg.RSI data;
  Asm.ins asm Insn.Ret;
  Asm.place asm data;
  Asm.ins_raw asm "xyz";
  let code = Asm.assemble asm in
  match (Decode.decode code 0).Decode.insn with
  | Insn.Lea (Reg.RSI, m) ->
      check_bool "rip relative" true m.Insn.rip_rel;
      check_int "resolves to data" (Asm.label_addr asm data)
        (0x2000 + 7 + m.Insn.disp)
  | _ -> Alcotest.fail "not a lea"

(* ------------------------------------------------------------------ *)
(* Loader stub emission                                                *)
(* ------------------------------------------------------------------ *)

let test_stub_decodes_cleanly () =
  let mappings =
    [ { Loadmap.vaddr = 0x10000; file_off = 0x5000; len = 8192;
        prot = Elf_file.prot_rx };
      { Loadmap.vaddr = 0x30000; file_off = 0x5000; len = 4096;
        prot = Elf_file.prot_rx } ]
  in
  let stub =
    Loader_stub.emit ~vaddr:Loader_stub.home ~mappings ~real_entry:0x400000
  in
  check_bool "entry inside segment" true
    (stub.Loader_stub.entry >= Loader_stub.home
    && stub.Loader_stub.entry
       < Loader_stub.home + Bytes.length stub.Loader_stub.content);
  (* The path string comes first. *)
  check_bool "path string present" true
    (Bytes.sub_string stub.Loader_stub.content 0
       (String.length E9_emu.Cpu.self_exe_path)
    = E9_emu.Cpu.self_exe_path);
  (* Every stub instruction decodes; it contains the openat/mmap/close
     syscalls and ends with an indirect jump through the 8-byte entry slot
     that trails the code. *)
  let code_off = stub.Loader_stub.entry - Loader_stub.home in
  let code =
    Bytes.sub stub.Loader_stub.content code_off
      (Bytes.length stub.Loader_stub.content - code_off - 8)
  in
  let insns =
    Decode.linear code ~pos:0 ~len:(Bytes.length code)
    |> List.map (fun (_, d) -> d.Decode.insn)
  in
  check_bool "no undecodable bytes" true
    (List.for_all (function Insn.Unknown _ -> false | _ -> true) insns);
  check_int "three syscalls" 3
    (List.length (List.filter (fun i -> i = Insn.Syscall) insns));
  (* Register transparency: everything the stub writes it restores. *)
  check_int "pushes balance pops" 0
    (List.fold_left
       (fun n i ->
         match i with Insn.Push _ -> n + 1 | Insn.Pop _ -> n - 1 | _ -> n)
       0 insns);
  (match List.rev insns with
  | Insn.Jmp_ind (Insn.Mem m) :: _ ->
      check_bool "terminal jump reads the entry slot" true
        (m.Insn.rip_rel && m.Insn.disp = 0)
  | _ -> Alcotest.fail "stub must end with an indirect jump");
  check_bool "entry slot holds the real entry" true
    (Bytes.get_int64_le stub.Loader_stub.content
       (Bytes.length stub.Loader_stub.content - 8)
    = 0x400000L)

(* ------------------------------------------------------------------ *)
(* Tablemeta codec                                                     *)
(* ------------------------------------------------------------------ *)

let test_tablemeta_roundtrip () =
  let tables =
    [ { Tablemeta.addr = 0x40e000; kind = Tablemeta.Abs64; entries = 4 };
      { Tablemeta.addr = 0x40e020; kind = Tablemeta.Off32 0x400000; entries = 3 } ]
  in
  check_bool "roundtrip" true
    (Tablemeta.decode (Tablemeta.encode tables) = tables)

(* ------------------------------------------------------------------ *)
(* Strided interval search                                             *)
(* ------------------------------------------------------------------ *)

let prop_find_free_strided_model =
  QCheck.Test.make ~name:"Iset.find_free_strided agrees with naive model"
    ~count:400
    QCheck.(
      pair
        (small_list (pair (int_bound 300) (int_range 1 25)))
        (quad (int_range 1 8) (int_bound 300) (int_bound 300) (int_range 1 16)))
    (fun (adds, (size, lo, hi, stride)) ->
      let size = max 1 size and stride = max 1 stride in
      let s = Iset.create () in
      let model = Array.make 400 false in
      List.iter
        (fun (start, len) ->
          Iset.add s ~lo:start ~hi:(start + len);
          for i = start to min 399 (start + len - 1) do
            model.(i) <- true
          done)
        adds;
      let naive () =
        let result = ref None in
        (try
           let pos = ref lo in
           while !pos <= hi do
             let ok = ref true in
             for i = !pos to !pos + size - 1 do
               if i < 400 && model.(i) then ok := false
             done;
             if !ok then begin
               result := Some !pos;
               raise Exit
             end;
             pos := !pos + stride
           done
         with Exit -> ());
        !result
      in
      Iset.find_free_strided s ~size ~lo ~hi ~stride = naive ())

let suites =
  [ ( "x86.asm",
      [ Alcotest.test_case "forward/backward labels" `Quick
          test_asm_forward_backward;
        Alcotest.test_case "short range enforced" `Quick
          test_asm_short_range_enforced;
        Alcotest.test_case "unplaced label" `Quick test_asm_unplaced_label;
        Alcotest.test_case "double place" `Quick test_asm_double_place;
        Alcotest.test_case "lea of label" `Quick test_asm_lea_label ] );
    ( "core.loader_stub_unit",
      [ Alcotest.test_case "stub decodes cleanly" `Quick
          test_stub_decodes_cleanly;
        Alcotest.test_case "tablemeta roundtrip" `Quick test_tablemeta_roundtrip
      ] );
    ( "bits.strided",
      [ QCheck_alcotest.to_alcotest prop_find_free_strided_model ] ) ]

(* The robustness corpus as a regression wall: every adversarial family
   must keep passing its pinned expectations (floor, verifier verdicts,
   jobs invariance, family ground truth). The corpus is scored once and
   shared across cases, so the suite costs one campaign run. *)

module Matrix = E9_check.Matrix
module Adversary = E9_workload.Adversary
module Codegen = E9_workload.Codegen
module Stats = E9_core.Stats
module Obs = E9_obs.Obs

let check_bool = Alcotest.(check bool)

let scores = lazy (Matrix.run ())

let score name =
  match
    List.find_opt
      (fun (s : Matrix.score) -> s.Matrix.family.Adversary.name = name)
      (Lazy.force scores)
  with
  | Some s -> s
  | None -> Alcotest.failf "family %S missing from the corpus" name

(* One test case per family, each named after the family, so a CI failure
   names the family that regressed without reading the matrix. *)
let test_family name () =
  match Matrix.verdict (score name) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e

let test_corpus_shape () =
  let n = List.length Adversary.families in
  check_bool "at least 8 families scored" true (n >= 8);
  check_bool "family names unique" true
    (List.length
       (List.sort_uniq compare
          (List.map (fun f -> f.Adversary.name) Adversary.families))
    = n);
  (* Both patch-site selectors and both header regimes are represented. *)
  let some p = List.exists p Adversary.families in
  check_bool "a heap-write family exists" true
    (some (fun f -> f.Adversary.selector = Adversary.Heap_writes));
  check_bool "a stripped family exists" true (some (fun f -> f.Adversary.strip));
  check_bool "a PIE family exists" true
    (some (fun f -> f.Adversary.profile.Codegen.pie));
  check_bool "a DSO family exists" true
    (some (fun f -> f.Adversary.profile.Codegen.shared_object))

(* The acceptance criterion behind [expect_pressure]: the tiny-insn strip
   demonstrably starves the jump-tactic ladder — sites fall through to
   T3 chains and some land on the B0 trap fallback. *)
let test_starvation () =
  let s = score "tiny-runs" in
  check_bool "tiny-runs drives sites to T3" true (s.Matrix.stats.Stats.t3 > 0);
  check_bool "tiny-runs drives sites to B0" true (s.Matrix.stats.Stats.b0 > 0);
  (* The reject histogram explains the fallthrough in typed terms: the
     dead-window reason (structurally unservable rel8 windows) fires.
     Index 8 = Dead_window, pinned by the test_obs enum golden. *)
  let dead = s.Matrix.agg.Obs.Agg.rejected.(8) in
  check_bool "typed dead-window rejects recorded" true (dead > 0)

let test_islands_ground_truth () =
  let f =
    match Adversary.find "islands" with
    | Some f -> f
    | None -> Alcotest.fail "islands family missing"
  in
  let elf = Codegen.generate f.Adversary.profile in
  let islands = Codegen.islands elf in
  check_bool "islands family embeds data islands" true (islands <> []);
  List.iter
    (fun (addr, len) ->
      check_bool "island addr positive" true (addr > 0);
      check_bool "island len positive" true (len > 0))
    islands;
  (* And the scored run kept every island byte intact. *)
  check_bool "islands preserved" true (score "islands").Matrix.islands_kept

let test_whole_corpus_passes () =
  let failing =
    List.filter (fun s -> not (Matrix.passed s)) (Lazy.force scores)
  in
  check_bool "every family passes" true (failing = [])

let suites =
  [ ( "robust",
      List.map
        (fun (f : Adversary.family) ->
          Alcotest.test_case ("family " ^ f.Adversary.name) `Slow
            (test_family f.Adversary.name))
        Adversary.families
      @ [ Alcotest.test_case "corpus shape" `Quick test_corpus_shape;
          Alcotest.test_case "tiny-runs starves the ladder" `Slow
            test_starvation;
          Alcotest.test_case "islands ground truth" `Slow
            test_islands_ground_truth;
          Alcotest.test_case "whole corpus passes" `Slow
            test_whole_corpus_passes ] ) ]

(* Tests for the patch-specification language. *)

module Spec = E9_spec.Patchspec
module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Codegen = E9_workload.Codegen
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rewriter = E9_core.Rewriter

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let site ?(addr = 0x400000) insn =
  { Frontend.addr; len = String.length (E9_x86.Encode.encode insn); insn }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_basic () =
  let spec = Spec.parse "patch jumps with counter" in
  check_int "one rule" 1 (List.length spec);
  match spec with
  | [ { Spec.selector = Spec.Jumps; template = Spec.Counter } ] -> ()
  | _ -> Alcotest.fail "wrong parse"

let test_parse_multiline_and_comments () =
  let spec =
    Spec.parse
      {|# hardening policy
patch heap-writes with lowfat   # writes
patch jumps and size >= 5 with counter; patch returns with empty
|}
  in
  check_int "three rules" 3 (List.length spec)

let test_parse_precedence () =
  (* or binds loosest: a and b or c = (a and b) or c *)
  let spec = Spec.parse "patch jumps and size >= 5 or calls with empty" in
  match spec with
  | [ { Spec.selector = Spec.Or (Spec.And (Spec.Jumps, Spec.Size_cmp (`Ge, 5)), Spec.Calls);
        _ } ] ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_parens_and_not () =
  let spec = Spec.parse "patch not (jumps or calls) with empty" in
  match spec with
  | [ { Spec.selector = Spec.Not (Spec.Or (Spec.Jumps, Spec.Calls)); _ } ] -> ()
  | _ -> Alcotest.fail "parens wrong"

let test_parse_hex_address () =
  match Spec.parse "patch address 0x400026 with empty" with
  | [ { Spec.selector = Spec.Addr_cmp (`Eq, 0x400026); _ } ] -> ()
  | _ -> Alcotest.fail "hex address wrong"

let test_parse_errors_have_positions () =
  let fails_at line col src =
    try
      ignore (Spec.parse src);
      Alcotest.failf "expected parse error for %S" src
    with Spec.Parse_error { line = l; col = c; _ } ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "position of error in %S" src)
        (line, col) (l, c)
  in
  fails_at 1 7 "patch bogus with empty";
  fails_at 1 18 "patch jumps with trampoline";
  fails_at 2 7 "patch jumps with empty\npatch ? with empty";
  fails_at 1 13 "patch size >! 5 with empty"

(* Rules can be packed several to a line with [;]: the reported position
   must still be the exact line and column of the offending token, not
   the start of the rule or of the line. *)
let test_parse_errors_multiline_semicolons () =
  let fails_at line col src =
    try
      ignore (Spec.parse src);
      Alcotest.failf "expected parse error for %S" src
    with Spec.Parse_error { line = l; col = c; _ } ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "position of error in %S" src)
        (line, col) (l, c)
  in
  fails_at 1 31 "patch jumps with empty; patch bogus with empty";
  fails_at 2 33
    "patch jumps with empty\npatch calls with counter; patch frobs with empty";
  fails_at 2 13 "patch jumps with empty;\npatch size >! 3 with empty";
  fails_at 1 42 "patch jumps with empty; patch calls with zzz\npatch all with empty";
  fails_at 1 35 "patch addr >= 0x400000 and addr < with empty"

let test_pp_roundtrip () =
  let src =
    "patch jumps and not returns with counter\n\
     patch (heap-writes or calls) and size <= 4 with lowfat\n\
     patch address 0x1234 with empty\n"
  in
  let spec = Spec.parse src in
  let printed = Format.asprintf "%a" Spec.pp spec in
  check_bool "pp reparses to same spec" true (Spec.parse printed = spec)

(* ------------------------------------------------------------------ *)
(* Property: parse_selector ∘ pp_selector = id over random trees       *)
(* ------------------------------------------------------------------ *)

let gen_selector =
  let open QCheck2.Gen in
  let cmp = oneofl [ `Ge; `Le; `Eq; `Lt; `Gt; `Ne ] in
  let reg = oneofl [ Reg.RAX; Reg.RBX; Reg.RSP; Reg.RDI; Reg.R8; Reg.R11 ] in
  let opi = int_bound 3 in
  let defattr =
    oneof
      [ return Spec.D_target;
        map (fun i -> Spec.D_op i) opi;
        map (fun i -> Spec.D_op_reg i) opi;
        map (fun i -> Spec.D_op_imm i) opi;
        map (fun i -> Spec.D_op_mem i) opi ]
  in
  let leaf =
    oneof
      [ oneofl [ Spec.Jumps; Spec.Heap_writes; Spec.Calls; Spec.Returns; Spec.All ];
        map (fun m -> Spec.Mnemonic m)
          (oneofl [ "mov"; "add"; "jmp"; "call"; "ret"; "push" ]);
        map2 (fun c n -> Spec.Size_cmp (c, n)) cmp (int_bound 15);
        map2 (fun c n -> Spec.Addr_cmp (c, 0x400000 + n)) cmp (int_bound 0xffff);
        map2 (fun c n -> Spec.Target_cmp (c, 0x400000 + n)) cmp (int_bound 0xffff);
        map2 (fun i k -> Spec.Op_type (i, k)) opi (oneofl [ `Reg; `Imm; `Mem ]);
        map2 (fun i r -> Spec.Op_reg (i, r)) opi reg;
        map3 (fun i c n -> Spec.Op_imm_cmp (i, c, n)) opi cmp (int_bound 0xff);
        map (fun r -> Spec.Reg_used r) reg;
        map (fun d -> Spec.Defined d) defattr ]
  in
  let rec tree n =
    if n <= 0 then leaf
    else
      oneof
        [ leaf;
          map2 (fun a b -> Spec.And (a, b)) (tree (n / 2)) (tree (n / 2));
          map2 (fun a b -> Spec.Or (a, b)) (tree (n / 2)) (tree (n / 2));
          map (fun a -> Spec.Not a) (tree (n - 1)) ]
  in
  int_bound 6 >>= tree

let prop_pp_parse_id =
  QCheck2.Test.make ~count:500 ~name:"parse_selector ∘ pp_selector = id"
    ~print:(fun sel -> Format.asprintf "%a" Spec.pp_selector sel)
    gen_selector
    (fun sel ->
      Spec.parse_selector (Format.asprintf "%a" Spec.pp_selector sel) = sel)

(* ------------------------------------------------------------------ *)
(* Property: fragment_for_range is sound for in-range sites            *)
(* ------------------------------------------------------------------ *)

(* The incremental plan cache keys each chunk by the spec fragment that
   can reach it (DESIGN.md §14). Soundness is: for every site whose
   address lies in the chunk, first-match template selection on the
   fragment agrees with the full spec — whatever mix of address-range
   guards, negations and attribute selectors the rules use. *)
let gen_spec =
  let open QCheck2.Gen in
  let gen_rule =
    let* sel = gen_selector in
    let* t = oneofl [ Spec.Empty; Spec.Counter; Spec.Lowfat ] in
    return { Spec.selector = sel; template = t }
  in
  list_size (int_range 1 5) gen_rule

let prop_fragment_for_range_sound =
  QCheck2.Test.make ~count:300
    ~name:"fragment_for_range: template_for agrees on in-range sites"
    ~print:(fun (spec, lo_k, span_k) ->
      Format.asprintf "lo=+0x%x span=%d %a" (lo_k * 8) span_k Spec.pp spec)
    QCheck2.Gen.(tup3 gen_spec (int_bound 0x2000) (int_range 1 64))
    (fun (spec, lo_k, span_k) ->
      let lo = 0x400000 + (lo_k * 8) and span = span_k * 8 in
      let frag = Spec.fragment_for_range spec ~lo ~hi:(lo + span) in
      let sites =
        List.concat_map
          (fun i ->
            let addr = lo + (i * 8) in
            [ site ~addr (Insn.Jmp 0); site ~addr (Insn.Call 0);
              site ~addr Insn.Ret;
              site ~addr
                (Insn.Mov
                   ( Insn.Q,
                     Insn.Mem (Insn.mem ~base:Reg.RBX ()),
                     Insn.Reg Reg.RAX )) ])
          (List.init span_k Fun.id)
      in
      List.for_all
        (fun s -> Spec.template_for frag s = Spec.template_for spec s)
        sites)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let jmp = site (Insn.Jmp 0)
let call = site (Insn.Call 0)
let ret = site Insn.Ret

let store =
  site (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RBX ()), Insn.Reg Reg.RAX))

let test_selectors () =
  let sel s = Spec.selects (List.hd (Spec.parse ("patch " ^ s ^ " with empty"))).Spec.selector in
  check_bool "jumps+" true (sel "jumps" jmp);
  check_bool "jumps-" false (sel "jumps" call);
  check_bool "calls" true (sel "calls" call);
  check_bool "returns" true (sel "returns" ret);
  check_bool "heap-writes" true (sel "heap-writes" store);
  check_bool "size" true (sel "size = 1" ret);
  check_bool "mnemonic" true (sel "mnemonic mov" store);
  check_bool "address" true (sel "address 0x400000" jmp);
  check_bool "and" false (sel "jumps and size >= 6" jmp);
  check_bool "not" true (sel "not jumps" ret);
  check_bool "all" true (sel "all" ret)

let test_first_match_wins () =
  let spec =
    Spec.parse "patch jumps with counter\npatch all with lowfat"
  in
  check_bool "jump gets counter" true
    (Spec.template_for spec jmp = Some Spec.Counter);
  check_bool "ret falls through to all" true
    (Spec.template_for spec ret = Some Spec.Lowfat)

(* ------------------------------------------------------------------ *)
(* End to end                                                          *)
(* ------------------------------------------------------------------ *)

let test_spec_drives_rewriter () =
  let prof =
    { Codegen.default_profile with
      Codegen.seed = 21L; functions = 40; iterations = 80 }
  in
  let elf = Codegen.generate prof in
  let orig = Machine.run ~make_allocator:E9_lowfat.Lowfat.make_allocator elf in
  let spec =
    Spec.parse "patch heap-writes with lowfat\npatch jumps with counter"
  in
  let select, template = Spec.to_rewriter_args spec in
  let r = Rewriter.run elf ~select ~template in
  let patched =
    Machine.run ~make_allocator:E9_lowfat.Lowfat.make_allocator
      r.Rewriter.output
  in
  check_bool "equivalent" true (Machine.equivalent orig patched);
  check_bool "counters fired (jumps)" true (patched.Cpu.counters <> []);
  check_int "no violations (lowfat active)" 0 patched.Cpu.violations

let suites =
  [ ( "spec.parse",
      [ Alcotest.test_case "basic" `Quick test_parse_basic;
        Alcotest.test_case "multiline + comments" `Quick
          test_parse_multiline_and_comments;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "parens/not" `Quick test_parse_parens_and_not;
        Alcotest.test_case "hex address" `Quick test_parse_hex_address;
        Alcotest.test_case "errors with positions" `Quick
          test_parse_errors_have_positions;
        Alcotest.test_case "errors: multi-line ;-separated" `Quick
          test_parse_errors_multiline_semicolons;
        Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
        QCheck_alcotest.to_alcotest prop_pp_parse_id;
        QCheck_alcotest.to_alcotest prop_fragment_for_range_sound ] );
    ( "spec.eval",
      [ Alcotest.test_case "selectors" `Quick test_selectors;
        Alcotest.test_case "first match wins" `Quick test_first_match_wins;
        Alcotest.test_case "drives the rewriter" `Quick
          test_spec_drives_rewriter ] ) ]

(* Tests for the relocating baseline rewriter — and for the comparison the
   paper draws between moving rewriters (fast but fragile, needing control
   flow recovery) and E9Patch (control-flow agnostic). *)

module Buf = E9_bits.Buf
module Reloc = E9_reloc.Reloc
module Codegen = E9_workload.Codegen
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rewriter = E9_core.Rewriter
module Trampoline = E9_core.Trampoline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let profile ?(pic = 0.4) seed =
  { Codegen.default_profile with
    Codegen.seed; functions = 40; iterations = 60; pic_table_bias = pic }

let run = Machine.run
let reloc ?cfg elf = Reloc.run ?cfg elf ~select:Frontend.select_jumps

let test_ground_truth_equivalent () =
  for s = 1 to 5 do
    let elf = Codegen.generate (profile (Int64.of_int s)) in
    let orig = run elf in
    let r = reloc elf in
    check_int "all tables rewritten" r.Reloc.tables_total r.Reloc.tables_rewritten;
    check_bool "equivalent" true (Machine.equivalent orig (run r.Reloc.output))
  done

let test_inline_is_cheaper_than_trampolines () =
  (* The §6.1 comparison: when control flow recovery succeeds, inlined
     instrumentation beats trampoline round-trips; E9Patch trades that
     performance for robustness. *)
  let elf = Codegen.generate (profile 7L) in
  let orig = run elf in
  let inline = run (reloc elf).Reloc.output in
  let e9 =
    Rewriter.run elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Counter)
  in
  let tramp = run e9.E9_core.Rewriter.output in
  check_bool "both equivalent" true
    (Machine.equivalent orig inline && Machine.equivalent orig tramp);
  check_bool "inline cheaper" true (inline.Cpu.cycles < tramp.Cpu.cycles);
  (* both count the same dynamic jump executions *)
  let hits r = List.fold_left (fun a (_, n) -> a + n) 0 r.Cpu.counters in
  check_int "same dynamic counts" (hits inline) (hits tramp)

let test_heuristic_finds_absolute_tables () =
  (* With only absolute tables, the pointer-scan heuristic is sufficient. *)
  let elf = Codegen.generate (profile ~pic:0.0 11L) in
  let orig = run elf in
  let r = reloc ~cfg:Reloc.Heuristic elf in
  (* The scan may merge adjacent tables into one run, so the *record*
     count can be lower; what matters is that every entry is rewritten
     and behaviour is preserved. *)
  check_bool "found tables" true (r.Reloc.tables_rewritten > 0);
  check_bool "equivalent" true (Machine.equivalent orig (run r.Reloc.output))

let test_heuristic_breaks_on_pic_tables () =
  (* PIC-style tables are invisible to the scan; the relocated binary
     jumps into the trapped old text and crashes. E9Patch on the same
     binary is untroubled. *)
  let elf = Codegen.generate (profile ~pic:1.0 12L) in
  let orig = run elf in
  let r = reloc ~cfg:Reloc.Heuristic elf in
  check_bool "tables were missed" true
    (r.Reloc.tables_rewritten < r.Reloc.tables_total);
  (match (run r.Reloc.output).Cpu.outcome with
  | Cpu.Fault (_, _) -> ()
  | o ->
      Alcotest.failf "expected a crash, got %s"
        (match o with Cpu.Exited n -> Printf.sprintf "exit %d" n | _ -> "?"));
  let e9 =
    Rewriter.run elf ~select:Frontend.select_jumps
      ~template:(fun _ -> Trampoline.Empty)
  in
  check_bool "E9Patch is control-flow agnostic" true
    (Machine.equivalent orig (run e9.E9_core.Rewriter.output))

let test_prob_mode_extremes () =
  let elf = Codegen.generate (profile 13L) in
  let orig = run elf in
  let perfect = reloc ~cfg:(Reloc.Heuristic_prob (1.0, 1L)) elf in
  check_bool "p=1 equivalent" true
    (Machine.equivalent orig (run perfect.Reloc.output));
  let blind = reloc ~cfg:(Reloc.Heuristic_prob (0.0, 1L)) elf in
  check_int "p=0 finds nothing" 0 blind.Reloc.tables_rewritten;
  check_bool "p=0 breaks" false
    (Machine.equivalent orig (run blind.Reloc.output))

let test_old_text_trapped_and_entry_moved () =
  let elf = Codegen.generate (profile 14L) in
  let r = reloc elf in
  let out = r.Reloc.output in
  check_bool "entry moved" true (out.Elf_file.entry <> elf.Elf_file.entry);
  let text = Option.get (Frontend.find_text out) in
  check_int "old entry is a trap" 0xcc
    (Buf.get_u8 out.Elf_file.data
       (text.Frontend.offset + elf.Elf_file.entry - text.Frontend.base))

(* ------------------------------------------------------------------ *)
(* Typed failure paths: a binary the relocator cannot handle must raise
   [Reloc.Error], never a bare [Failure]/[Not_found].                  *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled executable: [code] in one rx segment, plus an optional
   ground-truth table record. *)
let mk_raw ?table code =
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:0x400000 in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rx;
         vaddr = 0x400000;
         offset = 0;
         filesz = 0;
         memsz = String.length code;
         align = 4096 }
       ~content:(Bytes.of_string code));
  Option.iter
    (fun t ->
      ignore
        (Elf_file.add_section elf ~name:Tablemeta.section_name ~addr:0
           ~sh_type:1 ~sh_flags:0 ~content:(Tablemeta.encode [ t ])))
    table;
  elf

let expect_reloc_error label elf =
  match Reloc.run elf ~select:(fun _ -> false) with
  | _ -> Alcotest.failf "%s: expected Reloc.Error" label
  | exception Reloc.Error _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Reloc.Error, got %s" label
        (Printexc.to_string e)

let test_error_unknown_byte () =
  (* 0x06 is not an x86-64 instruction; linear disassembly yields an
     opaque byte the relocator cannot move. *)
  Alcotest.check_raises "undecodable byte"
    (Reloc.Error "cannot relocate byte 0x06") (fun () ->
      ignore (mk_raw "\x06\xc3" |> Reloc.run ~select:(fun _ -> false)))

let test_error_table_outside_segments () =
  expect_reloc_error "table in no PT_LOAD"
    (mk_raw "\x90\xc3"
       ~table:{ Tablemeta.addr = 0x10; kind = Tablemeta.Abs64; entries = 1 })

let test_error_table_past_segment_end () =
  expect_reloc_error "table overruns its segment"
    (mk_raw "\x90\xc3"
       ~table:{ Tablemeta.addr = 0x400000; kind = Tablemeta.Abs64; entries = 10000 })

let test_uninstrumented_relocation () =
  (* Pure relocation (no instrumentation) is also behaviour-preserving. *)
  let elf = Codegen.generate (profile 15L) in
  let orig = run elf in
  let r = Reloc.run elf ~select:(fun _ -> false) in
  check_int "nothing instrumented" 0 r.Reloc.instrumented;
  check_bool "equivalent" true (Machine.equivalent orig (run r.Reloc.output))

let suites =
  [ ( "reloc",
      [ Alcotest.test_case "ground truth equivalent" `Quick
          test_ground_truth_equivalent;
        Alcotest.test_case "inline cheaper than trampolines" `Quick
          test_inline_is_cheaper_than_trampolines;
        Alcotest.test_case "heuristic finds absolute tables" `Quick
          test_heuristic_finds_absolute_tables;
        Alcotest.test_case "heuristic breaks on PIC tables" `Quick
          test_heuristic_breaks_on_pic_tables;
        Alcotest.test_case "probability extremes" `Quick test_prob_mode_extremes;
        Alcotest.test_case "old text trapped, entry moved" `Quick
          test_old_text_trapped_and_entry_moved;
        Alcotest.test_case "pure relocation" `Quick test_uninstrumented_relocation;
        Alcotest.test_case "typed error: unknown byte" `Quick
          test_error_unknown_byte;
        Alcotest.test_case "typed error: table outside segments" `Quick
          test_error_table_outside_segments;
        Alcotest.test_case "typed error: table overruns segment" `Quick
          test_error_table_past_segment_end ] ) ]

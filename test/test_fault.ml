(* Tests for E9_fault: spec parsing, trigger semantics, fork/merge. *)

module Fault = E9_fault.Fault

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* parse / to_string                                                   *)
(* ------------------------------------------------------------------ *)

let test_parse_forms () =
  let rules = Fault.parse "alloc@3,b0alloc@5+,trace%2,decode@0x400" in
  Alcotest.(check string)
    "round-trips" "alloc@3,b0alloc@5+,trace%2,decode@1024"
    (Fault.to_string rules);
  check_int "four rules" 4 (List.length rules)

let test_parse_whitespace_and_case () =
  let rules = Fault.parse " Alloc@1 , WRITE@0 " in
  Alcotest.(check string)
    "normalized" "alloc@1,write@0" (Fault.to_string rules)

let test_parse_errors () =
  let bad spec =
    match Fault.parse spec with
    | _ -> Alcotest.failf "accepted %S" spec
    | exception Fault.Parse_error _ -> ()
  in
  check_int "empty spec = no rules" 0 (List.length (Fault.parse ""));
  bad "alloc";
  bad "alloc@";
  bad "alloc@x";
  bad "nosuchsite@3";
  bad "alloc%0";
  bad "alloc@3,"

let test_site_names_bijective () =
  Array.iter
    (fun s ->
      Alcotest.(check (option bool))
        (Fault.site_name s) (Some true)
        (Option.map (fun s' -> s' = s) (Fault.site_of_name (Fault.site_name s))))
    Fault.sites

(* ------------------------------------------------------------------ *)
(* trigger semantics                                                   *)
(* ------------------------------------------------------------------ *)

(* Drive [fires] n times and collect which occurrences fired. *)
let fired_occurrences t site n =
  List.filter_map
    (fun i -> if Fault.fires t site then Some i else None)
    (List.init n Fun.id)

let test_trigger_at () =
  let t = Fault.create (Fault.parse "alloc@3") in
  Alcotest.(check (list int))
    "only occurrence 3" [ 3 ]
    (fired_occurrences t Fault.Alloc 8);
  check_int "fired count" 1 (Fault.fired t Fault.Alloc)

let test_trigger_from () =
  let t = Fault.create (Fault.parse "write@2+") in
  Alcotest.(check (list int))
    "2 and onward" [ 2; 3; 4; 5 ]
    (fired_occurrences t Fault.Write 6)

let test_trigger_every () =
  let t = Fault.create (Fault.parse "trace%3") in
  Alcotest.(check (list int))
    "multiples of 3" [ 0; 3; 6 ]
    (fired_occurrences t Fault.Trace 8)

let test_sites_independent () =
  let t = Fault.create (Fault.parse "alloc@0") in
  check_bool "other sites never fire" false (Fault.fires t Fault.Write);
  check_bool "alloc occurrence 0 fires" true (Fault.fires t Fault.Alloc);
  check_bool "alloc occurrence 1 does not" false (Fault.fires t Fault.Alloc)

let test_fires_at_keyed () =
  let t = Fault.create (Fault.parse "shard@2") in
  check_bool "key 1" false (Fault.fires_at t Fault.Shard ~key:1);
  check_bool "key 2" true (Fault.fires_at t Fault.Shard ~key:2);
  (* keyed matching never consumes occurrence counts *)
  check_bool "key 2 again" true (Fault.fires_at t Fault.Shard ~key:2)

let test_decode_cut () =
  Alcotest.(check (option int))
    "no decode rule" None
    (Fault.decode_cut (Fault.create (Fault.parse "alloc@1")));
  Alcotest.(check (option int))
    "min over rules" (Some 0x80)
    (Fault.decode_cut (Fault.create (Fault.parse "decode@0x100,decode@0x80")))

let test_none_is_inert () =
  check_bool "is_none" true (Fault.is_none Fault.none);
  for _ = 1 to 50 do
    Array.iter
      (fun s -> check_bool "never fires" false (Fault.fires Fault.none s))
      Fault.sites
  done;
  check_int "nothing recorded" 0 (Fault.fired_total Fault.none)

(* ------------------------------------------------------------------ *)
(* fork / merge                                                        *)
(* ------------------------------------------------------------------ *)

let test_fork_fresh_counters () =
  let t = Fault.create (Fault.parse "alloc@0") in
  check_bool "parent occurrence 0" true (Fault.fires t Fault.Alloc);
  let f = Fault.fork t in
  (* The fork restarts counting: its occurrence 0 fires again. *)
  check_bool "fork occurrence 0" true (Fault.fires f Fault.Alloc);
  check_bool "fork occurrence 1" false (Fault.fires f Fault.Alloc)

let test_merge_accumulates () =
  let t = Fault.create (Fault.parse "alloc@0+") in
  let a = Fault.fork t and b = Fault.fork t in
  for _ = 1 to 3 do
    ignore (Fault.fires a Fault.Alloc)
  done;
  for _ = 1 to 2 do
    ignore (Fault.fires b Fault.Alloc)
  done;
  Fault.merge_into ~dst:t a;
  Fault.merge_into ~dst:t b;
  check_int "fired totals add" 5 (Fault.fired t Fault.Alloc);
  check_int "total across sites" 5 (Fault.fired_total t)

(* Fork/merge must commute with a serial run of the same per-shard query
   sequences: the merged counters depend only on the sequences, not on
   interleaving. *)
let prop_fork_merge_deterministic =
  QCheck.Test.make ~name:"Fault fork/merge totals match serial replay"
    ~count:200
    QCheck.(pair (int_range 0 20) (small_list (int_bound 15)))
    (fun (at, shard_queries) ->
      let rules = [ { Fault.site = Fault.Alloc; trigger = Fault.At at } ] in
      let run order =
        let t = Fault.create rules in
        let forks =
          List.map
            (fun n ->
              let f = Fault.fork t in
              for _ = 1 to n do
                ignore (Fault.fires f Fault.Alloc)
              done;
              f)
            order
        in
        List.iter (fun f -> Fault.merge_into ~dst:t f) forks;
        Fault.fired t Fault.Alloc
      in
      run shard_queries = run (List.rev shard_queries)
      || QCheck.Test.fail_report "merge order changed the fired total")

let suites =
  [ ( "fault",
      [ Alcotest.test_case "parse forms" `Quick test_parse_forms;
        Alcotest.test_case "parse whitespace/case" `Quick
          test_parse_whitespace_and_case;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "site names bijective" `Quick
          test_site_names_bijective;
        Alcotest.test_case "trigger @N" `Quick test_trigger_at;
        Alcotest.test_case "trigger @N+" `Quick test_trigger_from;
        Alcotest.test_case "trigger %N" `Quick test_trigger_every;
        Alcotest.test_case "sites independent" `Quick test_sites_independent;
        Alcotest.test_case "keyed fires_at" `Quick test_fires_at_keyed;
        Alcotest.test_case "decode cut" `Quick test_decode_cut;
        Alcotest.test_case "none is inert" `Quick test_none_is_inert;
        Alcotest.test_case "fork fresh counters" `Quick
          test_fork_fresh_counters;
        Alcotest.test_case "merge accumulates" `Quick test_merge_accumulates;
        QCheck_alcotest.to_alcotest prop_fork_merge_deterministic ] ) ]

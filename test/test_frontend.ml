(* Tests for the disassembler frontend: text location (section vs. segment
   fallback), the [?from] sweep restriction, site geometry, and the two
   patch-location selectors. *)

module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Codegen = E9_workload.Codegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let elf () =
  Codegen.generate { Codegen.default_profile with Codegen.seed = 91L }

let test_find_text_prefers_section () =
  let elf = elf () in
  let text = Option.get (Frontend.find_text elf) in
  let sec = Option.get (Elf_file.find_section elf ".text") in
  check_int "base is .text addr" sec.Elf_file.addr text.Frontend.base;
  check_int "offset" sec.Elf_file.offset text.Frontend.offset;
  check_int "size" sec.Elf_file.size text.Frontend.size

(* Without a .text section, the first executable PT_LOAD stands in — the
   stripped-sections case the paper's threat model requires. *)
let test_find_text_segment_fallback () =
  let elf = elf () in
  let stripped =
    { elf with
      Elf_file.sections =
        List.filter
          (fun (s : Elf_file.section) -> s.Elf_file.name <> ".text")
          elf.Elf_file.sections }
  in
  let text = Option.get (Frontend.find_text stripped) in
  let seg =
    List.find
      (fun (s : Elf_file.segment) ->
        s.Elf_file.ptype = Elf_file.Load && s.Elf_file.prot.Elf_file.x)
      stripped.Elf_file.segments
  in
  check_int "base is exec segment" seg.Elf_file.vaddr text.Frontend.base;
  check_int "size is filesz" seg.Elf_file.filesz text.Frontend.size

let test_find_text_none () =
  let elf = elf () in
  let none =
    { elf with
      Elf_file.sections =
        List.filter
          (fun (s : Elf_file.section) -> s.Elf_file.name <> ".text")
          elf.Elf_file.sections;
      segments =
        List.map
          (fun (s : Elf_file.segment) ->
            { s with Elf_file.prot = Elf_file.prot_rw })
          elf.Elf_file.segments }
  in
  check_bool "no text found" true (Frontend.find_text none = None)

let test_disassemble_covers_text () =
  let elf = elf () in
  let text, sites = Frontend.disassemble elf in
  check_bool "non-empty" true (sites <> []);
  let first = List.hd sites in
  check_int "starts at text base" text.Frontend.base first.Frontend.addr;
  let last_end =
    List.fold_left
      (fun pos (s : Frontend.site) ->
        check_int "contiguous" pos s.Frontend.addr;
        check_bool "positive length" true (s.Frontend.len > 0);
        pos + s.Frontend.len)
      text.Frontend.base sites
  in
  check_int "covers the whole text" (text.Frontend.base + text.Frontend.size)
    last_end

(* [?from] is the §6.2 workaround: the sweep skips the data prefix and the
   suffix matches a full sweep restarted at the same boundary. *)
let test_disassemble_from () =
  let elf = elf () in
  let _, sites = Frontend.disassemble elf in
  let from_site = List.nth sites 4 in
  let _, suffix = Frontend.disassemble ~from:from_site.Frontend.addr elf in
  check_int "starts at from" from_site.Frontend.addr
    (List.hd suffix).Frontend.addr;
  let expect =
    List.filter
      (fun (s : Frontend.site) -> s.Frontend.addr >= from_site.Frontend.addr)
      sites
  in
  check_bool "suffix of the full sweep" true (suffix = expect)

let test_disassemble_from_outside () =
  let elf = elf () in
  let text = Option.get (Frontend.find_text elf) in
  let addr = text.Frontend.base - 1 in
  Alcotest.check_raises "start outside text"
    (Frontend.Error
       (Printf.sprintf
          "Frontend: disassembly start 0x%x outside the text [0x%x, 0x%x)"
          addr text.Frontend.base
          (text.Frontend.base + text.Frontend.size)))
    (fun () -> ignore (Frontend.disassemble ~from:addr elf))

let test_disassemble_no_text_typed () =
  let elf = elf () in
  let no_text =
    { elf with
      Elf_file.sections =
        List.filter
          (fun (s : Elf_file.section) -> s.Elf_file.name <> ".text")
          elf.Elf_file.sections;
      segments =
        List.map
          (fun (s : Elf_file.segment) -> { s with Elf_file.prot = Elf_file.prot_r })
          elf.Elf_file.segments }
  in
  match Frontend.disassemble no_text with
  | _ -> Alcotest.fail "expected Frontend.Error"
  | exception Frontend.Error _ -> ()

(* An injected decode fault truncates the site list at a text offset: the
   result is a strict prefix of the fault-free sweep (partial
   instrumentation, never desync), identical under chunked decode. *)
let test_disassemble_decode_fault_prefix () =
  let module Fault = E9_fault.Fault in
  let elf = elf () in
  let text, full = Frontend.disassemble elf in
  let cut = text.Frontend.size / 2 in
  let fault = Fault.create (Fault.parse (Printf.sprintf "decode@%d" cut)) in
  let _, cut_sites = Frontend.disassemble ~fault elf in
  check_bool "strict prefix" true
    (List.length cut_sites < List.length full);
  List.iteri
    (fun i (s : Frontend.site) ->
      check_bool "prefix element matches" true (s = List.nth full i);
      check_bool "below the cut" true (s.Frontend.addr < text.Frontend.base + cut))
    cut_sites;
  check_int "fault recorded" 1 (Fault.fired fault Fault.Decode);
  let fault2 = Fault.create (Fault.parse (Printf.sprintf "decode@%d" cut)) in
  let _, cut_chunked = Frontend.disassemble ~jobs:3 ~chunk:64 ~fault:fault2 elf in
  check_bool "chunked decode cuts identically" true (cut_chunked = cut_sites)

(* The chunked parallel sweep must reproduce the serial sweep exactly:
   chunk boundaries rarely coincide with instruction boundaries, so this
   exercises the seam re-synchronization. A tiny [chunk] forces many
   seams even on a small binary; [jobs] values beyond the chunk count and
   a [?from] restriction must not change anything either. *)
let test_disassemble_chunked_identical () =
  let elf = elf () in
  let _, serial = Frontend.disassemble elf in
  List.iter
    (fun (jobs, chunk) ->
      let _, chunked = Frontend.disassemble ~jobs ~chunk elf in
      check_bool
        (Printf.sprintf "jobs=%d chunk=%d matches serial" jobs chunk)
        true
        (chunked = serial))
    [ (2, 64); (3, 64); (3, 127); (7, 33); (16, 4096) ];
  let from_site = List.nth serial 7 in
  let _, suffix = Frontend.disassemble ~from:from_site.Frontend.addr elf in
  let _, suffix_chunked =
    Frontend.disassemble ~from:from_site.Frontend.addr ~jobs:3 ~chunk:61 elf
  in
  check_bool "?from + chunked matches serial" true (suffix_chunked = suffix)

let test_disassemble_empty_text () =
  let elf = elf () in
  let empty =
    { elf with
      Elf_file.sections =
        List.map
          (fun (s : Elf_file.section) ->
            if s.Elf_file.name = ".text" then { s with Elf_file.size = 0 }
            else s)
          elf.Elf_file.sections }
  in
  let text, sites = Frontend.disassemble empty in
  check_int "empty text" 0 text.Frontend.size;
  check_bool "no sites" true (sites = [])

(* ------------------------------------------------------------------ *)
(* Content-defined chunking (DESIGN.md §14)                            *)
(* ------------------------------------------------------------------ *)

let test_chunker_covers_text () =
  let elf = elf () in
  let raw = Elf_file.to_bytes elf in
  let text = Option.get (Frontend.find_text elf) in
  let params = { Chunker.min_size = 256; avg_bits = 9; max_size = 2048 } in
  let bounds =
    Chunker.boundaries params raw ~pos:text.Frontend.offset
      ~len:text.Frontend.size
  in
  check_bool "at least one chunk" true (bounds <> []);
  (* Chunks are text-relative, ascending, contiguous, and partition the
     text exactly. *)
  let pos = ref 0 in
  List.iter
    (fun (o, l) ->
      check_int "contiguous" !pos o;
      check_bool "positive size" true (l > 0);
      pos := o + l)
    bounds;
  check_int "covers the text exactly" text.Frontend.size !pos;
  (* Every cut except the forced final one is size-clamped and aligned. *)
  List.iteri
    (fun i (o, l) ->
      if i < List.length bounds - 1 then begin
        check_bool "min size" true (l >= params.Chunker.min_size);
        check_bool "max size" true (l <= params.Chunker.max_size);
        check_int "aligned cut" 0 ((o + l) mod 16)
      end)
    bounds

let test_chunker_edit_locality () =
  let elf = elf () in
  let raw = Elf_file.to_bytes elf in
  let text = Option.get (Frontend.find_text elf) in
  let params = { Chunker.min_size = 256; avg_bits = 9; max_size = 2048 } in
  let bounds b =
    Chunker.boundaries params b ~pos:text.Frontend.offset
      ~len:text.Frontend.size
  in
  let before = bounds raw in
  check_bool "several chunks" true (List.length before >= 3);
  (* Flip one byte in the middle of the text: chunks strictly before the
     edit keep their boundaries (an edit can only move cuts at or after
     the chunk it lands in). *)
  let mid = text.Frontend.size / 2 in
  let edited = Bytes.copy raw in
  Bytes.set edited
    (text.Frontend.offset + mid)
    (Char.chr (Char.code (Bytes.get edited (text.Frontend.offset + mid)) lxor 0xff));
  let after = bounds edited in
  (* 64 > the 48-byte rolling window: any cut this far before the edit
     was decided on bytes the edit cannot have touched. *)
  let untouched (o, l) = o + l < mid - 64 in
  let prefix xs = List.filter untouched xs in
  check_bool "pre-edit chunks keep their identity" true
    (prefix before = prefix after);
  (* Determinism: same bytes, same geometry. *)
  check_bool "pure function of the bytes" true (bounds raw = before)

(* The plan-aware sweep with a silent probe must agree with the serial
   sweep; with a recording probe it must adopt the recorded decode. *)
let test_disassemble_planned_agrees () =
  let elf = elf () in
  let raw = Elf_file.to_bytes elf in
  let text, serial = Frontend.disassemble elf in
  let params = { Chunker.min_size = 256; avg_bits = 9; max_size = 2048 } in
  let bounds =
    Chunker.boundaries params raw ~pos:text.Frontend.offset
      ~len:text.Frontend.size
  in
  let _, per_chunk, entries, exits, replayed =
    Frontend.disassemble_planned ~bounds
      ~probe:(fun ~index:_ ~entry:_ -> None)
      elf
  in
  check_bool "no probe, no replay" true
    (Array.for_all (fun r -> not r) replayed);
  check_bool "concatenated chunks equal the serial sweep" true
    (List.concat (Array.to_list per_chunk) = serial);
  check_int "first entry at text start" 0 entries.(0);
  check_int "last exit at text end" text.Frontend.size
    exits.(Array.length exits - 1);
  (* Second sweep replays the first one's recording wholesale. *)
  let _, per_chunk2, _, _, replayed2 =
    Frontend.disassemble_planned ~bounds
      ~probe:(fun ~index ~entry ->
        if entry = entries.(index) then
          Some (per_chunk.(index), exits.(index))
        else None)
      elf
  in
  check_bool "every chunk adopted" true (Array.for_all Fun.id replayed2);
  check_bool "replayed decode identical" true
    (List.concat (Array.to_list per_chunk2) = serial)

let site insn = { Frontend.addr = 0x401000; len = 5; insn }

let test_select_jumps () =
  check_bool "jmp" true (Frontend.select_jumps (site (Insn.Jmp 10)));
  check_bool "jmp short" true
    (Frontend.select_jumps (site (Insn.Jmp_short 3)));
  check_bool "jcc" true (Frontend.select_jumps (site (Insn.Jcc (Insn.NE, 8))));
  check_bool "indirect jmp" true
    (Frontend.select_jumps (site (Insn.Jmp_ind (Insn.Reg Reg.RAX))));
  check_bool "call is not a jump" false
    (Frontend.select_jumps (site (Insn.Call 10)));
  check_bool "ret is not a jump" false (Frontend.select_jumps (site Insn.Ret));
  check_bool "mov is not a jump" false
    (Frontend.select_jumps
       (site (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 1))))

let test_select_heap_writes () =
  let store base =
    Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base ()), Insn.Reg Reg.RDX)
  in
  check_bool "store through rdi" true
    (Frontend.select_heap_writes (site (store Reg.RDI)));
  check_bool "stack store excluded" false
    (Frontend.select_heap_writes (site (store Reg.RSP)));
  check_bool "load is not a write" false
    (Frontend.select_heap_writes
       (site (Insn.Mov (Insn.Q, Insn.Reg Reg.RDX, Insn.Mem (Insn.mem ~base:Reg.RDI ())))));
  check_bool "jump is not a write" false
    (Frontend.select_heap_writes (site (Insn.Jmp 10)))

let suites =
  [ ( "frontend",
      [ Alcotest.test_case "find_text prefers .text" `Quick
          test_find_text_prefers_section;
        Alcotest.test_case "find_text segment fallback" `Quick
          test_find_text_segment_fallback;
        Alcotest.test_case "find_text none" `Quick test_find_text_none;
        Alcotest.test_case "disassembly covers the text" `Quick
          test_disassemble_covers_text;
        Alcotest.test_case "?from restricts the sweep" `Quick
          test_disassemble_from;
        Alcotest.test_case "?from outside text rejected" `Quick
          test_disassemble_from_outside;
        Alcotest.test_case "no text is a typed error" `Quick
          test_disassemble_no_text_typed;
        Alcotest.test_case "decode fault truncates to a prefix" `Quick
          test_disassemble_decode_fault_prefix;
        Alcotest.test_case "chunked sweep identical" `Quick
          test_disassemble_chunked_identical;
        Alcotest.test_case "empty text" `Quick test_disassemble_empty_text;
        Alcotest.test_case "select_jumps" `Quick test_select_jumps;
        Alcotest.test_case "select_heap_writes" `Quick test_select_heap_writes;
        Alcotest.test_case "chunker covers the text" `Quick
          test_chunker_covers_text;
        Alcotest.test_case "chunker edit locality" `Quick
          test_chunker_edit_locality;
        Alcotest.test_case "planned sweep agrees with serial" `Quick
          test_disassemble_planned_agrees
      ] ) ]

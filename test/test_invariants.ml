(* Static invariants of rewritten binaries — checks on the output file
   itself, independent of execution. These encode the §2 contract: every
   instruction is preserved, replaced by an equivalent, or patched; nothing
   else changes; appended data never collides with the original image. *)

module Buf = E9_bits.Buf
module Insn = E9_x86.Insn
module Decode = E9_x86.Decode
module Rewriter = E9_core.Rewriter
module Trampoline = E9_core.Trampoline
module Codegen = E9_workload.Codegen
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu

module Static = E9_check.Static

let check_bool = Alcotest.(check bool)

let profile seed =
  { Codegen.default_profile with
    Codegen.seed; functions = 50; iterations = 60 }

let text_bytes elf =
  let text = Option.get (Frontend.find_text elf) in
  (text, Buf.sub elf.Elf_file.data ~pos:text.Frontend.offset ~len:text.Frontend.size)

let rewrite_a1 elf =
  Rewriter.run elf ~select:Frontend.select_jumps
    ~template:(fun _ -> Trampoline.Empty)

(* Invariant 1: in-place discipline — every changed text byte lies within
   the influence radius of some patched site (its own bytes, a punned
   jump's overhang, or a T3 victim within short-jump range). *)
let test_changes_are_local () =
  let elf = Codegen.generate (profile 11L) in
  let _, before = text_bytes elf in
  let r = rewrite_a1 elf in
  let text, after = text_bytes r.Rewriter.output in
  let sites = List.map fst r.Rewriter.patched_sites in
  (* influence radius: J_short reach (2+127) + a punned jump (5+4 prefixes
     + 4 displacement bytes) *)
  let radius = 2 + 127 + 13 in
  for i = 0 to Bytes.length before - 1 do
    if Bytes.get before i <> Bytes.get after i then begin
      let addr = text.Frontend.base + i in
      if
        not
          (List.exists (fun s -> addr >= s && addr < s + radius) sites)
      then
        Alcotest.failf "byte at 0x%x changed outside any patch's influence"
          addr
    end
  done

(* Invariant 2: every successfully patched site now decodes to a diversion:
   a (possibly prefixed) jump, a short jump, or an int3 trap. *)
let test_patched_sites_are_jumps () =
  let elf = Codegen.generate (profile 12L) in
  let r = rewrite_a1 elf in
  let text, after = text_bytes r.Rewriter.output in
  List.iter
    (fun (addr, _) ->
      let d = Decode.decode after (addr - text.Frontend.base) in
      match d.Decode.insn with
      | Insn.Jmp _ | Insn.Jmp_short _ | Insn.Int3 -> ()
      | i ->
          Alcotest.failf "patched site 0x%x decodes to %s" addr
            (Insn.to_string i))
    r.Rewriter.patched_sites

(* Invariant 3: the loader's mappings never cover pages of the original
   image, and always reference bytes inside the output file. *)
let test_mappings_disjoint_and_in_file () =
  let elf = Codegen.generate (profile 13L) in
  let r = rewrite_a1 elf in
  let out = r.Rewriter.output in
  let file_len = Buf.length out.Elf_file.data in
  match Elf_file.find_section out Elf_file.mmap_section_name with
  | None -> Alcotest.fail "no mapping section"
  | Some sec ->
      let mappings = Loadmap.decode_mappings (Elf_file.section_bytes out sec) in
      check_bool "has mappings" true (mappings <> []);
      List.iter
        (fun (m : Loadmap.mapping) ->
          check_bool "file range valid" true
            (m.Loadmap.file_off >= 0 && m.Loadmap.file_off + m.Loadmap.len <= file_len);
          List.iter
            (fun (seg : Elf_file.segment) ->
              if seg.Elf_file.ptype = Elf_file.Load then begin
                let seg_lo = seg.Elf_file.vaddr / 4096 * 4096 in
                let seg_hi = (seg.Elf_file.vaddr + seg.Elf_file.memsz + 4095) / 4096 * 4096 in
                if m.Loadmap.vaddr < seg_hi && m.Loadmap.vaddr + m.Loadmap.len > seg_lo
                then
                  Alcotest.failf "mapping 0x%x+%d overlaps segment at 0x%x"
                    m.Loadmap.vaddr m.Loadmap.len seg.Elf_file.vaddr
              end)
            out.Elf_file.segments)
        mappings

(* Invariant 4: output determinism — same input, same options, identical
   output bytes. *)
let test_rewriting_deterministic () =
  let elf = Codegen.generate (profile 14L) in
  let a = Elf_file.to_bytes (rewrite_a1 elf).Rewriter.output in
  let b = Elf_file.to_bytes (rewrite_a1 elf).Rewriter.output in
  check_bool "identical outputs" true (Bytes.equal a b)

(* Invariant 5: the output survives a file round trip. *)
let test_output_file_roundtrip () =
  let elf = Codegen.generate (profile 15L) in
  let orig = Machine.run elf in
  let r = rewrite_a1 elf in
  let reparsed = Elf_file.of_bytes (Elf_file.to_bytes r.Rewriter.output) in
  check_bool "reparsed output equivalent" true
    (Machine.equivalent orig (Machine.run reparsed))

(* Invariant 6: mixing templates across applications in one pass. *)
let test_mixed_templates () =
  let elf = Codegen.generate (profile 16L) in
  let orig = Machine.run ~make_allocator:E9_lowfat.Lowfat.make_allocator elf in
  let r =
    Rewriter.run elf
      ~select:(fun s ->
        Frontend.select_jumps s || Frontend.select_heap_writes s)
      ~template:(fun s ->
        if Frontend.select_heap_writes s then Trampoline.Lowfat_check
        else Trampoline.Counter)
  in
  let patched =
    Machine.run ~make_allocator:E9_lowfat.Lowfat.make_allocator
      r.Rewriter.output
  in
  check_bool "equivalent" true (Machine.equivalent orig patched);
  check_bool "no violations" true (patched.Cpu.violations = 0);
  check_bool "counters fired" true (patched.Cpu.counters <> [])

(* Invariant 7: trampolines collected by the rewriter are mutually
   disjoint in the virtual address space. *)
let test_trampolines_disjoint () =
  let elf = Codegen.generate (profile 17L) in
  let r = rewrite_a1 elf in
  let out = r.Rewriter.output in
  match Elf_file.find_section out Elf_file.mmap_section_name with
  | None -> Alcotest.fail "no mapping section"
  | Some sec ->
      let ms = Loadmap.decode_mappings (Elf_file.section_bytes out sec) in
      let sorted =
        List.sort (fun (a : Loadmap.mapping) b -> compare a.Loadmap.vaddr b.Loadmap.vaddr) ms
      in
      let rec go = function
        | (a : Loadmap.mapping) :: (b :: _ as rest) ->
            if a.Loadmap.vaddr + a.Loadmap.len > b.Loadmap.vaddr then
              Alcotest.failf "mappings overlap at 0x%x" b.Loadmap.vaddr;
            go rest
        | _ -> ()
      in
      go sorted

(* Invariant 8: the E9_check static verifier independently accounts for
   every changed byte. Cross-checks the hand-rolled invariants above: its
   diff agrees with a direct byte diff, every changed byte is classified,
   and every patched site anchors a classified diversion nearby. *)
let test_static_verifier_cross_check () =
  List.iter
    (fun seed ->
      let elf = Codegen.generate (profile seed) in
      let _, before = text_bytes elf in
      let r = rewrite_a1 elf in
      let text, after = text_bytes r.Rewriter.output in
      match Static.verify ~original:elf r.Rewriter.output with
      | Error e ->
          Alcotest.failf "seed %Ld: verifier rejected: %s" seed
            (Format.asprintf "%a" Static.pp_error e)
      | Ok report ->
          let manual = ref 0 in
          Bytes.iteri
            (fun i b -> if Bytes.get after i <> b then incr manual)
            before;
          Alcotest.(check int) "diff agrees" !manual report.Static.changed_bytes;
          Alcotest.(check int) "every changed byte classified" !manual
            (List.length report.Static.classified);
          check_bool "trampolines checked" true
            (report.Static.trampolines_checked > 0);
          (* Each patched site changed at least one byte within its own
             influence radius (prefixes + jump + displacement). *)
          List.iter
            (fun (addr, _) ->
              if addr >= text.Frontend.base then
                check_bool
                  (Printf.sprintf "site 0x%x anchors a classified byte" addr)
                  true
                  (List.exists
                     (fun (a, _) -> a >= addr && a < addr + 13)
                     report.Static.classified))
            r.Rewriter.patched_sites)
    [ 21L; 22L; 23L ]

let suites =
  [ ( "invariants",
      [ Alcotest.test_case "changes are local" `Quick test_changes_are_local;
        Alcotest.test_case "patched sites decode to jumps" `Quick
          test_patched_sites_are_jumps;
        Alcotest.test_case "mappings disjoint from image" `Quick
          test_mappings_disjoint_and_in_file;
        Alcotest.test_case "rewriting deterministic" `Quick
          test_rewriting_deterministic;
        Alcotest.test_case "output file roundtrip" `Quick
          test_output_file_roundtrip;
        Alcotest.test_case "mixed templates" `Quick test_mixed_templates;
        Alcotest.test_case "mappings non-overlapping" `Quick
          test_trampolines_disjoint;
        Alcotest.test_case "static verifier cross-check" `Quick
          test_static_verifier_cross_check ] ) ]

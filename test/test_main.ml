let () =
  Alcotest.run "e9repro"
    (Test_bits.suites @ Test_x86.suites @ Test_elf.suites @ Test_emu.suites
   @ Test_frontend.suites @ Test_core.suites @ Test_lowfat.suites
   @ Test_workload.suites @ Test_invariants.suites @ Test_reloc.suites
   @ Test_spec.suites @ Test_flags.suites @ Test_asm.suites
   @ Test_check.suites @ Test_obs.suites @ Test_fault.suites
   @ Test_robust.suites @ Test_rpc.suites @ Test_tool.suites)

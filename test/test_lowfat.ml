(* Tests for the low-fat pointer allocator and the heap-write hardening
   application built on it (paper §6.3). *)

module Lowfat = E9_lowfat.Lowfat
module Space = E9_vm.Space
module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Cpu = E9_emu.Cpu
module Machine = E9_emu.Machine
module Hostcall = E9_emu.Hostcall
module Codegen = E9_workload.Codegen
module Rewriter = E9_core.Rewriter
module Trampoline = E9_core.Trampoline

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh () =
  let space = Space.create () in
  Lowfat.create space

(* ------------------------------------------------------------------ *)
(* Pointer arithmetic                                                  *)
(* ------------------------------------------------------------------ *)

let test_base_is_pure () =
  let t = fresh () in
  let p = Lowfat.malloc t 100 in
  check_bool "is lowfat" true (Lowfat.is_lowfat p);
  check_int "object sits after the redzone" Lowfat.redzone (p - Lowfat.base p);
  (* base is recomputed from the pointer alone, also for interior ones *)
  check_int "interior pointer same base" (Lowfat.base p) (Lowfat.base (p + 50))

let test_slot_size_classes () =
  let t = fresh () in
  (* 1 byte + 16-byte redzone needs the 32-byte class. *)
  let p1 = Lowfat.malloc t 1 in
  check_bool "smallest fitting class" true (Lowfat.slot_size p1 = Some 32);
  let p2 = Lowfat.malloc t 100 in
  (* 100 + 16 redzone -> 128-byte class *)
  check_bool "128 class" true (Lowfat.slot_size p2 = Some 128);
  let p3 = Lowfat.malloc t 112 in
  check_bool "exactly fits 128" true (Lowfat.slot_size p3 = Some 128);
  let p4 = Lowfat.malloc t 113 in
  check_bool "needs 256" true (Lowfat.slot_size p4 = Some 256)

let test_legacy_pointers_pass () =
  check_bool "stack pointer" true (Lowfat.check 0x7fff_0000_0000);
  check_bool "null-ish" true (Lowfat.check 16);
  check_bool "text" true (Lowfat.check 0x400000);
  check_bool "not lowfat" false (Lowfat.is_lowfat 0x400000)

let test_redzone_check () =
  let t = fresh () in
  let p = Lowfat.malloc t 64 in
  check_bool "object start ok" true (Lowfat.check p);
  check_bool "interior ok" true (Lowfat.check (p + 63));
  (* The slot is 128 wide with a 16-byte redzone at its base: running off
     the end of this object lands in the *next* slot's redzone. *)
  let slot = Lowfat.base p in
  check_bool "own redzone rejected" false (Lowfat.check slot);
  check_bool "next slot's redzone rejected" false (Lowfat.check (slot + 128));
  check_bool "last redzone byte rejected" false
    (Lowfat.check (slot + 128 + Lowfat.redzone - 1));
  check_bool "next object ok" true
    (Lowfat.check (slot + 128 + Lowfat.redzone))

let test_overflow_detected_at_object_end () =
  let t = fresh () in
  let p = Lowfat.malloc t 112 in
  (* usable size = 112 (slot 128 - redzone 16): one past the end is the
     next slot's redzone. *)
  check_bool "last byte ok" true (Lowfat.check (p + 111));
  check_bool "one past end detected" false (Lowfat.check (p + 112))

let test_malloc_distinct_and_mapped () =
  let space = Space.create () in
  let t = Lowfat.create space in
  let ptrs = List.init 50 (fun i -> Lowfat.malloc t (i * 7 + 1)) in
  let sorted = List.sort_uniq compare ptrs in
  check_int "all distinct" 50 (List.length sorted);
  (* memory is mapped r/w *)
  List.iter
    (fun p ->
      Space.write_u64 space p 0xdead;
      check_int "readable" 0xdead (Space.read_u64 space p))
    ptrs

let test_free_recycles () =
  let t = fresh () in
  let p = Lowfat.malloc t 64 in
  Lowfat.free t p;
  let q = Lowfat.malloc t 64 in
  check_int "slot recycled" p q

let test_free_legacy_ignored () =
  let t = fresh () in
  Lowfat.free t 0x400000 (* must not raise *)

let test_malloc_too_big () =
  let t = fresh () in
  Alcotest.check_raises "too big"
    (Lowfat.Error
       (Printf.sprintf "Lowfat.malloc: %d exceeds max size %d" Lowfat.max_size
          Lowfat.max_size))
    (fun () -> ignore (Lowfat.malloc t Lowfat.max_size))

let test_malloc_exhaustion_typed_and_recoverable () =
  let t = fresh () in
  (* Drain the largest size class; exhaustion must be a typed error
     raised *before* any allocator state changes. *)
  let slot = Option.get (Lowfat.slot_size (Lowfat.malloc t (Lowfat.max_size / 2))) in
  let slots = Lowfat.region_size / slot in
  for _ = 2 to slots do
    ignore (Lowfat.malloc t (Lowfat.max_size / 2))
  done;
  (match Lowfat.malloc t (Lowfat.max_size / 2) with
  | _ -> Alcotest.fail "expected Lowfat.Error"
  | exception Lowfat.Error m ->
      check_bool "message names the class" true
        (String.length m > 0 && String.sub m 0 13 = "Lowfat.malloc"));
  (* The refusal left the allocator intact: other classes still serve,
     and a freed slot from the full class is immediately reusable. *)
  let small = Lowfat.malloc t 16 in
  check_bool "small class unaffected" true (Lowfat.check small);
  let p = Lowfat.malloc t 16 in
  Lowfat.free t p;
  check_int "free list recycles after refusal" p (Lowfat.malloc t 16)

(* Property: for any allocation size, every byte of the usable object
   passes the check and the byte one past the end fails it. *)
let prop_redzone_tight =
  QCheck.Test.make ~name:"redzone property tight at object bounds" ~count:200
    QCheck.(int_range 1 5000)
    (fun n ->
      let t = fresh () in
      let p = Lowfat.malloc t n in
      let slot = Option.get (Lowfat.slot_size p) in
      let usable = slot - Lowfat.redzone in
      Lowfat.check p
      && Lowfat.check (p + usable - 1)
      && not (Lowfat.check (p + usable)))

(* ------------------------------------------------------------------ *)
(* End-to-end hardening                                                *)
(* ------------------------------------------------------------------ *)

let harden elf =
  Rewriter.run elf ~select:Frontend.select_heap_writes
    ~template:(fun _ -> Trampoline.Lowfat_check)

let test_hardened_clean_program_unchanged () =
  let prof =
    { Codegen.default_profile with Codegen.seed = 77L; functions = 40;
      iterations = 80 }
  in
  let elf = Codegen.generate prof in
  let orig = Machine.run ~make_allocator:Lowfat.make_allocator elf in
  let r = harden elf in
  let patched =
    Machine.run ~make_allocator:Lowfat.make_allocator r.Rewriter.output
  in
  check_bool "no false positives" true (patched.Cpu.violations = 0);
  check_bool "equivalent" true (Machine.equivalent orig patched);
  check_bool "hardening costs cycles" true
    (patched.Cpu.cycles > orig.Cpu.cycles)

(* A hand-written vulnerable program: writes one element past a 64-byte
   buffer. Undetectable without instrumentation; caught when hardened. *)
let overflow_elf () =
  let base = 0x400000 in
  let asm = Asm.create ~base in
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 64));
  Asm.ins asm (Insn.Int Hostcall.malloc);
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RAX));
  (* in-bounds writes *)
  Asm.ins asm
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RBX ()), Insn.Imm 1));
  Asm.ins asm
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:40 ()), Insn.Imm 2));
  (* the off-by-N overflow: element 48 + 64 = slot end + redzone *)
  Asm.ins asm
    (Insn.Mov (Insn.Q, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:112 ()), Insn.Imm 3));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 0));
  Asm.ins asm Insn.Syscall;
  let code = Asm.assemble asm in
  let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:base in
  let off =
    Elf_file.add_segment elf
      { Elf_file.ptype = Elf_file.Load;
        prot = Elf_file.prot_rx;
        vaddr = base;
        offset = 0;
        filesz = 0;
        memsz = Bytes.length code;
        align = 4096 }
      ~content:code
  in
  elf.Elf_file.sections <-
    [ { Elf_file.name = ".text"; sh_type = 1; sh_flags = 6; addr = base;
        offset = off; size = Bytes.length code } ];
  elf

let test_overflow_undetected_without_hardening () =
  let elf = overflow_elf () in
  let r = Machine.run ~make_allocator:Lowfat.make_allocator elf in
  (* The overflow silently corrupts the neighbouring redzone. *)
  check_bool "runs to completion" true (r.Cpu.outcome = Cpu.Exited 0);
  check_int "no violations seen" 0 r.Cpu.violations

let test_overflow_detected_with_hardening () =
  let elf = overflow_elf () in
  let r = harden elf in
  check_bool "all writes patched" true
    (E9_core.Stats.succ_pct r.Rewriter.stats = 100.0);
  let hardened =
    Machine.run ~make_allocator:Lowfat.make_allocator r.Rewriter.output
  in
  match hardened.Cpu.outcome with
  | Cpu.Violation p ->
      (* the violating pointer is the 64-byte slot boundary overflow *)
      check_bool "pointer is low-fat" true (Lowfat.is_lowfat p);
      check_bool "pointer in a redzone" true (not (Lowfat.check p))
  | o ->
      Alcotest.failf "expected violation, got %s"
        (match o with
        | Cpu.Exited n -> Printf.sprintf "exit %d" n
        | Cpu.Fault (_, m) -> "fault: " ^ m
        | Cpu.Out_of_fuel -> "fuel"
        | Cpu.Violation _ -> assert false)

let test_hardening_count_mode () =
  (* abort_on_violation = false: count violations and keep going. *)
  let elf = overflow_elf () in
  let r = harden elf in
  let config = { Cpu.default_config with Cpu.abort_on_violation = false } in
  let hardened =
    Machine.run ~config ~make_allocator:Lowfat.make_allocator r.Rewriter.output
  in
  check_bool "completed" true (hardened.Cpu.outcome = Cpu.Exited 0);
  check_int "one violation counted" 1 hardened.Cpu.violations

let suites =
  [ ( "lowfat.pointer",
      [ Alcotest.test_case "base is pure" `Quick test_base_is_pure;
        Alcotest.test_case "size classes" `Quick test_slot_size_classes;
        Alcotest.test_case "legacy pointers pass" `Quick
          test_legacy_pointers_pass;
        Alcotest.test_case "redzone check" `Quick test_redzone_check;
        Alcotest.test_case "overflow at object end" `Quick
          test_overflow_detected_at_object_end;
        Alcotest.test_case "malloc distinct+mapped" `Quick
          test_malloc_distinct_and_mapped;
        Alcotest.test_case "free recycles" `Quick test_free_recycles;
        Alcotest.test_case "free legacy ignored" `Quick test_free_legacy_ignored;
        Alcotest.test_case "malloc too big" `Quick test_malloc_too_big;
        Alcotest.test_case "exhaustion typed and recoverable" `Quick
          test_malloc_exhaustion_typed_and_recoverable;
        QCheck_alcotest.to_alcotest prop_redzone_tight ] );
    ( "lowfat.hardening",
      [ Alcotest.test_case "clean program unchanged" `Quick
          test_hardened_clean_program_unchanged;
        Alcotest.test_case "overflow silent unhardened" `Quick
          test_overflow_undetected_without_hardening;
        Alcotest.test_case "overflow detected hardened" `Quick
          test_overflow_detected_with_hardening;
        Alcotest.test_case "count mode" `Quick test_hardening_count_mode ] ) ]

(* Property: for a random allocation and a random write offset, hardening
   flags the write iff it lands in a redzone — no false positives inside
   the object, no false negatives in the adjacent redzone. *)
let prop_hardening_detects_exactly_redzones =
  QCheck.Test.make ~name:"hardening flags exactly the redzone writes"
    ~count:60
    QCheck.(pair (int_range 1 200) (int_range 0 260))
    (fun (size, offset) ->
      let base_addr = 0x400000 in
      let asm = Asm.create ~base:base_addr in
      Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm size));
      Asm.ins asm (Insn.Int Hostcall.malloc);
      Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RBX, Insn.Reg Reg.RAX));
      Asm.ins asm
        (Insn.Mov
           (Insn.B, Insn.Mem (Insn.mem ~base:Reg.RBX ~disp:offset ()), Insn.Imm 7));
      Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
      Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 0));
      Asm.ins asm Insn.Syscall;
      let code = Asm.assemble asm in
      let elf = Elf_file.create ~etype:Elf_file.Exec ~entry:base_addr in
      let off =
        Elf_file.add_segment elf
          { Elf_file.ptype = Elf_file.Load; prot = Elf_file.prot_rx;
            vaddr = base_addr; offset = 0; filesz = 0;
            memsz = Bytes.length code; align = 4096 }
          ~content:code
      in
      elf.Elf_file.sections <-
        [ { Elf_file.name = ".text"; sh_type = 1; sh_flags = 6;
            addr = base_addr; offset = off; size = Bytes.length code } ];
      let r = harden elf in
      let hardened =
        Machine.run ~make_allocator:Lowfat.make_allocator r.Rewriter.output
      in
      (* What should happen, from the pointer arithmetic alone: the object
         starts redzone bytes into its slot; the write hits a redzone iff
         (p+offset) - base(p+offset) < redzone. *)
      let space = E9_vm.Space.create () in
      let t = Lowfat.create space in
      let p = Lowfat.malloc t size in
      let should_flag = not (Lowfat.check (p + offset)) in
      match hardened.Cpu.outcome with
      | Cpu.Violation _ -> should_flag
      | Cpu.Exited 0 -> not should_flag
      | _ -> false)

let suites =
  suites
  @ [ ( "lowfat.property",
        [ QCheck_alcotest.to_alcotest prop_hardening_detects_exactly_redzones ]
      ) ]

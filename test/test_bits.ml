(* Tests for the E9_bits substrate: buffers, interval sets, RNG. *)

module Buf = E9_bits.Buf
module Iset = E9_bits.Iset
module Rng = E9_bits.Rng
module Pool = E9_bits.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Buf                                                                 *)
(* ------------------------------------------------------------------ *)

let test_buf_roundtrip_widths () =
  let b = Buf.create 4 in
  let p8 = Buf.add_u8 b 0xab in
  let p16 = Buf.add_u16 b 0xbeef in
  let p32 = Buf.add_u32 b 0xdeadbeef in
  let p64 = Buf.add_u64 b 0x0123_4567_89ab_cdefL in
  check_int "u8" 0xab (Buf.get_u8 b p8);
  check_int "u16" 0xbeef (Buf.get_u16 b p16);
  check_int "u32" 0xdeadbeef (Buf.get_u32 b p32);
  Alcotest.(check int64) "u64" 0x0123_4567_89ab_cdefL (Buf.get_u64 b p64);
  check_int "len" 15 (Buf.length b)

let test_buf_little_endian () =
  let b = Buf.create 4 in
  ignore (Buf.add_u32 b 0x11223344);
  check_int "lsb first" 0x44 (Buf.get_u8 b 0);
  check_int "msb last" 0x11 (Buf.get_u8 b 3)

let test_buf_i32_sign () =
  let b = Buf.create 4 in
  ignore (Buf.add_u32 b (-5));
  check_int "i32 sign-extends" (-5) (Buf.get_i32 b 0);
  check_int "u32 wraps" 0xffff_fffb (Buf.get_u32 b 0)

let test_buf_grow () =
  let b = Buf.create 1 in
  for i = 0 to 999 do
    ignore (Buf.add_u8 b i)
  done;
  check_int "grown" 1000 (Buf.length b);
  check_int "content preserved" (999 land 0xff) (Buf.get_u8 b 999)

let test_buf_blit_sub () =
  let b = Buf.of_string "hello world" in
  Buf.blit_in b ~pos:6 (Bytes.of_string "WORLD");
  Alcotest.(check string)
    "blit" "WORLD"
    (Bytes.to_string (Buf.sub b ~pos:6 ~len:5))

let test_buf_pad_to () =
  let b = Buf.of_string "ab" in
  Buf.pad_to b 8;
  check_int "padded" 8 (Buf.length b);
  check_int "zero fill" 0 (Buf.get_u8 b 7);
  Buf.pad_to b 4;
  check_int "no shrink" 8 (Buf.length b)

let test_buf_bounds () =
  let b = Buf.of_string "abc" in
  Alcotest.check_raises "read past end"
    (Invalid_argument "Buf: range 2+2 out of bounds (len 3)") (fun () ->
      ignore (Buf.get_u16 b 2))

(* ------------------------------------------------------------------ *)
(* Iset                                                                *)
(* ------------------------------------------------------------------ *)

let test_iset_add_merge () =
  let s = Iset.create () in
  Iset.add s ~lo:10 ~hi:20;
  Iset.add s ~lo:30 ~hi:40;
  Iset.add s ~lo:20 ~hi:30;
  Alcotest.(check (list (pair int int)))
    "merged" [ (10, 40) ] (Iset.intervals s)

let test_iset_add_overlap () =
  let s = Iset.create () in
  Iset.add s ~lo:10 ~hi:20;
  Iset.add s ~lo:15 ~hi:35;
  Iset.add s ~lo:5 ~hi:12;
  Alcotest.(check (list (pair int int)))
    "merged" [ (5, 35) ] (Iset.intervals s)

let test_iset_mem () =
  let s = Iset.create () in
  Iset.add s ~lo:10 ~hi:20;
  check_bool "below" false (Iset.mem s 9);
  check_bool "lo inclusive" true (Iset.mem s 10);
  check_bool "inside" true (Iset.mem s 15);
  check_bool "hi exclusive" false (Iset.mem s 20)

let test_iset_remove_split () =
  let s = Iset.create () in
  Iset.add s ~lo:0 ~hi:100;
  Iset.remove s ~lo:40 ~hi:60;
  Alcotest.(check (list (pair int int)))
    "split" [ (0, 40); (60, 100) ] (Iset.intervals s);
  check_int "occupied" 80 (Iset.occupied s)

let test_iset_find_free () =
  let s = Iset.create () in
  Iset.add s ~lo:0 ~hi:10;
  Iset.add s ~lo:14 ~hi:30;
  Alcotest.(check (option int)) "gap of 4" (Some 10)
    (Iset.find_free s ~size:4 ~lo:0 ~hi:100);
  Alcotest.(check (option int)) "gap of 5 skips small gap" (Some 30)
    (Iset.find_free s ~size:5 ~lo:0 ~hi:100);
  Alcotest.(check (option int)) "window excludes" None
    (Iset.find_free s ~size:5 ~lo:0 ~hi:25);
  Alcotest.(check (option int)) "empty window" None
    (Iset.find_free s ~size:1 ~lo:50 ~hi:40)

let test_iset_find_free_last () =
  let s = Iset.create () in
  Iset.add s ~lo:20 ~hi:30;
  Alcotest.(check (option int)) "highest start" (Some 96)
    (Iset.find_free_last s ~size:4 ~lo:0 ~hi:96);
  Alcotest.(check (option int)) "slides below obstacle" (Some 16)
    (Iset.find_free_last s ~size:4 ~lo:0 ~hi:22)

let test_iset_copy_independent () =
  let s = Iset.create () in
  Iset.add s ~lo:0 ~hi:10;
  let c = Iset.copy s in
  Iset.add c ~lo:100 ~hi:110;
  check_int "original untouched" 10 (Iset.occupied s);
  check_int "copy extended" 20 (Iset.occupied c)

(* Property: find_free agrees with a naive boolean-array model, including
   returning the lowest viable start. *)
let prop_iset_matches_model =
  QCheck.Test.make ~name:"Iset.find_free agrees with naive model" ~count:500
    QCheck.(
      pair
        (small_list (pair (int_bound 200) (int_bound 30)))
        (triple (int_range 1 10) (int_bound 200) (int_bound 200)))
    (fun (adds, (size, lo, hi)) ->
      (* QCheck's int_range shrinker can escape its bounds; clamp. *)
      let size = max 1 size in
      let s = Iset.create () in
      let model = Array.make 300 false in
      List.iter
        (fun (start, len) ->
          Iset.add s ~lo:start ~hi:(start + len);
          for i = start to start + len - 1 do
            model.(i) <- true
          done)
        adds;
      let naive () =
        let result = ref None in
        (try
           for start = lo to hi do
             let ok = ref true in
             for i = start to start + size - 1 do
               if i < 300 && model.(i) then ok := false
             done;
             if !ok then begin
               result := Some start;
               raise Exit
             end
           done
         with Exit -> ());
        !result
      in
      Iset.find_free s ~size ~lo ~hi = naive ())

let prop_iset_find_free_last_valid =
  QCheck.Test.make ~name:"Iset.find_free_last returns free in-window range"
    ~count:500
    QCheck.(
      pair
        (small_list (pair (int_bound 200) (int_range 1 30)))
        (triple (int_range 1 10) (int_bound 200) (int_bound 200)))
    (fun (adds, (size, lo, hi)) ->
      let s = Iset.create () in
      List.iter
        (fun (start, len) -> Iset.add s ~lo:start ~hi:(start + len))
        adds;
      match Iset.find_free_last s ~size ~lo ~hi with
      | None -> true
      | Some start ->
          start >= lo && start <= hi
          && Iset.is_free s ~lo:start ~hi:(start + size))

(* Property: an arbitrary interleaving of add and remove leaves the set
   agreeing with a naive boolean-array model on every point query, on
   total occupancy, and on the interval count (the fragmentation gauge
   the obs layer reports). *)
let prop_iset_op_sequence_model =
  QCheck.Test.make ~name:"Iset add/remove/mem agree with naive model"
    ~count:400
    QCheck.(small_list (triple bool (int_bound 250) (int_range 1 20)))
    (fun ops ->
      let s = Iset.create () in
      let model = Array.make 300 false in
      List.iter
        (fun (is_add, lo, len) ->
          (* QCheck's int_range shrinker can escape its bounds; clamp. *)
          let len = max 1 (min len 20) in
          let hi = lo + len in
          if is_add then Iset.add s ~lo ~hi else Iset.remove s ~lo ~hi;
          Array.fill model lo len is_add)
        ops;
      let mem_agrees = ref true in
      for i = 0 to 299 do
        if Iset.mem s i <> model.(i) then mem_agrees := false
      done;
      let occupied = ref 0 and runs = ref 0 in
      Array.iteri
        (fun i v ->
          if v then begin
            incr occupied;
            if i = 0 || not model.(i - 1) then incr runs
          end)
        model;
      !mem_agrees && Iset.occupied s = !occupied && Iset.count s = !runs)

let prop_iset_add_remove_inverse =
  QCheck.Test.make ~name:"Iset.remove undoes add" ~count:300
    QCheck.(small_list (pair (int_bound 1000) (int_range 1 20)))
    (fun ranges ->
      let s = Iset.create () in
      List.iter (fun (lo, len) -> Iset.add s ~lo ~hi:(lo + len)) ranges;
      List.iter (fun (lo, len) -> Iset.remove s ~lo ~hi:(lo + len)) ranges;
      Iset.occupied s = 0)

(* Naive reference queries over a boolean occupancy array (true =
   occupied; indexes beyond the array are free). *)
let model_free model s size =
  let ok = ref true in
  for i = s to s + size - 1 do
    if i >= 0 && i < Array.length model && model.(i) then ok := false
  done;
  !ok

let model_find_free model ~size ~lo ~hi =
  let result = ref None in
  (try
     for s = lo to hi do
       if model_free model s size then begin
         result := Some s;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let model_find_free_last model ~size ~lo ~hi =
  let result = ref None in
  (try
     for s = hi downto lo do
       if model_free model s size then begin
         result := Some s;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let model_find_free_strided model ~size ~lo ~hi ~stride =
  let result = ref None in
  (try
     let s = ref lo in
     while !s <= hi do
       if model_free model !s size then begin
         result := Some !s;
         raise Exit
       end;
       s := !s + stride
     done
   with Exit -> ());
  !result

(* Property: after an arbitrary add/remove interleaving the augmented
   tree agrees with the naive model on every query the allocator issues —
   point membership, window freeness and all three find_free variants —
   for arbitrary windows, sizes and strides (the gap-descent structure is
   cross-checked against brute force, not trusted). *)
let prop_iset_queries_match_model =
  QCheck.Test.make
    ~name:"Iset queries agree with naive model (all find_free variants)"
    ~count:600
    QCheck.(
      pair
        (small_list (triple bool (int_bound 250) (int_range 1 25)))
        (quad (int_bound 12) (int_bound 280) (int_bound 280) (int_range 1 40)))
    (fun (ops, (size, lo, hi, stride)) ->
      (* QCheck's int_range shrinker can escape its bounds; clamp. *)
      let stride = max 1 stride in
      let s = Iset.create () in
      let model = Array.make 300 false in
      List.iter
        (fun (is_add, olo, len) ->
          let len = max 1 (min len 25) in
          if is_add then Iset.add s ~lo:olo ~hi:(olo + len)
          else Iset.remove s ~lo:olo ~hi:(olo + len);
          Array.fill model olo len is_add)
        ops;
      let free_agrees =
        Iset.is_free s ~lo ~hi
        = (hi <= lo || model_free model lo (hi - lo))
      in
      (* size = 0 must yield None from every variant, like the old scan. *)
      let zero_agrees =
        Iset.find_free s ~size:0 ~lo ~hi = None
        && Iset.find_free_last s ~size:0 ~lo ~hi = None
        && Iset.find_free_strided s ~size:0 ~lo ~hi ~stride = None
      in
      size = 0
      || (free_agrees && zero_agrees
         && Iset.find_free s ~size ~lo ~hi = model_find_free model ~size ~lo ~hi
         && Iset.find_free_last s ~size ~lo ~hi
            = model_find_free_last model ~size ~lo ~hi
         && Iset.find_free_strided s ~size ~lo ~hi ~stride
            = model_find_free_strided model ~size ~lo ~hi ~stride))

(* Non-power-of-two strides, specifically: a pow2 stride lets a masking
   bug in the gap-descent congruence arithmetic pass unnoticed (rounding
   to the stride and masking to it coincide), so this property pins the
   stride to primes and odd composites over a dense random comb and
   checks the full contract of a hit — in-window, congruent to [lo]
   modulo the stride, free, and minimal (the brute-force model finds
   nothing earlier). *)
let prop_iset_strided_non_pow2 =
  QCheck.Test.make
    ~name:"find_free_strided honors congruence/minimality at non-pow2 strides"
    ~count:500
    QCheck.(
      pair
        (small_list (triple (int_bound 400) (int_range 1 30) bool))
        (quad (int_range 1 15) (int_bound 380) (int_bound 380) (int_bound 7)))
    (fun (ops, (size, lo, hi, k)) ->
      let stride = [| 3; 5; 6; 7; 9; 11; 13; 24 |].(abs k mod 8) in
      let size = max 1 size in
      let s = Iset.create () in
      let model = Array.make 440 false in
      List.iter
        (fun (olo, len, is_add) ->
          let len = max 1 (min len 30) in
          if is_add then Iset.add s ~lo:olo ~hi:(olo + len)
          else Iset.remove s ~lo:olo ~hi:(olo + len);
          Array.fill model olo len is_add)
        ops;
      match Iset.find_free_strided s ~size ~lo ~hi ~stride with
      | None -> model_find_free_strided model ~size ~lo ~hi ~stride = None
      | Some r ->
          r >= lo && r <= hi
          && (r - lo) mod stride = 0
          && model_free model r size
          && model_find_free_strided model ~size ~lo ~hi ~stride = Some r)

(* Deterministic stride corners the property may not hit often enough:
   a stride wider than the window (only candidate is [lo]), and a blocker
   whose interval ends exactly at the window's last viable start. *)
let test_iset_stride_corners () =
  let s = Iset.create () in
  Iset.add s ~lo:10 ~hi:20;
  Alcotest.(check (option int))
    "stride > hi-lo, lo free" (Some 0)
    (Iset.find_free_strided s ~size:4 ~lo:0 ~hi:5 ~stride:100);
  Alcotest.(check (option int))
    "stride > hi-lo, lo blocked" None
    (Iset.find_free_strided s ~size:4 ~lo:12 ~hi:15 ~stride:100);
  Alcotest.(check (option int))
    "blocker ends at hi: only start left is hi itself" (Some 20)
    (Iset.find_free_strided s ~size:4 ~lo:10 ~hi:20 ~stride:5);
  Alcotest.(check (option int))
    "blocker covering hi leaves nothing" None
    (Iset.find_free s ~size:1 ~lo:10 ~hi:19);
  Alcotest.check_raises "stride < 1 rejected"
    (Invalid_argument "Iset.find_free_strided") (fun () ->
      ignore (Iset.find_free_strided s ~size:1 ~lo:0 ~hi:10 ~stride:0))

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "same as List.map, in input order"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~domains:4 (fun x -> x * x) xs)

let test_pool_map_serial_fallback () =
  let xs = List.init 10 Fun.id in
  Alcotest.(check (list int))
    "domains:1 degrades to List.map" (List.map succ xs)
    (Pool.map ~domains:1 succ xs);
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~domains:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map ~domains:4 succ [ 7 ])

let test_pool_map_exception () =
  Alcotest.check_raises "worker exception reaches the caller"
    (Failure "boom") (fun () ->
      ignore
        (Pool.map ~domains:4
           (fun x -> if x = 37 then failwith "boom" else x)
           (List.init 64 Fun.id)))

let test_pool_iter_runs_all () =
  let total = Atomic.make 0 in
  Pool.iter ~domains:4
    (fun x -> ignore (Atomic.fetch_and_add total x))
    (List.init 50 Fun.id);
  Alcotest.(check int) "every element visited once" (50 * 49 / 2)
    (Atomic.get total)

let test_pool_default_domains () =
  Alcotest.(check bool) "at least one domain" true (Pool.default_domains () >= 1)

let test_pool_spawn_failure_degrades () =
  (* Every helper spawn refused: the calling domain still drains the whole
     task list through the shared cursor, in order. *)
  let xs = List.init 40 Fun.id in
  Alcotest.(check (list int))
    "all spawns fail -> serial completion"
    (List.map (fun x -> x * 3) xs)
    (Pool.map ~domains:4 ~spawn_failure:(fun _ -> true) (fun x -> x * 3) xs);
  Alcotest.(check (list int))
    "partial spawn failure"
    (List.map succ xs)
    (Pool.map ~domains:4 ~spawn_failure:(fun i -> i mod 2 = 0) succ xs)

let test_pool_stealing_preserves_order () =
  let xs = List.init 200 Fun.id in
  let out, report = Pool.map_stealing ~domains:4 (fun x -> x * x) xs in
  Alcotest.(check (list int))
    "same as List.map, in input order"
    (List.map (fun x -> x * x) xs)
    out;
  check_bool "worker count sane" true (report.Pool.workers >= 1)

let test_pool_stealing_steals_under_skew () =
  (* Worker 0's deque holds the only slow tasks; the other workers must
     finish their own deques and steal from it. *)
  let xs = List.init 64 Fun.id in
  let out, report =
    Pool.map_stealing ~domains:4
      ~jitter:(fun i ->
        (* Spin, not sleep: test/dune does not link unix. *)
        if i < 16 then
          for k = 0 to 400_000 do
            ignore (Sys.opaque_identity k)
          done)
      succ xs
  in
  Alcotest.(check (list int)) "results intact" (List.map succ xs) out;
  if report.Pool.workers > 1 then
    check_bool "skewed schedule forces steals" true (report.Pool.steals > 0)

let test_pool_stealing_serial_and_failures () =
  let xs = List.init 30 Fun.id in
  let out, report = Pool.map_stealing ~domains:1 succ xs in
  Alcotest.(check (list int)) "domains:1 is List.map" (List.map succ xs) out;
  Alcotest.(check int) "serial path reports one worker" 1 report.Pool.workers;
  Alcotest.(check int) "serial path reports no steals" 0 report.Pool.steals;
  let out, _ =
    Pool.map_stealing ~domains:4 ~spawn_failure:(fun _ -> true) succ xs
  in
  Alcotest.(check (list int))
    "all spawns fail -> caller drains every deque" (List.map succ xs) out;
  Alcotest.check_raises "worker exception reaches the caller"
    (Failure "boom") (fun () ->
      ignore
        (Pool.map_stealing ~domains:4
           (fun x -> if x = 23 then failwith "boom" else x)
           (List.init 48 Fun.id)))

let test_pool_service_executes_all () =
  let svc = Pool.Service.create ~domains:4 () in
  let total = Atomic.make 0 in
  for i = 1 to 100 do
    Pool.Service.submit svc (fun () -> ignore (Atomic.fetch_and_add total i))
  done;
  Pool.Service.drain svc;
  Alcotest.(check int) "all tasks ran" (100 * 101 / 2) (Atomic.get total);
  Alcotest.(check int) "executed count" 100 (Pool.Service.executed svc);
  Pool.Service.shutdown svc

let test_pool_service_traps_exceptions () =
  (* Daemon containment: a crashing task is swallowed and counted, and
     its siblings still run — then the closed pool refuses new work. *)
  let svc = Pool.Service.create ~domains:2 () in
  let ran = Atomic.make 0 in
  Pool.Service.submit svc (fun () -> failwith "session crash");
  Pool.Service.submit svc (fun () -> Atomic.incr ran);
  Pool.Service.drain svc;
  Alcotest.(check int) "sibling task still ran" 1 (Atomic.get ran);
  Alcotest.(check int) "crash trapped and counted" 1 (Pool.Service.trapped svc);
  Alcotest.(check int) "both tasks count as executed" 2
    (Pool.Service.executed svc);
  Pool.Service.shutdown svc;
  Alcotest.check_raises "submit after shutdown refused"
    (Invalid_argument "Pool.Service.submit: pool is shut down") (fun () ->
      Pool.Service.submit svc (fun () -> ()))

let test_pool_service_single_domain () =
  let svc = Pool.Service.create ~domains:1 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 25 do
    Pool.Service.submit svc (fun () -> Atomic.incr hits)
  done;
  Pool.Service.drain svc;
  Alcotest.(check int) "single worker drains the queue" 25 (Atomic.get hits);
  Pool.Service.shutdown svc

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_int_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_range_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.range r (-5) 5 in
    check_bool "in range" true (v >= -5 && v <= 5)
  done

let test_rng_weighted () =
  let r = Rng.create 1L in
  for _ = 1 to 200 do
    let v = Rng.weighted r [ (0.0, `A); (1.0, `B) ] in
    check_bool "zero weight never drawn" true (v = `B)
  done

let test_rng_split_independent () =
  let r = Rng.create 5L in
  let a = Rng.split r and b = Rng.split r in
  check_bool "split streams differ" true (Rng.next a <> Rng.next b)

let test_rng_deterministic_across_domains () =
  (* The parallel bench pipeline seeds one Rng per work item; a stream
     must not depend on which domain runs it. *)
  let stream () =
    let r = Rng.create 99L in
    List.init 64 (fun _ -> Rng.next r)
  in
  let here = stream () in
  let there =
    Array.init 4 (fun _ -> Domain.spawn stream) |> Array.map Domain.join
  in
  Array.iter
    (fun l -> Alcotest.(check (list int64)) "same stream in every domain" here l)
    there

let test_rng_shuffle_permutation () =
  let r = Rng.create 9L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let suites =
  [ ( "bits.buf",
      [ Alcotest.test_case "roundtrip widths" `Quick test_buf_roundtrip_widths;
        Alcotest.test_case "little endian" `Quick test_buf_little_endian;
        Alcotest.test_case "i32 sign" `Quick test_buf_i32_sign;
        Alcotest.test_case "grow" `Quick test_buf_grow;
        Alcotest.test_case "blit/sub" `Quick test_buf_blit_sub;
        Alcotest.test_case "pad_to" `Quick test_buf_pad_to;
        Alcotest.test_case "bounds" `Quick test_buf_bounds ] );
    ( "bits.iset",
      [ Alcotest.test_case "add merges adjacent" `Quick test_iset_add_merge;
        Alcotest.test_case "add merges overlap" `Quick test_iset_add_overlap;
        Alcotest.test_case "mem" `Quick test_iset_mem;
        Alcotest.test_case "remove splits" `Quick test_iset_remove_split;
        Alcotest.test_case "find_free" `Quick test_iset_find_free;
        Alcotest.test_case "find_free_last" `Quick test_iset_find_free_last;
        Alcotest.test_case "copy independent" `Quick test_iset_copy_independent;
        Alcotest.test_case "stride corners" `Quick test_iset_stride_corners;
        QCheck_alcotest.to_alcotest prop_iset_matches_model;
        QCheck_alcotest.to_alcotest prop_iset_find_free_last_valid;
        QCheck_alcotest.to_alcotest prop_iset_op_sequence_model;
        QCheck_alcotest.to_alcotest prop_iset_add_remove_inverse;
        QCheck_alcotest.to_alcotest prop_iset_queries_match_model;
        QCheck_alcotest.to_alcotest prop_iset_strided_non_pow2 ] );
    ( "bits.pool",
      [ Alcotest.test_case "map preserves order" `Quick
          test_pool_map_preserves_order;
        Alcotest.test_case "serial fallback" `Quick
          test_pool_map_serial_fallback;
        Alcotest.test_case "exception propagation" `Quick
          test_pool_map_exception;
        Alcotest.test_case "iter side effects" `Quick test_pool_iter_runs_all;
        Alcotest.test_case "default domains" `Quick test_pool_default_domains;
        Alcotest.test_case "spawn failure degrades" `Quick
          test_pool_spawn_failure_degrades;
        Alcotest.test_case "stealing preserves order" `Quick
          test_pool_stealing_preserves_order;
        Alcotest.test_case "stealing under skew" `Quick
          test_pool_stealing_steals_under_skew;
        Alcotest.test_case "stealing serial/failure paths" `Quick
          test_pool_stealing_serial_and_failures;
        Alcotest.test_case "service executes all" `Quick
          test_pool_service_executes_all;
        Alcotest.test_case "service traps task exceptions" `Quick
          test_pool_service_traps_exceptions;
        Alcotest.test_case "service single domain" `Quick
          test_pool_service_single_domain ]
    );
    ( "bits.rng",
      [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "range bounds" `Quick test_rng_range_bounds;
        Alcotest.test_case "weighted" `Quick test_rng_weighted;
        Alcotest.test_case "split" `Quick test_rng_split_independent;
        Alcotest.test_case "deterministic across domains" `Quick
          test_rng_deterministic_across_domains;
        Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation ] ) ]

(* Tests for lib/rpc: golden JSON-RPC wire transcripts, the
   content-addressed cache, session conformance against one-shot
   [Rewriter.run], fault containment, socket-level concurrency stress and
   a session fuzzer. The golden tests pin exact response bytes — the wire
   format is a compatibility surface (DESIGN.md §13), so any change here
   must be deliberate. *)

module Json = E9_obs.Json
module Proto = E9_rpc.Proto
module Cache = E9_rpc.Cache
module Server = E9_rpc.Server
module Harness = E9_rpc.Harness
module Fault = E9_fault.Fault
module Codegen = E9_workload.Codegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fixtures and helpers                                                *)
(* ------------------------------------------------------------------ *)

let mkraw seed =
  Elf_file.to_bytes
    (Codegen.generate
       { Codegen.default_profile with
         Codegen.name = Printf.sprintf "rpc-%d" seed;
         seed = Int64.of_int seed;
         functions = 6;
         iterations = 2 })

(* One binary for single-session tests; a trio for stress/fuzz. *)
let raw = lazy (mkraw 31)
let raws = lazy [| mkraw 41; mkraw 42; mkraw 43 |]

(* [one conn line] feeds a line that must produce exactly one response. *)
let one conn line =
  match Server.feed conn line with
  | [ r ], alive -> (r, alive)
  | rs, _ -> Alcotest.failf "expected one response line, got %d" (List.length rs)

let with_conn f =
  let server = Server.create () in
  let conn = Server.connect server in
  Fun.protect ~finally:(fun () -> Server.close_conn conn)
    (fun () -> f server conn)

let jparse line =
  match Json.of_string line with
  | Ok j -> j
  | Error m -> Alcotest.failf "unparsable response %S: %s" line m

let result_of line =
  match Json.member "result" (jparse line) with
  | Some r -> r
  | None -> Alcotest.failf "no result in %s" line

let field r k =
  match Json.member k r with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" k

let error_code line =
  match Json.member "error" (jparse line) with
  | Some err -> (
      match Json.member "code" err with
      | Some (Json.Int c) -> c
      | _ -> Alcotest.failf "error without int code in %s" line)
  | None -> Alcotest.failf "expected an error response, got %s" line

let emit_data line =
  match field (result_of line) "data" with
  | Json.Str hex -> hex
  | _ -> Alcotest.failf "emit data is not a string in %s" line

let mktempdir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rmtempdir dir =
  Array.iter
    (fun name ->
      try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (Sys.readdir dir);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Golden wire transcripts                                             *)
(* ------------------------------------------------------------------ *)

let test_golden_ping () =
  with_conn @@ fun _ conn ->
  let r, alive = one conn {|{"jsonrpc":"2.0","id":1,"method":"ping"}|} in
  check_str "int id" {|{"jsonrpc":"2.0","id":1,"result":"pong"}|} r;
  check_bool "alive" true alive;
  let r, _ = one conn {|{"jsonrpc":"2.0","id":"c-9","method":"ping"}|} in
  check_str "string id" {|{"jsonrpc":"2.0","id":"c-9","result":"pong"}|} r;
  let r, _ = one conn {|{"jsonrpc":"2.0","id":null,"method":"ping"}|} in
  check_str "null id" {|{"jsonrpc":"2.0","id":null,"result":"pong"}|} r

let test_golden_notification () =
  with_conn @@ fun server conn ->
  (* No id = notification: no response, even when the method errors. *)
  let outs, alive = Server.feed conn {|{"jsonrpc":"2.0","method":"ping"}|} in
  check_int "silent" 0 (List.length outs);
  check_bool "alive" true alive;
  let outs, alive = Server.feed conn {|{"jsonrpc":"2.0","method":"zzz"}|} in
  check_int "error is silent too" 0 (List.length outs);
  check_bool "still alive" true alive;
  check_int "both counted" 2 (Server.requests server)

let test_golden_parse_error () =
  with_conn @@ fun _ conn ->
  let r, alive = one conn "{nope" in
  check_str "pinned -32700"
    {|{"jsonrpc":"2.0","id":null,"error":{"code":-32700,"message":"parse error: expected '\"' at 1, got 'n'"}}|}
    r;
  check_bool "parse error kills the session" false alive;
  let outs, alive = Server.feed conn {|{"jsonrpc":"2.0","id":1,"method":"ping"}|} in
  check_int "dead conn is silent" 0 (List.length outs);
  check_bool "stays dead" false alive

let test_golden_invalid_request () =
  with_conn @@ fun _ conn ->
  let r, alive = one conn "42" in
  check_str "non-object"
    {|{"jsonrpc":"2.0","id":null,"error":{"code":-32600,"message":"request must be an object"}}|}
    r;
  check_bool "envelope errors do not kill" true alive;
  let r, _ = one conn {|{"jsonrpc":"2.0","id":1.5,"method":"ping"}|} in
  check_str "fractional id"
    {|{"jsonrpc":"2.0","id":null,"error":{"code":-32600,"message":"id must be an integer, string or null"}}|}
    r;
  let r, _ = one conn {|{"id":1,"method":"ping"}|} in
  check_str "missing jsonrpc"
    {|{"jsonrpc":"2.0","id":null,"error":{"code":-32600,"message":"missing jsonrpc: \"2.0\""}}|}
    r;
  let r, _ = one conn {|{"jsonrpc":"2.0","id":1,"method":"ping","params":[1]}|} in
  check_str "non-object params"
    {|{"jsonrpc":"2.0","id":null,"error":{"code":-32600,"message":"params must be an object"}}|}
    r

let test_golden_method_not_found () =
  with_conn @@ fun _ conn ->
  let r, alive = one conn {|{"jsonrpc":"2.0","id":2,"method":"frobnicate"}|} in
  check_str "pinned -32601"
    {|{"jsonrpc":"2.0","id":2,"error":{"code":-32601,"message":"method not found: frobnicate","data":{"kind":"method"}}}|}
    r;
  check_bool "alive" true alive

let test_golden_state_error () =
  with_conn @@ fun _ conn ->
  let r, alive = one conn {|{"jsonrpc":"2.0","id":7,"method":"emit"}|} in
  check_str "pinned -32000"
    {|{"jsonrpc":"2.0","id":7,"error":{"code":-32000,"message":"emit needs a loaded binary","data":{"kind":"state"}}}|}
    r;
  check_bool "semantic errors do not kill" true alive

let test_golden_invalid_params () =
  with_conn @@ fun _ conn ->
  let r, _ = one conn {|{"jsonrpc":"2.0","id":4,"method":"binary"}|} in
  check_str "pinned -32602"
    {|{"jsonrpc":"2.0","id":4,"error":{"code":-32602,"message":"binary needs a filename or data param","data":{"kind":"params"}}}|}
    r

let test_golden_batch () =
  with_conn @@ fun _ conn ->
  let r, alive =
    one conn
      {|[{"jsonrpc":"2.0","id":1,"method":"ping"},{"jsonrpc":"2.0","id":2,"method":"nope"},{"jsonrpc":"2.0","method":"ping"}]|}
  in
  check_str "one array line, notification omitted"
    {|[{"jsonrpc":"2.0","id":1,"result":"pong"},{"jsonrpc":"2.0","id":2,"error":{"code":-32601,"message":"method not found: nope","data":{"kind":"method"}}}]|}
    r;
  check_bool "alive" true alive;
  let outs, alive =
    Server.feed conn
      {|[{"jsonrpc":"2.0","method":"ping"},{"jsonrpc":"2.0","method":"ping"}]|}
  in
  check_int "all-notification batch: no line at all" 0 (List.length outs);
  check_bool "alive" true alive

let test_golden_empty_batch () =
  with_conn @@ fun _ conn ->
  let r, alive = one conn "[]" in
  check_str "single error, not an empty array"
    {|{"jsonrpc":"2.0","id":null,"error":{"code":-32600,"message":"empty batch"}}|}
    r;
  check_bool "alive" true alive

let test_golden_hex_string_numbers () =
  with_conn @@ fun _ conn ->
  let r, _ =
    one conn
      {|{"jsonrpc":"2.0","id":4,"method":"reserve","params":{"address":"0x400000","length":"32"}}|}
  in
  check_str "hex-string ints accepted"
    {|{"jsonrpc":"2.0","id":4,"result":{"ok":true,"reserved":1}}|} r;
  let r, _ =
    one conn
      {|{"jsonrpc":"2.0","id":5,"method":"reserve","params":{"address":"zzz","length":1}}|}
  in
  check_str "junk string refused"
    {|{"jsonrpc":"2.0","id":5,"error":{"code":-32602,"message":"address must be an integer (or a decimal/0x-hex string)","data":{"kind":"params"}}}|}
    r

let test_golden_status () =
  with_conn @@ fun _ conn ->
  let zero =
    {|{"hits":0,"misses":0,"entries":0,"insertions":0,"evictions":0,"generation":0,"hit_rate":0}|}
  in
  let zero_bypassed =
    {|{"hits":0,"misses":0,"entries":0,"insertions":0,"evictions":0,"generation":0,"hit_rate":0,"bypassed":0}|}
  in
  let r, _ = one conn {|{"jsonrpc":"2.0","id":1,"method":"status"}|} in
  check_str "pinned status shape"
    (Printf.sprintf
       {|{"jsonrpc":"2.0","id":1,"result":{"sessions":{"started":1,"closed":0},"requests":1,"errors":0,"decode_cache":%s,"result_cache":%s,"plan_cache":%s}}|}
       zero_bypassed zero zero)
    r

let test_golden_shutdown () =
  with_conn @@ fun server conn ->
  let r, alive = one conn {|{"jsonrpc":"2.0","id":5,"method":"shutdown"}|} in
  check_str "pinned shutdown"
    {|{"jsonrpc":"2.0","id":5,"result":{"ok":true,"stopping":true}}|} r;
  check_bool "session closes" false alive;
  check_bool "daemon asked to stop" true (Server.stopping server)

let test_hex_roundtrip () =
  let all = Bytes.init 256 Char.chr in
  (match Proto.bytes_of_hex (Proto.hex_of_bytes all) with
  | Ok b -> check_bool "all bytes round-trip" true (Bytes.equal b all)
  | Error m -> Alcotest.failf "roundtrip refused: %s" m);
  check_str "empty" "" (Proto.hex_of_bytes Bytes.empty);
  (match Proto.bytes_of_hex "AB" with
  | Ok b -> check_int "uppercase accepted" 0xab (Char.code (Bytes.get b 0))
  | Error m -> Alcotest.failf "uppercase refused: %s" m);
  (match Proto.bytes_of_hex "abc" with
  | Error m -> check_str "odd length" "odd-length hex string" m
  | Ok _ -> Alcotest.fail "odd-length accepted");
  match Proto.bytes_of_hex "0g" with
  | Error m -> check_str "bad digit" "bad hex digit at 0" m
  | Ok _ -> Alcotest.fail "bad digit accepted"

let test_int_param_forms () =
  let params =
    Json.Obj
      [ ("i", Json.Int 7); ("hex", Json.Str "0x10"); ("dec", Json.Str "12");
        ("junk", Json.Str "nope"); ("b", Json.Bool true) ]
  in
  let get k = Proto.int_param params k in
  check_bool "plain int" true (get "i" = `Ok 7);
  check_bool "hex string" true (get "hex" = `Ok 16);
  check_bool "decimal string" true (get "dec" = `Ok 12);
  check_bool "junk string" true (get "junk" = `Bad);
  check_bool "bool" true (get "b" = `Bad);
  check_bool "absent" true (get "zz" = `Missing)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_fnv_vectors () =
  (* Published FNV-1a 64 vectors. *)
  check_str "empty" "cbf29ce484222325" (Cache.fnv1a64_string "");
  check_str "a" "af63dc4c8601ec8c" (Cache.fnv1a64_string "a");
  check_str "foobar" "85944171f73967e8" (Cache.fnv1a64_string "foobar");
  check_str "bytes agree" (Cache.fnv1a64_string "foobar")
    (Cache.fnv1a64 (Bytes.of_string "foobar"))

let test_cache_lru () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check_bool "a hit" true (Cache.find c "a" = Some 1);
  Cache.add c "c" 3;
  (* "b" was least recently used: the touch on "a" protected it. *)
  check_bool "b evicted" true (Cache.find c "b" = None);
  check_bool "a survives" true (Cache.find c "a" = Some 1);
  check_bool "c present" true (Cache.find c "c" = Some 3);
  let s = Cache.stats c in
  check_int "hits" 3 s.Cache.hits;
  check_int "misses" 1 s.Cache.misses;
  check_int "entries" 2 s.Cache.entries;
  check_int "insertions" 3 s.Cache.insertions;
  check_int "evictions" 1 s.Cache.evictions

let test_cache_flush_generation () =
  let c = Cache.create () in
  Cache.add c "k" 1;
  check_bool "warm" true (Cache.find c "k" = Some 1);
  check_int "flush bumps generation" 1 (Cache.flush c);
  check_int "stale entries excluded" 0 (Cache.stats c).Cache.entries;
  (* Stale entry is dropped lazily and counted as a miss + eviction. *)
  check_bool "stale = miss" true (Cache.find c "k" = None);
  let s = Cache.stats c in
  check_int "lazy eviction counted" 1 s.Cache.evictions;
  Cache.add c "k" 2;
  check_bool "re-add lands in new generation" true (Cache.find c "k" = Some 2);
  check_int "generation sticks" 1 (Cache.stats c).Cache.generation

let test_cache_replace_and_rate () =
  let c = Cache.create () in
  Cache.add c "k" 1;
  Cache.add c "k" 2;
  let s = Cache.stats c in
  check_int "replace keeps one entry" 1 s.Cache.entries;
  check_int "both insertions counted" 2 s.Cache.insertions;
  check_bool "empty rate" true (Cache.hit_rate s = 0.0);
  check_bool "latest wins" true (Cache.find c "k" = Some 2);
  check_bool "one miss" true (Cache.find c "zz" = None);
  check_bool "rate 0.5" true (Cache.hit_rate (Cache.stats c) = 0.5)

(* LRU eviction interleaved with generation flushes under concurrent
   sessions: writer domains hammer a small cache (every add can evict)
   while the main domain flushes repeatedly (every entry goes stale at
   once, then gets dropped lazily). The accounting must stay exact and
   the structure must stay bounded and serviceable. *)
let test_cache_concurrent_flush_lru () =
  let capacity = 8 in
  let c = Cache.create ~capacity () in
  let writers = 4 and per = 400 and flushes = 6 in
  let finds_per_writer = 2 * per in
  let domains =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              let key = Printf.sprintf "w%d-%d" w i in
              Cache.add c key ((w * per) + i);
              (* Own key: hit unless a sibling evicted or a flush staled
                 it. Sibling key: usually a miss. Both paths race against
                 eviction and generation bumps. *)
              (match Cache.find c key with
              | Some v ->
                  if v <> (w * per) + i then
                    Alcotest.failf "w%d-%d read someone else's value" w i
              | None -> ());
              ignore (Cache.find c (Printf.sprintf "w%d-%d" ((w + 1) mod writers) i))
            done))
  in
  for _ = 1 to flushes do
    ignore (Cache.flush c);
    (* A beat of real work between flushes so writers make progress in
       every generation. *)
    for i = 1 to 100 do
      ignore (Cache.find c (Printf.sprintf "pace-%d" i))
    done
  done;
  List.iter Domain.join domains;
  let s = Cache.stats c in
  check_bool "entries bounded by capacity" true (s.Cache.entries <= capacity);
  check_int "generation counts flushes" flushes s.Cache.generation;
  check_int "every add counted" (writers * per) s.Cache.insertions;
  check_int "every find counted"
    ((writers * finds_per_writer) + (flushes * 100))
    (s.Cache.hits + s.Cache.misses);
  (* Whatever raced, the cache must still serve the current generation. *)
  Cache.add c "after" 1;
  check_bool "still serviceable" true (Cache.find c "after" = Some 1);
  check_bool "pre-flush keys are gone" true (Cache.find c "w0-1" = None);
  let s' = Cache.stats c in
  check_bool "evictions keep entries consistent" true
    (s'.Cache.entries <= capacity && s'.Cache.entries >= 1)

(* ------------------------------------------------------------------ *)
(* Session conformance                                                 *)
(* ------------------------------------------------------------------ *)

let test_conformance_transcript () =
  let raw = Lazy.force raw in
  let spec = "patch jumps with counter" in
  let expected = Proto.hex_of_bytes (Harness.reference ~spec raw) in
  let server = Server.create () in
  let rs, alive = Harness.run_session server (Harness.script ~spec raw) in
  check_bool "alive" true alive;
  check_int "three responses" 3 (List.length rs);
  let r1, r2, r3 =
    match rs with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  let b = result_of r1 in
  check_bool "binary ok" true (field b "ok" = Json.Bool true);
  check_bool "size echoed" true (field b "size" = Json.Int (Bytes.length raw));
  check_bool "content hash" true (field b "hash" = Json.Str (Cache.fnv1a64 raw));
  check_bool "one rule" true (field (result_of r2) "rules" = Json.Int 1);
  let e = result_of r3 in
  check_bool "cold emit is a miss" true (field e "cache" = Json.Str "miss");
  check_bool "verified" true (field e "verified" = Json.Bool true);
  check_str "byte-identical to one-shot Rewriter.run" expected (emit_data r3)

let test_emit_resets_state () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let lines =
    Harness.script raw
    @ [ Harness.request ~id:9 "emit" [] ]
    @ Harness.script raw
  in
  let rs, alive = Harness.run_session server lines in
  check_bool "alive" true alive;
  check_int "seven responses" 7 (List.length rs);
  let r = Array.of_list rs in
  check_int "emit after emit: binary is gone" Proto.state_error
    (error_code r.(3));
  check_str "second round served" (emit_data r.(2)) (emit_data r.(6));
  check_bool "and from cache" true
    (field (result_of r.(6)) "cache" = Json.Str "hit")

let test_duplicate_binary () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let load = Harness.request ~id:1 "binary"
      [ ("data", Json.Str (Proto.hex_of_bytes raw)) ]
  in
  let rs, alive =
    Harness.run_session server
      ([ load; load ]
      @ [ Harness.request ~id:2 "patch" [ ("spec", Json.Str Harness.default_spec) ];
          Harness.request ~id:3 "emit" [ ("data", Json.Bool true) ] ])
  in
  check_bool "alive" true alive;
  let r = Array.of_list rs in
  check_int "second load refused" Proto.state_error (error_code r.(1));
  check_str "first load still serves"
    (Proto.hex_of_bytes (Harness.reference raw))
    (emit_data r.(3))

let test_cache_hit_identity () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let rs1, _ = Harness.run_session server (Harness.script raw) in
  let rs2, _ = Harness.run_session server (Harness.script raw) in
  let e1 = List.nth rs1 2 and e2 = List.nth rs2 2 in
  check_bool "first session misses" true
    (field (result_of e1) "cache" = Json.Str "miss");
  check_bool "second session hits" true
    (field (result_of e2) "cache" = Json.Str "hit");
  check_str "hit is byte-identical" (emit_data e1) (emit_data e2);
  let rc = Cache.stats (Server.ctx server).E9_rpc.Session.result_cache in
  check_int "one result hit" 1 rc.Cache.hits;
  check_int "one result miss" 1 rc.Cache.misses;
  (* The hit never reached the frontend: decode cache saw one miss only,
     and the short-circuit is accounted as a bypass, not a failure. *)
  let dc = Cache.stats (Server.ctx server).E9_rpc.Session.decode_cache in
  check_int "decode hits" 0 dc.Cache.hits;
  check_int "decode misses" 1 dc.Cache.misses;
  check_int "result hit counted as decode bypass" 1
    (Atomic.get (Server.ctx server).E9_rpc.Session.bypassed)

let test_flush_forces_recompute () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let rs1, _ = Harness.run_session server (Harness.script raw) in
  let rs_flush, _ =
    Harness.run_session server [ Harness.request ~id:1 "flush" [] ]
  in
  check_bool "flush acks generation" true
    (field (result_of (List.hd rs_flush)) "generation" = Json.Int 1);
  let rs2, _ = Harness.run_session server (Harness.script raw) in
  let e1 = List.nth rs1 2 and e2 = List.nth rs2 2 in
  check_bool "flushed entry misses" true
    (field (result_of e2) "cache" = Json.Str "miss");
  check_str "recompute is still byte-identical" (emit_data e1) (emit_data e2)

let test_options_partition_cache () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let opted =
    [ Harness.request ~id:1 "options"
        [ ("t2", Json.Bool false); ("t3", Json.Bool false) ] ]
    @ Harness.script raw
  in
  let rs1, _ = Harness.run_session server opted in
  let rs2, _ = Harness.run_session server (Harness.script raw) in
  let rs3, _ = Harness.run_session server opted in
  let e1 = List.nth rs1 3
  and e2 = List.nth rs2 2
  and e3 = List.nth rs3 3 in
  check_bool "t1-only run misses" true
    (field (result_of e1) "cache" = Json.Str "miss");
  check_bool "default options are a distinct key" true
    (field (result_of e2) "cache" = Json.Str "miss");
  check_bool "same options hit" true
    (field (result_of e3) "cache" = Json.Str "hit");
  check_str "hit replays the t1-only bytes" (emit_data e1) (emit_data e3);
  check_bool "options actually changed the output" true
    (emit_data e1 <> emit_data e2);
  (* Unknown option keys are refused outright, not ignored. *)
  let rs, _ =
    Harness.run_session server
      [ Harness.request ~id:1 "options" [ ("t9", Json.Bool true) ] ]
  in
  check_int "unknown option" Proto.invalid_params (error_code (List.hd rs))

(* The chunk-plan tier end to end: a plan-enabled emit captures per-chunk
   plans; a [delta] revision of the same binary replays the unchanged
   chunks, and the warm output is byte-identical to a cold plan-enabled
   rewrite of the same revision on a fresh server. *)
let test_plan_emit_and_delta () =
  (* The shared fixture's text (~2 KB) fits one default chunk; replay
     needs several, so this test generates a bigger binary. *)
  let raw =
    Elf_file.to_bytes
      (Codegen.generate
         { Codegen.default_profile with
           Codegen.name = "rpc-plan";
           seed = 51L;
           functions = 60;
           iterations = 2 })
  in
  let base_hash = Cache.fnv1a64 raw in
  (* A valid in-text edit: NOP-fill one decoded instruction of >= 2
     bytes, so the revision is still a clean sweep input. *)
  let text, sites = Frontend.disassemble (Elf_file.of_bytes raw) in
  let site =
    List.find (fun s -> s.Frontend.len >= 2) sites
  in
  let off = text.Frontend.offset + (site.Frontend.addr - text.Frontend.base) in
  let nops = String.concat "" (List.init site.Frontend.len (fun _ -> "90")) in
  let revision =
    let b = Bytes.copy raw in
    Bytes.fill b off site.Frontend.len '\x90';
    b
  in
  let plan_on = Harness.request ~id:1 "options" [ ("plan", Json.Bool true) ] in
  let patch_emit id =
    [ Harness.request ~id "patch" [ ("spec", Json.Str Harness.default_spec) ];
      Harness.request ~id:(id + 1) "emit" [ ("data", Json.Bool true) ] ]
  in
  let plan_field e =
    match field (result_of e) "plan" with
    | Json.Obj _ as p -> p
    | _ -> Alcotest.failf "emit response has no plan object"
  in
  let plan_counts e =
    let p = plan_field e in
    match (field p "hits", field p "misses", field p "conflicts") with
    | Json.Int h, Json.Int m, Json.Int c -> (h, m, c)
    | _ -> Alcotest.failf "plan counters are not ints"
  in
  let server = Server.create () in
  (* Session 1: cold plan-enabled emit of the base (captures plans). *)
  let rs1, alive1 =
    Harness.run_session server
      ((plan_on
       :: [ Harness.request ~id:2 "binary"
              [ ("data", Json.Str (Proto.hex_of_bytes raw)) ] ])
      @ patch_emit 3)
  in
  check_bool "session 1 alive" true alive1;
  let e1 = List.nth rs1 3 in
  let h1, m1, _ = plan_counts e1 in
  check_int "cold emit replays nothing" 0 h1;
  check_bool "cold emit captures chunks" true (m1 > 0);
  check_bool "cold emit verified" true
    (field (result_of e1) "verified" = Json.Bool true);
  (* Session 2: the revision ships as a delta against the retained base
     and replays every untouched chunk from the shared plan cache. *)
  let rs2, alive2 =
    Harness.run_session server
      ((plan_on
       :: [ Harness.request ~id:2 "delta"
              [ ("base", Json.Str base_hash);
                ("edits",
                 Json.List
                   [ Json.Obj
                       [ ("offset", Json.Int off); ("hex", Json.Str nops) ] ])
              ] ])
      @ patch_emit 3)
  in
  check_bool "session 2 alive" true alive2;
  let d = result_of (List.nth rs2 1) in
  check_bool "delta ok" true (field d "ok" = Json.Bool true);
  check_bool "delta echoes base" true (field d "base" = Json.Str base_hash);
  check_bool "delta hash is the revision's" true
    (field d "hash" = Json.Str (Cache.fnv1a64 revision));
  let e2 = List.nth rs2 3 in
  let h2, m2, c2 = plan_counts e2 in
  check_bool "warm emit replays chunks" true (h2 > 0);
  check_bool "warm emit re-searches only the edit" true (m2 >= 1 && m2 <= 2);
  check_int "no conflicts" 0 c2;
  check_bool "warm emit verified" true
    (field (result_of e2) "verified" = Json.Bool true);
  (* Byte-identity gate: warm replay vs a cold chunked rewrite of the
     same revision on a server with an empty plan cache. *)
  let cold_server = Server.create () in
  let rs3, _ =
    Harness.run_session cold_server
      ((plan_on
       :: [ Harness.request ~id:2 "binary"
              [ ("data", Json.Str (Proto.hex_of_bytes revision)) ] ])
      @ patch_emit 3)
  in
  check_str "warm output is byte-identical to cold"
    (emit_data (List.nth rs3 3))
    (emit_data e2);
  (* The shared tier's accounting is visible in status. *)
  let pc = Cache.stats (Server.ctx server).E9_rpc.Session.plan_cache in
  check_bool "plan cache hits recorded" true (pc.Cache.hits >= h2);
  check_bool "plan cache holds captured chunks" true (pc.Cache.entries >= m1)

let test_delta_errors () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  (* Base not retained: a typed state error, session lives. *)
  let rs, alive =
    Harness.run_session server
      [ Harness.request ~id:1 "delta"
          [ ("base", Json.Str "feedfacefeedface");
            ("edits", Json.List []) ] ]
  in
  check_bool "alive after unknown base" true alive;
  check_int "unknown base is a state error" Proto.state_error
    (error_code (List.hd rs));
  (* Out-of-range edit: invalid params, and the base stays loadable. *)
  let load =
    Harness.request ~id:1 "binary"
      [ ("data", Json.Str (Proto.hex_of_bytes raw)) ]
  in
  let rs, alive =
    Harness.run_session server
      [ load;
        Harness.request ~id:2 "emit" [];
        Harness.request ~id:3 "delta"
          [ ("base", Json.Str (Cache.fnv1a64 raw));
            ("edits",
             Json.List
               [ Json.Obj
                   [ ("offset", Json.Int (Bytes.length raw));
                     ("hex", Json.Str "90") ] ]) ] ]
  in
  check_bool "alive after bad edit" true alive;
  let r = Array.of_list rs in
  check_int "oversized edit refused" Proto.invalid_params (error_code r.(2))

let test_malformed_binary_recovers () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let rs, alive =
    Harness.run_session server
      ([ Harness.request ~id:1 "binary" [ ("data", Json.Str "00112233") ] ]
      @ Harness.script raw)
  in
  check_bool "alive" true alive;
  let r = Array.of_list rs in
  check_int "garbage refused typed" Proto.malformed_binary (error_code r.(0));
  check_str "session recovers and serves"
    (Proto.hex_of_bytes (Harness.reference raw))
    (emit_data r.(3))

let test_spec_parse_error_recovers () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let rs, alive =
    Harness.run_session server
      [ Harness.request ~id:1 "binary"
          [ ("data", Json.Str (Proto.hex_of_bytes raw)) ];
        Harness.request ~id:2 "patch"
          [ ("spec", Json.Str "frobnicate all the things") ];
        Harness.request ~id:3 "patch"
          [ ("spec", Json.Str Harness.default_spec) ];
        Harness.request ~id:4 "emit" [ ("data", Json.Bool true) ] ]
  in
  check_bool "alive" true alive;
  let r = Array.of_list rs in
  check_int "bad spec typed" Proto.spec_error (error_code r.(1));
  check_str "good spec after bad one serves"
    (Proto.hex_of_bytes (Harness.reference raw))
    (emit_data r.(3))

let test_trampoline_alias () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let rs, _ =
    Harness.run_session server
      [ Harness.request ~id:1 "trampoline"
          [ ("name", Json.Str "mine"); ("template", Json.Str "counter") ];
        Harness.request ~id:2 "binary"
          [ ("data", Json.Str (Proto.hex_of_bytes raw)) ];
        Harness.request ~id:3 "patch"
          [ ("selector", Json.Str "jumps"); ("trampoline", Json.Str "mine") ];
        Harness.request ~id:4 "emit" [ ("data", Json.Bool true) ];
        Harness.request ~id:5 "trampoline"
          [ ("name", Json.Str "bad"); ("template", Json.Str "zzz") ] ]
  in
  let r = Array.of_list rs in
  check_str "alias resolves to the counter template"
    (Proto.hex_of_bytes
       (Harness.reference ~spec:"patch jumps with counter" raw))
    (emit_data r.(3));
  check_int "unknown template refused" Proto.invalid_params (error_code r.(4))

(* The tool vocabulary (DESIGN.md §15) over the wire: -M/-P pairs ride
   the [tool] method, emit routes through the injected-runtime path, and
   the result is verified against the augmented input before it leaves
   the daemon. Tool rules and patchspec rules are mutually exclusive
   within one emit. *)
let test_tool_session () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let load id =
    Harness.request ~id "binary" [ ("data", Json.Str (Proto.hex_of_bytes raw)) ]
  in
  let tool id m p =
    Harness.request ~id "tool" [ ("match", Json.Str m); ("patch", Json.Str p) ]
  in
  let script =
    [ load 1;
      tool 2 "jumps" "count";
      tool 3 "all" "call:clean record(addr,size,3)";
      Harness.request ~id:4 "emit" [ ("data", Json.Bool true) ] ]
  in
  let rs, alive = Harness.run_session server script in
  check_bool "alive" true alive;
  let r = Array.of_list rs in
  check_bool "first rule" true (field (result_of r.(1)) "rules" = Json.Int 1);
  check_bool "second rule" true (field (result_of r.(2)) "rules" = Json.Int 2);
  let e = result_of r.(3) in
  check_bool "cold emit misses" true (field e "cache" = Json.Str "miss");
  check_bool "emit verified against the augmented input" true
    (field e "verified" = Json.Bool true);
  (* Same session again: the tool cache key covers the rules, so the
     replay is a hit and byte-identical. *)
  let rs2, _ = Harness.run_session server script in
  let e2 = List.nth rs2 3 in
  check_bool "identical session hits" true
    (field (result_of e2) "cache" = Json.Str "hit");
  check_str "hit is byte-identical" (emit_data r.(3)) (emit_data e2);
  (* Different rules must not collide with the cached entry. *)
  let rs3, _ =
    Harness.run_session server
      [ load 1; tool 2 "jumps" "trap";
        Harness.request ~id:3 "emit" [ ("data", Json.Bool true) ] ]
  in
  let e3 = List.nth rs3 2 in
  check_bool "different rules miss" true
    (field (result_of e3) "cache" = Json.Str "miss");
  check_bool "and produce different bytes" true
    (emit_data e3 <> emit_data r.(3))

let test_tool_errors () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let load id =
    Harness.request ~id "binary" [ ("data", Json.Str (Proto.hex_of_bytes raw)) ]
  in
  (* Bad -M / -P arguments are typed spec errors; the session lives. *)
  let rs, alive =
    Harness.run_session server
      [ load 1;
        Harness.request ~id:2 "tool"
          [ ("match", Json.Str "jumps"); ("patch", Json.Str "frobnicate") ];
        Harness.request ~id:3 "tool" [ ("match", Json.Str "jumps") ];
        (* Vocabulary exclusivity, one way... *)
        Harness.request ~id:4 "patch"
          [ ("spec", Json.Str "patch jumps with counter") ];
        Harness.request ~id:5 "tool"
          [ ("match", Json.Str "jumps"); ("patch", Json.Str "count") ] ]
  in
  check_bool "alive" true alive;
  let r = Array.of_list rs in
  check_int "unknown patch builtin typed" Proto.spec_error (error_code r.(1));
  check_int "missing patch param" Proto.invalid_params (error_code r.(2));
  check_bool "patch rules accepted" true
    (field (result_of r.(3)) "rules" = Json.Int 1);
  check_int "tool after patch refused" Proto.state_error (error_code r.(4));
  (* ...and the other: patch after tool is refused too. *)
  let rs, alive =
    Harness.run_session server
      [ load 1;
        Harness.request ~id:2 "tool"
          [ ("match", Json.Str "jumps"); ("patch", Json.Str "count") ];
        Harness.request ~id:3 "patch"
          [ ("spec", Json.Str "patch jumps with counter") ];
        Harness.request ~id:4 "emit" [ ("data", Json.Bool true) ] ]
  in
  check_bool "alive" true alive;
  let r = Array.of_list rs in
  check_int "patch after tool refused" Proto.state_error (error_code r.(2));
  check_bool "tool emit still serves and verifies" true
    (field (result_of r.(3)) "verified" = Json.Bool true)

let test_batch_full_session () =
  let raw = Lazy.force raw in
  let server = Server.create () in
  let batch =
    Printf.sprintf "[%s]" (String.concat "," (Harness.script raw))
  in
  let rs, alive = Harness.run_session server [ batch ] in
  check_bool "alive" true alive;
  check_int "one line back" 1 (List.length rs);
  match jparse (List.hd rs) with
  | Json.List [ _; _; emit ] ->
      let e =
        match Json.member "result" emit with
        | Some r -> r
        | None -> Alcotest.fail "batched emit errored"
      in
      check_bool "verified" true (field e "verified" = Json.Bool true);
      check_bool "identical" true
        (field e "data"
        = Json.Str (Proto.hex_of_bytes (Harness.reference raw)))
  | j -> Alcotest.failf "expected a 3-element array, got %s" (Json.to_string j)

(* ------------------------------------------------------------------ *)
(* Fault containment                                                   *)
(* ------------------------------------------------------------------ *)

let test_fault_decode_kills_session_only () =
  let server = Server.create ~fault:(Fault.create (Fault.parse "rpcdecode@0")) () in
  let rs, alive =
    Harness.run_session server [ {|{"jsonrpc":"2.0","id":1,"method":"ping"}|} ]
  in
  check_int "one injected response" 1 (List.length rs);
  check_int "typed -32006" Proto.injected_fault (error_code (List.hd rs));
  check_bool "session killed" false alive;
  let rs, alive =
    Harness.run_session server [ {|{"jsonrpc":"2.0","id":1,"method":"ping"}|} ]
  in
  check_bool "sibling session unaffected" true alive;
  check_str "and served" {|{"jsonrpc":"2.0","id":1,"result":"pong"}|}
    (List.hd rs);
  let started, closed = Server.sessions server in
  check_int "books balance" started closed

let test_fault_emit_no_partial_file () =
  let raw = Lazy.force raw in
  let dir = mktempdir "e9rpc-test-emitfault" in
  Fun.protect ~finally:(fun () -> rmtempdir dir) @@ fun () ->
  let out = Filename.concat dir "out.elf" in
  let server = Server.create ~fault:(Fault.create (Fault.parse "rpcemit@0")) () in
  let rs, alive =
    Harness.run_session server (Harness.script ~filename:out raw)
  in
  let r = Array.of_list rs in
  check_int "emit answered typed" Proto.injected_fault (error_code r.(2));
  check_bool "session killed" false alive;
  check_bool "no output file" false (Sys.file_exists out);
  check_bool "no temp droppings" true
    (Array.for_all
       (fun n -> not (Filename.check_suffix n ".tmp"))
       (Sys.readdir dir));
  (* Occurrence 0 is spent: the next session emits for real. *)
  let rs, alive =
    Harness.run_session server (Harness.script ~filename:out raw)
  in
  check_bool "next session alive" true alive;
  check_bool "emit ok" true
    (field (result_of (List.nth rs 2)) "ok" = Json.Bool true);
  check_str "file matches the one-shot rewrite"
    (Bytes.to_string (Harness.reference raw))
    (read_file out)

let test_fault_read_drops_silently () =
  let server = Server.create ~fault:(Fault.create (Fault.parse "rpcread@0")) () in
  let rs, alive =
    Harness.run_session server [ {|{"jsonrpc":"2.0","id":1,"method":"ping"}|} ]
  in
  check_int "read loss: no response" 0 (List.length rs);
  check_bool "session dropped" false alive;
  let _, alive =
    Harness.run_session server [ {|{"jsonrpc":"2.0","id":1,"method":"ping"}|} ]
  in
  check_bool "daemon survives" true alive

let test_fault_accept_gate () =
  let server = Server.create ~fault:(Fault.create (Fault.parse "rpcaccept@0")) () in
  check_bool "first accept refused" false (Server.accept_gate server);
  check_bool "second accept admitted" true (Server.accept_gate server);
  let rs, _ =
    Harness.run_session server [ {|{"jsonrpc":"2.0","id":1,"method":"ping"}|} ]
  in
  (* run_session consults the gate itself; the occurrence above already
     spent the rule so this session was admitted. *)
  check_int "admitted session answers" 1 (List.length rs)

let test_fault_campaign () =
  let s = Harness.campaign ~n:8 ~seed:5 () in
  List.iter
    (fun (case, why) -> Printf.printf "  violation %s: %s\n%!" case why)
    s.Harness.failures;
  check_int "no contract violations" 0 (List.length s.Harness.failures);
  check_int "all cases ran" 8 s.Harness.cases;
  check_int "every session classified" 24
    (s.Harness.served + s.Harness.dropped + s.Harness.typed)

(* ------------------------------------------------------------------ *)
(* Socket concurrency stress                                           *)
(* ------------------------------------------------------------------ *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let rec connect_retry path tries =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
    when tries > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.02;
      connect_retry path (tries - 1)

(* One scripted client session over the socket: write the three request
   lines, read the three response lines, close. *)
let socket_session ~path ~dir ~raws idx =
  let b = idx mod Array.length raws in
  let out = Filename.concat dir (Printf.sprintf "out-%d.elf" idx) in
  let fd = connect_retry path 250 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        (Harness.script ~filename:out raws.(b));
      flush oc;
      let r1 = input_line ic in
      let r2 = input_line ic in
      let r3 = input_line ic in
      [ r1; r2; r3 ])

let test_socket_stress () =
  let raws = Lazy.force raws in
  let expected = Array.map (fun r -> Proto.hex_of_bytes (Harness.reference r)) raws in
  let dir = mktempdir "e9rpc-test-stress" in
  Fun.protect ~finally:(fun () -> rmtempdir dir) @@ fun () ->
  let fds_before = count_fds () in
  let server = Server.create () in
  let path = Filename.concat dir "rpc.sock" in
  let n_sessions = 12 in
  let srv =
    Domain.spawn (fun () ->
        Server.serve_unix server ~path ~domains:4 ~max_sessions:n_sessions ())
  in
  (* 4 client domains × 3 sessions each, striped over 3 binaries. *)
  let clients =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            List.init 3 (fun k ->
                let idx = d + (4 * k) in
                (idx, socket_session ~path ~dir ~raws idx))))
  in
  let sessions = List.concat_map Domain.join clients in
  Domain.join srv;
  List.iter
    (fun (idx, rs) ->
      let e = result_of (List.nth rs 2) in
      check_bool
        (Printf.sprintf "session %d verified" idx)
        true
        (field e "verified" = Json.Bool true);
      check_str
        (Printf.sprintf "session %d bytes (no cross-session bleed)" idx)
        expected.(idx mod 3)
        (emit_data (List.nth rs 2));
      let file = Filename.concat dir (Printf.sprintf "out-%d.elf" idx) in
      check_str
        (Printf.sprintf "session %d file" idx)
        expected.(idx mod 3)
        (Proto.hex_of_bytes (Bytes.unsafe_of_string (read_file file))))
    sessions;
  let started, closed = Server.sessions server in
  check_int "all sessions started" n_sessions started;
  check_int "clean shutdown closes every session" n_sessions closed;
  check_bool "socket unlinked" false (Sys.file_exists path);
  let rc = Cache.stats (Server.ctx server).E9_rpc.Session.result_cache in
  check_bool "shared cache saw hits" true (rc.Cache.hits > 0);
  check_bool "no temp droppings" true
    (Array.for_all
       (fun n -> not (Filename.check_suffix n ".tmp"))
       (Sys.readdir dir));
  check_int "no leaked fds" fds_before (count_fds ())

(* ------------------------------------------------------------------ *)
(* Session fuzz                                                        *)
(* ------------------------------------------------------------------ *)

(* Benign noise a client can inject anywhere in a scripted session: each
   kind draws exactly one typed error response and must leave the session
   alive and the eventual emit byte-identical to the one-shot rewrite. *)
type noise = Early_emit | Unknown of int | Bad_reserve of int | Dup_binary

type sdesc = { bin : int; sp : int; noises : noise list }

let fuzz_specs = [| "patch jumps with empty"; "patch jumps with counter" |]

let gen_sdesc =
  let open QCheck2.Gen in
  let gen_noise =
    oneof
      [ return Early_emit;
        map (fun p -> Unknown p) (int_bound 3);
        map (fun p -> Bad_reserve p) (int_bound 3);
        return Dup_binary ]
  in
  let* bin = int_bound 2 in
  let* sp = int_bound 1 in
  let* noises = list_size (int_bound 2) gen_noise in
  return { bin; sp; noises }

let gen_fuzz_case = QCheck2.Gen.(list_size (int_range 1 3) gen_sdesc)

let print_sdesc d =
  Printf.sprintf "{bin=%d; spec=%d; noise=[%s]}" d.bin d.sp
    (String.concat ";"
       (List.map
          (function
            | Early_emit -> "early-emit"
            | Unknown p -> Printf.sprintf "unknown@%d" p
            | Bad_reserve p -> Printf.sprintf "bad-reserve@%d" p
            | Dup_binary -> "dup-binary")
          d.noises))

(* Weave noise lines into the 3-line core script. Returns the lines and
   the ids of the noise requests (each must answer with an error). *)
let fuzz_lines raws d =
  let core = Array.of_list (Harness.script ~spec:fuzz_specs.(d.sp) raws.(d.bin)) in
  let noise_at i n =
    let id = 80 + i in
    let line =
      match n with
      | Early_emit -> (0, Harness.request ~id "emit" [])
      | Unknown p -> (p, Harness.request ~id "frobnicate" [])
      | Bad_reserve p -> (p, Harness.request ~id "reserve" [])
      | Dup_binary ->
          ( 1,
            Harness.request ~id "binary"
              [ ("data", Json.Str (Proto.hex_of_bytes raws.(d.bin))) ] )
    in
    (id, line)
  in
  let tagged = List.mapi noise_at d.noises in
  let ids = List.map fst tagged in
  let inserts = List.map snd tagged in
  let lines = ref [] in
  for pos = Array.length core downto 0 do
    if pos < Array.length core then lines := core.(pos) :: !lines;
    List.iter
      (fun (p, l) -> if p = pos then lines := l :: !lines)
      (List.rev inserts)
  done;
  (!lines, ids)

let fuzz_expected = lazy (
  let raws = Lazy.force raws in
  Array.init (Array.length raws) (fun b ->
      Array.map
        (fun spec -> Proto.hex_of_bytes (Harness.reference ~spec raws.(b)))
        fuzz_specs))

let prop_session_fuzz =
  QCheck2.Test.make ~count:15 ~name:"interleaved noisy sessions stay conformant"
    ~print:(fun descs -> String.concat " " (List.map print_sdesc descs))
    gen_fuzz_case
    (fun descs ->
      let raws = Lazy.force raws in
      let expected = Lazy.force fuzz_expected in
      let server = Server.create () in
      let scripts =
        Array.of_list (List.map (fun d -> fuzz_lines raws d) descs)
      in
      let conns = Array.map (fun _ -> Server.connect server) scripts in
      let ptr = Array.make (Array.length scripts) 0 in
      let resp = Array.make (Array.length scripts) [] in
      let alive = Array.make (Array.length scripts) true in
      (* Round-robin one line per session: sessions interleave on the
         shared server and caches, as concurrent clients would. *)
      let progressed = ref true in
      while !progressed do
        progressed := false;
        Array.iteri
          (fun i (lines, _) ->
            let arr = Array.of_list lines in
            if ptr.(i) < Array.length arr then begin
              progressed := true;
              let outs, ok = Server.feed conns.(i) arr.(ptr.(i)) in
              resp.(i) <- resp.(i) @ outs;
              alive.(i) <- ok;
              ptr.(i) <- ptr.(i) + 1
            end)
          scripts
      done;
      Array.iter Server.close_conn conns;
      let ok = ref true in
      Array.iteri
        (fun i (_, noise_ids) ->
          let d = List.nth descs i in
          if not alive.(i) then ok := false;
          let err_ids =
            List.filter_map
              (fun line ->
                let j = jparse line in
                match (Json.member "error" j, Json.member "id" j) with
                | Some _, Some (Json.Int id) -> Some id
                | _ -> None)
              resp.(i)
          in
          (* Every noise line errored, and nothing else did. *)
          if List.sort compare err_ids <> List.sort compare noise_ids then
            ok := false;
          let emit =
            List.find_opt
              (fun line ->
                Json.member "id" (jparse line) = Some (Json.Int 3)
                && Json.member "result" (jparse line) <> None)
              resp.(i)
          in
          match emit with
          | None -> ok := false
          | Some line ->
              if emit_data line <> expected.(d.bin).(d.sp) then ok := false)
        scripts;
      let started, closed = Server.sessions server in
      !ok && started = closed)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "rpc.proto",
      [
        Alcotest.test_case "golden: ping ids" `Quick test_golden_ping;
        Alcotest.test_case "golden: notifications" `Quick
          test_golden_notification;
        Alcotest.test_case "golden: parse error" `Quick test_golden_parse_error;
        Alcotest.test_case "golden: invalid request" `Quick
          test_golden_invalid_request;
        Alcotest.test_case "golden: method not found" `Quick
          test_golden_method_not_found;
        Alcotest.test_case "golden: state error" `Quick test_golden_state_error;
        Alcotest.test_case "golden: invalid params" `Quick
          test_golden_invalid_params;
        Alcotest.test_case "golden: batch" `Quick test_golden_batch;
        Alcotest.test_case "golden: empty batch" `Quick test_golden_empty_batch;
        Alcotest.test_case "golden: hex-string numbers" `Quick
          test_golden_hex_string_numbers;
        Alcotest.test_case "golden: status" `Quick test_golden_status;
        Alcotest.test_case "golden: shutdown" `Quick test_golden_shutdown;
        Alcotest.test_case "hex round-trip" `Quick test_hex_roundtrip;
        Alcotest.test_case "int param forms" `Quick test_int_param_forms;
      ] );
    ( "rpc.cache",
      [
        Alcotest.test_case "fnv-1a vectors" `Quick test_fnv_vectors;
        Alcotest.test_case "lru eviction" `Quick test_cache_lru;
        Alcotest.test_case "flush = lazy generation invalidation" `Quick
          test_cache_flush_generation;
        Alcotest.test_case "replace and hit rate" `Quick
          test_cache_replace_and_rate;
        Alcotest.test_case "concurrent eviction x generation flush" `Quick
          test_cache_concurrent_flush_lru;
      ] );
    ( "rpc.session",
      [
        Alcotest.test_case "conformance transcript" `Quick
          test_conformance_transcript;
        Alcotest.test_case "emit resets per-binary state" `Quick
          test_emit_resets_state;
        Alcotest.test_case "duplicate binary refused" `Quick
          test_duplicate_binary;
        Alcotest.test_case "cache hit is byte-identical" `Quick
          test_cache_hit_identity;
        Alcotest.test_case "flush forces recompute" `Quick
          test_flush_forces_recompute;
        Alcotest.test_case "options partition the cache" `Quick
          test_options_partition_cache;
        Alcotest.test_case "plan tier: emit + delta replay" `Quick
          test_plan_emit_and_delta;
        Alcotest.test_case "delta error paths" `Quick test_delta_errors;
        Alcotest.test_case "malformed binary recovers" `Quick
          test_malformed_binary_recovers;
        Alcotest.test_case "spec parse error recovers" `Quick
          test_spec_parse_error_recovers;
        Alcotest.test_case "trampoline aliases" `Quick test_trampoline_alias;
        Alcotest.test_case "tool vocabulary round-trip" `Quick
          test_tool_session;
        Alcotest.test_case "tool error paths + exclusivity" `Quick
          test_tool_errors;
        Alcotest.test_case "batched full session" `Quick test_batch_full_session;
      ] );
    ( "rpc.fault",
      [
        Alcotest.test_case "decode fault kills session only" `Quick
          test_fault_decode_kills_session_only;
        Alcotest.test_case "emit fault leaves no partial file" `Quick
          test_fault_emit_no_partial_file;
        Alcotest.test_case "read fault drops silently" `Quick
          test_fault_read_drops_silently;
        Alcotest.test_case "accept gate" `Quick test_fault_accept_gate;
        Alcotest.test_case "campaign: three permitted outcomes" `Slow
          test_fault_campaign;
      ] );
    ( "rpc.stress",
      [ Alcotest.test_case "socket: 4 domains x 3 sessions" `Slow
          test_socket_stress ] );
    ( "rpc.fuzz", [ QCheck_alcotest.to_alcotest prop_session_fuzz ] );
  ]

(* Tests for the E9_obs telemetry layer: sink semantics, the ndjson
   schema, and the golden property that a trace of a real rewrite is
   internally consistent and agrees with the rewriter's own Stats. *)

module Obs = E9_obs.Obs
module Json = E9_obs.Json
module Codegen = E9_workload.Codegen
module Rewriter = E9_core.Rewriter
module Trampoline = E9_core.Trampoline
module Stats = E9_core.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let test_null_sink () =
  let obs = Obs.null in
  check_bool "detached" false (Obs.enabled obs);
  Obs.accept obs ~addr:0x400000 ~tactic:Obs.B1 ~trampoline:0x700000 ~pad:0
    ~evictee_distance:0;
  Obs.gauge obs ~name:"x" ~value:1;
  check_int "no events" 0 (List.length (Obs.events obs));
  check_int "empty agg" 0 (Obs.agg obs).Obs.Agg.sites;
  (* span must still run the thunk and pass its value through *)
  check_int "span transparent" 41 (Obs.span obs "t" (fun () -> 41))

let test_ring_overflow () =
  let obs = Obs.ring ~capacity:4 () in
  check_bool "attached" true (Obs.enabled obs);
  for i = 0 to 9 do
    Obs.counter obs ~name:"c" ~value:i
  done;
  check_int "dropped oldest" 6 (Obs.dropped obs);
  let values =
    List.map
      (function Obs.Counter { value; _ } -> value | _ -> -1)
      (Obs.events obs)
  in
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 6; 7; 8; 9 ] values

let test_aggregator_sink () =
  let obs = Obs.aggregator () in
  Obs.accept obs ~addr:1 ~tactic:Obs.T1 ~trampoline:2 ~pad:3 ~evictee_distance:0;
  Obs.reject obs ~addr:4 ~tactic:Obs.T2 ~reason:Obs.No_successor;
  Obs.site obs ~addr:1 ~tactic:(Some Obs.T1);
  Obs.site obs ~addr:4 ~tactic:None;
  Obs.counter obs ~name:"k" ~value:2;
  Obs.counter obs ~name:"k" ~value:3;
  Obs.gauge obs ~name:"g" ~value:7;
  Obs.gauge obs ~name:"g" ~value:8;
  let a = Obs.agg obs in
  check_int "accepted t1" 1 a.Obs.Agg.accepted.(3);
  check_int "rejected no_successor" 1 a.Obs.Agg.rejected.(5);
  check_int "sites" 2 a.Obs.Agg.sites;
  check_int "patched" 1 a.Obs.Agg.sites_patched;
  check_int "failed" 1 a.Obs.Agg.sites_failed;
  check_int "pad bytes" 3 a.Obs.Agg.pad_bytes;
  check_int "counters sum" 5 (Hashtbl.find a.Obs.Agg.counters "k");
  check_int "gauges keep last" 8 (Hashtbl.find a.Obs.Agg.gauges "g");
  check_int "ring view empty" 0 (List.length (Obs.events obs))

let test_agg_merge () =
  let a = Obs.Agg.create () and b = Obs.Agg.create () in
  Obs.Agg.add_event a (Obs.Site { addr = 1; tactic = Some Obs.B1 });
  Obs.Agg.add_event a (Obs.Span { name = "s"; dur_ns = 1_000_000_000 });
  Obs.Agg.add_event b (Obs.Site { addr = 2; tactic = None });
  Obs.Agg.add_event b (Obs.Span { name = "s"; dur_ns = 500_000_000 });
  Obs.Agg.merge_into ~dst:a b;
  check_int "sites" 2 a.Obs.Agg.sites;
  check_int "failed" 1 a.Obs.Agg.sites_failed;
  let calls, total = Hashtbl.find a.Obs.Agg.spans "s" in
  check_int "span calls" 2 calls;
  check_int "span total ns" 1_500_000_000 total;
  check_bool "span total s" true
    (abs_float (Obs.Agg.span_total a "s" -. 1.5) < 1e-12)

(* ------------------------------------------------------------------ *)
(* ndjson schema                                                       *)
(* ------------------------------------------------------------------ *)

(* Span durations are integer nanoseconds on the wire, so round-trips
   are exact structural equality. *)
let event_approx_eq a b = a = b

let sample_events =
  [ Obs.Attempt
      { addr = 0x400123;
        tactic = Obs.T2;
        outcome =
          Obs.Accepted { trampoline = 0x70_0040; pad = 2; evictee_distance = 5 } };
    Obs.Attempt
      { addr = 0x400200;
        tactic = Obs.B2;
        outcome = Obs.Rejected Obs.Pun_miss };
    Obs.Site { addr = 0x400123; tactic = Some Obs.T2 };
    Obs.Site { addr = 0x400300; tactic = None };
    Obs.Attempt
      { addr = 0x400400;
        tactic = Obs.B1;
        outcome = Obs.Rejected Obs.Injected };
    Obs.Span { name = "decode"; dur_ns = 250_000_000 };
    Obs.Gauge { name = "layout.occupied_intervals"; value = 17 };
    Obs.Counter { name = "emu.block_hits"; value = 12345 };
    Obs.Fault { site = "alloc"; fires = 3 } ]

let test_json_line_roundtrip () =
  List.iter
    (fun e ->
      let line = Json.to_string (Obs.event_to_json e) in
      match Json.of_string line with
      | Error m -> Alcotest.failf "reparse failed on %s: %s" line m
      | Ok j -> (
          match Obs.event_of_json j with
          | Error m -> Alcotest.failf "schema rejected %s: %s" line m
          | Ok e' ->
              check_bool (Printf.sprintf "roundtrip %s" line) true
                (event_approx_eq e e')))
    sample_events

let test_validate_rejects_bad_lines () =
  let expect_err label s =
    match Obs.validate_ndjson s with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error _ -> ()
  in
  expect_err "not json" "{nope";
  expect_err "not an object" "42\n";
  expect_err "unknown kind" {|{"ev":"bogus"}|};
  expect_err "missing field" {|{"ev":"gauge","name":"x"}|};
  expect_err "unknown tactic" {|{"ev":"site","addr":1,"tactic":"T9"}|};
  expect_err "unknown reason"
    {|{"ev":"attempt","addr":1,"tactic":"B1","outcome":"rejected","reason":"gremlins"}|};
  expect_err "bad value type" {|{"ev":"counter","name":"x","value":"many"}|};
  expect_err "fault missing fires" {|{"ev":"fault","site":"alloc"}|}

let test_fault_events_and_sink_error () =
  let obs = Obs.ring () in
  Obs.fault obs ~site:"alloc" ~fires:2;
  Obs.fault obs ~site:"write" ~fires:1;
  let a = Obs.agg obs in
  check_int "fault events fold into counters" 2
    (Hashtbl.find a.Obs.Agg.counters "fault.alloc");
  check_int "per-site" 1 (Hashtbl.find a.Obs.Agg.counters "fault.write");
  let path = Filename.temp_file "e9obs" ".ndjson" in
  Sys.remove path;
  (* A failing sink is a typed error and leaves nothing behind — neither
     the target nor the temporary. *)
  (match Obs.write_ndjson ~fault:(fun () -> true) obs path with
  | () -> Alcotest.fail "expected Sink_error"
  | exception Obs.Sink_error _ -> ());
  check_bool "no file" false (Sys.file_exists path);
  check_bool "no temp left" false (Sys.file_exists (path ^ ".tmp"));
  (* And the same sink succeeds cleanly afterwards with a valid trace. *)
  Obs.write_ndjson obs path;
  let contents = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  match Obs.validate_ndjson contents with
  | Ok evs -> check_int "both fault events" 2 (List.length evs)
  | Error m -> Alcotest.failf "written trace invalid: %s" m

(* ------------------------------------------------------------------ *)
(* Golden trace of a real rewrite                                      *)
(* ------------------------------------------------------------------ *)

let profile seed =
  { Codegen.default_profile with Codegen.seed; functions = 40; iterations = 60 }

let traced_rewrite obs =
  let elf = Codegen.generate (profile 21L) in
  Rewriter.run ~obs elf ~select:Frontend.select_jumps
    ~template:(fun _ -> Trampoline.Counter)

let test_trace_golden () =
  let obs = Obs.ring () in
  let r = traced_rewrite obs in
  check_int "nothing dropped" 0 (Obs.dropped obs);
  let ndjson = Obs.to_ndjson obs in
  (* Every line passes the schema validator and reconstructs the event
     stream. *)
  let evs =
    match Obs.validate_ndjson ndjson with
    | Ok evs -> evs
    | Error m -> Alcotest.failf "trace failed validation: %s" m
  in
  check_int "every event survived the round trip"
    (List.length (Obs.events obs))
    (List.length evs);
  List.iter2
    (fun a b -> check_bool "line-level roundtrip" true (event_approx_eq a b))
    (Obs.events obs) evs;
  (* The trace must agree with the rewriter's own accounting. *)
  let a = Obs.Agg.of_events evs in
  let s = r.Rewriter.stats in
  check_int "sites = Stats.total" (Stats.total s) a.Obs.Agg.sites;
  check_int "patched = Stats.succeeded" (Stats.succeeded s)
    a.Obs.Agg.sites_patched;
  check_int "failed" s.Stats.failed a.Obs.Agg.sites_failed;
  check_int "b0" s.Stats.b0 a.Obs.Agg.accepted.(0);
  check_int "b1" s.Stats.b1 a.Obs.Agg.accepted.(1);
  check_int "b2" s.Stats.b2 a.Obs.Agg.accepted.(2);
  check_int "t1" s.Stats.t1 a.Obs.Agg.accepted.(3);
  check_int "t2" s.Stats.t2 a.Obs.Agg.accepted.(4);
  check_int "t3" s.Stats.t3 a.Obs.Agg.accepted.(5);
  check_int "per-tactic counts sum to sites patched" a.Obs.Agg.sites_patched
    (Array.fold_left ( + ) 0 a.Obs.Agg.accepted);
  check_bool "rewrite actually patched something" true (a.Obs.Agg.sites_patched > 0);
  (* Phase spans: one of each, non-negative. *)
  List.iter
    (fun name ->
      match Hashtbl.find_opt a.Obs.Agg.spans name with
      | None -> Alcotest.failf "missing span %S" name
      | Some (calls, total) ->
          check_int (name ^ " calls") 1 calls;
          check_bool (name ^ " non-negative") true (total >= 0))
    [ "decode"; "tactic_search"; "layout"; "serialize" ];
  (* Allocator gauges land in the trace. *)
  List.iter
    (fun name ->
      check_bool (Printf.sprintf "gauge %S present" name) true
        (Hashtbl.mem a.Obs.Agg.gauges name))
    [ "layout.occupied_intervals"; "layout.trampoline_extents";
      "layout.trampoline_bytes"; "text.locked_bytes" ];
  (* When CI points E9_TRACE_DIR at an artifact directory, persist the
     validated trace there. *)
  match Sys.getenv_opt "E9_TRACE_DIR" with
  | Some dir when dir <> "" && Sys.file_exists dir && Sys.is_directory dir ->
      Obs.write_ndjson obs (Filename.concat dir "trace.ndjson")
  | _ -> ()

let test_aggregator_matches_ring () =
  (* The streaming aggregator must compute exactly the rollup a ring's
     buffered events reduce to (modulo span wall-clock noise). *)
  let ring = Obs.ring () and stream = Obs.aggregator () in
  ignore (traced_rewrite ring);
  ignore (traced_rewrite stream);
  let a = Obs.agg ring and b = Obs.agg stream in
  Alcotest.(check (array int)) "accepted" a.Obs.Agg.accepted b.Obs.Agg.accepted;
  Alcotest.(check (array int)) "rejected" a.Obs.Agg.rejected b.Obs.Agg.rejected;
  check_int "sites" a.Obs.Agg.sites b.Obs.Agg.sites;
  check_int "pad bytes" a.Obs.Agg.pad_bytes b.Obs.Agg.pad_bytes;
  let names tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare in
  Alcotest.(check (list string)) "same spans" (names a.Obs.Agg.spans)
    (names b.Obs.Agg.spans);
  Alcotest.(check (list string)) "same gauges" (names a.Obs.Agg.gauges)
    (names b.Obs.Agg.gauges)

let test_detached_rewrite_unchanged () =
  (* A rewrite with the null sink must produce the same binary and stats
     as a traced one: observation must not perturb the subject. *)
  let ring = Obs.ring () in
  let traced = traced_rewrite ring in
  let plain = traced_rewrite Obs.null in
  check_bool "same output image" true
    (Elf_file.to_bytes traced.Rewriter.output
    = Elf_file.to_bytes plain.Rewriter.output);
  check_bool "same stats" true (traced.Rewriter.stats = plain.Rewriter.stats)

(* ------------------------------------------------------------------ *)
(* Json parser corners                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_parser_corners () =
  let ok s = Result.is_ok (Json.of_string s) in
  check_bool "nested" true (ok {|{"a":[1,2,{"b":null}],"c":-3.5e2}|});
  check_bool "escapes" true (ok {|{"s":"a\"b\\c\ndA"}|});
  check_bool "trailing garbage" false (ok {|{"a":1} extra|});
  check_bool "unterminated" false (ok {|{"a":|});
  check_bool "lone minus" false (ok "-");
  match Json.of_string {|{"x":7}|} with
  | Ok j -> check_bool "member" true (Json.member "x" j = Some (Json.Int 7))
  | Error m -> Alcotest.failf "parse failed: %s" m

(* ------------------------------------------------------------------ *)
(* Enum encoding golden                                                *)
(* ------------------------------------------------------------------ *)

(* The wire encoding of the two enums is an external contract: the
   Agg.rejected/accepted array positions feed BENCH_throughput.json and
   robust_matrix.json, and the names appear in every ndjson trace. This
   golden pins both — reordering a variant, renaming its spelling, or
   inserting one mid-enum must fail here, not silently reshuffle every
   downstream consumer's histograms. *)
let test_enum_encoding_golden () =
  let rejects =
    [ (Obs.Too_short, 0, "too_short");
      (Obs.Locked, 1, "locked");
      (Obs.Pun_miss, 2, "pun_miss");
      (Obs.Range, 3, "range");
      (Obs.Alloc_conflict, 4, "alloc_conflict");
      (Obs.No_successor, 5, "no_successor");
      (Obs.Budget, 6, "budget");
      (Obs.Injected, 7, "injected");
      (Obs.Dead_window, 8, "dead_window");
      (Obs.Stripe_blocked, 9, "stripe_blocked") ]
  in
  let tactics =
    [ (Obs.B0, 0, "B0"); (Obs.B1, 1, "B1"); (Obs.B2, 2, "B2");
      (Obs.T1, 3, "T1"); (Obs.T2, 4, "T2"); (Obs.T3, 5, "T3") ]
  in
  check_int "reject enum is exactly 10 wide" 10 (List.length rejects);
  let agg = (let obs = Obs.aggregator () in Obs.agg obs) in
  check_int "rejected array width" (List.length rejects)
    (Array.length agg.Obs.Agg.rejected);
  check_int "accepted array width" (List.length tactics)
    (Array.length agg.Obs.Agg.accepted);
  List.iter
    (fun (r, idx, name) ->
      Alcotest.(check string) ("spelling of " ^ name) name (Obs.reject_name r);
      (* One event per reason must land at exactly the pinned index. *)
      let obs = Obs.aggregator () in
      Obs.reject obs ~addr:0x400000 ~tactic:Obs.B1 ~reason:r;
      let a = Obs.agg obs in
      Array.iteri
        (fun i n ->
          check_int
            (Printf.sprintf "%s counts at index %d only" name i)
            (if i = idx then 1 else 0)
            n)
        a.Obs.Agg.rejected)
    rejects;
  List.iter
    (fun (t, idx, name) ->
      Alcotest.(check string) ("spelling of " ^ name) name (Obs.tactic_name t);
      let obs = Obs.aggregator () in
      Obs.accept obs ~addr:0x400000 ~tactic:t ~trampoline:0x700000 ~pad:0
        ~evictee_distance:0;
      let a = Obs.agg obs in
      Array.iteri
        (fun i n ->
          check_int
            (Printf.sprintf "%s counts at index %d only" name i)
            (if i = idx then 1 else 0)
            n)
        a.Obs.Agg.accepted)
    tactics;
  (* The ndjson spellings parse back to the same variants. *)
  List.iter
    (fun (r, _, _) ->
      let e =
        Obs.Attempt
          { addr = 1; tactic = Obs.B1; outcome = Obs.Rejected r }
      in
      match Obs.event_of_json (Obs.event_to_json e) with
      | Ok e' -> check_bool "reject json roundtrip" true (e = e')
      | Error m -> Alcotest.failf "reject %s: %s" (Obs.reject_name r) m)
    rejects

let suites =
  [ ( "obs",
      [ Alcotest.test_case "null sink is free and transparent" `Quick
          test_null_sink;
        Alcotest.test_case "ring drops oldest on overflow" `Quick
          test_ring_overflow;
        Alcotest.test_case "aggregator folds events" `Quick test_aggregator_sink;
        Alcotest.test_case "aggregate merge" `Quick test_agg_merge;
        Alcotest.test_case "ndjson line roundtrip" `Quick
          test_json_line_roundtrip;
        Alcotest.test_case "validator rejects bad lines" `Quick
          test_validate_rejects_bad_lines;
        Alcotest.test_case "fault events and sink containment" `Quick
          test_fault_events_and_sink_error;
        Alcotest.test_case "golden trace of a rewrite" `Quick test_trace_golden;
        Alcotest.test_case "aggregator matches ring rollup" `Quick
          test_aggregator_matches_ring;
        Alcotest.test_case "tracing does not perturb the rewrite" `Quick
          test_detached_rewrite_unchanged;
        Alcotest.test_case "json parser corners" `Quick
          test_json_parser_corners;
        Alcotest.test_case "enum encoding golden" `Quick
          test_enum_encoding_golden ] ) ]

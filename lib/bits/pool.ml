(* A small domain-parallel map over independent tasks.

   Work distribution is a shared atomic cursor over the input array: each
   domain claims the next unclaimed index, so uneven task costs balance
   without chunk-size tuning. Results land in per-index slots, which keeps
   the output in input order regardless of completion order — callers that
   print results sequentially are byte-identical to a serial run. *)

let default_domains () =
  match Sys.getenv_opt "E9_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let map ?domains ?(spawn_failure = fun _ -> false) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let d =
    let want = match domains with Some d -> max 1 d | None -> default_domains () in
    min want n
  in
  if d <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (try Some (Ok (f items.(i)))
             with e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          go ()
        end
      in
      go ()
    in
    (* Helper-domain loss containment: when the runtime cannot spawn a
       helper (resource exhaustion, or an injected failure via
       [spawn_failure]), degrade to fewer workers instead of propagating
       mid-spawn — which would leave earlier helpers unjoined. The shared
       cursor guarantees the surviving workers (at minimum the calling
       domain itself) still drain every task, so no task is dropped and
       no join deadlocks. *)
    let helpers =
      List.init (d - 1) Fun.id
      |> List.filter_map (fun i ->
             if spawn_failure i then None
             else
               match Domain.spawn worker with
               | dom -> Some dom
               | exception _ -> None)
    in
    worker ();
    List.iter Domain.join helpers;
    (* The exception at the lowest input index wins — the one a serial
       List.map would have raised (later tasks may already have run; their
       side effects stand, as with any parallel map). *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)

type steal_report = { workers : int; steals : int }

(* Work-stealing variant: the index space is split into one contiguous
   deque per worker (deque w owns indexes [w*n/d, (w+1)*n/d)), each with
   its own atomic head. A worker drains its own deque first — giving the
   cache-friendly contiguous walk the plain shared-cursor [map] lacks —
   then claims from the other deques round-robin until every head has
   passed its tail. Which domain *executes* a task is schedule-dependent;
   which tasks exist, and the order results are returned in, is not:
   results land in per-index slots exactly as in [map], so callers
   consuming them in order are deterministic whatever the steal schedule.

   [jitter i] runs in the claiming worker just before task [i] — a test
   hook for perturbing the schedule (e.g. stalling chosen tasks so other
   workers must steal); production callers leave it unset. *)
let map_stealing ?domains ?(spawn_failure = fun _ -> false)
    ?(jitter = fun (_ : int) -> ()) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let d =
    let want = match domains with Some d -> max 1 d | None -> default_domains () in
    min want n
  in
  if d <= 1 || n <= 1 then
    ( List.mapi
        (fun i x ->
          jitter i;
          f x)
        xs,
      { workers = 1; steals = 0 } )
  else begin
    let results = Array.make n None in
    let slice_lo w = w * n / d and slice_hi w = (w + 1) * n / d in
    let heads = Array.init d (fun w -> Atomic.make (slice_lo w)) in
    let steals = Atomic.make 0 in
    let run i =
      jitter i;
      results.(i) <-
        (try Some (Ok (f items.(i)))
         with e -> Some (Error (e, Printexc.get_raw_backtrace ())))
    in
    (* Claim the next index of deque [v], if any. fetch_and_add may push
       the head past the tail when the deque is empty; the bound check
       discards those over-claims. *)
    let claim v =
      if Atomic.get heads.(v) >= slice_hi v then None
      else
        let i = Atomic.fetch_and_add heads.(v) 1 in
        if i < slice_hi v then Some i else None
    in
    let worker w () =
      let rec drain_own () =
        match claim w with
        | Some i ->
            run i;
            drain_own ()
        | None -> ()
      in
      drain_own ();
      (* Steal round-robin, restarting the scan after every success until
         a full pass over all deques finds nothing left. *)
      let rec rob offset =
        if offset < d then
          let v = (w + offset) mod d in
          match claim v with
          | Some i ->
              Atomic.incr steals;
              run i;
              rob 1
          | None -> rob (offset + 1)
      in
      rob 1
    in
    let helpers =
      List.init (d - 1) (fun i -> i + 1)
      |> List.filter_map (fun w ->
             if spawn_failure (w - 1) then None
             else
               match Domain.spawn (worker w) with
               | dom -> Some dom
               | exception _ -> None)
    in
    worker 0 ();
    List.iter Domain.join helpers;
    let out =
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
    in
    (out, { workers = d; steals = Atomic.get steals })
  end

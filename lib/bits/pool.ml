(* A small domain-parallel map over independent tasks.

   Work distribution is a shared atomic cursor over the input array: each
   domain claims the next unclaimed index, so uneven task costs balance
   without chunk-size tuning. Results land in per-index slots, which keeps
   the output in input order regardless of completion order — callers that
   print results sequentially are byte-identical to a serial run. *)

let default_domains () =
  match Sys.getenv_opt "E9_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let map ?domains ?(spawn_failure = fun _ -> false) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let d =
    let want = match domains with Some d -> max 1 d | None -> default_domains () in
    min want n
  in
  if d <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (try Some (Ok (f items.(i)))
             with e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          go ()
        end
      in
      go ()
    in
    (* Helper-domain loss containment: when the runtime cannot spawn a
       helper (resource exhaustion, or an injected failure via
       [spawn_failure]), degrade to fewer workers instead of propagating
       mid-spawn — which would leave earlier helpers unjoined. The shared
       cursor guarantees the surviving workers (at minimum the calling
       domain itself) still drain every task, so no task is dropped and
       no join deadlocks. *)
    let helpers =
      List.init (d - 1) Fun.id
      |> List.filter_map (fun i ->
             if spawn_failure i then None
             else
               match Domain.spawn worker with
               | dom -> Some dom
               | exception _ -> None)
    in
    worker ();
    List.iter Domain.join helpers;
    (* The exception at the lowest input index wins — the one a serial
       List.map would have raised (later tasks may already have run; their
       side effects stand, as with any parallel map). *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)

(* A small domain-parallel map over independent tasks.

   Work distribution is a shared atomic cursor over the input array: each
   domain claims the next unclaimed index, so uneven task costs balance
   without chunk-size tuning. Results land in per-index slots, which keeps
   the output in input order regardless of completion order — callers that
   print results sequentially are byte-identical to a serial run. *)

let default_domains () =
  match Sys.getenv_opt "E9_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let map ?domains ?(spawn_failure = fun _ -> false) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let d =
    let want = match domains with Some d -> max 1 d | None -> default_domains () in
    min want n
  in
  if d <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (try Some (Ok (f items.(i)))
             with e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          go ()
        end
      in
      go ()
    in
    (* Helper-domain loss containment: when the runtime cannot spawn a
       helper (resource exhaustion, or an injected failure via
       [spawn_failure]), degrade to fewer workers instead of propagating
       mid-spawn — which would leave earlier helpers unjoined. The shared
       cursor guarantees the surviving workers (at minimum the calling
       domain itself) still drain every task, so no task is dropped and
       no join deadlocks. *)
    let helpers =
      List.init (d - 1) Fun.id
      |> List.filter_map (fun i ->
             if spawn_failure i then None
             else
               match Domain.spawn worker with
               | dom -> Some dom
               | exception _ -> None)
    in
    worker ();
    List.iter Domain.join helpers;
    (* The exception at the lowest input index wins — the one a serial
       List.map would have raised (later tasks may already have run; their
       side effects stand, as with any parallel map). *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)

type steal_report = { workers : int; steals : int }

(* Work-stealing variant: the index space is split into one contiguous
   deque per worker (deque w owns indexes [w*n/d, (w+1)*n/d)), each with
   its own atomic head. A worker drains its own deque first — giving the
   cache-friendly contiguous walk the plain shared-cursor [map] lacks —
   then claims from the other deques round-robin until every head has
   passed its tail. Which domain *executes* a task is schedule-dependent;
   which tasks exist, and the order results are returned in, is not:
   results land in per-index slots exactly as in [map], so callers
   consuming them in order are deterministic whatever the steal schedule.

   [jitter i] runs in the claiming worker just before task [i] — a test
   hook for perturbing the schedule (e.g. stalling chosen tasks so other
   workers must steal); production callers leave it unset. *)
let map_stealing ?domains ?(spawn_failure = fun _ -> false)
    ?(jitter = fun (_ : int) -> ()) f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let d =
    let want = match domains with Some d -> max 1 d | None -> default_domains () in
    min want n
  in
  if d <= 1 || n <= 1 then
    ( List.mapi
        (fun i x ->
          jitter i;
          f x)
        xs,
      { workers = 1; steals = 0 } )
  else begin
    let results = Array.make n None in
    let slice_lo w = w * n / d and slice_hi w = (w + 1) * n / d in
    let heads = Array.init d (fun w -> Atomic.make (slice_lo w)) in
    let steals = Atomic.make 0 in
    let run i =
      jitter i;
      results.(i) <-
        (try Some (Ok (f items.(i)))
         with e -> Some (Error (e, Printexc.get_raw_backtrace ())))
    in
    (* Claim the next index of deque [v], if any. fetch_and_add may push
       the head past the tail when the deque is empty; the bound check
       discards those over-claims. *)
    let claim v =
      if Atomic.get heads.(v) >= slice_hi v then None
      else
        let i = Atomic.fetch_and_add heads.(v) 1 in
        if i < slice_hi v then Some i else None
    in
    let worker w () =
      let rec drain_own () =
        match claim w with
        | Some i ->
            run i;
            drain_own ()
        | None -> ()
      in
      drain_own ();
      (* Steal round-robin, restarting the scan after every success until
         a full pass over all deques finds nothing left. *)
      let rec rob offset =
        if offset < d then
          let v = (w + offset) mod d in
          match claim v with
          | Some i ->
              Atomic.incr steals;
              run i;
              rob 1
          | None -> rob (offset + 1)
      in
      rob 1
    in
    let helpers =
      List.init (d - 1) (fun i -> i + 1)
      |> List.filter_map (fun w ->
             if spawn_failure (w - 1) then None
             else
               match Domain.spawn (worker w) with
               | dom -> Some dom
               | exception _ -> None)
    in
    worker 0 ();
    List.iter Domain.join helpers;
    let out =
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
    in
    (out, { workers = d; steals = Atomic.get steals })
  end

(* ------------------------------------------------------------------ *)
(* Service: a persistent worker pool for open-ended task streams       *)
(* ------------------------------------------------------------------ *)

(* [map]/[map_stealing] fan a *fixed* task list and join; a daemon has an
   open-ended stream (sessions arrive over time), so it needs long-lived
   workers draining a queue. Same containment rules as the maps: a task
   exception is recorded, never propagated into the worker loop — one
   crashed session must not take the daemon (or its siblings) down. *)
module Service = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    idle : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable closing : bool;
    mutable running : int;  (** tasks currently executing *)
    mutable executed : int;
    mutable trapped : int;  (** task exceptions contained *)
    mutable workers : unit Domain.t list;
  }

  let worker t () =
    let rec loop () =
      Mutex.lock t.mutex;
      while Queue.is_empty t.queue && not t.closing do
        Condition.wait t.nonempty t.mutex
      done;
      if Queue.is_empty t.queue then begin
        (* closing and drained *)
        Mutex.unlock t.mutex
      end
      else begin
        let task = Queue.pop t.queue in
        t.running <- t.running + 1;
        Mutex.unlock t.mutex;
        (try task () with _ ->
          Mutex.lock t.mutex;
          t.trapped <- t.trapped + 1;
          Mutex.unlock t.mutex);
        Mutex.lock t.mutex;
        t.running <- t.running - 1;
        t.executed <- t.executed + 1;
        if t.running = 0 && Queue.is_empty t.queue then
          Condition.broadcast t.idle;
        Mutex.unlock t.mutex;
        loop ()
      end
    in
    loop ()

  let create ?domains () =
    let d =
      match domains with
      | Some d -> max 1 d
      | None -> default_domains ()
    in
    (* Cap like the rewriter does: oversubscribed domains pay minor-GC
       synchronization without buying parallelism. *)
    let d = min d (Domain.recommended_domain_count ()) in
    let t =
      { mutex = Mutex.create ();
        nonempty = Condition.create ();
        idle = Condition.create ();
        queue = Queue.create ();
        closing = false;
        running = 0;
        executed = 0;
        trapped = 0;
        workers = [] }
    in
    (* Spawn-failure degradation as in [map]: a worker that cannot spawn
       only shrinks the pool. With zero workers, [submit] runs tasks
       inline so nothing is ever stuck in the queue forever. *)
    t.workers <-
      (List.init d Fun.id
      |> List.filter_map (fun _ ->
             match Domain.spawn (worker t) with
             | dom -> Some dom
             | exception _ -> None));
    t

  let workers t = List.length t.workers

  let submit t task =
    Mutex.lock t.mutex;
    if t.closing then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.Service.submit: pool is shut down"
    end;
    if t.workers = [] then begin
      (* Degraded (spawnless) pool: run inline with the same containment. *)
      t.running <- t.running + 1;
      Mutex.unlock t.mutex;
      (try task () with _ ->
        Mutex.lock t.mutex;
        t.trapped <- t.trapped + 1;
        Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      t.executed <- t.executed + 1;
      Mutex.unlock t.mutex
    end
    else begin
      Queue.push task t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.mutex
    end

  let drain t =
    Mutex.lock t.mutex;
    while not (Queue.is_empty t.queue && t.running = 0) do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex

  let shutdown t =
    drain t;
    Mutex.lock t.mutex;
    t.closing <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers

  let executed t =
    Mutex.lock t.mutex;
    let n = t.executed in
    Mutex.unlock t.mutex;
    n

  let trapped t =
    Mutex.lock t.mutex;
    let n = t.trapped in
    Mutex.unlock t.mutex;
    n
end

(* Augmented AVL tree of disjoint, non-adjacent intervals keyed by start:
   a node [{lo; hi; _}] encodes occupied [lo, hi).  Beyond the AVL height
   each node carries three subtree aggregates:

     - [min_lo] / [max_hi]: the address span covered by the subtree, and
     - [max_gap]: the widest free gap lying strictly *between* two
       consecutive intervals of the subtree (0 when the subtree holds
       fewer than two intervals).

   The free-gap queries ([find_free], [find_free_last],
   [find_free_strided]) walk the gap sequence in address order but prune
   every branch whose aggregates show it cannot contain an answer — a
   subtree is entered only when its widest gap (including the gap to its
   in-order predecessor/successor, which the walk threads through the
   recursion) is at least [size] and its span reaches the query window.
   The first gap that qualifies terminates the walk, so a query costs
   O(log n) descent plus O(log n) per oversized-but-unusable gap it must
   step over (misaligned gaps for the strided variant, the single gap
   containing the window edge otherwise).

   The tree is persistent (path copying): [copy] is O(1) and snapshots
   never alias mutations, which is what lets [Layout.shard] hand every
   domain the same base occupancy for free. *)

type tree =
  | E
  | N of {
      l : tree;
      lo : int;
      hi : int;
      r : tree;
      h : int;  (* AVL height *)
      n : int;  (* interval count *)
      min_lo : int;
      max_hi : int;
      max_gap : int;
    }

type t = { mutable root : tree }

let create () = { root = E }
let copy t = { root = t.root }
let height = function E -> 0 | N nd -> nd.h
let count_tree = function E -> 0 | N nd -> nd.n

(* Smart constructor: recomputes aggregates from the children. The gap
   between a child's nearest interval and [lo, hi) itself is part of this
   subtree, so it feeds [max_gap] here. *)
let mk l lo hi r =
  let gl, minl = match l with E -> (0, lo) | N nd -> (max nd.max_gap (lo - nd.max_hi), nd.min_lo)
  and gr, maxh = match r with E -> (0, hi) | N nd -> (max nd.max_gap (nd.min_lo - hi), nd.max_hi) in
  N
    {
      l;
      lo;
      hi;
      r;
      h = 1 + max (height l) (height r);
      n = 1 + count_tree l + count_tree r;
      min_lo = minl;
      max_hi = maxh;
      max_gap = max gl gr;
    }

(* [mk] with a single AVL rebalancing step (|height l - height r| <= 2). *)
let bal l lo hi r =
  let hl = height l and hr = height r in
  if hl > hr + 1 then
    match l with
    | N { l = ll; lo = llo; hi = lhi; r = lr; _ } when height ll >= height lr ->
        mk ll llo lhi (mk lr lo hi r)
    | N { l = ll; lo = llo; hi = lhi; r = N { l = lrl; lo = lrlo; hi = lrhi; r = lrr; _ }; _ } ->
        mk (mk ll llo lhi lrl) lrlo lrhi (mk lrr lo hi r)
    | _ -> assert false
  else if hr > hl + 1 then
    match r with
    | N { l = rl; lo = rlo; hi = rhi; r = rr; _ } when height rr >= height rl ->
        mk (mk l lo hi rl) rlo rhi rr
    | N { l = N { l = rll; lo = rllo; hi = rlhi; r = rlr; _ }; lo = rlo; hi = rhi; r = rr; _ } ->
        mk (mk l lo hi rll) rllo rlhi (mk rlr rlo rhi rr)
    | _ -> assert false
  else mk l lo hi r

(* The interval (if any) that starts at or before [x]. *)
let floor t x =
  let rec go tree best =
    match tree with
    | E -> best
    | N { l; lo; hi; r; _ } -> if lo <= x then go r (Some (lo, hi)) else go l best
  in
  go t.root None

(* The interval (if any) with the lowest start >= [x]. *)
let first_geq t x =
  let rec go tree best =
    match tree with
    | E -> best
    | N { l; lo; hi; r; _ } -> if lo >= x then go l (Some (lo, hi)) else go r best
  in
  go t.root None

(* [insert]/[delete] assume the caller ([add]/[remove]) already cleared
   any interval that would collide with the key, exactly as the previous
   Map-based code did with [M.add]/[M.remove]. *)
let rec insert tree lo hi =
  match tree with
  | E -> mk E lo hi E
  | N nd ->
      if lo < nd.lo then bal (insert nd.l lo hi) nd.lo nd.hi nd.r
      else bal nd.l nd.lo nd.hi (insert nd.r lo hi)

let rec take_min tree =
  match tree with
  | E -> invalid_arg "Iset.take_min"
  | N { l = E; lo; hi; r; _ } -> (lo, hi, r)
  | N { l; lo; hi; r; _ } ->
      let mlo, mhi, l' = take_min l in
      (mlo, mhi, bal l' lo hi r)

let rec delete tree k =
  match tree with
  | E -> E
  | N { l; lo; hi; r; _ } ->
      if k < lo then bal (delete l k) lo hi r
      else if k > lo then bal l lo hi (delete r k)
      else (
        match (l, r) with
        | E, _ -> r
        | _, E -> l
        | _, N _ ->
            let mlo, mhi, r' = take_min r in
            bal l mlo mhi r')

let add t ~lo ~hi =
  if hi > lo then begin
    (* Extend [lo, hi) to swallow any interval it touches, consuming only
       the intervals actually in range (adds must stay near O(log n)). *)
    let lo, hi =
      match floor t lo with
      | Some (l, h) when h >= lo ->
          t.root <- delete t.root l;
          (min lo l, max hi h)
      | _ -> (lo, hi)
    in
    let hi = ref (max hi lo) in
    let continue = ref true in
    while !continue do
      match first_geq t lo with
      | Some (l, h) when l <= !hi ->
          t.root <- delete t.root l;
          hi := max !hi h
      | Some _ | None -> continue := false
    done;
    t.root <- insert t.root lo !hi
  end

let remove t ~lo ~hi =
  if hi > lo then begin
    (* Split any interval straddling [lo]. *)
    (match floor t lo with
    | Some (l, h) when l < lo && h > lo ->
        t.root <- delete t.root l;
        t.root <- insert t.root l lo;
        t.root <- insert t.root lo h
    | _ -> ());
    let continue = ref true in
    while !continue do
      match first_geq t lo with
      | Some (l, h) when l < hi ->
          t.root <- delete t.root l;
          if h > hi then t.root <- insert t.root hi h
      | Some _ | None -> continue := false
    done
  end

let mem t x = match floor t x with Some (_, h) -> h > x | None -> false

let is_free t ~lo ~hi =
  if hi <= lo then true
  else match floor t (hi - 1) with Some (_, h) when h > lo -> false | _ -> true

exception Found of int

(* [min_int]/[max_int] stand in for "no predecessor"/"no successor";
   gap widths against them are clamped to avoid wraparound. *)
let gap_after pred_hi next_lo =
  if pred_hi = min_int || next_lo = max_int then max_int else next_lo - pred_hi

(* The forward queries walk gaps [g, next_lo) left to right, testing each
   for the first usable start; the walk raises [Found] on a hit and
   [Exit] once every later gap is past the window, and prunes a branch
   when its widest gap (threading the in-order predecessor through
   [pred_hi]) is under [size] or its span ends below the window. The
   walkers are deliberately first-order direct recursions — explicit
   arguments instead of a shared higher-order skeleton — because these
   run millions of times per rewrite and per-call closure construction
   and indirect [qualify] calls are measurable there. *)

(* [ff_gap g next_lo]: first-fit test of one gap for [find_free]. *)
let ff_gap g next_lo ~size ~lo ~hi =
  let s = if g > lo then g else lo in
  if s > hi then raise Exit;
  if (next_lo = max_int || next_lo - size >= s) && gap_after g next_lo >= size
  then raise (Found s)

let rec ff_go tree pred_hi ~size ~lo ~hi =
  match tree with
  | E -> ()
  | N { l; lo = ilo; hi = ihi; r; _ } ->
      (match l with
      | E -> ff_gap pred_hi ilo ~size ~lo ~hi
      | N nl ->
          if
            nl.max_hi >= lo
            && (nl.max_gap >= size || gap_after pred_hi nl.min_lo >= size)
          then ff_go l pred_hi ~size ~lo ~hi;
          ff_gap nl.max_hi ilo ~size ~lo ~hi);
      (match r with
      | E -> ()
      | N nr ->
          if
            nr.max_hi >= lo
            && (nr.max_gap >= size || gap_after ihi nr.min_lo >= size)
          then ff_go r ihi ~size ~lo ~hi)

let find_free t ~size ~lo ~hi =
  if size <= 0 || hi < lo then None
  else
    try
      (match t.root with
      | E -> ff_gap min_int max_int ~size ~lo ~hi
      | N nd ->
          ff_go t.root min_int ~size ~lo ~hi;
          ff_gap nd.max_hi max_int ~size ~lo ~hi);
      None
    with
    | Found s -> Some s
    | Exit -> None

(* [fs_gap]: lowest start in [g, next_lo) that is >= lo and ≡ lo
   (mod stride), for [find_free_strided]. *)
let fs_gap g next_lo ~size ~lo ~hi ~stride =
  let s0 = if g > lo then g else lo in
  (* Joint-pun strides are powers of two; round by mask there, the
     integer division costs more than the rest of the gap test. *)
  let s =
    if stride land (stride - 1) = 0 then
      lo + ((s0 - lo + stride - 1) land lnot (stride - 1))
    else lo + ((s0 - lo + stride - 1) / stride * stride)
  in
  if s > hi then raise Exit;
  if (next_lo = max_int || next_lo - size >= s) && gap_after g next_lo >= size
  then raise (Found s)

let rec fs_go tree pred_hi ~size ~lo ~hi ~stride =
  match tree with
  | E -> ()
  | N { l; lo = ilo; hi = ihi; r; _ } ->
      (match l with
      | E -> fs_gap pred_hi ilo ~size ~lo ~hi ~stride
      | N nl ->
          if
            nl.max_hi >= lo
            && (nl.max_gap >= size || gap_after pred_hi nl.min_lo >= size)
          then fs_go l pred_hi ~size ~lo ~hi ~stride;
          fs_gap nl.max_hi ilo ~size ~lo ~hi ~stride);
      (match r with
      | E -> ()
      | N nr ->
          if
            nr.max_hi >= lo
            && (nr.max_gap >= size || gap_after ihi nr.min_lo >= size)
          then fs_go r ihi ~size ~lo ~hi ~stride)

let find_free_strided t ~size ~lo ~hi ~stride =
  if stride < 1 then invalid_arg "Iset.find_free_strided";
  if size <= 0 || hi < lo then None
  else
    try
      (match t.root with
      | E -> fs_gap min_int max_int ~size ~lo ~hi ~stride
      | N nd ->
          fs_go t.root min_int ~size ~lo ~hi ~stride;
          fs_gap nd.max_hi max_int ~size ~lo ~hi ~stride);
      None
    with
    | Found s -> Some s
    | Exit -> None

(* Mirror image: gaps right to left, threading the in-order successor's
   start through [succ_lo]. [fl_gap]: highest start in the gap
   [g, next_lo) that still fits the window. *)
let fl_gap g next_lo ~size ~lo ~hi =
  let s =
    if next_lo = max_int || next_lo - size > hi then hi else next_lo - size
  in
  if s < lo then raise Exit;
  if s >= g then raise (Found s)

let rec fl_go tree succ_lo ~size ~lo ~hi =
  match tree with
  | E -> ()
  | N { l; lo = ilo; hi = ihi; r; _ } ->
      (match r with
      | E -> fl_gap ihi succ_lo ~size ~lo ~hi
      | N nr ->
          if
            nr.min_lo <= hi
            && (nr.max_gap >= size || gap_after nr.max_hi succ_lo >= size)
            && succ_lo - size >= lo
          then fl_go r succ_lo ~size ~lo ~hi;
          fl_gap ihi nr.min_lo ~size ~lo ~hi);
      (match l with
      | E -> ()
      | N nl ->
          if
            nl.min_lo <= hi
            && (nl.max_gap >= size || gap_after nl.max_hi ilo >= size)
            && ilo - size >= lo
          then fl_go l ilo ~size ~lo ~hi)

let find_free_last t ~size ~lo ~hi =
  if size <= 0 || hi < lo then None
  else
    try
      (match t.root with
      | E -> fl_gap min_int max_int ~size ~lo ~hi
      | N nd ->
          fl_go t.root max_int ~size ~lo ~hi;
          fl_gap min_int nd.min_lo ~size ~lo ~hi);
      None
    with
    | Found s -> Some s
    | Exit -> None

let iter t f =
  let rec go = function
    | E -> ()
    | N { l; lo; hi; r; _ } ->
        go l;
        f ~lo ~hi;
        go r
  in
  go t.root

let fold t init f =
  let rec go tree acc =
    match tree with E -> acc | N { l; lo; hi; r; _ } -> go r (f (go l acc) ~lo ~hi)
  in
  go t.root init

let occupied t = fold t 0 (fun acc ~lo ~hi -> acc + (hi - lo))
let count t = count_tree t.root
let intervals t = List.rev (fold t [] (fun acc ~lo ~hi -> (lo, hi) :: acc))

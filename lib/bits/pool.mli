(** Domain-parallel map over independent tasks.

    The bench harness fans independent (app × tactic-config)
    rewrite+emulate runs across cores with this. Tasks must be
    self-contained — no shared mutable state — which every bench task
    satisfies: each builds its own [Elf_file], [Space] and CPU state.

    Results are returned in input order whatever the completion order, so
    a caller that computes in parallel and prints sequentially produces
    output byte-identical to a serial run (DESIGN.md §7). *)

(** [default_domains ()] is the domain count used when [?domains] is not
    given: the [E9_DOMAINS] environment variable if set to a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)
val default_domains : unit -> int

(** [map ?domains f xs] is [List.map f xs], computed by up to [domains]
    domains (never more than [List.length xs]; with 1 domain it runs
    serially in the calling domain). If tasks raise, the exception at the
    lowest input index is re-raised with its backtrace.

    A helper domain that cannot be spawned — the runtime refusing
    ([Domain.spawn] raising), or [spawn_failure i] returning [true] for
    helper [i] (fault injection) — only shrinks the worker pool: the
    shared work cursor means the remaining workers, at minimum the
    calling domain, still run every task, so results are complete and
    identical either way. *)
val map :
  ?domains:int -> ?spawn_failure:(int -> bool) -> ('a -> 'b) -> 'a list ->
  'b list

(** [iter ?domains f xs] runs [f] over [xs] in parallel for its effects
    (each task's effects must stay within the task). *)
val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit

(** Domain-parallel map over independent tasks.

    The bench harness fans independent (app × tactic-config)
    rewrite+emulate runs across cores with this. Tasks must be
    self-contained — no shared mutable state — which every bench task
    satisfies: each builds its own [Elf_file], [Space] and CPU state.

    Results are returned in input order whatever the completion order, so
    a caller that computes in parallel and prints sequentially produces
    output byte-identical to a serial run (DESIGN.md §7). *)

(** [default_domains ()] is the domain count used when [?domains] is not
    given: the [E9_DOMAINS] environment variable if set to a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)
val default_domains : unit -> int

(** [map ?domains f xs] is [List.map f xs], computed by up to [domains]
    domains (never more than [List.length xs]; with 1 domain it runs
    serially in the calling domain). If tasks raise, the exception at the
    lowest input index is re-raised with its backtrace.

    A helper domain that cannot be spawned — the runtime refusing
    ([Domain.spawn] raising), or [spawn_failure i] returning [true] for
    helper [i] (fault injection) — only shrinks the worker pool: the
    shared work cursor means the remaining workers, at minimum the
    calling domain, still run every task, so results are complete and
    identical either way. *)
val map :
  ?domains:int -> ?spawn_failure:(int -> bool) -> ('a -> 'b) -> 'a list ->
  'b list

(** [iter ?domains f xs] runs [f] over [xs] in parallel for its effects
    (each task's effects must stay within the task). *)
val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit

(** Scheduler telemetry from {!map_stealing}: how many workers actually
    ran and how many tasks were claimed from a foreign deque. Both are
    schedule-dependent — report them, never branch on them. *)
type steal_report = { workers : int; steals : int }

(** [map_stealing ?domains ?spawn_failure ?jitter f xs] is {!map} with
    work-stealing distribution: the index space is split into one
    contiguous deque per worker, a worker drains its own deque first and
    then steals from the others, so uneven task costs balance while each
    worker's common-case walk stays contiguous. Results are returned in
    input order whatever the steal schedule, so order-sensitive callers
    are deterministic. [jitter i] (default: nothing) runs in the claiming
    worker immediately before task [i] — a test hook for perturbing the
    schedule. [spawn_failure] degrades exactly as in {!map}. *)
val map_stealing :
  ?domains:int -> ?spawn_failure:(int -> bool) -> ?jitter:(int -> unit) ->
  ('a -> 'b) -> 'a list -> 'b list * steal_report

(** A persistent worker pool for open-ended task streams.

    {!map}/{!map_stealing} fan a fixed task list and join; a daemon has
    an open-ended stream (sessions arrive over time), so it needs
    long-lived workers draining a queue (DESIGN.md §13). Containment
    matches the maps' discipline, strengthened for daemon use: a task
    exception is {e swallowed and counted} ({!Service.trapped}), never
    propagated — one crashed session must not take the daemon or its
    sibling sessions down. *)
module Service : sig
  type t

  (** [create ?domains ()] spawns up to [domains] worker domains
      (default {!default_domains}, capped at
      [Domain.recommended_domain_count ()]). A worker that cannot be
      spawned only shrinks the pool; with zero workers, {!submit} runs
      tasks inline in the caller, so the pool degrades to serial service
      rather than deadlock. *)
  val create : ?domains:int -> unit -> t

  (** Workers actually running (0 = degraded inline mode). *)
  val workers : t -> int

  (** [submit t task] enqueues [task] for the next free worker. Raises
      [Invalid_argument] after {!shutdown}. *)
  val submit : t -> (unit -> unit) -> unit

  (** [drain t] blocks until the queue is empty and no task is
      executing. *)
  val drain : t -> unit

  (** [shutdown t] drains, then stops and joins every worker. The pool
      cannot be reused. *)
  val shutdown : t -> unit

  (** Tasks completed (including trapped ones). *)
  val executed : t -> int

  (** Task exceptions contained by the pool. *)
  val trapped : t -> int
end

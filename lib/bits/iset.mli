(** Sets of disjoint half-open integer intervals.

    Used as the occupancy map of the trampoline address-space allocator:
    intervals mark *occupied* bytes, and allocation queries search for free
    gaps inside a constrained window (the punned-jump target interval). *)

type t

(** [create ()] is an empty set. *)
val create : unit -> t

(** [copy t] is an independent snapshot of [t]. *)
val copy : t -> t

(** [add t ~lo ~hi] marks [lo, hi) occupied. Overlapping or adjacent
    intervals are merged. No-op when [hi <= lo]. *)
val add : t -> lo:int -> hi:int -> unit

(** [remove t ~lo ~hi] marks [lo, hi) free, splitting intervals as needed. *)
val remove : t -> lo:int -> hi:int -> unit

(** [mem t x] is true when byte [x] is occupied. *)
val mem : t -> int -> bool

(** [is_free t ~lo ~hi] is true when no byte of [lo, hi) is occupied. *)
val is_free : t -> lo:int -> hi:int -> bool

(** [find_free t ~size ~lo ~hi] is the lowest start [s] with
    [lo <= s <= hi] such that [s, s+size) is entirely free, if any. *)
val find_free : t -> size:int -> lo:int -> hi:int -> int option

(** [find_free_last t ~size ~lo ~hi] is the highest such start, if any. *)
val find_free_last : t -> size:int -> lo:int -> hi:int -> int option

(** [find_free_strided t ~size ~lo ~hi ~stride] is the lowest start [s]
    with [lo <= s <= hi], [s ≡ lo (mod stride)] and [s, s+size) free.
    With [stride = 1] this is {!find_free}. Requires [stride >= 1].
    The scan carries the blocking interval forward between probes, so a
    window crossed by [k] occupied intervals costs [k] map lookups
    however many stride positions it contains. *)
val find_free_strided :
  t -> size:int -> lo:int -> hi:int -> stride:int -> int option

(** [iter t f] applies [f ~lo ~hi] to each occupied interval in order. *)
val iter : t -> (lo:int -> hi:int -> unit) -> unit

(** [fold t init f] folds over occupied intervals in increasing order. *)
val fold : t -> 'a -> ('a -> lo:int -> hi:int -> 'a) -> 'a

(** [occupied t] is the total number of occupied bytes. *)
val occupied : t -> int

(** [count t] is the number of disjoint occupied intervals — a direct
    fragmentation gauge (bytes per interval falls as fragmentation
    rises). *)
val count : t -> int

(** [intervals t] lists the occupied intervals in increasing order. *)
val intervals : t -> (int * int) list

(** Sets of disjoint half-open integer intervals.

    Used as the occupancy map of the trampoline address-space allocator:
    intervals mark *occupied* bytes, and allocation queries search for free
    gaps inside a constrained window (the punned-jump target interval).

    Internally an augmented balanced tree (start-keyed AVL carrying the
    max free gap per subtree), so the [find_free*] queries descend only
    into branches that can hold a wide-enough gap: O(log n) per query
    instead of a linear blocker walk. The structure is persistent under
    the hood, which makes {!copy} O(1). *)

type t

(** [create ()] is an empty set. *)
val create : unit -> t

(** [copy t] is an independent snapshot of [t]. *)
val copy : t -> t

(** [add t ~lo ~hi] marks [lo, hi) occupied. Overlapping or adjacent
    intervals are merged. No-op when [hi <= lo]. *)
val add : t -> lo:int -> hi:int -> unit

(** [remove t ~lo ~hi] marks [lo, hi) free, splitting intervals as needed. *)
val remove : t -> lo:int -> hi:int -> unit

(** [mem t x] is true when byte [x] is occupied. *)
val mem : t -> int -> bool

(** [is_free t ~lo ~hi] is true when no byte of [lo, hi) is occupied. *)
val is_free : t -> lo:int -> hi:int -> bool

(** [find_free t ~size ~lo ~hi] is the lowest start [s] with
    [lo <= s <= hi] such that [s, s+size) is entirely free, if any. *)
val find_free : t -> size:int -> lo:int -> hi:int -> int option

(** [find_free_last t ~size ~lo ~hi] is the highest such start, if any. *)
val find_free_last : t -> size:int -> lo:int -> hi:int -> int option

(** [find_free_strided t ~size ~lo ~hi ~stride] is the lowest start [s]
    with [lo <= s <= hi], [s ≡ lo (mod stride)] and [s, s+size) free.
    With [stride = 1] this is {!find_free}. Requires [stride >= 1].
    The walk carries the blocking context forward between gaps and prunes
    undersized subtrees, so it costs O(log n) per free gap wide enough
    for [size] but misaligned for [stride] — it never iterates stride
    positions or occupied intervals one by one. *)
val find_free_strided :
  t -> size:int -> lo:int -> hi:int -> stride:int -> int option

(** [iter t f] applies [f ~lo ~hi] to each occupied interval in order. *)
val iter : t -> (lo:int -> hi:int -> unit) -> unit

(** [fold t init f] folds over occupied intervals in increasing order. *)
val fold : t -> 'a -> ('a -> lo:int -> hi:int -> 'a) -> 'a

(** [occupied t] is the total number of occupied bytes. *)
val occupied : t -> int

(** [count t] is the number of disjoint occupied intervals — a direct
    fragmentation gauge (bytes per interval falls as fragmentation
    rises). *)
val count : t -> int

(** [intervals t] lists the occupied intervals in increasing order. *)
val intervals : t -> (int * int) list

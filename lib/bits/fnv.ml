let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let hash64 ?(h = offset_basis) b ~pos ~len =
  let acc = ref h in
  for i = pos to pos + len - 1 do
    acc :=
      Int64.mul
        (Int64.logxor !acc (Int64.of_int (Char.code (Bytes.unsafe_get b i))))
        prime
  done;
  !acc

let hash64_string s =
  hash64 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let to_hex h = Printf.sprintf "%016Lx" h
let hex ?h b ~pos ~len = to_hex (hash64 ?h b ~pos ~len)

module Rolling = struct
  (* Buzhash (cyclic polynomial) over a fixed window: O(1) slide, and
     the digest depends only on the window contents, so identical byte
     runs re-synchronize chunk boundaries after an edit. 32-bit state
     keeps rotations cheap on 63-bit native ints. *)

  let window = 48
  let mask32 = 0xffffffff

  (* One mixing constant per byte value, derived from FNV-1a so the
     table is reproducible without an RNG dependency. *)
  let table =
    Array.init 256 (fun i ->
        Int64.to_int (hash64_string (Printf.sprintf "e9.buz.%d" i)) land mask32)

  let rotl1 x = ((x lsl 1) lor (x lsr 31)) land mask32

  let rot_window =
    (* rotl by [window mod 32], precomputed for the outgoing byte. *)
    let k = window mod 32 in
    fun x -> ((x lsl k) lor (x lsr (32 - k))) land mask32

  type t = { ring : int array; mutable head : int; mutable h : int }

  let create () = { ring = Array.make window 0; head = 0; h = 0 }

  let reset t =
    Array.fill t.ring 0 window 0;
    t.head <- 0;
    t.h <- 0

  let feed t byte =
    let incoming = table.(byte land 0xff) in
    let outgoing = t.ring.(t.head) in
    t.ring.(t.head) <- incoming;
    t.head <- (t.head + 1) mod window;
    t.h <- rotl1 t.h lxor incoming lxor rot_window outgoing

  let digest t = t.h
end

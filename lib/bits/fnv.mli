(** FNV-1a 64-bit hashing, plus the rolling variant used by the
    content-defined chunker.

    The 64-bit FNV-1a constants are shared with the RPC cache keys
    (lib/rpc/cache.ml delegates here) so a chunk hash printed in a plan
    key and a binary hash printed in a result key come from the same
    function family and collide only as FNV collides. *)

val offset_basis : int64
val prime : int64

(** [hash64 ?h b ~pos ~len] folds [len] bytes of [b] starting at [pos]
    into the running FNV-1a state [h] (default: [offset_basis]). *)
val hash64 : ?h:int64 -> bytes -> pos:int -> len:int -> int64

(** [hash64_string s] hashes a whole string. *)
val hash64_string : string -> int64

(** [to_hex h] prints a hash as 16 lowercase hex digits. *)
val to_hex : int64 -> string

(** [hex ?h b ~pos ~len] = [to_hex (hash64 ?h b ~pos ~len)]. *)
val hex : ?h:int64 -> bytes -> pos:int -> len:int -> string

(** Rolling hash over a fixed-size byte window, for content-defined
    boundary detection.  Not FNV (FNV cannot roll); a degree-[window]
    polynomial hash with power-of-two-friendly mixing.  Deterministic
    and position-independent: the value depends only on the last
    [window] bytes fed in. *)
module Rolling : sig
  type t

  val window : int
  (** Window width in bytes (compile-time constant). *)

  val create : unit -> t

  val reset : t -> unit

  (** [feed t byte] slides the window one byte; O(1). *)
  val feed : t -> int -> unit

  (** Current window digest. Only meaningful once [window] bytes have
      been fed since [create]/[reset]; callers guarantee that by
      construction (chunk minimum size exceeds the window). *)
  val digest : t -> int
end

type selector = Jumps | Heap_writes

type family = {
  name : string;
  blurb : string;
  profile : Codegen.profile;
  selector : selector;
  strip : bool;
  floor_pct : float;
  expect_pressure : bool;
}

let selector_name = function Jumps -> "jumps" | Heap_writes -> "heap-writes"

(* Shared base: big enough that a few-KiB shard span yields a real
   multi-shard rewrite, small enough that the trace oracle's double
   emulation stays in the tens of milliseconds per family. *)
let base name seed =
  { Codegen.default_profile with
    Codegen.name;
    seed;
    functions = 16;
    blocks_per_fn = 8;
    iterations = 60 }

let families =
  [ { name = "baseline";
      blurb = "the compiler-like default mix; the corpus control group";
      profile = base "baseline" 1001L;
      selector = Jumps;
      strip = false;
      floor_pct = 99.0;
      expect_pressure = false };
    { name = "locked-rmw";
      blurb =
        "lock-prefixed read-modify-writes: the f0 prefix byte shifts every \
         pun window by one";
      profile =
        { (base "locked-rmw" 1002L) with
          Codegen.lock_bias = 0.6;
          heap_write_bias = 0.35 };
      selector = Heap_writes;
      strip = false;
      floor_pct = 95.0;
      expect_pressure = false };
    { name = "tiny-runs";
      blurb =
        "dense strips of 2-3 byte instructions starve every jump tactic: \
         mid-strip jcc sites exhaust the rel8 victim window";
      profile =
        { (base "tiny-runs" 1003L) with
          Codegen.tiny_run_bias = 0.9;
          short_jump_bias = 0.7 };
      selector = Jumps;
      strip = false;
      floor_pct = 90.0;
      expect_pressure = true };
    { name = "tiny-writes";
      blurb =
        "the same strips, patched at their 2-byte stores instead of their \
         jumps (application A2 under starvation)";
      profile =
        { (base "tiny-writes" 1004L) with
          Codegen.tiny_run_bias = 0.9;
          small_write_bias = 0.8;
          heap_write_bias = 0.3 };
      selector = Heap_writes;
      strip = false;
      floor_pct = 84.0;
      expect_pressure = true };
    { name = "islands";
      blurb =
        "mid-function data islands: correct rewriting needs exclusion \
         ranges, or evictions corrupt checksummed data";
      profile = { (base "islands" 1005L) with Codegen.island_bias = 0.5 };
      selector = Jumps;
      strip = false;
      floor_pct = 97.0;
      expect_pressure = false };
    { name = "stripped";
      blurb =
        "no section header table at all: text discovery must fall back to \
         the executable PT_LOAD segment";
      profile = base "stripped" 1006L;
      selector = Jumps;
      strip = true;
      floor_pct = 99.0;
      expect_pressure = false };
    { name = "endbr";
      blurb =
        "CET-style endbr64 markers at every entry; anchor count is ground \
         truth the decode must reproduce";
      profile =
        { (base "endbr" 1007L) with Codegen.endbr64_entries = true };
      selector = Jumps;
      strip = false;
      floor_pct = 99.0;
      expect_pressure = false };
    { name = "pie";
      blurb =
        "position-independent load high: punned negative displacements \
         must stay canonical";
      profile = { (base "pie" 1008L) with Codegen.pie = true };
      selector = Jumps;
      strip = false;
      floor_pct = 99.0;
      expect_pressure = false };
    { name = "dso";
      blurb =
        "shared-object regime: the dynamic linker owns the space below \
         base, halving the trampoline address pool";
      profile =
        { (base "dso" 1009L) with
          Codegen.shared_object = true;
          heap_write_bias = 0.3 };
      selector = Heap_writes;
      strip = false;
      floor_pct = 95.0;
      expect_pressure = false };
    { name = "far-rel32";
      blurb =
        "a 192 KiB nop desert before a shared ret thunk: every function \
         tail carries a six-figure rel32 displacement";
      profile = { (base "far-rel32" 1010L) with Codegen.far_gap_kb = 192 };
      selector = Jumps;
      strip = false;
      floor_pct = 99.0;
      expect_pressure = false };
    { name = "alias-pad";
      blurb =
        "imm32 constants whose trailing byte is a legal prefix, directly \
         before short write sites: bait for the phantom-prefix classifier";
      profile =
        { (base "alias-pad" 1011L) with
          Codegen.alias_bias = 0.5;
          small_write_bias = 0.6;
          heap_write_bias = 0.3 };
      selector = Heap_writes;
      strip = false;
      floor_pct = 95.0;
      expect_pressure = false } ]

let find name = List.find_opt (fun f -> f.name = name) families

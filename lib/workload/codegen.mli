(** Synthetic binary generator.

    Produces real, runnable ELF64 executables with the structural features
    that the paper's evaluation inputs have and that the rewriting tactics
    are sensitive to:

    - a realistic instruction-length mix (short vs. near conditional jumps,
      disp8 vs. disp32 memory operands) — this is what decides how often
      punning succeeds and which tactic rescues a failure;
    - indirect jumps through jump tables and indirect calls through
      function-pointer tables whose targets no static analysis is told
      about — the reason control-flow recovery is avoided in the first
      place;
    - PIE or non-PIE load addresses (decides whether negative punned
      displacements are valid);
    - optionally huge [.bss] allocations (the paper's gamess/zeusmp
      limitation L1);
    - heap traffic through host-call [malloc] so the LowFat hardening
      application has something to check.

    Programs are deterministic: they run a fixed number of main-loop
    iterations, accumulate a path- and data-dependent checksum in [%r15],
    print it with a [write] syscall and exit with its low byte. Two
    binaries are behaviourally equivalent iff their outputs match. *)

type profile = {
  name : string;
  seed : int64;
  pie : bool;
  functions : int;  (** function count; text size scales with this *)
  blocks_per_fn : int;  (** basic blocks per function (mean) *)
  short_jump_bias : float;
      (** probability a forward conditional branch uses the 2-byte form *)
  heap_write_bias : float;
      (** probability a block instruction is a heap write *)
  big_disp_bias : float;
      (** probability a heap access uses a disp32 (≥ 5-byte encoding) *)
  small_write_bias : float;
      (** probability a heap write uses a 2-3 byte non-REX encoding
          (forces the punning tactics on application A2) *)
  block_insns : int;
      (** mean body instructions per basic block (dynamic branch
          frequency knob) *)
  pic_table_bias : float;
      (** probability a switch uses a PIC-style table (4-byte offsets from
          the text base) instead of absolute 8-byte pointers — invisible to
          pointer-scanning CFG heuristics *)
  data_in_text_kb : int;
      (** size of a constant pool embedded at the start of .text — the
          §6.2 Chrome challenge for linear disassembly (0 = none) *)
  bss_mb : int;  (** static .bss allocation in MiB (limitation L1) *)
  shared_object : bool;  (** model a DSO: space below base is unavailable *)
  iterations : int;  (** main-loop trips (dynamic instruction count) *)
  lock_bias : float;
      (** probability a heap write is a lock-prefixed read-modify-write
          through a non-REX pointer ([f0 01 0b]-style 3-4 byte sites): the
          extra prefix byte shifts the pun geometry by one *)
  tiny_run_bias : float;
      (** probability a block ends with a dense strip of 2-3 byte non-REX
          instructions — runs long enough that mid-strip patch sites
          exhaust every displaceable eviction victim within rel8 reach,
          forcing T2/T3 chains and ultimately B0 *)
  island_bias : float;
      (** probability a block embeds a mid-function data island (a rel32
          jmp over a random blob whose two ends are checksummed): linear
          disassembly walks straight into it, so correct rewriting needs
          exclusion ranges; ground truth is recorded in
          {!islands_section} *)
  alias_bias : float;
      (** probability a small-write site is preceded by a [mov r32, imm32]
          whose most-significant (last-emitted) immediate byte is a legal
          x86 prefix — bait for a verifier's phantom-prefix / T1-padding
          classifier *)
  far_gap_kb : int;
      (** when > 0, functions return through a shared ret thunk placed
          after a nop desert this many KiB long: every tail jmp carries a
          large rel32 displacement (0 = plain rets) *)
  endbr64_entries : bool;
      (** mark main and every function entry with [endbr64] (CET-style
          binaries); the 4-byte marker is itself displaceable and gives
          campaigns an anchor-count ground truth of [functions + 1] *)
}

(** A reasonable default profile (non-PIE, C-compiler-like mix). *)
val default_profile : profile

(** Load bases: PIE binaries load high (negative displacements stay in the
    canonical range), non-PIE binaries load low (paper §5.1). *)
val base_nonpie : int

val base_pie : int

(** The zero-sized section marking the first real instruction when
    [data_in_text_kb > 0] — the binary's "ChromeMain symbol". *)
val chromemain_marker : string

(** Ground-truth metadata section listing mid-function data islands as
    little-endian [(addr : u64, len : u64)] pairs. Emitted only when
    [island_bias > 0] produced at least one island. *)
val islands_section : string

(** [islands elf] decodes {!islands_section} back into [(addr, len)]
    pairs, in emission order. [[]] when the section is absent; raises
    {!Elf_file.Malformed} when present but not a whole number of 16-byte
    records. *)
val islands : Elf_file.t -> (int * int) list

(** The profile cannot be generated (the emitted text overflowed its
    budget). Harnesses over random profiles catch this to skip-and-report
    the case rather than abort the whole campaign. *)
exception Error of string

(** [generate profile] builds the ELF image. Raises {!Error} when the
    profile's code does not fit the text budget. *)
val generate : profile -> Elf_file.t

(** [generate_library profile] builds a shared object and returns its
    exported function addresses (its "dynamic symbols"). *)
val generate_library : profile -> Elf_file.t * int array

(** [generate_with_imports profile ~imports] builds an executable that
    calls the given (pre-resolved) library functions through an import
    table every main-loop iteration — the prelinked two-binary process of
    §5.1's mixing scenario. *)
val generate_with_imports : profile -> imports:int array -> Elf_file.t

module Buf = E9_bits.Buf
module Rng = E9_bits.Rng
module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Hostcall = E9_emu.Hostcall

exception Error of string

type profile = {
  name : string;
  seed : int64;
  pie : bool;
  functions : int;
  blocks_per_fn : int;
  short_jump_bias : float;
  heap_write_bias : float;
  big_disp_bias : float;
  small_write_bias : float;
  block_insns : int;
  pic_table_bias : float;
  data_in_text_kb : int;
  bss_mb : int;
  shared_object : bool;
  iterations : int;
  (* Adversarial knobs (the robustness corpus; all inert at default). *)
  lock_bias : float;
  tiny_run_bias : float;
  island_bias : float;
  alias_bias : float;
  far_gap_kb : int;
  endbr64_entries : bool;
}

let default_profile =
  { name = "default";
    seed = 1L;
    pie = false;
    functions = 24;
    blocks_per_fn = 10;
    short_jump_bias = 0.45;
    heap_write_bias = 0.12;
    big_disp_bias = 0.25;
    small_write_bias = 0.3;
    block_insns = 4;
    pic_table_bias = 0.4;
    data_in_text_kb = 0;
    bss_mb = 0;
    shared_object = false;
    iterations = 400;
    lock_bias = 0.0;
    tiny_run_bias = 0.0;
    island_bias = 0.0;
    alias_bias = 0.0;
    far_gap_kb = 0;
    endbr64_entries = false }

let chromemain_marker = ".text.chromemain"
let islands_section = ".e9.islands"
let base_nonpie = 0x400000
let base_pie = 0x5555_5555_4000
let buf_size = 4096
let align4k n = (n + 4095) / 4096 * 4096

(* Registers with fixed roles; everything else is block scratch. *)
let checksum = Reg.R15
let heap_a = Reg.R14
let main_ctr = Reg.R13
let heap_b = Reg.R12

let scratch =
  [| Reg.RAX; Reg.RBX; Reg.RCX; Reg.RDX; Reg.RSI; Reg.RDI; Reg.R8; Reg.R9;
     Reg.R10; Reg.R11 |]

type table_kind = Abs | Pic

type gen = {
  rng : Rng.t;
  asm : Asm.t;
  prof : profile;
  base_addr : int;
  data_base : int;
  mutable table_off : int;  (* next free slot in .rodata *)
  mutable tables : (int * table_kind * Asm.label array) list;
      (* rodata offset, entry encoding, targets *)
  mutable raw_tables : (int * int array) list;
      (* rodata offset, absolute addresses (imports from other binaries) *)
  mutable islands : (int * int) list;
      (* mid-function data islands: (absolute addr, byte length) *)
}

(* Reserve a .rodata slot for a jump/call table; returns its absolute
   address. [Abs] tables hold 8-byte absolute code addresses; [Pic] tables
   hold 4-byte offsets from the text base (the position-independent switch
   pattern). Contents are filled in after assembly. *)
let alloc_table g kind labels =
  let entry = match kind with Abs -> 8 | Pic -> 4 in
  let off = g.table_off in
  g.table_off <- off + (entry * Array.length labels);
  (* keep 8-byte alignment for subsequent tables *)
  g.table_off <- (g.table_off + 7) / 8 * 8;
  g.tables <- (off, kind, labels) :: g.tables;
  g.data_base + off

(* A table of pre-resolved absolute addresses — the import table (GOT) of
   an executable calling into an already-loaded shared object. *)
let alloc_import_table g addrs =
  let off = g.table_off in
  g.table_off <- off + (8 * Array.length addrs);
  g.raw_tables <- (off, addrs) :: g.raw_tables;
  g.data_base + off

let reg g = Rng.pick g.rng scratch
let imm8 g = Rng.range g.rng (-100) 100
let imm32 g = Rng.range g.rng (-100000) 100000
let ins g i = Asm.ins g.asm i

(* A bounded heap operand on one of the two buffers. Small displacements
   give 4-byte encodings (needing puns); disp32 gives 7-byte ones (B1). *)
let heap_mem g =
  let base = if Rng.bool g.rng then heap_a else heap_b in
  if Rng.chance g.rng g.prof.big_disp_bias then
    Insn.mem ~base ~disp:(128 + (8 * Rng.int g.rng 400)) ()
  else Insn.mem ~base ~disp:(8 * Rng.int g.rng 16) ()

(* An indexed heap write: mask the index register first so the access stays
   inside the buffer. *)
let emit_indexed_heap_write g =
  let idx = Rng.pick g.rng [| Reg.R10; Reg.R11 |] in
  let src = reg g in
  ins g (Insn.Mov (Insn.Q, Insn.Reg idx, Insn.Reg src));
  ins g (Insn.Alu (Insn.And, Insn.Q, Insn.Reg idx, Insn.Imm 255));
  let base = if Rng.bool g.rng then heap_a else heap_b in
  ins g
    (Insn.Mov
       (Insn.Q, Insn.Mem (Insn.mem ~base ~index:(idx, Insn.S8) ~disp:8 ()),
        Insn.Reg src))

(* A 2-3 byte heap write: copy the buffer pointer into a low (non-REX)
   register first, then write through it. These are the encodings that
   force the punning tactics (len < 4 leaves at most two free bytes). *)
let emit_small_heap_write g =
  let ptr = Rng.pick g.rng [| Reg.RBX; Reg.RSI; Reg.RDI |] in
  let src = Rng.pick g.rng [| Reg.RAX; Reg.RCX; Reg.RDX |] in
  let base = if Rng.bool g.rng then heap_a else heap_b in
  ins g (Insn.Mov (Insn.Q, Insn.Reg ptr, Insn.Reg base));
  let m =
    if Rng.chance g.rng 0.5 then Insn.mem ~base:ptr ()
    else Insn.mem ~base:ptr ~disp:(8 * Rng.int g.rng 15) ()
  in
  let sz = if Rng.chance g.rng 0.3 then Insn.B else Insn.L in
  ins g (Insn.Mov (sz, Insn.Mem m, Insn.Reg src))

(* A lock-prefixed read-modify-write through a low (non-REX) pointer
   register: [f0 01 0b]-style 3-4 byte sites. The decoder folds the
   prefix into the instruction; a displacing tactic re-encodes it without
   the prefix, which the single-threaded emulator cannot observe —
   E9Patch's own transparency caveat for atomics. What the corpus tests
   is that the extra prefix byte (shifting the pun geometry by one) never
   breaks byte accounting. *)
let emit_locked_rmw g =
  let ptr = Rng.pick g.rng [| Reg.RBX; Reg.RSI; Reg.RDI |] in
  let src = Rng.pick g.rng [| Reg.RAX; Reg.RCX; Reg.RDX |] in
  let base = if Rng.bool g.rng then heap_a else heap_b in
  ins g (Insn.Mov (Insn.Q, Insn.Reg ptr, Insn.Reg base));
  let m =
    if Rng.chance g.rng 0.5 then Insn.mem ~base:ptr ()
    else Insn.mem ~base:ptr ~disp:(8 * (1 + Rng.int g.rng 14)) ()
  in
  Asm.ins_raw g.asm "\xf0";
  ins g
    (Insn.Alu
       ( Rng.pick g.rng [| Insn.Add; Insn.Or; Insn.And; Insn.Xor |],
         Insn.L, Insn.Mem m, Insn.Reg src ))

let emit_heap_write g =
  (* The bias > 0 guards keep zero-bias profiles from consuming a draw:
     legacy profiles must generate the exact same bytes as before these
     knobs existed (fixed-seed tests and goldens depend on it). *)
  if g.prof.lock_bias > 0.0 && Rng.chance g.rng g.prof.lock_bias then
    emit_locked_rmw g
  else if Rng.chance g.rng g.prof.small_write_bias then
    emit_small_heap_write g
  else
  match Rng.int g.rng 5 with
  | 0 -> emit_indexed_heap_write g
  | 1 -> ins g (Insn.Mov (Insn.B, Insn.Mem (heap_mem g), Insn.Reg (reg g)))
  | 2 ->
      if Rng.chance g.rng 0.3 then
        (* an in-place counter bump: incq disp(%r14) *)
        let m = Insn.Mem (heap_mem g) in
        ins g
          (if Rng.bool g.rng then Insn.Inc (Insn.Q, m)
           else Insn.Dec (Insn.Q, m))
      else
        ins g
          (Insn.Alu
             ( Rng.pick g.rng [| Insn.Add; Insn.Xor; Insn.Or; Insn.And |],
               Insn.Q, Insn.Mem (heap_mem g), Insn.Reg (reg g) ))
  | 3 -> ins g (Insn.Mov (Insn.L, Insn.Mem (heap_mem g), Insn.Imm (imm32 g)))
  | _ -> ins g (Insn.Mov (Insn.Q, Insn.Mem (heap_mem g), Insn.Reg (reg g)))

let cc_pool = [| Insn.E; Insn.NE; Insn.L_; Insn.GE; Insn.LE; Insn.G; Insn.B_; Insn.AE |]

(* Emit a deterministic, data-dependent condition. *)
let emit_condition g =
  if Rng.bool g.rng then
    ins g (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg (reg g), Insn.Imm (imm8 g)))
  else ins g (Insn.Alu (Insn.Test, Insn.Q, Insn.Reg (reg g), Insn.Reg (reg g)))

(* Immediates whose last-emitted (most significant) byte is a legal x86
   prefix: the byte sitting directly before the next instruction then
   reads as 0x66/0x2e/0x48/0x3e. A verifier classifying a padded patch
   jump must not absorb these unchanged look-alike bytes as T1 padding —
   they belong to the previous instruction. *)
let alias_imms = [| 0x6648_2e90; 0x2e66_4890; 0x4890_6666; 0x3e2e_6648 |]

let emit_alias_padded_site g =
  let dst = Rng.pick g.rng [| Reg.RAX; Reg.RCX; Reg.RDX |] in
  ins g (Insn.Mov (Insn.L, Insn.Reg dst, Insn.Imm (Rng.pick g.rng alias_imms)));
  emit_small_heap_write g

let emit_body_insn g =
  if g.prof.alias_bias > 0.0 && Rng.chance g.rng g.prof.alias_bias then
    emit_alias_padded_site g
  else if Rng.chance g.rng g.prof.heap_write_bias then emit_heap_write g
  else
    match Rng.int g.rng 16 with
    | 0 -> ins g (Insn.Mov (Insn.Q, Insn.Reg (reg g), Insn.Reg (reg g)))
    | 1 -> ins g (Insn.Mov (Insn.Q, Insn.Reg (reg g), Insn.Imm (imm32 g)))
    | 2 ->
        ins g
          (Insn.Alu
             ( Rng.pick g.rng [| Insn.Add; Insn.Sub; Insn.Xor; Insn.Or; Insn.And |],
               Insn.Q, Insn.Reg (reg g), Insn.Reg (reg g) ))
    | 3 ->
        ins g
          (Insn.Alu
             ( Rng.pick g.rng [| Insn.Add; Insn.Sub; Insn.Xor |],
               Insn.Q, Insn.Reg (reg g),
               Insn.Imm (if Rng.bool g.rng then imm8 g else imm32 g) ))
    | 4 -> ins g (Insn.Imul (reg g, Insn.Reg (reg g)))
    | 5 ->
        ins g
          (Insn.Shift
             ( Rng.pick g.rng [| Insn.Shl; Insn.Shr; Insn.Sar |],
               Insn.Q, Insn.Reg (reg g), 1 + Rng.int g.rng 7 ))
    | 6 ->
        (* heap read *)
        ins g (Insn.Mov (Insn.Q, Insn.Reg (reg g), Insn.Mem (heap_mem g)))
    | 7 ->
        ins g
          (Insn.Lea
             ( reg g,
               Insn.mem ~base:(reg g) ~index:(Rng.pick g.rng [| Reg.RBX; Reg.RCX |], Insn.S4)
                 ~disp:(imm8 g) () ))
    | 8 ->
        (* fold into the checksum: make behaviour path-dependent *)
        ins g (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg checksum, Insn.Reg (reg g)))
    | 9 -> ins g (Insn.Alu (Insn.Xor, Insn.Q, Insn.Reg checksum, Insn.Reg (reg g)))
    | 10 -> ins g (Insn.Nop (1 + Rng.int g.rng 4))
    | 11 ->
        ins g (Insn.Mov (Insn.B, Insn.Reg (reg g), Insn.Imm (Rng.int g.rng 128)))
    | 12 ->
        (* a boolean result materialized with setcc *)
        emit_condition g;
        ins g (Insn.Setcc (Rng.pick g.rng cc_pool, Insn.Reg (reg g)))
    | 13 ->
        emit_condition g;
        ins g (Insn.Cmov (Rng.pick g.rng cc_pool, reg g, Insn.Reg (reg g)))
    | 14 ->
        (* byte load widened from the heap *)
        ins g (Insn.Movzx (reg g, Insn.Mem (heap_mem g)))
    | _ ->
        if Rng.bool g.rng then ins g (Insn.Neg (Insn.Q, Insn.Reg (reg g)))
        else ins g (Insn.Not (Insn.Q, Insn.Reg (reg g)))

(* A dense strip of 2-3 byte instructions (no REX: low registers only).
   Every jump and write site in the strip is too short for a direct
   5-byte patch jump, and its neighbours leave no pun slack — the tactic
   ladder must run T2/T3 eviction chains, and once every displaceable
   victim within rel8 range is consumed, fall through to B0. Long runs
   (up to ~200 bytes) push the nearest >= 5-byte victim beyond the short
   jump's +127 reach for the sites in the middle. *)
let emit_tiny_run g =
  let ptr = Rng.pick g.rng [| Reg.RBX; Reg.RSI; Reg.RDI |] in
  let base = if Rng.bool g.rng then heap_a else heap_b in
  ins g (Insn.Mov (Insn.Q, Insn.Reg ptr, Insn.Reg base));
  let lows = [| Reg.RAX; Reg.RCX; Reg.RDX |] in
  let k = 24 + Rng.int g.rng 40 in
  for _ = 1 to k do
    let a = Rng.pick g.rng lows and b = Rng.pick g.rng lows in
    match Rng.int g.rng 5 with
    | 0 ->
        (* 2-byte store: 89 /r *)
        ins g (Insn.Mov (Insn.L, Insn.Mem (Insn.mem ~base:ptr ()), Insn.Reg a))
    | 1 ->
        (* 3-byte store, disp8 *)
        ins g
          (Insn.Mov
             ( Insn.L,
               Insn.Mem (Insn.mem ~base:ptr ~disp:(4 * (1 + Rng.int g.rng 30)) ()),
               Insn.Reg a ))
    | 2 ->
        (* 2-byte conditional short hop over one 2-byte ALU *)
        ins g (Insn.Alu (Insn.Test, Insn.L, Insn.Reg a, Insn.Reg a));
        let skip = Asm.fresh_label g.asm "tiny" in
        Asm.jcc_short g.asm (Rng.pick g.rng cc_pool) skip;
        ins g (Insn.Alu (Insn.Add, Insn.L, Insn.Reg a, Insn.Reg b));
        Asm.place g.asm skip
    | _ ->
        ins g
          (Insn.Alu
             ( Rng.pick g.rng [| Insn.Add; Insn.Xor; Insn.Or |],
               Insn.L, Insn.Reg a, Insn.Reg b ))
  done

(* A mid-function data island: a rel32 jmp hops over a random blob that
   linear disassembly cannot tell from code. Both ends of the blob are
   folded into the checksum, so a tactic that treats a phantom decoded
   "instruction" inside the island as an eviction victim (or a selector
   that patches one) becomes an observable trace divergence. The island
   extents are recorded in {!islands_section} as ground-truth metadata —
   rewriting these binaries correctly requires exclusion ranges, exactly
   the paper's §6.2 Chrome situation generalized past a leading pool. *)
let emit_island g =
  let skip = Asm.fresh_label g.asm "isl" in
  Asm.jmp g.asm skip;
  let addr = Asm.here g.asm in
  let len = 8 * (3 + Rng.int g.rng 6) in
  Asm.ins_raw g.asm (String.init len (fun _ -> Char.chr (Rng.int g.rng 256)));
  Asm.place g.asm skip;
  g.islands <- (addr, len) :: g.islands;
  ins g (Insn.Movabs (Reg.R11, Int64.of_int addr));
  ins g
    (Insn.Mov (Insn.Q, Insn.Reg Reg.R10, Insn.Mem (Insn.mem ~base:Reg.R11 ())));
  ins g (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg checksum, Insn.Reg Reg.R10));
  ins g
    (Insn.Mov
       ( Insn.Q, Insn.Reg Reg.R10,
         Insn.Mem (Insn.mem ~base:Reg.R11 ~disp:(len - 8) ()) ));
  ins g (Insn.Alu (Insn.Xor, Insn.Q, Insn.Reg checksum, Insn.Reg Reg.R10))

(* One function: a forward-only DAG of basic blocks ending in ret. *)
let emit_function g ?far_ret fn_label n_blocks =
  Asm.place g.asm fn_label;
  if g.prof.endbr64_entries then ins g Insn.Endbr64;
  ins g (Insn.Push Reg.RBX);
  let labels =
    Array.init n_blocks (fun i -> Asm.fresh_label g.asm (Printf.sprintf "b%d" i))
  in
  for b = 0 to n_blocks - 1 do
    Asm.place g.asm labels.(b);
    let n_insns = 1 + Rng.int g.rng (max 1 ((2 * g.prof.block_insns) - 1)) in
    for _ = 1 to n_insns do
      emit_body_insn g
    done;
    if g.prof.tiny_run_bias > 0.0 && Rng.chance g.rng g.prof.tiny_run_bias
    then emit_tiny_run g;
    if g.prof.island_bias > 0.0 && Rng.chance g.rng g.prof.island_bias then
      emit_island g;
    let remaining = n_blocks - 1 - b in
    if remaining > 0 then begin
      (* Choose a terminator. All targets are forward: the DAG guarantees
         termination no matter which way conditions go. *)
      let forward () = labels.(b + 1 + Rng.int g.rng remaining) in
      (* A short branch hops over a small inline tail — an if-statement
         shape whose rel8 distance is bounded by construction. *)
      let short_hop emit_branch =
        let skip = Asm.fresh_label g.asm "skip" in
        emit_branch skip;
        ins g (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg checksum, Insn.Imm (imm8 g)));
        for _ = 1 to Rng.int g.rng 3 do
          emit_body_insn g
        done;
        Asm.place g.asm skip
      in
      match Rng.int g.rng 100 with
      | n when n < 55 ->
          emit_condition g;
          if Rng.chance g.rng g.prof.short_jump_bias then
            short_hop (Asm.jcc_short g.asm (Rng.pick g.rng cc_pool))
          else Asm.jcc g.asm (Rng.pick g.rng cc_pool) (forward ())
      | n when n < 65 ->
          if Rng.chance g.rng g.prof.short_jump_bias then
            (* An unconditional short jump over a cold tail. *)
            short_hop (Asm.jmp_short g.asm)
          else Asm.jmp g.asm (forward ())
      | n when n < 72 && remaining >= 2 ->
          (* Indirect jump through a table: a C switch. PIC-style tables
             hold 32-bit offsets from the text base and are invisible to
             pointer-scanning CFG heuristics. *)
          let k = min remaining 4 in
          let targets = Array.init k (fun i -> labels.(b + 1 + i)) in
          ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.R10, Insn.Reg checksum));
          ins g (Insn.Alu (Insn.And, Insn.Q, Insn.Reg Reg.R10, Insn.Imm (k - 1)));
          if Rng.chance g.rng g.prof.pic_table_bias then begin
            (* The computed target lives in %rbp, which generated code
               never reads otherwise: programs stay address-agnostic, so a
               (sound) relocating rewriter is still behaviour-preserving. *)
            let table = alloc_table g Pic targets in
            ins g (Insn.Movabs (Reg.R11, Int64.of_int table));
            ins g
              (Insn.Mov
                 ( Insn.L, Insn.Reg Reg.RBP,
                   Insn.Mem (Insn.mem ~base:Reg.R11 ~index:(Reg.R10, Insn.S4) ()) ));
            ins g (Insn.Movabs (Reg.R11, Int64.of_int g.base_addr));
            ins g (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.RBP, Insn.Reg Reg.R11));
            ins g (Insn.Jmp_ind (Insn.Reg Reg.RBP))
          end
          else begin
            let table = alloc_table g Abs targets in
            ins g (Insn.Movabs (Reg.R11, Int64.of_int table));
            ins g
              (Insn.Jmp_ind
                 (Insn.Mem (Insn.mem ~base:Reg.R11 ~index:(Reg.R10, Insn.S8) ())))
          end
      | _ -> () (* fallthrough *)
    end
  done;
  ins g (Insn.Pop Reg.RBX);
  (* With a far-gap profile every function returns through a shared ret
     thunk on the far side of a nop desert: the tail jmps carry rel32
     displacements in the hundreds of KiB, stressing displacement
     arithmetic far from the usual few-hundred-byte offsets. *)
  match far_ret with
  | None -> ins g Insn.Ret
  | Some l -> Asm.jmp g.asm l

(* The §6.2 Chrome challenge: a constant pool embedded at the start of the
   text section. The program jumps over it at entry and reads from it every
   iteration, so a rewriter that naively patches "instructions" linearly
   decoded from the pool corrupts observable behaviour. Returns the address
   of the first real instruction (the "ChromeMain" of this binary). *)
let emit_text_data_prefix g =
  if g.prof.data_in_text_kb = 0 then (Asm.here g.asm, None)
  else begin
    let code_start = Asm.fresh_label g.asm "chromemain" in
    Asm.jmp g.asm code_start;
    let blob_addr = Asm.here g.asm in
    let blob_len = g.prof.data_in_text_kb * 1024 in
    let blob =
      String.init blob_len (fun _ -> Char.chr (Rng.int g.rng 256))
    in
    Asm.ins_raw g.asm blob;
    Asm.place g.asm code_start;
    (Asm.here g.asm, Some (blob_addr, blob_len))
  end

let emit_main g fn_labels loop_body_calls ?blob ?(imports = [||]) () =
  if g.prof.endbr64_entries then ins g Insn.Endbr64;
  (* Allocate the two heap buffers and initialize fixed-role registers. *)
  ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm buf_size));
  ins g (Insn.Int Hostcall.malloc);
  ins g (Insn.Mov (Insn.Q, Insn.Reg heap_a, Insn.Reg Reg.RAX));
  ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm buf_size));
  ins g (Insn.Int Hostcall.malloc);
  ins g (Insn.Mov (Insn.Q, Insn.Reg heap_b, Insn.Reg Reg.RAX));
  ins g (Insn.Mov (Insn.Q, Insn.Reg main_ctr, Insn.Imm g.prof.iterations));
  ins g (Insn.Alu (Insn.Xor, Insn.Q, Insn.Reg checksum, Insn.Reg checksum));
  (* Seed the scratch registers deterministically. *)
  Array.iteri
    (fun i r -> ins g (Insn.Mov (Insn.Q, Insn.Reg r, Insn.Imm (i * 1000 + 17))))
    scratch;
  (* Fold the whole in-text constant pool into the checksum once, before
     the main loop: any byte a rewriter corrupts becomes observable
     without distorting the loop's dynamic instruction mix. *)
  (match blob with
  | Some (blob_addr, blob_len) ->
      let scan = Asm.fresh_label g.asm "blob_scan" in
      ins g (Insn.Movabs (Reg.R11, Int64.of_int blob_addr));
      ins g (Insn.Movabs (Reg.RBP, Int64.of_int (blob_addr + blob_len)));
      Asm.place g.asm scan;
      ins g
        (Insn.Mov (Insn.Q, Insn.Reg Reg.R10, Insn.Mem (Insn.mem ~base:Reg.R11 ())));
      ins g (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg checksum, Insn.Reg Reg.R10));
      ins g (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.R11, Insn.Imm 8));
      ins g (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.R11, Insn.Reg Reg.RBP));
      Asm.jcc g.asm Insn.B_ scan
  | None -> ());
  let loop = Asm.fresh_label g.asm "main_loop" in
  Asm.place g.asm loop;
  List.iter (fun f -> Asm.call g.asm f) loop_body_calls;
  (* Cross-library calls through the import table, if any: the §5.1
     scenario where this binary and its dependency are patched (or not)
     independently. *)
  if Array.length imports > 0 then begin
    let k = Array.length imports in
    let got = alloc_import_table g imports in
    ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.R10, Insn.Reg main_ctr));
    ins g (Insn.Alu (Insn.And, Insn.Q, Insn.Reg Reg.R10, Insn.Imm (k - 1)));
    ins g (Insn.Movabs (Reg.R11, Int64.of_int got));
    ins g
      (Insn.Call_ind
         (Insn.Mem (Insn.mem ~base:Reg.R11 ~index:(Reg.R10, Insn.S8) ())))
  end;
  (* One indirect call per iteration, through a function-pointer table. *)
  let k = min (Array.length fn_labels) 4 in
  let ftab = alloc_table g Abs (Array.sub fn_labels 0 k) in
  ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.R10, Insn.Reg main_ctr));
  ins g (Insn.Alu (Insn.And, Insn.Q, Insn.Reg Reg.R10, Insn.Imm (k - 1)));
  ins g (Insn.Movabs (Reg.R11, Int64.of_int ftab));
  ins g
    (Insn.Call_ind
       (Insn.Mem (Insn.mem ~base:Reg.R11 ~index:(Reg.R10, Insn.S8) ())));
  ins g (Insn.Dec (Insn.Q, Insn.Reg main_ctr));
  Asm.jcc g.asm Insn.NE loop;
  (* Epilogue: write the 8-byte checksum, exit with its low byte. *)
  ins g (Insn.Push checksum);
  ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 1));
  ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 1));
  ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.RSI, Insn.Reg Reg.RSP));
  ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.RDX, Insn.Imm 8));
  ins g Insn.Syscall;
  ins g (Insn.Pop checksum);
  ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Reg checksum));
  ins g (Insn.Alu (Insn.And, Insn.Q, Insn.Reg Reg.RDI, Insn.Imm 255));
  ins g (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 60));
  ins g Insn.Syscall

let build ?(imports = [||]) prof =
  (* Shared objects load high like PIE executables; what distinguishes
     them is that the dynamic linker owns the space below the base
     (handled by the rewriter's [reserve_below_base]). *)
  let high = prof.pie || prof.shared_object in
  let base = if high then base_pie else base_nonpie in
  (* Budget the text region generously; assert the code fits. The
     adversarial emitters inflate blocks well past the baseline ~100
     bytes, so only profiles that enable them pay for the headroom (the
     estimate — hence every address — is unchanged for legacy knobs). *)
  let per_block =
    100
    + (if prof.tiny_run_bias > 0.0 then 256 else 0)
    + (if prof.island_bias > 0.0 then 160 else 0)
  in
  let est =
    (prof.functions * prof.blocks_per_fn * per_block)
    + (prof.far_gap_kb * 1024) + 4096
  in
  let data_base = base + align4k (est * 2) in
  let g =
    { rng = Rng.create prof.seed;
      asm = Asm.create ~base;
      prof;
      base_addr = base;
      data_base;
      table_off = 0;
      tables = [];
      raw_tables = [];
      islands = [] }
  in
  let fn_labels =
    Array.init prof.functions (fun i ->
        Asm.fresh_label g.asm (Printf.sprintf "f%d" i))
  in
  let code_start, blob = emit_text_data_prefix g in
  (* Main calls a genuinely executed subset of functions per iteration. *)
  let n_calls = min prof.functions (3 + Rng.int g.rng 3) in
  let loop_body_calls =
    List.init n_calls (fun i -> fn_labels.(i * prof.functions / n_calls))
  in
  emit_main g fn_labels loop_body_calls ?blob ~imports ();
  let far_ret =
    if prof.far_gap_kb = 0 then None
    else Some (Asm.fresh_label g.asm "far_ret")
  in
  Array.iter
    (fun fl ->
      let n_blocks = max 2 (prof.blocks_per_fn - 2 + Rng.int g.rng 5) in
      emit_function g ?far_ret fl n_blocks)
    fn_labels;
  (match far_ret with
  | None -> ()
  | Some l ->
      (* The nop desert between the last function and the shared ret
         thunk. Single-byte nops keep a linear sweep trivially in sync. *)
      Asm.ins_raw g.asm (String.make (prof.far_gap_kb * 1024) '\x90');
      Asm.place g.asm l;
      Asm.ins g.asm Insn.Ret);
  let code = Asm.assemble g.asm in
  if Bytes.length code > data_base - base then
    raise
      (Error
         (Printf.sprintf "Codegen: text overflowed its budget (%d > %d)"
            (Bytes.length code) (data_base - base)));
  (* Fill the tables now that label addresses are known. *)
  let rodata = Buf.create (max g.table_off 8) in
  ignore (Buf.add_zeros rodata (max g.table_off 8));
  List.iter
    (fun (off, kind, labels) ->
      Array.iteri
        (fun i l ->
          let target = Asm.label_addr g.asm l in
          match kind with
          | Abs -> Buf.set_u64 rodata (off + (8 * i)) (Int64.of_int target)
          | Pic -> Buf.set_u32 rodata (off + (4 * i)) (target - base))
        labels)
    g.tables;
  List.iter
    (fun (off, addrs) ->
      Array.iteri
        (fun i a -> Buf.set_u64 rodata (off + (8 * i)) (Int64.of_int a))
        addrs)
    g.raw_tables;
  let elf =
    Elf_file.create
      ~etype:(if high then Elf_file.Dyn else Elf_file.Exec)
      ~entry:base
  in
  let text_off =
    Elf_file.add_segment elf
      { Elf_file.ptype = Elf_file.Load;
        prot = Elf_file.prot_rx;
        vaddr = base;
        offset = 0;
        filesz = 0;
        memsz = Bytes.length code;
        align = 4096 }
      ~content:code
  in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_r;
         vaddr = data_base;
         offset = 0;
         filesz = 0;
         memsz = Buf.length rodata;
         align = 4096 }
       ~content:(Buf.contents rodata));
  if prof.bss_mb > 0 then begin
    let bss_base = data_base + align4k (Buf.length rodata) in
    ignore
      (Elf_file.add_segment elf
         { Elf_file.ptype = Elf_file.Load;
           prot = Elf_file.prot_rw;
           vaddr = bss_base;
           offset = 0;
           filesz = 0;
           memsz = prof.bss_mb * (1 lsl 20);
           align = 4096 }
         ~content:Bytes.empty)
  end;
  (* Ground-truth table metadata: consumed only by the relocating baseline
     rewriter (E9Patch never reads it). *)
  let meta =
    List.rev_map
      (fun (off, kind, labels) ->
        { Tablemeta.addr = data_base + off;
          kind = (match kind with Abs -> Tablemeta.Abs64 | Pic -> Tablemeta.Off32 base);
          entries = Array.length labels })
      g.tables
    @ List.rev_map
        (fun (off, addrs) ->
          { Tablemeta.addr = data_base + off;
            kind = Tablemeta.Abs64;
            entries = Array.length addrs })
        g.raw_tables
  in
  ignore
    (Elf_file.add_section elf ~name:Tablemeta.section_name ~addr:0 ~sh_type:1
       ~sh_flags:0 ~content:(Tablemeta.encode meta));
  (* Island ground truth: (addr, len) u64 pairs. A correct campaign turns
     these into exclusion/keep ranges before rewriting. *)
  (match g.islands with
  | [] -> ()
  | isl ->
      let isl = List.rev isl in
      let b = Buf.create (16 * List.length isl) in
      List.iter
        (fun (a, l) ->
          ignore (Buf.add_u64 b (Int64.of_int a));
          ignore (Buf.add_u64 b (Int64.of_int l)))
        isl;
      ignore
        (Elf_file.add_section elf ~name:islands_section ~addr:0 ~sh_type:1
           ~sh_flags:0 ~content:(Buf.contents b)));
  (* The .text section marks the region the frontend disassembles; the
     zero-sized marker is the "ChromeMain symbol" a frontend can use to
     skip the data prefix (§6.2). *)
  elf.Elf_file.sections <-
    { Elf_file.name = ".text";
      sh_type = 1;
      sh_flags = 6;
      addr = base;
      offset = text_off;
      size = Bytes.length code }
    :: { Elf_file.name = chromemain_marker;
         sh_type = 1;
         sh_flags = 0;
         addr = code_start;
         offset = text_off + code_start - base;
         size = 0 }
    :: elf.Elf_file.sections;
  (elf, Array.map (Asm.label_addr g.asm) fn_labels)

let generate prof = fst (build prof)

(* Decode the island ground-truth section back out of a generated binary.
   Tolerant of absence (no islands emitted, or the table was stripped);
   intolerant of corruption. *)
let islands elf =
  match Elf_file.find_section elf islands_section with
  | None -> []
  | Some s ->
      let b = Buf.of_bytes (Elf_file.section_bytes elf s) in
      let n = Buf.length b in
      if n mod 16 <> 0 then
        raise
          (Elf_file.Malformed
             (Printf.sprintf "%s: size %d is not a multiple of 16"
                islands_section n));
      List.init (n / 16) (fun i ->
          ( Int64.to_int (Buf.get_u64 b (16 * i)),
            Int64.to_int (Buf.get_u64 b ((16 * i) + 8)) ))

(* A shared library: the same code shape, loaded high, with its function
   entry points exported for an executable's import table. *)
let generate_library prof =
  let prof = { prof with shared_object = true } in
  let elf, fns = build prof in
  (elf, fns)

(* An executable that calls [imports] (addresses inside an already-loaded
   library) through its GOT every iteration. *)
let generate_with_imports prof ~imports = fst (build ~imports prof)


(** The adversarial corpus: named binary families, each built around one
    structural property real binaries use to break naive rewriters.

    This module is pure data — family descriptors over {!Codegen}
    profiles. Interpreting a descriptor (generating the binary, choosing
    rewriter options, scoring the outcome) is the robustness campaign's
    job ({!E9_check.Matrix}); keeping the registry here means workload
    code, tests and the CLI all agree on what each family is without
    depending on the rewriter.

    Derived attributes are not duplicated in the record: a family with
    [profile.island_bias > 0] needs island exclusion ranges, one with
    [profile.shared_object] needs [reserve_below_base], one with
    [profile.endbr64_entries] carries an anchor-count ground truth of
    [functions + 1]. *)

(** Which of the paper's two applications the family is scored under:
    patch all jumps (A1) or all heap writes (A2). *)
type selector = Jumps | Heap_writes

type family = {
  name : string;  (** stable identifier (CLI, JSON matrix, tests) *)
  blurb : string;  (** one-line description for reports *)
  profile : Codegen.profile;
  selector : selector;
  strip : bool;
      (** serialize via {!Elf_file.to_bytes_stripped}: no section header
          table, so text discovery must use the program-header fallback *)
  floor_pct : float;
      (** pinned regression floor: the campaign fails if the family's
          patched% drops below this *)
  expect_pressure : bool;
      (** the family is expected to starve the jump-tactic ladder — the
          campaign fails unless T3 or B0 fired at least once *)
}

val selector_name : selector -> string

(** The corpus, in canonical order. Every family is deterministic (fixed
    profile seed), so scores are reproducible byte-for-byte. *)
val families : family list

(** [find name] looks a family up by its stable identifier. *)
val find : string -> family option

module Buf = E9_bits.Buf
module Fault = E9_fault.Fault

type loader_mode = Table | Stub

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type options = {
  tactics : Tactics.options;
  granularity : int;
  grouping : bool;
  reserve_below_base : bool;
  loader : loader_mode;
  shard_span : int;
  keep_ranges : (int * int) list;
}

let default_options =
  { tactics = Tactics.default_options;
    granularity = 1;
    grouping = true;
    reserve_below_base = false;
    loader = Table;
    shard_span = 1 lsl 16;
    keep_ranges = [] }

(* A stable, injective textual encoding of every options field. Lives
   next to the type so a new field cannot be forgotten without the
   record pattern below failing to compile. The RPC service hashes this
   into its content-addressed cache key (DESIGN.md §13): two options
   values rewrite identically iff their signatures are equal. *)
let options_signature o =
  let { tactics; granularity; grouping; reserve_below_base; loader;
        shard_span; keep_ranges } = o in
  let { Tactics.enable_base; enable_t1; enable_t2; enable_t3; b0_fallback;
        t2_joint; t2_cap; t3_cap } = tactics in
  Printf.sprintf
    "base=%b;t1=%b;t2=%b;t3=%b;b0=%b;joint=%b;t2cap=%d;t3cap=%d;M=%d;\
     grouping=%b;shared=%b;loader=%s;span=%d;keep=%s"
    enable_base enable_t1 enable_t2 enable_t3 b0_fallback t2_joint t2_cap
    t3_cap granularity grouping reserve_below_base
    (match loader with Table -> "table" | Stub -> "stub")
    shard_span
    (String.concat ","
       (List.map (fun (a, l) -> Printf.sprintf "%x+%x" a l) keep_ranges))

type result = {
  output : Elf_file.t;
  stats : Stats.t;
  input_size : int;
  output_size : int;
  trampoline_bytes : int;
  virtual_blocks : int;
  physical_blocks : int;
  mappings : int;
  patched_sites : (int * Stats.tactic) list;
  shards : int;
  steals : int;
  setup_s : float;
  occupancy : Layout.occupancy;
}

let default_jobs () =
  match Sys.getenv_opt "E9_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)
  | None -> 1

let run ?(options = default_options) ?(obs = E9_obs.Obs.null)
    ?(fault = Fault.none) ?jobs ?jitter ?disasm_from ?frontend input ~select
    ~template =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let input_size = Elf_file.serialized_size input in
  let output = Elf_file.copy input in
  (* Stub-mode pre-flight (satellite of DESIGN.md §11): the collision
     between the loader's home and an existing segment must be detected
     before a single byte is patched, so a refused input yields a typed
     error and an untouched output — never a half-rewritten binary. *)
  if options.loader = Stub then begin
    match Elf_file.segment_at output Loader_stub.home with
    | Some (s : Elf_file.segment) ->
        error
          "Rewriter: loader home 0x%x collides with a segment at 0x%x \
           (+0x%x)"
          Loader_stub.home s.Elf_file.vaddr s.Elf_file.memsz
    | None -> ()
  end;
  let disassemble =
    match frontend with
    | Some f -> f
    | None -> fun elf -> Frontend.disassemble ?from:disasm_from ~jobs ~fault elf
  in
  let text, sites_list =
    E9_obs.Obs.span obs "decode" (fun () -> disassemble output)
  in
  let sites = Array.of_list sites_list in
  let base = text.Frontend.base in
  let layout =
    Layout.create ~reserve_below_base:options.reserve_below_base
      ~block_size:(options.granularity * 4096) output
  in
  (* Keep the loader stub's landing zone trampoline-free: segments exist
     in the layout's occupancy from birth, but the stub segment is only
     appended after all tactics ran. *)
  if options.loader = Stub then
    Layout.reserve layout ~addr:Loader_stub.home ~size:Loader_stub.home_span;
  let text_buf =
    Buf.of_bytes (Buf.sub output.Elf_file.data ~pos:text.Frontend.offset ~len:text.Frontend.size)
  in
  let stats = Stats.create () in
  let patched = ref [] in
  (* Strategy S1: patch from highest to lowest address so that puns only
     ever depend on bytes that are already final. *)
  let selected =
    Array.to_list sites |> List.filter select
    |> List.sort (fun (a : Frontend.site) b -> compare b.addr a.addr)
  in
  (* Immutable byte ranges (mid-text data islands, hand-excluded pools):
     pre-locked before any tactic runs, so no patch, pun, dead-byte squat
     or eviction can write into them. Locking is range-clipped (out-of-
     range bytes are ignored), so applying the full list to every lock
     domain — serial, per-shard, merged — marks exactly the same bytes
     whatever the shard count, preserving jobs-invariance. *)
  let apply_keeps locks =
    List.iter
      (fun (addr, len) -> Lock.lock_range locks ~addr ~len)
      options.keep_ranges
  in
  (* Shard geometry is a function of the text alone — never of [jobs] —
     so the rewritten bytes are identical for every domain count: [jobs]
     only decides how many domains execute the fixed shard tasks. A
     single shard degenerates to the plain serial rewrite. *)
  let span = max options.shard_span (4 * Tactics.max_reach) in
  let nshards = max 1 ((text.Frontend.size + span - 1) / span) in
  let tramps, traps, locked_bytes, steals, setup_s, deferred_count =
    if nshards <= 1 then begin
      let t0 = Unix.gettimeofday () in
      let ctx =
        Tactics.create_ctx ~obs ~fault ~text:text_buf ~text_base:base ~layout
          ~sites ~options:options.tactics ()
      in
      apply_keeps (Tactics.locks ctx);
      let setup_s = Unix.gettimeofday () -. t0 in
      E9_obs.Obs.span obs "tactic_search" (fun () ->
          List.iter
            (fun site ->
              match Tactics.patch ctx site (template site) with
              | Some tactic ->
                  Stats.record stats tactic;
                  patched := (site.Frontend.addr, tactic) :: !patched
              | None -> Stats.record_failure stats)
            selected);
      ( Tactics.trampolines ctx,
        Tactics.trap_entries ctx,
        Lock.locked_count (Tactics.locks ctx),
        0,
        setup_s,
        0 )
    end
    else begin
      (* Domain-parallel rewrite (DESIGN.md §10). Shards are [span]-byte
         text regions with [span >= 4 * Tactics.max_reach]; a site whose
         tactic reach cannot cross its shard's top edge is {e interior}
         and may be patched concurrently: every byte, lock and dead mark
         it can touch lies inside its own shard, and its trampoline comes
         from a stripe-partitioned private arena, so shards never race.
         Sites within [max_reach] of the edge are deferred to a serial
         fixup pass over the merged state. *)
      let shard_lo k = base + (k * span) in
      let shard_top k =
        if k = nshards - 1 then base + text.Frontend.size
        else base + ((k + 1) * span)
      in
      let shard_of addr = min (nshards - 1) ((addr - base) / span) in
      (* Every decoded site, split per shard: tactics walk successor and
         victim instructions, which for interior sites stay in-shard. *)
      let buckets = Array.make nshards [] in
      Array.iter
        (fun (s : Frontend.site) ->
          let k = shard_of s.addr in
          buckets.(k) <- s :: buckets.(k))
        sites;
      let shard_sites =
        Array.map (fun l -> Array.of_list (List.rev l)) buckets
      in
      let interior = Array.make nshards [] in
      let boundary = ref [] in
      List.iter
        (fun (s : Frontend.site) ->
          let k = shard_of s.addr in
          if k = nshards - 1 || s.addr + Tactics.max_reach <= shard_top k then
            interior.(k) <- s :: interior.(k)
          else boundary := s :: !boundary)
        (List.rev selected);
      (* [interior.(k)] and [boundary] are in descending address order. *)
      E9_obs.Obs.span obs "tactic_search" (fun () ->
          (* Work-stealing execution (DESIGN.md §12): the chunk list and
             every chunk's work are functions of the text alone; [domains]
             only sets how many workers drain them. Capped at the
             machine's core count — oversubscribed domains cost minor-GC
             barriers without buying parallelism. An idle worker steals
             whole chunks, and chunk [k]'s stripe ownership travels with
             [k], not with the worker, so a stolen chunk allocates from
             exactly the stripes it would have owned unstolen. *)
          let domains = min jobs (Domain.recommended_domain_count ()) in
          let shard_results, steal_report =
            try
              E9_bits.Pool.map_stealing ~domains ?jitter
                (fun k ->
                  (* Forked fault record per shard: occurrence counting is
                     then a function of the shard's own query sequence,
                     never of domain interleaving, preserving output
                     identity across jobs values (DESIGN.md §10). An
                     indexed [Shard] rule simulates a domain dying
                     mid-map; Pool contains it per-slot and this layer
                     types it. *)
                  let sfault = Fault.fork fault in
                  if Fault.fires_at sfault Fault.Shard ~key:k then
                    raise
                      (Fault.Injected
                         (Printf.sprintf "shard %d raised mid-Pool.map" k));
                  let t0 = Unix.gettimeofday () in
                  let lo = shard_lo k and top = shard_top k in
                  let arena = Layout.shard layout ~index:k ~count:nshards in
                  let locks = Lock.create ~base:lo ~len:(top - lo) in
                  apply_keeps locks;
                  let dead = Lock.create ~base:lo ~len:(top - lo) in
                  let sobs = E9_obs.Obs.fork obs in
                  let ctx =
                    Tactics.create_ctx ~obs:sobs ~fault:sfault ~locks ~dead
                      ~text:text_buf ~text_base:base ~layout:arena
                      ~sites:shard_sites.(k) ~options:options.tactics ()
                  in
                  let ssetup = Unix.gettimeofday () -. t0 in
                  let sstats = Stats.create () in
                  let spatched = ref [] in
                  let sdeferred = ref [] in
                  List.iter
                    (fun site ->
                      match Tactics.patch_deferrable ctx site (template site)
                      with
                      | `Patched tactic ->
                          Stats.record sstats tactic;
                          spatched := (site.Frontend.addr, tactic) :: !spatched
                      | `Deferred -> sdeferred := site :: !sdeferred
                      | `Failed -> Stats.record_failure sstats)
                    interior.(k);
                  ( arena,
                    locks,
                    dead,
                    sobs,
                    sfault,
                    sstats,
                    !spatched,
                    Tactics.trampolines ctx,
                    Tactics.trap_entries ctx,
                    List.rev !sdeferred,
                    ssetup ))
                (List.init nshards (fun i -> nshards - 1 - i))
            with Fault.Injected m -> error "injected fault: %s" m
          in
          (* Canonical merge, shards high-to-low (the fixed task order —
             Pool.map_stealing returns results in input order whatever the
             completion order, so the merge is identical for every
             [jobs]). *)
          let locks_all = Lock.create ~base ~len:text.Frontend.size in
          let dead_all = Lock.create ~base ~len:text.Frontend.size in
          List.iter
            (fun (arena, locks, dead, sobs, sfault, sstats, spatched, _, _, _,
                  _) ->
              Layout.absorb ~dst:layout arena;
              Lock.merge_into ~dst:locks_all locks;
              Lock.merge_into ~dst:dead_all dead;
              E9_obs.Obs.merge_into ~dst:obs sobs;
              Fault.merge_into ~dst:fault sfault;
              Stats.merge_into ~dst:stats sstats;
              patched := List.rev_append spatched !patched)
            shard_results;
          (* Serial fixup over the merged state: boundary sites see every
             shard's locks, dead bytes and occupancy, and stripe-starved
             deferred sites retry their windows against the unconstrained
             merged layout, where the O(log n) query sees every stripe —
             exactly the serial algorithm, restricted to the held-back
             sites, in canonical descending address order. *)
          let deferred_all =
            List.concat_map
              (fun (_, _, _, _, _, _, _, _, _, dfr, _) -> dfr)
              shard_results
          in
          let setup_total =
            List.fold_left
              (fun acc (_, _, _, _, _, _, _, _, _, _, s) -> acc +. s)
              0. shard_results
          in
          let fixup_sites =
            List.merge
              (fun (a : Frontend.site) b -> compare b.addr a.addr)
              deferred_all !boundary
          in
          let fixup_ctx =
            Tactics.create_ctx ~obs ~fault ~locks:locks_all ~dead:dead_all
              ~text:text_buf ~text_base:base ~layout ~sites
              ~options:options.tactics ()
          in
          List.iter
            (fun site ->
              match Tactics.patch fixup_ctx site (template site) with
              | Some tactic ->
                  Stats.record stats tactic;
                  patched := (site.Frontend.addr, tactic) :: !patched
              | None -> Stats.record_failure stats)
            fixup_sites;
          let shard_tramps =
            List.concat_map
              (fun (_, _, _, _, _, _, _, tr, _, _, _) -> tr)
              shard_results
          in
          let shard_traps =
            List.concat_map
              (fun (_, _, _, _, _, _, _, _, tp, _, _) -> tp)
              shard_results
          in
          ( shard_tramps @ Tactics.trampolines fixup_ctx,
            shard_traps @ Tactics.trap_entries fixup_ctx,
            Lock.locked_count locks_all,
            steal_report.E9_bits.Pool.steals,
            setup_total,
            List.length deferred_all ))
    end
  in
  let occ = Layout.occupancy layout in
  if E9_obs.Obs.enabled obs then begin
    E9_obs.Obs.gauge obs ~name:"layout.occupied_intervals"
      ~value:occ.Layout.occupied_intervals;
    E9_obs.Obs.gauge obs ~name:"layout.trampoline_extents"
      ~value:occ.Layout.trampoline_extents;
    E9_obs.Obs.gauge obs ~name:"layout.trampoline_bytes"
      ~value:occ.Layout.trampoline_bytes;
    E9_obs.Obs.gauge obs ~name:"text.locked_bytes" ~value:locked_bytes;
    E9_obs.Obs.gauge obs ~name:"rewrite.shards" ~value:nshards;
    (* Next-fit allocator cursor effectiveness; shard-arena counters were
       folded into [layout] by [Layout.absorb]. *)
    E9_obs.Obs.counter obs ~name:"layout.cursor_hits"
      ~value:(Layout.cursor_hits layout);
    E9_obs.Obs.counter obs ~name:"layout.cursor_misses"
      ~value:(Layout.cursor_misses layout);
    (* Parallel-search honesty counters (DESIGN.md §12): stripe rotations
       and deferrals show how the conflict storm was absorbed; steals show
       whether the scheduler actually balanced anything. *)
    E9_obs.Obs.counter obs ~name:"layout.stripe_rotations"
      ~value:(Layout.stripe_rotations layout);
    E9_obs.Obs.counter obs ~name:"pool.steals" ~value:steals;
    E9_obs.Obs.counter obs ~name:"rewrite.deferred_sites"
      ~value:deferred_count;
    Array.iter
      (fun s ->
        let n = Fault.fired fault s in
        if n > 0 then
          E9_obs.Obs.fault obs ~site:(Fault.site_name s) ~fires:n)
      Fault.sites
  end;
  (* Blit the patched text back — strictly in place. *)
  Buf.blit_in output.Elf_file.data ~pos:text.Frontend.offset (Buf.contents text_buf);
  (* Physical page grouping over the emitted trampolines, then append. *)
  let grouped =
    E9_obs.Obs.span obs "layout" (fun () ->
        Pagegroup.group ~granularity:options.granularity
          ~enabled:options.grouping tramps)
  in
  if Bytes.length grouped.Pagegroup.blob > 0 then begin
    let blob_off =
      Elf_file.add_section output ~name:".e9patch.tramp" ~addr:0 ~sh_type:1
        ~sh_flags:0 ~content:grouped.Pagegroup.blob
    in
    let mappings =
      List.map
        (fun (m : Loadmap.mapping) ->
          { m with Loadmap.file_off = m.Loadmap.file_off + blob_off })
        grouped.Pagegroup.mappings
    in
    match options.loader with
    | Table ->
        (* Host-side loading: the emulator's loader interprets the table. *)
        ignore
          (Elf_file.add_section output ~name:Elf_file.mmap_section_name
             ~addr:0 ~sh_type:1 ~sh_flags:0
             ~content:(Loadmap.encode_mappings mappings))
    | Stub ->
        (* The paper's mechanism: an injected loader replaces the entry
           point and performs the mmaps itself (§5.1). *)
        let stub =
          Loader_stub.emit ~vaddr:Loader_stub.home ~mappings
            ~real_entry:output.Elf_file.entry
        in
        (* Defensive re-check: the pre-flight above already refused
           colliding inputs before any mutation; a hit here would mean
           the rewrite itself grew a segment into the loader home. *)
        (match Elf_file.segment_at output Loader_stub.home with
        | Some _ ->
            error "Rewriter: loader home 0x%x collides with a segment \
                   created during rewriting"
              Loader_stub.home
        | None -> ());
        ignore
          (Elf_file.add_segment output
             { Elf_file.ptype = Elf_file.Load;
               prot = Elf_file.prot_rx;
               vaddr = Loader_stub.home;
               offset = 0;
               filesz = 0;
               memsz = Bytes.length stub.Loader_stub.content;
               align = 4096 }
             ~content:stub.Loader_stub.content);
        output.Elf_file.entry <- stub.Loader_stub.entry
  end;
  (match traps with
  | [] -> ()
  | traps ->
      ignore
        (Elf_file.add_section output ~name:Elf_file.trap_section_name ~addr:0
           ~sh_type:1 ~sh_flags:0 ~content:(Loadmap.encode_traps traps)));
  let output_size =
    E9_obs.Obs.span obs "serialize" (fun () ->
        Elf_file.serialized_size output)
  in
  Logs.info (fun m ->
      m "rewrote %s: %a; %d -> %d bytes; %d trampolines in %d mappings"
        (match Frontend.find_text output with
        | Some t -> Printf.sprintf "text@0x%x" t.Frontend.base
        | None -> "?")
        (fun ppf -> Stats.pp ppf) stats input_size output_size
        (List.length tramps)
        (List.length grouped.Pagegroup.mappings));
  { output;
    stats;
    input_size;
    output_size;
    trampoline_bytes =
      List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 tramps;
    virtual_blocks = grouped.Pagegroup.virtual_blocks;
    physical_blocks = grouped.Pagegroup.physical_blocks;
    mappings = List.length grouped.Pagegroup.mappings;
    patched_sites = List.sort (fun (a, _) (b, _) -> compare b a) !patched;
    shards = nshards;
    steals;
    setup_s;
    occupancy = occ }

let size_pct r =
  if r.input_size = 0 then 0.0
  else 100.0 *. float_of_int r.output_size /. float_of_int r.input_size

module Buf = E9_bits.Buf
module Fault = E9_fault.Fault

type loader_mode = Table | Stub

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type options = {
  tactics : Tactics.options;
  granularity : int;
  grouping : bool;
  reserve_below_base : bool;
  loader : loader_mode;
  shard_span : int;
  keep_ranges : (int * int) list;
  chunking : Chunker.params option;
}

let default_options =
  { tactics = Tactics.default_options;
    granularity = 1;
    grouping = true;
    reserve_below_base = false;
    loader = Table;
    shard_span = 1 lsl 16;
    keep_ranges = [];
    chunking = None }

(* A stable, injective textual encoding of every options field. Lives
   next to the type so a new field cannot be forgotten without the
   record pattern below failing to compile. The RPC service hashes this
   into its content-addressed cache key (DESIGN.md §13): two options
   values rewrite identically iff their signatures are equal. *)
let options_signature o =
  let { tactics; granularity; grouping; reserve_below_base; loader;
        shard_span; keep_ranges; chunking } = o in
  let { Tactics.enable_base; enable_t1; enable_t2; enable_t3; b0_fallback;
        t2_joint; t2_cap; t3_cap } = tactics in
  Printf.sprintf
    "base=%b;t1=%b;t2=%b;t3=%b;b0=%b;joint=%b;t2cap=%d;t3cap=%d;M=%d;\
     grouping=%b;shared=%b;loader=%s;span=%d;keep=%s;chunk=%s"
    enable_base enable_t1 enable_t2 enable_t3 b0_fallback t2_joint t2_cap
    t3_cap granularity grouping reserve_below_base
    (match loader with Table -> "table" | Stub -> "stub")
    shard_span
    (String.concat ","
       (List.map (fun (a, l) -> Printf.sprintf "%x+%x" a l) keep_ranges))
    (match chunking with
    | None -> "off"
    | Some c -> Format.asprintf "%a" Chunker.pp_params c)

type result = {
  output : Elf_file.t;
  stats : Stats.t;
  input_size : int;
  output_size : int;
  trampoline_bytes : int;
  virtual_blocks : int;
  physical_blocks : int;
  mappings : int;
  patched_sites : (int * Stats.tactic) list;
  shards : int;
  steals : int;
  setup_s : float;
  occupancy : Layout.occupancy;
  plan_hits : int;
  plan_misses : int;
  plan_conflicts : int;
}

let default_jobs () =
  match Sys.getenv_opt "E9_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)
  | None -> 1

(* Per-chunk geometry and plan state under content-defined chunking
   (DESIGN.md §14); absent in the fixed-span PR 4 geometry. *)
type chunked = {
  g_bounds : (int * int) array;  (* text-relative (lo, size), ascending *)
  g_sites : Frontend.site list array;
  g_entries : int array;
  g_exits : int array;
  g_keys : string array;  (* "" when no plan store is consulted *)
  g_found : Plan.chunk option array;  (* raw store answers *)
  g_decode_replayed : bool array;
}

(* What one chunk/shard task hands back for the canonical merge. *)
type shard_out = {
  o_arena : Layout.t;
  o_locks : Lock.t;
  o_dead : Lock.t;
  o_obs : E9_obs.Obs.t;
  o_fault : Fault.t;
  o_stats : Stats.t;
  o_patched : (int * Stats.tactic) list;  (* ascending (built by prepend) *)
  o_tramps : (int * bytes) list;  (* chronological *)
  o_traps : Loadmap.trap list;
  o_deferred : Frontend.site list;  (* descending *)
  o_splans : Plan.site_plan list;  (* processing order; capture mode only *)
  o_replayed : bool;
  o_conflict : bool;
  o_setup : float;
}

(* New cons cells of [l] down to the (physically equal) snapshot [stop],
   returned oldest-first — per-site attribution of the tactics context's
   accumulator lists. *)
let rec fresh_prefix l stop acc =
  if l == stop then acc
  else match l with [] -> acc | x :: tl -> fresh_prefix tl stop (x :: acc)

(* Quarter-log2 distance class of a trampoline placement (telemetry in
   the serialized plan; replay correctness comes from the recorded
   addresses, never from this). *)
let placement_class ~site_addr = function
  | (a, _) :: _ ->
      let rec go d c = if d <= 1 || c >= 63 then c else go (d lsr 2) (c + 1) in
      go (abs (a - site_addr)) 0
  | [] -> 0

let site_eq (a : Frontend.site) (b : Frontend.site) =
  a.addr = b.addr && a.len = b.len && a.insn = b.insn

let run ?(options = default_options) ?(obs = E9_obs.Obs.null)
    ?(fault = Fault.none) ?jobs ?jitter ?plan ?disasm_from ?frontend input
    ~select ~template =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let input_size = Elf_file.serialized_size input in
  let output = Elf_file.copy input in
  (* Stub-mode pre-flight (satellite of DESIGN.md §11): the collision
     between the loader's home and an existing segment must be detected
     before a single byte is patched, so a refused input yields a typed
     error and an untouched output — never a half-rewritten binary. *)
  if options.loader = Stub then begin
    match Elf_file.segment_at output Loader_stub.home with
    | Some (s : Elf_file.segment) ->
        error
          "Rewriter: loader home 0x%x collides with a segment at 0x%x \
           (+0x%x)"
          Loader_stub.home s.Elf_file.vaddr s.Elf_file.memsz
    | None -> ()
  end;
  let disassemble =
    match frontend with
    | Some f -> f
    | None -> fun elf -> Frontend.disassemble ?from:disasm_from ~jobs ~fault elf
  in
  (* Plan capture/replay requires the standard linear sweep and a quiet
     fault record: an injected decode cut or alloc refusal is run-local
     state that must never leak into (or out of) a persistent plan.
     Chunk {e geometry} stays on regardless — output bytes are a function
     of [options] and the input alone, with or without a store. *)
  let plan_cfg =
    match (plan, options.chunking) with
    | (Some _ as p), Some _ when frontend = None && Fault.is_none fault -> p
    | _ -> None
  in
  let text, sites_list, chunked, pristine =
    match options.chunking with
    | None ->
        let text, sl =
          E9_obs.Obs.span obs "decode" (fun () -> disassemble output)
        in
        (text, sl, None, Bytes.empty)
    | Some params ->
        let text =
          match Frontend.find_text output with
          | Some t -> t
          | None ->
              (* Raise the frontend's canonical error. *)
              ignore (disassemble output);
              assert false
        in
        let pristine =
          Buf.sub output.Elf_file.data ~pos:text.Frontend.offset
            ~len:text.Frontend.size
        in
        let bounds =
          Chunker.boundaries params pristine ~pos:0 ~len:text.Frontend.size
        in
        let gb = Array.of_list bounds in
        let n = Array.length gb in
        let keys, found =
          match plan_cfg with
          | None -> (Array.make n "", Array.make n None)
          | Some cfg ->
              let seg_sig =
                String.concat ";"
                  (List.map
                     (fun (s : Elf_file.segment) ->
                       Printf.sprintf "%s:%x+%x"
                         (match s.Elf_file.ptype with
                         | Elf_file.Load -> "L"
                         | Elf_file.Note -> "N"
                         | Elf_file.Other t -> string_of_int t)
                         s.Elf_file.vaddr s.Elf_file.memsz)
                     output.Elf_file.segments)
              in
              let env_base =
                Printf.sprintf "%s|text=%x+%x|segs=%s|from=%s"
                  (options_signature options) text.Frontend.base
                  text.Frontend.size seg_sig
                  (match disasm_from with
                  | None -> "-"
                  | Some a -> Printf.sprintf "%x" a)
              in
              let keys =
                Array.mapi
                  (fun k (lo, sz) ->
                    let hash =
                      E9_bits.Fnv.hex pristine ~pos:lo ~len:sz
                    in
                    ignore k;
                    Plan.key ~hash ~addr:(text.Frontend.base + lo) ~len:sz
                      ~env:(env_base ^ "|spec=" ^ cfg.Plan.spec_key ~lo ~len:sz))
                  gb
              in
              (keys, Array.map (fun k -> cfg.Plan.store.find k) keys)
        in
        (* Decode, replaying unchanged chunks' recorded site lists. The
           probe only answers when the stored plan was recorded over the
           same bytes (the key's content hash) at the same sweep entry —
           decode is a pure function of [(bytes, position)], so adoption
           is exact. *)
        let g_sites, g_entries, g_exits, g_decode_replayed =
          match plan_cfg with
          | Some _ when frontend = None ->
              let probe ~index ~entry =
                match found.(index) with
                | Some p
                  when p.Plan.c_entry = entry
                       && p.Plan.c_lo = fst gb.(index)
                       && p.Plan.c_len = snd gb.(index) ->
                    Some (p.Plan.c_sites, p.Plan.c_exit)
                | _ -> None
              in
              let _t, cs, en, ex, rp =
                E9_obs.Obs.span obs "decode" (fun () ->
                    Frontend.disassemble_planned ?from:disasm_from
                      ~bounds:(Array.to_list gb) ~probe output)
              in
              (cs, en, ex, rp)
          | _ ->
              (* Fault injection or a substituted frontend: decode the
                 standard way and bucket sites into the chunk bounds.
                 Decode is pure, so the buckets equal the planned sweep's
                 whenever both run. *)
              let _t, sl =
                E9_obs.Obs.span obs "decode" (fun () -> disassemble output)
              in
              let cs = Array.make n [] in
              let idx_of off =
                let rec go lo hi =
                  if lo >= hi then lo - 1
                  else
                    let mid = (lo + hi) / 2 in
                    if fst gb.(mid) <= off then go (mid + 1) hi else go lo mid
                in
                go 0 n
              in
              List.iter
                (fun (s : Frontend.site) ->
                  let k = idx_of (s.addr - text.Frontend.base) in
                  cs.(k) <- s :: cs.(k))
                sl;
              ( Array.map List.rev cs,
                Array.make n 0,
                Array.make n 0,
                Array.make n false )
        in
        let sites_list = List.concat (Array.to_list g_sites) in
        ( text,
          sites_list,
          Some
            { g_bounds = gb;
              g_sites;
              g_entries;
              g_exits;
              g_keys = keys;
              g_found = found;
              g_decode_replayed },
          pristine )
  in
  let sites = Array.of_list sites_list in
  let base = text.Frontend.base in
  let layout =
    Layout.create ~reserve_below_base:options.reserve_below_base
      ~block_size:(options.granularity * 4096) output
  in
  (* Keep the loader stub's landing zone trampoline-free: segments exist
     in the layout's occupancy from birth, but the stub segment is only
     appended after all tactics ran. *)
  if options.loader = Stub then
    Layout.reserve layout ~addr:Loader_stub.home ~size:Loader_stub.home_span;
  let text_buf =
    Buf.of_bytes (Buf.sub output.Elf_file.data ~pos:text.Frontend.offset ~len:text.Frontend.size)
  in
  let stats = Stats.create () in
  let patched = ref [] in
  (* Strategy S1: patch from highest to lowest address so that puns only
     ever depend on bytes that are already final. *)
  let selected =
    Array.to_list sites |> List.filter select
    |> List.sort (fun (a : Frontend.site) b -> compare b.addr a.addr)
  in
  (* Immutable byte ranges (mid-text data islands, hand-excluded pools):
     pre-locked before any tactic runs, so no patch, pun, dead-byte squat
     or eviction can write into them. Locking is range-clipped (out-of-
     range bytes are ignored), so applying the full list to every lock
     domain — serial, per-shard, merged — marks exactly the same bytes
     whatever the shard count, preserving jobs-invariance. *)
  let apply_keeps locks =
    List.iter
      (fun (addr, len) -> Lock.lock_range locks ~addr ~len)
      options.keep_ranges
  in
  (* Shard geometry is a function of the text alone — never of [jobs] —
     so the rewritten bytes are identical for every domain count: [jobs]
     only decides how many domains execute the fixed shard tasks. A
     single fixed-span shard degenerates to the plain serial rewrite.
     Under content-defined chunking the bounds come from the chunker and
     each chunk's arena owns the stripes mapped to its own text range
     ({!Layout.shard_range}) — stable under chunk splits elsewhere, so
     cached plans survive unrelated edits. *)
  let fixed_span = max options.shard_span (4 * Tactics.max_reach) in
  let nshards, shard_lo, shard_top, shard_of, arena_of =
    match chunked with
    | None ->
        let n = max 1 ((text.Frontend.size + fixed_span - 1) / fixed_span) in
        ( n,
          (fun k -> base + (k * fixed_span)),
          (fun k ->
            if k = n - 1 then base + text.Frontend.size
            else base + ((k + 1) * fixed_span)),
          (fun addr -> min (n - 1) ((addr - base) / fixed_span)),
          fun k -> Layout.shard layout ~index:k ~count:n )
    | Some g ->
        let n = Array.length g.g_bounds in
        let idx_of off =
          let rec go lo hi =
            if lo >= hi then lo - 1
            else
              let mid = (lo + hi) / 2 in
              if fst g.g_bounds.(mid) <= off then go (mid + 1) hi
              else go lo mid
          in
          go 0 n
        in
        ( n,
          (fun k -> base + fst g.g_bounds.(k)),
          (fun k -> base + fst g.g_bounds.(k) + snd g.g_bounds.(k)),
          (fun addr -> idx_of (addr - base)),
          fun k ->
            let lo, sz = g.g_bounds.(k) in
            Layout.shard_range layout ~lo ~hi:(lo + sz)
              ~total:text.Frontend.size )
  in
  let plan_hits = ref 0 and plan_misses = ref 0 and plan_conflicts = ref 0 in
  let tramps, traps, locked_bytes, steals, setup_s, deferred_count =
    if chunked = None && nshards <= 1 then begin
      let t0 = Unix.gettimeofday () in
      let ctx =
        Tactics.create_ctx ~obs ~fault ~text:text_buf ~text_base:base ~layout
          ~sites ~options:options.tactics ()
      in
      apply_keeps (Tactics.locks ctx);
      let setup_s = Unix.gettimeofday () -. t0 in
      E9_obs.Obs.span obs "tactic_search" (fun () ->
          List.iter
            (fun site ->
              match Tactics.patch ctx site (template site) with
              | Some tactic ->
                  Stats.record stats tactic;
                  patched := (site.Frontend.addr, tactic) :: !patched
              | None -> Stats.record_failure stats)
            selected);
      ( Tactics.trampolines ctx,
        Tactics.trap_entries ctx,
        Lock.locked_count (Tactics.locks ctx),
        0,
        setup_s,
        0 )
    end
    else begin
      (* Domain-parallel rewrite (DESIGN.md §10). Shards are text regions
         whose span exceeds [4 * Tactics.max_reach]; a site whose tactic
         reach cannot cross its shard's top edge is {e interior} and may
         be patched concurrently: every byte, lock and dead mark it can
         touch lies inside its own shard, and its trampoline comes from a
         stripe-partitioned private arena, so shards never race. Sites
         within [max_reach] of the edge are deferred to a serial fixup
         pass over the merged state. *)
      let buckets = Array.make nshards [] in
      Array.iter
        (fun (s : Frontend.site) ->
          let k = shard_of s.addr in
          buckets.(k) <- s :: buckets.(k))
        sites;
      let shard_sites =
        Array.map (fun l -> Array.of_list (List.rev l)) buckets
      in
      let interior = Array.make nshards [] in
      let boundary = ref [] in
      List.iter
        (fun (s : Frontend.site) ->
          let k = shard_of s.addr in
          if k = nshards - 1 || s.addr + Tactics.max_reach <= shard_top k then
            interior.(k) <- s :: interior.(k)
          else boundary := s :: !boundary)
        (List.rev selected);
      (* [interior.(k)] and [boundary] are in descending address order. *)
      (* Plan validation, against the live decode and the live selection:
         a stored plan replays only if its recorded site list matches the
         chunk's (guaranteed when the decode itself replayed) and its
         per-site plans cover exactly the live interior selected sites.
         Anything else — an edited chunk, a shifted seam, a changed spec
         the caller's key missed — falls back to live search. *)
      let validated =
        match (chunked, plan_cfg) with
        | Some g, Some _ ->
            Array.init nshards (fun k ->
                match g.g_found.(k) with
                | Some p
                  when (g.g_decode_replayed.(k)
                       || List.equal site_eq p.Plan.c_sites g.g_sites.(k))
                       && List.compare_lengths p.Plan.c_plans interior.(k) = 0
                       && List.for_all2
                            (fun (sp : Plan.site_plan) (s : Frontend.site) ->
                              sp.Plan.s_addr = s.Frontend.addr)
                            p.Plan.c_plans interior.(k) ->
                    Some p
                | _ -> None)
        | _ -> Array.make nshards None
      in
      let capture = plan_cfg <> None in
      E9_obs.Obs.span obs "tactic_search" (fun () ->
          (* Work-stealing execution (DESIGN.md §12): the chunk list and
             every chunk's work are functions of the text alone; [domains]
             only sets how many workers drain them. Capped at the
             machine's core count — oversubscribed domains cost minor-GC
             barriers without buying parallelism. An idle worker steals
             whole chunks, and chunk [k]'s stripe ownership travels with
             [k], not with the worker, so a stolen chunk allocates from
             exactly the stripes it would have owned unstolen. *)
          let domains = min jobs (Domain.recommended_domain_count ()) in
          let live_search k ~sfault ~conflict ~t0 =
            let lo = shard_lo k and top = shard_top k in
            let arena = arena_of k in
            let locks = Lock.create ~base:lo ~len:(top - lo) in
            apply_keeps locks;
            let dead = Lock.create ~base:lo ~len:(top - lo) in
            let sobs = E9_obs.Obs.fork obs in
            let ctx =
              Tactics.create_ctx ~obs:sobs ~fault:sfault ~locks ~dead
                ~text:text_buf ~text_base:base ~layout:arena
                ~sites:shard_sites.(k) ~options:options.tactics ()
            in
            let ssetup = Unix.gettimeofday () -. t0 in
            let sstats = Stats.create () in
            let spatched = ref [] in
            let sdeferred = ref [] in
            let splans = ref [] in
            List.iter
              (fun site ->
                let tr0 = Tactics.trampolines_rev ctx in
                let tp0 = Tactics.traps_rev ctx in
                let res = Tactics.patch_deferrable ctx site (template site) in
                (match res with
                | `Patched tactic ->
                    Stats.record sstats tactic;
                    spatched := (site.Frontend.addr, tactic) :: !spatched
                | `Deferred -> sdeferred := site :: !sdeferred
                | `Failed -> Stats.record_failure sstats);
                if capture then begin
                  let st =
                    fresh_prefix (Tactics.trampolines_rev ctx) tr0 []
                  in
                  let sp =
                    { Plan.s_addr = site.Frontend.addr;
                      s_outcome =
                        (match res with
                        | `Patched t -> Plan.Applied t
                        | `Deferred -> Plan.Deferred
                        | `Failed -> Plan.Failed);
                      s_tramps = st;
                      s_traps = fresh_prefix (Tactics.traps_rev ctx) tp0 [];
                      s_class =
                        placement_class ~site_addr:site.Frontend.addr st }
                  in
                  splans := sp :: !splans
                end)
              interior.(k);
            { o_arena = arena;
              o_locks = locks;
              o_dead = dead;
              o_obs = sobs;
              o_fault = sfault;
              o_stats = sstats;
              o_patched = !spatched;
              o_tramps = Tactics.trampolines ctx;
              o_traps = Tactics.trap_entries ctx;
              o_deferred = List.rev !sdeferred;
              o_splans = List.rev !splans;
              o_replayed = false;
              o_conflict = conflict;
              o_setup = ssetup }
          in
          (* Replay a validated plan into a fresh arena: recorded
             placements land via [alloc_at] (full base-occupancy and
             stripe-ownership checks), recorded text edits, locks, dead
             marks and verdicts are applied verbatim. Any placement
             refusal abandons the private arena and falls back to live
             search — the conflict path (DESIGN.md §14). *)
          let replay k (p : Plan.chunk) ~sfault ~t0 =
            let lo = shard_lo k and top = shard_top k in
            let arena = arena_of k in
            let sobs = E9_obs.Obs.fork obs in
            E9_obs.Obs.span sobs "plan_replay" (fun () ->
                let placed =
                  List.for_all
                    (fun (sp : Plan.site_plan) ->
                      List.for_all
                        (fun (a, code) ->
                          Layout.alloc_at arena ~addr:a
                            ~size:(Bytes.length code))
                        sp.Plan.s_tramps)
                    p.Plan.c_plans
                in
                if not placed then None
                else begin
                  let locks = Lock.create ~base:lo ~len:(top - lo) in
                  let dead = Lock.create ~base:lo ~len:(top - lo) in
                  List.iter
                    (fun (a, l) -> Lock.lock_range locks ~addr:a ~len:l)
                    p.Plan.c_locks;
                  List.iter
                    (fun (a, l) -> Lock.lock_range dead ~addr:a ~len:l)
                    p.Plan.c_dead;
                  Plan.apply_diff text_buf ~lo:(lo - base) p.Plan.c_diff;
                  let sstats = Stats.create () in
                  let spatched = ref [] in
                  let sdeferred = ref [] in
                  List.iter2
                    (fun (sp : Plan.site_plan) (site : Frontend.site) ->
                      match sp.Plan.s_outcome with
                      | Plan.Applied tactic ->
                          Stats.record sstats tactic;
                          spatched :=
                            (site.Frontend.addr, tactic) :: !spatched
                      | Plan.Deferred -> sdeferred := site :: !sdeferred
                      | Plan.Failed -> Stats.record_failure sstats)
                    p.Plan.c_plans interior.(k);
                  Some
                    { o_arena = arena;
                      o_locks = locks;
                      o_dead = dead;
                      o_obs = sobs;
                      o_fault = sfault;
                      o_stats = sstats;
                      o_patched = !spatched;
                      o_tramps =
                        List.concat_map
                          (fun (sp : Plan.site_plan) -> sp.Plan.s_tramps)
                          p.Plan.c_plans;
                      o_traps =
                        List.concat_map
                          (fun (sp : Plan.site_plan) -> sp.Plan.s_traps)
                          p.Plan.c_plans;
                      o_deferred = List.rev !sdeferred;
                      o_splans = [];
                      o_replayed = true;
                      o_conflict = false;
                      o_setup = Unix.gettimeofday () -. t0 }
                end)
          in
          let shard_results, steal_report =
            try
              E9_bits.Pool.map_stealing ~domains ?jitter
                (fun k ->
                  (* Forked fault record per shard: occurrence counting is
                     then a function of the shard's own query sequence,
                     never of domain interleaving, preserving output
                     identity across jobs values (DESIGN.md §10). An
                     indexed [Shard] rule simulates a domain dying
                     mid-map; Pool contains it per-slot and this layer
                     types it. *)
                  let sfault = Fault.fork fault in
                  if Fault.fires_at sfault Fault.Shard ~key:k then
                    raise
                      (Fault.Injected
                         (Printf.sprintf "shard %d raised mid-Pool.map" k));
                  let t0 = Unix.gettimeofday () in
                  match validated.(k) with
                  | Some p -> (
                      match replay k p ~sfault ~t0 with
                      | Some out -> out
                      | None -> live_search k ~sfault ~conflict:true ~t0)
                  | None -> live_search k ~sfault ~conflict:false ~t0)
                (List.init nshards (fun i -> nshards - 1 - i))
            with Fault.Injected m -> error "injected fault: %s" m
          in
          (* Canonical merge, shards high-to-low (the fixed task order —
             Pool.map_stealing returns results in input order whatever the
             completion order, so the merge is identical for every
             [jobs]). *)
          let locks_all = Lock.create ~base ~len:text.Frontend.size in
          let dead_all = Lock.create ~base ~len:text.Frontend.size in
          List.iter
            (fun o ->
              Layout.absorb ~dst:layout o.o_arena;
              Lock.merge_into ~dst:locks_all o.o_locks;
              Lock.merge_into ~dst:dead_all o.o_dead;
              E9_obs.Obs.merge_into ~dst:obs o.o_obs;
              Fault.merge_into ~dst:fault o.o_fault;
              Stats.merge_into ~dst:stats o.o_stats;
              patched := List.rev_append o.o_patched !patched;
              if o.o_replayed then incr plan_hits
              else if o.o_conflict then incr plan_conflicts
              else if capture then incr plan_misses)
            shard_results;
          (* Capture: store a fresh plan for every chunk that ran a live
             search. Must happen before the fixup pass below — seam
             fixups may write across chunk boundaries, and those bytes
             belong to the live fixup of {e every} run, warm or cold. *)
          (match (chunked, plan_cfg) with
          | Some g, Some cfg ->
              let current = Buf.raw text_buf in
              let outs = Array.of_list shard_results in
              Array.iteri
                (fun k o ->
                  if not o.o_replayed then begin
                    (* Task order is descending: task index i handled
                       chunk nshards-1-i. *)
                    let k = nshards - 1 - k in
                    let clo, csz = g.g_bounds.(k) in
                    cfg.Plan.store.add g.g_keys.(k)
                      { Plan.c_lo = clo;
                        c_len = csz;
                        c_entry = g.g_entries.(k);
                        c_exit = g.g_exits.(k);
                        c_sites = g.g_sites.(k);
                        c_plans = o.o_splans;
                        c_diff =
                          Plan.diff ~pristine ~current ~lo:clo ~len:csz;
                        c_locks = Lock.ranges o.o_locks;
                        c_dead = Lock.ranges o.o_dead }
                  end)
                outs
          | _ -> ());
          (* Serial fixup over the merged state: boundary sites see every
             shard's locks, dead bytes and occupancy, and stripe-starved
             deferred sites retry their windows against the unconstrained
             merged layout, where the O(log n) query sees every stripe —
             exactly the serial algorithm, restricted to the held-back
             sites, in canonical descending address order. *)
          let deferred_all =
            List.concat_map (fun o -> o.o_deferred) shard_results
          in
          let setup_total =
            List.fold_left (fun acc o -> acc +. o.o_setup) 0. shard_results
          in
          let fixup_sites =
            List.merge
              (fun (a : Frontend.site) b -> compare b.addr a.addr)
              deferred_all !boundary
          in
          let fixup_ctx =
            Tactics.create_ctx ~obs ~fault ~locks:locks_all ~dead:dead_all
              ~text:text_buf ~text_base:base ~layout ~sites
              ~options:options.tactics ()
          in
          List.iter
            (fun site ->
              match Tactics.patch fixup_ctx site (template site) with
              | Some tactic ->
                  Stats.record stats tactic;
                  patched := (site.Frontend.addr, tactic) :: !patched
              | None -> Stats.record_failure stats)
            fixup_sites;
          let shard_tramps =
            List.concat_map (fun o -> o.o_tramps) shard_results
          in
          let shard_traps =
            List.concat_map (fun o -> o.o_traps) shard_results
          in
          ( shard_tramps @ Tactics.trampolines fixup_ctx,
            shard_traps @ Tactics.trap_entries fixup_ctx,
            Lock.locked_count locks_all,
            steal_report.E9_bits.Pool.steals,
            setup_total,
            List.length deferred_all ))
    end
  in
  let occ = Layout.occupancy layout in
  if E9_obs.Obs.enabled obs then begin
    E9_obs.Obs.gauge obs ~name:"layout.occupied_intervals"
      ~value:occ.Layout.occupied_intervals;
    E9_obs.Obs.gauge obs ~name:"layout.trampoline_extents"
      ~value:occ.Layout.trampoline_extents;
    E9_obs.Obs.gauge obs ~name:"layout.trampoline_bytes"
      ~value:occ.Layout.trampoline_bytes;
    E9_obs.Obs.gauge obs ~name:"text.locked_bytes" ~value:locked_bytes;
    E9_obs.Obs.gauge obs ~name:"rewrite.shards" ~value:nshards;
    (* Next-fit allocator cursor effectiveness; shard-arena counters were
       folded into [layout] by [Layout.absorb]. *)
    E9_obs.Obs.counter obs ~name:"layout.cursor_hits"
      ~value:(Layout.cursor_hits layout);
    E9_obs.Obs.counter obs ~name:"layout.cursor_misses"
      ~value:(Layout.cursor_misses layout);
    (* Parallel-search honesty counters (DESIGN.md §12): stripe rotations
       and deferrals show how the conflict storm was absorbed; steals show
       whether the scheduler actually balanced anything. *)
    E9_obs.Obs.counter obs ~name:"layout.stripe_rotations"
      ~value:(Layout.stripe_rotations layout);
    E9_obs.Obs.counter obs ~name:"pool.steals" ~value:steals;
    E9_obs.Obs.counter obs ~name:"rewrite.deferred_sites"
      ~value:deferred_count;
    (* Plan-cache effectiveness (DESIGN.md §14): hits replayed, misses
       searched live, conflicts fell back after a placement refusal. *)
    if plan_cfg <> None then begin
      E9_obs.Obs.counter obs ~name:"plan_hit" ~value:!plan_hits;
      E9_obs.Obs.counter obs ~name:"plan_miss" ~value:!plan_misses;
      E9_obs.Obs.counter obs ~name:"plan_conflict" ~value:!plan_conflicts
    end;
    Array.iter
      (fun s ->
        let n = Fault.fired fault s in
        if n > 0 then
          E9_obs.Obs.fault obs ~site:(Fault.site_name s) ~fires:n)
      Fault.sites
  end;
  (* Blit the patched text back — strictly in place. *)
  Buf.blit_in output.Elf_file.data ~pos:text.Frontend.offset (Buf.contents text_buf);
  (* Physical page grouping over the emitted trampolines, then append. *)
  let grouped =
    E9_obs.Obs.span obs "layout" (fun () ->
        Pagegroup.group ~granularity:options.granularity
          ~enabled:options.grouping tramps)
  in
  if Bytes.length grouped.Pagegroup.blob > 0 then begin
    let blob_off =
      Elf_file.add_section output ~name:".e9patch.tramp" ~addr:0 ~sh_type:1
        ~sh_flags:0 ~content:grouped.Pagegroup.blob
    in
    let mappings =
      List.map
        (fun (m : Loadmap.mapping) ->
          { m with Loadmap.file_off = m.Loadmap.file_off + blob_off })
        grouped.Pagegroup.mappings
    in
    match options.loader with
    | Table ->
        (* Host-side loading: the emulator's loader interprets the table. *)
        ignore
          (Elf_file.add_section output ~name:Elf_file.mmap_section_name
             ~addr:0 ~sh_type:1 ~sh_flags:0
             ~content:(Loadmap.encode_mappings mappings))
    | Stub ->
        (* The paper's mechanism: an injected loader replaces the entry
           point and performs the mmaps itself (§5.1). *)
        let stub =
          Loader_stub.emit ~vaddr:Loader_stub.home ~mappings
            ~real_entry:output.Elf_file.entry
        in
        (* Defensive re-check: the pre-flight above already refused
           colliding inputs before any mutation; a hit here would mean
           the rewrite itself grew a segment into the loader home. *)
        (match Elf_file.segment_at output Loader_stub.home with
        | Some _ ->
            error "Rewriter: loader home 0x%x collides with a segment \
                   created during rewriting"
              Loader_stub.home
        | None -> ());
        ignore
          (Elf_file.add_segment output
             { Elf_file.ptype = Elf_file.Load;
               prot = Elf_file.prot_rx;
               vaddr = Loader_stub.home;
               offset = 0;
               filesz = 0;
               memsz = Bytes.length stub.Loader_stub.content;
               align = 4096 }
             ~content:stub.Loader_stub.content);
        output.Elf_file.entry <- stub.Loader_stub.entry
  end;
  (match traps with
  | [] -> ()
  | traps ->
      ignore
        (Elf_file.add_section output ~name:Elf_file.trap_section_name ~addr:0
           ~sh_type:1 ~sh_flags:0 ~content:(Loadmap.encode_traps traps)));
  let output_size =
    E9_obs.Obs.span obs "serialize" (fun () ->
        Elf_file.serialized_size output)
  in
  Logs.info (fun m ->
      m "rewrote %s: %a; %d -> %d bytes; %d trampolines in %d mappings"
        (match Frontend.find_text output with
        | Some t -> Printf.sprintf "text@0x%x" t.Frontend.base
        | None -> "?")
        (fun ppf -> Stats.pp ppf) stats input_size output_size
        (List.length tramps)
        (List.length grouped.Pagegroup.mappings));
  { output;
    stats;
    input_size;
    output_size;
    trampoline_bytes =
      List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 tramps;
    virtual_blocks = grouped.Pagegroup.virtual_blocks;
    physical_blocks = grouped.Pagegroup.physical_blocks;
    mappings = List.length grouped.Pagegroup.mappings;
    patched_sites = List.sort (fun (a, _) (b, _) -> compare b a) !patched;
    shards = nshards;
    steals;
    setup_s;
    occupancy = occ;
    plan_hits = !plan_hits;
    plan_misses = !plan_misses;
    plan_conflicts = !plan_conflicts }

let size_pct r =
  if r.input_size = 0 then 0.0
  else 100.0 *. float_of_int r.output_size /. float_of_int r.input_size

module Buf = E9_bits.Buf

type loader_mode = Table | Stub

type options = {
  tactics : Tactics.options;
  granularity : int;
  grouping : bool;
  reserve_below_base : bool;
  loader : loader_mode;
}

let default_options =
  { tactics = Tactics.default_options;
    granularity = 1;
    grouping = true;
    reserve_below_base = false;
    loader = Table }

type result = {
  output : Elf_file.t;
  stats : Stats.t;
  input_size : int;
  output_size : int;
  trampoline_bytes : int;
  virtual_blocks : int;
  physical_blocks : int;
  mappings : int;
  patched_sites : (int * Stats.tactic) list;
}

let run ?(options = default_options) ?(obs = E9_obs.Obs.null) ?disasm_from
    ?frontend input ~select ~template =
  let input_size = Elf_file.serialized_size input in
  let output = Elf_file.copy input in
  let disassemble =
    match frontend with
    | Some f -> f
    | None -> Frontend.disassemble ?from:disasm_from
  in
  let text, sites_list =
    E9_obs.Obs.span obs "decode" (fun () -> disassemble output)
  in
  let sites = Array.of_list sites_list in
  let layout =
    Layout.create ~reserve_below_base:options.reserve_below_base
      ~block_size:(options.granularity * 4096) output
  in
  let text_buf =
    Buf.of_bytes (Buf.sub output.Elf_file.data ~pos:text.Frontend.offset ~len:text.Frontend.size)
  in
  let ctx =
    Tactics.create_ctx ~obs ~text:text_buf ~text_base:text.Frontend.base
      ~layout ~sites ~options:options.tactics ()
  in
  let stats = Stats.create () in
  let patched = ref [] in
  (* Strategy S1: patch from highest to lowest address so that puns only
     ever depend on bytes that are already final. *)
  let patch_sites =
    Array.to_list sites |> List.filter select
    |> List.sort (fun (a : Frontend.site) b -> compare b.addr a.addr)
  in
  E9_obs.Obs.span obs "tactic_search" (fun () ->
      List.iter
        (fun site ->
          match Tactics.patch ctx site (template site) with
          | Some tactic ->
              Stats.record stats tactic;
              patched := (site.Frontend.addr, tactic) :: !patched
          | None -> Stats.record_failure stats)
        patch_sites);
  if E9_obs.Obs.enabled obs then begin
    let occ = Layout.occupancy layout in
    E9_obs.Obs.gauge obs ~name:"layout.occupied_intervals"
      ~value:occ.Layout.occupied_intervals;
    E9_obs.Obs.gauge obs ~name:"layout.trampoline_extents"
      ~value:occ.Layout.trampoline_extents;
    E9_obs.Obs.gauge obs ~name:"layout.trampoline_bytes"
      ~value:occ.Layout.trampoline_bytes;
    E9_obs.Obs.gauge obs ~name:"text.locked_bytes"
      ~value:(Lock.locked_count (Tactics.locks ctx))
  end;
  (* Blit the patched text back — strictly in place. *)
  Buf.blit_in output.Elf_file.data ~pos:text.Frontend.offset (Buf.contents text_buf);
  (* Physical page grouping over the emitted trampolines, then append. *)
  let tramps = Tactics.trampolines ctx in
  let grouped =
    E9_obs.Obs.span obs "layout" (fun () ->
        Pagegroup.group ~granularity:options.granularity
          ~enabled:options.grouping tramps)
  in
  if Bytes.length grouped.Pagegroup.blob > 0 then begin
    let blob_off =
      Elf_file.add_section output ~name:".e9patch.tramp" ~addr:0 ~sh_type:1
        ~sh_flags:0 ~content:grouped.Pagegroup.blob
    in
    let mappings =
      List.map
        (fun (m : Loadmap.mapping) ->
          { m with Loadmap.file_off = m.Loadmap.file_off + blob_off })
        grouped.Pagegroup.mappings
    in
    match options.loader with
    | Table ->
        (* Host-side loading: the emulator's loader interprets the table. *)
        ignore
          (Elf_file.add_section output ~name:Elf_file.mmap_section_name
             ~addr:0 ~sh_type:1 ~sh_flags:0
             ~content:(Loadmap.encode_mappings mappings))
    | Stub ->
        (* The paper's mechanism: an injected loader replaces the entry
           point and performs the mmaps itself (§5.1). *)
        let stub =
          Loader_stub.emit ~vaddr:Loader_stub.home ~mappings
            ~real_entry:output.Elf_file.entry
        in
        (match Elf_file.segment_at output Loader_stub.home with
        | Some _ -> failwith "Rewriter: loader home collides with a segment"
        | None -> ());
        ignore
          (Elf_file.add_segment output
             { Elf_file.ptype = Elf_file.Load;
               prot = Elf_file.prot_rx;
               vaddr = Loader_stub.home;
               offset = 0;
               filesz = 0;
               memsz = Bytes.length stub.Loader_stub.content;
               align = 4096 }
             ~content:stub.Loader_stub.content);
        output.Elf_file.entry <- stub.Loader_stub.entry
  end;
  (match Tactics.trap_entries ctx with
  | [] -> ()
  | traps ->
      ignore
        (Elf_file.add_section output ~name:Elf_file.trap_section_name ~addr:0
           ~sh_type:1 ~sh_flags:0 ~content:(Loadmap.encode_traps traps)));
  let output_size =
    E9_obs.Obs.span obs "serialize" (fun () ->
        Elf_file.serialized_size output)
  in
  Logs.info (fun m ->
      m "rewrote %s: %a; %d -> %d bytes; %d trampolines in %d mappings"
        (match Frontend.find_text output with
        | Some t -> Printf.sprintf "text@0x%x" t.Frontend.base
        | None -> "?")
        (fun ppf -> Stats.pp ppf) stats input_size output_size
        (List.length tramps)
        (List.length grouped.Pagegroup.mappings));
  { output;
    stats;
    input_size;
    output_size;
    trampoline_bytes =
      List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 tramps;
    virtual_blocks = grouped.Pagegroup.virtual_blocks;
    physical_blocks = grouped.Pagegroup.physical_blocks;
    mappings = List.length grouped.Pagegroup.mappings;
    patched_sites = List.rev !patched }

let size_pct r =
  if r.input_size = 0 then 0.0
  else 100.0 *. float_of_int r.output_size /. float_of_int r.input_size

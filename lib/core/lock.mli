(** Byte lock state for strategy S1 (paper §3.4).

    A byte of the text section becomes locked when a tactic either
    overwrites it ({e Modified}) or relies on its value as part of a punned
    displacement ({e Punned}). Locked bytes may never be modified by a
    later tactic; punning a locked byte again is fine (its value is final).
    Patching proceeds from highest to lowest address so locks only ever
    constrain bytes at or after the current patch location. *)

type t

(** [create ~base ~len] — all bytes of [base, base+len) start unlocked. *)
val create : base:int -> len:int -> t

(** [lock t addr] marks one byte locked (idempotent). Out-of-range
    addresses are ignored: puns may read beyond the text section. *)
val lock : t -> int -> unit

val lock_range : t -> addr:int -> len:int -> unit

(** [locked t addr] — bytes outside the tracked range report unlocked. *)
val locked : t -> int -> bool

(** [all_unlocked t ~addr ~len] — true when no byte of the range is
    locked. *)
val all_unlocked : t -> addr:int -> len:int -> bool

(** [locked_count t] — number of locked bytes (for statistics). *)
val locked_count : t -> int

(** [ranges t] — maximal runs of locked bytes as [(addr, len)] pairs in
    ascending address order. Used by the plan cache to serialize a
    shard's lock state compactly (DESIGN.md §14). *)
val ranges : t -> (int * int) list

(** [merge_into ~dst src] locks in [dst] every byte locked in [src]
    (ranges need not coincide; [src] bytes outside [dst]'s range are
    dropped, matching {!lock}). Used to rebuild the whole-text lock state
    from per-shard locks before the boundary fixup pass. *)
val merge_into : dst:t -> t -> unit

(** Patching statistics in the shape of the paper's Table 1. *)

type tactic = B0 | B1 | B2 | T1 | T2 | T3

type t = {
  mutable b0 : int;
  mutable b1 : int;
  mutable b2 : int;
  mutable t1 : int;
  mutable t2 : int;
  mutable t3 : int;
  mutable failed : int;
}

val create : unit -> t
val record : t -> tactic -> unit
val record_failure : t -> unit

(** [merge_into ~dst src] adds [src]'s counts into [dst] (used to fold
    per-shard statistics from a domain-parallel rewrite). *)
val merge_into : dst:t -> t -> unit

(** [total t] is the number of patch locations attempted. *)
val total : t -> int

(** [succeeded t] is the number patched by any tactic. *)
val succeeded : t -> int

(** Table 1 columns, as percentages of [total]. [base_pct] is B1+B2
    (the paper's Base%); [succ_pct] is the paper's Succ%. *)
val base_pct : t -> float

val t1_pct : t -> float
val t2_pct : t -> float
val t3_pct : t -> float
val succ_pct : t -> float

val tactic_name : tactic -> string
val pp : Format.formatter -> t -> unit

(** Throughput of the evaluation harness itself: how fast the bench
    pipeline rewrote and emulated, not a property of the rewritten
    binaries. Fed by the bench driver, persisted to BENCH_throughput.json
    so successive PRs have a perf trajectory to regress against. *)
type throughput = {
  wall_s : float;  (** whole bench run, wall clock *)
  emu_insns : int;  (** guest instructions emulated, all runs *)
  emu_wall_s : float;  (** wall clock spent inside [Cpu.run] *)
  block_hits : int;  (** superblock-cache hits, all runs *)
  block_misses : int;
  block_invalidations : int;  (** generation-mismatch cache flushes *)
  domains : int;  (** domains the bench pipeline fanned out across *)
}

(** [insns_per_sec t] is emulated guest instructions per emulation
    wall-clock second (0 when nothing ran). *)
val insns_per_sec : throughput -> float

(** [block_hit_rate t] is hits / (hits + misses), in [0, 1]. *)
val block_hit_rate : throughput -> float

val pp_throughput : Format.formatter -> throughput -> unit

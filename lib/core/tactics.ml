module Buf = E9_bits.Buf
module Insn = E9_x86.Insn
module Obs = E9_obs.Obs
module Fault = E9_fault.Fault

type options = {
  enable_base : bool;
  enable_t1 : bool;
  enable_t2 : bool;
  enable_t3 : bool;
  b0_fallback : bool;
  t2_joint : bool;
  t2_cap : int;
  t3_cap : int;
}

let default_options =
  { enable_base = true;
    enable_t1 = true;
    enable_t2 = true;
    enable_t3 = true;
    b0_fallback = false;
    t2_joint = false;
    t2_cap = 64;
    t3_cap = 8192 }

type ctx = {
  text : Buf.t;
  text_base : int;
  layout : Layout.t;
  sites : Frontend.site array;
  index_of : (int, int) Hashtbl.t;
  locks : Lock.t;
  dead : Lock.t;
      (* Bytes that can never execute again: the tail of an instruction
         whose head was overwritten by a jump. Unreachable (instruction
         starts are the only jump targets), unlocked, and available for a
         later T3 J_patch to squat in — the paper's "victim is itself a
         patch location" case. *)
  mutable trampolines : (int * bytes) list;
  mutable traps : Loadmap.trap list;
  opts : options;
  obs : Obs.t;
  fault : Fault.t;
  (* Set when an injected refusal contributed to the current tactic's
     failure, so the Obs reject reason reads [Injected] rather than a
     spurious [Alloc_conflict]; consumed (and cleared) at reject time. *)
  mutable injected : bool;
  (* Per-site accumulation of why Layout queries failed (reset at the top
     of [patch]): feeds the typed reject reasons and the chunk pass's
     decision to defer a stripe-starved site to the post-join fixup
     instead of recording a failure. *)
  mutable stripe_starved : bool;
  mutable dead_denied : bool;
  mutable dyn_denied : bool;
}

(* E9_obs sits below this library, so it carries its own copy of the
   tactic enum; keep the two in sync here. *)
let obs_tactic = function
  | Stats.B0 -> Obs.B0
  | Stats.B1 -> Obs.B1
  | Stats.B2 -> Obs.B2
  | Stats.T1 -> Obs.T1
  | Stats.T2 -> Obs.T2
  | Stats.T3 -> Obs.T3

(* Upper bound on how far past a patch site any tactic reads or writes
   text bytes, locks, or dead marks. The worst case is T3: a victim may
   start up to [2 + 127] bytes forward (the short jump's positive reach),
   the punned J_patch may start at the victim's last byte ([+14] for a
   15-byte victim), and the pun reads four displacement bytes past its
   opcode ([+5]) — 148 bytes. Everything else (B1/B2/T1 puns, T2's
   successor, dead-byte squats) stays well inside that. Rounded up for
   slack; the domain-parallel rewriter relies on this bound to prove
   shard independence (DESIGN.md §10). No tactic ever touches anything
   before its site's first byte. *)
let max_reach = 160

let create_ctx ?(obs = Obs.null) ?(fault = Fault.none) ?locks ?dead ~text
    ~text_base ~layout ~sites ~options () =
  let index_of = Hashtbl.create (Array.length sites) in
  Array.iteri (fun i (s : Frontend.site) -> Hashtbl.replace index_of s.addr i) sites;
  { text;
    text_base;
    layout;
    sites;
    index_of;
    locks =
      (match locks with
      | Some l -> l
      | None -> Lock.create ~base:text_base ~len:(Buf.length text));
    dead =
      (match dead with
      | Some d -> d
      | None -> Lock.create ~base:text_base ~len:(Buf.length text));
    trampolines = [];
    traps = [];
    opts = options;
    obs;
    fault;
    injected = false;
    stripe_starved = false;
    dead_denied = false;
    dyn_denied = false }

let trampolines ctx = List.rev ctx.trampolines
let trap_entries ctx = List.rev ctx.traps
let trampolines_rev ctx = ctx.trampolines
let traps_rev ctx = ctx.traps
let locks ctx = ctx.locks

(* ------------------------------------------------------------------ *)
(* Fault-guarded allocator queries                                      *)
(* ------------------------------------------------------------------ *)

(* Every jump-tactic Layout query funnels through these, so an [Alloc]
   rule can deterministically refuse "the Nth allocation" whatever
   tactic issues it. B0's own allocation is deliberately NOT guarded by
   the [Alloc] site (it has its own [B0_alloc] site in [try_b0]): the
   paper's always-succeeds fallback must keep succeeding when the jump
   tactics are starved, or injected exhaustion could never be degraded
   to a verified rewrite. [Layout.release] is never guarded — refusing
   to give memory back models no real failure and would corrupt the
   arena's books. *)

let inj ctx = ctx.injected <- true

let take_injected ctx =
  let v = ctx.injected in
  ctx.injected <- false;
  v

(* Record why the Layout query that just failed failed (valid only
   immediately after a failing call; see Layout.last_denial). *)
let note_denial ctx =
  match Layout.last_denial ctx.layout with
  | Layout.Dead_window -> ctx.dead_denied <- true
  | Layout.Foreign_stripe -> ctx.stripe_starved <- true
  | Layout.Conflict -> ctx.dyn_denied <- true
  | Layout.No_denial -> ()

(* The typed reject reason for a query that just returned [None]:
   injected refusal first (the Layout state is stale in that case), then
   the allocator's own classification, with [default] naming the
   tactic's historical reason for a genuine dynamic conflict. *)
let denial_reason ctx ~default =
  if take_injected ctx then Obs.Injected
  else
    match Layout.last_denial ctx.layout with
    | Layout.Dead_window -> Obs.Dead_window
    | Layout.Foreign_stripe -> Obs.Stripe_blocked
    | Layout.Conflict | Layout.No_denial -> default

let alloc_g ctx ~size ~lo ~hi =
  if Fault.fires ctx.fault Fault.Alloc then begin inj ctx; None end
  else
    match Layout.alloc ctx.layout ~size ~lo ~hi with
    | None ->
        note_denial ctx;
        None
    | r -> r

let probe_g ctx ~size ~lo ~hi =
  if Fault.fires ctx.fault Fault.Alloc then begin inj ctx; None end
  else
    match Layout.probe ctx.layout ~size ~lo ~hi with
    | None ->
        note_denial ctx;
        None
    | r -> r

let probe_strided_g ctx ~size ~lo ~hi ~stride =
  if Fault.fires ctx.fault Fault.Alloc then begin inj ctx; None end
  else
    match Layout.probe_strided ctx.layout ~size ~lo ~hi ~stride with
    | None ->
        note_denial ctx;
        None
    | r -> r

let alloc_at_g ctx ~addr ~size =
  if Fault.fires ctx.fault Fault.Alloc then begin inj ctx; false end
  else if Layout.alloc_at ctx.layout ~addr ~size then true
  else begin
    note_denial ctx;
    false
  end

(* ------------------------------------------------------------------ *)
(* Text access                                                         *)
(* ------------------------------------------------------------------ *)

let in_text ctx addr =
  addr >= ctx.text_base && addr < ctx.text_base + Buf.length ctx.text

let byte ctx addr = Buf.get_u8 ctx.text (addr - ctx.text_base)
let set_byte ctx addr v = Buf.set_u8 ctx.text (addr - ctx.text_base) v
let site_index ctx addr = Hashtbl.find_opt ctx.index_of addr

(* An instruction the trampoline generator can displace. *)
let displaceable = function
  | Insn.Int3 | Insn.Ud2 | Insn.Unknown _ -> false
  | Insn.Mov _ | Insn.Movabs _ | Insn.Lea _ | Insn.Alu _ | Insn.Imul _
  | Insn.Movzx _ | Insn.Movsx _ | Insn.Setcc _ | Insn.Cmov _ | Insn.Neg _
  | Insn.Not _ | Insn.Inc _ | Insn.Dec _ | Insn.Shift _ | Insn.Push _
  | Insn.Pop _ | Insn.Pushfq | Insn.Popfq | Insn.Call _ | Insn.Call_ind _
  | Insn.Ret | Insn.Jmp _ | Insn.Jmp_short _ | Insn.Jmp_ind _ | Insn.Jcc _
  | Insn.Jcc_short _ | Insn.Nop _ | Insn.Endbr64 | Insn.Int _
  | Insn.Syscall ->
      true

(* Padding prefixes for T1, in the order they are prepended (all are
   semantically inert on a near jump — REX and segment overrides). *)
let pad_prefixes = [| 0x48; 0x26; 0x2e; 0x36; 0x3e; 0x64; 0x65 |]

(* ------------------------------------------------------------------ *)
(* The punned-jump primitive shared by all jump tactics                *)
(* ------------------------------------------------------------------ *)

(* Free displacement bytes of a 5-byte jump with [pad] prefixes placed over
   an instruction of [len] bytes. *)
let free_bytes_of ~len ~pad = min (max (len - pad - 1) 0) 4

(* Trampolines must be able to jump *back*: their return displacement is a
   rel32 too, and a trampoline at the very edge of the ±2 GiB window would
   overshoot. Clamp every window by a page of slack. *)
let reach_margin = 0x1000

let clamp_window ~jmp_end (lo, hi) =
  ( max lo (jmp_end - 0x8000_0000 + reach_margin),
    min hi (jmp_end + 0x7fff_ffff - reach_margin) )

(* The pun geometry at [addr]/[len]/[pad]: checks locks and text bounds,
   reads the fixed displacement bytes, and returns the target window.
   The [Error] carries why the jump cannot be placed at all. *)
let pun_window ctx ~addr ~len ~pad =
  let jmp_off = addr + pad in
  let jmp_end = jmp_off + 5 in
  let free = free_bytes_of ~len ~pad in
  let mod_hi = max (addr + len) (jmp_off + 1 + free) in
  if not (Lock.all_unlocked ctx.locks ~addr ~len:(mod_hi - addr)) then
    Error Obs.Locked
  else if free < 4 && not (in_text ctx (jmp_off + 4)) then Error Obs.Pun_miss
  else begin
    let fixed =
      List.init (4 - free) (fun i -> byte ctx (jmp_off + 1 + free + i))
    in
    let fixed_high = Pun.fixed_high_of_bytes fixed in
    let lo, hi =
      clamp_window ~jmp_end
        (Pun.target_window ~jmp_end ~free_bytes:free ~fixed_high)
    in
    if lo > hi then Error Obs.Range else Ok (jmp_end, free, lo, hi)
  end

(* Write the (validated, allocated) jump. Punned bytes are asserted, not
   written: a mismatch would mean the caller's window arithmetic is wrong. *)
let write_jump ctx ~addr ~len ~pad ~target =
  let jmp_off = addr + pad in
  let jmp_end = jmp_off + 5 in
  let free = free_bytes_of ~len ~pad in
  for i = 0 to pad - 1 do
    set_byte ctx (addr + i) pad_prefixes.(i mod Array.length pad_prefixes)
  done;
  set_byte ctx jmp_off 0xe9;
  let rel = Pun.rel32_for ~jmp_end ~target in
  let rel_bytes = Pun.rel32_bytes rel in
  for q = 0 to 3 do
    let a = jmp_off + 1 + q in
    if q < free then set_byte ctx a rel_bytes.(q)
    else assert (byte ctx a = rel_bytes.(q))
  done;
  (* The displaced instruction's tail, if any, is unreachable: instruction
     starts are the only possible jump targets. It stays unmodified and
     unlocked but is marked dead — a later T3 may squat a jump there. *)
  Lock.lock_range ctx.locks ~addr ~len:(pad + 5);
  if addr + len > jmp_end then
    Lock.lock_range ctx.dead ~addr:jmp_end ~len:(addr + len - jmp_end)

let add_trampoline ctx addr code = ctx.trampolines <- (addr, code) :: ctx.trampolines

(* One pun attempt at a given padding level; emits the patch trampoline. *)
let try_pun ctx (site : Frontend.site) template ~pad =
  if pad > max 0 (site.len - 1) then Error Obs.Too_short
  else
    match pun_window ctx ~addr:site.addr ~len:site.len ~pad with
    | Error _ as e -> e
    | Ok (_, _, lo, hi) -> (
        let tsize =
          Trampoline.size template ~insn:site.insn ~insn_addr:site.addr
            ~insn_len:site.len
        in
        match alloc_g ctx ~size:tsize ~lo ~hi with
        | None -> Error (denial_reason ctx ~default:Obs.Alloc_conflict)
        | Some t ->
            write_jump ctx ~addr:site.addr ~len:site.len ~pad ~target:t;
            add_trampoline ctx t
              (Trampoline.emit template ~at:t ~insn:site.insn
                 ~insn_addr:site.addr ~insn_len:site.len);
            Ok t)

(* ------------------------------------------------------------------ *)
(* B1 / B2: direct and punned jumps                                    *)
(* ------------------------------------------------------------------ *)

let try_b1_b2 ctx (site : Frontend.site) template =
  let tactic = if site.len >= 5 then Stats.B1 else Stats.B2 in
  match try_pun ctx site template ~pad:0 with
  | Ok t ->
      Obs.accept ctx.obs ~addr:site.addr ~tactic:(obs_tactic tactic)
        ~trampoline:t ~pad:0 ~evictee_distance:0;
      Some (tactic, t)
  | Error reason ->
      Obs.reject ctx.obs ~addr:site.addr ~tactic:(obs_tactic tactic) ~reason;
      None

(* ------------------------------------------------------------------ *)
(* T1: padded jumps                                                    *)
(* ------------------------------------------------------------------ *)

let try_t1 ctx (site : Frontend.site) template =
  (* One Attempt record for the whole pad sweep: the last reject reason is
     the one that killed the final (largest-window) padding level. *)
  let rec go pad last =
    if pad > site.len - 1 then Error last
    else
      match try_pun ctx site template ~pad with
      | Ok t -> Ok (t, pad)
      | Error reason -> go (pad + 1) reason
  in
  match go 1 Obs.Too_short with
  | Ok (t, pad) ->
      Obs.accept ctx.obs ~addr:site.addr ~tactic:Obs.T1 ~trampoline:t ~pad
        ~evictee_distance:0;
      Some (Stats.T1, t)
  | Error reason ->
      Obs.reject ctx.obs ~addr:site.addr ~tactic:Obs.T1 ~reason;
      None

(* ------------------------------------------------------------------ *)
(* T2: successor eviction (joint pun search)                           *)
(* ------------------------------------------------------------------ *)

(* Enumeration order for pinned-byte candidates: a full-period affine walk
   so that a capped search still spreads over the whole value space. *)
let candidate_seq ~combos ~tries i =
  if combos <= tries then i else i * 2654435761 land (combos - 1)

let try_t2 ctx (site : Frontend.site) template =
  let k = site.len in
  let s_addr = site.addr + k in
  let rejected reason =
    Obs.reject ctx.obs ~addr:site.addr ~tactic:Obs.T2 ~reason;
    None
  in
  match site_index ctx s_addr with
  | None -> rejected Obs.No_successor
  | Some si ->
      let s = ctx.sites.(si) in
      if not (displaceable s.insn) then rejected Obs.No_successor
      else if not (Lock.all_unlocked ctx.locks ~addr:site.addr ~len:k) then
        rejected Obs.Locked
      else begin
        (* The successor's own (pad-0) pun geometry. *)
        match pun_window ctx ~addr:s_addr ~len:s.len ~pad:0 with
        | Error reason -> rejected reason
        | Ok (_, s_free, s_lo, s_hi) ->
            let s_fixed =
              List.init (4 - s_free) (fun i -> byte ctx (s_addr + 1 + s_free + i))
            in
            let ev_size =
              Trampoline.size Trampoline.Empty ~insn:s.insn ~insn_addr:s_addr
                ~insn_len:s.len
            in
            let tsize =
              Trampoline.size template ~insn:site.insn ~insn_addr:site.addr
                ~insn_len:k
            in
            let result = ref None in
            let budget = ref ctx.opts.t2_cap in
            let pad = ref 0 in
            while !result = None && !pad <= k - 1 && !budget > 0 do
              let p = !pad in
              let p_jmp_end = site.addr + p + 5 in
              let p_free = k - p - 1 in
              (* Only useful when the patch pun actually overlaps S. *)
              if p_free < 4 then begin
                (* S displacement bytes read by the patch pun. *)
                let n_over = max 0 (p + 4 - k) in
                (* Try to commit with S evicted to [t_s]; the patch pun's
                   fixed bytes are then [e9] plus S's displacement bytes. *)
                let commit_with t_s =
                  let rel_s = (t_s - (s_addr + 5)) land 0xffff_ffff in
                  let over_bytes =
                    List.init n_over (fun q ->
                        if q < s_free then (rel_s lsr (8 * q)) land 0xff
                        else List.nth s_fixed (q - s_free))
                  in
                  let p_fixed_high =
                    Pun.fixed_high_of_bytes (0xe9 :: over_bytes)
                  in
                  let p_lo, p_hi =
                    clamp_window ~jmp_end:p_jmp_end
                      (Pun.target_window ~jmp_end:p_jmp_end ~free_bytes:p_free
                         ~fixed_high:p_fixed_high)
                  in
                  if alloc_at_g ctx ~addr:t_s ~size:ev_size then begin
                    match alloc_g ctx ~size:tsize ~lo:p_lo ~hi:p_hi with
                    | None ->
                        Layout.release ctx.layout ~addr:t_s ~size:ev_size;
                        false
                    | Some t_p ->
                        (* Evict S first so the patch pun's fixed bytes read
                           S's final representation. *)
                        write_jump ctx ~addr:s_addr ~len:s.len ~pad:0
                          ~target:t_s;
                        add_trampoline ctx t_s
                          (Trampoline.emit_evictee ~at:t_s ~insn:s.insn
                             ~insn_addr:s_addr ~insn_len:s.len);
                        write_jump ctx ~addr:site.addr ~len:k ~pad:p
                          ~target:t_p;
                        add_trampoline ctx t_p
                          (Trampoline.emit template ~at:t_p ~insn:site.insn
                             ~insn_addr:site.addr ~insn_len:k);
                        result := Some (t_p, p);
                        true
                  end
                  else false
                in
                if not ctx.opts.t2_joint then begin
                  (* The paper's two-step T2: evict S to the first-fit
                     evictee home, then "reapply B2/T1" with whatever bytes
                     resulted. No joint optimization. *)
                  budget := !budget - 1;
                  match probe_g ctx ~size:ev_size ~lo:s_lo ~hi:s_hi with
                  | None -> ()
                  | Some t_s -> ignore (commit_with t_s)
                end
                else begin
                  (* Extension: jointly choose S's displacement so the
                     patch pun's window becomes allocatable. *)
                  let n_pin = min n_over s_free in
                  let combos = 1 lsl (8 * n_pin) in
                  let tries = min combos !budget in
                  let i = ref 0 in
                  while !result = None && !i < tries do
                    budget := !budget - 1;
                    let v = candidate_seq ~combos ~tries !i in
                    let over_bytes =
                      List.init n_over (fun q ->
                          if q < n_pin then (v lsr (8 * q)) land 0xff
                          else List.nth s_fixed (q - s_free))
                    in
                    let p_fixed_high =
                      Pun.fixed_high_of_bytes (0xe9 :: over_bytes)
                    in
                    let p_lo, p_hi =
                      clamp_window ~jmp_end:p_jmp_end
                        (Pun.target_window ~jmp_end:p_jmp_end
                           ~free_bytes:p_free ~fixed_high:p_fixed_high)
                    in
                    (match probe_g ctx ~size:tsize ~lo:p_lo ~hi:p_hi with
                    | None -> ()
                    | Some _ -> (
                        let stride = 1 lsl (8 * n_pin) in
                        match
                          probe_strided_g ctx ~size:ev_size
                            ~lo:(s_lo + v) ~hi:s_hi ~stride
                        with
                        | None -> ()
                        | Some t_s -> ignore (commit_with t_s)));
                    incr i
                  done
                end
              end;
              incr pad
            done;
            (match !result with
            | Some (t_p, p) ->
                Obs.accept ctx.obs ~addr:site.addr ~tactic:Obs.T2
                  ~trampoline:t_p ~pad:p ~evictee_distance:k;
                Some (Stats.T2, t_p)
            | None ->
                rejected
                  (if !budget <= 0 then Obs.Budget
                   else if take_injected ctx then Obs.Injected
                   else if ctx.dyn_denied then Obs.Alloc_conflict
                   else if ctx.stripe_starved then Obs.Stripe_blocked
                   else if ctx.dead_denied then Obs.Dead_window
                   else Obs.Alloc_conflict))
      end

(* ------------------------------------------------------------------ *)
(* T3: neighbour eviction                                              *)
(* ------------------------------------------------------------------ *)

(* Commit the short jump J_short at the patch site, targeting [jp]. The
   patch instruction's own tail becomes dead (the paper's observation that
   byte 2 of Figure 1 T3 stays unlocked — reusable later). *)
let write_short_jump ctx (site : Frontend.site) ~jp =
  set_byte ctx site.addr 0xeb;
  set_byte ctx (site.addr + 1) (jp - (site.addr + 2));
  Lock.lock_range ctx.locks ~addr:site.addr ~len:2;
  if site.len > 2 then
    Lock.lock_range ctx.dead ~addr:(site.addr + 2) ~len:(site.len - 2)

(* T3, squat variant: an earlier patch left dead bytes within short-jump
   range (the tail of an instruction whose head became a jump). J_patch
   can live there directly — the victim "is itself a patch location", so
   no eviction and no extra trampoline are needed. *)
let try_t3_squat ctx (site : Frontend.site) template tsize =
  let is_dead a = Lock.locked ctx.dead a && not (Lock.locked ctx.locks a) in
  let result = ref None in
  let a = ref (site.addr + 2) in
  while !result = None && !a <= site.addr + 2 + 127 do
    if is_dead !a then begin
      let rec run n = if n < 4 && is_dead (!a + 1 + n) then run (n + 1) else n in
      let free = run 0 in
      match pun_window ctx ~addr:!a ~len:(1 + free) ~pad:0 with
      | Error _ -> ()
      | Ok (_, _, lo, hi) -> (
          match alloc_g ctx ~size:tsize ~lo ~hi with
          | None -> ()
          | Some t_p ->
              write_jump ctx ~addr:!a ~len:(1 + free) ~pad:0 ~target:t_p;
              add_trampoline ctx t_p
                (Trampoline.emit template ~at:t_p ~insn:site.insn
                   ~insn_addr:site.addr ~insn_len:site.len);
              write_short_jump ctx site ~jp:!a;
              result := Some (t_p, !a))
    end;
    incr a
  done;
  !result

let try_t3 ctx (site : Frontend.site) template =
  let rejected reason =
    Obs.reject ctx.obs ~addr:site.addr ~tactic:Obs.T3 ~reason;
    None
  in
  if site.len < 2 then rejected Obs.Too_short
    (* the short jump needs two bytes (L2) *)
  else if not (Lock.all_unlocked ctx.locks ~addr:site.addr ~len:2) then
    rejected Obs.Locked
  else begin
    let tsize =
      Trampoline.size template ~insn:site.insn ~insn_addr:site.addr
        ~insn_len:site.len
    in
    match try_t3_squat ctx site template tsize with
    | Some (t_p, jp) ->
        Obs.accept ctx.obs ~addr:site.addr ~tactic:Obs.T3 ~trampoline:t_p
          ~pad:0 ~evictee_distance:(jp - site.addr);
        Some (Stats.T3, t_p)
    | None ->
    let result = ref None in
    let budget = ref ctx.opts.t3_cap in
    (* Walk candidate victims: following instructions within short-jump
       range. S1 restricts the short jump to positive offsets. *)
    let vi = ref (match site_index ctx site.addr with Some i -> i + 1 | None -> max_int) in
    while
      !result = None && !budget > 0
      && !vi < Array.length ctx.sites
      && ctx.sites.(!vi).addr <= site.addr + 2 + 127
    do
      let v = ctx.sites.(!vi) in
      if displaceable v.insn && v.len >= 2 then begin
        let ev_size =
          Trampoline.size Trampoline.Empty ~insn:v.insn ~insn_addr:v.addr
            ~insn_len:v.len
        in
        (* J_patch may start at any victim byte except the first. Prefer
           positions where both J_patch and J_victim keep at least one free
           displacement byte (j in [2, len-2]); the extremes pin one of the
           two jumps to an exact target and almost never allocate. *)
        let js =
          let good = List.rev (List.init (max 0 (v.len - 3)) (fun i -> i + 2)) in
          let extras = if v.len - 1 >= 2 then [ v.len - 1; 1 ] else [ 1 ] in
          good @ List.filter (fun j -> not (List.mem j good)) extras
        in
        let jq = ref js in
        while !result = None && !jq <> [] && !budget > 0 do
          let j = ref (List.hd !jq) in
          jq := List.tl !jq;
          let jp = v.addr + !j in
          let rel8 = jp - (site.addr + 2) in
          if rel8 >= 0 && rel8 <= 127 then begin
            let fp = free_bytes_of ~len:(v.len - !j) ~pad:0 in
            (* Lock check over everything T3 modifies: the J_victim bytes,
               the J_patch bytes, and (for j >= 5) both ranges. *)
            let mod_ok =
              Lock.all_unlocked ctx.locks ~addr:v.addr ~len:5
              && Lock.all_unlocked ctx.locks ~addr:jp ~len:(1 + fp)
            in
            if mod_ok && (fp = 4 || in_text ctx (jp + 4)) then begin
              let jp_fixed =
                List.init (4 - fp) (fun i -> byte ctx (jp + 1 + fp + i))
              in
              let jp_lo, jp_hi =
                clamp_window ~jmp_end:(jp + 5)
                  (Pun.target_window ~jmp_end:(jp + 5) ~free_bytes:fp
                     ~fixed_high:(Pun.fixed_high_of_bytes jp_fixed))
              in
              (* Displacement bytes of J_patch read back by J_victim. *)
              let n_over = max 0 (4 - !j) in
              let n_pin = min n_over fp in
              let fv = min (!j - 1) 4 in
              let combos = 1 lsl (8 * n_pin) in
              (* Cap per-position probes so the budget spreads over many
                 victims rather than drowning in one 2^16 value space. *)
              let tries = min combos (min !budget 256) in
              let i = ref 0 in
              while !result = None && !i < tries do
                budget := !budget - 1;
                let w = candidate_seq ~combos ~tries !i in
                let stride = 1 lsl (8 * n_pin) in
                (match
                   probe_strided_g ctx ~size:tsize ~lo:(jp_lo + w)
                     ~hi:jp_hi ~stride
                 with
                | None -> ()
                | Some t_p -> (
                    (* J_victim's fixed displacement bytes are now known:
                       position fv..3 map onto [e9; J_patch rel32 ...]. *)
                    let rel_p = Pun.rel32_bytes (Pun.rel32_for ~jmp_end:(jp + 5) ~target:t_p) in
                    let fixed_v =
                      List.init (4 - fv) (fun i ->
                          let pos = fv + i in
                          if pos = !j - 1 then 0xe9
                          else rel_p.(pos - !j))
                    in
                    let v_lo, v_hi =
                      clamp_window ~jmp_end:(v.addr + 5)
                        (Pun.target_window ~jmp_end:(v.addr + 5)
                           ~free_bytes:fv
                           ~fixed_high:(Pun.fixed_high_of_bytes fixed_v))
                    in
                    if alloc_at_g ctx ~addr:t_p ~size:tsize then begin
                      match
                        probe_g ctx ~size:ev_size ~lo:v_lo ~hi:v_hi
                      with
                      | None ->
                          Layout.release ctx.layout ~addr:t_p ~size:tsize
                      | Some t_v ->
                          if not (alloc_at_g ctx ~addr:t_v ~size:ev_size)
                          then Layout.release ctx.layout ~addr:t_p ~size:tsize
                          else begin
                            (* Write J_patch first: J_victim puns over it. *)
                            write_jump ctx ~addr:jp ~len:(v.len - !j) ~pad:0
                              ~target:t_p;
                            write_jump ctx ~addr:v.addr ~len:(!j) ~pad:0
                              ~target:t_v;
                            write_short_jump ctx site ~jp;
                            add_trampoline ctx t_p
                              (Trampoline.emit template ~at:t_p ~insn:site.insn
                                 ~insn_addr:site.addr ~insn_len:site.len);
                            add_trampoline ctx t_v
                              (Trampoline.emit_evictee ~at:t_v ~insn:v.insn
                                 ~insn_addr:v.addr ~insn_len:v.len);
                            result := Some (t_p, v.addr)
                          end
                    end));
                incr i
              done
            end
          end;
          ignore !j
        done
      end;
      incr vi
    done;
    (match !result with
    | Some (t_p, v_addr) ->
        Obs.accept ctx.obs ~addr:site.addr ~tactic:Obs.T3 ~trampoline:t_p
          ~pad:0 ~evictee_distance:(v_addr - site.addr);
        Some (Stats.T3, t_p)
    | None ->
        rejected
          (if !budget <= 0 then Obs.Budget
           else if take_injected ctx then Obs.Injected
           else if ctx.stripe_starved && not ctx.dyn_denied then
             Obs.Stripe_blocked
           else Obs.Range))
  end

(* ------------------------------------------------------------------ *)
(* B0: int3 + SIGTRAP handler                                          *)
(* ------------------------------------------------------------------ *)

let try_b0 ctx (site : Frontend.site) template =
  let rejected reason =
    Obs.reject ctx.obs ~addr:site.addr ~tactic:Obs.B0 ~reason;
    None
  in
  if not (Lock.all_unlocked ctx.locks ~addr:site.addr ~len:1) then
    rejected Obs.Locked
  else if Fault.fires ctx.fault Fault.B0_alloc then rejected Obs.Injected
  else begin
    let tsize =
      Trampoline.size template ~insn:site.insn ~insn_addr:site.addr
        ~insn_len:site.len
    in
    (* The trampoline's return jump still needs rel32 reach. *)
    let lo, hi =
      clamp_window ~jmp_end:(site.addr + 5)
        (site.addr + 5 - 0x8000_0000, site.addr + 5 + 0x7fff_ffff)
    in
    (* Raw [Layout.alloc], not [alloc_g]: B0 is the degradation target
       for injected allocator exhaustion and must stay refusable only
       through its own [B0_alloc] site. *)
    match Layout.alloc ctx.layout ~size:tsize ~lo ~hi with
    | None ->
        note_denial ctx;
        rejected (denial_reason ctx ~default:Obs.Alloc_conflict)
    | Some t ->
        set_byte ctx site.addr 0xcc;
        Lock.lock ctx.locks site.addr;
        if site.len > 1 then
          Lock.lock_range ctx.dead ~addr:(site.addr + 1) ~len:(site.len - 1);
        ctx.traps <-
          { Loadmap.patch_addr = site.addr; trampoline_addr = t } :: ctx.traps;
        add_trampoline ctx t
          (Trampoline.emit template ~at:t ~insn:site.insn ~insn_addr:site.addr
             ~insn_len:site.len);
        Obs.accept ctx.obs ~addr:site.addr ~tactic:Obs.B0 ~trampoline:t ~pad:0
          ~evictee_distance:0;
        Some (Stats.B0, t)
  end

(* ------------------------------------------------------------------ *)
(* Driver: the paper's escalation order                                *)
(* ------------------------------------------------------------------ *)

let log_src = Logs.Src.create "e9.tactics" ~doc:"E9Patch tactic decisions"

module Log = (val Logs.src_log log_src)

let patch_result ctx site template ~defer =
  ctx.injected <- false;
  ctx.stripe_starved <- false;
  ctx.dead_denied <- false;
  ctx.dyn_denied <- false;
  let ( <|> ) a b = match a with Some _ -> a | None -> b () in
  let jump_outcome =
    if not (displaceable site.Frontend.insn) then None
    else
      (if ctx.opts.enable_base then try_b1_b2 ctx site template else None)
      <|> (fun () -> if ctx.opts.enable_t1 then try_t1 ctx site template else None)
      <|> (fun () -> if ctx.opts.enable_t2 then try_t2 ctx site template else None)
      <|> fun () -> if ctx.opts.enable_t3 then try_t3 ctx site template else None
  in
  if jump_outcome = None && defer && ctx.stripe_starved then begin
    (* Free space exists, but only in stripes a foreign arena owns: hold
       the site for the post-join fixup pass instead of burning it to B0
       here. No [Site] event and no stats — the fixup retry is the
       site's one verdict. *)
    Log.debug (fun m ->
        m "0x%x %s: stripe-starved, deferred to fixup" site.Frontend.addr
          (E9_x86.Insn.to_string site.Frontend.insn));
    `Deferred
  end
  else begin
    let outcome =
      jump_outcome
      <|> fun () -> if ctx.opts.b0_fallback then try_b0 ctx site template else None
    in
    (match outcome with
    | Some (tactic, tramp) ->
        Log.debug (fun m ->
            m "0x%x %s -> %s, trampoline 0x%x" site.Frontend.addr
              (E9_x86.Insn.to_string site.Frontend.insn)
              (Stats.tactic_name tactic) tramp)
    | None ->
        Log.info (fun m ->
            m "0x%x %s: all tactics failed" site.Frontend.addr
              (E9_x86.Insn.to_string site.Frontend.insn)));
    Obs.site ctx.obs ~addr:site.Frontend.addr
      ~tactic:(Option.map (fun (t, _) -> obs_tactic t) outcome);
    match outcome with Some (t, _) -> `Patched t | None -> `Failed
  end

let patch ctx site template =
  match patch_result ctx site template ~defer:false with
  | `Patched t -> Some t
  | `Failed -> None
  | `Deferred -> assert false

let patch_deferrable ctx site template = patch_result ctx site template ~defer:true

(** The integrated loader (paper §5.1).

    "E9Patch integrates a small loader into the output binary. The loader
    replaces the entry point, and mmaps the trampoline/instrumentation
    pages into their correct positions before returning control flow to
    the 'real' entry point."

    The loader segment laid out here contains, in order: the path string
    ["/proc/self/exe"], the mapping table (the same 32-byte records as
    {!Loadmap}), and the stub code. The stub

    + [openat]s the binary's own file,
    + walks the table calling [mmap(vaddr, len, prot,
      MAP_PRIVATE|MAP_FIXED, fd, file_off)] for each record,
    + closes the descriptor and jumps to the original entry point.

    Everything is ordinary x86_64 machine code executed by the patched
    program itself; the alternative table-driven loading mode (see
    {!Rewriter.options}) performs the same mappings host-side. *)

type t = {
  content : bytes;  (** the loader segment image *)
  entry : int;  (** absolute address of the stub's first instruction *)
}

(** Where the loader segment lives: far above any program segment, heap or
    trampoline window. *)
val home : int

(** Upper bound on the loader segment's size. The rewriter reserves
    [home, home + home_span) in the trampoline layout before any tactic
    runs, so the stub's landing zone is provably trampoline-free. *)
val home_span : int

(** [emit ~vaddr ~mappings ~real_entry] lays out the loader segment for
    loading at [vaddr]. [mappings]' file offsets must already be absolute
    within the output file. *)
val emit : vaddr:int -> mappings:Loadmap.mapping list -> real_entry:int -> t

(** Chunk-granular rewrite plans: the capture/replay layer behind
    incremental rewriting (DESIGN.md §14).

    Under content-defined chunking ({!Chunker}), everything the parallel
    chunk pass computes for one chunk — decode, tactic verdicts,
    trampoline bytes and placements, lock/dead marks, text edits — is a
    pure function of the chunk's own bytes and coordinates, the base
    occupancy, the options, and the patch spec restricted to the chunk
    (the arena snapshots only create-time occupancy, and
    {!Layout.absorb} merges extents, not allocator cursors). A [chunk]
    record serializes exactly those outputs, keyed by a string covering
    exactly those inputs, so replaying a valid plan is byte-identical to
    recomputing it — which the static verifier re-checks on every emitted
    binary anyway.

    Plans are never captured or replayed under fault injection or a
    substituted frontend; the seam/fixup pass always runs live. *)

(** One interior selected site's outcome. *)
type outcome =
  | Applied of Stats.tactic
  | Failed  (** every tactic rejected; counted per-site *)
  | Deferred  (** stripe-starved; retried live in the fixup pass *)

type site_plan = {
  s_addr : int;  (** absolute site address *)
  s_outcome : outcome;
  s_tramps : (int * bytes) list;
      (** trampolines this site emitted, chronological [(addr, code)] *)
  s_traps : Loadmap.trap list;  (** B0 trap-table entries, chronological *)
  s_class : int;
      (** allocator placement class: quarter-log2 of the first
          trampoline's distance from the site (telemetry only — replay
          correctness comes from the recorded addresses) *)
}

type chunk = {
  c_lo : int;  (** chunk start, text-relative *)
  c_len : int;
  c_entry : int;  (** sweep position on entering the chunk (text-relative;
                      may exceed [c_lo] when the previous chunk's last
                      instruction overran the seam, or the sweep started
                      past it) *)
  c_exit : int;  (** sweep position after the chunk *)
  c_sites : Frontend.site list;  (** every decoded site starting in the
                                     chunk, ascending *)
  c_plans : site_plan list;
      (** one entry per interior selected site, in S1 processing order
          (descending address) *)
  c_diff : (int * string) list;
      (** text bytes the chunk pass changed: [(chunk-relative offset,
          replacement)] runs, ascending, disjoint *)
  c_locks : (int * int) list;  (** absolute [(addr, len)] locked ranges *)
  c_dead : (int * int) list;  (** absolute dead-byte ranges *)
}

(** Storage interface; implementations must be safe to call from
    concurrent domains (chunk tasks run under the work-stealing pool).
    [lib/rpc] backs this with its LRU + generation-flush cache; the CLI
    with a file-persisted table. *)
type store = { find : string -> chunk option; add : string -> chunk -> unit }

(** Everything {!Rewriter.run} needs to consult a plan store.

    [spec_key ~lo ~len] must return a string that changes whenever the
    caller's [select] or [template] behaviour could change for any site
    in text range [lo, lo+len): the rewriter cannot hash closures, so
    spec identity is the caller's responsibility
    ({!Patchspec.fragment_key} derives it for parsed specs). Replay
    additionally validates the recorded interior-site set against the
    live selection, so a wrong [spec_key] degrades to a fallback for
    selection changes — but a template change with an unchanged key
    would replay stale trampoline bytes, caught only by the emit-time
    verifier. *)
type config = { store : store; spec_key : lo:int -> len:int -> string }

(** [key ~hash ~addr ~len ~env] builds the store key for one chunk:
    content hash, absolute coordinates, and an environment string that
    the rewriter fills with the options signature, text geometry,
    segment occupancy hash, sweep start, and the caller's spec fragment
    key. *)
val key : hash:string -> addr:int -> len:int -> env:string -> string

(** {1 Text diffs} *)

(** [diff ~pristine ~current ~lo ~len] — maximal differing runs of
    [current] vs [pristine] over [lo, lo+len), as [(offset - lo,
    replacement)] pairs. *)
val diff : pristine:bytes -> current:bytes -> lo:int -> len:int -> (int * string) list

(** [apply_diff buf ~lo d] writes the recorded runs back at [lo]. *)
val apply_diff : E9_bits.Buf.t -> lo:int -> (int * string) list -> unit

(** {1 In-memory store} — mutex-guarded table for the CLI's
    file-persisted plan cache and for tests. *)

type table

val create_table : unit -> table
val table_store : table -> store
val table_size : table -> int
val table_items : table -> (string * chunk) list
val table_load : table -> (string * chunk) list -> unit

(** File persistence for [--plan-cache]: Marshal behind a magic/version
    header. The format is private to one build of this binary — a
    mismatched or corrupt file loads as an empty table (a cache may
    always start cold), never an error. *)

val save_table : table -> string -> unit
val load_table : string -> table

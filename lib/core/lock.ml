type t = { base : int; flags : Bytes.t; mutable count : int }

let create ~base ~len = { base; flags = Bytes.make len '\000'; count = 0 }

let lock t addr =
  let i = addr - t.base in
  if i >= 0 && i < Bytes.length t.flags && Bytes.get t.flags i = '\000' then begin
    Bytes.set t.flags i '\001';
    t.count <- t.count + 1
  end

let lock_range t ~addr ~len =
  for a = addr to addr + len - 1 do
    lock t a
  done

let locked t addr =
  let i = addr - t.base in
  i >= 0 && i < Bytes.length t.flags && Bytes.get t.flags i <> '\000'

let all_unlocked t ~addr ~len =
  let rec go a = a >= addr + len || ((not (locked t a)) && go (a + 1)) in
  go addr

let locked_count t = t.count

let ranges t =
  let n = Bytes.length t.flags in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if Bytes.unsafe_get t.flags !i <> '\000' then begin
      let start = !i in
      while !i < n && Bytes.unsafe_get t.flags !i <> '\000' do
        incr i
      done;
      out := (t.base + start, !i - start) :: !out
    end
    else incr i
  done;
  List.rev !out

let merge_into ~dst src =
  for i = 0 to Bytes.length src.flags - 1 do
    if Bytes.unsafe_get src.flags i <> '\000' then lock dst (src.base + i)
  done

(** The E9Patch static binary rewriter (paper §5).

    Takes an ELF binary, a patch-location selector, and a trampoline
    template; produces a patched ELF in which every selected instruction is
    diverted to a trampoline by one of the tactics B1/B2/T1/T2/T3 (or the
    optional B0 fallback), under the reverse-order strategy S1.

    ELF discipline: existing bytes are patched strictly in place; the
    trampoline blob, mapping table and trap table are appended. No existing
    file offset moves, and the set of jump targets is preserved — the two
    properties that make the rewriter control-flow agnostic. *)

(** How the trampoline mappings reach the patched program's address
    space. [Stub] is the paper's mechanism: machine code injected into the
    binary replaces the entry point and mmaps the pages itself.
    [Table] (the default) records the same mappings in a metadata section
    applied by the emulator's loader — behaviourally identical, without
    per-run stub execution overhead distorting short benchmark runs. *)
type loader_mode = Table | Stub

(** The rewrite was refused or aborted with the input intact: a stub-mode
    loader-home collision detected before mutation, or an injected shard
    fault. Callers see either a complete, verified rewrite or this —
    never a half-patched binary (DESIGN.md §11, outcome (c)). *)
exception Error of string

type options = {
  tactics : Tactics.options;
  granularity : int;  (** page-grouping block size in pages (paper's M) *)
  grouping : bool;  (** false = naïve one-to-one physical mapping *)
  reserve_below_base : bool;
      (** shared-object mode: the dynamic linker owns the space below the
          load base (paper §5.1) *)
  loader : loader_mode;
  shard_span : int;
      (** text bytes per parallel shard (default 64 KiB; clamped to at
          least [4 * Tactics.max_reach]). Shard geometry depends only on
          the text size and this span — never on the domain count — so
          the rewritten bytes are identical for every [jobs] value. *)
  keep_ranges : (int * int) list;
      (** [(addr, len)] byte ranges of the text that must survive the
          rewrite untouched — mid-text data islands, hand-excluded
          constant pools. The ranges are pre-locked in every lock domain
          before any tactic runs, so no patch, pun, dead-byte squat or
          eviction can write into them (a site selected inside one simply
          fails with a [Locked] reject, B0 included). Clipped per lock
          domain exactly like ordinary locks, so jobs-invariance is
          preserved. Default [[]]. *)
  chunking : Chunker.params option;
      (** [Some p] replaces the fixed-span shard geometry with
          content-defined chunks ({!Chunker.boundaries} under [p]): each
          chunk is one parallel task, allocating from the stripes mapped
          to its own text range ({!Layout.shard_range}). Geometry is
          still a function of the text alone — never of [jobs] — so
          byte-identity across worker counts is preserved; and because a
          chunk's boundaries and stripe ownership depend only on its own
          bytes and coordinates, its rewrite plan can be cached and
          replayed across revisions of the binary (the [plan] argument
          to {!run}). Default [None]. *)
}

val default_options : options

(** [options_signature o] is a stable, injective textual encoding of
    every field of [o] — equal signatures iff the two option values
    drive byte-identical rewrites of the same input. The RPC service
    hashes it into its content-addressed cache key (DESIGN.md §13);
    adding a field to [options] without extending the signature is a
    compile error, so the encoding cannot silently drift. *)
val options_signature : options -> string

type result = {
  output : Elf_file.t;
  stats : Stats.t;
  input_size : int;  (** serialized input file size, bytes *)
  output_size : int;
  trampoline_bytes : int;  (** total trampoline code emitted *)
  virtual_blocks : int;
  physical_blocks : int;
  mappings : int;  (** loader mmap calls in the output binary *)
  patched_sites : (int * Stats.tactic) list;
      (** per-site outcome, in descending address order *)
  shards : int;
      (** parallel chunks the text was split into (the work-stealing
          scheduler's task count; 1 = plain serial rewrite) *)
  steals : int;
      (** chunks executed by a worker other than their home worker —
          scheduler telemetry only, never an input to any decision *)
  setup_s : float;
      (** summed per-chunk setup time (arena + lock table + context
          construction), wall clock *)
  occupancy : Layout.occupancy;  (** final allocator occupancy gauges *)
  plan_hits : int;
      (** chunks whose cached plan replayed (decode + tactic search both
          skipped); 0 unless a plan store was active *)
  plan_misses : int;  (** chunks searched live and freshly captured *)
  plan_conflicts : int;
      (** chunks whose cached plan was abandoned after a placement
          refusal ([Layout.alloc_at] denied a recorded extent) and fell
          back to live search *)
}

(** [run ?options ?disasm_from elf ~select ~template] rewrites [elf]. The
    input is not mutated. [select] chooses patch locations among the
    frontend's sites; [template] supplies each site's trampoline payload.
    [disasm_from] starts the linear sweep at a known code address — the
    §6.2 workaround for text sections that mix data and code. [frontend]
    substitutes a different disassembler entirely (e.g.
    {!Frontend.disassemble_recursive}) — E9Patch only consumes instruction
    locations and sizes, so any frontend that reports them correctly
    works, and partial frontends yield partial instrumentation, never
    incorrectness. [obs] (default {!E9_obs.Obs.null}) receives per-tactic
    attempt records, phase spans ([decode], [tactic_search], [layout],
    [serialize]) and allocator occupancy gauges; with the null sink every
    emission point is a single branch.

    [fault] (default {!E9_fault.Fault.none}) threads the deterministic
    fault-injection capability through the pipeline: [Decode] rules
    truncate the disassembly (partial instrumentation), [Alloc] /
    [B0_alloc] rules starve the tactics (degradation to B0 or per-site
    failure), [Shard] rules abort a shard task (typed {!Error}). Under
    domain parallelism the record is forked per shard and merged back in
    canonical order, so injected faults preserve jobs-invariance.

    [jobs] sets the worker count for the parallel tactic search and the
    chunked decode (default: the [E9_JOBS] environment variable, else 1);
    the spawned domain count is additionally capped at
    [Domain.recommended_domain_count ()], since oversubscribed domains
    pay minor-GC synchronization without buying parallelism. The text is
    sharded into [options.shard_span]-byte chunks drained by a
    work-stealing scheduler ({!E9_bits.Pool.map_stealing}); each chunk
    runs the full S1 search over its interior sites against a
    stripe-partitioned private arena (stripe ownership belongs to the
    chunk index, not the executing worker), and sites within
    {!Tactics.max_reach} of a chunk's top edge — plus interior sites
    deferred as stripe-starved ({!Tactics.patch_deferrable}) — are
    patched in a serial fixup pass over the merged state, in canonical
    descending address order. Chunk geometry never depends on [jobs],
    per-chunk results merge in fixed chunk order, and the deferred set
    depends only on deterministic per-arena state, so output bytes,
    stats and patched-site lists are identical for every [jobs] value
    and every steal schedule.

    [jitter i] (default: nothing) runs in the claiming worker just
    before chunk [i] executes — a test hook for skewing steal schedules
    (the determinism property races randomized delays against the
    byte-identity guarantee).

    [plan] (with [options.chunking = Some _]) activates the incremental
    plan cache (DESIGN.md §14): every chunk's key — content hash,
    coordinates, options signature, text geometry, segment occupancy,
    sweep start, and the caller's [spec_key] fragment — is looked up in
    [plan.store]; a hit that validates against the live decode and
    selection replays its recorded decode, trampolines, text edits,
    locks and verdicts straight into the merge (skipping decode and
    tactic search for that chunk), a placement refusal falls back to
    live search, and every live-searched chunk is captured back into the
    store. The seam/fixup pass always runs live, after capture, so
    cross-chunk writes are recomputed on every run. Replay is provably
    byte-identical to recomputation: per-chunk work is a pure function
    of exactly the keyed inputs, and the plan path changes {e only} how
    a chunk's outputs are obtained, never what the merge or fixup sees.
    Capture and replay are disabled (the rewrite still works, live)
    under fault injection or a substituted [frontend]. *)
val run :
  ?options:options ->
  ?obs:E9_obs.Obs.t ->
  ?fault:E9_fault.Fault.t ->
  ?jobs:int ->
  ?jitter:(int -> unit) ->
  ?plan:Plan.config ->
  ?disasm_from:int ->
  ?frontend:(Elf_file.t -> Frontend.text * Frontend.site list) ->
  Elf_file.t ->
  select:(Frontend.site -> bool) ->
  template:(Frontend.site -> Trampoline.template) ->
  result

(** [size_pct r] is the paper's Size% column: output file size as a
    percentage of the input's. *)
val size_pct : result -> float

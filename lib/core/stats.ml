type tactic = B0 | B1 | B2 | T1 | T2 | T3

type t = {
  mutable b0 : int;
  mutable b1 : int;
  mutable b2 : int;
  mutable t1 : int;
  mutable t2 : int;
  mutable t3 : int;
  mutable failed : int;
}

let create () = { b0 = 0; b1 = 0; b2 = 0; t1 = 0; t2 = 0; t3 = 0; failed = 0 }

let record t = function
  | B0 -> t.b0 <- t.b0 + 1
  | B1 -> t.b1 <- t.b1 + 1
  | B2 -> t.b2 <- t.b2 + 1
  | T1 -> t.t1 <- t.t1 + 1
  | T2 -> t.t2 <- t.t2 + 1
  | T3 -> t.t3 <- t.t3 + 1

let record_failure t = t.failed <- t.failed + 1

let merge_into ~dst src =
  dst.b0 <- dst.b0 + src.b0;
  dst.b1 <- dst.b1 + src.b1;
  dst.b2 <- dst.b2 + src.b2;
  dst.t1 <- dst.t1 + src.t1;
  dst.t2 <- dst.t2 + src.t2;
  dst.t3 <- dst.t3 + src.t3;
  dst.failed <- dst.failed + src.failed
let succeeded t = t.b0 + t.b1 + t.b2 + t.t1 + t.t2 + t.t3
let total t = succeeded t + t.failed

let pct t n = if total t = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int (total t)
let base_pct t = pct t (t.b1 + t.b2)
let t1_pct t = pct t t.t1
let t2_pct t = pct t t.t2
let t3_pct t = pct t t.t3
let succ_pct t = pct t (succeeded t)

let tactic_name = function
  | B0 -> "B0"
  | B1 -> "B1"
  | B2 -> "B2"
  | T1 -> "T1"
  | T2 -> "T2"
  | T3 -> "T3"

let pp ppf t =
  Format.fprintf ppf
    "#Loc=%d Base=%.2f%% T1=%.2f%% T2=%.2f%% T3=%.2f%% Succ=%.2f%%" (total t)
    (base_pct t) (t1_pct t) (t2_pct t) (t3_pct t) (succ_pct t)

(* ------------------------------------------------------------------ *)
(* Harness throughput (the evaluation substrate's own performance)     *)
(* ------------------------------------------------------------------ *)

type throughput = {
  wall_s : float;
  emu_insns : int;
  emu_wall_s : float;
  block_hits : int;
  block_misses : int;
  block_invalidations : int;
  domains : int;
}

let insns_per_sec t =
  if t.emu_wall_s <= 0.0 then 0.0
  else float_of_int t.emu_insns /. t.emu_wall_s

let block_hit_rate t =
  let total = t.block_hits + t.block_misses in
  if total = 0 then 0.0 else float_of_int t.block_hits /. float_of_int total

let pp_throughput ppf t =
  Format.fprintf ppf
    "wall=%.2fs domains=%d emu: %d insns in %.2fs (%.2f Minsns/s), block \
     cache %.1f%% hit (%d hits / %d misses / %d flushes)"
    t.wall_s t.domains t.emu_insns t.emu_wall_s
    (insns_per_sec t /. 1e6)
    (100.0 *. block_hit_rate t)
    t.block_hits t.block_misses t.block_invalidations

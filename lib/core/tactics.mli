(** The patching tactics (paper §2.1, §3): B0 signal handlers, B1 direct
    jumps, B2 instruction punning, T1 padded jumps, T2 successor eviction,
    T3 neighbour eviction.

    Each tactic attempts to divert one patch-location instruction to a
    freshly emitted trampoline without moving any other instruction and
    without invalidating any possible jump target. Tactics mutate the
    shared rewriting context (text bytes, lock state, address-space
    reservations, trampoline list) only when they succeed. *)

type options = {
  enable_base : bool;
      (** disable to force the escalation tactics (demos, ablation) *)
  enable_t1 : bool;
  enable_t2 : bool;
  enable_t3 : bool;
  b0_fallback : bool;
      (** when every jump-based tactic fails, fall back to an [int3] trap
          (paper §5.2: "using B0 as a fallback may be appropriate") *)
  t2_joint : bool;
      (** extension beyond the paper: jointly choose the evicted
          successor's displacement bytes to open the patch pun's window,
          instead of the paper's two-step evict-then-reapply (default
          false) *)
  t2_cap : int;
      (** bound on candidate probes in T2's joint pun search *)
  t3_cap : int;
      (** bound on candidate probes across T3's victim enumeration *)
}

val default_options : options

(** The rewriting context shared by all tactics over one binary. *)
type ctx

(** Upper bound, in bytes, on how far beyond a patch site's first byte
    any tactic can read or write text bytes, locks, or dead marks (the
    T3 victim walk dominates; see the implementation for the accounting).
    Tactics never touch anything before the site. The domain-parallel
    rewriter uses this to prove that sites more than [max_reach] bytes
    below a shard boundary cannot interact with the next shard. *)
val max_reach : int

(** [create_ctx ~text ~text_base ~layout ~sites ~options] — [text] is a
    mutable copy of the text section (mutated in place as patches land);
    [sites] is the full linear disassembly in address order. [obs]
    (default {!E9_obs.Obs.null}) receives one [Attempt] record per tactic
    tried per site — accepted (with padding bytes and evictee distance)
    or rejected with a typed reason — plus a final per-site [Site]
    verdict. [locks] / [dead] substitute externally managed lock state
    (defaults cover the whole text): shard contexts pass locks scoped to
    their own byte range, and the boundary-fixup context passes the lock
    state merged from all shards.

    [fault] (default {!E9_fault.Fault.none}) can deterministically refuse
    allocator queries: [Alloc] rules starve the jump tactics (every
    [Layout] query they issue funnels through one guarded choke point),
    [B0_alloc] rules refuse the B0 fallback's own allocation. Injected
    refusals surface as [Obs.Injected] rejects, never as spurious
    [Alloc_conflict]s. *)
val create_ctx :
  ?obs:E9_obs.Obs.t ->
  ?fault:E9_fault.Fault.t ->
  ?locks:Lock.t ->
  ?dead:Lock.t ->
  text:E9_bits.Buf.t ->
  text_base:int ->
  layout:Layout.t ->
  sites:Frontend.site array ->
  options:options ->
  unit ->
  ctx

(** [patch ctx site template] tries B1/B2, then (as enabled) T1, T2, T3,
    then the B0 fallback, in the paper's order. Returns the tactic that
    succeeded, if any, after applying its effects. *)
val patch : ctx -> Frontend.site -> Trampoline.template -> Stats.tactic option

(** [patch_deferrable ctx site template] is {!patch} for the chunk pass of
    a sharded rewrite (DESIGN.md §12): when every jump tactic fails and at
    least one Layout query was denied only because the free space lies in
    a foreign arena's stripes ([Layout.Foreign_stripe]), the site is
    {e deferred} — no B0 fallback, no [Obs.site] verdict, no stats — so
    the driver can retry it against the absorbed layout after the join,
    where the O(log n) query sees every stripe. The deferral decision
    depends only on the shared base occupancy, the arena's own
    deterministic allocations and stripe ownership, never on scheduling,
    so the deferred set is identical for every steal schedule. *)
val patch_deferrable :
  ctx ->
  Frontend.site ->
  Trampoline.template ->
  [ `Patched of Stats.tactic | `Failed | `Deferred ]

(** Individual tactics, exposed for testing and ablation. Each returns the
    trampoline address on success. *)
val try_b1_b2 :
  ctx -> Frontend.site -> Trampoline.template -> (Stats.tactic * int) option

val try_t1 :
  ctx -> Frontend.site -> Trampoline.template -> (Stats.tactic * int) option

val try_t2 :
  ctx -> Frontend.site -> Trampoline.template -> (Stats.tactic * int) option

val try_t3 :
  ctx -> Frontend.site -> Trampoline.template -> (Stats.tactic * int) option

val try_b0 :
  ctx -> Frontend.site -> Trampoline.template -> (Stats.tactic * int) option

(** Results accumulated across {!patch} calls. *)

val trampolines : ctx -> (int * bytes) list
(** [(address, code)] pairs, in emission order. *)

val trap_entries : ctx -> Loadmap.trap list
(** B0 trap-table entries. *)

val trampolines_rev : ctx -> (int * bytes) list
(** The raw accumulator, most recent first. The plan-capture path
    snapshots the list head before a site and walks the new prefix after
    it — O(emitted this site) — to attribute trampolines per site
    (physical equality against the snapshot marks the old head). *)

val traps_rev : ctx -> Loadmap.trap list
(** Raw trap accumulator, most recent first; same snapshot idiom. *)

val locks : ctx -> Lock.t

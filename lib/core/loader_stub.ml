module Buf = E9_bits.Buf
module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm

type t = { content : bytes; entry : int }

let home = 0x7000_0000_0000

(* Generous upper bound on the loader segment (path + mapping table +
   stub code): even pathological rewrites emit far fewer than half a
   million mappings. The rewriter pre-reserves [home, home + home_span)
   in the trampoline layout so no trampoline can ever be placed where
   the stub will later land. *)
let home_span = 1 lsl 24

let map_private_fixed = 0x12 (* MAP_PRIVATE lor MAP_FIXED *)

let emit ~vaddr ~mappings ~real_entry =
  let header = Buf.create 256 in
  let path_addr = vaddr in
  ignore (Buf.add_string header E9_emu.Cpu.self_exe_path);
  ignore (Buf.add_u8 header 0);
  Buf.pad_to header ((Buf.length header + 7) / 8 * 8);
  let table_addr = vaddr + Buf.length header in
  ignore (Buf.add_bytes header (Loadmap.encode_mappings mappings));
  let table_end = vaddr + Buf.length header in
  let stub_addr = table_end in
  let asm = Asm.create ~base:stub_addr in
  let ins i = Asm.ins asm i in
  let loop = Asm.fresh_label asm "loop" in
  let done_ = Asm.fresh_label asm "done" in
  (* The stub must be register-transparent: the program receives the same
     architectural state it would have received without rewriting. Every
     register the stub touches is saved and restored, and the final jump
     goes through a rip-relative slot instead of a scratch register. *)
  let clobbered =
    [ Reg.RAX; Reg.RDI; Reg.RSI; Reg.RDX; Reg.R8; Reg.R9; Reg.R10;
      Reg.R13; Reg.R14; Reg.R15 ]
  in
  List.iter (fun r -> ins (Insn.Push r)) clobbered;
  (* r13 = openat(AT_FDCWD, "/proc/self/exe", O_RDONLY) *)
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 257));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Imm (-100)));
  ins (Insn.Movabs (Reg.RSI, Int64.of_int path_addr));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDX, Insn.Imm 0));
  ins Insn.Syscall;
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.R13, Insn.Reg Reg.RAX));
  (* for each 32-byte record: mmap(vaddr, len, prot, flags, fd, off) *)
  ins (Insn.Movabs (Reg.R14, Int64.of_int table_addr));
  ins (Insn.Movabs (Reg.R15, Int64.of_int table_end));
  Asm.place asm loop;
  ins (Insn.Alu (Insn.Cmp, Insn.Q, Insn.Reg Reg.R14, Insn.Reg Reg.R15));
  Asm.jcc asm Insn.AE done_;
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Mem (Insn.mem ~base:Reg.R14 ())));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RSI, Insn.Mem (Insn.mem ~base:Reg.R14 ~disp:16 ())));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDX, Insn.Mem (Insn.mem ~base:Reg.R14 ~disp:24 ())));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.R10, Insn.Imm map_private_fixed));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.R8, Insn.Reg Reg.R13));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.R9, Insn.Mem (Insn.mem ~base:Reg.R14 ~disp:8 ())));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 9));
  ins Insn.Syscall;
  ins (Insn.Alu (Insn.Add, Insn.Q, Insn.Reg Reg.R14, Insn.Imm 32));
  Asm.jmp asm loop;
  Asm.place asm done_;
  (* close(fd); restore registers; jump to the real entry point through
     the 8-byte slot that immediately follows the code ([jmp [rip+0]]
     reads its operand from the next address). *)
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RDI, Insn.Reg Reg.R13));
  ins (Insn.Mov (Insn.Q, Insn.Reg Reg.RAX, Insn.Imm 3));
  ins Insn.Syscall;
  List.iter (fun r -> ins (Insn.Pop r)) (List.rev clobbered);
  ins
    (Insn.Jmp_ind
       (Insn.Mem { Insn.base = None; index = None; disp = 0; rip_rel = true }));
  ignore (Buf.add_bytes header (Asm.assemble asm));
  ignore (Buf.add_u64 header (Int64.of_int real_entry));
  { content = Buf.contents header; entry = stub_addr }

(** Trampoline templates and code generation.

    Every successful tactic diverts control flow to a trampoline that
    (optionally) runs an instrumentation payload, executes the displaced
    instruction, and jumps back to the instruction after the patch
    location. PC-relative displaced instructions (branches, RIP-relative
    operands) are re-encoded against their new location; instructions that
    leave unconditionally ([jmp], [ret]) need no return jump.

    Emission is address-dependent (the displacements) but length-stable:
    [emit] at any address yields the same number of bytes, so the rewriter
    can size a trampoline before allocating its home. *)

(** Call-trampoline register discipline (the E9Tool call ABI).
    [Clean] brackets the call with RFLAGS + caller-saved save/restore on
    an instrumentation-private stack, so the instrumented program's
    architectural state — including the guest stack — is untouched.
    [Naked] emits only the argument loads and the call: fastest, and the
    caller takes responsibility for whatever the callee clobbers. *)
type call_mode = Clean | Naked

(** Static arguments passed to a call trampoline, loaded into the System
    V argument registers (%rdi, %rsi, %rdx, %rcx, %r8, %r9) in order. *)
type call_arg =
  | Arg_int of int  (** integer literal *)
  | Arg_addr  (** the patch site's address *)
  | Arg_size  (** the patched instruction's length in bytes *)
  | Arg_asm
      (** pointer to the instruction's NUL-terminated disassembly string,
          embedded in the trampoline behind its terminal transfer *)
  | Arg_instr  (** pointer to the instruction's encoded bytes, embedded *)
  | Arg_reg of E9_x86.Reg.t
      (** the register's value at the patch site. In [Clean] mode every
          register (including %rsp) reads its pre-trampoline value from
          the save area; in [Naked] mode a source that an earlier
          argument register already overwrote raises [Invalid_argument]
          at emission time *)

type template =
  | Empty
      (** displaced instruction + return — the paper's "empty
          instrumentation" used for the Table 1 / Figure 4 overheads *)
  | Counter
      (** a {!E9_emu.Hostcall.count} host call first — basic-block /
          jump counting instrumentation *)
  | Lowfat_check
      (** re-materialize the written-to pointer with [lea], pass it to the
          {!E9_emu.Hostcall.check} redzone check, restore state, then run
          the displaced instruction (paper §6.3). Only valid for
          heap-write instructions. *)
  | Lowfat_check_scratch of int
      (** {!Lowfat_check} with %rdi parked in the given 8-byte scratch
          slot (an instrumentation-private page) instead of pushed on the
          guest stack — the trace-transparent form the tool frontend
          emits *)
  | Call_fn of int
      (** call an instrumentation {e function inside the patched binary}
          (appended by the user as an extra executable segment — the
          E9Tool mechanism), bracketing it with RFLAGS and caller-saved
          register save/restore *)
  | Print of { text : string; scratch : int }
      (** stash %rdi in the 8-byte [scratch] slot (an
          instrumentation-private page, not the guest stack), point it at
          the embedded NUL-terminated [text] and raise the
          {!E9_emu.Hostcall.print} host call; flags untouched *)
  | Trap
      (** raise the {!E9_emu.Hostcall.trap} host call — a SIGTRAP-style
          instrumentation event the harness counts and continues past *)
  | Call of {
      target : int;  (** absolute address of the instrumentation function *)
      mode : call_mode;
      args : call_arg list;  (** at most 6 *)
      scratch : int;  (** 8-byte slot for the original %rsp / %rdi *)
      stack_top : int;
          (** top of the instrumentation-private stack the [Clean]
              bracket switches to before spilling state *)
    }
      (** call an instrumentation function with the documented
          argument-passing ABI *)
  | Custom_pre of (E9_x86.Asm.t -> unit)
      (** arbitrary payload before the displaced instruction *)
  | Replace of (E9_x86.Asm.t -> ret:int -> unit)
      (** binary patching: the payload replaces the displaced instruction
          entirely and must end with its own control transfer; [ret] is
          the address just after the patched instruction *)

(** [emit template ~at ~insn ~insn_addr ~insn_len] generates trampoline
    code to live at address [at], for the instruction [insn] originally at
    [insn_addr] (size [insn_len]). *)
val emit :
  template -> at:int -> insn:E9_x86.Insn.t -> insn_addr:int -> insn_len:int ->
  bytes

(** [size template ~insn ~insn_addr ~insn_len] is the length [emit] will
    produce (computed by a dry run near the original location). *)
val size : template -> insn:E9_x86.Insn.t -> insn_addr:int -> insn_len:int -> int

(** [emit_evictee ~at ~insn ~insn_addr ~insn_len] is the evictee trampoline
    used by instruction eviction (T2/T3): the displaced victim plus the
    return jump — an [Empty] template. *)
val emit_evictee :
  at:int -> insn:E9_x86.Insn.t -> insn_addr:int -> insn_len:int -> bytes

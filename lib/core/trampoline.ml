module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Classify = E9_x86.Classify
module Hostcall = E9_emu.Hostcall

type call_mode = Clean | Naked

type call_arg =
  | Arg_int of int
  | Arg_addr
  | Arg_size
  | Arg_asm
  | Arg_instr
  | Arg_reg of Reg.t

type template =
  | Empty
  | Counter
  | Lowfat_check
  | Lowfat_check_scratch of int
  | Call_fn of int
  | Print of { text : string; scratch : int }
  | Trap
  | Call of {
      target : int;
      mode : call_mode;
      args : call_arg list;
      scratch : int;
      stack_top : int;
    }
  | Custom_pre of (Asm.t -> unit)
  | Replace of (Asm.t -> ret:int -> unit)

(* Absolute-target branch helpers (lengths fixed: jmp 5, jcc 6, call 5). *)
let jmp_abs asm target = Asm.ins asm (Insn.Jmp (target - (Asm.here asm + 5)))
let call_abs asm target = Asm.ins asm (Insn.Call (target - (Asm.here asm + 5)))

let jcc_abs asm c target =
  Asm.ins asm (Insn.Jcc (c, target - (Asm.here asm + 6)))

(* Re-encode a RIP-relative memory operand for a new location. The operand
   addressed [orig_next + disp]; at the new site the instruction's end is
   only known after encoding, and our encoder always uses disp32 for
   RIP-relative operands, so the length is stable: encode once with the old
   displacement to learn the length, then fix the displacement. *)
let retarget_mem ~orig_next ~new_addr ~enc_len (m : Insn.mem) =
  if m.rip_rel then
    { m with Insn.disp = orig_next + m.disp - (new_addr + enc_len) }
  else m

let retarget_operand ~orig_next ~new_addr ~enc_len = function
  | Insn.Mem m -> Insn.Mem (retarget_mem ~orig_next ~new_addr ~enc_len m)
  | (Insn.Reg _ | Insn.Imm _) as op -> op

(* Emit the displaced instruction at the current position, preserving its
   original semantics, and return [true] when control flow continues to the
   next trampoline instruction (so a return jump is still needed). *)
let emit_displaced asm ~insn ~insn_addr ~insn_len =
  let orig_next = insn_addr + insn_len in
  match insn with
  | Insn.Jmp rel | Insn.Jmp_short rel ->
      jmp_abs asm (orig_next + rel);
      false
  | Insn.Jcc (c, rel) | Insn.Jcc_short (c, rel) ->
      jcc_abs asm c (orig_next + rel);
      true
  | Insn.Call rel ->
      (* The callee returns into the trampoline, which then resumes after
         the patch site. (The return address differs from the original —
         the standard transparency caveat of trampoline-based rewriting.) *)
      call_abs asm (orig_next + rel);
      true
  | Insn.Ret ->
      Asm.ins asm Insn.Ret;
      false
  | Insn.Jmp_ind op ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length (Insn.Jmp_ind op) in
      Asm.ins asm (Insn.Jmp_ind (retarget_operand ~orig_next ~new_addr ~enc_len op));
      false
  | Insn.Call_ind op ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length (Insn.Call_ind op) in
      Asm.ins asm (Insn.Call_ind (retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Mov (sz, dst, src) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      let f = retarget_operand ~orig_next ~new_addr ~enc_len in
      Asm.ins asm (Insn.Mov (sz, f dst, f src));
      true
  | Insn.Alu (op, sz, dst, src) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      let f = retarget_operand ~orig_next ~new_addr ~enc_len in
      Asm.ins asm (Insn.Alu (op, sz, f dst, f src));
      true
  | Insn.Lea (r, m) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Lea (r, retarget_mem ~orig_next ~new_addr ~enc_len m));
      true
  | Insn.Imul (r, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Imul (r, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Movzx (r, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Movzx (r, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Movsx (r, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Movsx (r, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Setcc (c, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Setcc (c, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Cmov (c, r, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Cmov (c, r, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Neg (sz, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Neg (sz, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Not (sz, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Not (sz, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Inc (sz, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Inc (sz, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Dec (sz, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Dec (sz, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Shift (sh, sz, dst, n) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm
        (Insn.Shift (sh, sz, retarget_operand ~orig_next ~new_addr ~enc_len dst, n));
      true
  | (Insn.Movabs _ | Insn.Push _ | Insn.Pop _ | Insn.Pushfq | Insn.Popfq
    | Insn.Nop _ | Insn.Endbr64 | Insn.Syscall | Insn.Int _) as i ->
      Asm.ins asm i;
      true
  | Insn.Int3 | Insn.Ud2 | Insn.Unknown _ ->
      invalid_arg "Trampoline: cannot displace this instruction"

let emit_lowfat_payload asm ~insn =
  match Classify.mem_written insn with
  | None -> invalid_arg "Trampoline: Lowfat_check on a non-writing instruction"
  | Some m ->
      if m.Insn.rip_rel then
        invalid_arg "Trampoline: Lowfat_check on a global write";
      (* push %rdi; lea written-operand, %rdi; int check; pop %rdi.
         None of these touch the flags; %rdi is read before being
         clobbered, so the address is computed from original state. *)
      Asm.ins asm (Insn.Push Reg.RDI);
      Asm.ins asm (Insn.Lea (Reg.RDI, m));
      Asm.ins asm (Insn.Int Hostcall.check);
      Asm.ins asm (Insn.Pop Reg.RDI)

(* Caller-saved register state bracketing an instrumentation call: flags
   first (the displaced instruction may be a jcc), then the registers the
   System V ABI lets a callee clobber. *)
let caller_saved =
  [ Reg.RAX; Reg.RCX; Reg.RDX; Reg.RSI; Reg.RDI; Reg.R8; Reg.R9; Reg.R10;
    Reg.R11 ]

let emit_call_fn asm fn =
  Asm.ins asm Insn.Pushfq;
  List.iter (fun r -> Asm.ins asm (Insn.Push r)) caller_saved;
  call_abs asm fn;
  List.iter (fun r -> Asm.ins asm (Insn.Pop r)) (List.rev caller_saved);
  Asm.ins asm Insn.Popfq

(* ------------------------------------------------------------------ *)
(* Tool templates: print, trap, and the argument-passing call ABI      *)
(* ------------------------------------------------------------------ *)

(* RIP-relative access to an absolute address outside the trampoline (the
   tool's scratch page). The encoder always emits disp32 for RIP-relative
   operands, so the length does not depend on the displacement and
   emission stays length-stable. *)
let riprel_to asm ~make ~addr =
  let len = E9_x86.Encode.length (make (Insn.rip_mem 0)) in
  Asm.ins asm (make (Insn.rip_mem (addr - (Asm.here asm + len))))

let store_reg_abs asm ~slot r =
  riprel_to asm ~addr:slot ~make:(fun m ->
      Insn.Mov (Insn.Q, Insn.Mem m, Insn.Reg r))

let load_reg_abs asm r ~slot =
  riprel_to asm ~addr:slot ~make:(fun m ->
      Insn.Mov (Insn.Q, Insn.Reg r, Insn.Mem m))

(* The trace-transparent lowfat payload: same check as
   [emit_lowfat_payload], but %rdi is parked in the tool's scratch slot
   instead of on the guest stack, so instrumented runs stay
   store-for-store identical outside the private page. *)
let emit_lowfat_scratch asm ~insn ~scratch =
  match Classify.mem_written insn with
  | None -> invalid_arg "Trampoline: Lowfat_check on a non-writing instruction"
  | Some m ->
      if m.Insn.rip_rel then
        invalid_arg "Trampoline: Lowfat_check on a global write";
      store_reg_abs asm ~slot:scratch Reg.RDI;
      Asm.ins asm (Insn.Lea (Reg.RDI, m));
      Asm.ins asm (Insn.Int Hostcall.check);
      load_reg_abs asm Reg.RDI ~slot:scratch

(* print: stash %rdi in the scratch slot (not on the guest stack — the
   trace oracle treats the scratch page as instrumentation-private, the
   guest stack as program state), point it at the embedded string, raise
   the print host call, restore. None of this touches the flags. The
   string bytes live behind the trampoline's terminal transfer, where the
   static verifier's linear decode never reaches. *)
let emit_print asm ~scratch =
  let str = Asm.fresh_label asm "print_str" in
  store_reg_abs asm ~slot:scratch Reg.RDI;
  Asm.lea_label asm Reg.RDI str;
  Asm.ins asm (Insn.Int Hostcall.print);
  load_reg_abs asm Reg.RDI ~slot:scratch;
  str

let sysv_arg_regs = [| Reg.RDI; Reg.RSI; Reg.RDX; Reg.RCX; Reg.R8; Reg.R9 |]

(* Stack-slot offset of a caller-saved register after the clean bracket's
   pushfq + nine pushes ([caller_saved] order, so RAX sits deepest). *)
let saved_slot r =
  let rec index i = function
    | [] -> None
    | r' :: rest -> if Reg.equal r r' then Some i else index (i + 1) rest
  in
  Option.map (fun i -> 64 - (8 * i)) (index 0 caller_saved)

(* Load one static argument into its System V argument register.
   [clean] mode reads caller-saved values from their just-pushed slots
   and the original %rsp from the scratch slot, so argument order can
   never read a clobbered register. [naked] mode reads registers
   directly and must therefore reject sources already overwritten by an
   earlier argument. *)
let emit_arg asm ~mode ~insn ~insn_addr ~insn_len ~scratch ~loaded ~strings dst
    = function
  | Arg_int v -> Asm.ins asm (Insn.Movabs (dst, Int64.of_int v))
  | Arg_addr -> Asm.ins asm (Insn.Movabs (dst, Int64.of_int insn_addr))
  | Arg_size -> Asm.ins asm (Insn.Movabs (dst, Int64.of_int insn_len))
  | Arg_asm ->
      let l = Asm.fresh_label asm "arg_asm" in
      strings := (l, Insn.to_string insn ^ "\x00") :: !strings;
      Asm.lea_label asm dst l
  | Arg_instr ->
      let l = Asm.fresh_label asm "arg_instr" in
      strings := (l, E9_x86.Encode.encode insn) :: !strings;
      Asm.lea_label asm dst l
  | Arg_reg r -> (
      match mode with
      | Clean ->
          if Reg.equal r Reg.RSP then load_reg_abs asm dst ~slot:scratch
          else (
            match saved_slot r with
            | Some off ->
                Asm.ins asm
                  (Insn.Mov
                     ( Insn.Q,
                       Insn.Reg dst,
                       Insn.Mem (Insn.mem ~base:Reg.RSP ~disp:off ()) ))
            | None -> Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg dst, Insn.Reg r)))
      | Naked ->
          if List.exists (Reg.equal r) loaded then
            invalid_arg
              "Trampoline: naked call argument reads a register already \
               loaded as an earlier argument";
          Asm.ins asm (Insn.Mov (Insn.Q, Insn.Reg dst, Insn.Reg r)))

let emit_call asm ~target ~mode ~args ~scratch ~stack_top ~insn ~insn_addr
    ~insn_len =
  if List.length args > Array.length sysv_arg_regs then
    invalid_arg "Trampoline: call trampolines take at most 6 arguments";
  let strings = ref [] in
  (match mode with
  | Clean ->
      (* Switch to the instrumentation-private stack before spilling
         anything: every push lands in the scratch page, keeping the
         guest stack byte-identical to the uninstrumented run. *)
      store_reg_abs asm ~slot:scratch Reg.RSP;
      Asm.ins asm (Insn.Movabs (Reg.RSP, Int64.of_int stack_top));
      Asm.ins asm Insn.Pushfq;
      List.iter (fun r -> Asm.ins asm (Insn.Push r)) caller_saved
  | Naked -> ());
  List.iteri
    (fun i a ->
      let loaded =
        List.filteri (fun j _ -> j < i) (Array.to_list sysv_arg_regs)
      in
      emit_arg asm ~mode ~insn ~insn_addr ~insn_len ~scratch ~loaded ~strings
        sysv_arg_regs.(i) a)
    args;
  call_abs asm target;
  (match mode with
  | Clean ->
      List.iter (fun r -> Asm.ins asm (Insn.Pop r)) (List.rev caller_saved);
      Asm.ins asm Insn.Popfq;
      load_reg_abs asm Reg.RSP ~slot:scratch
  | Naked -> ());
  !strings

(* Embedded data (strings, instruction bytes) is placed only after the
   trampoline's terminal control transfer: the static verifier decodes
   forward from the trampoline head and must see instructions — and only
   instructions — until the final jump out. *)
let place_data asm entries =
  List.iter
    (fun (l, data) ->
      Asm.place asm l;
      Asm.ins_raw asm data)
    (List.rev entries)

let emit template ~at ~insn ~insn_addr ~insn_len =
  let asm = Asm.create ~base:at in
  let ret = insn_addr + insn_len in
  (match template with
  | Empty ->
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Counter ->
      Asm.ins asm (Insn.Int Hostcall.count);
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Lowfat_check ->
      emit_lowfat_payload asm ~insn;
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Lowfat_check_scratch scratch ->
      emit_lowfat_scratch asm ~insn ~scratch;
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Call_fn fn ->
      emit_call_fn asm fn;
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Print { text; scratch } ->
      let str = emit_print asm ~scratch in
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret;
      place_data asm [ (str, text ^ "\x00") ]
  | Trap ->
      Asm.ins asm (Insn.Int Hostcall.trap);
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Call { target; mode; args; scratch; stack_top } ->
      let strings =
        emit_call asm ~target ~mode ~args ~scratch ~stack_top ~insn ~insn_addr
          ~insn_len
      in
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret;
      place_data asm strings
  | Custom_pre f ->
      f asm;
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Replace f -> f asm ~ret);
  Asm.assemble asm

let size template ~insn ~insn_addr ~insn_len =
  (* Dry run next to the original site: every branch target is then within
     rel32 range and the emitted length equals the final one. *)
  Bytes.length (emit template ~at:(insn_addr + 64) ~insn ~insn_addr ~insn_len)

let emit_evictee ~at ~insn ~insn_addr ~insn_len =
  emit Empty ~at ~insn ~insn_addr ~insn_len

module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Classify = E9_x86.Classify
module Hostcall = E9_emu.Hostcall

type template =
  | Empty
  | Counter
  | Lowfat_check
  | Call_fn of int
  | Custom_pre of (Asm.t -> unit)
  | Replace of (Asm.t -> ret:int -> unit)

(* Absolute-target branch helpers (lengths fixed: jmp 5, jcc 6, call 5). *)
let jmp_abs asm target = Asm.ins asm (Insn.Jmp (target - (Asm.here asm + 5)))
let call_abs asm target = Asm.ins asm (Insn.Call (target - (Asm.here asm + 5)))

let jcc_abs asm c target =
  Asm.ins asm (Insn.Jcc (c, target - (Asm.here asm + 6)))

(* Re-encode a RIP-relative memory operand for a new location. The operand
   addressed [orig_next + disp]; at the new site the instruction's end is
   only known after encoding, and our encoder always uses disp32 for
   RIP-relative operands, so the length is stable: encode once with the old
   displacement to learn the length, then fix the displacement. *)
let retarget_mem ~orig_next ~new_addr ~enc_len (m : Insn.mem) =
  if m.rip_rel then
    { m with Insn.disp = orig_next + m.disp - (new_addr + enc_len) }
  else m

let retarget_operand ~orig_next ~new_addr ~enc_len = function
  | Insn.Mem m -> Insn.Mem (retarget_mem ~orig_next ~new_addr ~enc_len m)
  | (Insn.Reg _ | Insn.Imm _) as op -> op

(* Emit the displaced instruction at the current position, preserving its
   original semantics, and return [true] when control flow continues to the
   next trampoline instruction (so a return jump is still needed). *)
let emit_displaced asm ~insn ~insn_addr ~insn_len =
  let orig_next = insn_addr + insn_len in
  match insn with
  | Insn.Jmp rel | Insn.Jmp_short rel ->
      jmp_abs asm (orig_next + rel);
      false
  | Insn.Jcc (c, rel) | Insn.Jcc_short (c, rel) ->
      jcc_abs asm c (orig_next + rel);
      true
  | Insn.Call rel ->
      (* The callee returns into the trampoline, which then resumes after
         the patch site. (The return address differs from the original —
         the standard transparency caveat of trampoline-based rewriting.) *)
      call_abs asm (orig_next + rel);
      true
  | Insn.Ret ->
      Asm.ins asm Insn.Ret;
      false
  | Insn.Jmp_ind op ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length (Insn.Jmp_ind op) in
      Asm.ins asm (Insn.Jmp_ind (retarget_operand ~orig_next ~new_addr ~enc_len op));
      false
  | Insn.Call_ind op ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length (Insn.Call_ind op) in
      Asm.ins asm (Insn.Call_ind (retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Mov (sz, dst, src) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      let f = retarget_operand ~orig_next ~new_addr ~enc_len in
      Asm.ins asm (Insn.Mov (sz, f dst, f src));
      true
  | Insn.Alu (op, sz, dst, src) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      let f = retarget_operand ~orig_next ~new_addr ~enc_len in
      Asm.ins asm (Insn.Alu (op, sz, f dst, f src));
      true
  | Insn.Lea (r, m) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Lea (r, retarget_mem ~orig_next ~new_addr ~enc_len m));
      true
  | Insn.Imul (r, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Imul (r, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Movzx (r, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Movzx (r, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Movsx (r, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Movsx (r, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Setcc (c, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Setcc (c, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Cmov (c, r, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Cmov (c, r, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Neg (sz, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Neg (sz, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Not (sz, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Not (sz, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Inc (sz, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Inc (sz, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Dec (sz, op) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm (Insn.Dec (sz, retarget_operand ~orig_next ~new_addr ~enc_len op));
      true
  | Insn.Shift (sh, sz, dst, n) ->
      let new_addr = Asm.here asm in
      let enc_len = E9_x86.Encode.length insn in
      Asm.ins asm
        (Insn.Shift (sh, sz, retarget_operand ~orig_next ~new_addr ~enc_len dst, n));
      true
  | (Insn.Movabs _ | Insn.Push _ | Insn.Pop _ | Insn.Pushfq | Insn.Popfq
    | Insn.Nop _ | Insn.Endbr64 | Insn.Syscall | Insn.Int _) as i ->
      Asm.ins asm i;
      true
  | Insn.Int3 | Insn.Ud2 | Insn.Unknown _ ->
      invalid_arg "Trampoline: cannot displace this instruction"

let emit_lowfat_payload asm ~insn =
  match Classify.mem_written insn with
  | None -> invalid_arg "Trampoline: Lowfat_check on a non-writing instruction"
  | Some m ->
      if m.Insn.rip_rel then
        invalid_arg "Trampoline: Lowfat_check on a global write";
      (* push %rdi; lea written-operand, %rdi; int check; pop %rdi.
         None of these touch the flags; %rdi is read before being
         clobbered, so the address is computed from original state. *)
      Asm.ins asm (Insn.Push Reg.RDI);
      Asm.ins asm (Insn.Lea (Reg.RDI, m));
      Asm.ins asm (Insn.Int Hostcall.check);
      Asm.ins asm (Insn.Pop Reg.RDI)

(* Caller-saved register state bracketing an instrumentation call: flags
   first (the displaced instruction may be a jcc), then the registers the
   System V ABI lets a callee clobber. *)
let caller_saved =
  [ Reg.RAX; Reg.RCX; Reg.RDX; Reg.RSI; Reg.RDI; Reg.R8; Reg.R9; Reg.R10;
    Reg.R11 ]

let emit_call_fn asm fn =
  Asm.ins asm Insn.Pushfq;
  List.iter (fun r -> Asm.ins asm (Insn.Push r)) caller_saved;
  call_abs asm fn;
  List.iter (fun r -> Asm.ins asm (Insn.Pop r)) (List.rev caller_saved);
  Asm.ins asm Insn.Popfq

let emit template ~at ~insn ~insn_addr ~insn_len =
  let asm = Asm.create ~base:at in
  let ret = insn_addr + insn_len in
  (match template with
  | Empty ->
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Counter ->
      Asm.ins asm (Insn.Int Hostcall.count);
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Lowfat_check ->
      emit_lowfat_payload asm ~insn;
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Call_fn fn ->
      emit_call_fn asm fn;
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Custom_pre f ->
      f asm;
      if emit_displaced asm ~insn ~insn_addr ~insn_len then jmp_abs asm ret
  | Replace f -> f asm ~ret);
  Asm.assemble asm

let size template ~insn ~insn_addr ~insn_len =
  (* Dry run next to the original site: every branch target is then within
     rel32 range and the emitted length equals the final one. *)
  Bytes.length (emit template ~at:(insn_addr + 64) ~insn ~insn_addr ~insn_len)

let emit_evictee ~at ~insn ~insn_addr ~insn_len =
  emit Empty ~at ~insn ~insn_addr ~insn_len

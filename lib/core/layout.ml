module Iset = E9_bits.Iset

type t = {
  occupied : Iset.t;
  trampolines : Iset.t;  (* subset of [occupied]: what we allocated *)
}

(* Keep clear of the emulator's fixed homes so patched binaries cannot
   collide with the runtime stack or heap (see E9_emu.Machine). *)
let low_guard = 0x10000
let canonical_limit = 1 lsl 47
let heap_home = 0x6000_0000_0000
let heap_span = 1 lsl 40
let stack_home = 0x7fff_f000_0000
let stack_span = 1 lsl 28

let create ?(reserve_below_base = false) ?(block_size = 4096) (elf : Elf_file.t) =
  let occupied = Iset.create () in
  let floor_b x = x / block_size * block_size in
  let ceil_b x = (x + block_size - 1) / block_size * block_size in
  (* Negative displacements below the image and the NULL guard. *)
  Iset.add occupied ~lo:(-0x1_0000_0000_0000) ~hi:low_guard;
  Iset.add occupied ~lo:canonical_limit ~hi:(canonical_limit * 2);
  Iset.add occupied ~lo:heap_home ~hi:(heap_home + heap_span);
  Iset.add occupied ~lo:stack_home ~hi:(stack_home + stack_span);
  let min_base =
    List.fold_left
      (fun acc (s : Elf_file.segment) ->
        match s.ptype with Load -> min acc s.vaddr | Note | Other _ -> acc)
      max_int elf.segments
  in
  if reserve_below_base && min_base < max_int then
    Iset.add occupied ~lo:(-0x1_0000_0000_0000) ~hi:(floor_b min_base);
  List.iter
    (fun (s : Elf_file.segment) ->
      match s.ptype with
      | Load ->
          Iset.add occupied ~lo:(floor_b s.vaddr)
            ~hi:(ceil_b (s.vaddr + s.memsz))
      | Note | Other _ -> ())
    elf.segments;
  { occupied; trampolines = Iset.create () }

let alloc t ~size ~lo ~hi =
  match Iset.find_free t.occupied ~size ~lo ~hi with
  | Some addr ->
      Iset.add t.occupied ~lo:addr ~hi:(addr + size);
      Iset.add t.trampolines ~lo:addr ~hi:(addr + size);
      Some addr
  | None -> None

let is_free t ~addr ~size = Iset.is_free t.occupied ~lo:addr ~hi:(addr + size)

let probe t ~size ~lo ~hi = Iset.find_free t.occupied ~size ~lo ~hi

let probe_strided t ~size ~lo ~hi ~stride =
  Iset.find_free_strided t.occupied ~size ~lo ~hi ~stride

let release t ~addr ~size =
  Iset.remove t.occupied ~lo:addr ~hi:(addr + size);
  Iset.remove t.trampolines ~lo:addr ~hi:(addr + size)

let alloc_at t ~addr ~size =
  if is_free t ~addr ~size then begin
    Iset.add t.occupied ~lo:addr ~hi:(addr + size);
    Iset.add t.trampolines ~lo:addr ~hi:(addr + size);
    true
  end
  else false

let reserve t ~addr ~size = Iset.add t.occupied ~lo:addr ~hi:(addr + size)

let trampoline_extents t = Iset.intervals t.trampolines
let trampoline_bytes t = Iset.occupied t.trampolines

type occupancy = {
  occupied_intervals : int;
  trampoline_extents : int;
  trampoline_bytes : int;
}

let occupancy t =
  {
    occupied_intervals = Iset.count t.occupied;
    trampoline_extents = Iset.count t.trampolines;
    trampoline_bytes = Iset.occupied t.trampolines;
  }

module Iset = E9_bits.Iset

(* Shard arenas (DESIGN.md §10): when the rewriter splits the text into
   independently patched shards, each shard's arena may only place
   trampolines inside the 64 KiB address stripes it owns, so concurrent
   searches can never hand two shards overlapping extents — without any
   locking and without materializing the foreign stripes as occupied
   intervals. Ownership rotates pseudorandomly per row of [count]
   consecutive stripes: every row contains each owner exactly once (so the
   next owned stripe is always < 2·count stripes away), while the rotation
   decorrelates ownership from the power-of-two strides of joint-pun
   probes (a plain [index mod count] would starve shards whenever
   [stride / stripe_size] shares a factor with [count]). *)
(* Two ownership schemes share the stripe machinery:
   - [Modular]: the PR 4 fixed-span geometry — ownership rotates per row
     of [count] consecutive stripes, keyed by the shard ordinal.
   - [Range]: the plan-cache geometry (DESIGN.md §14) — a content-defined
     chunk covering text offsets [r_lo, r_hi) of a [total]-byte text owns
     exactly the stripes whose scrambled image lands inside its own
     range. Ownership is a function of the chunk's {e own} coordinates
     (and the text size), never of the chunk count or ordinal, so a
     revision that splits or merges chunks elsewhere leaves this chunk's
     stripe set — and therefore its cached trampoline placements —
     intact. Chunks partition the text, so the scheme partitions the
     stripes: disjointness holds without any arena seeing the others. *)
type stripe =
  | Modular of { index : int; count : int }
  | Range of { r_lo : int; r_hi : int; total : int }

(* One page per stripe: any pun window of a page or more (two or fewer
   fixed displacement bytes) contains stripes of every owner, so the
   narrow-window tactics keep working inside shard arenas instead of
   escalating; and a stripe never splits a loader page between shards. *)
let stripe_bits = 12
let stripe_size = 1 lsl stripe_bits

let row_mix r =
  (* Knuth-style multiplicative mix; the constant fits in 62-bit ints. *)
  ((r * 0x2545F4914F6CDD1D) land max_int) lsr 20

let stripe_owner ~count i =
  if count <= 1 then 0 else ((i + row_mix (i / count)) mod count + count) mod count

(* [Range] ownership: stripe [i] maps to a pseudorandom text offset; the
   chunk whose range contains that offset owns the stripe. The same
   multiplicative scramble as [row_mix] spreads each chunk's stripes
   uniformly over the whole trampoline address space (every chunk needs
   reachable stripes in every window class). *)
let range_image ~total i = ((i * 0x2545F4914F6CDD1D) land max_int) mod total

let owns st i =
  match st with
  | Modular { index; count } -> stripe_owner ~count i = index
  | Range { r_lo; r_hi; total } ->
      let o = range_image ~total i in
      o >= r_lo && o < r_hi

(* Next-fit cursors: one remembered resume point per window-span class
   (quarter-log2 of [hi - lo]: each class covers a 4-octave span band, so
   windows of similar-but-not-identical width share a resume point).
   Windows of similar span are issued by the same tactic shapes and drift
   slowly under S1, so resuming the first-fit scan where the last
   same-class allocation ended skips the packed prefix that produced the
   alloc_conflict rescans. Falling back to a full scan on a cursor miss
   preserves first-fit's success set exactly — the cursor only relocates
   placements, never turns a success into a failure. *)
let cursor_classes = 64

(* Why the most recent failed query failed — the tactic layer turns this
   into distinct reject reasons (and a deferral decision) instead of
   blaming every failure on allocator contention:
   - [Dead_window]: the create-time occupancy (guards + segments) alone
     already blocks every position, so NO allocator, serial or sharded,
     could ever serve the window. Identical for every shard and jobs
     value, since the base set is shared.
   - [Foreign_stripe]: the merged occupancy has room but the extent falls
     in stripes this arena does not own — retrying against the absorbed
     layout after the join can succeed.
   - [Conflict]: a genuine dynamic collision with earlier trampolines. *)
type denial = No_denial | Dead_window | Foreign_stripe | Conflict

type t = {
  base : Iset.t;
      (* create-time occupancy, never mutated afterwards; shared (not
         copied) across every shard arena *)
  occupied : Iset.t;
  trampolines : Iset.t;  (* subset of [occupied]: what we allocated *)
  stripe : stripe option;
  cursors : int array;
  mutable cursor_hits : int;
  mutable cursor_misses : int;
  mutable resume_stripe : int;
      (* start address of the owned stripe that served the last striped
         search ([min_int] = none yet): striped searches resume here and
         fall back to the window start, like the span-class cursors *)
  mutable stripe_rotations : int;
  mutable last_denial : denial;
}

(* Keep clear of the emulator's fixed homes so patched binaries cannot
   collide with the runtime stack or heap (see E9_emu.Machine). *)
let low_guard = 0x10000
let canonical_limit = 1 lsl 47
let heap_home = 0x6000_0000_0000
let heap_span = 1 lsl 40
let stack_home = 0x7fff_f000_0000
let stack_span = 1 lsl 28

let create ?(reserve_below_base = false) ?(block_size = 4096) (elf : Elf_file.t) =
  let occupied = Iset.create () in
  let floor_b x = x / block_size * block_size in
  let ceil_b x = (x + block_size - 1) / block_size * block_size in
  (* Negative displacements below the image and the NULL guard. *)
  Iset.add occupied ~lo:(-0x1_0000_0000_0000) ~hi:low_guard;
  Iset.add occupied ~lo:canonical_limit ~hi:(canonical_limit * 2);
  Iset.add occupied ~lo:heap_home ~hi:(heap_home + heap_span);
  Iset.add occupied ~lo:stack_home ~hi:(stack_home + stack_span);
  let min_base =
    List.fold_left
      (fun acc (s : Elf_file.segment) ->
        match s.ptype with Load -> min acc s.vaddr | Note | Other _ -> acc)
      max_int elf.segments
  in
  if reserve_below_base && min_base < max_int then
    Iset.add occupied ~lo:(-0x1_0000_0000_0000) ~hi:(floor_b min_base);
  List.iter
    (fun (s : Elf_file.segment) ->
      match s.ptype with
      | Load ->
          Iset.add occupied ~lo:(floor_b s.vaddr)
            ~hi:(ceil_b (s.vaddr + s.memsz))
      | Note | Other _ -> ())
    elf.segments;
  { base = Iset.copy occupied;
    occupied;
    trampolines = Iset.create ();
    stripe = None;
    cursors = Array.make cursor_classes min_int;
    cursor_hits = 0;
    cursor_misses = 0;
    resume_stripe = min_int;
    stripe_rotations = 0;
    last_denial = No_denial }

let shard_with t stripe =
  (* Both snapshots are O(1): the interval tree is persistent, so the
     arena holds the parent's occupancy as an immutable shared prefix and
     its own allocations as a private delta of tree paths. *)
  { base = t.base;
    occupied = Iset.copy t.occupied;
    trampolines = Iset.create ();
    stripe;
    cursors = Array.make cursor_classes min_int;
    cursor_hits = 0;
    cursor_misses = 0;
    resume_stripe = min_int;
    stripe_rotations = 0;
    last_denial = No_denial }

let shard t ~index ~count =
  if index < 0 || index >= count then invalid_arg "Layout.shard";
  shard_with t (if count <= 1 then None else Some (Modular { index; count }))

let shard_range t ~lo ~hi ~total =
  if lo < 0 || hi <= lo || hi > total || total <= 0 then
    invalid_arg "Layout.shard_range";
  shard_with t
    (if hi - lo >= total then None else Some (Range { r_lo = lo; r_hi = hi; total }))

let absorb ~dst src =
  Iset.iter src.trampolines (fun ~lo ~hi ->
      Iset.add dst.occupied ~lo ~hi;
      Iset.add dst.trampolines ~lo ~hi);
  dst.cursor_hits <- dst.cursor_hits + src.cursor_hits;
  dst.cursor_misses <- dst.cursor_misses + src.cursor_misses;
  dst.stripe_rotations <- dst.stripe_rotations + src.stripe_rotations

let cursor_hits t = t.cursor_hits
let cursor_misses t = t.cursor_misses
let stripe_rotations t = t.stripe_rotations
let last_denial t = t.last_denial

(* ------------------------------------------------------------------ *)
(* Stripe-constrained searches                                         *)
(* ------------------------------------------------------------------ *)

(* Start address of the lowest owned stripe after stripe [i]. Under
   [Modular] the per-row rotation guarantees one within 2·count stripes;
   under [Range] the expected gap is [total / (r_hi - r_lo)] stripes, and
   a fixed scan cap (16 GiB of stripe space — beyond any ±2 GiB window)
   turns the pathological tail into a deterministic "exhausted" answer
   instead of an unbounded walk. *)
let next_own_stripe st i =
  match st with
  | Modular _ ->
      let j = ref (i + 1) in
      while not (owns st !j) do incr j done;
      !j lsl stripe_bits
  | Range _ ->
      let cap = 1 lsl 22 in
      let rec go j n =
        if n > cap then max_int lsr 1
        else if owns st j then j lsl stripe_bits
        else go (j + 1) (n + 1)
      in
      go (i + 1) 0

let range_owned st ~addr ~size =
  let last = (addr + size - 1) asr stripe_bits in
  let rec go i = i > last || (owns st i && go (i + 1)) in
  go (addr asr stripe_bits)

(* Repeat [find ~lo] until it yields a start whose whole extent lies in
   owned stripes. [find ~lo] must return the lowest admissible start
   >= lo, so jumping [lo] to the next owned stripe start skips foreign
   and exhausted stripes wholesale. [lo] is advanced to an owned stripe
   {e before} each interval search: a window that contains no owned
   stripe at all — the common case for narrow pun windows under many
   shards — costs only the arithmetic, never a map lookup. *)
let find_owned st ~size ~hi find ~lo =
  if size > stripe_size then None
  else begin
    let rec go lo =
      let lo =
        if owns st (lo asr stripe_bits) then lo
        else next_own_stripe st (lo asr stripe_bits)
      in
      if lo > hi then None
      else
        match find ~lo with
        | None -> None
        | Some a ->
            if range_owned st ~addr:a ~size then Some a
            else go (next_own_stripe st (a asr stripe_bits))
    in
    go lo
  end

(* Failure classification (see {!denial}). Runs only on the failure
   path: two extra O(log n) probes against the base and the unstriped
   occupancy, far cheaper than the rescans the old misclassification
   provoked downstream. *)
let note_denial t d = t.last_denial <- d

(* Conflict-aware rotation: a window the arena could not serve because
   its free space sat in foreign stripes means this arena's low owned
   stripes are saturated or out of reach — advance the resume point one
   owned stripe so subsequent searches spread instead of re-plowing the
   same prefix. Pure per-arena state: stripe *ownership* never changes
   (disjointness requires every arena to agree on it). *)
let rotate_resume t st =
  t.stripe_rotations <- t.stripe_rotations + 1;
  let cur = if t.resume_stripe = min_int then low_guard else t.resume_stripe in
  t.resume_stripe <- next_own_stripe st (cur asr stripe_bits)

(* Striped window search: resume from the stripe that served the last
   allocation when it lies inside the window, falling back to the full
   window on a miss — the success set stays exactly first-fit's, only
   placements move. *)
let find_striped t ~lo ~hi search =
  let r =
    let rs = t.resume_stripe in
    if rs > lo && rs <= hi then
      match search rs with Some _ as x -> x | None -> search lo
    else search lo
  in
  (match r with
  | Some a -> t.resume_stripe <- (a asr stripe_bits) lsl stripe_bits
  | None -> ());
  r


let find_free t ~size ~lo ~hi =
  match t.stripe with
  | None -> (
      match Iset.find_free t.occupied ~size ~lo ~hi with
      | Some _ as r -> r
      | None ->
          note_denial t
            (if Iset.find_free t.base ~size ~lo ~hi = None then Dead_window
             else Conflict);
          None)
  | Some st -> (
      let find ~lo = Iset.find_free t.occupied ~size ~lo ~hi in
      let search l = find_owned st ~size ~hi find ~lo:l in
      match find_striped t ~lo ~hi search with
      | Some _ as r -> r
      | None ->
          (if Iset.find_free t.base ~size ~lo ~hi = None then
             note_denial t Dead_window
           else if Iset.find_free t.occupied ~size ~lo ~hi <> None then begin
             note_denial t Foreign_stripe;
             rotate_resume t st
           end
           else note_denial t Conflict);
          None)


let span_class ~lo ~hi =
  let rec go n c =
    if n <= 1 || c >= cursor_classes - 1 then c else go (n lsr 2) (c + 1)
  in
  go (max (hi - lo) 1) 0

let alloc t ~size ~lo ~hi =
  let c = span_class ~lo ~hi in
  let hint = t.cursors.(c) in
  let found =
    if hint > lo && hint <= hi then
      match find_free t ~size ~lo:hint ~hi with
      | Some _ as r ->
          t.cursor_hits <- t.cursor_hits + 1;
          r
      | None ->
          t.cursor_misses <- t.cursor_misses + 1;
          find_free t ~size ~lo ~hi
    else find_free t ~size ~lo ~hi
  in
  match found with
  | Some addr ->
      Iset.add t.occupied ~lo:addr ~hi:(addr + size);
      Iset.add t.trampolines ~lo:addr ~hi:(addr + size);
      t.cursors.(c) <- addr + size;
      Some addr
  | None -> None

let is_free t ~addr ~size =
  let free = Iset.is_free t.occupied ~lo:addr ~hi:(addr + size) in
  let owned =
    match t.stripe with None -> true | Some st -> range_owned st ~addr ~size
  in
  if free && owned then true
  else begin
    note_denial t
      (if not (Iset.is_free t.base ~lo:addr ~hi:(addr + size)) then Dead_window
       else if not owned then Foreign_stripe
       else Conflict);
    false
  end

let probe t ~size ~lo ~hi = find_free t ~size ~lo ~hi

let probe_strided t ~size ~lo ~hi ~stride =
  match t.stripe with
  | None -> (
      match Iset.find_free_strided t.occupied ~size ~lo ~hi ~stride with
      | Some _ as r -> r
      | None ->
          note_denial t
            (if Iset.find_free_strided t.base ~size ~lo ~hi ~stride = None then
               Dead_window
             else Conflict);
          None)
  | Some st -> (
      (* Keep candidates ≡ the caller's [lo] (mod stride) while restarting
         the scan at owned-stripe starts. *)
      let base = lo in
      let find ~lo =
        let lo =
          if lo <= base then base
          else base + ((lo - base + stride - 1) / stride * stride)
        in
        Iset.find_free_strided t.occupied ~size ~lo ~hi ~stride
      in
      let search l = find_owned st ~size ~hi find ~lo:l in
      match find_striped t ~lo ~hi search with
      | Some _ as r -> r
      | None ->
          (if Iset.find_free_strided t.base ~size ~lo ~hi ~stride = None then
             note_denial t Dead_window
           else if
             Iset.find_free_strided t.occupied ~size ~lo ~hi ~stride <> None
           then begin
             note_denial t Foreign_stripe;
             rotate_resume t st
           end
           else note_denial t Conflict);
          None)

let release t ~addr ~size =
  Iset.remove t.occupied ~lo:addr ~hi:(addr + size);
  Iset.remove t.trampolines ~lo:addr ~hi:(addr + size)

let alloc_at t ~addr ~size =
  if is_free t ~addr ~size then begin
    Iset.add t.occupied ~lo:addr ~hi:(addr + size);
    Iset.add t.trampolines ~lo:addr ~hi:(addr + size);
    true
  end
  else false

let reserve t ~addr ~size = Iset.add t.occupied ~lo:addr ~hi:(addr + size)

let trampoline_extents t = Iset.intervals t.trampolines
let trampoline_bytes t = Iset.occupied t.trampolines

type occupancy = {
  occupied_intervals : int;
  trampoline_extents : int;
  trampoline_bytes : int;
}

let occupancy t =
  {
    occupied_intervals = Iset.count t.occupied;
    trampoline_extents = Iset.count t.trampolines;
    trampoline_bytes = Iset.occupied t.trampolines;
  }

module Buf = E9_bits.Buf

type outcome = Applied of Stats.tactic | Failed | Deferred

type site_plan = {
  s_addr : int;
  s_outcome : outcome;
  s_tramps : (int * bytes) list;
  s_traps : Loadmap.trap list;
  s_class : int;
}

type chunk = {
  c_lo : int;
  c_len : int;
  c_entry : int;
  c_exit : int;
  c_sites : Frontend.site list;
  c_plans : site_plan list;
  c_diff : (int * string) list;
  c_locks : (int * int) list;
  c_dead : (int * int) list;
}

type store = { find : string -> chunk option; add : string -> chunk -> unit }
type config = { store : store; spec_key : lo:int -> len:int -> string }

let key ~hash ~addr ~len ~env =
  Printf.sprintf "p1:%s:%x+%x:%s" hash addr len
    (E9_bits.Fnv.to_hex (E9_bits.Fnv.hash64_string env))

(* ------------------------------------------------------------------ *)
(* Text diffs                                                          *)
(* ------------------------------------------------------------------ *)

let diff ~pristine ~current ~lo ~len =
  let out = ref [] in
  let i = ref 0 in
  while !i < len do
    if Bytes.unsafe_get pristine (lo + !i) <> Bytes.unsafe_get current (lo + !i)
    then begin
      let start = !i in
      while
        !i < len
        && Bytes.unsafe_get pristine (lo + !i)
           <> Bytes.unsafe_get current (lo + !i)
      do
        incr i
      done;
      out :=
        (start, Bytes.sub_string current (lo + start) (!i - start)) :: !out
    end
    else incr i
  done;
  List.rev !out

let apply_diff buf ~lo d =
  List.iter
    (fun (off, s) -> Buf.blit_in buf ~pos:(lo + off) (Bytes.of_string s))
    d

(* ------------------------------------------------------------------ *)
(* In-memory store                                                     *)
(* ------------------------------------------------------------------ *)

type table = { mutex : Mutex.t; tbl : (string, chunk) Hashtbl.t }

let create_table () = { mutex = Mutex.create (); tbl = Hashtbl.create 256 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let table_store t =
  {
    find = (fun k -> locked t (fun () -> Hashtbl.find_opt t.tbl k));
    add = (fun k v -> locked t (fun () -> Hashtbl.replace t.tbl k v));
  }

let table_size t = locked t (fun () -> Hashtbl.length t.tbl)

let table_items t =
  locked t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])

let table_load t items =
  locked t (fun () ->
      List.iter (fun (k, v) -> Hashtbl.replace t.tbl k v) items)

(* ------------------------------------------------------------------ *)
(* File persistence                                                    *)
(* ------------------------------------------------------------------ *)

(* Marshal is not stable across compiler versions or type changes, so
   the header pins both: a reader that does not recognize the header
   starts cold instead of misinterpreting bytes. *)
let magic = "e9plan1\n"

let save_table t file =
  let items = table_items t in
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     Marshal.to_channel oc (items : (string * chunk) list) [];
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file

let load_table file =
  let t = create_table () in
  (if Sys.file_exists file then
     try
       let ic = open_in_bin file in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let hdr = really_input_string ic (String.length magic) in
           if hdr = magic then
             table_load t (Marshal.from_channel ic : (string * chunk) list))
     with _ -> ());
  t

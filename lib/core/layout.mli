(** The rewriter's view of the patched program's virtual address space:
    which addresses can host trampolines.

    Initially occupied (hence unavailable): the negative range and the
    first 64 KiB (where a punned displacement would underflow — the paper's
    "invalid negative address range"), every loaded segment of the binary,
    the region above the 47-bit canonical boundary, the emulator's heap and
    stack homes, and — for shared objects — the region below the load base,
    which the dynamic linker populates with other objects (paper §5.1).

    Every successful trampoline allocation reserves its extent, feeding
    back into later punning decisions exactly as in E9Patch. *)

type t

(** [create ?reserve_below_base ?block_size elf] builds the initial
    occupancy from the binary's segments. [reserve_below_base] models the
    shared-object case (default false). Segment reservations are rounded
    out to [block_size] bytes (default one page): the loader's trampoline
    mappings are block-granular, so a trampoline must never share a block
    with original content. Pass the page-grouping granularity in bytes. *)
val create : ?reserve_below_base:bool -> ?block_size:int -> Elf_file.t -> t

(** [shard t ~index ~count] is a private arena for one shard of a
    domain-parallel rewrite (DESIGN.md §10/§12): it shares [t]'s
    immutable base occupancy and snapshots the current occupancy (both
    O(1) — the interval tree is persistent, so the arena's own
    allocations form a private delta of tree paths over the shared
    prefix) and constrains every subsequent search to the address
    stripes owned by [index]. Stripe ownership partitions the address
    space deterministically across [count] arenas, so concurrent shards
    can never allocate overlapping extents; with [count = 1] no
    constraint applies. [t] is not mutated. *)
val shard : t -> index:int -> count:int -> t

(** [shard_range t ~lo ~hi ~total] is {!shard} for the content-defined
    chunk geometry of the plan cache (DESIGN.md §14): the arena for the
    chunk covering text offsets [lo, hi) of a [total]-byte text. It owns
    exactly the stripes whose pseudorandom image under a fixed scramble
    lands in [lo, hi) — a function of the chunk's own coordinates and
    the text size only, never of the chunk count — so a revision that
    splits or merges chunks elsewhere leaves this chunk's stripe set
    (and its cached trampoline placements) intact, while chunks
    partitioning the text still partition the stripes: concurrent
    arenas stay disjoint. [hi - lo >= total] (one chunk covers
    everything) applies no constraint. *)
val shard_range : t -> lo:int -> hi:int -> total:int -> t

(** Why the most recent failed query ({!alloc}, {!probe},
    {!probe_strided}, {!is_free}, {!alloc_at}) failed. [Dead_window]: the
    create-time base occupancy (guards + segments) alone blocks every
    position — no allocator, serial or sharded, could ever serve the
    window, so retrying is pointless. [Foreign_stripe]: the merged
    occupancy has room, but only inside stripes this arena does not own —
    retrying against the absorbed layout after the parallel join can
    succeed. [Conflict]: a genuine dynamic collision with previously
    allocated trampolines. Classification runs only on failure paths and
    is deterministic per arena (the base set is shared by all shards). *)
type denial = No_denial | Dead_window | Foreign_stripe | Conflict

val last_denial : t -> denial

(** How many times a [Foreign_stripe] denial rotated the arena's striped
    resume point forward (conflict-aware rotation: spreads subsequent
    searches across the owned stripes instead of re-plowing a saturated
    prefix; ownership itself never rotates — disjointness requires all
    arenas to agree on it). *)
val stripe_rotations : t -> int

(** [absorb ~dst src] merges the trampoline extents allocated in the
    shard arena [src] into [dst]'s occupancy and trampoline sets, and
    accumulates its cursor counters. Extents are disjoint by stripe
    ownership, so absorbing shards in any fixed order yields the same
    [dst]. *)
val absorb : dst:t -> t -> unit

(** Next-fit cursor telemetry: allocations that resumed from the
    remembered per-window-class scan position ([cursor_hits]) vs. ones
    where the resumed scan failed and a full first-fit rescan ran
    ([cursor_misses]). *)
val cursor_hits : t -> int

val cursor_misses : t -> int

(** [alloc t ~size ~lo ~hi] reserves [size] bytes whose start lies in
    [lo, hi] (inclusive), preferring the lowest address; returns the start,
    or [None] if the window has no free gap. A per-window-class next-fit
    cursor resumes the scan where the previous same-class allocation
    ended, falling back to a full first-fit scan on a miss — so the set of
    windows that allocate successfully is exactly first-fit's. *)
val alloc : t -> size:int -> lo:int -> hi:int -> int option

(** [is_free t ~addr ~size] — true when [addr, addr+size) is entirely
    unoccupied (used by joint-pun candidate probing; does not reserve).
    In a shard arena the range must also lie in owned stripes. *)
val is_free : t -> addr:int -> size:int -> bool

(** [probe t ~size ~lo ~hi] is like {!alloc} but reserves nothing — used to
    test joint-pun candidates cheaply. *)
val probe : t -> size:int -> lo:int -> hi:int -> int option

(** [probe_strided t ~size ~lo ~hi ~stride] finds a free range whose start
    is congruent to [lo] modulo [stride] — the query shape produced by
    joint puns, where pinned low displacement bytes impose a residue.
    Reserves nothing. *)
val probe_strided :
  t -> size:int -> lo:int -> hi:int -> stride:int -> int option

(** [alloc_at t ~addr ~size] claims the exact range as a trampoline if it
    is free; returns whether it succeeded. *)
val alloc_at : t -> addr:int -> size:int -> bool

(** [release t ~addr ~size] rolls back a reservation made by {!alloc} /
    {!alloc_at} (used when the second half of a joint commit fails). *)
val release : t -> addr:int -> size:int -> unit

(** [reserve t ~addr ~size] marks a range occupied unconditionally. *)
val reserve : t -> addr:int -> size:int -> unit

(** [trampoline_extents t] lists the ranges allocated via {!alloc} (and
    {!reserve} with [~track:true] semantics are excluded): the input to
    physical page grouping. *)
val trampoline_extents : t -> (int * int) list

(** [trampoline_bytes t] is the total size of allocated trampolines. *)
val trampoline_bytes : t -> int

(** Point-in-time allocator gauges for the observability layer:
    [occupied_intervals] counts disjoint occupied ranges (fragmentation),
    [trampoline_extents] the disjoint allocated trampoline ranges. *)
type occupancy = {
  occupied_intervals : int;
  trampoline_extents : int;
  trampoline_bytes : int;
}

val occupancy : t -> occupancy

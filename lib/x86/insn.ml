type size = B | L | Q
type scale = S1 | S2 | S4 | S8

type mem = {
  base : Reg.t option;
  index : (Reg.t * scale) option;
  disp : int;
  rip_rel : bool;
}

type operand = Reg of Reg.t | Imm of int | Mem of mem
type alu = Add | Adc | Or | And | Sub | Sbb | Xor | Cmp | Test
type shift = Shl | Shr | Sar

type cc =
  | O
  | NO
  | B_
  | AE
  | E
  | NE
  | BE
  | A
  | S_
  | NS
  | P
  | NP
  | L_
  | GE
  | LE
  | G

type t =
  | Mov of size * operand * operand
  | Movabs of Reg.t * int64
  | Lea of Reg.t * mem
  | Alu of alu * size * operand * operand
  | Imul of Reg.t * operand
  | Movzx of Reg.t * operand  (* byte r/m zero-extended into a 64-bit reg *)
  | Movsx of Reg.t * operand  (* byte r/m sign-extended into a 64-bit reg *)
  | Setcc of cc * operand  (* byte r/m := condition *)
  | Cmov of cc * Reg.t * operand  (* 64-bit conditional move *)
  | Neg of size * operand
  | Not of size * operand
  | Inc of size * operand
  | Dec of size * operand
  | Shift of shift * size * operand * int
  | Push of Reg.t
  | Pop of Reg.t
  | Pushfq
  | Popfq
  | Call of int
  | Call_ind of operand
  | Ret
  | Jmp of int
  | Jmp_short of int
  | Jmp_ind of operand
  | Jcc of cc * int
  | Jcc_short of cc * int
  | Nop of int
  | Endbr64
  | Int3
  | Int of int
  | Syscall
  | Ud2
  | Unknown of int

let cc_all = [| O; NO; B_; AE; E; NE; BE; A; S_; NS; P; NP; L_; GE; LE; G |]

let cc_index c =
  let rec find i = if cc_all.(i) == c then i else find (i + 1) in
  find 0

let cc_of_index i =
  if i < 0 || i > 15 then invalid_arg "Insn.cc_of_index";
  cc_all.(i)

let mem ?base ?index ?(disp = 0) () = { base; index; disp; rip_rel = false }
let rip_mem disp = { base = None; index = None; disp; rip_rel = true }
let scale_factor = function S1 -> 1 | S2 -> 2 | S4 -> 4 | S8 -> 8

(* Explicit operands, destination first — the [op[0]], [op[1]] the tool
   matcher exposes. Branch displacements are attributes ([target]), not
   operands; indirect branches expose their r/m operand. *)
let operands = function
  | Mov (_, dst, src) | Alu (_, _, dst, src) -> [ dst; src ]
  | Movabs (r, v) -> [ Reg r; Imm (Int64.to_int v) ]
  | Lea (r, m) -> [ Reg r; Mem m ]
  | Imul (r, op) | Movzx (r, op) | Movsx (r, op) | Cmov (_, r, op) ->
      [ Reg r; op ]
  | Setcc (_, op) | Neg (_, op) | Not (_, op) | Inc (_, op) | Dec (_, op) ->
      [ op ]
  | Shift (_, _, dst, n) -> [ dst; Imm n ]
  | Push r | Pop r -> [ Reg r ]
  | Jmp_ind op | Call_ind op -> [ op ]
  | Int n -> [ Imm n ]
  | Pushfq | Popfq | Call _ | Ret | Jmp _ | Jmp_short _ | Jcc _
  | Jcc_short _ | Nop _ | Endbr64 | Int3 | Syscall | Ud2 | Unknown _ ->
      []

(* Registers an operand list mentions (value or address component). *)
let regs_of_operand = function
  | Reg r -> [ r ]
  | Imm _ -> []
  | Mem m ->
      (match m.base with Some b -> [ b ] | None -> [])
      @ (match m.index with Some (i, _) -> [ i ] | None -> [])

let uses_reg i r =
  List.exists
    (fun op -> List.exists (Reg.equal r) (regs_of_operand op))
    (operands i)

let cc_name = function
  | O -> "o"
  | NO -> "no"
  | B_ -> "b"
  | AE -> "ae"
  | E -> "e"
  | NE -> "ne"
  | BE -> "be"
  | A -> "a"
  | S_ -> "s"
  | NS -> "ns"
  | P -> "p"
  | NP -> "np"
  | L_ -> "l"
  | GE -> "ge"
  | LE -> "le"
  | G -> "g"

let alu_name = function
  | Add -> "add"
  | Adc -> "adc"
  | Sbb -> "sbb"
  | Or -> "or"
  | And -> "and"
  | Sub -> "sub"
  | Xor -> "xor"
  | Cmp -> "cmp"
  | Test -> "test"

let shift_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar"

let reg_name sz r =
  match sz with B -> Reg.name8 r | L -> Reg.name32 r | Q -> Reg.name64 r

let pp_mem ppf m =
  if m.rip_rel then Format.fprintf ppf "%d(%%rip)" m.disp
  else begin
    if m.disp <> 0 then Format.fprintf ppf "%d" m.disp;
    Format.pp_print_char ppf '(';
    (match m.base with
    | Some b -> Format.pp_print_string ppf (Reg.name64 b)
    | None -> ());
    (match m.index with
    | Some (r, s) ->
        Format.fprintf ppf ",%s,%d" (Reg.name64 r) (scale_factor s)
    | None -> ());
    Format.pp_print_char ppf ')'
  end

let pp_operand sz ppf = function
  | Reg r -> Format.pp_print_string ppf (reg_name sz r)
  | Imm i -> Format.fprintf ppf "$%d" i
  | Mem m -> pp_mem ppf m

let size_suffix = function B -> "b" | L -> "l" | Q -> "q"

let pp ppf insn =
  let two name sz dst src =
    Format.fprintf ppf "%s%s %a,%a" name (size_suffix sz) (pp_operand sz) src
      (pp_operand sz) dst
  in
  match insn with
  | Mov (sz, dst, src) -> two "mov" sz dst src
  | Movabs (r, v) -> Format.fprintf ppf "movabs $0x%Lx,%s" v (Reg.name64 r)
  | Lea (r, m) -> Format.fprintf ppf "lea %a,%s" pp_mem m (Reg.name64 r)
  | Alu (op, sz, dst, src) -> two (alu_name op) sz dst src
  | Imul (r, src) ->
      Format.fprintf ppf "imul %a,%s" (pp_operand Q) src (Reg.name64 r)
  | Movzx (r, src) ->
      Format.fprintf ppf "movzbq %a,%s" (pp_operand B) src (Reg.name64 r)
  | Movsx (r, src) ->
      Format.fprintf ppf "movsbq %a,%s" (pp_operand B) src (Reg.name64 r)
  | Setcc (c, dst) ->
      Format.fprintf ppf "set%s %a" (cc_name c) (pp_operand B) dst
  | Cmov (c, r, src) ->
      Format.fprintf ppf "cmov%s %a,%s" (cc_name c) (pp_operand Q) src
        (Reg.name64 r)
  | Neg (sz, dst) ->
      Format.fprintf ppf "neg%s %a" (size_suffix sz) (pp_operand sz) dst
  | Not (sz, dst) ->
      Format.fprintf ppf "not%s %a" (size_suffix sz) (pp_operand sz) dst
  | Inc (sz, dst) ->
      Format.fprintf ppf "inc%s %a" (size_suffix sz) (pp_operand sz) dst
  | Dec (sz, dst) ->
      Format.fprintf ppf "dec%s %a" (size_suffix sz) (pp_operand sz) dst
  | Shift (sh, sz, dst, n) ->
      Format.fprintf ppf "%s%s $%d,%a" (shift_name sh) (size_suffix sz) n
        (pp_operand sz) dst
  | Push r -> Format.fprintf ppf "push %s" (Reg.name64 r)
  | Pop r -> Format.fprintf ppf "pop %s" (Reg.name64 r)
  | Pushfq -> Format.pp_print_string ppf "pushfq"
  | Popfq -> Format.pp_print_string ppf "popfq"
  | Call rel -> Format.fprintf ppf "callq .%+d" rel
  | Call_ind op -> Format.fprintf ppf "callq *%a" (pp_operand Q) op
  | Ret -> Format.pp_print_string ppf "retq"
  | Jmp rel -> Format.fprintf ppf "jmpq .%+d" rel
  | Jmp_short rel -> Format.fprintf ppf "jmp .%+d" rel
  | Jmp_ind op -> Format.fprintf ppf "jmpq *%a" (pp_operand Q) op
  | Jcc (c, rel) -> Format.fprintf ppf "j%s .%+d" (cc_name c) rel
  | Jcc_short (c, rel) -> Format.fprintf ppf "j%s(short) .%+d" (cc_name c) rel
  | Nop n -> Format.fprintf ppf "nop(%d)" n
  | Endbr64 -> Format.pp_print_string ppf "endbr64"
  | Int3 -> Format.pp_print_string ppf "int3"
  | Int n -> Format.fprintf ppf "int $0x%x" n
  | Syscall -> Format.pp_print_string ppf "syscall"
  | Ud2 -> Format.pp_print_string ppf "ud2"
  | Unknown b -> Format.fprintf ppf "(bad:%02x)" b

let to_string insn = Format.asprintf "%a" pp insn
let equal (a : t) (b : t) = a = b

let is_jump = function
  | Insn.Jmp _ | Insn.Jmp_short _ | Insn.Jmp_ind _ | Insn.Jcc _
  | Insn.Jcc_short _ ->
      true
  | Insn.Mov _ | Insn.Movabs _ | Insn.Lea _ | Insn.Alu _ | Insn.Imul _
  | Insn.Movzx _ | Insn.Movsx _ | Insn.Setcc _ | Insn.Cmov _ | Insn.Neg _
  | Insn.Not _ | Insn.Inc _ | Insn.Dec _ | Insn.Shift _ | Insn.Push _
  | Insn.Pop _ | Insn.Pushfq | Insn.Popfq | Insn.Call _ | Insn.Call_ind _
  | Insn.Ret | Insn.Nop _ | Insn.Endbr64 | Insn.Int3 | Insn.Int _
  | Insn.Syscall | Insn.Ud2 | Insn.Unknown _ ->
      false

let mem_written = function
  | Insn.Mov (_, Insn.Mem m, _) -> Some m
  | Insn.Alu
      ( (Insn.Add | Insn.Adc | Insn.Or | Insn.And | Insn.Sub | Insn.Sbb | Insn.Xor),
        _, Insn.Mem m, _ ) ->
      Some m
  | Insn.Inc (_, Insn.Mem m) | Insn.Dec (_, Insn.Mem m) -> Some m
  | Insn.Shift (_, _, Insn.Mem m, _) -> Some m
  | Insn.Setcc (_, Insn.Mem m) -> Some m
  | Insn.Neg (_, Insn.Mem m) | Insn.Not (_, Insn.Mem m) -> Some m
  | Insn.Movzx _ | Insn.Movsx _ | Insn.Cmov _ | Insn.Setcc _ | Insn.Neg _
  | Insn.Not _ | Insn.Inc _ | Insn.Dec _
  | Insn.Alu ((Insn.Cmp | Insn.Test), _, _, _)
  | Insn.Mov _ | Insn.Movabs _ | Insn.Lea _ | Insn.Alu _ | Insn.Imul _
  | Insn.Shift _ | Insn.Push _ | Insn.Pop _ | Insn.Pushfq | Insn.Popfq
  | Insn.Call _ | Insn.Call_ind _ | Insn.Ret | Insn.Jmp _ | Insn.Jmp_short _
  | Insn.Jmp_ind _ | Insn.Jcc _ | Insn.Jcc_short _ | Insn.Nop _
  | Insn.Endbr64 | Insn.Int3 | Insn.Int _ | Insn.Syscall | Insn.Ud2
  | Insn.Unknown _ ->
      None

let is_heap_write insn =
  match mem_written insn with
  | Some m ->
      (not m.rip_rel)
      && (match m.base with
         | Some r -> not (Reg.equal r Reg.RSP)
         | None -> false)
  | None -> false

let is_control_flow = function
  | Insn.Jmp _ | Insn.Jmp_short _ | Insn.Jmp_ind _ | Insn.Jcc _
  | Insn.Jcc_short _ | Insn.Call _ | Insn.Call_ind _ | Insn.Ret | Insn.Int3
  | Insn.Int _ | Insn.Ud2 ->
      true
  | Insn.Mov _ | Insn.Movabs _ | Insn.Lea _ | Insn.Alu _ | Insn.Imul _
  | Insn.Movzx _ | Insn.Movsx _ | Insn.Setcc _ | Insn.Cmov _ | Insn.Neg _
  | Insn.Not _ | Insn.Inc _ | Insn.Dec _ | Insn.Shift _ | Insn.Push _
  | Insn.Pop _ | Insn.Pushfq | Insn.Popfq | Insn.Nop _ | Insn.Endbr64
  | Insn.Syscall | Insn.Unknown _ ->
      false

let uses_rip_mem = function
  | Insn.Mov (_, a, b) | Insn.Alu (_, _, a, b) ->
      let rip = function Insn.Mem m -> m.rip_rel | _ -> false in
      rip a || rip b
  | Insn.Lea (_, m) -> m.Insn.rip_rel
  | Insn.Shift (_, _, a, _) | Insn.Call_ind a | Insn.Jmp_ind a
  | Insn.Setcc (_, a) | Insn.Neg (_, a) | Insn.Not (_, a) | Insn.Inc (_, a)
  | Insn.Dec (_, a) ->
      (match a with Insn.Mem m -> m.rip_rel | _ -> false)
  | Insn.Imul (_, a) | Insn.Movzx (_, a) | Insn.Movsx (_, a)
  | Insn.Cmov (_, _, a) ->
      (match a with Insn.Mem m -> m.rip_rel | _ -> false)
  | _ -> false

let branch_rel = function
  | Insn.Jmp rel | Insn.Jmp_short rel | Insn.Jcc (_, rel)
  | Insn.Jcc_short (_, rel) | Insn.Call rel ->
      Some rel
  | _ -> None

let is_pc_relative insn =
  match branch_rel insn with Some _ -> true | None -> uses_rip_mem insn

(** Abstract syntax of the x86_64 instruction subset.

    This subset covers the instruction classes that dominate compiled code
    (data movement, ALU operations, stack traffic, and all control flow) and
    is closed under the encoder ({!Encode}), the decoder ({!Decode}), and
    the emulator ([E9_emu]). PC-relative displacements ([rel8]/[rel32]) are
    stored relative to the *end* of the instruction, exactly as encoded. *)

(** Operand width: 8-bit, 32-bit, 64-bit. (16-bit operations are not
    generated; the 0x66 prefix appears only as jump padding.) *)
type size = B | L | Q

(** SIB index scale factor. *)
type scale = S1 | S2 | S4 | S8

(** A memory operand. When [rip_rel] is true, [base] and [index] must be
    [None] and [disp] is relative to the end of the instruction. *)
type mem = {
  base : Reg.t option;
  index : (Reg.t * scale) option;
  disp : int;
  rip_rel : bool;
}

type operand = Reg of Reg.t | Imm of int | Mem of mem

(** Two-operand ALU operations ([Cmp] and [Test] write only flags;
    [Adc]/[Sbb] consume the carry flag). *)
type alu = Add | Adc | Or | And | Sub | Sbb | Xor | Cmp | Test

type shift = Shl | Shr | Sar

(** Condition codes in hardware ([tttn]) encoding order. *)
type cc =
  | O
  | NO
  | B_
  | AE
  | E
  | NE
  | BE
  | A
  | S_
  | NS
  | P
  | NP
  | L_
  | GE
  | LE
  | G

type t =
  | Mov of size * operand * operand  (** [Mov (sz, dst, src)]; not both mem *)
  | Movabs of Reg.t * int64  (** 64-bit immediate load ([b8+r]) *)
  | Lea of Reg.t * mem
  | Alu of alu * size * operand * operand  (** [Alu (op, sz, dst, src)] *)
  | Imul of Reg.t * operand  (** two-operand 64-bit multiply *)
  | Movzx of Reg.t * operand  (** [movzbq]: byte r/m zero-extended to 64 *)
  | Movsx of Reg.t * operand  (** [movsbq]: byte r/m sign-extended to 64 *)
  | Setcc of cc * operand  (** byte r/m := 1/0 from the condition *)
  | Cmov of cc * Reg.t * operand  (** 64-bit conditional move *)
  | Neg of size * operand
  | Not of size * operand
  | Inc of size * operand  (** leaves CF unchanged *)
  | Dec of size * operand  (** leaves CF unchanged *)
  | Shift of shift * size * operand * int  (** immediate shift count *)
  | Push of Reg.t
  | Pop of Reg.t
  | Pushfq  (** save RFLAGS (trampolines bracketing instrumentation) *)
  | Popfq
  | Call of int  (** [call rel32] *)
  | Call_ind of operand
  | Ret
  | Jmp of int  (** [jmpq rel32] — the "e9" of E9Patch *)
  | Jmp_short of int  (** [jmp rel8] *)
  | Jmp_ind of operand
  | Jcc of cc * int  (** [jcc rel32] *)
  | Jcc_short of cc * int  (** [jcc rel8] *)
  | Nop of int  (** multi-byte nop of total length 1..9 *)
  | Endbr64  (** CET indirect-branch landing pad ([f3 0f 1e fa]); nop-class *)
  | Int3
  | Int of int  (** [int imm8]; ids >= 0x40 are emulator host calls *)
  | Syscall
  | Ud2
  | Unknown of int  (** opaque byte (linear-disassembly fallthrough) *)

(** [cc_index c] is the 4-bit [tttn] encoding. *)
val cc_index : cc -> int

(** [cc_of_index i] inverts [cc_index]. Requires [0 <= i <= 15]. *)
val cc_of_index : int -> cc

(** [mem ?base ?index ?disp ()] builds a non-RIP-relative memory operand. *)
val mem : ?base:Reg.t -> ?index:Reg.t * scale -> ?disp:int -> unit -> mem

(** [rip_mem disp] is a RIP-relative memory operand. *)
val rip_mem : int -> mem

(** [scale_factor s] is 1, 2, 4 or 8. *)
val scale_factor : scale -> int

(** [operands i] lists the instruction's explicit operands, destination
    first — the [op\[0\]], [op\[1\]] attributes of the tool matcher.
    Direct branch displacements are an attribute ([target]), not an
    operand; indirect branches expose their r/m operand. *)
val operands : t -> operand list

(** [uses_reg i r] — does any operand mention [r], as a value or as a
    memory-address component? *)
val uses_reg : t -> Reg.t -> bool

(** [pp ppf i] prints AT&T-flavoured assembly (for logs and dumps). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
val equal : t -> t -> bool

let jmp_opcode = 0xe9
let jmp_short_opcode = 0xeb

let jump_padding_prefixes =
  [| 0x26; 0x2e; 0x36; 0x3e; 0x64; 0x65; 0x66; 0x48 |]

type emitter = Buffer.t

let u8 (b : emitter) v = Buffer.add_char b (Char.chr (v land 0xff))

let u32 b v =
  u8 b v;
  u8 b (v asr 8);
  u8 b (v asr 16);
  u8 b (v asr 24)

let u64 b (v : int64) =
  for i = 0 to 7 do
    u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let fits_i8 v = v >= -128 && v <= 127
let fits_i32 v = v >= -0x8000_0000 && v <= 0x7fff_ffff

let scale_bits = function
  | Insn.S1 -> 0
  | Insn.S2 -> 1
  | Insn.S4 -> 2
  | Insn.S8 -> 3

(* Emit REX (if needed), opcode bytes, and a ModRM/SIB/disp sequence for a
   [reg, r/m] pair. [reg_idx] is the full 4-bit index for the reg field.
   [rm] is either a register or a memory operand. [w] requests REX.W.
   [force_rex] is set for byte-sized operations on SPL/BPL/SIL/DIL. *)
let emit_modrm b ~w ~force_rex ~opcodes ~reg_idx rm =
  let rex_r = reg_idx lsr 3 in
  let modrm_sib = Buffer.create 8 in
  let rex_x, rex_b =
    match rm with
    | `Reg r ->
        let i = Reg.index r in
        u8 modrm_sib (0b11_000_000 lor ((reg_idx land 7) lsl 3) lor (i land 7));
        (0, i lsr 3)
    | `Mem (m : Insn.mem) ->
        let reg_f = (reg_idx land 7) lsl 3 in
        if m.rip_rel then begin
          if m.base <> None || m.index <> None then
            invalid_arg "Encode: rip-relative with base/index";
          u8 modrm_sib (0b00_000_000 lor reg_f lor 0b101);
          u32 modrm_sib m.disp;
          (0, 0)
        end
        else begin
          (match m.index with
          | Some (r, _) when Reg.equal r Reg.RSP ->
              invalid_arg "Encode: %rsp cannot be an index register"
          | _ -> ());
          let need_sib =
            m.index <> None || m.base = None
            ||
            match m.base with
            | Some r -> Reg.index r land 7 = 4 (* RSP/R12 *)
            | None -> false
          in
          let base_idx = match m.base with Some r -> Reg.index r | None -> -1 in
          let index_idx =
            match m.index with Some (r, _) -> Reg.index r | None -> -1
          in
          (* Displacement size: no-disp needs base present and base not
             RBP/R13; no-base forms always carry disp32. *)
          let md =
            if m.base = None then 0b00
            else if m.disp = 0 && base_idx land 7 <> 5 then 0b00
            else if fits_i8 m.disp then 0b01
            else 0b10
          in
          if not (fits_i32 m.disp) then invalid_arg "Encode: disp too large";
          if need_sib then begin
            u8 modrm_sib ((md lsl 6) lor reg_f lor 0b100);
            let sib_scale =
              match m.index with Some (_, s) -> scale_bits s | None -> 0
            in
            let sib_index = if index_idx < 0 then 0b100 else index_idx land 7 in
            let sib_base = if base_idx < 0 then 0b101 else base_idx land 7 in
            u8 modrm_sib ((sib_scale lsl 6) lor (sib_index lsl 3) lor sib_base)
          end
          else u8 modrm_sib ((md lsl 6) lor reg_f lor (base_idx land 7));
          (match md with
          | 0b01 -> u8 modrm_sib m.disp
          | 0b10 -> u32 modrm_sib m.disp
          | _ -> if m.base = None then u32 modrm_sib m.disp);
          ((if index_idx < 0 then 0 else index_idx lsr 3),
           if base_idx < 0 then 0 else base_idx lsr 3)
        end
  in
  let rex =
    0x40 lor ((if w then 1 else 0) lsl 3) lor (rex_r lsl 2) lor (rex_x lsl 1)
    lor rex_b
  in
  if rex <> 0x40 || force_rex then u8 b rex;
  List.iter (u8 b) opcodes;
  Buffer.add_buffer b modrm_sib

(* Whether a byte-sized access to register [r] requires a REX prefix to mean
   SPL/BPL/SIL/DIL rather than AH/CH/DH/BH. *)
let byte_needs_rex r =
  let i = Reg.index r in
  i >= 4 && i <= 7

let force_rex_for sz ops =
  sz = Insn.B
  && List.exists (function `Reg r -> byte_needs_rex r | `Mem _ -> false) ops

(* ALU opcode table: base opcode for the [r/m, r] byte form; the /digit for
   the immediate group. *)
let alu_base = function
  | Insn.Add -> 0x00
  | Insn.Adc -> 0x10
  | Insn.Sbb -> 0x18
  | Insn.Or -> 0x08
  | Insn.And -> 0x20
  | Insn.Sub -> 0x28
  | Insn.Xor -> 0x30
  | Insn.Cmp -> 0x38
  | Insn.Test -> -1 (* test has its own opcodes *)

let alu_digit = function
  | Insn.Add -> 0
  | Insn.Adc -> 2
  | Insn.Sbb -> 3
  | Insn.Or -> 1
  | Insn.And -> 4
  | Insn.Sub -> 5
  | Insn.Xor -> 6
  | Insn.Cmp -> 7
  | Insn.Test -> 0 (* f6/f7 /0 *)

let shift_digit = function Insn.Shl -> 4 | Insn.Shr -> 5 | Insn.Sar -> 7

let emit b (insn : Insn.t) =
  let w_of sz = sz = Insn.Q in
  let rm_of = function
    | Insn.Reg r -> `Reg r
    | Insn.Mem m -> `Mem m
    | Insn.Imm _ -> invalid_arg "Encode: immediate cannot be r/m"
  in
  let emit_imm sz v =
    match sz with
    | Insn.B ->
        if not (fits_i8 v) then invalid_arg "Encode: imm8 out of range";
        u8 b v
    | Insn.L | Insn.Q ->
        if not (fits_i32 v) then invalid_arg "Encode: imm32 out of range";
        u32 b v
  in
  match insn with
  | Mov (sz, dst, src) -> (
      match (dst, src) with
      | (Reg _ | Mem _), Reg r ->
          let opc = if sz = B then [ 0x88 ] else [ 0x89 ] in
          emit_modrm b ~w:(w_of sz)
            ~force_rex:(force_rex_for sz [ `Reg r; rm_of dst ])
            ~opcodes:opc ~reg_idx:(Reg.index r) (rm_of dst)
      | Reg r, Mem m ->
          let opc = if sz = B then [ 0x8a ] else [ 0x8b ] in
          emit_modrm b ~w:(w_of sz)
            ~force_rex:(force_rex_for sz [ `Reg r ])
            ~opcodes:opc ~reg_idx:(Reg.index r) (`Mem m)
      | (Reg _ | Mem _), Imm v ->
          let opc = if sz = B then [ 0xc6 ] else [ 0xc7 ] in
          emit_modrm b ~w:(w_of sz)
            ~force_rex:(force_rex_for sz [ rm_of dst ])
            ~opcodes:opc ~reg_idx:0 (rm_of dst);
          emit_imm sz v
      | Imm _, _ -> invalid_arg "Encode: mov to immediate"
      | Mem _, Mem _ -> invalid_arg "Encode: mem-to-mem mov")
  | Movabs (r, v) ->
      let i = Reg.index r in
      u8 b (0x48 lor (i lsr 3));
      u8 b (0xb8 lor (i land 7));
      u64 b v
  | Lea (r, m) ->
      emit_modrm b ~w:true ~force_rex:false ~opcodes:[ 0x8d ]
        ~reg_idx:(Reg.index r) (`Mem m)
  | Alu (Test, sz, dst, src) -> (
      match (dst, src) with
      | (Reg _ | Mem _), Reg r ->
          let opc = if sz = B then [ 0x84 ] else [ 0x85 ] in
          emit_modrm b ~w:(w_of sz)
            ~force_rex:(force_rex_for sz [ `Reg r; rm_of dst ])
            ~opcodes:opc ~reg_idx:(Reg.index r) (rm_of dst)
      | (Reg _ | Mem _), Imm v ->
          let opc = if sz = B then [ 0xf6 ] else [ 0xf7 ] in
          emit_modrm b ~w:(w_of sz)
            ~force_rex:(force_rex_for sz [ rm_of dst ])
            ~opcodes:opc ~reg_idx:0 (rm_of dst);
          emit_imm sz v
      | _ -> invalid_arg "Encode: bad test operands")
  | Alu (op, sz, dst, src) -> (
      match (dst, src) with
      | (Reg _ | Mem _), Reg r ->
          let opc = [ alu_base op lor if sz = B then 0 else 1 ] in
          emit_modrm b ~w:(w_of sz)
            ~force_rex:(force_rex_for sz [ `Reg r; rm_of dst ])
            ~opcodes:opc ~reg_idx:(Reg.index r) (rm_of dst)
      | Reg r, Mem m ->
          let opc = [ alu_base op lor if sz = B then 2 else 3 ] in
          emit_modrm b ~w:(w_of sz)
            ~force_rex:(force_rex_for sz [ `Reg r ])
            ~opcodes:opc ~reg_idx:(Reg.index r) (`Mem m)
      | (Reg _ | Mem _), Imm v ->
          if sz <> B && fits_i8 v then begin
            (* Short-form sign-extended imm8 (0x83), as compilers emit. *)
            emit_modrm b ~w:(w_of sz) ~force_rex:false ~opcodes:[ 0x83 ]
              ~reg_idx:(alu_digit op) (rm_of dst);
            u8 b v
          end
          else begin
            let opc = if sz = B then [ 0x80 ] else [ 0x81 ] in
            emit_modrm b ~w:(w_of sz)
              ~force_rex:(force_rex_for sz [ rm_of dst ])
              ~opcodes:opc ~reg_idx:(alu_digit op) (rm_of dst);
            emit_imm sz v
          end
      | Imm _, _ -> invalid_arg "Encode: ALU to immediate"
      | Mem _, Mem _ -> invalid_arg "Encode: mem-to-mem ALU")
  | Imul (r, src) ->
      emit_modrm b ~w:true ~force_rex:false ~opcodes:[ 0x0f; 0xaf ]
        ~reg_idx:(Reg.index r) (rm_of src)
  | Movzx (r, src) ->
      emit_modrm b ~w:true
        ~force_rex:(force_rex_for B [ rm_of src ])
        ~opcodes:[ 0x0f; 0xb6 ] ~reg_idx:(Reg.index r) (rm_of src)
  | Movsx (r, src) ->
      emit_modrm b ~w:true
        ~force_rex:(force_rex_for B [ rm_of src ])
        ~opcodes:[ 0x0f; 0xbe ] ~reg_idx:(Reg.index r) (rm_of src)
  | Setcc (c, dst) ->
      emit_modrm b ~w:false
        ~force_rex:(force_rex_for B [ rm_of dst ])
        ~opcodes:[ 0x0f; 0x90 lor Insn.cc_index c ]
        ~reg_idx:0 (rm_of dst)
  | Cmov (c, r, src) ->
      emit_modrm b ~w:true ~force_rex:false
        ~opcodes:[ 0x0f; 0x40 lor Insn.cc_index c ]
        ~reg_idx:(Reg.index r) (rm_of src)
  | Neg (sz, dst) ->
      let opc = if sz = B then [ 0xf6 ] else [ 0xf7 ] in
      emit_modrm b ~w:(w_of sz)
        ~force_rex:(force_rex_for sz [ rm_of dst ])
        ~opcodes:opc ~reg_idx:3 (rm_of dst)
  | Not (sz, dst) ->
      let opc = if sz = B then [ 0xf6 ] else [ 0xf7 ] in
      emit_modrm b ~w:(w_of sz)
        ~force_rex:(force_rex_for sz [ rm_of dst ])
        ~opcodes:opc ~reg_idx:2 (rm_of dst)
  | Inc (sz, dst) ->
      let opc = if sz = B then [ 0xfe ] else [ 0xff ] in
      emit_modrm b ~w:(w_of sz)
        ~force_rex:(force_rex_for sz [ rm_of dst ])
        ~opcodes:opc ~reg_idx:0 (rm_of dst)
  | Dec (sz, dst) ->
      let opc = if sz = B then [ 0xfe ] else [ 0xff ] in
      emit_modrm b ~w:(w_of sz)
        ~force_rex:(force_rex_for sz [ rm_of dst ])
        ~opcodes:opc ~reg_idx:1 (rm_of dst)
  | Shift (sh, sz, dst, n) ->
      (* Any imm8 encodes; hardware masks the count at execution. *)
      if n < 0 || n > 255 then invalid_arg "Encode: shift count";
      let opc = if sz = B then [ 0xc0 ] else [ 0xc1 ] in
      emit_modrm b ~w:(w_of sz)
        ~force_rex:(force_rex_for sz [ rm_of dst ])
        ~opcodes:opc ~reg_idx:(shift_digit sh) (rm_of dst);
      u8 b n
  | Push r ->
      let i = Reg.index r in
      if i >= 8 then u8 b 0x41;
      u8 b (0x50 lor (i land 7))
  | Pop r ->
      let i = Reg.index r in
      if i >= 8 then u8 b 0x41;
      u8 b (0x58 lor (i land 7))
  | Pushfq -> u8 b 0x9c
  | Popfq -> u8 b 0x9d
  | Call rel ->
      if not (fits_i32 rel) then invalid_arg "Encode: call rel32 out of range";
      u8 b 0xe8;
      u32 b rel
  | Call_ind op ->
      emit_modrm b ~w:false ~force_rex:false ~opcodes:[ 0xff ] ~reg_idx:2
        (rm_of op)
  | Ret -> u8 b 0xc3
  | Jmp rel ->
      if not (fits_i32 rel) then invalid_arg "Encode: jmp rel32 out of range";
      u8 b jmp_opcode;
      u32 b rel
  | Jmp_short rel ->
      if not (fits_i8 rel) then invalid_arg "Encode: rel8 out of range";
      u8 b jmp_short_opcode;
      u8 b rel
  | Jmp_ind op ->
      emit_modrm b ~w:false ~force_rex:false ~opcodes:[ 0xff ] ~reg_idx:4
        (rm_of op)
  | Jcc (c, rel) ->
      if not (fits_i32 rel) then invalid_arg "Encode: jcc rel32 out of range";
      u8 b 0x0f;
      u8 b (0x80 lor Insn.cc_index c);
      u32 b rel
  | Jcc_short (c, rel) ->
      if not (fits_i8 rel) then invalid_arg "Encode: rel8 out of range";
      u8 b (0x70 lor Insn.cc_index c);
      u8 b rel
  | Nop n -> (
      match n with
      | 1 -> u8 b 0x90
      | 2 -> List.iter (u8 b) [ 0x66; 0x90 ]
      | 3 -> List.iter (u8 b) [ 0x0f; 0x1f; 0x00 ]
      | 4 -> List.iter (u8 b) [ 0x0f; 0x1f; 0x40; 0x00 ]
      | 5 -> List.iter (u8 b) [ 0x0f; 0x1f; 0x44; 0x00; 0x00 ]
      | 6 -> List.iter (u8 b) [ 0x66; 0x0f; 0x1f; 0x44; 0x00; 0x00 ]
      | 7 -> List.iter (u8 b) [ 0x0f; 0x1f; 0x80; 0x00; 0x00; 0x00; 0x00 ]
      | 8 -> List.iter (u8 b) [ 0x0f; 0x1f; 0x84; 0x00; 0x00; 0x00; 0x00; 0x00 ]
      | 9 ->
          List.iter (u8 b)
            [ 0x66; 0x0f; 0x1f; 0x84; 0x00; 0x00; 0x00; 0x00; 0x00 ]
      | _ -> invalid_arg "Encode: nop length must be 1..9")
  | Endbr64 -> List.iter (u8 b) [ 0xf3; 0x0f; 0x1e; 0xfa ]
  | Int3 -> u8 b 0xcc
  | Int n ->
      u8 b 0xcd;
      u8 b n
  | Syscall ->
      u8 b 0x0f;
      u8 b 0x05
  | Ud2 ->
      u8 b 0x0f;
      u8 b 0x0b
  | Unknown byte -> u8 b byte

let encode insn =
  let b = Buffer.create 16 in
  emit b insn;
  Buffer.contents b

let encode_with_prefixes prefixes insn =
  let b = Buffer.create 16 in
  List.iter (u8 b) prefixes;
  emit b insn;
  Buffer.contents b

let length insn = String.length (encode insn)

let encode_jmp_rel32 rel = encode (Insn.Jmp rel)

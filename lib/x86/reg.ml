type t =
  | RAX
  | RCX
  | RDX
  | RBX
  | RSP
  | RBP
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let all =
  [| RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 |]

let scratch = [| RAX; RCX; RDX; RBX; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 |]

let index = function
  | RAX -> 0
  | RCX -> 1
  | RDX -> 2
  | RBX -> 3
  | RSP -> 4
  | RBP -> 5
  | RSI -> 6
  | RDI -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let of_index i =
  if i < 0 || i > 15 then invalid_arg "Reg.of_index";
  all.(i)

let of_name = function
  | "rax" -> Some RAX
  | "rcx" -> Some RCX
  | "rdx" -> Some RDX
  | "rbx" -> Some RBX
  | "rsp" -> Some RSP
  | "rbp" -> Some RBP
  | "rsi" -> Some RSI
  | "rdi" -> Some RDI
  | "r8" -> Some R8
  | "r9" -> Some R9
  | "r10" -> Some R10
  | "r11" -> Some R11
  | "r12" -> Some R12
  | "r13" -> Some R13
  | "r14" -> Some R14
  | "r15" -> Some R15
  | _ -> None

let name64 = function
  | RAX -> "%rax"
  | RCX -> "%rcx"
  | RDX -> "%rdx"
  | RBX -> "%rbx"
  | RSP -> "%rsp"
  | RBP -> "%rbp"
  | RSI -> "%rsi"
  | RDI -> "%rdi"
  | R8 -> "%r8"
  | R9 -> "%r9"
  | R10 -> "%r10"
  | R11 -> "%r11"
  | R12 -> "%r12"
  | R13 -> "%r13"
  | R14 -> "%r14"
  | R15 -> "%r15"

let name32 = function
  | RAX -> "%eax"
  | RCX -> "%ecx"
  | RDX -> "%edx"
  | RBX -> "%ebx"
  | RSP -> "%esp"
  | RBP -> "%ebp"
  | RSI -> "%esi"
  | RDI -> "%edi"
  | R8 -> "%r8d"
  | R9 -> "%r9d"
  | R10 -> "%r10d"
  | R11 -> "%r11d"
  | R12 -> "%r12d"
  | R13 -> "%r13d"
  | R14 -> "%r14d"
  | R15 -> "%r15d"

let name8 = function
  | RAX -> "%al"
  | RCX -> "%cl"
  | RDX -> "%dl"
  | RBX -> "%bl"
  | RSP -> "%spl"
  | RBP -> "%bpl"
  | RSI -> "%sil"
  | RDI -> "%dil"
  | R8 -> "%r8b"
  | R9 -> "%r9b"
  | R10 -> "%r10b"
  | R11 -> "%r11b"
  | R12 -> "%r12b"
  | R13 -> "%r13b"
  | R14 -> "%r14b"
  | R15 -> "%r15b"

let equal a b = index a = index b
let compare a b = Int.compare (index a) (index b)
let pp ppf r = Format.pp_print_string ppf (name64 r)

type decoded = { insn : Insn.t; len : int; prefixes : int list }

exception Truncated

(* A cursor over the byte source. Reads past the end raise [Truncated],
   which the toplevel decoder converts into a one-byte [Unknown]. *)
type cursor = { get : int -> int; limit : int; start : int; mutable pos : int }

let byte c =
  if c.pos >= c.limit then raise Truncated;
  let v = c.get c.pos in
  c.pos <- c.pos + 1;
  v

let i8 c =
  let v = byte c in
  if v land 0x80 <> 0 then v - 0x100 else v

let i32 c =
  let b0 = byte c in
  let b1 = byte c in
  let b2 = byte c in
  let b3 = byte c in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let i64 c =
  let lo = i32 c land 0xffff_ffff in
  let hi = i32 c in
  Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

let is_legacy_prefix b =
  match b with
  | 0x26 | 0x2e | 0x36 | 0x3e | 0x64 | 0x65 | 0x66 | 0x67 | 0xf0 | 0xf2 | 0xf3
    ->
      true
  | _ -> false

let is_rex b = b land 0xf0 = 0x40

(* Decode ModRM (+SIB +disp) into the reg-field index and an r/m operand. *)
let modrm c ~rex_r ~rex_x ~rex_b =
  let m = byte c in
  let md = m lsr 6 in
  let reg = ((m lsr 3) land 7) lor (rex_r lsl 3) in
  let rm = m land 7 in
  if md = 0b11 then (reg, Insn.Reg (Reg.of_index (rm lor (rex_b lsl 3))))
  else begin
    let base, index =
      if rm = 0b100 then begin
        (* SIB byte *)
        let sib = byte c in
        let scale =
          match sib lsr 6 with
          | 0 -> Insn.S1
          | 1 -> Insn.S2
          | 2 -> Insn.S4
          | _ -> Insn.S8
        in
        let idx = ((sib lsr 3) land 7) lor (rex_x lsl 3) in
        let bse = (sib land 7) lor (rex_b lsl 3) in
        let index = if idx = 4 then None else Some (Reg.of_index idx, scale) in
        let base =
          if sib land 7 = 0b101 && md = 0b00 then None
          else Some (Reg.of_index bse)
        in
        (base, index)
      end
      else if rm = 0b101 && md = 0b00 then (None, None) (* RIP-relative *)
      else (Some (Reg.of_index (rm lor (rex_b lsl 3))), None)
    in
    let rip_rel = rm = 0b101 && md = 0b00 in
    let disp =
      match md with
      | 0b01 -> i8 c
      | 0b10 -> i32 c
      | _ -> if rip_rel || base = None then i32 c else 0
    in
    (reg, Insn.Mem { base; index; disp; rip_rel })
  end

let alu_of_base = function
  | 0x00 -> Some Insn.Add
  | 0x10 -> Some Insn.Adc
  | 0x18 -> Some Insn.Sbb
  | 0x08 -> Some Insn.Or
  | 0x20 -> Some Insn.And
  | 0x28 -> Some Insn.Sub
  | 0x30 -> Some Insn.Xor
  | 0x38 -> Some Insn.Cmp
  | _ -> None

let alu_of_digit = function
  | 0 -> Some Insn.Add
  | 2 -> Some Insn.Adc
  | 3 -> Some Insn.Sbb
  | 1 -> Some Insn.Or
  | 4 -> Some Insn.And
  | 5 -> Some Insn.Sub
  | 6 -> Some Insn.Xor
  | 7 -> Some Insn.Cmp
  | _ -> None

let shift_of_digit = function
  | 4 -> Some Insn.Shl
  | 5 -> Some Insn.Shr
  | 7 -> Some Insn.Sar
  | _ -> None

(* Decode the opcode proper, after prefixes. [w] is REX.W. *)
let opcode c ~w ~rex_r ~rex_x ~rex_b : Insn.t =
  let sz_wl = if w then Insn.Q else Insn.L in
  let op = byte c in
  let alu_rm_r base sz =
    match alu_of_base base with
    | Some a ->
        let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
        Insn.Alu (a, sz, rm, Insn.Reg (Reg.of_index reg))
    | None -> Insn.Unknown op
  in
  let alu_r_rm base sz =
    match alu_of_base base with
    | Some a ->
        let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
        Insn.Alu (a, sz, Insn.Reg (Reg.of_index reg), rm)
    | None -> Insn.Unknown op
  in
  match op with
  | 0x0f -> (
      let op2 = byte c in
      match op2 with
      | 0x05 -> Insn.Syscall
      | 0x0b -> Insn.Ud2
      | 0x1e ->
          (* endbr64 is F3 0F 1E FA; the F3 lands in [prefixes]. Decoding
             it keeps the linear sweep synchronized at CET-marked function
             entries instead of resyncing byte-by-byte through a 4-byte
             blind spot. *)
          if byte c = 0xfa then Insn.Endbr64 else Insn.Unknown op
      | 0x1f ->
          let _, _ = modrm c ~rex_r ~rex_x ~rex_b in
          Insn.Nop (c.pos - c.start)
      | 0xaf ->
          let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
          Insn.Imul (Reg.of_index reg, rm)
      | 0xb6 ->
          let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
          Insn.Movzx (Reg.of_index reg, rm)
      | 0xbe ->
          let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
          Insn.Movsx (Reg.of_index reg, rm)
      | _ when op2 land 0xf0 = 0x90 ->
          let _, rm = modrm c ~rex_r ~rex_x ~rex_b in
          Insn.Setcc (Insn.cc_of_index (op2 land 0xf), rm)
      | _ when op2 land 0xf0 = 0x40 ->
          let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
          Insn.Cmov (Insn.cc_of_index (op2 land 0xf), Reg.of_index reg, rm)
      | _ when op2 land 0xf0 = 0x80 ->
          let rel = i32 c in
          Insn.Jcc (Insn.cc_of_index (op2 land 0xf), rel)
      | _ -> Insn.Unknown op)
  | 0x90 -> Insn.Nop (c.pos - c.start)
  | _ when op land 0xc7 = 0x00 || op land 0xc7 = 0x01 ->
      (* ALU r/m, r families: 00/01, 08/09, 20/21, 28/29, 30/31, 38/39 *)
      alu_rm_r (op land 0x38) (if op land 1 = 0 then Insn.B else sz_wl)
  | _ when op land 0xc7 = 0x02 || op land 0xc7 = 0x03 ->
      alu_r_rm (op land 0x38) (if op land 1 = 0 then Insn.B else sz_wl)
  | 0x80 | 0x81 | 0x83 -> (
      let sz = if op = 0x80 then Insn.B else sz_wl in
      let digit, rm = modrm c ~rex_r ~rex_x ~rex_b in
      let imm = if op = 0x81 then i32 c else i8 c in
      match alu_of_digit (digit land 7) with
      | Some a -> Insn.Alu (a, sz, rm, Insn.Imm imm)
      | None -> Insn.Unknown op)
  | 0x84 | 0x85 ->
      let sz = if op = 0x84 then Insn.B else sz_wl in
      let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
      Insn.Alu (Insn.Test, sz, rm, Insn.Reg (Reg.of_index reg))
  | 0x88 | 0x89 ->
      let sz = if op = 0x88 then Insn.B else sz_wl in
      let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
      Insn.Mov (sz, rm, Insn.Reg (Reg.of_index reg))
  | 0x8a | 0x8b ->
      let sz = if op = 0x8a then Insn.B else sz_wl in
      let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
      Insn.Mov (sz, Insn.Reg (Reg.of_index reg), rm)
  | 0x8d -> (
      let reg, rm = modrm c ~rex_r ~rex_x ~rex_b in
      match rm with
      | Insn.Mem m -> Insn.Lea (Reg.of_index reg, m)
      | Insn.Reg _ | Insn.Imm _ -> Insn.Unknown op)
  | _ when op land 0xf8 = 0x50 ->
      Insn.Push (Reg.of_index ((op land 7) lor (rex_b lsl 3)))
  | _ when op land 0xf8 = 0x58 ->
      Insn.Pop (Reg.of_index ((op land 7) lor (rex_b lsl 3)))
  | _ when op land 0xf8 = 0xb8 ->
      let r = Reg.of_index ((op land 7) lor (rex_b lsl 3)) in
      if w then Insn.Movabs (r, i64 c)
      else
        let imm = i32 c in
        Insn.Mov (Insn.L, Insn.Reg r, Insn.Imm imm)
  | 0xc0 | 0xc1 -> (
      let sz = if op = 0xc0 then Insn.B else sz_wl in
      let digit, rm = modrm c ~rex_r ~rex_x ~rex_b in
      let n = byte c in
      match shift_of_digit (digit land 7) with
      | Some sh -> Insn.Shift (sh, sz, rm, n)
      | None -> Insn.Unknown op)
  | 0x9c -> Insn.Pushfq
  | 0x9d -> Insn.Popfq
  | 0xc3 -> Insn.Ret
  | 0xc6 | 0xc7 ->
      let sz = if op = 0xc6 then Insn.B else sz_wl in
      let digit, rm = modrm c ~rex_r ~rex_x ~rex_b in
      if digit land 7 <> 0 then Insn.Unknown op
      else
        let imm = if op = 0xc6 then i8 c else i32 c in
        Insn.Mov (sz, rm, Insn.Imm imm)
  | 0xf6 | 0xf7 -> (
      let sz = if op = 0xf6 then Insn.B else sz_wl in
      let digit, rm = modrm c ~rex_r ~rex_x ~rex_b in
      match digit land 7 with
      | 0 ->
          let imm = if op = 0xf6 then i8 c else i32 c in
          Insn.Alu (Insn.Test, sz, rm, Insn.Imm imm)
      | 2 -> Insn.Not (sz, rm)
      | 3 -> Insn.Neg (sz, rm)
      | _ -> Insn.Unknown op)
  | 0xcc -> Insn.Int3
  | 0xcd -> Insn.Int (byte c)
  | 0xe8 -> Insn.Call (i32 c)
  | 0xe9 -> Insn.Jmp (i32 c)
  | 0xeb -> Insn.Jmp_short (i8 c)
  | _ when op land 0xf0 = 0x70 ->
      Insn.Jcc_short (Insn.cc_of_index (op land 0xf), i8 c)
  | 0xfe -> (
      let digit, rm = modrm c ~rex_r ~rex_x ~rex_b in
      match digit land 7 with
      | 0 -> Insn.Inc (Insn.B, rm)
      | 1 -> Insn.Dec (Insn.B, rm)
      | _ -> Insn.Unknown op)
  | 0xff -> (
      let digit, rm = modrm c ~rex_r ~rex_x ~rex_b in
      match digit land 7 with
      | 0 -> Insn.Inc (sz_wl, rm)
      | 1 -> Insn.Dec (sz_wl, rm)
      | 2 -> Insn.Call_ind rm
      | 4 -> Insn.Jmp_ind rm
      | _ -> Insn.Unknown op)
  | _ -> Insn.Unknown op

let decode_cursor c =
  let start = c.pos in
  try
    (* Consume prefixes: any mix of legacy prefixes and REX bytes; only a
       REX immediately preceding the opcode takes effect, matching hardware
       (this is what makes T1's padded jumps legal). *)
    let prefixes = ref [] in
    let rex = ref 0 in
    let continue = ref true in
    while !continue do
      if c.pos >= c.limit then raise Truncated;
      let b = c.get c.pos in
      if is_legacy_prefix b then begin
        prefixes := b :: !prefixes;
        rex := 0;
        c.pos <- c.pos + 1
      end
      else if is_rex b then begin
        prefixes := b :: !prefixes;
        rex := b;
        c.pos <- c.pos + 1
      end
      else continue := false
    done;
    let prefixes = List.rev !prefixes in
    (* The prefix scan is greedy: 0x90 after prefixes is still nop, and
       0x40-0x4f before a non-instruction still yields Unknown below. *)
    let w = !rex land 8 <> 0 in
    let rex_r = (!rex lsr 2) land 1 in
    let rex_x = (!rex lsr 1) land 1 in
    let rex_b = !rex land 1 in
    let insn = opcode c ~w ~rex_r ~rex_x ~rex_b in
    (* Reject degenerate prefix-only decodes of Unknown: report just the
       first byte so linear disassembly can resynchronize early. *)
    match insn with
    | Insn.Unknown _ when prefixes <> [] ->
        c.pos <- start + 1;
        { insn = Insn.Unknown (c.get start); len = 1; prefixes = [] }
    | _ -> { insn; len = c.pos - start; prefixes }
  with Truncated ->
    c.pos <- start + 1;
    { insn = Insn.Unknown (c.get start); len = 1; prefixes = [] }

let decode bytes pos =
  if pos < 0 || pos >= Bytes.length bytes then invalid_arg "Decode.decode";
  decode_cursor
    { get = (fun i -> Char.code (Bytes.get bytes i));
      limit = Bytes.length bytes;
      start = pos;
      pos }

let decode_string s pos =
  if pos < 0 || pos >= String.length s then invalid_arg "Decode.decode_string";
  decode_cursor
    { get = (fun i -> Char.code (String.get s i));
      limit = String.length s;
      start = pos;
      pos }

let linear bytes ~pos ~len =
  let stop = pos + len in
  let rec go acc p =
    if p >= stop then List.rev acc
    else
      let d =
        decode_cursor
          { get = (fun i -> Char.code (Bytes.get bytes i));
            limit = stop;
            start = p;
            pos = p }
      in
      go ((p, d) :: acc) (p + d.len)
  in
  go [] pos

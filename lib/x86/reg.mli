(** The sixteen x86_64 general-purpose registers. *)

type t =
  | RAX
  | RCX
  | RDX
  | RBX
  | RSP
  | RBP
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

(** [index r] is the 4-bit hardware encoding (RAX = 0 … R15 = 15). *)
val index : t -> int

(** [of_index i] inverts [index]. Requires [0 <= i <= 15]. *)
val of_index : int -> t

(** [of_name s] parses a bare lowercase 64-bit register name ("rax" …
    "r15"), as written in patch specs and tool match expressions. *)
val of_name : string -> t option

(** All registers, in encoding order. *)
val all : t array

(** Registers safe for general code generation (excludes RSP and RBP, which
    the synthetic workloads reserve for the stack/frame). *)
val scratch : t array

(** [name64 r] is the AT&T-style 64-bit name, e.g. ["%rax"]. *)
val name64 : t -> string

(** [name32 r] is the 32-bit name, e.g. ["%eax"]. *)
val name32 : t -> string

(** [name8 r] is the low-byte name, e.g. ["%al"] (REX-style for 4–7). *)
val name8 : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Buf = E9_bits.Buf
module Rng = E9_bits.Rng
module Insn = E9_x86.Insn
module Encode = E9_x86.Encode

type cfg_mode = Ground_truth | Heuristic | Heuristic_prob of float * int64

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type result = {
  output : Elf_file.t;
  instrumented : int;
  tables_rewritten : int;
  tables_total : int;
  moved_bytes : int;
}

let counter_hostcall = 0x50 (* E9_emu.Hostcall.count, kept dependency-free *)
let page = 4096
let align_page n = (n + page - 1) / page * page

(* ------------------------------------------------------------------ *)
(* Table discovery                                                     *)
(* ------------------------------------------------------------------ *)

let ground_truth elf =
  match Elf_file.find_section elf Tablemeta.section_name with
  | Some sec -> Tablemeta.decode (Elf_file.section_bytes elf sec)
  | None -> []

(* Pointer-scan heuristic: runs of >= 2 aligned code addresses inside
   readable non-executable segments look like jump tables. *)
let heuristic_scan elf ~text_lo ~text_hi =
  let found = ref [] in
  List.iter
    (fun (seg : Elf_file.segment) ->
      if seg.ptype = Elf_file.Load && seg.prot.r && not seg.prot.x then begin
        let is_code_ptr off =
          off + 8 <= seg.filesz
          &&
          let v = Int64.to_int (Buf.get_u64 elf.Elf_file.data (seg.offset + off)) in
          v >= text_lo && v < text_hi
        in
        let off = ref 0 in
        while !off + 8 <= seg.filesz do
          if is_code_ptr !off then begin
            let run = ref 0 in
            while is_code_ptr (!off + (8 * !run)) do
              incr run
            done;
            if !run >= 2 then
              found :=
                { Tablemeta.addr = seg.vaddr + !off;
                  kind = Tablemeta.Abs64;
                  entries = !run }
                :: !found;
            off := !off + (8 * !run)
          end
          else off := !off + 8
        done
      end)
    elf.Elf_file.segments;
  List.rev !found

let discover cfg elf ~text_lo ~text_hi =
  let truth = ground_truth elf in
  let known =
    match cfg with
    | Ground_truth -> truth
    | Heuristic -> heuristic_scan elf ~text_lo ~text_hi
    | Heuristic_prob (p, seed) ->
        let rng = Rng.create seed in
        List.filter (fun _ -> Rng.chance rng p) truth
  in
  (known, List.length truth)

(* ------------------------------------------------------------------ *)
(* Relocation                                                          *)
(* ------------------------------------------------------------------ *)

(* Lengths after re-encoding: short branches are widened to near forms
   (that is the whole point of being allowed to move instructions). *)
let relocated_len (s : Frontend.site) =
  match s.Frontend.insn with
  | Insn.Jmp_short _ -> 5
  | Insn.Jcc_short _ -> 6
  | _ -> s.Frontend.len

let retarget_rip ~old_next ~new_next (m : Insn.mem) =
  if m.Insn.rip_rel then { m with Insn.disp = old_next + m.Insn.disp - new_next }
  else m

let retarget_op ~old_next ~new_next = function
  | Insn.Mem m -> Insn.Mem (retarget_rip ~old_next ~new_next m)
  | (Insn.Reg _ | Insn.Imm _) as op -> op

let run ?(cfg = Ground_truth) elf ~select =
  let input_bytes = Elf_file.to_bytes elf in
  let output = Elf_file.of_bytes input_bytes in
  let text, sites = Frontend.disassemble output in
  let text_lo = text.Frontend.base and text_hi = text.Frontend.base + text.Frontend.size in
  let tables, tables_total = discover cfg output ~text_lo ~text_hi in
  (* New text home: one page run above everything currently mapped. *)
  let new_base =
    List.fold_left
      (fun acc (s : Elf_file.segment) ->
        if s.ptype = Elf_file.Load then max acc (s.vaddr + s.memsz) else acc)
      0 output.Elf_file.segments
    |> align_page
    |> ( + ) (1 lsl 24)
  in
  (* Pass 1: place every instruction (and its inline instrumentation). *)
  let map = Hashtbl.create (List.length sites) in
  let instrumented = ref 0 in
  let cursor = ref new_base in
  List.iter
    (fun (s : Frontend.site) ->
      Hashtbl.replace map s.Frontend.addr !cursor;
      if select s then begin
        incr instrumented;
        cursor := !cursor + 2 (* int imm8 *)
      end;
      cursor := !cursor + relocated_len s)
    sites;
  let map_addr old =
    match Hashtbl.find_opt map old with
    | Some a -> a
    | None -> error "branch target 0x%x is not an instruction" old
  in
  (* Pass 2: emit the relocated text. *)
  let code = Buf.create text.Frontend.size in
  let emit insn = ignore (Buf.add_string code (Encode.encode insn)) in
  List.iter
    (fun (s : Frontend.site) ->
      let pos () = new_base + Buf.length code in
      if select s then emit (Insn.Int counter_hostcall);
      let old_next = s.Frontend.addr + s.Frontend.len in
      let branch_target rel = map_addr (old_next + rel) in
      (match s.Frontend.insn with
      | Insn.Jmp rel | Insn.Jmp_short rel ->
          emit (Insn.Jmp (branch_target rel - (pos () + 5)))
      | Insn.Jcc (c, rel) | Insn.Jcc_short (c, rel) ->
          emit (Insn.Jcc (c, branch_target rel - (pos () + 6)))
      | Insn.Call rel -> emit (Insn.Call (branch_target rel - (pos () + 5)))
      | Insn.Mov (sz, dst, src) ->
          let new_next = pos () + s.Frontend.len in
          let f = retarget_op ~old_next ~new_next in
          emit (Insn.Mov (sz, f dst, f src))
      | Insn.Lea (r, m) ->
          let new_next = pos () + s.Frontend.len in
          emit (Insn.Lea (r, retarget_rip ~old_next ~new_next m))
      | Insn.Jmp_ind op | Insn.Call_ind op ->
          let new_next = pos () + s.Frontend.len in
          let op = retarget_op ~old_next ~new_next op in
          emit
            (match s.Frontend.insn with
            | Insn.Jmp_ind _ -> Insn.Jmp_ind op
            | _ -> Insn.Call_ind op)
      | Insn.Unknown b -> error "cannot relocate byte 0x%02x" b
      | insn -> emit insn);
      (* Length stability check: pass 1's placement must hold. *)
      let expect = Hashtbl.find map s.Frontend.addr + (if select s then 2 else 0) in
      ignore expect;
      assert (new_base + Buf.length code = expect + relocated_len s))
    sites;
  (* Rewrite table contents so indirect control flow reaches the copy. *)
  let tables_rewritten = ref 0 in
  List.iter
    (fun (t : Tablemeta.table) ->
      let seg =
        match
          List.find_opt
            (fun (s : Elf_file.segment) ->
              s.Elf_file.ptype = Elf_file.Load
              && t.Tablemeta.addr >= s.Elf_file.vaddr
              && t.Tablemeta.addr < s.Elf_file.vaddr + s.Elf_file.filesz)
            output.Elf_file.segments
        with
        | Some seg -> seg
        | None -> error "table at 0x%x is not in any loaded segment" t.Tablemeta.addr
      in
      let file_off = seg.Elf_file.offset + t.Tablemeta.addr - seg.Elf_file.vaddr in
      let entry_size =
        match t.Tablemeta.kind with Tablemeta.Abs64 -> 8 | Tablemeta.Off32 _ -> 4
      in
      if
        t.Tablemeta.addr + (entry_size * t.Tablemeta.entries)
        > seg.Elf_file.vaddr + seg.Elf_file.filesz
      then
        error "table at 0x%x (%d entries) extends past its segment"
          t.Tablemeta.addr t.Tablemeta.entries;
      incr tables_rewritten;
      for i = 0 to t.Tablemeta.entries - 1 do
        match t.Tablemeta.kind with
        | Tablemeta.Abs64 ->
            let v =
              Int64.to_int (Buf.get_u64 output.Elf_file.data (file_off + (8 * i)))
            in
            (match Hashtbl.find_opt map v with
            | Some nv ->
                Buf.set_u64 output.Elf_file.data (file_off + (8 * i))
                  (Int64.of_int nv)
            | None -> () (* pointer-lookalike data: leave it *))
        | Tablemeta.Off32 base ->
            let off = Buf.get_u32 output.Elf_file.data (file_off + (4 * i)) in
            (* Entries stay relative to the *old* base, which the code
               still materializes; the sum then lands in the new text. *)
            Buf.set_u32 output.Elf_file.data (file_off + (4 * i))
              (map_addr (base + off) - base)
      done)
    tables;
  (* The old text becomes traps: any missed indirect target faults loudly
     instead of executing stale code. *)
  for i = 0 to text.Frontend.size - 1 do
    Buf.set_u8 output.Elf_file.data (text.Frontend.offset + i) 0xcc
  done;
  (* Install the relocated text and move the entry point. *)
  ignore
    (Elf_file.add_segment output
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rx;
         vaddr = new_base;
         offset = 0;
         filesz = 0;
         memsz = Buf.length code;
         align = page }
       ~content:(Buf.contents code));
  output.Elf_file.entry <- map_addr output.Elf_file.entry;
  { output;
    instrumented = !instrumented;
    tables_rewritten = !tables_rewritten;
    tables_total;
    moved_bytes = Buf.length code }

(** A classic {e relocating} binary rewriter — the baseline approach the
    paper argues against (§1, §7).

    Instead of patching in place, it moves every instruction into a new
    text segment with instrumentation inlined, adjusts all direct
    branches, and rewrites the {e contents of jump tables} so indirect
    control flow lands in the new code. That last step is exactly the
    control-flow recovery problem: the rewriter must know where every
    table is and how its entries encode targets. The old text is replaced
    by trap bytes, so a single missed table means a crash — the fragility
    the paper quantifies ("a 99.9% accurate analysis… effectively drops to
    ~37% per 1000 indirect jumps").

    The payoff when recovery {e does} succeed is inlined instrumentation
    with no trampoline round-trips — the Multiverse/PEBIL/DynInst
    performance profile the paper's §6.1 compares against. *)

(** Where the table information comes from. *)
type cfg_mode =
  | Ground_truth
      (** the generator's [.e9repro.cfg] side channel: perfect recovery *)
  | Heuristic
      (** pointer-scan of read-only data for runs of code addresses:
          finds absolute tables, blind to PIC (offset-encoded) ones *)
  | Heuristic_prob of float * int64
      (** ground truth degraded: each table independently recognized with
          the given probability (seeded) — models an analysis that is
          "p·100% accurate" per indirect jump *)

(** Raised when relocation is impossible: a branch target that is not a
    known instruction, an undecodable byte, or a claimed jump table that
    lies outside every loaded segment. A typed error so callers (the
    robustness bench, the fuzz harness) can distinguish "this binary
    defeats the relocating baseline" — an expected, reportable outcome —
    from harness bugs. *)
exception Error of string

type result = {
  output : Elf_file.t;
  instrumented : int;  (** sites given inline instrumentation *)
  tables_rewritten : int;
  tables_total : int;  (** per ground truth (for reporting) *)
  moved_bytes : int;  (** size of the relocated text *)
}

(** [run ?cfg elf ~select] relocates the whole text, inlining a counting
    host call before every selected instruction. *)
val run :
  ?cfg:cfg_mode -> Elf_file.t -> select:(Frontend.site -> bool) -> result

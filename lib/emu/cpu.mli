(** The x86_64 subset CPU.

    Executes code from a {!E9_vm.Space.t} under a simple, documented cost
    model (DESIGN.md §2):

    - every instruction costs 1 cycle;
    - a control transfer whose target lies in a different 4 KiB page costs
      an extra [far_jump_penalty] cycles (an I-cache/BTB locality proxy —
      this is what makes trampoline round-trips cost what they cost on real
      hardware);
    - a B0 [int3] trap costs [trap_penalty] cycles (kernel/user context
      switch plus signal dispatch).

    Arithmetic is performed on OCaml's 63-bit native integers; guest
    programs must keep 64-bit values below 2^62, which the synthetic
    workload generator guarantees. 8- and 32-bit operations are exact.

    Execution is driven by a superblock cache: straight-line runs of
    decoded instructions (ending at the first control transfer) are cached
    by entry address and replayed as a tight array loop with one cache
    lookup and one fuel check per block. The cache — and the legacy
    per-instruction decode cache backing it — is invalidated whenever
    {!E9_vm.Space.generation} advances, i.e. whenever executable memory is
    written or remapped, so self-modifying code executes correctly
    (DESIGN.md §7). *)

type config = {
  far_jump_penalty : int;
  trap_penalty : int;
  fuel : int;  (** maximum instructions before giving up *)
  abort_on_violation : bool;
      (** stop at the first LowFat redzone violation (hardening mode) *)
}

val default_config : config

(** Runtime services backing the guest's host calls; see {!Hostcall}. *)
type allocator = {
  name : string;
  malloc : int -> int;
  free : int -> unit;
  check : int -> bool;  (** true = pointer passes the redzone check *)
}

(** A trivially permissive allocator operating as a bump allocator over
    [heap_base]; [check] always passes (no metadata — like glibc). *)
val bump_allocator : E9_vm.Space.t -> heap_base:int -> allocator

type outcome =
  | Exited of int
  | Fault of int * string  (** faulting address and description *)
  | Violation of int  (** LowFat redzone violation at this pointer *)
  | Out_of_fuel

type result = {
  outcome : outcome;
  output : string;  (** concatenation of all [write] syscalls *)
  insns : int;  (** instructions executed *)
  cycles : int;  (** modeled cycles *)
  far_jumps : int;  (** control transfers that crossed a page *)
  traps : int;  (** B0 int3 traps taken *)
  violations : int;  (** redzone violations observed *)
  sigtraps : int;  (** {!Hostcall.trap} instrumentation events *)
  prints : string list;
      (** instrumentation log from {!Hostcall.print}, in emission order —
          a host-side side channel, never part of [output] *)
  counters : (int * int) list;  (** per-site hit counts, sorted by site *)
  last_rips : int list;
      (** the up-to-32 most recent instruction addresses, oldest first —
          fault diagnostics *)
  block_hits : int;  (** superblock cache hits (one per block executed) *)
  block_misses : int;  (** superblock cache misses (blocks decoded) *)
  block_invalidations : int;
      (** generation-mismatch flushes of both decoded-code caches (SMC or
          executable remapping) *)
  blocks_cached : int;  (** blocks resident when the run ended *)
}

(** Architectural-event hooks for the differential oracle ({!E9_check}).
    [on_retire] fires once per instruction, before it executes, with the
    pre-execution register file (the array is live — copy what you keep).
    [on_store] fires after every successful data write, including stack
    pushes, with the value truncated to the written width. Host-call and
    syscall side effects (allocator, output stream, [mmap]) do not raise
    events. *)
type tracer = {
  on_retire : addr:int -> insn:E9_x86.Insn.t -> regs:int array -> unit;
  on_store : addr:int -> size:int -> value:int -> unit;
}

(** The path and descriptor of the program's own binary, as seen by the
    injected loader stub. *)
val self_exe_path : string

val self_exe_fd : int

(** [run ?config ?files space ~entry ~stack_top ~traps ~allocator] executes
    until exit, fault, violation (in hardening mode) or fuel exhaustion.
    [traps] is the B0 table from the loader. The stack grows down from
    [stack_top]; the caller must have mapped it. [files] pre-opens file
    descriptors for the [mmap] syscall — the loader stub's self-open of
    {!self_exe_path} resolves to {!self_exe_fd}. Contents are lazy and
    only forced when the guest actually [mmap]s the descriptor. *)
val run :
  ?config:config ->
  ?files:(int * bytes Lazy.t) list ->
  ?tracer:tracer ->
  E9_vm.Space.t ->
  entry:int ->
  stack_top:int ->
  traps:(int, int) Hashtbl.t ->
  allocator:allocator ->
  result

module Space = E9_vm.Space

type t = {
  space : Space.t;
  entry : int;
  traps : (int, int) Hashtbl.t;
  mapping_count : int;
}

let stack_top = 0x7fff_ff00_0000
let stack_size = 1 lsl 20
let heap_base = 0x6000_0000_0000

(* [boot_with ~libs elf] loads [libs] (shared objects) and then [elf] into
   one address space — the prelinked-process model: the §5.1 claim that
   patched and non-patched binaries mix freely is tested by patching any
   subset of them. Trap tables merge. *)
let boot_with ~libs elf =
  let space = Space.create () in
  let traps = Hashtbl.create 16 in
  let mapping_count = ref 0 in
  let load one =
    let loaded = Loader.load space one in
    Hashtbl.iter (Hashtbl.replace traps) loaded.Loader.traps;
    mapping_count := !mapping_count + loaded.Loader.mapping_count;
    loaded.Loader.entry
  in
  List.iter (fun l -> ignore (load l)) libs;
  let entry = load elf in
  Space.map_zero space
    ~vaddr:(stack_top - stack_size)
    ~len:stack_size ~prot:Elf_file.prot_rw;
  { space; entry; traps; mapping_count = !mapping_count }

let boot elf = boot_with ~libs:[] elf

let run ?config ?make_allocator ?tracer ?(libs = []) elf =
  let m = boot_with ~libs elf in
  let allocator =
    match make_allocator with
    | Some f -> f m.space
    | None -> Cpu.bump_allocator m.space ~heap_base
  in
  (* The binary's own image is pre-opened so an injected loader stub can
     openat("/proc/self/exe") and mmap its trampoline pages. Serialization
     is deferred until the guest actually opens it: Table-mode binaries
     never do, and re-serializing a multi-MiB image per run dominated
     Machine.run for large inputs. *)
  let files = [ (Cpu.self_exe_fd, lazy (Elf_file.to_bytes elf)) ] in
  Cpu.run ?config ~files ?tracer m.space ~entry:m.entry ~stack_top
    ~traps:m.traps ~allocator

let equivalent (a : Cpu.result) (b : Cpu.result) =
  a.Cpu.outcome = b.Cpu.outcome && String.equal a.Cpu.output b.Cpu.output

(** Host-call numbers: [int imm8] instructions with [imm8 >= 0x40] escape to
    the emulator host.

    These model the runtime services that real E9Patch deployments obtain
    from preloaded libraries ([LD_PRELOAD]ed allocators, instrumentation
    runtimes): the guest-visible call sites are identical; only the
    implementation lives on the host side of the emulator boundary. *)

(** [malloc]: rdi = size, returns pointer in rax. *)
val malloc : int

(** [free]: rdi = pointer. *)
val free : int

(** [count]: increment the per-site counter for the calling address
    (used by counting instrumentation trampolines). *)
val count : int

(** [check]: rdi = pointer; LowFat redzone check [p - base(p) >= 16].
    A violation either aborts the run or is counted, per CPU config. *)
val check : int

(** [print]: rdi = pointer to a NUL-terminated string; append it to the
    run's instrumentation log ({!Cpu.result.prints}). The log is a side
    channel — it does not touch the guest-visible output stream, so
    printing instrumentation stays trace-transparent. *)
val print : int

(** [trap]: record a SIGTRAP-style instrumentation event
    ({!Cpu.result.sigtraps}) and continue. Models E9Tool's [trap]
    builtin under a harness that catches the signal. *)
val trap : int

(** [is_hostcall n] — true for any recognized host-call number. *)
val is_hostcall : int -> bool

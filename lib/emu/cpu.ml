module Space = E9_vm.Space
module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Decode = E9_x86.Decode

type config = {
  far_jump_penalty : int;
  trap_penalty : int;
  fuel : int;
  abort_on_violation : bool;
}

let default_config =
  { far_jump_penalty = 3;
    trap_penalty = 3000;
    fuel = 200_000_000;
    abort_on_violation = true }

type allocator = {
  name : string;
  malloc : int -> int;
  free : int -> unit;
  check : int -> bool;
}

let bump_allocator space ~heap_base =
  let brk = ref heap_base in
  let malloc size =
    let size = max size 1 in
    (* 16-byte alignment, pages mapped on demand. *)
    let ptr = (!brk + 15) / 16 * 16 in
    brk := ptr + size;
    Space.map_zero space ~vaddr:ptr ~len:size ~prot:Elf_file.prot_rw;
    ptr
  in
  { name = "bump"; malloc; free = (fun _ -> ()); check = (fun _ -> true) }

type outcome =
  | Exited of int
  | Fault of int * string
  | Violation of int
  | Out_of_fuel

type result = {
  outcome : outcome;
  output : string;
  insns : int;
  cycles : int;
  far_jumps : int;
  traps : int;
  violations : int;
  sigtraps : int;
  prints : string list;  (** instrumentation log, in emission order *)
  counters : (int * int) list;
  last_rips : int list;  (** most recent instruction addresses, oldest first *)
  block_hits : int;
  block_misses : int;
  block_invalidations : int;
  blocks_cached : int;
}

(* A superblock: a straight-line run of decoded instructions starting at
   [entry] and ending at the first instruction that can transfer control
   (or at [max_block_len]). Executing one costs a single cache lookup and
   a single fuel check instead of one of each per instruction. *)
type block = { entry : int; code : Decode.decoded array }

type tracer = {
  on_retire : addr:int -> insn:Insn.t -> regs:int array -> unit;
  on_store : addr:int -> size:int -> value:int -> unit;
}

type state = {
  space : Space.t;
  regs : int array;
  mutable rip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable o_f : bool;
  mutable pf : bool;
  mutable insns : int;
  mutable cycles : int;
  mutable far_jumps : int;
  mutable trap_count : int;
  mutable violations : int;
  mutable sigtraps : int;
  mutable prints : string list;  (* reversed *)
  output : Buffer.t;
  files : (int, bytes Lazy.t) Hashtbl.t;  (* open file descriptors (mmap source) *)
  ring : int array;  (* recent RIP trace for fault diagnostics *)
  icache : (int, Decode.decoded) Hashtbl.t;
  bcache : (int, block) Hashtbl.t;
  (* Space.generation the caches were filled under; a mismatch means
     executable memory changed and every cached decode is suspect. *)
  mutable cache_gen : int;
  mutable block_hits : int;
  mutable block_misses : int;
  mutable block_invalidations : int;
  trap_table : (int, int) Hashtbl.t;
  counters : (int, int) Hashtbl.t;
  alloc : allocator;
  cfg : config;
  tracer : tracer option;
}

exception Stop of outcome

(* ------------------------------------------------------------------ *)
(* Register access                                                     *)
(* ------------------------------------------------------------------ *)

let get_reg st sz r =
  let v = st.regs.(Reg.index r) in
  match sz with
  | Insn.B -> v land 0xff
  | Insn.L -> v land 0xffff_ffff
  | Insn.Q -> v

let set_reg st sz r v =
  let i = Reg.index r in
  match sz with
  | Insn.B -> st.regs.(i) <- st.regs.(i) land lnot 0xff lor (v land 0xff)
  | Insn.L -> st.regs.(i) <- v land 0xffff_ffff (* 32-bit writes zero-extend *)
  | Insn.Q -> st.regs.(i) <- v

(* ------------------------------------------------------------------ *)
(* Memory operands                                                     *)
(* ------------------------------------------------------------------ *)

(* Effective address; [next_rip] is the address of the following
   instruction, the base for RIP-relative addressing. *)
let ea st (m : Insn.mem) ~next_rip =
  if m.rip_rel then next_rip + m.disp
  else
    let base = match m.base with Some r -> st.regs.(Reg.index r) | None -> 0 in
    let idx =
      match m.index with
      | Some (r, s) -> st.regs.(Reg.index r) * Insn.scale_factor s
      | None -> 0
    in
    base + idx + m.disp

let read_mem st sz addr =
  match sz with
  | Insn.B -> Space.read_u8 st.space addr
  | Insn.L -> Space.read_u32 st.space addr
  | Insn.Q -> Space.read_u64 st.space addr

let write_mem st sz addr v =
  (match sz with
  | Insn.B -> Space.write_u8 st.space addr v
  | Insn.L -> Space.write_u32 st.space addr v
  | Insn.Q -> Space.write_u64 st.space addr v);
  match st.tracer with
  | None -> ()
  | Some t -> (
      match sz with
      | Insn.B -> t.on_store ~addr ~size:1 ~value:(v land 0xff)
      | Insn.L -> t.on_store ~addr ~size:4 ~value:(v land 0xffff_ffff)
      | Insn.Q -> t.on_store ~addr ~size:8 ~value:v)

let read_operand st sz ~next_rip = function
  | Insn.Reg r -> get_reg st sz r
  | Insn.Imm v -> v
  | Insn.Mem m -> read_mem st sz (ea st m ~next_rip)

(* ------------------------------------------------------------------ *)
(* Flags                                                               *)
(* ------------------------------------------------------------------ *)

let mask_of = function
  | Insn.B -> 0xff
  | Insn.L -> 0xffff_ffff
  | Insn.Q -> -1

let msb_of = function
  | Insn.B -> 0x80
  | Insn.L -> 0x8000_0000
  | Insn.Q -> min_int (* OCaml native sign bit stands in for bit 63 *)

let parity v =
  (* PF is set when the low byte has even population count. *)
  let v = v land 0xff in
  let v = v lxor (v lsr 4) in
  let v = v lxor (v lsr 2) in
  let v = v lxor (v lsr 1) in
  v land 1 = 0

let set_zsp st sz r =
  let m = mask_of sz in
  st.zf <- r land m = 0;
  st.sf <- r land msb_of sz <> 0;
  st.pf <- parity r

(* Unsigned comparison that is correct even when the native sign bit is
   standing in for bit 63. *)
let ult a b = if (a < 0) = (b < 0) then a < b else b < 0

let flags_logic st sz r =
  set_zsp st sz r;
  st.cf <- false;
  st.o_f <- false

let flags_add st sz a b r =
  let m = mask_of sz in
  set_zsp st sz r;
  (match sz with
  | Insn.Q -> st.cf <- ult r a
  | Insn.B | Insn.L -> st.cf <- r land m < a land m);
  st.o_f <- (a lxor lnot b) land (a lxor r) land msb_of sz <> 0

let flags_sub st sz a b r =
  let m = mask_of sz in
  set_zsp st sz r;
  (match sz with
  | Insn.Q -> st.cf <- ult a b
  | Insn.B | Insn.L -> st.cf <- a land m < b land m);
  st.o_f <- (a lxor b) land (a lxor r) land msb_of sz <> 0

let cond st = function
  | Insn.O -> st.o_f
  | Insn.NO -> not st.o_f
  | Insn.B_ -> st.cf
  | Insn.AE -> not st.cf
  | Insn.E -> st.zf
  | Insn.NE -> not st.zf
  | Insn.BE -> st.cf || st.zf
  | Insn.A -> not (st.cf || st.zf)
  | Insn.S_ -> st.sf
  | Insn.NS -> not st.sf
  | Insn.P -> st.pf
  | Insn.NP -> not st.pf
  | Insn.L_ -> st.sf <> st.o_f
  | Insn.GE -> st.sf = st.o_f
  | Insn.LE -> st.zf || st.sf <> st.o_f
  | Insn.G -> (not st.zf) && st.sf = st.o_f

(* ------------------------------------------------------------------ *)
(* Control transfer with the locality cost model                       *)
(* ------------------------------------------------------------------ *)

let goto st ~from target =
  if target lsr 12 <> from lsr 12 then begin
    st.cycles <- st.cycles + st.cfg.far_jump_penalty;
    st.far_jumps <- st.far_jumps + 1
  end;
  st.rip <- target

(* ------------------------------------------------------------------ *)
(* Stack                                                               *)
(* ------------------------------------------------------------------ *)

let rsp = Reg.index Reg.RSP

let push st v =
  st.regs.(rsp) <- st.regs.(rsp) - 8;
  Space.write_u64 st.space st.regs.(rsp) v;
  match st.tracer with
  | None -> ()
  | Some t -> t.on_store ~addr:st.regs.(rsp) ~size:8 ~value:v

let pop st =
  let v = Space.read_u64 st.space st.regs.(rsp) in
  st.regs.(rsp) <- st.regs.(rsp) + 8;
  v

(* ------------------------------------------------------------------ *)
(* Host calls and syscalls                                             *)
(* ------------------------------------------------------------------ *)

let rdi = Reg.index Reg.RDI
let rsi = Reg.index Reg.RSI
let rdx = Reg.index Reg.RDX
let rax = Reg.index Reg.RAX

let read_cstring st addr =
  let buf = Buffer.create 32 in
  let rec go a =
    let c = Space.read_u8 st.space a in
    if c <> 0 && Buffer.length buf < 256 then begin
      Buffer.add_char buf (Char.chr c);
      go (a + 1)
    end
  in
  go addr;
  Buffer.contents buf

let hostcall st ~site n =
  if n = Hostcall.malloc then st.regs.(rax) <- st.alloc.malloc st.regs.(rdi)
  else if n = Hostcall.free then st.alloc.free st.regs.(rdi)
  else if n = Hostcall.count then
    Hashtbl.replace st.counters site
      (1 + Option.value ~default:0 (Hashtbl.find_opt st.counters site))
  else if n = Hostcall.check then begin
    if not (st.alloc.check st.regs.(rdi)) then begin
      st.violations <- st.violations + 1;
      if st.cfg.abort_on_violation then raise (Stop (Violation st.regs.(rdi)))
    end
  end
  else if n = Hostcall.print then
    (* Instrumentation log, not guest output: the trace oracle compares
       the output stream, and print trampolines must not perturb it. *)
    st.prints <- read_cstring st st.regs.(rdi) :: st.prints
  else if n = Hostcall.trap then st.sigtraps <- st.sigtraps + 1
  else raise (Stop (Fault (site, Printf.sprintf "unknown hostcall 0x%x" n)))

(* The path the injected E9Patch loader stub opens to mmap its own file. *)
let self_exe_path = "/proc/self/exe"
let self_exe_fd = 3

let mmap_prot bits : Elf_file.prot =
  { r = bits land 1 <> 0; w = bits land 2 <> 0; x = bits land 4 <> 0 }

let syscall st =
  let r10 = Reg.index Reg.R10 and r8 = Reg.index Reg.R8 and r9 = Reg.index Reg.R9 in
  match st.regs.(rax) with
  | 1 ->
      (* write(fd, buf, len) — fd ignored, all output is one stream *)
      let buf = Space.read_bytes st.space st.regs.(rsi) st.regs.(rdx) in
      Buffer.add_bytes st.output buf;
      st.regs.(rax) <- st.regs.(rdx)
  | 3 -> st.regs.(rax) <- 0 (* close *)
  | 9 ->
      (* mmap(addr, len, prot, flags, fd, off) — MAP_FIXED only, either
         anonymous or file-backed from an open descriptor. This is what the
         integrated loader stub calls. *)
      let addr = st.regs.(rdi)
      and len = st.regs.(rsi)
      and prot = mmap_prot st.regs.(rdx)
      and flags = st.regs.(r10)
      and fd = st.regs.(r8)
      and off = st.regs.(r9) in
      if flags land 0x10 = 0 then
        raise (Stop (Fault (st.rip, "mmap without MAP_FIXED unsupported")))
      else if flags land 0x20 <> 0 then begin
        Space.map_zero st.space ~vaddr:addr ~len ~prot;
        st.regs.(rax) <- addr
      end
      else begin
        match Hashtbl.find_opt st.files fd with
        | None -> st.regs.(rax) <- -9 (* EBADF *)
        | Some lazy_bytes ->
            let bytes = Lazy.force lazy_bytes in
            if off < 0 || off + len > Bytes.length bytes then
              raise (Stop (Fault (st.rip, "mmap beyond end of file")))
            else begin
              Space.map_sub st.space ~vaddr:addr ~prot bytes ~src_off:off ~len;
              st.regs.(rax) <- addr
            end
      end
  | 60 -> raise (Stop (Exited (st.regs.(rdi) land 0xff)))
  | 257 ->
      (* openat(dirfd, path, flags) — only the loader's self-open. *)
      let path = read_cstring st st.regs.(rsi) in
      if String.equal path self_exe_path && Hashtbl.mem st.files self_exe_fd
      then st.regs.(rax) <- self_exe_fd
      else st.regs.(rax) <- -2 (* ENOENT *)
  | n -> raise (Stop (Fault (st.rip, Printf.sprintf "unsupported syscall %d" n)))

(* ------------------------------------------------------------------ *)
(* Instruction dispatch                                                *)
(* ------------------------------------------------------------------ *)

let exec st (d : Decode.decoded) =
  let here = st.rip in
  let next_rip = here + d.len in
  st.rip <- next_rip;
  match d.insn with
  | Insn.Nop _ | Insn.Endbr64 -> ()
  | Insn.Mov (sz, dst, src) -> (
      let v = read_operand st sz ~next_rip src in
      match dst with
      | Insn.Reg r -> set_reg st sz r v
      | Insn.Mem m -> write_mem st sz (ea st m ~next_rip) v
      | Insn.Imm _ -> raise (Stop (Fault (here, "mov to immediate"))))
  | Insn.Movabs (r, v) -> st.regs.(Reg.index r) <- Int64.to_int v
  | Insn.Lea (r, m) -> st.regs.(Reg.index r) <- ea st m ~next_rip
  | Insn.Alu (op, sz, dst, src) -> (
      let a = read_operand st sz ~next_rip dst in
      let b = read_operand st sz ~next_rip src in
      let m = mask_of sz in
      let store r =
        match dst with
        | Insn.Reg reg -> set_reg st sz reg r
        | Insn.Mem mem -> write_mem st sz (ea st mem ~next_rip) r
        | Insn.Imm _ -> raise (Stop (Fault (here, "ALU to immediate")))
      in
      match op with
      | Insn.Add ->
          let r = (a + b) land m in
          flags_add st sz a b r;
          store r
      | Insn.Adc ->
          let carry = if st.cf then 1 else 0 in
          let r = (a + b + carry) land m in
          set_zsp st sz r;
          (match sz with
          | Insn.Q ->
              (* carry out of a+b, or the +1 wrapping an all-ones sum *)
              let s1 = a + b in
              st.cf <- ult s1 a || (carry = 1 && s1 = -1)
          | Insn.B | Insn.L ->
              st.cf <- (a land m) + (b land m) + carry > m);
          let msb = msb_of sz in
          let sa = a land msb <> 0 and sb = b land msb <> 0 in
          let sr = r land msb <> 0 in
          st.o_f <- sa = sb && sr <> sa;
          store r
      | Insn.Sbb ->
          let borrow = if st.cf then 1 else 0 in
          let r = (a - b - borrow) land m in
          set_zsp st sz r;
          (match sz with
          | Insn.Q -> st.cf <- ult a b || (borrow = 1 && a - b = 0)
          | Insn.B | Insn.L -> st.cf <- a land m < (b land m) + borrow);
          let msb = msb_of sz in
          let sa = a land msb <> 0 and sb = b land msb <> 0 in
          let sr = r land msb <> 0 in
          st.o_f <- sa <> sb && sr <> sa;
          store r
      | Insn.Sub ->
          let r = (a - b) land m in
          flags_sub st sz a b r;
          store r
      | Insn.Cmp ->
          let r = (a - b) land m in
          flags_sub st sz a b r
      | Insn.And ->
          let r = a land b land m in
          flags_logic st sz r;
          store r
      | Insn.Or ->
          let r = (a lor b) land m in
          flags_logic st sz r;
          store r
      | Insn.Xor ->
          let r = (a lxor b) land m in
          flags_logic st sz r;
          store r
      | Insn.Test ->
          let r = a land b land m in
          flags_logic st sz r)
  | Insn.Imul (r, src) ->
      let a = get_reg st Insn.Q r in
      let b = read_operand st Insn.Q ~next_rip src in
      let v = a * b in
      set_reg st Insn.Q r v;
      set_zsp st Insn.Q v;
      st.cf <- false;
      st.o_f <- false
  | Insn.Movzx (r, src) ->
      set_reg st Insn.Q r (read_operand st Insn.B ~next_rip src land 0xff)
  | Insn.Movsx (r, src) ->
      let v = read_operand st Insn.B ~next_rip src land 0xff in
      set_reg st Insn.Q r (if v land 0x80 <> 0 then v - 0x100 else v)
  | Insn.Setcc (c, dst) -> (
      let v = if cond st c then 1 else 0 in
      match dst with
      | Insn.Reg r -> set_reg st Insn.B r v
      | Insn.Mem m -> write_mem st Insn.B (ea st m ~next_rip) v
      | Insn.Imm _ -> raise (Stop (Fault (here, "setcc to immediate"))))
  | Insn.Cmov (c, r, src) ->
      (* The source is read unconditionally, as on hardware. *)
      let v = read_operand st Insn.Q ~next_rip src in
      if cond st c then set_reg st Insn.Q r v
  | Insn.Neg (sz, dst) -> (
      let a = read_operand st sz ~next_rip dst in
      let m = mask_of sz in
      let r = -a land m in
      flags_sub st sz 0 a r;
      match dst with
      | Insn.Reg reg -> set_reg st sz reg r
      | Insn.Mem mem -> write_mem st sz (ea st mem ~next_rip) r
      | Insn.Imm _ -> raise (Stop (Fault (here, "neg of immediate"))))
  | Insn.Not (sz, dst) -> (
      (* not does not affect flags *)
      let a = read_operand st sz ~next_rip dst in
      let r = lnot a land mask_of sz in
      match dst with
      | Insn.Reg reg -> set_reg st sz reg r
      | Insn.Mem mem -> write_mem st sz (ea st mem ~next_rip) r
      | Insn.Imm _ -> raise (Stop (Fault (here, "not of immediate"))))
  | Insn.Inc (sz, dst) | Insn.Dec (sz, dst) -> (
      (* inc/dec: add/sub 1 with CF preserved *)
      let a = read_operand st sz ~next_rip dst in
      let m = mask_of sz in
      let saved_cf = st.cf in
      let r =
        match d.insn with
        | Insn.Inc _ ->
            let r = (a + 1) land m in
            flags_add st sz a 1 r;
            r
        | _ ->
            let r = (a - 1) land m in
            flags_sub st sz a 1 r;
            r
      in
      st.cf <- saved_cf;
      match dst with
      | Insn.Reg reg -> set_reg st sz reg r
      | Insn.Mem mem -> write_mem st sz (ea st mem ~next_rip) r
      | Insn.Imm _ -> raise (Stop (Fault (here, "inc/dec of immediate"))))
  | Insn.Shift (sh, sz, dst, n) ->
      let a = read_operand st sz ~next_rip dst in
      let m = mask_of sz in
      let n = n land (match sz with Insn.Q -> 63 | Insn.B | Insn.L -> 31) in
      let r =
        match sh with
        | Insn.Shl -> (a lsl n) land m
        | Insn.Shr -> (a land m) lsr n
        | Insn.Sar -> (
            (* Arithmetic shift on the masked value's sign. *)
            match sz with
            | Insn.Q -> a asr n
            | Insn.B | Insn.L ->
                let signed =
                  if a land msb_of sz <> 0 then a land m - (m + 1) else a land m
                in
                signed asr n land m)
      in
      if n <> 0 then begin
        set_zsp st sz r;
        (match sh with
        | Insn.Shl -> st.cf <- (a lsl n) land m land msb_of sz <> 0 && n = 1
        | Insn.Shr | Insn.Sar -> st.cf <- (a land m) lsr (n - 1) land 1 = 1);
        st.o_f <- false
      end;
      (match dst with
      | Insn.Reg reg -> set_reg st sz reg r
      | Insn.Mem mem -> write_mem st sz (ea st mem ~next_rip) r
      | Insn.Imm _ -> raise (Stop (Fault (here, "shift of immediate"))))
  | Insn.Push r -> push st st.regs.(Reg.index r)
  | Insn.Pop r -> st.regs.(Reg.index r) <- pop st
  | Insn.Pushfq ->
      (* x86 RFLAGS bit layout: CF=0, PF=2, ZF=6, SF=7, OF=11; bit 1 is
         always set. *)
      let v =
        0x2
        lor (if st.cf then 1 else 0)
        lor (if st.pf then 4 else 0)
        lor (if st.zf then 0x40 else 0)
        lor (if st.sf then 0x80 else 0)
        lor if st.o_f then 0x800 else 0
      in
      push st v
  | Insn.Popfq ->
      let v = pop st in
      st.cf <- v land 1 <> 0;
      st.pf <- v land 4 <> 0;
      st.zf <- v land 0x40 <> 0;
      st.sf <- v land 0x80 <> 0;
      st.o_f <- v land 0x800 <> 0
  | Insn.Call rel ->
      push st next_rip;
      goto st ~from:here (next_rip + rel)
  | Insn.Call_ind op ->
      let target = read_operand st Insn.Q ~next_rip op in
      push st next_rip;
      goto st ~from:here target
  | Insn.Ret ->
      let target = pop st in
      goto st ~from:here target
  | Insn.Jmp rel | Insn.Jmp_short rel -> goto st ~from:here (next_rip + rel)
  | Insn.Jmp_ind op -> goto st ~from:here (read_operand st Insn.Q ~next_rip op)
  | Insn.Jcc (c, rel) | Insn.Jcc_short (c, rel) ->
      if cond st c then goto st ~from:here (next_rip + rel)
  | Insn.Int3 -> (
      (* B0: the SIGTRAP handler redirects to the patch trampoline. *)
      match Hashtbl.find_opt st.trap_table here with
      | Some trampoline ->
          st.cycles <- st.cycles + st.cfg.trap_penalty;
          st.trap_count <- st.trap_count + 1;
          goto st ~from:here trampoline
      | None -> raise (Stop (Fault (here, "int3 with no trap-table entry"))))
  | Insn.Int n ->
      if Hostcall.is_hostcall n then hostcall st ~site:here n
      else raise (Stop (Fault (here, Printf.sprintf "int 0x%x" n)))
  | Insn.Syscall -> syscall st
  | Insn.Ud2 -> raise (Stop (Fault (here, "ud2")))
  | Insn.Unknown b ->
      raise (Stop (Fault (here, Printf.sprintf "undecodable byte 0x%02x" b)))

(* ------------------------------------------------------------------ *)
(* Decoded-code caches and their invalidation                          *)
(* ------------------------------------------------------------------ *)

(* Both caches (per-instruction and superblock) are valid only while
   [Space.generation] is unchanged: a guest write to an executable page, or
   a syscall that remaps one, must flush them or stale code would run
   silently. The check is one load and compare. *)
let check_code_gen st =
  let g = Space.generation st.space in
  if g <> st.cache_gen then begin
    Hashtbl.reset st.icache;
    Hashtbl.reset st.bcache;
    st.cache_gen <- g;
    st.block_invalidations <- st.block_invalidations + 1
  end

let decode_at st addr =
  match Hashtbl.find_opt st.icache addr with
  | Some d -> d
  | None ->
      let window = Space.fetch_window st.space addr in
      let d = Decode.decode window 0 in
      Hashtbl.replace st.icache addr d;
      d

(* Instructions that may set RIP to anything other than the next address
   terminate a superblock. [Int] hostcalls and [Syscall] fall through
   sequentially, so they stay inside blocks (a syscall that remaps
   executable memory is caught by the generation check after each step). *)
let terminates (d : Decode.decoded) =
  match d.insn with
  | Insn.Call _ | Insn.Call_ind _ | Insn.Ret
  | Insn.Jmp _ | Insn.Jmp_short _ | Insn.Jmp_ind _
  | Insn.Jcc _ | Insn.Jcc_short _
  | Insn.Int3 | Insn.Ud2 | Insn.Unknown _ -> true
  | _ -> false

let max_block_len = 128

let build_block st entry =
  let buf = ref [] in
  let n = ref 0 in
  let a = ref entry in
  let stop = ref false in
  while not !stop do
    (* A fetch fault on the first instruction is the guest's own fault and
       propagates. A fault on a lookahead fetch only truncates the block:
       the guest may never fall through this far (an exit syscall, say),
       and if it does, re-entering the block cache at the bad address
       raises the fault with the correct RIP. *)
    match
      if !n = 0 then Some (Space.fetch_window st.space !a)
      else
        (try Some (Space.fetch_window st.space !a)
         with Space.Fault _ -> None)
    with
    | None -> stop := true
    | Some window ->
        let d = Decode.decode window 0 in
        buf := d :: !buf;
        incr n;
        a := !a + d.Decode.len;
        if terminates d || !n >= max_block_len then stop := true
  done;
  { entry; code = Array.of_list (List.rev !buf) }

let block_at st addr =
  match Hashtbl.find_opt st.bcache addr with
  | Some b ->
      st.block_hits <- st.block_hits + 1;
      b
  | None ->
      let b = build_block st addr in
      st.block_misses <- st.block_misses + 1;
      Hashtbl.replace st.bcache addr b;
      b

(* Execute a whole superblock. The fuel check happened at block entry; per
   instruction only the counters, the RIP ring and the generation check
   remain. A mid-block write to executable memory (self-modifying code)
   aborts the block after the writing instruction: the rest of the decoded
   array may be stale, so control returns to the outer loop, which re-decodes
   from the (already correct) RIP. *)
let exec_block st b =
  let n = Array.length b.code in
  let i = ref 0 in
  while !i < n do
    let d = Array.unsafe_get b.code !i in
    st.ring.(st.insns land 31) <- st.rip;
    st.insns <- st.insns + 1;
    st.cycles <- st.cycles + 1;
    (match st.tracer with
    | None -> ()
    | Some t -> t.on_retire ~addr:st.rip ~insn:d.Decode.insn ~regs:st.regs);
    exec st d;
    if Space.generation st.space <> st.cache_gen then begin
      check_code_gen st;
      i := n
    end
    else incr i
  done

let run ?(config = default_config) ?(files = []) ?tracer space ~entry
    ~stack_top ~traps ~allocator =
  let file_table = Hashtbl.create 4 in
  List.iter (fun (fd, bytes) -> Hashtbl.replace file_table fd bytes) files;
  let st =
    { space;
      regs = Array.make 16 0;
      rip = entry;
      zf = false;
      sf = false;
      cf = false;
      o_f = false;
      pf = false;
      insns = 0;
      cycles = 0;
      far_jumps = 0;
      trap_count = 0;
      violations = 0;
      sigtraps = 0;
      prints = [];
      output = Buffer.create 256;
      files = file_table;
      ring = Array.make 32 (-1);
      icache = Hashtbl.create 4096;
      bcache = Hashtbl.create 1024;
      cache_gen = Space.generation space;
      block_hits = 0;
      block_misses = 0;
      block_invalidations = 0;
      trap_table = traps;
      counters = Hashtbl.create 64;
      alloc = allocator;
      cfg = config;
      tracer }
  in
  st.regs.(rsp) <- stack_top;
  let outcome =
    try
      while st.insns < config.fuel do
        check_code_gen st;
        let b = block_at st st.rip in
        if st.insns + Array.length b.code <= config.fuel then exec_block st b
        else begin
          (* Not enough fuel for the whole block: single-step so that fuel
             exhaustion lands on the exact instruction count. *)
          let d = decode_at st st.rip in
          st.ring.(st.insns land 31) <- st.rip;
          st.insns <- st.insns + 1;
          st.cycles <- st.cycles + 1;
          (match st.tracer with
          | None -> ()
          | Some t ->
              t.on_retire ~addr:st.rip ~insn:d.Decode.insn ~regs:st.regs);
          exec st d
        end
      done;
      Out_of_fuel
    with
    | Stop o -> o
    | Space.Fault (addr, msg) -> Fault (addr, msg)
  in
  { outcome;
    output = Buffer.contents st.output;
    insns = st.insns;
    cycles = st.cycles;
    far_jumps = st.far_jumps;
    traps = st.trap_count;
    violations = st.violations;
    sigtraps = st.sigtraps;
    prints = List.rev st.prints;
    counters =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.counters []);
    last_rips =
      (let n = min st.insns 32 in
       List.init n (fun i -> st.ring.((st.insns - n + i) land 31)));
    block_hits = st.block_hits;
    block_misses = st.block_misses;
    block_invalidations = st.block_invalidations;
    blocks_cached = Hashtbl.length st.bcache }

(** One-call execution of an ELF image: create an address space, load the
    binary (including any E9Patch mapping/trap tables), map a stack, and
    run to completion. *)

type t = {
  space : E9_vm.Space.t;
  entry : int;
  traps : (int, int) Hashtbl.t;
  mapping_count : int;
}

(** Default stack placement: 1 MiB ending at [0x7fff_ff00_0000]. *)
val stack_top : int

val stack_size : int

(** [boot elf] creates a space and loads [elf] plus a stack. *)
val boot : Elf_file.t -> t

(** [boot_with ~libs elf] also loads shared objects into the same space
    first (the prelinked-process model): the §5.1 "mixing patched and
    non-patched code" scenario, where any subset of the binaries may have
    been rewritten. *)
val boot_with : libs:Elf_file.t list -> Elf_file.t -> t

(** [run ?config ?allocator elf] boots and executes [elf]. The allocator
    defaults to {!Cpu.bump_allocator} over a high heap region — standing in
    for the system malloc. *)
val run :
  ?config:Cpu.config ->
  ?make_allocator:(E9_vm.Space.t -> Cpu.allocator) ->
  ?tracer:Cpu.tracer ->
  ?libs:Elf_file.t list ->
  Elf_file.t ->
  Cpu.result

(** Heap placement used by the default allocator. *)
val heap_base : int

(** [equivalent a b] — observational equivalence of two runs: same outcome
    and same output stream (the correctness criterion for rewriting). *)
val equivalent : Cpu.result -> Cpu.result -> bool

let malloc = 0x41
let free = 0x42
let count = 0x50
let check = 0x51
let print = 0x52
let trap = 0x53

let is_hostcall n =
  n = malloc || n = free || n = count || n = check || n = print || n = trap

(** The patch-specification language — the role E9Tool's command language
    plays for the real E9Patch: declarative selection of patch locations
    and the instrumentation applied to each.

    A spec is a sequence of rules, first match wins:

    {v
    # instrument the control-flow edges, harden the heap writes
    patch jumps and size >= 5 with counter
    patch heap-writes with lowfat
    patch address 0x400026 with empty
    patch addr >= 0x400000 and addr < 0x401000 with counter
    patch op[0].type == mem and not uses rsp with empty
    patch calls and defined(target) and target >= 0x400800 with counter
    v}

    Selectors: the instruction classes [jumps], [heap-writes], [calls],
    [returns], [all]; the attributes [mnemonic <name>],
    [size CMP <int>], [addr CMP <int>], [target CMP <int>] (direct
    branches only — no CFG recovery), [op\[i\].type == reg|imm|mem],
    [op\[i\].reg == <reg>], [op\[i\].imm CMP <int>], [uses <reg>]; the
    guards [defined(target)], [defined(op\[i\])],
    [defined(op\[i\].reg|imm|mem)]; combined with [and], [or], [not] and
    parentheses ([or] binds loosest). [CMP] is one of [>= <= == != < >]
    ([=] is accepted for [==]); [address <int>] abbreviates
    [addr == <int>]. Templates: [empty], [counter], [lowfat]. [#]
    comments run to end of line; rules are separated by newlines or
    [;]. *)

type cmp = [ `Ge | `Le | `Eq | `Lt | `Gt | `Ne ]
type op_kind = [ `Reg | `Imm | `Mem ]

(** Attributes a [defined(...)] guard can test. *)
type defattr =
  | D_target
  | D_op of int
  | D_op_reg of int
  | D_op_imm of int
  | D_op_mem of int

type selector =
  | Jumps
  | Heap_writes
  | Calls
  | Returns
  | All
  | Mnemonic of string
  | Size_cmp of cmp * int
  | Addr_cmp of cmp * int
  | Target_cmp of cmp * int  (** static branch target; false if indirect *)
  | Op_type of int * op_kind
  | Op_reg of int * E9_x86.Reg.t
  | Op_imm_cmp of int * cmp * int
  | Reg_used of E9_x86.Reg.t
      (** register appears in an operand, as value or address component *)
  | Defined of defattr
  | And of selector * selector
  | Or of selector * selector
  | Not of selector

type template = Empty | Counter | Lowfat

type rule = { selector : selector; template : template }
type t = rule list

(** Parse errors carry the 1-based line and column of the offending
    token. *)
exception Parse_error of { line : int; col : int; message : string }

(** [parse source] parses a spec. Raises {!Parse_error}. *)
val parse : string -> t

(** [parse_selector source] parses a single selector expression (the
    tool frontend's [-M] argument). Raises {!Parse_error}. *)
val parse_selector : string -> selector

(** [selects sel site] — does the selector match this instruction? *)
val selects : selector -> Frontend.site -> bool

(** [template_for spec site] — the first matching rule's template. *)
val template_for : t -> Frontend.site -> template option

(** [to_rewriter_args spec] — the [select]/[template] pair to hand to
    {!E9_core.Rewriter.run}. *)
val to_rewriter_args :
  t ->
  (Frontend.site -> bool) * (Frontend.site -> E9_core.Trampoline.template)

(** [pp] prints a spec back in concrete syntax (parse ∘ pp = id up to
    formatting). *)
val pp : Format.formatter -> t -> unit

(** [pp_selector] prints one selector in concrete syntax
    (parse_selector ∘ pp_selector = id). *)
val pp_selector : Format.formatter -> selector -> unit

(** {1 Range fragments} — the spec identity half of the incremental plan
    cache key (DESIGN.md §14). *)

(** [fragment_for_range spec ~lo ~hi] drops every rule that provably
    cannot match any site whose address lies in [lo, hi) (only
    [Addr_cmp] selectors bound the address; the analysis is conservative
    — [not], mnemonics, sizes, operand attributes all "may match").
    Sound under first-match-wins: for every site in the range,
    [template_for] on the fragment equals [template_for] on the full
    spec. *)
val fragment_for_range : t -> lo:int -> hi:int -> t

(** [selector_may_match_in sel ~lo ~hi] is the underlying conservative
    test, exposed for frontends (the tool) that pair these selectors
    with their own patch actions. *)
val selector_may_match_in : selector -> lo:int -> hi:int -> bool

(** [fragment_key spec] is a stable, injective textual encoding of the
    fragment's semantics (canonical concrete syntax), for use as the
    [spec_key] in {!E9_core.Plan.config}. *)
val fragment_key : t -> string

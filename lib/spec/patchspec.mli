(** The patch-specification language — the role E9Tool's command language
    plays for the real E9Patch: declarative selection of patch locations
    and the instrumentation applied to each.

    A spec is a sequence of rules, first match wins:

    {v
    # instrument the control-flow edges, harden the heap writes
    patch jumps and size >= 5 with counter
    patch heap-writes with lowfat
    patch address 0x400026 with empty
    patch mnemonic imul or mnemonic shl with counter
    v}

    Selectors: [jumps], [heap-writes], [calls], [returns], [all],
    [address <int>], [mnemonic <name>], [size >= n], [size <= n],
    [size = n], combined with [and], [or], [not] and parentheses
    ([or] binds loosest). Templates: [empty], [counter], [lowfat].
    [#] comments run to end of line; rules are separated by newlines or
    [;]. *)

type selector =
  | Jumps
  | Heap_writes
  | Calls
  | Returns
  | All
  | Address of int
  | Mnemonic of string
  | Size_cmp of [ `Ge | `Le | `Eq ] * int
  | And of selector * selector
  | Or of selector * selector
  | Not of selector

type template = Empty | Counter | Lowfat

type rule = { selector : selector; template : template }
type t = rule list

(** Parse errors carry 1-based line and column. *)
exception Parse_error of { line : int; col : int; message : string }

(** [parse source] parses a spec. Raises {!Parse_error}. *)
val parse : string -> t

(** [selects sel site] — does the selector match this instruction? *)
val selects : selector -> Frontend.site -> bool

(** [template_for spec site] — the first matching rule's template. *)
val template_for : t -> Frontend.site -> template option

(** [to_rewriter_args spec] — the [select]/[template] pair to hand to
    {!E9_core.Rewriter.run}. *)
val to_rewriter_args :
  t ->
  (Frontend.site -> bool) * (Frontend.site -> E9_core.Trampoline.template)

(** [pp] prints a spec back in concrete syntax (parse ∘ pp = id up to
    formatting). *)
val pp : Format.formatter -> t -> unit

(** {1 Range fragments} — the spec identity half of the incremental plan
    cache key (DESIGN.md §14). *)

(** [fragment_for_range spec ~lo ~hi] drops every rule that provably
    cannot match any site whose address lies in [lo, hi) (only
    [Address] selectors bound the address; the analysis is conservative
    — [not], mnemonics, sizes all "may match"). Sound under
    first-match-wins: for every site in the range, [template_for] on the
    fragment equals [template_for] on the full spec. *)
val fragment_for_range : t -> lo:int -> hi:int -> t

(** [fragment_key spec] is a stable, injective textual encoding of the
    fragment's semantics (canonical concrete syntax), for use as the
    [spec_key] in {!E9_core.Plan.config}. *)
val fragment_key : t -> string

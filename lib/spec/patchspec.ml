module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Classify = E9_x86.Classify

type cmp = [ `Ge | `Le | `Eq | `Lt | `Gt | `Ne ]
type op_kind = [ `Reg | `Imm | `Mem ]

type defattr =
  | D_target
  | D_op of int
  | D_op_reg of int
  | D_op_imm of int
  | D_op_mem of int

type selector =
  | Jumps
  | Heap_writes
  | Calls
  | Returns
  | All
  | Mnemonic of string
  | Size_cmp of cmp * int
  | Addr_cmp of cmp * int
  | Target_cmp of cmp * int
  | Op_type of int * op_kind
  | Op_reg of int * Reg.t
  | Op_imm_cmp of int * cmp * int
  | Reg_used of Reg.t
  | Defined of defattr
  | And of selector * selector
  | Or of selector * selector
  | Not of selector

type template = Empty | Counter | Lowfat
type rule = { selector : selector; template : template }
type t = rule list

exception Parse_error of { line : int; col : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | KW of string  (* keywords and identifiers *)
  | NUM of int
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | DOT
  | OP of string  (* >=, <=, =, <, >, != *)
  | SEP  (* newline or ; — rule separator *)
  | EOF

type lexed = { tok : token; tline : int; tcol : int }

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

let lex source =
  let n = String.length source in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let push tok tline tcol = toks := { tok; tline; tcol } :: !toks in
  let err message = raise (Parse_error { line = !line; col = !col; message }) in
  let advance () =
    (if source.[!i] = '\n' then begin
       line := !line + 1;
       col := 1
     end
     else col := !col + 1);
    incr i
  in
  let digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = source.[!i] in
    let tline = !line and tcol = !col in
    if c = '\n' || c = ';' then begin
      push SEP tline tcol;
      advance ()
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance ()
    else if c = '#' then
      while !i < n && source.[!i] <> '\n' do
        advance ()
      done
    else if c = '(' then begin
      push LPAREN tline tcol;
      advance ()
    end
    else if c = ')' then begin
      push RPAREN tline tcol;
      advance ()
    end
    else if c = '[' then begin
      push LBRACKET tline tcol;
      advance ()
    end
    else if c = ']' then begin
      push RBRACKET tline tcol;
      advance ()
    end
    else if c = '.' then begin
      push DOT tline tcol;
      advance ()
    end
    else if c = '>' || c = '<' || c = '=' || c = '!' then begin
      let two = !i + 1 < n && source.[!i + 1] = '=' in
      if c = '!' && not two then err "expected != ";
      (* [==] is an alias of [=]; both lex to OP "=". *)
      let op =
        if not two then String.make 1 c
        else if c = '=' then "="
        else String.make 1 c ^ "="
      in
      push (OP op) tline tcol;
      advance ();
      if two then advance ()
    end
    else if digit c || (c = '-' && !i + 1 < n && digit source.[!i + 1]) then begin
      let start = !i in
      advance ();
      while !i < n && is_ident_char source.[!i] do
        advance ()
      done;
      let text = String.sub source start (!i - start) in
      match int_of_string_opt text with
      | Some v -> push (NUM v) tline tcol
      | None -> raise (Parse_error { line = tline; col = tcol;
                                     message = "bad number: " ^ text })
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char source.[!i] do
        advance ()
      done;
      push (KW (String.sub source start (!i - start))) tline tcol
    end
    else err (Printf.sprintf "unexpected character %C" c)
  done;
  push EOF !line !col;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent; [or] < [and] < [not]/atom)               *)
(* ------------------------------------------------------------------ *)

type parser_state = { mutable toks : lexed list }

let peek ps = List.hd ps.toks

let next ps =
  let t = List.hd ps.toks in
  (match ps.toks with _ :: rest when rest <> [] -> ps.toks <- rest | _ -> ());
  t

let fail (l : lexed) message =
  raise (Parse_error { line = l.tline; col = l.tcol; message })

let expect_kw ps kw =
  let t = next ps in
  match t.tok with
  | KW k when String.equal k kw -> ()
  | _ -> fail t (Printf.sprintf "expected '%s'" kw)

let parse_num ps =
  let t = next ps in
  match t.tok with NUM v -> v | _ -> fail t "expected a number"

let parse_cmp ps what : cmp =
  let t = next ps in
  match t.tok with
  | OP ">=" -> `Ge
  | OP "<=" -> `Le
  | OP "=" -> `Eq
  | OP "<" -> `Lt
  | OP ">" -> `Gt
  | OP "!=" -> `Ne
  | _ -> fail t (Printf.sprintf "expected a comparison after '%s'" what)

let parse_reg ps what =
  let t = next ps in
  match t.tok with
  | KW name -> (
      match Reg.of_name name with
      | Some r -> r
      | None -> fail t (Printf.sprintf "unknown register '%s'" name))
  | _ -> fail t (Printf.sprintf "expected a register name after '%s'" what)

(* op[i] — the index, brackets already announced by the [op] keyword. *)
let parse_op_index ps =
  let l = next ps in
  if l.tok <> LBRACKET then fail l "expected '[' after 'op'";
  let i = parse_num ps in
  let r = next ps in
  if r.tok <> RBRACKET then fail r "expected ']'";
  if i < 0 then fail l "operand index must be non-negative";
  i

let rec parse_sel ps = parse_or ps

and parse_or ps =
  let left = parse_and ps in
  match (peek ps).tok with
  | KW "or" ->
      ignore (next ps);
      Or (left, parse_or ps)
  | _ -> left

and parse_and ps =
  let left = parse_atom ps in
  match (peek ps).tok with
  | KW "and" ->
      ignore (next ps);
      And (left, parse_and ps)
  | _ -> left

and parse_atom ps =
  let t = next ps in
  match t.tok with
  | KW "not" -> Not (parse_atom ps)
  | LPAREN ->
      let s = parse_sel ps in
      let c = next ps in
      if c.tok <> RPAREN then fail c "expected ')'";
      s
  | KW "jumps" -> Jumps
  | KW "heap-writes" -> Heap_writes
  | KW "calls" -> Calls
  | KW "returns" -> Returns
  | KW "all" -> All
  | KW "address" -> (
      (* sugar for [addr == N] *)
      let v = next ps in
      match v.tok with
      | NUM a -> Addr_cmp (`Eq, a)
      | _ -> fail v "expected an address after 'address'")
  | KW "mnemonic" -> (
      let v = next ps in
      match v.tok with
      | KW name -> Mnemonic name
      | _ -> fail v "expected a mnemonic name")
  | KW "size" ->
      let c = parse_cmp ps "size" in
      Size_cmp (c, parse_num ps)
  | KW "addr" ->
      let c = parse_cmp ps "addr" in
      Addr_cmp (c, parse_num ps)
  | KW "target" ->
      let c = parse_cmp ps "target" in
      Target_cmp (c, parse_num ps)
  | KW "uses" -> Reg_used (parse_reg ps "uses")
  | KW "op" -> (
      let i = parse_op_index ps in
      let d = next ps in
      if d.tok <> DOT then fail d "expected '.' after 'op[i]'";
      let f = next ps in
      match f.tok with
      | KW "type" -> (
          let c = parse_cmp ps "op[i].type" in
          let k = next ps in
          let kind =
            match k.tok with
            | KW "reg" -> `Reg
            | KW "imm" -> `Imm
            | KW "mem" -> `Mem
            | _ -> fail k "expected reg, imm or mem"
          in
          match c with
          | `Eq -> Op_type (i, kind)
          | `Ne -> Not (Op_type (i, kind))
          | _ -> fail k "op[i].type supports only == and !=")
      | KW "reg" -> (
          let c = parse_cmp ps "op[i].reg" in
          let r = parse_reg ps "op[i].reg" in
          match c with
          | `Eq -> Op_reg (i, r)
          | `Ne -> Not (Op_reg (i, r))
          | _ -> fail f "op[i].reg supports only == and !=")
      | KW "imm" ->
          let c = parse_cmp ps "op[i].imm" in
          Op_imm_cmp (i, c, parse_num ps)
      | _ -> fail f "expected type, reg or imm after 'op[i].'")
  | KW "defined" -> (
      let l = next ps in
      if l.tok <> LPAREN then fail l "expected '(' after 'defined'";
      let a = next ps in
      let attr =
        match a.tok with
        | KW "target" -> D_target
        | KW "op" -> (
            let i = parse_op_index ps in
            match (peek ps).tok with
            | DOT -> (
                ignore (next ps);
                let f = next ps in
                match f.tok with
                | KW "reg" -> D_op_reg i
                | KW "imm" -> D_op_imm i
                | KW "mem" -> D_op_mem i
                | _ -> fail f "expected reg, imm or mem after 'op[i].'")
            | _ -> D_op i)
        | _ -> fail a "expected target or op[i] inside defined(...)"
      in
      let r = next ps in
      if r.tok <> RPAREN then fail r "expected ')'";
      Defined attr)
  | KW other -> fail t (Printf.sprintf "unknown selector '%s'" other)
  | _ -> fail t "expected a selector"

let parse_template ps =
  let t = next ps in
  match t.tok with
  | KW "empty" -> Empty
  | KW "counter" -> Counter
  | KW "lowfat" -> Lowfat
  | KW other -> fail t (Printf.sprintf "unknown template '%s'" other)
  | _ -> fail t "expected a template"

let parse_rule ps =
  expect_kw ps "patch";
  let selector = parse_sel ps in
  expect_kw ps "with";
  let template = parse_template ps in
  { selector; template }

let parse source =
  let ps = { toks = lex source } in
  let rules = ref [] in
  let rec skip_seps () =
    match (peek ps).tok with
    | SEP ->
        ignore (next ps);
        skip_seps ()
    | _ -> ()
  in
  skip_seps ();
  while (peek ps).tok <> EOF do
    rules := parse_rule ps :: !rules;
    (match (peek ps).tok with
    | SEP | EOF -> skip_seps ()
    | _ -> fail (peek ps) "expected end of rule");
    skip_seps ()
  done;
  List.rev !rules

let parse_selector source =
  let ps = { toks = lex source } in
  let sel = parse_sel ps in
  (match (peek ps).tok with
  | EOF -> ()
  | SEP ->
      let rec seps () =
        match (peek ps).tok with
        | SEP ->
            ignore (next ps);
            seps ()
        | EOF -> ()
        | _ -> fail (peek ps) "expected end of expression"
      in
      seps ()
  | _ -> fail (peek ps) "expected end of expression");
  sel

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let mnemonic_of (i : Insn.t) =
  match i with
  | Insn.Mov _ | Insn.Movabs _ -> "mov"
  | Insn.Lea _ -> "lea"
  | Insn.Alu (Insn.Add, _, _, _) -> "add"
  | Insn.Alu (Insn.Adc, _, _, _) -> "adc"
  | Insn.Alu (Insn.Sbb, _, _, _) -> "sbb"
  | Insn.Alu (Insn.Or, _, _, _) -> "or"
  | Insn.Alu (Insn.And, _, _, _) -> "and"
  | Insn.Alu (Insn.Sub, _, _, _) -> "sub"
  | Insn.Alu (Insn.Xor, _, _, _) -> "xor"
  | Insn.Alu (Insn.Cmp, _, _, _) -> "cmp"
  | Insn.Alu (Insn.Test, _, _, _) -> "test"
  | Insn.Imul _ -> "imul"
  | Insn.Movzx _ -> "movzx"
  | Insn.Movsx _ -> "movsx"
  | Insn.Setcc _ -> "setcc"
  | Insn.Cmov _ -> "cmov"
  | Insn.Neg _ -> "neg"
  | Insn.Not _ -> "not"
  | Insn.Inc _ -> "inc"
  | Insn.Dec _ -> "dec"
  | Insn.Shift (Insn.Shl, _, _, _) -> "shl"
  | Insn.Shift (Insn.Shr, _, _, _) -> "shr"
  | Insn.Shift (Insn.Sar, _, _, _) -> "sar"
  | Insn.Push _ -> "push"
  | Insn.Pop _ -> "pop"
  | Insn.Pushfq -> "pushfq"
  | Insn.Popfq -> "popfq"
  | Insn.Call _ | Insn.Call_ind _ -> "call"
  | Insn.Ret -> "ret"
  | Insn.Jmp _ | Insn.Jmp_short _ | Insn.Jmp_ind _ -> "jmp"
  | Insn.Jcc _ | Insn.Jcc_short _ -> "jcc"
  | Insn.Nop _ -> "nop"
  | Insn.Endbr64 -> "endbr64"
  | Insn.Int3 -> "int3"
  | Insn.Int _ -> "int"
  | Insn.Syscall -> "syscall"
  | Insn.Ud2 -> "ud2"
  | Insn.Unknown _ -> "(bad)"

let cmp_int (c : cmp) a b =
  match c with
  | `Ge -> a >= b
  | `Le -> a <= b
  | `Eq -> a = b
  | `Lt -> a < b
  | `Gt -> a > b
  | `Ne -> a <> b

(* Branch target, where derivable without CFG recovery: direct jumps,
   conditional jumps and direct calls carry their destination in the
   encoding. Indirect branches have no static target — [Target_cmp] is
   false and [defined(target)] distinguishes the cases. *)
let target_of (site : Frontend.site) =
  match site.Frontend.insn with
  | Insn.Jmp rel | Insn.Jmp_short rel
  | Insn.Jcc (_, rel) | Insn.Jcc_short (_, rel)
  | Insn.Call rel ->
      Some (site.Frontend.addr + site.Frontend.len + rel)
  | _ -> None

let nth_operand (site : Frontend.site) i =
  List.nth_opt (Insn.operands site.Frontend.insn) i

let rec selects sel (site : Frontend.site) =
  match sel with
  | Jumps -> Classify.is_jump site.Frontend.insn
  | Heap_writes -> Classify.is_heap_write site.Frontend.insn
  | Calls -> (
      match site.Frontend.insn with
      | Insn.Call _ | Insn.Call_ind _ -> true
      | _ -> false)
  | Returns -> site.Frontend.insn = Insn.Ret
  | All -> true
  | Mnemonic m -> String.equal m (mnemonic_of site.Frontend.insn)
  | Size_cmp (c, n) -> cmp_int c site.Frontend.len n
  | Addr_cmp (c, n) -> cmp_int c site.Frontend.addr n
  | Target_cmp (c, n) -> (
      match target_of site with Some t -> cmp_int c t n | None -> false)
  | Op_type (i, k) -> (
      match nth_operand site i with
      | Some (Insn.Reg _) -> k = `Reg
      | Some (Insn.Imm _) -> k = `Imm
      | Some (Insn.Mem _) -> k = `Mem
      | None -> false)
  | Op_reg (i, r) -> (
      match nth_operand site i with
      | Some (Insn.Reg r') -> Reg.equal r r'
      | _ -> false)
  | Op_imm_cmp (i, c, n) -> (
      match nth_operand site i with
      | Some (Insn.Imm v) -> cmp_int c v n
      | _ -> false)
  | Reg_used r -> Insn.uses_reg site.Frontend.insn r
  | Defined D_target -> target_of site <> None
  | Defined (D_op i) -> nth_operand site i <> None
  | Defined (D_op_reg i) -> (
      match nth_operand site i with Some (Insn.Reg _) -> true | _ -> false)
  | Defined (D_op_imm i) -> (
      match nth_operand site i with Some (Insn.Imm _) -> true | _ -> false)
  | Defined (D_op_mem i) -> (
      match nth_operand site i with Some (Insn.Mem _) -> true | _ -> false)
  | And (a, b) -> selects a site && selects b site
  | Or (a, b) -> selects a site || selects b site
  | Not a -> not (selects a site)

let template_for spec site =
  List.find_map
    (fun r -> if selects r.selector site then Some r.template else None)
    spec

let to_rewriter_args spec =
  let select site = template_for spec site <> None in
  let template site =
    match template_for spec site with
    | Some Empty | None -> E9_core.Trampoline.Empty
    | Some Counter -> E9_core.Trampoline.Counter
    | Some Lowfat -> E9_core.Trampoline.Lowfat_check
  in
  (select, template)

(* ------------------------------------------------------------------ *)
(* Range fragments (plan-cache keys)                                   *)
(* ------------------------------------------------------------------ *)

(* Conservative "may this selector match some site with an address in
   [lo, hi)?": only [Addr_cmp] constrains the address; everything else —
   including any [Not] — may. A rule whose selector provably cannot
   match in the range can be dropped without changing [template_for] for
   any site in the range (first match wins, and the dropped rule never
   was the first match there). For [And] the conjunction of the two
   independent answers is still conservative: any site matching both
   conjuncts makes both answers true. *)
let rec may_match_in ~lo ~hi = function
  | Addr_cmp (c, n) -> (
      (* Does some address in [lo, hi) satisfy the comparison? *)
      match c with
      | `Ge -> hi - 1 >= n
      | `Gt -> hi - 1 > n
      | `Le -> lo <= n
      | `Lt -> lo < n
      | `Eq -> lo <= n && n < hi
      | `Ne -> not (lo = n && hi = lo + 1))
  | And (x, y) -> may_match_in ~lo ~hi x && may_match_in ~lo ~hi y
  | Or (x, y) -> may_match_in ~lo ~hi x || may_match_in ~lo ~hi y
  | Jumps | Heap_writes | Calls | Returns | All | Mnemonic _ | Size_cmp _
  | Target_cmp _ | Op_type _ | Op_reg _ | Op_imm_cmp _ | Reg_used _
  | Defined _ | Not _ ->
      true

let selector_may_match_in sel ~lo ~hi = may_match_in ~lo ~hi sel

let fragment_for_range spec ~lo ~hi =
  List.filter (fun r -> may_match_in ~lo ~hi r.selector) spec

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let cmp_str : cmp -> string = function
  | `Ge -> ">="
  | `Le -> "<="
  | `Eq -> "=="
  | `Lt -> "<"
  | `Gt -> ">"
  | `Ne -> "!="

(* Bare lowercase register name, as the concrete syntax writes it. *)
let reg_str r =
  let s = Reg.name64 r in
  String.sub s 1 (String.length s - 1)

let kind_str : op_kind -> string = function
  | `Reg -> "reg"
  | `Imm -> "imm"
  | `Mem -> "mem"

let defattr_str = function
  | D_target -> "target"
  | D_op i -> Printf.sprintf "op[%d]" i
  | D_op_reg i -> Printf.sprintf "op[%d].reg" i
  | D_op_imm i -> Printf.sprintf "op[%d].imm" i
  | D_op_mem i -> Printf.sprintf "op[%d].mem" i

let rec pp_sel ppf = function
  | Jumps -> Format.pp_print_string ppf "jumps"
  | Heap_writes -> Format.pp_print_string ppf "heap-writes"
  | Calls -> Format.pp_print_string ppf "calls"
  | Returns -> Format.pp_print_string ppf "returns"
  | All -> Format.pp_print_string ppf "all"
  | Mnemonic m -> Format.fprintf ppf "mnemonic %s" m
  | Size_cmp (c, n) -> Format.fprintf ppf "size %s %d" (cmp_str c) n
  | Addr_cmp (c, n) ->
      if n < 0 then Format.fprintf ppf "addr %s %d" (cmp_str c) n
      else Format.fprintf ppf "addr %s 0x%x" (cmp_str c) n
  | Target_cmp (c, n) ->
      if n < 0 then Format.fprintf ppf "target %s %d" (cmp_str c) n
      else Format.fprintf ppf "target %s 0x%x" (cmp_str c) n
  | Op_type (i, k) -> Format.fprintf ppf "op[%d].type == %s" i (kind_str k)
  | Op_reg (i, r) -> Format.fprintf ppf "op[%d].reg == %s" i (reg_str r)
  | Op_imm_cmp (i, c, n) ->
      Format.fprintf ppf "op[%d].imm %s %d" i (cmp_str c) n
  | Reg_used r -> Format.fprintf ppf "uses %s" (reg_str r)
  | Defined a -> Format.fprintf ppf "defined(%s)" (defattr_str a)
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_sel a pp_sel b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_sel a pp_sel b
  | Not a -> Format.fprintf ppf "not %a" pp_sel a

let pp_selector = pp_sel

let pp_template ppf = function
  | Empty -> Format.pp_print_string ppf "empty"
  | Counter -> Format.pp_print_string ppf "counter"
  | Lowfat -> Format.pp_print_string ppf "lowfat"

let pp ppf spec =
  List.iter
    (fun r ->
      Format.fprintf ppf "patch %a with %a@." pp_sel r.selector pp_template
        r.template)
    spec

(* Canonical concrete syntax (fully parenthesized by [pp_sel]) is a
   stable, injective encoding of the fragment's semantics — exactly what
   a plan key needs. *)
let fragment_key spec = Format.asprintf "%a" pp spec

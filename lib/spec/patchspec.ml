module Insn = E9_x86.Insn
module Classify = E9_x86.Classify

type selector =
  | Jumps
  | Heap_writes
  | Calls
  | Returns
  | All
  | Address of int
  | Mnemonic of string
  | Size_cmp of [ `Ge | `Le | `Eq ] * int
  | And of selector * selector
  | Or of selector * selector
  | Not of selector

type template = Empty | Counter | Lowfat
type rule = { selector : selector; template : template }
type t = rule list

exception Parse_error of { line : int; col : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | KW of string  (* keywords and identifiers *)
  | NUM of int
  | LPAREN
  | RPAREN
  | OP of string  (* >=, <=, = *)
  | SEP  (* newline or ; — rule separator *)
  | EOF

type lexed = { tok : token; tline : int; tcol : int }

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

let lex source =
  let n = String.length source in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let push tok tline tcol = toks := { tok; tline; tcol } :: !toks in
  let err message = raise (Parse_error { line = !line; col = !col; message }) in
  let advance () =
    (if source.[!i] = '\n' then begin
       line := !line + 1;
       col := 1
     end
     else col := !col + 1);
    incr i
  in
  while !i < n do
    let c = source.[!i] in
    let tline = !line and tcol = !col in
    if c = '\n' || c = ';' then begin
      push SEP tline tcol;
      advance ()
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance ()
    else if c = '#' then
      while !i < n && source.[!i] <> '\n' do
        advance ()
      done
    else if c = '(' then begin
      push LPAREN tline tcol;
      advance ()
    end
    else if c = ')' then begin
      push RPAREN tline tcol;
      advance ()
    end
    else if c = '>' || c = '<' || c = '=' then begin
      let op =
        if c = '=' then "="
        else if !i + 1 < n && source.[!i + 1] = '=' then String.make 1 c ^ "="
        else err (Printf.sprintf "expected %c= " c)
      in
      push (OP op) tline tcol;
      advance ();
      if String.length op = 2 then advance ()
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && is_ident_char source.[!i] do
        advance ()
      done;
      let text = String.sub source start (!i - start) in
      match int_of_string_opt text with
      | Some v -> push (NUM v) tline tcol
      | None -> raise (Parse_error { line = tline; col = tcol;
                                     message = "bad number: " ^ text })
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char source.[!i] do
        advance ()
      done;
      push (KW (String.sub source start (!i - start))) tline tcol
    end
    else err (Printf.sprintf "unexpected character %C" c)
  done;
  push EOF !line !col;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent; [or] < [and] < [not]/atom)               *)
(* ------------------------------------------------------------------ *)

type parser_state = { mutable toks : lexed list }

let peek ps = List.hd ps.toks

let next ps =
  let t = List.hd ps.toks in
  (match ps.toks with _ :: rest when rest <> [] -> ps.toks <- rest | _ -> ());
  t

let fail (l : lexed) message =
  raise (Parse_error { line = l.tline; col = l.tcol; message })

let expect_kw ps kw =
  let t = next ps in
  match t.tok with
  | KW k when String.equal k kw -> ()
  | _ -> fail t (Printf.sprintf "expected '%s'" kw)

let parse_num ps =
  let t = next ps in
  match t.tok with NUM v -> v | _ -> fail t "expected a number"

let rec parse_sel ps = parse_or ps

and parse_or ps =
  let left = parse_and ps in
  match (peek ps).tok with
  | KW "or" ->
      ignore (next ps);
      Or (left, parse_or ps)
  | _ -> left

and parse_and ps =
  let left = parse_atom ps in
  match (peek ps).tok with
  | KW "and" ->
      ignore (next ps);
      And (left, parse_and ps)
  | _ -> left

and parse_atom ps =
  let t = next ps in
  match t.tok with
  | KW "not" -> Not (parse_atom ps)
  | LPAREN ->
      let s = parse_sel ps in
      let c = next ps in
      if c.tok <> RPAREN then fail c "expected ')'";
      s
  | KW "jumps" -> Jumps
  | KW "heap-writes" -> Heap_writes
  | KW "calls" -> Calls
  | KW "returns" -> Returns
  | KW "all" -> All
  | KW "address" -> (
      match (next ps).tok with
      | NUM v -> Address v
      | _ -> fail t "expected an address after 'address'")
  | KW "mnemonic" -> (
      match (next ps).tok with
      | KW name -> Mnemonic name
      | _ -> fail t "expected a mnemonic name")
  | KW "size" -> (
      let op = next ps in
      match op.tok with
      | OP ">=" -> Size_cmp (`Ge, parse_num ps)
      | OP "<=" -> Size_cmp (`Le, parse_num ps)
      | OP "=" -> Size_cmp (`Eq, parse_num ps)
      | _ -> fail op "expected >=, <= or = after 'size'")
  | KW other -> fail t (Printf.sprintf "unknown selector '%s'" other)
  | _ -> fail t "expected a selector"

let parse_template ps =
  let t = next ps in
  match t.tok with
  | KW "empty" -> Empty
  | KW "counter" -> Counter
  | KW "lowfat" -> Lowfat
  | KW other -> fail t (Printf.sprintf "unknown template '%s'" other)
  | _ -> fail t "expected a template"

let parse_rule ps =
  expect_kw ps "patch";
  let selector = parse_sel ps in
  expect_kw ps "with";
  let template = parse_template ps in
  { selector; template }

let parse source =
  let ps = { toks = lex source } in
  let rules = ref [] in
  let rec skip_seps () =
    match (peek ps).tok with
    | SEP ->
        ignore (next ps);
        skip_seps ()
    | _ -> ()
  in
  skip_seps ();
  while (peek ps).tok <> EOF do
    rules := parse_rule ps :: !rules;
    (match (peek ps).tok with
    | SEP | EOF -> skip_seps ()
    | _ -> fail (peek ps) "expected end of rule");
    skip_seps ()
  done;
  List.rev !rules

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let mnemonic_of (i : Insn.t) =
  match i with
  | Insn.Mov _ | Insn.Movabs _ -> "mov"
  | Insn.Lea _ -> "lea"
  | Insn.Alu (Insn.Add, _, _, _) -> "add"
  | Insn.Alu (Insn.Adc, _, _, _) -> "adc"
  | Insn.Alu (Insn.Sbb, _, _, _) -> "sbb"
  | Insn.Alu (Insn.Or, _, _, _) -> "or"
  | Insn.Alu (Insn.And, _, _, _) -> "and"
  | Insn.Alu (Insn.Sub, _, _, _) -> "sub"
  | Insn.Alu (Insn.Xor, _, _, _) -> "xor"
  | Insn.Alu (Insn.Cmp, _, _, _) -> "cmp"
  | Insn.Alu (Insn.Test, _, _, _) -> "test"
  | Insn.Imul _ -> "imul"
  | Insn.Movzx _ -> "movzx"
  | Insn.Movsx _ -> "movsx"
  | Insn.Setcc _ -> "setcc"
  | Insn.Cmov _ -> "cmov"
  | Insn.Neg _ -> "neg"
  | Insn.Not _ -> "not"
  | Insn.Inc _ -> "inc"
  | Insn.Dec _ -> "dec"
  | Insn.Shift (Insn.Shl, _, _, _) -> "shl"
  | Insn.Shift (Insn.Shr, _, _, _) -> "shr"
  | Insn.Shift (Insn.Sar, _, _, _) -> "sar"
  | Insn.Push _ -> "push"
  | Insn.Pop _ -> "pop"
  | Insn.Pushfq -> "pushfq"
  | Insn.Popfq -> "popfq"
  | Insn.Call _ | Insn.Call_ind _ -> "call"
  | Insn.Ret -> "ret"
  | Insn.Jmp _ | Insn.Jmp_short _ | Insn.Jmp_ind _ -> "jmp"
  | Insn.Jcc _ | Insn.Jcc_short _ -> "jcc"
  | Insn.Nop _ -> "nop"
  | Insn.Endbr64 -> "endbr64"
  | Insn.Int3 -> "int3"
  | Insn.Int _ -> "int"
  | Insn.Syscall -> "syscall"
  | Insn.Ud2 -> "ud2"
  | Insn.Unknown _ -> "(bad)"

let rec selects sel (site : Frontend.site) =
  match sel with
  | Jumps -> Classify.is_jump site.Frontend.insn
  | Heap_writes -> Classify.is_heap_write site.Frontend.insn
  | Calls -> (
      match site.Frontend.insn with
      | Insn.Call _ | Insn.Call_ind _ -> true
      | _ -> false)
  | Returns -> site.Frontend.insn = Insn.Ret
  | All -> true
  | Address a -> site.Frontend.addr = a
  | Mnemonic m -> String.equal m (mnemonic_of site.Frontend.insn)
  | Size_cmp (`Ge, n) -> site.Frontend.len >= n
  | Size_cmp (`Le, n) -> site.Frontend.len <= n
  | Size_cmp (`Eq, n) -> site.Frontend.len = n
  | And (a, b) -> selects a site && selects b site
  | Or (a, b) -> selects a site || selects b site
  | Not a -> not (selects a site)

let template_for spec site =
  List.find_map
    (fun r -> if selects r.selector site then Some r.template else None)
    spec

let to_rewriter_args spec =
  let select site = template_for spec site <> None in
  let template site =
    match template_for spec site with
    | Some Empty | None -> E9_core.Trampoline.Empty
    | Some Counter -> E9_core.Trampoline.Counter
    | Some Lowfat -> E9_core.Trampoline.Lowfat_check
  in
  (select, template)

(* ------------------------------------------------------------------ *)
(* Range fragments (plan-cache keys)                                   *)
(* ------------------------------------------------------------------ *)

(* Conservative "may this selector match some site with an address in
   [lo, hi)?": only [Address] constrains the address; everything else —
   including any [Not] — may. A rule whose selector provably cannot
   match in the range can be dropped without changing [template_for] for
   any site in the range (first match wins, and the dropped rule never
   was the first match there). *)
let rec may_match_in ~lo ~hi = function
  | Address a -> a >= lo && a < hi
  | And (x, y) -> may_match_in ~lo ~hi x && may_match_in ~lo ~hi y
  | Or (x, y) -> may_match_in ~lo ~hi x || may_match_in ~lo ~hi y
  | Jumps | Heap_writes | Calls | Returns | All | Mnemonic _ | Size_cmp _
  | Not _ ->
      true

let fragment_for_range spec ~lo ~hi =
  List.filter (fun r -> may_match_in ~lo ~hi r.selector) spec

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp_sel ppf = function
  | Jumps -> Format.pp_print_string ppf "jumps"
  | Heap_writes -> Format.pp_print_string ppf "heap-writes"
  | Calls -> Format.pp_print_string ppf "calls"
  | Returns -> Format.pp_print_string ppf "returns"
  | All -> Format.pp_print_string ppf "all"
  | Address a -> Format.fprintf ppf "address 0x%x" a
  | Mnemonic m -> Format.fprintf ppf "mnemonic %s" m
  | Size_cmp (`Ge, n) -> Format.fprintf ppf "size >= %d" n
  | Size_cmp (`Le, n) -> Format.fprintf ppf "size <= %d" n
  | Size_cmp (`Eq, n) -> Format.fprintf ppf "size = %d" n
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_sel a pp_sel b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_sel a pp_sel b
  | Not a -> Format.fprintf ppf "not %a" pp_sel a

let pp_template ppf = function
  | Empty -> Format.pp_print_string ppf "empty"
  | Counter -> Format.pp_print_string ppf "counter"
  | Lowfat -> Format.pp_print_string ppf "lowfat"

let pp ppf spec =
  List.iter
    (fun r ->
      Format.fprintf ppf "patch %a with %a@." pp_sel r.selector pp_template
        r.template)
    spec

(* Canonical concrete syntax (fully parenthesized by [pp_sel]) is a
   stable, injective encoding of the fragment's semantics — exactly what
   a plan key needs. *)
let fragment_key spec = Format.asprintf "%a" pp spec

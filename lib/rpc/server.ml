module Json = E9_obs.Json
module Obs = E9_obs.Obs
module Fault = E9_fault.Fault
module Pool = E9_bits.Pool

type t = {
  ctx : Session.ctx;
  fault : Fault.t;
  trace_dir : string option;
  agg : Obs.Agg.agg;
  agg_mutex : Mutex.t;
  lat_mutex : Mutex.t;
  mutable latencies : float list;
  requests : int Atomic.t;
  errors : int Atomic.t;
  started : int Atomic.t;
  closed : int Atomic.t;
  session_seq : int Atomic.t;
  stop_flag : bool Atomic.t;
}

let requests t = Atomic.get t.requests
let errors t = Atomic.get t.errors
let sessions t = (Atomic.get t.started, Atomic.get t.closed)
let stop t = Atomic.set t.stop_flag true
let stopping t = Atomic.get t.stop_flag
let ctx t = t.ctx

let status_json_of ~decode_cache ~result_cache ~plan_cache ~bypassed
    ~requests ~errors ~started ~closed () =
  let decode_stats =
    match Cache.stats_json (Cache.stats decode_cache) with
    | Json.Obj fields ->
        (* Result-cache hits short-circuit before the decode cache is
           consulted; without this field a hot result cache makes the
           decode cache read as 0% useful. *)
        Json.Obj (fields @ [ ("bypassed", Json.Int (Atomic.get bypassed)) ])
    | j -> j
  in
  Json.Obj
    [
      ( "sessions",
        Json.Obj
          [ ("started", Json.Int (Atomic.get started));
            ("closed", Json.Int (Atomic.get closed)) ] );
      ("requests", Json.Int (Atomic.get requests));
      ("errors", Json.Int (Atomic.get errors));
      ("decode_cache", decode_stats);
      ("result_cache", Cache.stats_json (Cache.stats result_cache));
      ("plan_cache", Cache.stats_json (Cache.stats plan_cache));
    ]

let create ?(cache_capacity = 64) ?(plan_capacity = 1024) ?(jobs = 1)
    ?(fault = Fault.none) ?trace_dir () =
  let decode_cache = Cache.create ~capacity:cache_capacity () in
  let result_cache = Cache.create ~capacity:cache_capacity () in
  (* Chunk-granular: one entry per chunk, not per binary, so the tier
     needs a deeper LRU than the whole-binary caches. *)
  let plan_cache = Cache.create ~capacity:plan_capacity () in
  let raw_cache = Cache.create ~capacity:cache_capacity () in
  let bypassed = Atomic.make 0 in
  let requests = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let started = Atomic.make 0 in
  let closed = Atomic.make 0 in
  let status =
    status_json_of ~decode_cache ~result_cache ~plan_cache ~bypassed
      ~requests ~errors ~started ~closed
  in
  {
    ctx =
      { Session.decode_cache; result_cache; plan_cache; raw_cache; bypassed;
        fault; jobs; status };
    fault;
    trace_dir;
    agg = Obs.Agg.create ();
    agg_mutex = Mutex.create ();
    lat_mutex = Mutex.create ();
    latencies = [];
    requests;
    errors;
    started;
    closed;
    session_seq = Atomic.make 0;
    stop_flag = Atomic.make false;
  }

let agg t =
  Mutex.lock t.agg_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.agg_mutex)
    (fun () ->
      let copy = Obs.Agg.create () in
      Obs.Agg.merge_into ~dst:copy t.agg;
      copy)

let status_json t = t.ctx.Session.status ()

let record_latency t dt =
  Mutex.lock t.lat_mutex;
  t.latencies <- dt :: t.latencies;
  Mutex.unlock t.lat_mutex

let latencies t =
  Mutex.lock t.lat_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lat_mutex)
    (fun () -> t.latencies)

let latency_percentile t p =
  let xs = latencies t in
  match xs with
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) i))

(* ------------------------------------------------------------------ *)
(* In-process transport                                                *)
(* ------------------------------------------------------------------ *)

type conn = {
  server : t;
  session : Session.t;
  obs : Obs.t;
  index : int;
  mutable alive : bool;
  mutable finalized : bool;
}

let accept_gate t = not (Fault.fires t.fault Fault.Rpc_accept)

let connect t =
  let index = Atomic.fetch_and_add t.session_seq 1 in
  Atomic.incr t.started;
  let obs =
    match t.trace_dir with Some _ -> Obs.ring () | None -> Obs.aggregator ()
  in
  { server = t; session = Session.create t.ctx ~obs; obs; index;
    alive = true; finalized = false }

let close_conn conn =
  if not conn.finalized then begin
    conn.alive <- false;
    conn.finalized <- true;
    let t = conn.server in
    Atomic.incr t.closed;
    Mutex.lock t.agg_mutex;
    Obs.Agg.merge_into ~dst:t.agg (Obs.agg conn.obs);
    Mutex.unlock t.agg_mutex;
    match t.trace_dir with
    | None -> ()
    | Some dir -> (
        let path =
          Filename.concat dir (Printf.sprintf "session-%d.ndjson" conn.index)
        in
        (* A lost trace must not take the session accounting down with
           it — same discipline as the CLI's --trace flag. *)
        try Obs.write_ndjson conn.obs path
        with Obs.Sink_error m ->
          Logs.warn (fun f -> f "rpc: trace %s lost: %s" path m))
  end

let null_error ~code ~message =
  Json.to_string (Proto.error_response Proto.Null_id ~code ~message ())

let is_error_json = function
  | Json.Obj fields -> List.mem_assoc "error" fields
  | _ -> false

(* One validated-or-not batch entry. Returns the response (None for a
   handled notification) and the session/daemon verdict flags. *)
let handle_incoming conn inc =
  let t = conn.server in
  match inc with
  | Proto.Invalid m ->
      Atomic.incr t.requests;
      Atomic.incr t.errors;
      ( Some
          (Proto.error_response Proto.Null_id ~code:Proto.invalid_request
             ~message:m ()),
        false, false )
  | Proto.Request req ->
      Atomic.incr t.requests;
      let t0 = Unix.gettimeofday () in
      let verdict = Session.handle conn.session req in
      record_latency t (Unix.gettimeofday () -. t0);
      (match verdict.Session.reply with
      | Some r when is_error_json r -> Atomic.incr t.errors
      | _ -> ());
      (verdict.Session.reply, verdict.Session.close, verdict.Session.stop)

let feed conn line =
  if not conn.alive then ([], false)
  else begin
    let t = conn.server in
    if Fault.fires t.fault Fault.Rpc_read then begin
      (* The read itself failed: nothing to respond to. *)
      conn.alive <- false;
      ([], false)
    end
    else if Fault.fires t.fault Fault.Rpc_decode then begin
      conn.alive <- false;
      Atomic.incr t.errors;
      ( [ null_error ~code:Proto.injected_fault
            ~message:"injected rpc decode fault" ],
        false )
    end
    else
      let close_session close =
        if close then conn.alive <- false;
        conn.alive
      in
      match Proto.parse_line line with
      | Proto.Unparsable m ->
          Atomic.incr t.requests;
          Atomic.incr t.errors;
          conn.alive <- false;
          ([ null_error ~code:Proto.parse_error ~message:("parse error: " ^ m) ],
            false)
      | Proto.Empty_batch ->
          Atomic.incr t.requests;
          Atomic.incr t.errors;
          ( [ null_error ~code:Proto.invalid_request ~message:"empty batch" ],
            close_session false )
      | Proto.Single inc ->
          let reply, close, stop_req = handle_incoming conn inc in
          if stop_req then stop t;
          ( (match reply with None -> [] | Some r -> [ Json.to_string r ]),
            close_session close )
      | Proto.Batch incs ->
          (* Entries run in order; a session-fatal entry aborts the rest
             of the batch (the session they would run in is gone). *)
          let replies = ref [] in
          let closed = ref false in
          let stop_req = ref false in
          List.iter
            (fun inc ->
              if not !closed then begin
                let reply, close, stop' = handle_incoming conn inc in
                (match reply with
                | Some r -> replies := r :: !replies
                | None -> ());
                if close then closed := true;
                if stop' then stop_req := true
              end)
            incs;
          if !stop_req then stop t;
          let out =
            match List.rev !replies with
            | [] -> []  (* all notifications: no response line at all *)
            | rs -> [ Json.to_string (Json.List rs) ]
          in
          (out, close_session !closed)
  end

(* ------------------------------------------------------------------ *)
(* Channel transport (stdio)                                           *)
(* ------------------------------------------------------------------ *)

let serve_channels t ic oc =
  let conn = connect t in
  Fun.protect
    ~finally:(fun () -> close_conn conn)
    (fun () ->
      let rec loop () =
        if conn.alive && not (stopping t) then
          match input_line ic with
          | exception End_of_file -> ()
          | line when String.trim line = "" -> loop ()
          | line ->
              let outs, alive = feed conn line in
              List.iter
                (fun l ->
                  output_string oc l;
                  output_char oc '\n')
                outs;
              flush oc;
              if alive then loop ()
      in
      loop ())

(* ------------------------------------------------------------------ *)
(* Unix-domain socket transport                                        *)
(* ------------------------------------------------------------------ *)

let serve_unix t ~path ?domains ?max_sessions () =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let service = Pool.Service.create ?domains () in
  Fun.protect
    ~finally:(fun () ->
      Pool.Service.shutdown service;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      let accepted = ref 0 in
      let continue () =
        (not (stopping t))
        && match max_sessions with None -> true | Some m -> !accepted < m
      in
      while continue () do
        (* Poll with a timeout so a shutdown request lands within 100ms
           even when no connection ever arrives. *)
        match Unix.select [ sock ] [] [] 0.1 with
        | [], _, _ -> ()
        | _ :: _, _, _ ->
            let fd, _ = Unix.accept sock in
            if not (accept_gate t) then
              (* Injected accept fault: drop the connection before a
                 session exists. The client sees EOF; the daemon moves
                 straight to the next accept. *)
              try Unix.close fd with Unix.Unix_error _ -> ()
            else begin
              incr accepted;
              Pool.Service.submit service (fun () ->
                  let ic = Unix.in_channel_of_descr fd in
                  let oc = Unix.out_channel_of_descr fd in
                  Fun.protect
                    ~finally:(fun () ->
                      (* close_out closes the shared fd; the input
                         channel is abandoned empty so nothing touches
                         the descriptor again (no double close). *)
                      try close_out oc with Sys_error _ -> ())
                    (fun () -> serve_channels t ic oc))
            end
      done)

(** In-process driving of the RPC service: scripted sessions for tests
    and bench, and the [Rpc_*] fault-injection campaign (the daemon leg
    of DESIGN.md §11's hardening contract).

    The campaign crosses canned client sessions with random fault rules
    over the four daemon sites and checks the three-permitted-outcomes
    contract, daemon edition: every session either

    + is {e served}: the emit response is ok, verified, and its payload
      is byte-identical to a one-shot {!E9_core.Rewriter.run} of the same
      input (cache hit or miss — both must agree);
    + is {e dropped at the edge}: the accept gate refused it or its read
      failed, no response, no session state;
    + dies {e typed}: an injected-fault error response, the session
      closed, no partial output file.

    In every case the daemon itself survives — later sessions on the
    same server still get served or refused per the rules — and no
    [*.tmp] file is left behind. Anything else fails the case. *)

type fcase = { seed : int; rules : E9_fault.Fault.rule list }

val fcase_to_string : fcase -> string

(** [run_session server lines] connects, feeds [lines] in order
    (stopping early if the session dies), closes, and returns the
    response lines plus whether the session was still alive at the end.
    A session refused by the accept gate returns [([], false)] without
    feeding anything. *)
val run_session : Server.t -> string list -> string list * bool

(** [request ~id meth params] renders one request line. *)
val request : id:int -> string -> (string * E9_obs.Json.t) list -> string

(** The spec {!script} patches with when none is given. *)
val default_spec : string

(** A canned client script for one binary: load (inline hex), patch
    [spec], emit (returning hex data, plus writing [filename] when
    given). *)
val script :
  ?spec:string -> ?filename:string -> bytes -> string list

(** [reference ?spec raw] — the one-shot rewrite the service's emits
    must be byte-identical to. *)
val reference : ?spec:string -> bytes -> bytes

type summary = {
  cases : int;
  served : int;  (** sessions answered with a verified, identical emit *)
  dropped : int;  (** sessions refused at accept or killed by read loss *)
  typed : int;  (** sessions killed by a typed injected-fault response *)
  failures : (string * string) list;  (** case name, violation *)
}

val pp_summary : Format.formatter -> summary -> unit

(** [campaign ~n ~seed ()] runs [n] random fault cases, three sessions
    each, against fresh servers. Deterministic for a given seed. *)
val campaign :
  ?progress:(int -> unit) -> n:int -> seed:int -> unit -> summary

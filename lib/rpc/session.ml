module Json = E9_obs.Json
module Obs = E9_obs.Obs
module Rewriter = E9_core.Rewriter
module Stats = E9_core.Stats
module Patchspec = E9_spec.Patchspec
module Tool = E9_tool.Tool
module Fault = E9_fault.Fault
module Static = E9_check.Static

type decoded = Frontend.text * Frontend.site list

type emit_entry = {
  bytes : bytes;
  stats : Stats.t;
  size_pct : float;
  trampoline_bytes : int;
  mappings : int;
  verified : bool;
  plan_hits : int;
  plan_misses : int;
  plan_conflicts : int;
}

type ctx = {
  decode_cache : decoded Cache.t;
  result_cache : emit_entry Cache.t;
  plan_cache : E9_core.Plan.chunk Cache.t;
  raw_cache : bytes Cache.t;
  bypassed : int Atomic.t;
  fault : Fault.t;
  jobs : int;
  status : unit -> Json.t;
}

type t = {
  ctx : ctx;
  obs : Obs.t;
  trampolines : (string, Patchspec.template) Hashtbl.t;
  mutable binary : (Elf_file.t * string) option;  (** parsed input, content hash *)
  mutable rules : Patchspec.rule list;  (** reverse order *)
  mutable tool_rules : Tool.rule list;  (** reverse order *)
  mutable reserves : (int * int) list;  (** reverse order *)
  mutable opts : Rewriter.options;
  mutable disasm_from : int option;
  mutable jobs : int;
  mutable requests : int;
  mutable emits : int;
}

let create ctx ~obs =
  {
    ctx;
    obs;
    trampolines = Hashtbl.create 8;
    binary = None;
    rules = [];
    tool_rules = [];
    reserves = [];
    opts = Rewriter.default_options;
    disasm_from = None;
    jobs = ctx.jobs;
    requests = 0;
    emits = 0;
  }

let requests t = t.requests
let emits t = t.emits

type verdict = { reply : Json.t option; close : bool; stop : bool }

(* Internal typed failures; [handle] renders each as its error code. *)
exception Invalid_params of string
exception State_error of string
exception Verify_refused of string

let bad fmt = Printf.ksprintf (fun m -> raise (Invalid_params m)) fmt
let state fmt = Printf.ksprintf (fun m -> raise (State_error m)) fmt

let int_param params key =
  match Proto.int_param params key with
  | `Ok n -> Some n
  | `Missing -> None
  | `Bad -> bad "%s must be an integer (or a decimal/0x-hex string)" key

let string_param params key =
  match Proto.string_param params key with
  | `Ok s -> Some s
  | `Missing -> None
  | `Bad -> bad "%s must be a string" key

let bool_param params key =
  match Proto.bool_param params key with
  | `Ok b -> Some b
  | `Missing -> None
  | `Bad -> bad "%s must be a boolean" key

let require what = function Some v -> v | None -> bad "missing %s param" what

(* ------------------------------------------------------------------ *)
(* binary                                                              *)
(* ------------------------------------------------------------------ *)

let read_raw path =
  match open_in_bin path with
  | exception Sys_error m -> raise (Elf_file.Io_error m)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> s
          | exception (Sys_error m) -> raise (Elf_file.Io_error m)
          | exception End_of_file ->
              raise (Elf_file.Io_error (path ^ ": short read")))

let do_binary t params =
  (if t.binary <> None then
     state "binary already loaded; emit it before loading another");
  let raw =
    match (string_param params "filename", string_param params "data") with
    | Some _, Some _ -> bad "filename and data are exclusive"
    | Some path, None -> Bytes.unsafe_of_string (read_raw path)
    | None, Some hex -> (
        match Proto.bytes_of_hex hex with
        | Ok b -> b
        | Error m -> bad "data: %s" m)
    | None, None -> bad "binary needs a filename or data param"
  in
  let elf = Elf_file.of_bytes raw in
  let hash = Cache.fnv1a64 raw in
  (* Retain the raw bytes (bounded LRU) so a later [delta] message can
     name this revision as its base and ship only the changed bytes. *)
  Cache.add t.ctx.raw_cache ("b:" ^ hash) raw;
  t.binary <- Some (elf, hash);
  Json.Obj
    [ ("ok", Json.Bool true); ("size", Json.Int (Bytes.length raw));
      ("hash", Json.Str hash) ]

(* The patch-message delta path (DESIGN.md §14): a client rewriting a
   series of revisions names a retained base by hash and ships only the
   changed byte runs, instead of re-sending the whole binary. The
   reconstructed revision is loaded exactly as [binary] would load it
   (and retained in turn, so revisions can chain). *)
let do_delta t params =
  (if t.binary <> None then
     state "binary already loaded; emit it before loading another");
  let base = require "base" (string_param params "base") in
  let edits =
    match Json.member "edits" params with
    | Some (Json.List l) -> l
    | Some _ -> bad "edits must be a list"
    | None -> bad "missing edits param"
  in
  match Cache.find t.ctx.raw_cache ("b:" ^ base) with
  | None ->
      state "delta base %s is not retained (load it with binary first)" base
  | Some raw0 ->
      let raw = Bytes.copy raw0 in
      List.iter
        (fun e ->
          let offset = require "offset" (int_param e "offset") in
          let hex = require "hex" (string_param e "hex") in
          match Proto.bytes_of_hex hex with
          | Error m -> bad "hex: %s" m
          | Ok b ->
              if offset < 0 || offset + Bytes.length b > Bytes.length raw
              then
                bad "edit [%d, %d) outside the base binary (%d bytes)" offset
                  (offset + Bytes.length b)
                  (Bytes.length raw);
              Bytes.blit b 0 raw offset (Bytes.length b))
        edits;
      let elf = Elf_file.of_bytes raw in
      let hash = Cache.fnv1a64 raw in
      Cache.add t.ctx.raw_cache ("b:" ^ hash) raw;
      t.binary <- Some (elf, hash);
      Json.Obj
        [ ("ok", Json.Bool true); ("size", Json.Int (Bytes.length raw));
          ("hash", Json.Str hash); ("base", Json.Str base);
          ("edits", Json.Int (List.length edits)) ]

(* ------------------------------------------------------------------ *)
(* options                                                             *)
(* ------------------------------------------------------------------ *)

let do_options t params =
  let fields = match params with Json.Obj l -> l | _ -> [] in
  List.iter
    (fun (key, _) ->
      match key with
      | "granularity" | "grouping" | "shared" | "loader" | "b0_fallback"
      | "t1" | "t2" | "t3" | "shard_span" | "disasm_from" | "jobs"
      | "plan" -> ()
      | other -> bad "unknown option %s" other)
    fields;
  let o = t.opts in
  let tac = o.Rewriter.tactics in
  let upd v f = match v with None -> () | Some v -> f v in
  let tactics = ref tac in
  upd (bool_param params "t1") (fun v ->
      tactics := { !tactics with E9_core.Tactics.enable_t1 = v });
  upd (bool_param params "t2") (fun v ->
      tactics := { !tactics with E9_core.Tactics.enable_t2 = v });
  upd (bool_param params "t3") (fun v ->
      tactics := { !tactics with E9_core.Tactics.enable_t3 = v });
  upd (bool_param params "b0_fallback") (fun v ->
      tactics := { !tactics with E9_core.Tactics.b0_fallback = v });
  let loader =
    match string_param params "loader" with
    | None -> o.Rewriter.loader
    | Some "table" -> Rewriter.Table
    | Some "stub" -> Rewriter.Stub
    | Some other -> bad "loader must be table or stub, not %s" other
  in
  let granularity =
    match int_param params "granularity" with
    | None -> o.Rewriter.granularity
    | Some m when m >= 1 -> m
    | Some m -> bad "granularity must be >= 1, not %d" m
  in
  let shard_span =
    match int_param params "shard_span" with
    | None -> o.Rewriter.shard_span
    | Some s when s >= 1 -> s
    | Some s -> bad "shard_span must be >= 1, not %d" s
  in
  t.opts <-
    { o with
      Rewriter.tactics = !tactics;
      loader;
      granularity;
      shard_span;
      grouping =
        Option.value (bool_param params "grouping") ~default:o.Rewriter.grouping;
      reserve_below_base =
        Option.value (bool_param params "shared")
          ~default:o.Rewriter.reserve_below_base;
      chunking =
        (* plan=true turns on content-defined chunking, which keys every
           emit into the shared chunk-plan cache tier. *)
        (match bool_param params "plan" with
        | None -> o.Rewriter.chunking
        | Some true -> Some Chunker.default
        | Some false -> None) };
  upd (int_param params "disasm_from") (fun a -> t.disasm_from <- Some a);
  upd (int_param params "jobs") (fun j ->
      if j < 1 then bad "jobs must be >= 1, not %d" j else t.jobs <- j);
  Json.Obj [ ("ok", Json.Bool true) ]

(* ------------------------------------------------------------------ *)
(* trampoline / reserve / patch                                        *)
(* ------------------------------------------------------------------ *)

let template_word = function
  | Patchspec.Empty -> "empty"
  | Patchspec.Counter -> "counter"
  | Patchspec.Lowfat -> "lowfat"

let template_of_word = function
  | "empty" -> Patchspec.Empty
  | "counter" -> Patchspec.Counter
  | "lowfat" -> Patchspec.Lowfat
  | other -> bad "unknown template %s (empty, counter or lowfat)" other

let do_trampoline t params =
  let name = require "name" (string_param params "name") in
  let template = require "template" (string_param params "template") in
  Hashtbl.replace t.trampolines name (template_of_word template);
  Json.Obj [ ("ok", Json.Bool true) ]

let do_reserve t params =
  let address = require "address" (int_param params "address") in
  let length = require "length" (int_param params "length") in
  if length < 1 then bad "length must be >= 1, not %d" length;
  t.reserves <- (address, length) :: t.reserves;
  Json.Obj [ ("ok", Json.Bool true); ("reserved", Json.Int (List.length t.reserves)) ]

let do_patch t params =
  let source =
    match (string_param params "spec", string_param params "selector") with
    | Some _, Some _ -> bad "spec and selector are exclusive"
    | Some src, None -> src
    | None, Some selector ->
        let word = require "trampoline" (string_param params "trampoline") in
        (* A name registered via the trampoline message aliases one of the
           built-in templates; otherwise the word must itself be one. *)
        let tmpl =
          match Hashtbl.find_opt t.trampolines word with
          | Some tmpl -> tmpl
          | None -> template_of_word word
        in
        Printf.sprintf "patch %s with %s" selector (template_word tmpl)
    | None, None -> bad "patch needs a spec or a selector/trampoline pair"
  in
  (if t.tool_rules <> [] then
     state "tool rules pending; emit them before adding patch rules");
  let rules = Patchspec.parse source in
  t.rules <- List.rev_append rules t.rules;
  Json.Obj
    [ ("ok", Json.Bool true); ("rules", Json.Int (List.length t.rules)) ]

(* The tool vocabulary (DESIGN.md §15): one [-M MATCH -P PATCH] pair per
   message, first-match-wins across the accumulated pairs, lowered by
   {!E9_tool} at emit time. Tool and patch-spec rules describe different
   rewrites (the tool injects an instrumentation runtime), so a session
   uses one vocabulary per emit. *)
let do_tool t params =
  (if t.rules <> [] then
     state "patch rules pending; emit them before adding tool rules");
  let m = require "match" (string_param params "match") in
  let p = require "patch" (string_param params "patch") in
  let rule = Tool.rule_of ~m ~p () in
  t.tool_rules <- rule :: t.tool_rules;
  Json.Obj
    [ ("ok", Json.Bool true); ("rules", Json.Int (List.length t.tool_rules)) ]

(* ------------------------------------------------------------------ *)
(* emit                                                                *)
(* ------------------------------------------------------------------ *)

(* Atomic bytes writer: the cache-hit path serves raw bytes with the same
   temp+rename discipline Elf_file.write_file gives parsed images. *)
let write_bytes_atomic bytes path =
  let dir = Filename.dirname path in
  match Filename.temp_file ~temp_dir:dir ".e9rpc" ".tmp" with
  | exception Sys_error m -> raise (Elf_file.Io_error m)
  | tmp -> (
      match
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_bytes oc bytes);
        Sys.rename tmp path
      with
      | () -> ()
      | exception Sys_error m ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise (Elf_file.Io_error m))

let stats_json (s : Stats.t) =
  Json.Obj
    [ ("b0", Json.Int s.Stats.b0); ("b1", Json.Int s.Stats.b1);
      ("b2", Json.Int s.Stats.b2); ("t1", Json.Int s.Stats.t1);
      ("t2", Json.Int s.Stats.t2); ("t3", Json.Int s.Stats.t3);
      ("failed", Json.Int s.Stats.failed) ]

let from_tag = function None -> "-" | Some a -> Printf.sprintf "%x" a

(* Shared emit epilogue: write the bytes, reset the per-emit session
   state, shape the response. Options and named trampolines are
   connection-level and survive. *)
let finish_emit t ~opts ~filename ~want_data (entry, cache_tag) =
  (match filename with
  | Some path -> write_bytes_atomic entry.bytes path
  | None -> ());
  t.binary <- None;
  t.rules <- [];
  t.tool_rules <- [];
  t.reserves <- [];
  t.emits <- t.emits + 1;
  Json.Obj
    ([ ("ok", Json.Bool true); ("cache", Json.Str cache_tag);
       ("size", Json.Int (Bytes.length entry.bytes));
       ("size_pct", Json.Float entry.size_pct);
       ("trampoline_bytes", Json.Int entry.trampoline_bytes);
       ("mappings", Json.Int entry.mappings);
       ("verified", Json.Bool entry.verified);
       ("stats", stats_json entry.stats) ]
    @ (if opts.Rewriter.chunking <> None then
         [ ( "plan",
             Json.Obj
               [ ("hits", Json.Int entry.plan_hits);
                 ("misses", Json.Int entry.plan_misses);
                 ("conflicts", Json.Int entry.plan_conflicts) ] ) ]
       else [])
    @ (match filename with
      | Some path -> [ ("wrote", Json.Str path) ]
      | None -> [])
    @ if want_data then [ ("data", Json.Str (Proto.hex_of_bytes entry.bytes)) ]
      else [])

(* The tool-vocabulary emit: inject the instrumentation runtime, lower
   the accumulated [-M]/[-P] pairs, rewrite, and verify against the
   augmented input (the injected pages are part of what the verifier must
   account for). Cached under a tool-specific key. *)
let do_emit_tool t params =
  let elf, bhash =
    match t.binary with
    | Some b -> b
    | None -> state "emit needs a loaded binary"
  in
  if Fault.fires t.ctx.fault Fault.Rpc_emit then
    raise (Fault.Injected "injected rpc emit fault");
  let filename = string_param params "filename" in
  let want_data = Option.value (bool_param params "data") ~default:false in
  let rules = List.rev t.tool_rules in
  let opts = { t.opts with Rewriter.keep_ranges = List.rev t.reserves } in
  let okey =
    Rewriter.options_signature opts ^ ";from=" ^ from_tag t.disasm_from
  in
  let key =
    Printf.sprintf "t:%s:%s:%s" bhash
      (Cache.fnv1a64_string (Tool.fragment_key rules))
      (Cache.fnv1a64_string okey)
  in
  let entry, cache_tag =
    match Cache.find t.ctx.result_cache key with
    | Some e ->
        Obs.counter t.obs ~name:"rpc_cache_hits" ~value:1;
        Atomic.incr t.ctx.bypassed;
        (e, "hit")
    | None ->
        Obs.counter t.obs ~name:"rpc_cache_misses" ~value:1;
        let plan =
          match opts.Rewriter.chunking with
          | Some _ when Fault.is_none t.ctx.fault ->
              let text_base =
                match Frontend.find_text elf with
                | Some x -> x.Frontend.base
                | None -> 0
              in
              Some
                { E9_core.Plan.store =
                    { E9_core.Plan.find = Cache.find t.ctx.plan_cache;
                      add = Cache.add t.ctx.plan_cache };
                  spec_key = (fun ~lo ~len -> Tool.spec_key rules ~text_base ~lo ~len) }
          | _ -> None
        in
        let res =
          Obs.span t.obs "rpc_rewrite" (fun () ->
              Tool.run ~options:opts ~obs:t.obs ~jobs:t.jobs ?plan
                ?disasm_from:t.disasm_from elf rules)
        in
        let r = res.Tool.rewrite in
        (match
           Obs.span t.obs "rpc_verify" (fun () ->
               Static.verify ?disasm_from:t.disasm_from
                 ~original:res.Tool.runtime.Tool.augmented r.Rewriter.output)
         with
        | Ok _ -> ()
        | Error e ->
            raise (Verify_refused (Format.asprintf "%a" Static.pp_error e)));
        let bytes = Elf_file.to_bytes r.Rewriter.output in
        let entry =
          {
            bytes;
            stats = r.Rewriter.stats;
            size_pct = Rewriter.size_pct r;
            trampoline_bytes = r.Rewriter.trampoline_bytes;
            mappings = r.Rewriter.mappings;
            verified = true;
            plan_hits = r.Rewriter.plan_hits;
            plan_misses = r.Rewriter.plan_misses;
            plan_conflicts = r.Rewriter.plan_conflicts;
          }
        in
        Cache.add t.ctx.result_cache key entry;
        (entry, "miss")
  in
  finish_emit t ~opts ~filename ~want_data (entry, cache_tag)

let do_emit t params =
  if t.tool_rules <> [] then do_emit_tool t params
  else
  let elf, bhash =
    match t.binary with
    | Some b -> b
    | None -> state "emit needs a loaded binary"
  in
  if Fault.fires t.ctx.fault Fault.Rpc_emit then
    raise (Fault.Injected "injected rpc emit fault");
  let filename = string_param params "filename" in
  let want_data = Option.value (bool_param params "data") ~default:false in
  let spec = List.rev t.rules in
  let spec_src = Format.asprintf "%a" Patchspec.pp spec in
  let opts = { t.opts with Rewriter.keep_ranges = List.rev t.reserves } in
  let okey =
    Rewriter.options_signature opts ^ ";from=" ^ from_tag t.disasm_from
  in
  let key =
    Printf.sprintf "r:%s:%s:%s" bhash
      (Cache.fnv1a64_string spec_src)
      (Cache.fnv1a64_string okey)
  in
  let entry, cache_tag =
    match Cache.find t.ctx.result_cache key with
    | Some e ->
        Obs.counter t.obs ~name:"rpc_cache_hits" ~value:1;
        (* The result hit short-circuits before the decode cache is even
           consulted: count it so the decode cache's 0%% hit rate under a
           hot result cache reads as "bypassed", not "useless". *)
        Atomic.incr t.ctx.bypassed;
        (e, "hit")
    | None ->
        Obs.counter t.obs ~name:"rpc_cache_misses" ~value:1;
        (* Chunk-plan tier (DESIGN.md §14): when the session enabled
           chunking, each content-defined chunk consults the shared plan
           cache — which subsumes the whole-text decode cache (replayed
           chunks skip decode per chunk), so the plan path hands the
           rewriter the real frontend instead of the cached decode. *)
        let plan =
          match opts.Rewriter.chunking with
          | Some _ when Fault.is_none t.ctx.fault ->
              let text_base =
                match Frontend.find_text elf with
                | Some x -> x.Frontend.base
                | None -> 0
              in
              Some
                { E9_core.Plan.store =
                    { E9_core.Plan.find = Cache.find t.ctx.plan_cache;
                      add = Cache.add t.ctx.plan_cache };
                  spec_key =
                    (fun ~lo ~len ->
                      Patchspec.fragment_key
                        (Patchspec.fragment_for_range spec
                           ~lo:(text_base + lo)
                           ~hi:(text_base + lo + len))) }
          | _ -> None
        in
        let frontend =
          match plan with
          | Some _ -> None
          | None ->
              let dkey =
                Printf.sprintf "d:%s:%s" bhash (from_tag t.disasm_from)
              in
              let decoded =
                match Cache.find t.ctx.decode_cache dkey with
                | Some d -> d
                | None ->
                    let d =
                      Obs.span t.obs "rpc_decode" (fun () ->
                          Frontend.disassemble ?from:t.disasm_from elf)
                    in
                    Cache.add t.ctx.decode_cache dkey d;
                    d
              in
              Some (fun _ -> decoded)
        in
        let select, template = Patchspec.to_rewriter_args spec in
        let r =
          Obs.span t.obs "rpc_rewrite" (fun () ->
              Rewriter.run ~options:opts ~obs:t.obs ~jobs:t.jobs ?plan
                ?disasm_from:t.disasm_from ?frontend elf ~select ~template)
        in
        (match
           Obs.span t.obs "rpc_verify" (fun () ->
               Static.verify ?disasm_from:t.disasm_from ~original:elf
                 r.Rewriter.output)
         with
        | Ok _ -> ()
        | Error e ->
            raise
              (Verify_refused
                 (Format.asprintf "%a" Static.pp_error e)));
        let bytes = Elf_file.to_bytes r.Rewriter.output in
        let entry =
          {
            bytes;
            stats = r.Rewriter.stats;
            size_pct = Rewriter.size_pct r;
            trampoline_bytes = r.Rewriter.trampoline_bytes;
            mappings = r.Rewriter.mappings;
            verified = true;
            plan_hits = r.Rewriter.plan_hits;
            plan_misses = r.Rewriter.plan_misses;
            plan_conflicts = r.Rewriter.plan_conflicts;
          }
        in
        Cache.add t.ctx.result_cache key entry;
        (entry, "miss")
  in
  finish_emit t ~opts ~filename ~want_data (entry, cache_tag)

(* ------------------------------------------------------------------ *)
(* dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let do_flush t =
  let _ = Cache.flush t.ctx.decode_cache in
  let _ = Cache.flush t.ctx.plan_cache in
  let _ = Cache.flush t.ctx.raw_cache in
  let generation = Cache.flush t.ctx.result_cache in
  Json.Obj [ ("ok", Json.Bool true); ("generation", Json.Int generation) ]

let handle t (req : Proto.request) =
  t.requests <- t.requests + 1;
  Obs.counter t.obs ~name:"rpc_requests" ~value:1;
  let ok ?(close = false) ?(stop = false) result =
    let reply =
      match req.Proto.id with
      | None -> None
      | Some id -> Some (Proto.response id result)
    in
    { reply; close; stop }
  in
  let error ?(close = false) code message kind =
    Obs.counter t.obs ~name:"rpc_errors" ~value:1;
    let reply =
      match req.Proto.id with
      | None -> None
      | Some id ->
          Some
            (Proto.error_response id ~code ~message
               ~data:(Json.Obj [ ("kind", Json.Str kind) ])
               ())
    in
    { reply; close; stop = false }
  in
  let params = req.Proto.params in
  match
    Obs.span t.obs ("rpc_" ^ req.Proto.meth) (fun () ->
        match req.Proto.meth with
        | "ping" -> ok (Json.Str "pong")
        | "binary" -> ok (do_binary t params)
        | "options" -> ok (do_options t params)
        | "trampoline" -> ok (do_trampoline t params)
        | "reserve" -> ok (do_reserve t params)
        | "patch" -> ok (do_patch t params)
        | "tool" -> ok (do_tool t params)
        | "delta" -> ok (do_delta t params)
        | "emit" -> ok (do_emit t params)
        | "status" -> ok (t.ctx.status ())
        | "flush" -> ok (do_flush t)
        | "shutdown" ->
            ok ~close:true ~stop:true
              (Json.Obj
                 [ ("ok", Json.Bool true); ("stopping", Json.Bool true) ])
        | other ->
            error Proto.method_not_found ("method not found: " ^ other)
              "method")
  with
  | verdict -> verdict
  | exception Invalid_params m -> error Proto.invalid_params m "params"
  | exception State_error m -> error Proto.state_error m "state"
  | exception Elf_file.Malformed m ->
      error Proto.malformed_binary ("malformed ELF: " ^ m) "elf"
  | exception Frontend.Error m -> error Proto.rewrite_refused m "frontend"
  | exception Rewriter.Error m -> error Proto.rewrite_refused m "rewrite"
  | exception Elf_file.Io_error m -> error Proto.io_error m "io"
  | exception Obs.Sink_error m -> error Proto.io_error m "trace"
  | exception Patchspec.Parse_error { line; col; message } ->
      error Proto.spec_error (Printf.sprintf "%d:%d: %s" line col message)
        "spec"
  | exception Tool.Error m -> error Proto.spec_error m "tool"
  | exception Invalid_argument m ->
      (* A template/site mismatch surfaced at emission time (lowfat on a
         non-writing instruction, a naked-call argument conflict): refuse
         the rewrite, keep the session. *)
      error Proto.rewrite_refused m "template"
  | exception Verify_refused m ->
      error Proto.verify_failed ("verification refused the output: " ^ m)
        "verify"
  | exception Fault.Injected m ->
      (* Session-fatal, daemon-safe: the typed response goes out, the
         session closes, sibling sessions never notice (DESIGN.md §13). *)
      error ~close:true Proto.injected_fault m "injected"

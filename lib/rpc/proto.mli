(** JSON-RPC 2.0 wire format for the rewriting service (DESIGN.md §13).

    The framing is line-delimited: one request — or one batch array — per
    line, one response (or response array) per line back. This module is
    pure syntax: parsing a line into requests, validating the 2.0
    envelope, and encoding responses. It knows nothing about sessions,
    caches or the rewriter; {!Session} interprets the method vocabulary.

    One extension mirrors the real E9Patch protocol: integer parameters
    may arrive as JSON strings holding decimal or [0x]-hex literals
    (["0x40c734"]), because patch addresses routinely exceed what some
    JSON encoders round-trip exactly. *)

module Json = E9_obs.Json

(** A request id. JSON-RPC 2.0 allows numbers, strings and null; anything
    else (fractional numbers included) makes the request invalid. *)
type id = Int_id of int | Str_id of string | Null_id

type request = {
  meth : string;
  params : Json.t;  (** an object; [Obj []] when absent *)
  id : id option;  (** [None] = notification: no response is sent *)
}

(** One entry of a parsed line: either a structurally valid request or a
    per-entry envelope violation (responded to with [invalid_request]
    without aborting the rest of a batch). *)
type incoming = Request of request | Invalid of string

(** One wire line. [Empty_batch] ([[]]) is its own case because the spec
    mandates a single error response rather than an empty array back. *)
type line =
  | Single of incoming
  | Batch of incoming list
  | Empty_batch
  | Unparsable of string  (** not JSON at all: parse error, kill session *)

val parse_line : string -> line

(** {1 Error codes} — the JSON-RPC 2.0 reserved set plus the service's
    application range, one code per typed failure family so clients can
    dispatch without string-matching. *)

val parse_error : int  (** -32700: line is not JSON *)

val invalid_request : int  (** -32600: envelope violation *)

val method_not_found : int  (** -32601 *)

val invalid_params : int  (** -32602 *)

val internal_error : int  (** -32603: a bug — nothing maps here on purpose *)

val state_error : int  (** -32000: message legal, but not in this state *)

val malformed_binary : int  (** -32001: [Elf_file.Malformed] *)

val rewrite_refused : int  (** -32002: [Rewriter.Error] / [Frontend.Error] *)

val io_error : int  (** -32003: [Elf_file.Io_error] / [Obs.Sink_error] *)

val spec_error : int  (** -32004: [Patchspec.Parse_error] *)

val verify_failed : int  (** -32005: the oracle rejected the output *)

val injected_fault : int  (** -32006: a fault-injection rule fired *)

(** {1 Parameter accessors} *)

(** [int_param params key] reads an integer parameter, accepting the
    hex-string extension. *)
val int_param : Json.t -> string -> [ `Ok of int | `Missing | `Bad ]

val string_param : Json.t -> string -> [ `Ok of string | `Missing | `Bad ]
val bool_param : Json.t -> string -> [ `Ok of bool | `Missing | `Bad ]

(** {1 Encoding} *)

val id_json : id -> Json.t

(** [response id result] is a success envelope, rendered to one line by
    [Json.to_string]. *)
val response : id -> Json.t -> Json.t

(** [error_response id ~code ~message ?data ()] is an error envelope;
    [data], when given, lands under ["error"]["data"]. *)
val error_response : id -> code:int -> message:string -> ?data:Json.t ->
  unit -> Json.t

(** {1 Hex payloads} — binaries travel inline as lowercase hex strings. *)

val hex_of_bytes : bytes -> string

(** [bytes_of_hex s] inverts {!hex_of_bytes}; [Error] names the offending
    position. *)
val bytes_of_hex : string -> (bytes, string) result

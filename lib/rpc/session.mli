(** One RPC session: the E9Patch message vocabulary interpreted over the
    rewriter (DESIGN.md §13).

    A session is a small state machine. It starts empty; [binary] loads
    an input (file path or inline hex); [options] / [trampoline] /
    [reserve] / [patch] accumulate configuration; [emit] runs the
    rewrite — through the shared content-addressed caches — verifies the
    output with the static oracle, optionally writes it atomically, and
    resets the per-binary state so the connection can serve the next
    input. Configuration ([options], named trampolines) survives across
    emits; the binary, patch rules and reservations do not.

    Failure discipline: semantic errors (wrong state, bad params,
    malformed ELF, refused rewrite, failed verification) produce a typed
    error response and the session {e continues}; an injected fault
    ([Rpc_emit]) produces its typed response and {e closes} the session —
    never the daemon, and never with a partial output file. *)

module Json = E9_obs.Json

type decoded = Frontend.text * Frontend.site list

(** A served emit, as cached: the serialized output plus the summary the
    response repeats. A cache hit replays exactly these bytes, so a hit
    is byte-identical to recomputation by construction. *)
type emit_entry = {
  bytes : bytes;
  stats : E9_core.Stats.t;
  size_pct : float;
  trampoline_bytes : int;
  mappings : int;
  verified : bool;
  plan_hits : int;  (** chunk-plan replays (0 when chunking was off) *)
  plan_misses : int;
  plan_conflicts : int;
}

(** Shared (cross-session) context, owned by the server: the caches,
    the fault capability, and the server-level [status] payload. [jobs]
    is the rewrite's own domain count per emit — the daemon parallelizes
    {e across} sessions, so this defaults to 1 (jobs-invariance makes it
    a pure knob: output bytes never depend on it).

    [plan_cache] is the chunk-granular plan tier (DESIGN.md §14), used
    by sessions that set the [plan] option: unchanged chunks of a
    re-submitted (or lightly edited) binary replay their cached rewrite
    plans instead of re-running decode and tactic search. [raw_cache]
    retains loaded input bytes so the [delta] message can reconstruct a
    new revision from a retained base plus changed byte runs.
    [bypassed] counts emits served whole from the result cache — lookups
    the decode cache never saw, so its hit rate under a hot result cache
    reads honestly as "bypassed", not "useless". *)
type ctx = {
  decode_cache : decoded Cache.t;
  result_cache : emit_entry Cache.t;
  plan_cache : E9_core.Plan.chunk Cache.t;
  raw_cache : bytes Cache.t;
  bypassed : int Atomic.t;
  fault : E9_fault.Fault.t;
  jobs : int;
  status : unit -> Json.t;
}

type t

(** [create ctx ~obs] — a fresh session emitting telemetry into [obs]
    (one sink per session; the server merges them back). *)
val create : ctx -> obs:E9_obs.Obs.t -> t

val requests : t -> int
val emits : t -> int

(** What [handle] decided: the response to send (none for
    notifications), whether this session must close, and whether the
    whole daemon was asked to stop. *)
type verdict = { reply : Json.t option; close : bool; stop : bool }

(** [handle t req] interprets one request. Never raises: every failure
    is rendered as a typed error response. *)
val handle : t -> Proto.request -> verdict

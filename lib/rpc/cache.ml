type 'a entry = { value : 'a; gen : int; mutable stamp : int }

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  capacity : int;
  mutable clock : int;  (** logical time for LRU stamps *)
  mutable generation : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    capacity;
    clock = 0;
    generation = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some e when e.gen = t.generation ->
      t.clock <- t.clock + 1;
      e.stamp <- t.clock;
      t.hits <- t.hits + 1;
      Some e.value
  | Some _ ->
      (* Stale generation: the flush left it for us to sweep. *)
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  (* Linear scan: capacity is small (tens of entries) and eviction is
     off the hit path. Stale entries are preferred victims. *)
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      let order = if e.gen = t.generation then e.stamp else -1 in
      match !victim with
      | Some (_, best) when best <= order -> ()
      | _ -> victim := Some (key, order))
    t.table;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  locked t @@ fun () ->
  if Hashtbl.mem t.table key then Hashtbl.remove t.table key
  else if Hashtbl.length t.table >= t.capacity then evict_lru t;
  t.clock <- t.clock + 1;
  t.insertions <- t.insertions + 1;
  Hashtbl.replace t.table key { value; gen = t.generation; stamp = t.clock }

let flush t =
  locked t @@ fun () ->
  t.generation <- t.generation + 1;
  t.generation

type stats = {
  hits : int;
  misses : int;
  entries : int;
  insertions : int;
  evictions : int;
  generation : int;
}

let stats t =
  locked t @@ fun () ->
  let entries =
    Hashtbl.fold
      (fun _ e n -> if e.gen = t.generation then n + 1 else n)
      t.table 0
  in
  {
    hits = t.hits;
    misses = t.misses;
    entries;
    insertions = t.insertions;
    evictions = t.evictions;
    generation = t.generation;
  }

let hit_rate s =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups

let stats_json s =
  let module Json = E9_obs.Json in
  Json.Obj
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("entries", Json.Int s.entries);
      ("insertions", Json.Int s.insertions);
      ("evictions", Json.Int s.evictions);
      ("generation", Json.Int s.generation);
      ("hit_rate", Json.Float (hit_rate s));
    ]

(* ------------------------------------------------------------------ *)
(* FNV-1a 64                                                           *)
(* ------------------------------------------------------------------ *)

let fnv1a64 b = E9_bits.Fnv.hex b ~pos:0 ~len:(Bytes.length b)
let fnv1a64_string s = E9_bits.Fnv.to_hex (E9_bits.Fnv.hash64_string s)

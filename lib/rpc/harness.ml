module Codegen = E9_workload.Codegen
module Rewriter = E9_core.Rewriter
module Patchspec = E9_spec.Patchspec
module Json = E9_obs.Json
module Fault = E9_fault.Fault

type fcase = { seed : int; rules : Fault.rule list }

let fcase_to_string f =
  Printf.sprintf "rpc-fault[%d] inject=%S" f.seed (Fault.to_string f.rules)

(* ------------------------------------------------------------------ *)
(* Scripted sessions                                                   *)
(* ------------------------------------------------------------------ *)

let run_session server lines =
  if not (Server.accept_gate server) then ([], false)
  else begin
    let conn = Server.connect server in
    Fun.protect
      ~finally:(fun () -> Server.close_conn conn)
      (fun () ->
        let rec go acc alive = function
          | [] -> (List.rev acc, alive)
          | _ when not alive -> (List.rev acc, false)
          | l :: rest ->
              let outs, alive = Server.feed conn l in
              go (List.rev_append outs acc) alive rest
        in
        go [] true lines)
  end

let request ~id meth params =
  Json.to_string
    (Json.Obj
       [ ("jsonrpc", Json.Str "2.0"); ("id", Json.Int id);
         ("method", Json.Str meth); ("params", Json.Obj params) ])

let default_spec = "patch jumps with empty"

let script ?(spec = default_spec) ?filename raw =
  let emit_params =
    [ ("data", Json.Bool true) ]
    @ match filename with
      | Some path -> [ ("filename", Json.Str path) ]
      | None -> []
  in
  [ request ~id:1 "binary" [ ("data", Json.Str (Proto.hex_of_bytes raw)) ];
    request ~id:2 "patch" [ ("spec", Json.Str spec) ];
    request ~id:3 "emit" emit_params ]

let reference ?(spec = default_spec) raw =
  let elf = Elf_file.of_bytes raw in
  let select, template = Patchspec.to_rewriter_args (Patchspec.parse spec) in
  let r = Rewriter.run ~jobs:1 elf ~select ~template in
  Elf_file.to_bytes r.Rewriter.output

(* ------------------------------------------------------------------ *)
(* Fault campaign                                                      *)
(* ------------------------------------------------------------------ *)

let gen_rule =
  let open QCheck2.Gen in
  let* site =
    oneofl [ Fault.Rpc_accept; Fault.Rpc_read; Fault.Rpc_decode; Fault.Rpc_emit ]
  in
  (* Sessions are short (3 lines, 1 emit): thresholds skew low so most
     rules actually reach an occurrence. *)
  let* trigger =
    oneof
      [ map (fun n -> Fault.At n) (int_bound 5);
        map (fun n -> Fault.From n) (int_bound 4);
        map (fun n -> Fault.Every (n + 1)) (int_bound 2) ]
  in
  return { Fault.site; trigger }

let gen_rules = QCheck2.Gen.(list_size (int_range 1 2) gen_rule)

type summary = {
  cases : int;
  served : int;
  dropped : int;
  typed : int;
  failures : (string * string) list;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "rpc fault campaign: %d cases — %d served, %d dropped, %d typed, %d \
     contract violations"
    s.cases s.served s.dropped s.typed
    (List.length s.failures)

(* The campaign's fixed input: tiny, but with enough jump sites that a
   rewrite actually patches something. Generated once per campaign. *)
let campaign_profile =
  { Codegen.default_profile with
    Codegen.name = "rpc-fault";
    seed = 421L;
    functions = 5;
    iterations = 2 }

type classification = Served | Dropped | Typed_kill | Violated of string

let find_emit_response responses =
  List.find_map
    (fun line ->
      match Json.of_string line with
      | Ok j -> (
          match Json.member "id" j with
          | Some (Json.Int 3) -> Some j
          | _ -> None)
      | Error _ -> None)
    responses

let has_injected_error responses =
  List.exists
    (fun line ->
      match Json.of_string line with
      | Ok j -> (
          match Json.member "error" j with
          | Some err -> Json.member "code" err = Some (Json.Int Proto.injected_fault)
          | None -> false)
      | Error _ -> false)
    responses

let classify ~expected_hex (responses, alive) =
  if has_injected_error responses then
    if alive then Violated "injected-fault response but the session survived"
    else Typed_kill
  else
    match find_emit_response responses with
    | Some j -> (
        match Json.member "result" j with
        | Some result -> (
            match
              (Json.member "verified" result, Json.member "data" result)
            with
            | Some (Json.Bool true), Some (Json.Str hex) ->
                if hex = expected_hex then Served
                else Violated "served bytes differ from the one-shot rewrite"
            | _ -> Violated "emit result is missing verified/data")
        | None -> Violated "emit answered with a non-injected error")
    | None ->
        (* No emit response and no injected error: the session must have
           been dropped at the edge (accept gate or read loss). *)
        if alive then Violated "session finished alive without an emit response"
        else Dropped

let no_tmp_files dir =
  Array.for_all
    (fun name -> not (Filename.check_suffix name ".tmp"))
    (Sys.readdir dir)

let run_fcase ~raw ~expected ~expected_hex ~dir f =
  let fault = Fault.create f.rules in
  let server = Server.create ~fault () in
  let out_path = Filename.concat dir (Printf.sprintf "out-%d.elf" f.seed) in
  let sessions =
    [ script raw; script raw; script ~filename:out_path raw ]
  in
  let classes =
    List.map (fun s -> classify ~expected_hex (run_session server s)) sessions
  in
  (* Daemon survival: whatever the rules did to individual sessions, the
     server value must still accept work attempts without raising, and
     its books must balance. *)
  let started, closed = Server.sessions server in
  let violations =
    List.filter_map
      (function Violated m -> Some m | _ -> None)
      classes
    @ (if started <> closed then
         [ Printf.sprintf "session books differ: %d started, %d closed"
             started closed ]
       else [])
    @ (match Sys.file_exists out_path with
      | false -> []
      | true ->
          let ic = open_in_bin out_path in
          let written =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          if Bytes.unsafe_of_string written = expected then []
          else [ "emitted file differs from the one-shot rewrite" ])
    @ if no_tmp_files dir then [] else [ "leftover .tmp file" ]
  in
  (classes, violations)

let campaign ?(progress = fun _ -> ()) ~n ~seed () =
  let raw = Elf_file.to_bytes (Codegen.generate campaign_profile) in
  let expected = reference raw in
  let expected_hex = Proto.hex_of_bytes expected in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "e9rpc-fault-%d-%d" (Unix.getpid ()) seed)
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let summary =
        ref { cases = 0; served = 0; dropped = 0; typed = 0; failures = [] }
      in
      for i = 0 to n - 1 do
        progress i;
        let rand = Random.State.make [| seed; i |] in
        let rules = QCheck2.Gen.generate1 ~rand gen_rules in
        let f = { seed = i; rules } in
        let classes, violations =
          match run_fcase ~raw ~expected ~expected_hex ~dir f with
          | r -> r
          | exception e ->
              ( [],
                [ Printf.sprintf "exception escaped the daemon: %s"
                    (Printexc.to_string e) ] )
        in
        let s = !summary in
        summary :=
          {
            cases = s.cases + 1;
            served =
              s.served
              + List.length (List.filter (( = ) Served) classes);
            dropped =
              s.dropped
              + List.length (List.filter (( = ) Dropped) classes);
            typed =
              s.typed
              + List.length (List.filter (( = ) Typed_kill) classes);
            failures =
              s.failures
              @ List.map (fun m -> (fcase_to_string f, m)) violations;
          }
      done;
      !summary)

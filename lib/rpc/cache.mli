(** Content-addressed cache for the rewriting service (DESIGN.md §13).

    The daemon keeps two of these: a {e decode} cache mapping
    [(binary hash, sweep start)] to the frontend's site list, and a
    {e result} cache mapping
    [(binary hash, spec hash, options signature hash)] to serialized
    output bytes. Keys are derived from content only — never from file
    names or session identity — so two sessions feeding the same bytes
    share entries and a hit is byte-identical to recomputing by
    construction.

    Invalidation follows the PR 1 generation-counter discipline: [flush]
    bumps a generation stamped into every entry; stale entries are
    treated as misses and dropped lazily on the next lookup, so a flush
    is O(1) and never pauses in-flight sessions. Eviction is LRU over a
    bounded entry count. All operations are mutex-guarded — sessions on
    different domains share one cache. *)

type 'a t

(** [create ?capacity ()] — [capacity] bounds live entries (default 64);
    inserting past it evicts the least recently used entry. *)
val create : ?capacity:int -> unit -> 'a t

(** [find t key] — [Some v] on hit; counts hit/miss. A stale-generation
    entry is dropped and reported as a miss. *)
val find : 'a t -> string -> 'a option

(** [add t key v] stamps [v] with the current generation. Re-adding an
    existing key replaces the entry. *)
val add : 'a t -> string -> 'a -> unit

(** [flush t] bumps the generation: every current entry becomes stale.
    Returns the new generation. *)
val flush : 'a t -> int

type stats = {
  hits : int;
  misses : int;
  entries : int;  (** live (current-generation) entries *)
  insertions : int;
  evictions : int;  (** LRU evictions + lazy stale drops *)
  generation : int;
}

val stats : 'a t -> stats

(** Hits over lookups; 0 when nothing was looked up. *)
val hit_rate : stats -> float

val stats_json : stats -> E9_obs.Json.t

(** {1 Hashing} — FNV-1a 64-bit, rendered as 16 hex digits. Not
    cryptographic: keys come from trusted local content, and a collision
    costs a wrong cache hit on adversarially crafted twins, which the
    mandatory post-rewrite verification then rejects. *)

val fnv1a64 : bytes -> string

val fnv1a64_string : string -> string

module Json = E9_obs.Json

type id = Int_id of int | Str_id of string | Null_id

type request = {
  meth : string;
  params : Json.t;
  id : id option;
}

type incoming = Request of request | Invalid of string

type line =
  | Single of incoming
  | Batch of incoming list
  | Empty_batch
  | Unparsable of string

(* Reserved JSON-RPC 2.0 codes. *)
let parse_error = -32700
let invalid_request = -32600
let method_not_found = -32601
let invalid_params = -32602
let internal_error = -32603

(* Application codes: one per typed failure family (DESIGN.md §13). *)
let state_error = -32000
let malformed_binary = -32001
let rewrite_refused = -32002
let io_error = -32003
let spec_error = -32004
let verify_failed = -32005
let injected_fault = -32006

let _ = internal_error

(* ------------------------------------------------------------------ *)
(* Envelope validation                                                 *)
(* ------------------------------------------------------------------ *)

let incoming_of_json j =
  match j with
  | Json.Obj fields -> (
      match List.assoc_opt "jsonrpc" fields with
      | Some (Json.Str "2.0") -> (
          let id =
            match List.assoc_opt "id" fields with
            | None -> Ok None
            | Some (Json.Int n) -> Ok (Some (Int_id n))
            | Some (Json.Str s) -> Ok (Some (Str_id s))
            | Some Json.Null -> Ok (Some Null_id)
            | Some _ -> Error "id must be an integer, string or null"
          in
          match id with
          | Error m -> Invalid m
          | Ok id -> (
              match List.assoc_opt "method" fields with
              | Some (Json.Str meth) -> (
                  match List.assoc_opt "params" fields with
                  | None -> Request { meth; params = Json.Obj []; id }
                  | Some (Json.Obj _ as params) -> Request { meth; params; id }
                  | Some _ -> Invalid "params must be an object")
              | Some _ -> Invalid "method must be a string"
              | None -> Invalid "missing method"))
      | Some _ | None -> Invalid "missing jsonrpc: \"2.0\"")
  | _ -> Invalid "request must be an object"

let parse_line s =
  match Json.of_string s with
  | Error m -> Unparsable m
  | Ok (Json.List []) -> Empty_batch
  | Ok (Json.List entries) -> Batch (List.map incoming_of_json entries)
  | Ok j -> Single (incoming_of_json j)

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)
(* ------------------------------------------------------------------ *)

(* The E9Patch extension: integers may be spelled as decimal or 0x-hex
   strings, since patch addresses exceed some encoders' exact range. *)
let int_of_extended = function
  | Json.Int n -> Some n
  | Json.Str s -> int_of_string_opt s
  | _ -> None

let int_param params key =
  match Json.member key params with
  | None -> `Missing
  | Some v -> ( match int_of_extended v with Some n -> `Ok n | None -> `Bad)

let string_param params key =
  match Json.member key params with
  | None -> `Missing
  | Some (Json.Str s) -> `Ok s
  | Some _ -> `Bad

let bool_param params key =
  match Json.member key params with
  | None -> `Missing
  | Some (Json.Bool b) -> `Ok b
  | Some _ -> `Bad

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let id_json = function
  | Int_id n -> Json.Int n
  | Str_id s -> Json.Str s
  | Null_id -> Json.Null

let response id result =
  Json.Obj [ ("jsonrpc", Json.Str "2.0"); ("id", id_json id); ("result", result) ]

let error_response id ~code ~message ?data () =
  let err =
    [ ("code", Json.Int code); ("message", Json.Str message) ]
    @ match data with None -> [] | Some d -> [ ("data", d) ]
  in
  Json.Obj
    [ ("jsonrpc", Json.Str "2.0"); ("id", id_json id); ("error", Json.Obj err) ]

(* ------------------------------------------------------------------ *)
(* Hex payloads                                                        *)
(* ------------------------------------------------------------------ *)

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  let digits = "0123456789abcdef" in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) digits.[c lsr 4];
    Bytes.set out ((2 * i) + 1) digits.[c land 0xf]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok out
      else
        match (nibble s.[i], nibble s.[i + 1]) with
        | Some hi, Some lo ->
            Bytes.set out (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> Error (Printf.sprintf "bad hex digit at %d" i)
    in
    go 0

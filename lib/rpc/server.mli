(** The rewriting daemon: sessions over transports (DESIGN.md §13).

    A server owns what sessions share — the two content-addressed caches,
    the fault capability, telemetry rollup, latency records and the
    counters behind the [status] method. Transports deliver lines to
    sessions: {!connect}/{!feed} is the in-process transport (tests,
    bench, fuzzing — no fds involved), {!serve_channels} runs one session
    over channels (the CLI's stdio mode), {!serve_unix} accepts
    connections on a Unix-domain socket and schedules each onto a
    {!E9_bits.Pool.Service} worker pool — the daemon parallelizes across
    sessions while each rewrite runs with [jobs] domains (default 1).

    Containment: a session failure — malformed request, injected fault,
    even a bug escaping the session layer — closes that session only.
    The accept loop and sibling sessions keep running; [Pool.Service]
    traps anything that gets past the session's own typed-error fence. *)

module Json = E9_obs.Json

type t

(** [create ()] — [cache_capacity] sizes the decode/result/raw caches
    (default 64); [plan_capacity] sizes the chunk-granular plan tier
    (default 1024 — one entry per chunk, not per binary); [jobs] is the
    per-rewrite domain count handed to sessions (default 1); [fault] may
    carry [Rpc_*] rules; [trace_dir], when set, makes each session
    buffer telemetry in a ring and write [session-N.ndjson] there on
    close. *)
val create :
  ?cache_capacity:int -> ?plan_capacity:int -> ?jobs:int ->
  ?fault:E9_fault.Fault.t -> ?trace_dir:string -> unit -> t

val ctx : t -> Session.ctx

(** [stop t] asks every transport loop to wind down (the [shutdown]
    method calls this through its verdict). *)
val stop : t -> unit

val stopping : t -> bool

(** {1 In-process transport} *)

type conn

(** [accept_gate t] plays the accept-time fault point: [false] means an
    [Rpc_accept] rule fired and the connection must be dropped before a
    session exists. {!serve_unix} consults it; in-process drivers should
    too, so fault campaigns exercise the same path. *)
val accept_gate : t -> bool

val connect : t -> conn

(** [feed conn line] delivers one wire line; returns the response lines
    (0 for notifications, 1 otherwise — a batch answers as one array
    line) and whether the session is still alive. Feeding a dead
    connection returns [([], false)]. *)
val feed : conn -> string -> string list * bool

(** [close_conn conn] finalizes: merges the session's telemetry into the
    server rollup, writes its trace file under [trace_dir], bumps the
    closed-session counter. Idempotent. *)
val close_conn : conn -> unit

(** {1 Channel and socket transports} *)

(** [serve_channels t ic oc] runs one session: reads lines from [ic]
    until EOF, session death or {!stop}; writes each response line to
    [oc] (flushed per line). *)
val serve_channels : t -> in_channel -> out_channel -> unit

(** [serve_unix t ~path ()] binds a Unix-domain socket at [path]
    (unlinking any stale one), accepts until {!stop} or [max_sessions]
    connections, and serves each on a worker-pool domain ([domains],
    default {!E9_bits.Pool.default_domains}). Returns after draining
    in-flight sessions, closing every session fd and unlinking [path]. *)
val serve_unix :
  t -> path:string -> ?domains:int -> ?max_sessions:int -> unit -> unit

(** {1 Server-level accounting} *)

val requests : t -> int

val errors : t -> int  (** error responses sent *)

(** (started, closed). *)
val sessions : t -> int * int

(** All per-request wall-clock latencies recorded so far, seconds. *)
val latencies : t -> float list

(** [latency_percentile t p] — the [p]-quantile ([0..1]) of recorded
    request latencies, 0 when none. *)
val latency_percentile : t -> float -> float

(** Merged telemetry rollup from every closed session. *)
val agg : t -> E9_obs.Obs.Agg.agg

(** The [status] payload (also what the RPC method returns). *)
val status_json : t -> Json.t

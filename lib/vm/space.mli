(** A 64-bit virtual address space with 4 KiB pages.

    This is the emulator's memory: the loader maps ELF segment content and
    the rewriter's (possibly one-to-many) trampoline mappings into it, and
    the CPU reads/writes/fetches through it. Mapping semantics follow
    [mmap MAP_PRIVATE|MAP_FIXED]: content is copied at map time, later
    mappings silently replace earlier ones, and writes never propagate back
    to the source. Page protections are enforced: writing a read-only page
    or fetching from a non-executable page raises {!Fault}. *)

type t

(** Raised on access violations: address and a description. *)
exception Fault of int * string

val page_size : int

val create : unit -> t

(** [map_bytes t ~vaddr ~prot content] copies [content] to [vaddr].
    [vaddr] need not be page-aligned; pages touched are created or
    re-protected as needed. *)
val map_bytes : t -> vaddr:int -> prot:Elf_file.prot -> bytes -> unit

(** [map_sub t ~vaddr ~prot src ~src_off ~len] maps a slice of [src]
    without an intermediate copy. *)
val map_sub :
  t -> vaddr:int -> prot:Elf_file.prot -> bytes -> src_off:int -> len:int ->
  unit

(** [map_zero t ~vaddr ~len ~prot] maps a zero-filled range. Ranges of 16+
    pages are materialized lazily on first touch. *)
val map_zero : t -> vaddr:int -> len:int -> prot:Elf_file.prot -> unit

(** [is_mapped t addr] is true when [addr] lies in a mapped page. *)
val is_mapped : t -> int -> bool

(** [pages_mapped t] counts {e materialized} pages (physical-usage
    accounting). Large zero mappings ([.bss], stacks) materialize lazily
    on first touch and are not counted until then. *)
val pages_mapped : t -> int

(** Data accesses. Multi-byte accesses are little-endian and may cross page
    boundaries. Reads require [r], writes require [w]. *)
val read_u8 : t -> int -> int

val read_u32 : t -> int -> int
val read_u64 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit
val write_u64 : t -> int -> int -> unit

(** [read_bytes t addr len] copies out a range (requires [r]). *)
val read_bytes : t -> int -> int -> bytes

(** [write_bytes t addr b] copies in a range (requires [w]). *)
val write_bytes : t -> int -> bytes -> unit

(** [fetch_window t addr] returns up to 16 bytes starting at [addr] for
    instruction decoding (requires [x] on the first page; a window is
    truncated at an unmapped or non-executable boundary). Raises {!Fault}
    if [addr] itself is not fetchable. *)
val fetch_window : t -> int -> bytes

(** [generation t] is the code-generation counter: it advances whenever the
    contents or protections of executable memory may have changed — a data
    write into an executable page, or a mapping operation ([map_bytes],
    [map_sub], [map_zero]) that creates, replaces or re-protects an
    executable page. Caches of decoded instructions are valid only while
    the generation they were filled under is unchanged; on a mismatch they
    must be flushed (see Cpu's superblock cache, DESIGN.md §7). *)
val generation : t -> int

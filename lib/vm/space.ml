exception Fault of int * string

let page_size = 4096
let page_bits = 12

type page = {
  mutable bytes : Bytes.t;
  mutable prot : Elf_file.prot;
  (* A shared page is aliased at several page numbers (one-to-many
     trampoline mappings, §4's physical page grouping). Shared records are
     immutable: remapping or zeroing one alias replaces that page-table
     entry with a private copy instead of mutating the shared record.
     Sharing is only ever created for non-writable protections, so the
     data-write path cannot reach a shared page. *)
  mutable shared : bool;
}

type t = {
  pages : (int, page) Hashtbl.t;
  (* Zero-filled regions are materialized lazily: a multi-GiB .bss must not
     allocate host memory until touched. Newest first (later maps win). *)
  mutable zero_regions : (int * int * Elf_file.prot) list;
  (* One-entry cache of the last page touched: the hot path for both data
     access and instruction fetch. *)
  mutable last_pn : int;
  mutable last_page : page option;
  (* Protection-checked one-entry handles: a page that already passed the
     read (resp. write) permission check. The CPU's block execution loop
     hits these instead of re-walking the page table and re-checking
     protections on every access. Invalidated by any mapping operation. *)
  mutable rd_pn : int;
  mutable rd_page : page option;
  mutable wr_pn : int;
  mutable wr_page : page option;
  (* Bumped whenever the contents or protections of executable memory may
     have changed: any data write to an executable page and any mapping
     operation that creates, replaces or re-protects an executable page.
     Decoded-instruction caches (Cpu.icache, the superblock cache) compare
     against this to invalidate — the contract is: a cached decode is valid
     only while the generation is unchanged. *)
  mutable code_gen : int;
  (* Page-sharing table for [map_sub]: canonical page per (source buffer,
     source offset) so mapping the same non-writable file page at many
     virtual addresses aliases one host allocation. Keyed by source offset;
     [share_src] identifies the buffer (physical equality) — a map from a
     different buffer resets the table. *)
  mutable share_src : Bytes.t;
  share_pages : (int, page) Hashtbl.t;
}

let create () =
  { pages = Hashtbl.create 1024;
    zero_regions = [];
    last_pn = -1;
    last_page = None;
    rd_pn = -1;
    rd_page = None;
    wr_pn = -1;
    wr_page = None;
    code_gen = 0;
    share_src = Bytes.empty;
    share_pages = Hashtbl.create 64 }

let generation t = t.code_gen

let fault addr msg = raise (Fault (addr, msg))

let invalidate_handles t =
  t.last_pn <- -1;
  t.last_page <- None;
  t.rd_pn <- -1;
  t.rd_page <- None;
  t.wr_pn <- -1;
  t.wr_page <- None

let materialize_zero t pn =
  (* A page is backed by a zero region when any of its bytes fall inside
     one; the region's protection applies. *)
  let lo = pn lsl page_bits and hi = (pn + 1) lsl page_bits in
  match
    List.find_opt (fun (rlo, rhi, _) -> rlo < hi && rhi > lo) t.zero_regions
  with
  | Some (_, _, prot) ->
      let p = { bytes = Bytes.make page_size '\000'; prot; shared = false } in
      Hashtbl.replace t.pages pn p;
      Some p
  | None -> None

let page_of t pn =
  if t.last_pn = pn then t.last_page
  else begin
    let p =
      match Hashtbl.find_opt t.pages pn with
      | Some _ as p -> p
      | None -> materialize_zero t pn
    in
    t.last_pn <- pn;
    t.last_page <- p;
    p
  end

let ensure_page t pn prot =
  match page_of t pn with
  | Some p when not p.shared ->
      if p.prot.Elf_file.x || prot.Elf_file.x then
        t.code_gen <- t.code_gen + 1;
      p.prot <- prot;
      p
  | Some p ->
      (* Remapping over an alias: privatize this entry, leave the shared
         record (and every other alias) untouched. *)
      if p.prot.Elf_file.x || prot.Elf_file.x then
        t.code_gen <- t.code_gen + 1;
      let q = { bytes = Bytes.copy p.bytes; prot; shared = false } in
      Hashtbl.replace t.pages pn q;
      t.last_pn <- pn;
      t.last_page <- Some q;
      q
  | None ->
      if prot.Elf_file.x then t.code_gen <- t.code_gen + 1;
      let p = { bytes = Bytes.make page_size '\000'; prot; shared = false } in
      Hashtbl.replace t.pages pn p;
      t.last_pn <- pn;
      t.last_page <- Some p;
      p

let map_sub t ~vaddr ~prot content ~src_off ~len =
  if src_off < 0 || len < 0 || src_off + len > Bytes.length content then
    invalid_arg "Space.map_sub";
  invalidate_handles t;
  if t.share_src != content then begin
    Hashtbl.reset t.share_pages;
    t.share_src <- content
  end;
  let pos = ref 0 in
  while !pos < len do
    let addr = vaddr + !pos in
    let pn = addr lsr page_bits in
    let off = addr land (page_size - 1) in
    let chunk = min (page_size - off) (len - !pos) in
    let src = src_off + !pos in
    (* Full, aligned, non-writable pages alias one canonical host page per
       source offset — the in-emulator realization of physical page
       grouping: mapping a trampoline page at N virtual addresses costs one
       allocation, not N. Everything else copies as before. *)
    if off = 0 && chunk = page_size && not prot.Elf_file.w then begin
      (match page_of t pn with
      | Some p when p.prot.Elf_file.x -> t.code_gen <- t.code_gen + 1
      | Some _ | None -> ());
      if prot.Elf_file.x then t.code_gen <- t.code_gen + 1;
      let canon =
        match Hashtbl.find_opt t.share_pages src with
        | Some p when p.prot = prot -> p
        | Some _ | None ->
            let p =
              { bytes = Bytes.sub content src page_size; prot; shared = true }
            in
            Hashtbl.replace t.share_pages src p;
            p
      in
      Hashtbl.replace t.pages pn canon
    end
    else begin
      let p = ensure_page t pn prot in
      Bytes.blit content src p.bytes off chunk
    end;
    pos := !pos + chunk
  done

let map_bytes t ~vaddr ~prot content =
  map_sub t ~vaddr ~prot content ~src_off:0 ~len:(Bytes.length content)

let map_zero t ~vaddr ~len ~prot =
  if len > 0 then begin
    invalidate_handles t;
    if prot.Elf_file.x then t.code_gen <- t.code_gen + 1;
    (* Pages already materialized are zeroed eagerly (the covered part);
       untouched pages wait in [zero_regions]. *)
    let first = vaddr lsr page_bits and last = (vaddr + len - 1) lsr page_bits in
    if last - first < 16 then
      for pn = first to last do
        let p = ensure_page t pn prot in
        let lo = max vaddr (pn lsl page_bits) in
        let hi = min (vaddr + len) ((pn + 1) lsl page_bits) in
        Bytes.fill p.bytes (lo land (page_size - 1)) (hi - lo) '\000'
      done
    else begin
      for pn = first to last do
        match Hashtbl.find_opt t.pages pn with
        | Some p ->
            if p.prot.Elf_file.x then t.code_gen <- t.code_gen + 1;
            let p =
              if not p.shared then p
              else begin
                let q =
                  { bytes = Bytes.copy p.bytes; prot; shared = false }
                in
                Hashtbl.replace t.pages pn q;
                q
              end
            in
            p.prot <- prot;
            let lo = max vaddr (pn lsl page_bits) in
            let hi = min (vaddr + len) ((pn + 1) lsl page_bits) in
            Bytes.fill p.bytes (lo land (page_size - 1)) (hi - lo) '\000'
        | None -> ()
      done;
      t.zero_regions <- (vaddr, vaddr + len, prot) :: t.zero_regions
    end
  end

let is_mapped t addr = page_of t (addr lsr page_bits) <> None
let pages_mapped t = Hashtbl.length t.pages

let get_page_for t addr ~write ~exec =
  match page_of t (addr lsr page_bits) with
  | None -> fault addr "unmapped"
  | Some p ->
      if write && not p.prot.w then fault addr "write to read-only page";
      if exec && not p.prot.x then fault addr "fetch from non-executable page";
      if (not write) && (not exec) && not p.prot.r then
        fault addr "read from unreadable page";
      p

(* Permission-checked handle lookups. A hit means the page already passed
   the corresponding check since the last mapping operation, so the common
   case is one compare. Writes to executable pages bump [code_gen] on every
   store (not just the first): decoded-code caches must observe each
   modification, including ones made after their last revalidation. *)
let read_page t addr =
  let pn = addr lsr page_bits in
  if t.rd_pn = pn then
    match t.rd_page with
    | Some p -> p
    | None -> fault addr "unmapped"
  else begin
    let p = get_page_for t addr ~write:false ~exec:false in
    t.rd_pn <- pn;
    t.rd_page <- Some p;
    p
  end

let write_page t addr =
  let pn = addr lsr page_bits in
  let p =
    if t.wr_pn = pn then
      match t.wr_page with Some p -> p | None -> fault addr "unmapped"
    else begin
      let p = get_page_for t addr ~write:true ~exec:false in
      t.wr_pn <- pn;
      t.wr_page <- Some p;
      p
    end
  in
  if p.prot.Elf_file.x then t.code_gen <- t.code_gen + 1;
  p

let read_u8 t addr =
  let p = read_page t addr in
  Char.code (Bytes.unsafe_get p.bytes (addr land (page_size - 1)))

let write_u8 t addr v =
  let p = write_page t addr in
  Bytes.unsafe_set p.bytes (addr land (page_size - 1)) (Char.chr (v land 0xff))

(* Fast path: access that stays within one page. *)
let read_multi t addr n =
  let off = addr land (page_size - 1) in
  if off + n <= page_size then begin
    let p = read_page t addr in
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.unsafe_get p.bytes (off + i))
    done;
    !v
  end
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl 8) lor read_u8 t (addr + i)
    done;
    !v
  end

let write_multi t addr n v =
  let off = addr land (page_size - 1) in
  if off + n <= page_size then begin
    let p = write_page t addr in
    for i = 0 to n - 1 do
      Bytes.unsafe_set p.bytes (off + i) (Char.unsafe_chr ((v lsr (8 * i)) land 0xff))
    done
  end
  else
    for i = 0 to n - 1 do
      write_u8 t (addr + i) ((v lsr (8 * i)) land 0xff)
    done

let read_u32 t addr = read_multi t addr 4
let read_u64 t addr = read_multi t addr 8
let write_u32 t addr v = write_multi t addr 4 v
let write_u64 t addr v = write_multi t addr 8 v

let read_bytes t addr len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set out i (Char.chr (read_u8 t (addr + i)))
  done;
  out

let write_bytes t addr b =
  for i = 0 to Bytes.length b - 1 do
    write_u8 t (addr + i) (Char.code (Bytes.get b i))
  done

let fetch_window t addr =
  let pn = addr lsr page_bits in
  (match page_of t pn with
  | None -> fault addr "fetch from unmapped page"
  | Some p -> if not p.prot.x then fault addr "fetch from non-executable page");
  let out = Buffer.create 16 in
  (try
     for i = 0 to 15 do
       let a = addr + i in
       match page_of t (a lsr page_bits) with
       | Some p when p.prot.x ->
           Buffer.add_char out (Bytes.get p.bytes (a land (page_size - 1)))
       | Some _ | None -> raise Exit
     done
   with Exit -> ());
  Buffer.to_bytes out

(** The E9Tool-style frontend: compile [-M MATCH -P PATCH] command pairs
    into rewriter arguments (DESIGN.md §15).

    A {e match} is a selector expression in the {!E9_spec.Patchspec}
    attribute language ([jumps], [op\[0\].type == mem],
    [addr >= 0x400000 and addr < 0x401000], [defined(target)], …),
    optionally extended with [exclude FILE.csv] directives — [;]-separated
    alongside the selectors; multiple selector pieces conjoin. Each CSV
    line is [LO,HI] (hex or decimal, [#] comments): instructions whose
    address falls in any such half-open range are excluded from the match.

    A {e patch} is one of the builtins [print] (per-site
    ["0xADDR: disasm"] line on the instrumentation log), [count]
    (per-site counters), [trap] (SIGTRAP-style event), [empty], [lowfat]
    (heap-write redzone check — pair it with a heap-write matcher), or a
    call trampoline [call\[:clean|:naked\] FN(ARG,...)] with the
    documented argument-passing ABI: up to 6 static arguments loaded into
    the System V registers, each [asm] | [addr] | [instr] | [size] | a
    register name | an integer literal. [FN] is an injected stdlib
    function ([counter], [record]) or an absolute hex address. [clean]
    (the default) brackets the call with RFLAGS + caller-saved save and
    restore on an instrumentation-private stack; [naked] is bare.

    Rules are first-match-wins, exactly like a patch spec.

    All instrumentation state — the register scratch slot, the counter and
    record cells, the private stack — lives in a fresh read-write page
    appended to the binary ({!inject}), so instrumented runs never touch
    guest-visible memory: the trace oracle checks rewrites under any of
    these patches by treating only {!runtime.instr_ranges} as private
    (see {!E9_check.Trace.compare_runs}). The one exception is a [naked]
    call, whose [call] pushes its return address on the {e guest} stack —
    verify those with {!E9_emu.Machine.equivalent}, not the trace
    oracle. *)

exception Error of string

(** {1 The patch language} *)

type patch =
  | Print
  | Count
  | Trap
  | Empty
  | Lowfat
  | Call of {
      mode : E9_core.Trampoline.call_mode;
      fn : string;  (** injected stdlib name or absolute hex address *)
      args : E9_core.Trampoline.call_arg list;
    }

type rule = { selector : E9_spec.Patchspec.selector; patch : patch }

(** [parse_patch src] parses a [-P] argument. Raises {!Error}. *)
val parse_patch : string -> patch

(** [parse_match ?read_file src] parses a [-M] argument: [;]-separated
    selector expressions (conjoined) and [exclude FILE.csv] directives.
    [read_file] loads exclusion files (default: the filesystem). Raises
    {!Error} on bad CSV or an empty match and
    {!E9_spec.Patchspec.Parse_error} on a bad selector. *)
val parse_match :
  ?read_file:(string -> string) -> string -> E9_spec.Patchspec.selector

(** [rule_of ?read_file ~m ~p ()] is one parsed [-M m -P p] pair. *)
val rule_of : ?read_file:(string -> string) -> m:string -> p:string -> unit -> rule

(** {1 Fragment identity} — the plan-cache spec key (DESIGN.md §14). *)

(** [fragment_for_range rules ~lo ~hi] drops rules that provably cannot
    match any site in [lo, hi) ({!E9_spec.Patchspec.selector_may_match_in});
    sound under first-match-wins. *)
val fragment_for_range : rule list -> lo:int -> hi:int -> rule list

(** [fragment_key rules] is a stable, injective encoding of the rules'
    semantics (canonical selector syntax plus a canonical patch key). *)
val fragment_key : rule list -> string

(** [spec_key rules ~text_base ~lo ~len] is the per-chunk fragment key for
    {!E9_core.Plan.config} ([lo]/[len] are text-relative, as the plan
    layer passes them). *)
val spec_key : rule list -> text_base:int -> lo:int -> len:int -> string

(** {1 The injected instrumentation runtime} *)

type runtime = {
  augmented : Elf_file.t;
      (** input copy plus the two injected pages; the rewrite input, and
          the [original] to verify the output against *)
  data_base : int;  (** read-write page: scratch, cells, private stack *)
  scratch : int;  (** 8-byte register-save slot (= [data_base]) *)
  counter_cell : int;  (** the [counter] function's accumulator *)
  record_cell : int;  (** the [record] function's accumulator *)
  stack_top : int;  (** top of the instrumentation-private stack *)
  code_base : int;  (** read-execute page holding the stdlib functions *)
  fns : (string * int) list;  (** name → address: [counter], [record] *)
  instr_ranges : (int * int) list;
      (** instrumentation-private address ranges for
          {!E9_check.Trace.compare_runs} *)
}

(** [inject elf] appends the instrumentation runtime to a copy of [elf]:
    a zeroed read-write data page and a read-execute code page holding
    [counter] (adds 1 to [counter_cell]) and [record] (adds its first
    three integer arguments to [record_cell]); both clobber only private
    cells and the flags. The pages sit one 64 KiB guard above the
    highest existing segment, so the trampoline allocator (which builds
    occupancy from all loaded segments) routes around them
    automatically. *)
val inject : Elf_file.t -> runtime

(** [to_rewriter_args rt rules] compiles the rules against an injected
    runtime: the first-match-wins select/template pair for
    {!E9_core.Rewriter.run}. Raises {!Error} if a call patch names an
    unknown function. *)
val to_rewriter_args :
  runtime ->
  rule list ->
  (Frontend.site -> bool) * (Frontend.site -> E9_core.Trampoline.template)

(** {1 Driver} *)

type result = {
  rewrite : E9_core.Rewriter.result;
  runtime : runtime;
      (** verify [rewrite.output] against [runtime.augmented], with
          [runtime.instr_ranges] private *)
}

(** [run ?options ?obs ?jobs ?plan ?disasm_from elf rules] injects the
    runtime and rewrites: every rule-selected instruction is diverted to
    its patch's trampoline. [elf] is not mutated. The injection is a pure
    function of the input segments, so output bytes stay identical for
    every [jobs] value. Raises {!Error} on an empty rule list or an
    unresolvable call target. *)
val run :
  ?options:E9_core.Rewriter.options ->
  ?obs:E9_obs.Obs.t ->
  ?jobs:int ->
  ?plan:E9_core.Plan.config ->
  ?disasm_from:int ->
  ?frontend:(Elf_file.t -> Frontend.text * Frontend.site list) ->
  Elf_file.t ->
  rule list ->
  result

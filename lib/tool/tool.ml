module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Asm = E9_x86.Asm
module Spec = E9_spec.Patchspec
module Trampoline = E9_core.Trampoline
module Rewriter = E9_core.Rewriter

exception Error of string

let errf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* ------------------------------------------------------------------ *)
(* The patch language                                                   *)
(* ------------------------------------------------------------------ *)

type patch =
  | Print
  | Count
  | Trap
  | Empty
  | Lowfat
  | Call of {
      mode : Trampoline.call_mode;
      fn : string;
      args : Trampoline.call_arg list;
    }

type rule = { selector : Spec.selector; patch : patch }

let strip_reg_name s =
  if String.length s > 0 && s.[0] = '%' then String.sub s 1 (String.length s - 1)
  else s

let parse_arg src =
  let s = String.trim src in
  match s with
  | "" -> errf "empty call argument"
  | "asm" -> Trampoline.Arg_asm
  | "addr" -> Trampoline.Arg_addr
  | "instr" -> Trampoline.Arg_instr
  | "size" -> Trampoline.Arg_size
  | _ -> (
      match Reg.of_name (strip_reg_name s) with
      | Some r -> Trampoline.Arg_reg r
      | None -> (
          match int_of_string_opt s with
          | Some v -> Trampoline.Arg_int v
          | None ->
              errf
                "bad call argument %S (asm|addr|instr|size, a register, or \
                 an integer)"
                s))

let split_args src =
  let s = String.trim src in
  if s = "" then []
  else List.map parse_arg (String.split_on_char ',' s)

let parse_call src =
  (* call[:clean|:naked] NAME(ARG,...) — parentheses optional when the
     argument list is empty. *)
  let mode, rest =
    if String.length src > 0 && src.[0] = ':' then
      let rest = String.sub src 1 (String.length src - 1) in
      if String.length rest >= 5 && String.sub rest 0 5 = "clean" then
        (Trampoline.Clean, String.sub rest 5 (String.length rest - 5))
      else if String.length rest >= 5 && String.sub rest 0 5 = "naked" then
        (Trampoline.Naked, String.sub rest 5 (String.length rest - 5))
      else errf "bad call mode (call:clean or call:naked)"
    else (Trampoline.Clean, src)
  in
  let rest = String.trim rest in
  if rest = "" then errf "call needs a function name";
  match String.index_opt rest '(' with
  | None -> Call { mode; fn = rest; args = [] }
  | Some i ->
      let fn = String.trim (String.sub rest 0 i) in
      if fn = "" then errf "call needs a function name";
      let after = String.sub rest (i + 1) (String.length rest - i - 1) in
      let close =
        match String.rindex_opt after ')' with
        | Some j when String.trim (String.sub after (j + 1) (String.length after - j - 1)) = "" -> j
        | _ -> errf "unbalanced parentheses in call patch %S" rest
      in
      let args = split_args (String.sub after 0 close) in
      if List.length args > 6 then
        errf "call takes at most 6 arguments (the System V registers)";
      Call { mode; fn; args }

let parse_patch src =
  match String.trim src with
  | "print" -> Print
  | "count" -> Count
  | "trap" -> Trap
  | "empty" -> Empty
  | "lowfat" -> Lowfat
  | s when String.length s >= 4 && String.sub s 0 4 = "call" ->
      parse_call (String.sub s 4 (String.length s - 4))
  | s ->
      errf
        "unknown patch %S (print|count|trap|empty|lowfat|call[:clean|:naked] \
         FN(ARGS))"
        s

(* ------------------------------------------------------------------ *)
(* The match language                                                   *)
(* ------------------------------------------------------------------ *)

let parse_csv ~file content =
  let ranges = ref [] in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then
        match String.split_on_char ',' line with
        | [ lo; hi ] -> (
            match
              (int_of_string_opt (String.trim lo),
               int_of_string_opt (String.trim hi))
            with
            | Some lo, Some hi when lo < hi -> ranges := (lo, hi) :: !ranges
            | Some lo, Some hi ->
                errf "%s:%d: empty range 0x%x,0x%x" file (i + 1) lo hi
            | _ -> errf "%s:%d: expected LO,HI addresses" file (i + 1))
        | _ -> errf "%s:%d: expected LO,HI addresses" file (i + 1))
    (String.split_on_char '\n' content);
  List.rev !ranges

let default_read_file path =
  let ic = try open_in_bin path with Sys_error m -> errf "%s" m in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let range_selector (lo, hi) =
  Spec.And (Spec.Addr_cmp (`Ge, lo), Spec.Addr_cmp (`Lt, hi))

let parse_match ?(read_file = default_read_file) src =
  let selectors = ref [] and excluded = ref [] in
  List.iter
    (fun piece ->
      let piece = String.trim piece in
      if piece <> "" then
        if
          String.length piece > 8 && String.sub piece 0 8 = "exclude "
        then
          let file = String.trim (String.sub piece 8 (String.length piece - 8)) in
          excluded := !excluded @ parse_csv ~file (read_file file)
        else selectors := Spec.parse_selector piece :: !selectors)
    (String.split_on_char ';' src);
  let base =
    match List.rev !selectors with
    | [] -> errf "empty match %S" src
    | s :: rest -> List.fold_left (fun a b -> Spec.And (a, b)) s rest
  in
  match !excluded with
  | [] -> base
  | r :: rest ->
      let ranges =
        List.fold_left
          (fun a b -> Spec.Or (a, range_selector b))
          (range_selector r) rest
      in
      Spec.And (base, Spec.Not ranges)

let rule_of ?read_file ~m ~p () =
  { selector = parse_match ?read_file m; patch = parse_patch p }

(* ------------------------------------------------------------------ *)
(* Fragment identity (the plan-cache spec key, DESIGN.md §14)           *)
(* ------------------------------------------------------------------ *)

let arg_key = function
  | Trampoline.Arg_int v -> string_of_int v
  | Trampoline.Arg_addr -> "addr"
  | Trampoline.Arg_size -> "size"
  | Trampoline.Arg_asm -> "asm"
  | Trampoline.Arg_instr -> "instr"
  | Trampoline.Arg_reg r -> strip_reg_name (Reg.name64 r)

let patch_key = function
  | Print -> "print"
  | Count -> "count"
  | Trap -> "trap"
  | Empty -> "empty"
  | Lowfat -> "lowfat"
  | Call { mode; fn; args } ->
      Printf.sprintf "call:%s %s(%s)"
        (match mode with Trampoline.Clean -> "clean" | Trampoline.Naked -> "naked")
        fn
        (String.concat "," (List.map arg_key args))

let fragment_for_range rules ~lo ~hi =
  (* Sound under first-match-wins for exactly the reason
     [Patchspec.fragment_for_range] is: a dropped rule provably matches no
     site in [lo, hi), so for every in-range site the surviving rules keep
     their relative order and the first match is unchanged. *)
  List.filter (fun r -> Spec.selector_may_match_in r.selector ~lo ~hi) rules

let fragment_key rules =
  String.concat ";"
    (List.map
       (fun r ->
         Printf.sprintf "%s=>%s"
           (Format.asprintf "%a" Spec.pp_selector r.selector)
           (patch_key r.patch))
       rules)

let spec_key rules ~text_base ~lo ~len =
  fragment_key
    (fragment_for_range rules ~lo:(text_base + lo) ~hi:(text_base + lo + len))

(* ------------------------------------------------------------------ *)
(* The injected instrumentation runtime                                 *)
(* ------------------------------------------------------------------ *)

type runtime = {
  augmented : Elf_file.t;
  data_base : int;
  scratch : int;
  counter_cell : int;
  record_cell : int;
  stack_top : int;
  code_base : int;
  fns : (string * int) list;
  instr_ranges : (int * int) list;
}

let page = 0x1000

(* RIP-relative access to a data-page cell (always disp32, so the length
   probe with displacement 0 is exact). *)
let riprel asm ~addr make =
  let len = E9_x86.Encode.length (make (Insn.rip_mem 0)) in
  Asm.ins asm (make (Insn.rip_mem (addr - (Asm.here asm + len))))

let inject elf =
  let elf = Elf_file.copy elf in
  let top =
    List.fold_left
      (fun a (s : Elf_file.segment) -> max a (s.Elf_file.vaddr + s.Elf_file.memsz))
      0 elf.Elf_file.segments
  in
  let data_base = ((top + page - 1) / page * page) + 0x10000 in
  let code_base = data_base + page in
  let counter_cell = data_base + 8 in
  let record_cell = data_base + 16 in
  (* The two stdlib instrumentation functions. Both clobber only memory
     cells in the private data page plus the flags — which the Clean call
     bracket saves and restores; Naked callers accept the flag clobber. *)
  let asm = Asm.create ~base:code_base in
  let counter_fn = Asm.here asm in
  riprel asm ~addr:counter_cell (fun m -> Insn.Inc (Insn.Q, Insn.Mem m));
  Asm.ins asm Insn.Ret;
  let record_fn = Asm.here asm in
  List.iter
    (fun r ->
      riprel asm ~addr:record_cell (fun m ->
          Insn.Alu (Insn.Add, Insn.Q, Insn.Mem m, Insn.Reg r)))
    [ Reg.RDI; Reg.RSI; Reg.RDX ];
  Asm.ins asm Insn.Ret;
  let code = Asm.assemble asm in
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rw;
         vaddr = data_base;
         offset = 0;
         filesz = 0;
         memsz = page;
         align = page }
       ~content:(Bytes.make page '\000'));
  ignore
    (Elf_file.add_segment elf
       { Elf_file.ptype = Elf_file.Load;
         prot = Elf_file.prot_rx;
         vaddr = code_base;
         offset = 0;
         filesz = 0;
         memsz = Bytes.length code;
         align = page }
       ~content:code);
  { augmented = elf;
    data_base;
    scratch = data_base;
    counter_cell;
    record_cell;
    stack_top = data_base + page;
    code_base;
    fns = [ ("counter", counter_fn); ("record", record_fn) ];
    instr_ranges = [ (data_base, data_base + page) ] }

let resolve_fn rt fn =
  match List.assoc_opt fn rt.fns with
  | Some addr -> addr
  | None -> (
      match int_of_string_opt fn with
      | Some addr -> addr
      | None ->
          errf "unknown instrumentation function %S (injected: %s)" fn
            (String.concat " " (List.map fst rt.fns)))

(* ------------------------------------------------------------------ *)
(* Lowering to rewriter arguments                                       *)
(* ------------------------------------------------------------------ *)

let template_of rt patch (site : Frontend.site) =
  match patch with
  | Empty -> Trampoline.Empty
  | Count -> Trampoline.Counter
  | Trap -> Trampoline.Trap
  | Lowfat -> Trampoline.Lowfat_check_scratch rt.scratch
  | Print ->
      Trampoline.Print
        { text =
            Printf.sprintf "0x%x: %s" site.Frontend.addr
              (Insn.to_string site.Frontend.insn);
          scratch = rt.scratch }
  | Call { mode; fn; args } ->
      Trampoline.Call
        { target = resolve_fn rt fn;
          mode;
          args;
          scratch = rt.scratch;
          stack_top = rt.stack_top }

let to_rewriter_args rt rules =
  let first site = List.find_opt (fun r -> Spec.selects r.selector site) rules in
  ( (fun site -> first site <> None),
    fun site ->
      match first site with
      | Some r -> template_of rt r.patch site
      | None -> Trampoline.Empty )

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

type result = { rewrite : Rewriter.result; runtime : runtime }

let run ?options ?obs ?jobs ?plan ?disasm_from ?frontend elf rules =
  if rules = [] then errf "no rules (need at least one -M/-P pair)";
  let rt = inject elf in
  let select, template = to_rewriter_args rt rules in
  let rewrite =
    Rewriter.run ?options ?obs ?jobs ?plan ?disasm_from ?frontend rt.augmented
      ~select ~template
  in
  { rewrite; runtime = rt }

module Buf = E9_bits.Buf

type kind = Abs64 | Off32 of int
type table = { addr : int; kind : kind; entries : int }

let section_name = ".e9repro.cfg"

let encode tables =
  let b = Buf.create (List.length tables * 32) in
  List.iter
    (fun t ->
      ignore (Buf.add_u64 b (Int64.of_int t.addr));
      (match t.kind with
      | Abs64 ->
          ignore (Buf.add_u64 b 0L);
          ignore (Buf.add_u64 b 0L)
      | Off32 base ->
          ignore (Buf.add_u64 b 1L);
          ignore (Buf.add_u64 b (Int64.of_int base)));
      ignore (Buf.add_u64 b (Int64.of_int t.entries)))
    tables;
  Buf.contents b

let decode bytes =
  let b = Buf.of_bytes bytes in
  if Buf.length b mod 32 <> 0 then
    raise
      (Elf_file.Malformed
         (Printf.sprintf "%s: length %d is not a multiple of 32" section_name
            (Buf.length b)));
  let n = Buf.length b / 32 in
  List.init n (fun i ->
      let at k = Int64.to_int (Buf.get_u64 b ((i * 32) + k)) in
      let kind =
        match at 8 with
        | 0 -> Abs64
        | 1 -> Off32 (at 16)
        | k ->
            raise
              (Elf_file.Malformed
                 (Printf.sprintf "%s: record %d has bad kind tag %d"
                    section_name i k))
      in
      let entries = at 24 in
      if entries < 0 then
        raise
          (Elf_file.Malformed
             (Printf.sprintf "%s: record %d has negative entry count"
                section_name i));
      { addr = at 0; kind; entries })

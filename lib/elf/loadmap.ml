module Buf = E9_bits.Buf

type mapping = { vaddr : int; file_off : int; len : int; prot : Elf_file.prot }
type trap = { patch_addr : int; trampoline_addr : int }

(* mmap(2) conventions (PROT_READ=1, PROT_WRITE=2, PROT_EXEC=4): the
   injected loader stub passes the stored value straight to the mmap
   syscall. *)
let prot_bits (p : Elf_file.prot) =
  (if p.r then 1 else 0) lor (if p.w then 2 else 0) lor if p.x then 4 else 0

let prot_of_bits b : Elf_file.prot =
  { r = b land 1 <> 0; w = b land 2 <> 0; x = b land 4 <> 0 }

let encode_mappings ms =
  let b = Buf.create (List.length ms * 32) in
  List.iter
    (fun m ->
      ignore (Buf.add_u64 b (Int64.of_int m.vaddr));
      ignore (Buf.add_u64 b (Int64.of_int m.file_off));
      ignore (Buf.add_u64 b (Int64.of_int m.len));
      ignore (Buf.add_u32 b (prot_bits m.prot));
      ignore (Buf.add_u32 b 0))
    ms;
  Buf.contents b

let record_check name size bytes =
  if Bytes.length bytes mod size <> 0 then
    raise
      (Elf_file.Malformed
         (Printf.sprintf "%s: length %d is not a multiple of %d" name
            (Bytes.length bytes) size))

let decode_mappings bytes =
  record_check "mapping table" 32 bytes;
  let b = Buf.of_bytes bytes in
  let n = Buf.length b / 32 in
  List.init n (fun i ->
      let base = i * 32 in
      { vaddr = Int64.to_int (Buf.get_u64 b base);
        file_off = Int64.to_int (Buf.get_u64 b (base + 8));
        len = Int64.to_int (Buf.get_u64 b (base + 16));
        prot = prot_of_bits (Buf.get_u32 b (base + 24)) })

let encode_traps ts =
  let b = Buf.create (List.length ts * 16) in
  List.iter
    (fun t ->
      ignore (Buf.add_u64 b (Int64.of_int t.patch_addr));
      ignore (Buf.add_u64 b (Int64.of_int t.trampoline_addr)))
    ts;
  Buf.contents b

let decode_traps bytes =
  record_check "trap table" 16 bytes;
  let b = Buf.of_bytes bytes in
  let n = Buf.length b / 16 in
  List.init n (fun i ->
      let base = i * 16 in
      { patch_addr = Int64.to_int (Buf.get_u64 b base);
        trampoline_addr = Int64.to_int (Buf.get_u64 b (base + 8)) })
